package superneurons

import (
	"fmt"
	"testing"
)

// BenchmarkCrossJobPlanner prices the cross-job device planner
// against isolated admission at increasing co-tenancy: 1, 4 and 16
// jobs contending for the same two devices, every arrival at t=0 so
// the planner's demand set is as wide as the mode admits. "isolated"
// is the historical sum-of-peaks admission (the planner is bypassed
// entirely); "shared" plans the set with a bounded host spill pool.
// Dry-run estimates are memoized across sub-benchmarks, so
// steady-state iterations measure admission and replay — the planner
// overhead is the shared-vs-isolated gap at equal co-tenancy.
func BenchmarkCrossJobPlanner(b *testing.B) {
	trace := CoTenantClusterTrace()
	for _, n := range []int{1, 4, 16} {
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = trace[i%len(trace)]
			jobs[i].ID = fmt.Sprintf("b%02d", i)
			jobs[i].Arrival = 0
		}
		for _, mode := range []struct {
			name     string
			crossjob bool
		}{{"isolated", false}, {"shared", true}} {
			b.Run(fmt.Sprintf("%s/cotenants-%d", mode.name, n), func(b *testing.B) {
				c := Cluster{Device: TeslaK40c, Devices: CoTenantClusterDevices,
					CrossJob: mode.crossjob, HostSpillBytes: 8 << 30}
				s, err := NewScheduler(c, SchedPacking)
				if err != nil {
					b.Fatal(err)
				}
				var last *ScheduleResult
				for i := 0; i < b.N; i++ {
					r, err := s.Run(jobs)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				res, spill := 0, int64(0)
				for di := range last.Devices {
					res += last.Devices[di].PeakResidents
					if sp := last.Devices[di].SpillPeak; sp > spill {
						spill = sp
					}
				}
				b.Logf("%s n=%d: makespan %v, peak co-residents %d, spill peak %.2f MiB, mean wait %v",
					mode.name, n, last.Makespan, res, float64(spill)/(1<<20), last.MeanWait())
			})
		}
	}
}
