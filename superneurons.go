// Package superneurons is a faithful Go reproduction of
// "SuperNeurons: Dynamic GPU Memory Management for Training Deep
// Neural Networks" (Wang et al., PPoPP 2018): a dynamic scheduling
// runtime that trains networks far beyond the GPU DRAM capacity by
// combining Liveness Analysis, a Unified Tensor Pool
// (offload/prefetch with an LRU Tensor Cache), and Cost-Aware
// Recomputation, while dynamically allocating convolution workspaces
// for speed.
//
// The GPU, cuDNN kernels and PCIe links are provided by a
// deterministic virtual-time simulator (see DESIGN.md for the
// substitution argument), so every experiment from the paper runs on
// a laptop:
//
//	net, _ := superneurons.Build("ResNet50", 384)
//	res, err := superneurons.Run(net, superneurons.DefaultConfig(superneurons.TeslaK40c))
//	if err != nil { ... }
//	fmt.Println(superneurons.Summary(res))
//
// The memory policies of Caffe, Torch, MXNet and TensorFlow are
// modeled on the same substrate (Frameworks) so the paper's capacity
// and throughput comparisons isolate exactly the policy differences.
package superneurons

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memmgr"
	"repro/internal/nnet"
	"repro/internal/policy"
	"repro/internal/recompute"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/utp"
	"repro/internal/workload"
)

// Core types, re-exported for API stability.
type (
	// Config selects the device and the memory/performance techniques.
	Config = core.Config
	// Result is the profile of one simulated training run.
	Result = core.Result
	// StepProfile is the per-step memory/timing record behind Fig. 10.
	StepProfile = core.StepProfile
	// Device describes a simulated GPU.
	Device = hw.DeviceSpec
	// Network is a layer graph built by Build or the nnet builders.
	Network = nnet.Net
	// Framework is a named competing memory policy.
	Framework = policy.Framework
)

// Device profiles used in the paper's evaluation.
var (
	// TeslaK40c is the 12 GB card of the capacity experiments.
	TeslaK40c = hw.TeslaK40c
	// TitanXP is the card of the throughput experiments (Fig. 14).
	TitanXP = hw.TitanXP
)

// ErrOutOfMemory reports that a configuration cannot train a network.
var ErrOutOfMemory = core.ErrOutOfMemory

// Recomputation strategies (§3.4).
const (
	RecomputeNone          = recompute.None
	RecomputeSpeedCentric  = recompute.SpeedCentric
	RecomputeMemoryCentric = recompute.MemoryCentric
	RecomputeCostAware     = recompute.CostAware
)

// Unified Tensor Pool offload modes (§3.3).
const (
	OffloadNone        = utp.OffloadNone
	OffloadConv        = utp.OffloadConv
	OffloadConvAndKept = utp.OffloadConvAndKept
	OffloadSwapAll     = utp.OffloadSwapAll
)

// DefaultConfig returns the full SuperNeurons runtime configuration
// for the device: liveness analysis, pinned offload/prefetch with the
// LRU tensor cache, cost-aware recomputation, the heap memory pool and
// dynamic convolution workspaces.
func DefaultConfig(d Device) Config { return core.SuperNeurons(d) }

// Managers returns the names of the registered pluggable memory
// managers (internal/memmgr). Setting Config.Manager to one of them
// hands the whole memory policy to that manager — "superneurons" is
// the paper's runtime, "vdnn" the offload-everything baseline, "naive"
// keep-everything — while the empty name keeps the flag-driven
// executor used by the ablation studies.
func Managers() []string { return memmgr.Names() }

// ManagerConfig returns a configuration that delegates the whole
// memory policy to the named manager on the given device.
func ManagerConfig(manager string, d Device) Config {
	return Config{Manager: manager, Device: d}
}

// BaselineConfig returns the naive network-wide allocation strategy
// (peak memory Σ l_i^f + Σ l_i^b) used as the paper's reference point.
func BaselineConfig(d Device) Config { return core.Baseline(d) }

// Build constructs a named network at the given batch size. Networks
// lists the valid names; ResNets of custom depth are available through
// BuildResNet.
func Build(name string, batch int) (*Network, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("superneurons: batch must be positive, got %d", batch)
	}
	b := nnet.ByName(name)
	if b == nil {
		return nil, fmt.Errorf("superneurons: unknown network %q (have %s)",
			name, strings.Join(Networks(), ", "))
	}
	return b(batch), nil
}

// BuildResNet constructs a bottleneck ResNet from the four stage
// repeat counts of the paper's Table 4: depth = 3(n1+n2+n3+n4)+2.
func BuildResNet(batch, n1, n2, n3, n4 int) *Network {
	return nnet.ResNetStages(batch, n1, n2, n3, n4)
}

// Networks returns the canonical architecture names in evaluation
// order.
func Networks() []string {
	names := make([]string, len(nnet.Registry))
	for i, e := range nnet.Registry {
		names[i] = e.Name
	}
	return names
}

// Run simulates training iterations of the network under the
// configuration and returns the last iteration's profile.
func Run(net *Network, cfg Config) (*Result, error) { return core.Run(net, cfg) }

// Dynamic workloads: training runs whose input shape changes between
// iterations (bucketed sequence lengths, batch ramps). The program is
// rebuilt for the incoming shape at each iteration boundary; with
// Config.AdaptivePlan the offload/prefetch/recompute plan is revised
// online from the previous iterations' measured signals instead of
// replaying the one-shot static plan.
type (
	// BatchSchedule is a per-iteration batch schedule (entry i is
	// iteration i's batch size, cycling past the end).
	BatchSchedule = workload.Schedule
	// DynamicResult aggregates a dynamic run: per-iteration profiles,
	// OOM failures, plan revisions, total stall and throughput.
	DynamicResult = core.DynamicResult
	// DynamicIteration is one iteration's record in a DynamicResult.
	DynamicIteration = core.IterationProfile
)

// RampSchedule interpolates a batch ramp from 'from' to 'to' over n
// iterations.
func RampSchedule(from, to, n int) BatchSchedule { return workload.Ramp(from, to, n) }

// BucketSchedule repeats each batch size reps times in order (the
// bucketed sequence-length regime).
func BucketSchedule(reps int, batches ...int) BatchSchedule {
	return workload.Buckets(reps, batches...)
}

// DynamicSchedules returns the bundled dynamic-batch schedules by
// name (see workload.DynamicScheduleNames for the list).
func DynamicSchedules() map[string]BatchSchedule { return workload.DynamicSchedules }

// RunDynamic simulates a dynamic-shape training run of the named
// network: iteration i runs at cfg.BatchSchedule[i mod len]. Set
// cfg.AdaptivePlan to revise the memory plan online.
func RunDynamic(network string, cfg Config) (*DynamicResult, error) {
	b := nnet.ByName(network)
	if b == nil {
		return nil, fmt.Errorf("superneurons: unknown network %q (have %s)",
			network, strings.Join(Networks(), ", "))
	}
	return core.RunDynamic(b, cfg)
}

// Frameworks returns the competing memory-policy models (Caffe, MXNet,
// Torch, TensorFlow, SuperNeurons) in the paper's table order.
func Frameworks() []Framework { return policy.All }

// FrameworkByName resolves a framework model by name.
func FrameworkByName(name string) (Framework, bool) { return policy.ByName(name) }

// MaxBatch returns the largest trainable batch for a framework and
// network on the device (Table 5's metric).
func MaxBatch(f Framework, network string, d Device, limit int) (int, error) {
	b := nnet.ByName(network)
	if b == nil {
		return 0, fmt.Errorf("superneurons: unknown network %q", network)
	}
	return policy.MaxBatch(f, b, d, limit)
}

// MaxDepth returns the deepest trainable Table-4 ResNet for a
// framework at the batch size (Table 4's metric), as (n3, depth).
func MaxDepth(f Framework, d Device, batch, maxN3 int) (int, int, error) {
	return policy.MaxDepth(f, d, batch, maxN3)
}

// Throughput returns a framework's training speed (img/s) on the
// network at the given batch, honoring the framework's configuration
// fallback chain (e.g. TensorFlow only swaps when it must). It returns
// 0 when no configuration fits.
func Throughput(f Framework, network string, batch int, d Device) (float64, error) {
	b := nnet.ByName(network)
	if b == nil {
		return 0, fmt.Errorf("superneurons: unknown network %q", network)
	}
	return policy.Speed(f, b(batch), d)
}

// Multi-tenant scheduling (internal/sched): a deterministic scheduler
// places a stream of training-job requests onto a simulated cluster,
// using the memory managers' dry-run peak/iteration estimates for
// admission control, bin-packing placement, queueing and preemption.
type (
	// Cluster describes a homogeneous pool of simulated GPUs.
	Cluster = sched.Cluster
	// Job is one training-job request (network, batch, manager,
	// priority, arrival, iterations).
	Job = sched.Job
	// Scheduler binds a cluster to a scheduling policy.
	Scheduler = sched.Scheduler
	// SchedulerPolicy declares queue order, backfill, placement and
	// preemption behavior.
	SchedulerPolicy = sched.Policy
	// ScheduleResult is the outcome of replaying a job stream:
	// per-job JCT/queueing, per-device stats, cluster utilization.
	ScheduleResult = sched.Result
	// JobSchedule is the per-job slice of a ScheduleResult.
	JobSchedule = sched.JobResult
	// JobEstimate is the dry-run prediction admission control uses.
	JobEstimate = memmgr.Estimate
)

// The built-in scheduler policies.
var (
	// SchedFIFO admits strictly in arrival order (head-of-line
	// blocking included).
	SchedFIFO = sched.FIFO
	// SchedPriority admits by priority and preempts lower-priority
	// residents at iteration boundaries.
	SchedPriority = sched.Priority
	// SchedPacking is memory-aware: backfills past a blocked head
	// onto the device where the job packs tightest.
	SchedPacking = sched.Packing
	// SchedTopoPacking is SchedPacking plus topology awareness: gangs
	// land on the tightest NVLink island that holds them whole, then
	// the tightest node, and only then span nodes.
	SchedTopoPacking = sched.TopoPacking
)

// Topology classifies a cluster's device pairs into interconnect
// tiers (NVLink island / same-node PCIe / cross-node network) for
// gang placement and all-reduce pricing (see Cluster.Topology).
type Topology = hw.Topology

// DefaultClusterTopology is the DGX-style layout the gang evaluation
// runs on: nodes of 8 devices, two 4-device NVLink islands per node.
func DefaultClusterTopology() Topology { return hw.DefaultTopology() }

// SchedulerPolicies lists the built-in policies in comparison order.
func SchedulerPolicies() []SchedulerPolicy { return sched.Policies() }

// NewScheduler returns a scheduler placing jobs on the cluster under
// the policy.
func NewScheduler(c Cluster, p SchedulerPolicy) (*Scheduler, error) {
	return sched.NewScheduler(c, p)
}

// EstimateJob predicts a job's peak pool footprint and iteration time
// on the device by one deterministic dry run — the admission estimate
// the scheduler uses. Each call pays for its own dry run; the
// scheduler itself memoizes estimates per distinct job shape in an
// estimator it owns, so traces replay cheaply without any
// process-global cache.
func EstimateJob(network string, batch int, manager string, d Device) (JobEstimate, error) {
	return sched.DryRun(network, batch, manager, d)
}

// DefaultClusterTrace returns the bundled multi-tenant workload trace
// (see cmd/snsched and examples/multitenant).
func DefaultClusterTrace() []Job {
	return sched.JobsFromTrace(workload.DefaultTrace())
}

// DynamicClusterTrace returns the bundled dynamic-workload trace:
// jobs with per-iteration batch schedules, admitted by their
// worst-case shape (snsched -dynamic replays it).
func DynamicClusterTrace() []Job {
	return sched.JobsFromTrace(workload.DefaultDynamicTrace())
}

// GangClusterTrace returns the bundled 1000-job multi-GPU gang trace
// for a 256-device multi-node cluster (snsched -gang replays it; pair
// it with DefaultClusterTopology and the topo policy).
func GangClusterTrace() []Job {
	return sched.JobsFromTrace(workload.GangTrace())
}

// CoTenantClusterTrace returns the bundled 48-job co-tenancy trace for
// a CoTenantClusterDevices-device cluster: arrival waves of large jobs
// whose worst-case peaks interleave, built to separate isolated
// admission from cross-job planning (snsched -cotenant replays it;
// pair it with Cluster.CrossJob — see examples/crossjob).
func CoTenantClusterTrace() []Job {
	return sched.JobsFromTrace(workload.CoTenantTrace())
}

// CoTenantClusterDevices is the cluster size CoTenantClusterTrace
// targets.
const CoTenantClusterDevices = workload.CoTenantClusterDevices

// Cluster construction and the deterministic fault layer
// (internal/sched): NewCluster assembles a Cluster from per-device
// specs and functional options — the constructor path over bare
// struct literals, which keep working unchanged.
type (
	// ClusterOption configures a Cluster assembled by NewCluster
	// (WithClusterTopology, WithAllReduceOverlap, WithCrossJobPlanning,
	// WithFaultPlan).
	ClusterOption = sched.Option
	// FaultPlan scripts a cluster's deterministic device failures and
	// recoveries; the zero value is the always-healthy cluster.
	FaultPlan = sched.FaultPlan
	// FaultEvent is one scripted change of a device's availability.
	FaultEvent = sched.FaultEvent
)

// NewCluster assembles a Cluster from per-device specs and options.
// The specs must be non-empty and homogeneous; an option-built cluster
// compares equal to the matching struct literal.
func NewCluster(devices []Device, opts ...ClusterOption) (Cluster, error) {
	return sched.NewCluster(devices, opts...)
}

// UniformCluster expands one device spec into an n-device pool for
// NewCluster.
func UniformCluster(spec Device, n int) []Device { return sched.Uniform(spec, n) }

// WithClusterTopology classifies the pool's device pairs into
// interconnect tiers for gang placement and all-reduce pricing.
func WithClusterTopology(t Topology) ClusterOption { return sched.WithTopology(t) }

// WithAllReduceOverlap overlaps each gang's gradient all-reduce with
// the backward half of its iteration.
func WithAllReduceOverlap() ClusterOption { return sched.WithOverlap() }

// WithCrossJobPlanning enables interference-aware cross-job admission
// with a per-device host spill pool of spillBytes (0 selects the
// default).
func WithCrossJobPlanning(spillBytes int64) ClusterOption { return sched.WithCrossJob(spillBytes) }

// WithFaultPlan scripts the cluster's deterministic fault layer:
// scripted device failures and recoveries fire through the event
// queue, victims restore from iteration-boundary checkpoints, and
// gangs shrink elastically to surviving members when they can.
func WithFaultPlan(p FaultPlan) ClusterOption { return sched.WithFaultPlan(p) }

// FaultClusterTrace returns the bundled failure-scenario trace — jobs
// and scripted device faults for a FaultClusterDevices-device cluster
// (snsched -scenario faults replays it).
func FaultClusterTrace() ([]Job, FaultPlan) {
	jobs, faults := workload.FaultTrace()
	return sched.JobsFromTrace(jobs), sched.FaultsFromTrace(faults)
}

// FaultClusterDevices is the cluster size FaultClusterTrace targets.
const FaultClusterDevices = workload.FaultClusterDevices

// CompareSchedulers replays the job stream on the cluster under every
// built-in policy, in SchedulerPolicies() order.
func CompareSchedulers(c Cluster, jobs []Job) ([]*ScheduleResult, error) {
	return policy.CompareSchedulers(c, jobs)
}

// Serving layer (internal/serve): a long-running service that accepts
// training-job submissions concurrently over HTTP/JSON, sequences them
// deterministically onto the cluster scheduler, and logs every
// admitted job so a day of traffic replays byte-identically through
// the batch path (cmd/snsched). See cmd/snserved for the daemon and
// cmd/snload for the load generator.
type (
	// ServeConfig parameterizes a Service (cluster, policy, bounded
	// admission queue, per-tenant quota, request-log sink).
	ServeConfig = serve.Config
	// Service is the concurrent job-submission front-end.
	Service = serve.Service
	// ServeClient is the typed HTTP client for a Service.
	ServeClient = serve.Client
	// SubmitRequest is one training-job submission.
	SubmitRequest = serve.SubmitRequest
	// JobStatus is the service's view of one submitted job.
	JobStatus = serve.JobStatus
	// ServeMetrics is the service's cluster snapshot.
	ServeMetrics = serve.Metrics
	// LoadConfig and LoadReport parameterize RunLoad, the concurrent
	// load generator.
	LoadConfig = serve.LoadConfig
	LoadReport = serve.LoadReport
	// RetryPolicy shapes ServeClient.SubmitRetry: capped exponential
	// backoff with full jitter, honoring Retry-After, bounded by an
	// attempt cap and a deadline.
	RetryPolicy = serve.RetryPolicy
	// RecoveredLog is what a service rebuilt from its write-ahead log
	// (ServeConfig.WALDir): the merged-log prefix, the surviving
	// idempotency bindings, and the torn-tail report if the process
	// died mid-append.
	RecoveredLog = serve.RecoveredLog
)

// NewService starts a job-submission service over the cluster.
func NewService(cfg ServeConfig) (*Service, error) { return serve.New(cfg) }

// RunLoad drives a Service with concurrent clients and reports
// throughput and submission-latency percentiles.
func RunLoad(cfg LoadConfig) (*LoadReport, error) { return serve.RunLoad(cfg) }

// RecoverWAL reads a service's write-ahead log directory (read-only)
// and rebuilds the merged-log prefix a restart would resume from,
// truncating nothing; see ServeConfig.WALDir and DESIGN.md §11.
func RecoverWAL(dir string) (*RecoveredLog, error) { return serve.RecoverWAL(dir) }

// Summary renders a human-readable report of a run.
func Summary(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s batch %d\n", r.Network, r.Batch)
	fmt.Fprintf(&b, "  peak memory      %8.2f MiB (baseline Σf+Σb %.2f, layer floor max(l_i) %.2f)\n",
		mib(r.PeakResident), mib(r.BaselineBytes), mib(r.LPeak))
	fmt.Fprintf(&b, "  persistent state %8.2f MiB (params, param grads, aux)\n", mib(r.PersistentBytes))
	fmt.Fprintf(&b, "  pool high-water  %8.2f MiB\n", mib(r.PoolPeak))
	fmt.Fprintf(&b, "  iteration time   %v  (%.1f img/s)\n", r.IterTime, r.Throughput)
	fmt.Fprintf(&b, "  pcie traffic     %8.2f MiB out, %.2f MiB in, stalls %v\n",
		mib(r.OffloadBytes), mib(r.PrefetchBytes), r.StallTime)
	fmt.Fprintf(&b, "  recompute        %d extra forward passes\n", r.ExtraForwards)
	fmt.Fprintf(&b, "  allocator        %d allocs / %d frees, %v total\n",
		r.AllocCalls, r.FreeCalls, r.AllocTime)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "  tensor cache     %d hits / %d misses / %d evictions\n",
			r.CacheHits, r.CacheMisses, r.Evictions)
	}
	return b.String()
}

// PeakSteps returns the labels of the k steps with the highest
// resident footprints, most expensive first — a quick answer to
// "where does the memory go".
func PeakSteps(r *Result, k int) []string {
	steps := make([]StepProfile, len(r.Steps))
	copy(steps, r.Steps)
	sort.Slice(steps, func(i, j int) bool { return steps[i].ResidentBytes > steps[j].ResidentBytes })
	if k > len(steps) {
		k = len(steps)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = fmt.Sprintf("%s (%.2f MiB)", steps[i].Label, mib(steps[i].ResidentBytes))
	}
	return out
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
