package superneurons

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataparallel"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/modelparallel"
	"repro/internal/nnet"
	"repro/internal/policy"
	"repro/internal/recompute"
	"repro/internal/tcache"
	"repro/internal/utp"
)

// Ablation benchmarks for the design choices DESIGN.md calls out,
// beyond the paper's own tables: each isolates one mechanism of the
// runtime and logs its effect.

// BenchmarkAblationOffloadModes compares the UTP offload sets on a
// deep ResNet: none, CONV-only (§3.3.1 verbatim), CONV+kept (the mode
// that makes join-heavy networks depth-scalable), swap-all (the
// TensorFlow-style policy).
func BenchmarkAblationOffloadModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("ablation: offload modes (ResNet-101, b=16, eager)",
			"mode", "peak MiB", "traffic MiB", "img/s")
		for _, mode := range []utp.Mode{utp.OffloadNone, utp.OffloadConv, utp.OffloadConvAndKept, utp.OffloadSwapAll} {
			cfg := core.SuperNeurons(hw.TeslaK40c)
			cfg.TensorCache = false
			cfg.Offload = mode
			if mode == utp.OffloadNone {
				cfg.Prefetch = false
			}
			r, err := core.Run(nnet.ResNet(101, 16), cfg)
			if err != nil {
				b.Fatal(err)
			}
			t.Add(mode.String(), metrics.MiB(r.PeakResident),
				metrics.MiB(r.TotalTraffic()), fmt.Sprintf("%.1f", r.Throughput))
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkAblationPrefetch isolates the one-checkpoint-ahead
// prefetching: without it every offloaded tensor stalls at first use.
func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("ablation: prefetch (VGG16, b=64, eager offload)",
			"prefetch", "img/s", "stalls")
		for _, pf := range []bool{true, false} {
			cfg := core.SuperNeurons(hw.TeslaK40c)
			cfg.TensorCache = false
			cfg.Prefetch = pf
			r, err := core.Run(nnet.VGG16(64), cfg)
			if err != nil {
				b.Fatal(err)
			}
			t.Add(fmt.Sprint(pf), fmt.Sprintf("%.1f", r.Throughput), r.StallTime.String())
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkAblationCachePolicy compares the Tensor Cache replacement
// policies under memory pressure — the study the paper's §3.3.2
// explicitly leaves open.
func BenchmarkAblationCachePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("ablation: cache replacement policy (AlexNet b=300, 2.2 GiB pool)",
			"policy", "evictions", "traffic MiB", "img/s")
		for _, p := range []tcache.Policy{tcache.LRU, tcache.FIFO, tcache.MRU} {
			cfg := core.SuperNeurons(hw.TeslaK40c)
			cfg.PoolBytes = 2200 * hw.MiB
			cfg.CachePolicy = p
			r, err := core.Run(nnet.AlexNet(300), cfg)
			if err != nil {
				b.Fatal(err)
			}
			t.Add(p.String(), fmt.Sprint(r.Evictions),
				metrics.MiB(r.TotalTraffic()), fmt.Sprintf("%.1f", r.Throughput))
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkAblationExternalPools exercises the Fig. 7 memory
// hierarchy: local CPU DRAM only, plus a peer GPU, plus remote RDMA,
// under a deliberately tiny local pool.
func BenchmarkAblationExternalPools(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("ablation: UTP hierarchy (AlexNet b=200, 256 MiB pinned CPU)",
			"pools", "peak MiB", "offloaded MiB", "img/s")
		cases := []struct {
			name  string
			pools []core.ExternalPool
		}{
			{"cpu only", nil},
			{"cpu+peer", []core.ExternalPool{core.PeerGPUPool(8 * hw.GiB)}},
			{"cpu+peer+remote", []core.ExternalPool{core.PeerGPUPool(1 * hw.GiB), core.RemotePool(64 * hw.GiB)}},
		}
		for _, c := range cases {
			cfg := core.SuperNeurons(hw.TeslaK40c)
			cfg.TensorCache = false
			cfg.HostBytes = 256 * hw.MiB
			cfg.ExternalPools = c.pools
			r, err := core.Run(nnet.AlexNet(200), cfg)
			if err != nil {
				b.Fatal(err)
			}
			t.Add(c.name, metrics.MiB(r.PeakResident),
				metrics.MiB(r.OffloadBytes), fmt.Sprintf("%.1f", r.Throughput))
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkAblationRecomputeStrategies sweeps the recomputation
// strategies on DenseNet-121, the full-join architecture the paper's
// Table 1 does not cover.
func BenchmarkAblationRecomputeStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("ablation: recompute strategies (DenseNet-121, b=16)",
			"strategy", "extra fwd", "peak MiB", "img/s")
		for _, s := range []recompute.Strategy{recompute.None, recompute.SpeedCentric, recompute.MemoryCentric, recompute.CostAware} {
			cfg := core.SuperNeurons(hw.TeslaK40c)
			cfg.TensorCache = false
			cfg.Recompute = s
			r, err := core.Run(nnet.DenseNet121(16), cfg)
			if err != nil {
				b.Fatal(err)
			}
			t.Add(s.String(), fmt.Sprint(r.ExtraForwards),
				metrics.MiB(r.PeakResident), fmt.Sprintf("%.1f", r.Throughput))
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkModelVsDataParallel reproduces the §2.1 motivation: a
// layer-wise model-parallel split leaves most of the added GPUs idle
// (the paper quotes ≥40% speed compromised), while data parallelism
// with an overlapped ring all-reduce scales nearly linearly.
func BenchmarkModelVsDataParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("model vs data parallelism (VGG16 b=32, TITAN Xp)",
			"GPUs", "model-parallel img/s", "utilization", "data-parallel img/s", "efficiency")
		for _, k := range []int{1, 2, 4, 8} {
			mp, err := modelparallel.Run(nnet.VGG16(32), modelparallel.Config{GPUs: k, Device: hw.TitanXP})
			if err != nil {
				b.Fatal(err)
			}
			dp, err := dataparallel.Run(nnet.ByName("VGG16"), 32, dataparallel.Config{
				Replicas: k, PerGPU: core.SuperNeurons(hw.TitanXP), OverlapComm: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			t.Add(fmt.Sprint(k),
				fmt.Sprintf("%.1f", mp.Throughput), fmt.Sprintf("%.0f%%", 100*mp.Utilization),
				fmt.Sprintf("%.1f", dp.GlobalThroughput), fmt.Sprintf("%.0f%%", 100*dp.ScalingEfficiency))
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkAblationVDNN compares the vDNN baseline (§5 related work:
// eager offload everything, prefetch, no recompute/cache) with
// SuperNeurons across linear and non-linear networks.
func BenchmarkAblationVDNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("ablation: vDNN vs SuperNeurons (TITAN Xp)",
			"network", "batch", "vDNN img/s", "SuperNeurons img/s", "ratio")
		for _, c := range []struct {
			name  string
			batch int
		}{{"AlexNet", 128}, {"VGG16", 32}, {"ResNet50", 32}, {"InceptionV4", 16}} {
			v, err := policy.Speed(policy.VDNN, nnet.ByName(c.name)(c.batch), hw.TitanXP)
			if err != nil {
				b.Fatal(err)
			}
			s, err := policy.Speed(policy.SuperNeurons, nnet.ByName(c.name)(c.batch), hw.TitanXP)
			if err != nil {
				b.Fatal(err)
			}
			t.Add(c.name, fmt.Sprint(c.batch), fmt.Sprintf("%.1f", v),
				fmt.Sprintf("%.1f", s), fmt.Sprintf("%.2fx", s/v))
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkDataParallelScaling sweeps synchronous data-parallel
// replicas (§2.1) with and without gradient-exchange overlap.
func BenchmarkDataParallelScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := metrics.NewTable("data-parallel scaling (AlexNet, b=128/GPU, TITAN Xp, PCIe P2P ring)",
			"GPUs", "img/s serial", "img/s overlap", "efficiency")
		for _, k := range []int{1, 2, 4, 8, 16} {
			cfg := dataparallel.Config{Replicas: k, PerGPU: core.SuperNeurons(hw.TitanXP)}
			serial, err := dataparallel.Run(nnet.ByName("AlexNet"), 128, cfg)
			if err != nil {
				b.Fatal(err)
			}
			cfg.OverlapComm = true
			overlap, err := dataparallel.Run(nnet.ByName("AlexNet"), 128, cfg)
			if err != nil {
				b.Fatal(err)
			}
			t.Add(fmt.Sprint(k), fmt.Sprintf("%.1f", serial.GlobalThroughput),
				fmt.Sprintf("%.1f", overlap.GlobalThroughput),
				fmt.Sprintf("%.0f%%", 100*overlap.ScalingEfficiency))
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}
