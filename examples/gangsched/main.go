// Gangsched: gang-schedule multi-GPU training jobs over a simulated
// multi-node cluster and watch placement locality pay for itself.
//
// The bundled trace submits 1000 jobs — half single-device, the rest
// synchronous data-parallel gangs of 2 to 16 GPUs — to 256 devices
// laid out DGX-style: nodes of 8, two 4-device NVLink islands per
// node, GPUDirect RDMA between nodes. A gang is admitted all-or-
// nothing (its dry-run peak must fit every member device at once) and
// each iteration pays the exposed part of a bucketed ring all-reduce
// priced by the slowest wire inside the gang — so where a gang lands
// decides how fast it trains, and the topology-aware policy packs
// gangs onto the fastest tier that holds them whole.
package main

import (
	"fmt"
	"log"

	superneurons "repro"
)

func main() {
	log.SetFlags(0)

	cluster := superneurons.Cluster{
		Device:   superneurons.TeslaK40c,
		Devices:  256,
		Topology: superneurons.DefaultClusterTopology(),
		Overlap:  true,
	}
	jobs := superneurons.GangClusterTrace()
	singles, gangs := 0, 0
	for _, j := range jobs {
		if j.GPUs > 1 {
			gangs++
		} else {
			singles++
		}
	}
	fmt.Printf("cluster: %d x %s in nodes of %d (NVLink islands of %d)\n",
		cluster.Devices, cluster.Device.Name,
		cluster.Topology.DevicesPerNode, cluster.Topology.NVLinkIsland)
	fmt.Printf("trace:   %d jobs (%d single-device, %d gangs), all-reduce overlapped\n\n",
		len(jobs), singles, gangs)

	// The same arrival stream under every policy: FIFO blocks on wide
	// gangs, packing backfills around them, and the topology-aware
	// policy additionally keeps gangs on fast interconnect tiers.
	results, err := superneurons.CompareSchedulers(cluster, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy comparison on the same gang trace:")
	for _, r := range results {
		fmt.Printf("  %-9s makespan %-10v compute util %5.1f%%  mean jct %-10v mean wait %v\n",
			r.Policy, r.Makespan, 100*r.ComputeUtilization, r.MeanJCT(), r.MeanWait())
	}

	// Locality in action: a 4-wide gang fits one NVLink island, so the
	// topology-aware policy never lets it straddle a slower tier.
	var topo *superneurons.ScheduleResult
	for _, r := range results {
		if r.Policy == superneurons.SchedTopoPacking.Name {
			topo = r
		}
	}
	fmt.Println("\nfirst gang placements under the topo policy:")
	shown := 0
	for _, j := range topo.Jobs {
		if len(j.Gang) < 2 {
			continue
		}
		fmt.Printf("  %-6s %dx%-9s -> devices %v\n", j.ID, j.GPUs, j.Network, j.Gang)
		if shown++; shown == 6 {
			break
		}
	}
}
