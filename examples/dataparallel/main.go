// Dataparallel scales SuperNeurons across multiple simulated GPUs in
// the synchronous data-parallel regime the paper targets (§2.1): every
// GPU trains a replica on a sub-batch and the sub-gradients are
// combined with a ring all-reduce. The example sweeps the replica
// count and shows how gradient-exchange overlap preserves scaling.
package main

import (
	"fmt"
	"log"

	superneurons "repro"
	"repro/internal/dataparallel"
	"repro/internal/hw"
	"repro/internal/nnet"
)

func main() {
	log.SetFlags(0)
	const perGPUBatch = 128
	build := nnet.ByName("AlexNet")

	// AlexNet's 61M parameters make the gradient exchange expensive
	// relative to its fast iterations — the classic case where overlap
	// matters (Wang et al. [25]).
	fmt.Printf("data-parallel AlexNet, batch %d per GPU, TITAN Xp replicas over PCIe P2P\n\n", perGPUBatch)
	fmt.Printf("%8s  %16s  %16s  %10s  %12s\n",
		"GPUs", "img/s (serial)", "img/s (overlap)", "efficiency", "exposed comm")

	for _, k := range []int{1, 2, 4, 8, 16} {
		cfg := dataparallel.Config{
			Replicas:     k,
			PerGPU:       superneurons.DefaultConfig(superneurons.TitanXP),
			Interconnect: hw.PCIeP2P,
		}
		serial, err := dataparallel.Run(build, perGPUBatch, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.OverlapComm = true
		overlap, err := dataparallel.Run(build, perGPUBatch, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %16.1f  %16.1f  %9.0f%%  %12v\n",
			k, serial.GlobalThroughput, overlap.GlobalThroughput,
			100*overlap.ScalingEfficiency, overlap.ExposedComm)
	}

	fmt.Println("\nthe per-GPU replica still runs the full memory runtime:")
	r, err := dataparallel.Run(build, perGPUBatch, dataparallel.Config{
		Replicas: 4,
		PerGPU:   superneurons.DefaultConfig(superneurons.TitanXP),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(superneurons.Summary(r.Replica))
}
