// Widebatch explores batch-size capacity (the paper's "going wider",
// Table 5): the largest trainable batch for every framework memory
// policy on a chosen network, and the throughput trade-off as the
// batch approaches each limit.
package main

import (
	"fmt"
	"log"
	"os"

	superneurons "repro"
)

func main() {
	log.SetFlags(0)
	network := "ResNet50"
	if len(os.Args) > 1 {
		network = os.Args[1]
	}
	dev := superneurons.TeslaK40c

	fmt.Printf("largest trainable batch for %s on %s\n\n", network, dev.Name)
	fmt.Printf("%-14s %8s %14s\n", "framework", "batch", "img/s at peak")
	best := 0
	for _, f := range superneurons.Frameworks() {
		b, err := superneurons.MaxBatch(f, network, dev, 4096)
		if err != nil {
			log.Fatal(err)
		}
		speed := "OOM"
		if b > 0 {
			imgs, err := superneurons.Throughput(f, network, b, dev)
			if err != nil {
				log.Fatal(err)
			}
			speed = fmt.Sprintf("%.1f", imgs)
		}
		fmt.Printf("%-14s %8d %14s\n", f.Name, b, speed)
		if f.Name != "SuperNeurons" && b > best {
			best = b
		}
	}

	sn, _ := superneurons.FrameworkByName("SuperNeurons")
	snBatch, err := superneurons.MaxBatch(sn, network, dev, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSuperNeurons trains %.1fx the second-best batch (paper: 1.89x on average)\n",
		float64(snBatch)/float64(best))
}
