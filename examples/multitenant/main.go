// Multitenant: share a two-GPU cluster between nine training jobs
// and compare scheduling policies — the multi-workload scenario
// SuperNeurons' single-job memory manager leaves open.
//
// The scheduler's admission control reuses the memmgr runtime: one
// deterministic dry run per distinct job shape predicts the exact
// pool peak and iteration time, so a job is only placed where its
// whole footprint fits, and a job that cannot fit any idle device is
// rejected up front. On a device, resident jobs time-share the serial
// compute engine round-robin in virtual time.
package main

import (
	"fmt"
	"log"

	superneurons "repro"
)

func main() {
	log.SetFlags(0)

	cluster := superneurons.Cluster{Device: superneurons.TeslaK40c, Devices: 2}
	jobs := superneurons.DefaultClusterTrace()
	fmt.Printf("cluster: %d x %s, %.2f GiB usable each\n\n",
		cluster.Devices, cluster.Device.Name, float64(cluster.Capacity())/(1<<30))

	// Admission control: every job's footprint is known before it
	// runs, from one dry run of its memory manager.
	fmt.Println("admission estimates (dry-run peak / iteration time):")
	for _, j := range jobs {
		est, err := superneurons.EstimateJob(j.Network, j.Batch, j.Manager, cluster.Device)
		if err != nil {
			fmt.Printf("  %-12s %-9s b%-4d %-13s rejected: cannot fit an idle device\n",
				j.ID, j.Network, j.Batch, j.Manager)
			continue
		}
		fmt.Printf("  %-12s %-9s b%-4d %-13s peak %8.2f MiB (%4.1f%% of device)  iter %v\n",
			j.ID, j.Network, j.Batch, j.Manager,
			float64(est.PeakBytes)/(1<<20),
			100*float64(est.PeakBytes)/float64(cluster.Capacity()),
			est.IterTime)
	}

	// Replay the same arrival stream under each policy.
	results, err := superneurons.CompareSchedulers(cluster, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npolicy comparison on the same trace:")
	for _, r := range results {
		fmt.Printf("  %-9s makespan %-9v cluster mem util %5.1f%%  mean jct %-9v mean wait %v\n",
			r.Policy, r.Makespan, 100*r.Utilization, r.MeanJCT(), r.MeanWait())
	}

	// The per-job story: FIFO blocks everything behind the urgent job
	// that does not fit; priority preempts for it; packing backfills
	// the small jobs into the gaps.
	fmt.Println("\nwhere each policy wins:")
	pick := func(policy, id string) superneurons.JobSchedule {
		for _, r := range results {
			if r.Policy != policy {
				continue
			}
			for _, j := range r.Jobs {
				if j.ID == id {
					return j
				}
			}
		}
		log.Fatalf("job %s missing under %s", id, policy)
		return superneurons.JobSchedule{}
	}
	f, p, k := pick("fifo", "urgent-alex"), pick("priority", "urgent-alex"), pick("packing", "small-sn")
	fmt.Printf("  urgent-alex waits %v under fifo, %v under priority (preemption at an iteration boundary)\n",
		f.Wait, p.Wait)
	fmt.Printf("  small-sn    waits %v under fifo, %v under packing (backfilled beside the big residents)\n",
		pick("fifo", "small-sn").Wait, k.Wait)
	for _, r := range results {
		for _, j := range r.Jobs {
			if j.Rejected {
				fmt.Printf("  %s is rejected by admission control under every policy: %s\n", j.ID, j.Reason)
			}
		}
		break
	}
}
