// Crashsafe: kill the serving layer mid-append and watch it come
// back without losing an ack or double-sequencing a retry.
//
// The service runs with a write-ahead log (DESIGN.md §11): every
// sequenced job is CRC-framed and fsynced before the submitter is
// acked. This example runs the full cycle in one process:
//
//  1. an uninterrupted reference run records what the merged request
//     log SHOULD look like for a fixed submission stream;
//  2. a second service on a fresh WAL dir takes the first half of the
//     stream, then "crashes" — the process state is thrown away and
//     half an appended frame is left on the WAL tail, exactly what
//     kill -9 mid-write(2) leaves on disk;
//  3. a restarted service recovers the directory, truncating the torn
//     tail; the client paranoidly retries its last submissions (it
//     cannot know which acks were in flight) and each retry is
//     answered from the recovered idempotency index instead of being
//     sequenced twice; the rest of the stream follows;
//  4. the recovered run's merged log is compared byte-for-byte
//     against the reference — they must be identical.
//
// CI's crash-recovery job does the same dance with a real SIGKILL
// against the snserved binary.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

const total, crashAt = 10, 6

func newService(walDir string) *serve.Service {
	svc, err := serve.New(serve.Config{
		Cluster: sched.Cluster{Device: hw.TeslaK40c, Devices: 2},
		Policy:  sched.Packing,
		Shards:  4,
		WALDir:  walDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	return svc
}

// submit sends request i of the fixed stream: same tenant, id, shape
// and idempotency key every time, so a resubmission is a true retry.
func submit(svc *serve.Service, i int) *serve.JobStatus {
	st, err := svc.Submit(serve.SubmitRequest{
		Tenant:         fmt.Sprintf("t%d", i%3),
		ID:             fmt.Sprintf("job%02d", i),
		Network:        "AlexNet",
		Batch:          16 << (i % 2),
		Iterations:     1 + i%3,
		IdempotencyKey: fmt.Sprintf("key-%02d", i),
	})
	if err != nil {
		log.Fatalf("submit %d: %v", i, err)
	}
	return st
}

func drainClose(svc *serve.Service) string {
	if _, err := svc.Drain(); err != nil {
		log.Fatal(err)
	}
	logText := svc.ReplayLog()
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	return logText
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("crashsafe: ")
	tmp, err := os.MkdirTemp("", "crashsafe-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// 1. The uninterrupted reference.
	ref := newService(filepath.Join(tmp, "wal-ref"))
	for i := 0; i < total; i++ {
		submit(ref, i)
	}
	want := drainClose(ref)
	fmt.Printf("reference run: %d jobs, merged log %d bytes\n", total, len(want))

	// 2. The doomed run: first half of the stream, every ack durable.
	walDir := filepath.Join(tmp, "wal")
	doomed := newService(walDir)
	for i := 0; i < crashAt; i++ {
		st := submit(doomed, i)
		if !st.Durable {
			log.Fatalf("ack for %s was not durable", st.ID)
		}
	}
	if _, err := doomed.Drain(); err != nil {
		log.Fatal(err)
	}
	if err := doomed.Close(); err != nil {
		log.Fatal(err)
	}
	// Simulate kill -9 mid-append: half a frame on the WAL tail.
	torn := workload.AppendFrame(nil, []byte("# idem key-06 t0/job06\n"))
	seg := filepath.Join(walDir, "wal-00000000.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashed after %d acked jobs, %d torn bytes left on the WAL tail\n",
		crashAt, len(torn)/2)

	// 3. Restart on the same directory.
	svc := newService(walDir)
	rec := svc.Recovered()
	fmt.Printf("recovered %d jobs from %d segment(s); torn tail truncated at offset %d (%s)\n",
		len(rec.Jobs), rec.Segments, rec.Torn.Offset, rec.Torn.Reason)
	// The client cannot know which of its last acks were in flight
	// when the service died, so it retries them all; the recovered
	// index answers without sequencing twins.
	for i := crashAt - 2; i < crashAt; i++ {
		st := submit(svc, i)
		if !st.Deduped {
			log.Fatalf("retry of %s was sequenced twice", st.ID)
		}
		fmt.Printf("retry of key-%02d deduplicated to %s (seq %d)\n", i, st.ID, st.Seq)
	}
	for i := crashAt; i < total; i++ {
		submit(svc, i)
	}
	got := drainClose(svc)

	// 4. The claim: recovery + retries + the rest of the stream equals
	// the run that never crashed, byte for byte.
	if got != want {
		log.Fatalf("merged log diverged from the uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
	fmt.Printf("merged log after recovery: byte-identical to the uninterrupted run (%d bytes)\n", len(got))
}
