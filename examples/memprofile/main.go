// Memprofile renders the paper's Fig. 10 for any network: step-wise
// GPU memory under the stacked memory techniques (baseline, liveness,
// +offload/prefetch, +cost-aware recomputation).
//
// Usage: memprofile [network] [batch]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	superneurons "repro"
	"repro/internal/metrics"
	"repro/internal/recompute"
	"repro/internal/utp"
)

func main() {
	log.SetFlags(0)
	network, batch := "AlexNet", 200
	if len(os.Args) > 1 {
		network = os.Args[1]
	}
	if len(os.Args) > 2 {
		b, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad batch %q: %v", os.Args[2], err)
		}
		batch = b
	}
	dev := superneurons.TeslaK40c

	base := superneurons.BaselineConfig(dev)
	live := base
	live.Liveness = true
	off := live
	off.Offload = utp.OffloadConvAndKept
	off.Prefetch = true
	rec := off
	rec.Recompute = recompute.CostAware

	names := []string{"baseline", "liveness", "+offload", "+recompute"}
	var series []metrics.Series
	fmt.Printf("step-wise memory for %s batch %d on %s\n\n", network, batch, dev.Name)
	for i, cfg := range []superneurons.Config{base, live, off, rec} {
		net, err := superneurons.Build(network, batch)
		if err != nil {
			log.Fatal(err)
		}
		r, err := superneurons.Run(net, cfg)
		if err != nil {
			log.Fatalf("%s: %v (try a smaller batch)", names[i], err)
		}
		s := metrics.Series{Name: names[i]}
		for _, st := range r.Steps {
			s.X = append(s.X, float64(st.Index))
			s.Y = append(s.Y, float64(st.ResidentBytes)/(1<<20))
		}
		series = append(series, s)
		fmt.Printf("%-11s peak %8.2f MiB at %-12s traffic %7.1f MiB  %6.1f img/s\n",
			names[i], float64(r.PeakResident)/(1<<20), r.Steps[r.PeakStep].Label,
			float64(r.TotalTraffic())/(1<<20), r.Throughput)
	}
	fmt.Println()
	fmt.Print(metrics.Chart("resident MiB per step (forward then backward)", series, 96, 24))
}
