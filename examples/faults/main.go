// Faults: script device failures into a deterministic replay and
// watch the cluster absorb them without losing a job.
//
// The fault layer delivers scripted fail/recover events through the
// same virtual-time event queue as arrivals and iteration
// completions, so a faulted replay is exactly as deterministic as a
// healthy one. Failure semantics are checkpoint/restore at iteration
// boundaries: every completed iteration is an implicit checkpoint,
// victims abort the in-flight iteration (lost and counted) and resume
// from the boundary. A multi-GPU gang first tries an elastic shrink
// onto its surviving members — re-pricing its all-reduce over the
// smaller topology subset — and only re-enters admission when nothing
// survives.
//
// The bundled fault trace runs six jobs on an eight-device cluster
// and kills two devices mid-flight: device 4 permanently at 1.5s
// (displacing two singles), device 2 at 2s with recovery at 4s (in
// time to catch a late arrival). The four-wide ResNet gang loses a
// member and shrinks to three. Zero jobs are lost.
package main

import (
	"fmt"
	"log"
	"reflect"

	superneurons "repro"
)

func main() {
	log.SetFlags(0)

	jobs, plan := superneurons.FaultClusterTrace()
	devices := superneurons.UniformCluster(superneurons.TeslaK40c, superneurons.FaultClusterDevices)
	cluster, err := superneurons.NewCluster(devices,
		superneurons.WithClusterTopology(superneurons.DefaultClusterTopology()),
		superneurons.WithAllReduceOverlap(),
		superneurons.WithFaultPlan(plan),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d x %s (%.2f GiB usable each), %d jobs, %d fault events\n\n",
		cluster.Devices, cluster.Device.Name, float64(cluster.Capacity())/(1<<30),
		len(jobs), len(plan.Events))
	for _, fe := range plan.Events {
		verb := "fails"
		if fe.Recover {
			verb = "recovers"
		}
		fmt.Printf("  t=%6.1fs  device %d %s\n", float64(fe.At)/1e9, fe.Device, verb)
	}

	run := func() *superneurons.ScheduleResult {
		s, err := superneurons.NewScheduler(cluster, superneurons.SchedTopoPacking)
		if err != nil {
			log.Fatal(err)
		}
		r, err := s.Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	r := run()

	fmt.Println("\nper-job recovery:")
	for _, j := range r.Jobs {
		if j.Rejected {
			log.Fatalf("job %s rejected: %s (the fault trace loses no jobs)", j.ID, j.Reason)
		}
		placement := fmt.Sprintf("device %d", j.Device)
		if len(j.Gang) > 0 {
			placement = fmt.Sprintf("gang %v", j.Gang)
		}
		fmt.Printf("  %-12s %d restores, %d shrinks, %d lost iterations, finished on %s\n",
			j.ID, j.Restores, j.Shrinks, j.LostIterations, placement)
	}

	fmt.Println("\nper-device outages:")
	for di, d := range r.Devices {
		if d.Failures == 0 {
			continue
		}
		fmt.Printf("  device %d: %d failure(s), %v down, %d iterations executed\n",
			di, d.Failures, d.Downtime, d.Iterations)
	}

	// The determinism contract survives the faults: a second run of the
	// same trace through the same plan is identical in every field.
	if !reflect.DeepEqual(run(), r) {
		log.Fatal("two faulted replays diverged")
	}
	fmt.Printf("\nmakespan %v; a second replay is identical — failures, shrinks\n", r.Makespan)
	fmt.Println("and restores are as replayable as the schedule itself.")
}
