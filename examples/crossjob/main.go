// Crossjob: lift admission control from per-job worst cases to a
// cross-job device plan, and measure what co-tenancy buys.
//
// Isolated admission charges every job its worst-case dry-run peak
// against the device, as if it ran alone — so two 60%-of-device jobs
// can never share a GPU even though their peaks almost never
// coincide. Cross-job planning admits the set: each device charges
// the worst single tenant plus the persistent floors of the others,
// parking those floors in one shared host-side spill pool. The plan
// is a pure function of the member demands, so the replay — and its
// snapshots — stay byte-deterministic.
//
// The bundled co-tenancy trace (48 jobs in arrival waves, worst-case
// peaks interleaving) is built to separate the two modes: same
// up-front rejections, strictly more co-residents and strictly less
// queueing under the planner, spill bounded by the pool, and an
// honest price — spilled floors pay PCIe both ways each iteration,
// so the makespan stretches slightly while waiting stops.
package main

import (
	"fmt"
	"log"

	superneurons "repro"
)

func main() {
	log.SetFlags(0)

	jobs := superneurons.CoTenantClusterTrace()
	base := superneurons.Cluster{
		Device:  superneurons.TeslaK40c,
		Devices: superneurons.CoTenantClusterDevices,
	}
	fmt.Printf("cluster: %d x %s (%.2f GiB usable each), %d jobs\n\n",
		base.Devices, base.Device.Name, float64(base.Capacity())/(1<<30), len(jobs))

	run := func(crossjob bool, p superneurons.SchedulerPolicy) *superneurons.ScheduleResult {
		c := base
		c.CrossJob = crossjob
		c.HostSpillBytes = 8 << 30 // a modest pool: exhaustion is part of the demo
		s, err := superneurons.NewScheduler(c, p)
		if err != nil {
			log.Fatal(err)
		}
		r, err := s.Run(jobs)
		if err != nil {
			log.Fatalf("%s crossjob=%v: %v", p.Name, crossjob, err)
		}
		return r
	}

	for _, p := range []superneurons.SchedulerPolicy{superneurons.SchedFIFO, superneurons.SchedPacking} {
		iso, cj := run(false, p), run(true, p)
		isoRes, cjRes, spill := 0, 0, int64(0)
		for di := range iso.Devices {
			isoRes += iso.Devices[di].PeakResidents
			cjRes += cj.Devices[di].PeakResidents
			if s := cj.Devices[di].SpillPeak; s > spill {
				spill = s
			}
		}
		fmt.Printf("policy %s:\n", p.Name)
		fmt.Printf("  peak co-residents  %3d -> %3d   (isolated -> cross-job)\n", isoRes, cjRes)
		fmt.Printf("  mean wait          %12v -> %v\n", iso.MeanWait(), cj.MeanWait())
		fmt.Printf("  makespan           %12v -> %v   (spilled floors pay PCIe each iteration)\n",
			iso.Makespan, cj.Makespan)
		fmt.Printf("  spill pool peak    %8.2f MiB of %.0f MiB per device\n\n",
			float64(spill)/(1<<20), float64(8<<30)/(1<<20))
	}

	fmt.Println("same jobs, same devices: the planner packs what isolated")
	fmt.Println("admission serializes, and the never-OOM guarantee holds —")
	fmt.Println("any reservation overflow would have failed the run above.")
}
