// Deepresnet reproduces the paper's headline capability: training
// ResNets far beyond what fits under naive allocation, up to the
// ResNet-2500 with ~10^4 basic layers that SuperNeurons trains at
// batch 1 on a 12 GB K40c (§4.2).
package main

import (
	"errors"
	"fmt"
	"log"

	superneurons "repro"
)

func main() {
	log.SetFlags(0)
	dev := superneurons.TeslaK40c

	// Depth scaling at batch 16: where the naive strategy dies vs how
	// far the full runtime goes (Table 4's setting: n1=6, n2=32, n4=6).
	fmt.Printf("depth scaling at batch 16 on %s (Table 4 ResNet family)\n", dev.Name)
	fmt.Printf("%-8s  %-12s  %-14s\n", "depth", "baseline", "superneurons")
	for _, n3 := range []int{6, 60, 150, 300, 600, 1200} {
		depth := 3*(6+32+n3+6) + 2
		status := func(cfg superneurons.Config) string {
			net := superneurons.BuildResNet(16, 6, 32, n3, 6)
			r, err := superneurons.Run(net, cfg)
			if errors.Is(err, superneurons.ErrOutOfMemory) {
				return "OOM"
			}
			if err != nil {
				log.Fatal(err)
			}
			return fmt.Sprintf("%.1f img/s", r.Throughput)
		}
		fmt.Printf("%-8d  %-12s  %-14s\n", depth,
			status(superneurons.BaselineConfig(dev)),
			status(superneurons.DefaultConfig(dev)))
	}

	// The ResNet-2500: n3 = 789 gives depth 3*(6+32+789+6)+2 = 2501
	// with ~10^4 basic layers, trained at batch 1.
	net := superneurons.BuildResNet(1, 6, 32, 789, 6)
	fmt.Printf("\n%s: %d basic layers, %d weighted layers, batch 1\n",
		net.Name, net.BasicLayers(), net.ConvDepth())
	r, err := superneurons.Run(net, superneurons.DefaultConfig(dev))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(superneurons.Summary(r))
	fmt.Printf("the paper trains the same ResNet-2500 (~10^4 basic layers) on its 12 GB K40c\n")
}
