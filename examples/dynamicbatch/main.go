// Dynamicbatch: train ResNet-50 on a growing batch schedule (the
// dynamic-shape regime of bucketed sequence lengths and batch ramps)
// under a deliberately shrunken pool, and compare the frozen static
// plan against the online adaptive planner.
//
// The static plan is computed for iteration 0's small shape and
// replayed verbatim: the ramp's later shapes OOM and the iterations
// are lost. The adaptive planner watches each iteration's measured
// signals — peak headroom, stall fraction, failed prefetches, the
// predicted footprint of the next declared shape — and widens the
// offload/prefetch/recompute plan at iteration boundaries before the
// bigger shapes arrive.
package main

import (
	"fmt"
	"log"

	superneurons "repro"
	"repro/internal/hw"
)

func main() {
	log.SetFlags(0)

	schedule := superneurons.DynamicSchedules()["ramp50"]
	cfg := superneurons.Config{
		Device:           superneurons.TeslaK40c,
		HostLink:         hw.PCIePinned,
		UseMemPool:       true,
		Liveness:         true,
		DynamicWorkspace: true,
		PoolBytes:        2600 * hw.MiB,
		BatchSchedule:    schedule,
	}
	fmt.Printf("ResNet50 on %s with pool shrunk to %.0f MiB, batch schedule %v\n\n",
		cfg.Device.Name, float64(cfg.PoolBytes)/(1<<20), schedule)

	static, err := superneurons.RunDynamic("ResNet50", cfg)
	if err != nil {
		log.Fatal(err)
	}
	adaptiveCfg := cfg
	adaptiveCfg.AdaptivePlan = true
	adaptive, err := superneurons.RunDynamic("ResNet50", adaptiveCfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range []*superneurons.DynamicResult{static, adaptive} {
		name := "frozen static plan"
		if r.Adaptive {
			name = "adaptive planner"
		}
		fmt.Printf("--- %s ---\n", name)
		for _, it := range r.Iters {
			outcome := "ok"
			if it.OOM {
				outcome = "OOM (iteration lost)"
			}
			replan := ""
			if it.Replanned {
				replan = "  <- replanned"
			}
			fmt.Printf("  iter %d  batch %-3d  offload=%-9v prefetch=%-5v recompute=%-10v peak %5.0f MiB  stall %-10v %s%s\n",
				it.Index, it.Batch, it.Offload, it.Prefetch, it.Recompute,
				float64(it.PoolPeak)/(1<<20), it.StallTime, outcome, replan)
		}
		fmt.Printf("  total: %d OOM failures, %d replans, %d images in %v (%.1f img/s)\n\n",
			r.OOMFailures, r.Replans, r.Images, r.TotalTime, r.Throughput)
	}

	fmt.Printf("adaptive trained %dx the images (%d vs %d) and lost %d fewer iterations\n",
		adaptive.Images/max(static.Images, 1), adaptive.Images, static.Images,
		static.OOMFailures-adaptive.OOMFailures)
}
