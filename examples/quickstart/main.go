// Quickstart: train AlexNet on the simulated 12 GB K40c under the
// naive baseline and under the full SuperNeurons runtime, and compare
// peak memory and speed — the paper's pitch in thirty lines.
package main

import (
	"fmt"
	"log"

	superneurons "repro"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	const batch = 256

	// A synthetic ImageNet-like data source: the memory scheduler only
	// needs geometry, but a real training loop feeds batches.
	src, err := workload.NewSource("AlexNet", batch, 1)
	if err != nil {
		log.Fatal(err)
	}

	net, err := superneurons.Build("AlexNet", batch)
	if err != nil {
		log.Fatal(err)
	}

	dev := superneurons.TeslaK40c
	fmt.Printf("training %s (batch %d) on %s\n\n", net.Name, batch, dev.Name)

	// Naive strategy: every tensor allocated for the whole iteration.
	baseline, err := superneurons.Run(net, superneurons.BaselineConfig(dev))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- naive baseline ---")
	fmt.Print(superneurons.Summary(baseline))

	// SuperNeurons: liveness + unified tensor pool + cost-aware
	// recomputation + tensor cache + dynamic conv workspaces.
	cfg := superneurons.DefaultConfig(dev)
	cfg.Iterations = 3
	net2, _ := superneurons.Build("AlexNet", batch)
	full, err := superneurons.Run(net2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- SuperNeurons runtime ---")
	fmt.Print(superneurons.Summary(full))

	for i := 0; i < 3; i++ {
		b := src.Next()
		fmt.Printf("iteration %d consumed batch %v (seed %x)\n", b.Index, b.Shape, b.Seed)
	}

	saving := 1 - float64(full.PeakResident)/float64(baseline.PeakResident)
	fmt.Printf("\npeak memory saving: %.1f%% (%.0f MiB -> %.0f MiB, floor max(l_i) = %.0f MiB)\n",
		100*saving,
		float64(baseline.PeakResident)/(1<<20),
		float64(full.PeakResident)/(1<<20),
		float64(full.LPeak)/(1<<20))
}
