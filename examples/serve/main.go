// The serve example runs the whole serving stack in one process: it
// starts the concurrent job-submission service on a local port, drives
// it with the load generator (every client a tenant, shapes drawn from
// the bundled static and dynamic traces), drains it, and then proves
// the determinism claim — replaying the service's request log through
// a fresh scheduler reproduces the drained schedule byte-identically.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"strings"
	"time"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	cluster := sched.Cluster{Device: hw.TeslaK40c, Devices: 2}
	svc, err := serve.New(serve.Config{Cluster: cluster, Policy: sched.Packing, QueueDepth: 32})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()
	addr := "http://" + ln.Addr().String()
	fmt.Printf("service on %s: 2 x %s, policy packing\n\n", addr, cluster.Device.Name)

	rep, err := serve.RunLoad(serve.LoadConfig{
		Target:        &serve.Client{BaseURL: addr},
		Clients:       4,
		JobsPerClient: 6,
		Drain:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load: %d submitted (%d queue-full retries, %d failed) in %v — %.0f req/s, p50 %v, p99 %v\n",
		rep.Submitted, rep.QueueFull, rep.Failed, rep.Elapsed.Round(time.Millisecond),
		rep.Throughput, rep.P50.Round(time.Microsecond), rep.P99.Round(time.Microsecond))

	final := rep.Drained.Result
	fmt.Printf("drained: %d jobs (%d rejected), makespan %v, cluster mem util %.1f%%, compute util %.1f%%\n\n",
		rep.Drained.Jobs, rep.Drained.Rejected, final.Makespan,
		100*final.Utilization, 100*final.ComputeUtilization)

	// The determinism-of-replay argument, executed: the request log is
	// a plain workload trace; replaying it offline through a fresh
	// scheduler (exactly what `snsched -trace` does) reproduces the
	// service's drained schedule byte-identically.
	trace, err := workload.ParseTrace(strings.NewReader(rep.Drained.ReplayLog))
	if err != nil {
		log.Fatalf("request log does not parse: %v", err)
	}
	fresh, err := sched.NewScheduler(cluster, sched.Packing)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := fresh.Run(sched.JobsFromTrace(trace))
	if err != nil {
		log.Fatal(err)
	}
	identical := reflect.DeepEqual(replayed.Jobs, final.Jobs) &&
		fmt.Sprintf("%+v", replayed) == fmt.Sprintf("%+v", final)
	fmt.Printf("request log: %d jobs; offline replay byte-identical: %v\n", len(trace), identical)
	if !identical {
		log.Fatal("replay diverged from the served schedule")
	}
}
