package superneurons

import (
	"testing"
)

// BenchmarkMultiTenantSchedulers replays the bundled multi-tenant
// trace on a two-GPU cluster under each scheduling policy and logs
// the policy comparison — the multi-workload scenario the single-job
// paper leaves open. Dry-run estimates are memoized, so steady-state
// iterations measure the scheduler itself.
func BenchmarkMultiTenantSchedulers(b *testing.B) {
	cluster := Cluster{Device: TeslaK40c, Devices: 2}
	jobs := DefaultClusterTrace()
	for _, p := range SchedulerPolicies() {
		b.Run(p.Name, func(b *testing.B) {
			s, err := NewScheduler(cluster, p)
			if err != nil {
				b.Fatal(err)
			}
			var last *ScheduleResult
			for i := 0; i < b.N; i++ {
				r, err := s.Run(jobs)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.Logf("%s: makespan %v, cluster mem util %.1f%%, compute util %.1f%%, mean jct %v, mean wait %v",
				p.Name, last.Makespan, 100*last.Utilization, 100*last.ComputeUtilization,
				last.MeanJCT(), last.MeanWait())
		})
	}
}
