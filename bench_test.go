// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§4). Each benchmark regenerates the experiment
// on the simulated substrate and logs the rows/series the paper
// reports, next to the paper's published numbers; `go test -bench=.`
// therefore reproduces the entire evaluation. EXPERIMENTS.md records a
// reference transcript.
package superneurons

import (
	"testing"

	"repro/internal/experiments"
)

// BenchmarkTable1RecomputeStrategies regenerates Table 1: extra
// recomputations and peak memory of the speed-centric, memory-centric
// and cost-aware strategies on AlexNet/ResNet-50/ResNet-101.
func BenchmarkTable1RecomputeStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkTable2MemoryPool regenerates Table 2: img/s under the
// native cudaMalloc/cudaFree cost model vs the heap-based GPU memory
// pool.
func BenchmarkTable2MemoryPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkTable3TensorCacheTraffic regenerates Table 3: PCIe traffic
// with and without the LRU Tensor Cache as AlexNet's batch grows.
func BenchmarkTable3TensorCacheTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table3()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkTable4GoingDeeper regenerates Table 4: the deepest
// trainable ResNet per framework policy at batch 16 on 12 GB.
func BenchmarkTable4GoingDeeper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table4()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkTable5GoingWider regenerates Table 5: the largest trainable
// batch per framework per network on 12 GB, and Fig. 13's memory-cost
// translation of the same data.
func BenchmarkTable5GoingWider(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data := experiments.Table5Data()
		if i == 0 {
			b.Log("\n" + experiments.Table5(data).String())
			b.Log("\n" + experiments.Fig13(data).String())
		}
	}
}

// BenchmarkFig2ConvWorkspace regenerates Fig. 2: per-network memory
// with/without convolution workspaces and the speedup they buy.
func BenchmarkFig2ConvWorkspace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig2()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkFig8Breakdown regenerates Fig. 8: execution-time and memory
// breakdowns by layer type across the seven networks.
func BenchmarkFig8Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tt, mt := experiments.Fig8()
		if i == 0 {
			b.Log("\n" + tt.String() + "\n" + mt.String())
		}
	}
}

// BenchmarkFig10StepwiseMemory regenerates Fig. 10: AlexNet b=200
// step-wise memory under baseline, liveness, +offload, +recompute.
func BenchmarkFig10StepwiseMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := experiments.Fig10Runs()
		if i == 0 {
			b.Log("\n" + experiments.Fig10(runs))
		}
	}
}

// BenchmarkFig11TensorCacheSpeed regenerates Fig. 11: normalized
// training speed with and without the Tensor Cache.
func BenchmarkFig11TensorCacheSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig11()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkFig12DynamicWorkspace regenerates Fig. 12: assigned vs
// max-speed convolution workspaces under different batch and pool
// sizes, with the resulting throughput.
func BenchmarkFig12DynamicWorkspace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig12()
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

// BenchmarkFig14EndToEnd regenerates Fig. 14: img/s vs batch for every
// framework policy across the six networks on the TITAN Xp.
func BenchmarkFig14EndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := experiments.Fig14()
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}
