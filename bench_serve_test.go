package superneurons

import (
	"fmt"
	"net/http/httptest"
	"testing"
)

// BenchmarkServeThroughput measures the concurrent submission path of
// the serving layer end to end: b.N jobs pushed through the HTTP API
// by concurrent clients, sequenced and admitted against a two-GPU
// cluster. The submission path is lock-then-queue (schedule replays
// are computed lazily on queries), so this benchmarks the service's
// real ingest throughput; the logged req/s metric is the wall-clock
// rate the load generator observed. The sharded variants spread
// tenants over independent sequencers — on a multicore runner the
// 8-shard case shows the contention win; results still merge into one
// deterministic log (the replay tests prove it).
func BenchmarkServeThroughput(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			svc, err := NewService(ServeConfig{
				Cluster:       Cluster{Device: TeslaK40c, Devices: 2},
				Policy:        SchedPacking,
				Shards:        shards,
				QueueDepth:    4096,
				SnapshotEvery: 256,
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()

			clients := 4 * shards
			if clients > 16 {
				clients = 16
			}
			perClient := (b.N + clients - 1) / clients
			b.ReportAllocs()
			b.ResetTimer()
			rep, err := RunLoad(LoadConfig{
				Target:        &ServeClient{BaseURL: ts.URL},
				Clients:       clients,
				JobsPerClient: perClient,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Failed > 0 {
				b.Fatalf("%d submissions failed", rep.Failed)
			}
			b.ReportMetric(rep.Throughput, "req/s")
			b.ReportMetric(float64(rep.P99.Nanoseconds()), "p99-ns")
			if _, err := svc.Drain(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
