package superneurons

import (
	"testing"

	"repro/internal/hw"
)

// BenchmarkDynamicStaticVsAdaptive trains ResNet-50 on the bundled
// ramp50 dynamic-batch trace under a shrunken pool, comparing the
// frozen static plan (computed once before iteration 0 and replayed
// verbatim — it loses the ramp's bigger shapes to OOM) against the
// online adaptive planner (which widens the offload/prefetch/
// recompute plan at iteration boundaries from measured signals).
func BenchmarkDynamicStaticVsAdaptive(b *testing.B) {
	base := Config{
		Device:           TeslaK40c,
		HostLink:         hw.PCIePinned,
		UseMemPool:       true,
		Liveness:         true,
		DynamicWorkspace: true,
		PoolBytes:        2600 * hw.MiB,
		BatchSchedule:    DynamicSchedules()["ramp50"],
	}
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{
		{"static-frozen", false},
		{"adaptive", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := base
			cfg.AdaptivePlan = mode.adaptive
			var last *DynamicResult
			for i := 0; i < b.N; i++ {
				r, err := RunDynamic("ResNet50", cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.Logf("%s: %d OOM failures, %d replans, %d images in %v (%.1f img/s), stall %v",
				mode.name, last.OOMFailures, last.Replans, last.Images,
				last.TotalTime, last.Throughput, last.TotalStall)
		})
	}
}
