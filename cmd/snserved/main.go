// Command snserved runs the concurrent job-submission service over a
// simulated GPU cluster: the long-lived entry point that turns the
// trace-replay scheduler (cmd/snsched) into an HTTP service accepting
// training-job requests from many tenants at once.
//
// The service records every admitted job in a deterministic request
// log (a workload trace); replaying that log with
// "snsched -trace <file>" reproduces every per-job result
// byte-identically. On SIGINT/SIGTERM — or, with -exit-after-drain,
// on a POST /v1/drain — the service drains its admission queue,
// prints the final schedule, and exits cleanly.
//
// Usage:
//
//	snserved                                  # 2x K40c, packing policy, :8080
//	snserved -addr 127.0.0.1:9090 -policy priority -devices 4
//	snserved -shards 8                        # 8 per-tenant sequencer shards
//	snserved -snapshot-every 64               # compact status replays + enable checkpoints
//	snserved -slo 5ms                         # shed load when submit p99 exceeds 5ms
//	snserved -log requests.trace              # persist the replayable log
//	snserved -wal-dir wal/                    # durable WAL; acks survive kill -9, restart recovers
//	snserved -wal-dir wal/ -sync-every 64     # group fsyncs (bounded loss window)
//	snserved -exit-after-drain                # exit after an API drain (CI smoke)
//
// Tenants hash onto -shards independent sequencers; the shards' records
// merge into one total order by slot number, so the request log — and
// every result replayed from it — stays deterministic regardless of the
// shard count. Structured logs (tenant, shard, seq, state transitions)
// go to stderr; -log-level debug traces every accept/sequence.
//
// The API (all JSON unless noted):
//
//	POST /v1/jobs        {"tenant","id","network","batch","schedule","manager","priority","iterations"}
//	GET  /v1/jobs        list all jobs
//	GET  /v1/jobs/{id}   one job's status and projected schedule
//	GET  /v1/metrics     cluster snapshot (?wait_jobs=N&wait_ms=M long-polls)
//	POST /v1/drain       stop admission, flush, return the final schedule
//	GET  /v1/replay-log  the deterministic request log (?sharded=1 for per-shard sections)
//	GET  /v1/checkpoint  resumable replay checkpoint (needs -snapshot-every)
//	GET  /v1/healthz     liveness
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

type options struct {
	addr           string
	device         string
	devices        int
	policyArg      string
	shards         int
	queue          int
	quota          int
	spacingMS      int64
	snapshotEvery  int
	slo            time.Duration
	logPath        string
	logLevel       string
	walDir         string
	syncEvery      int
	exitAfterDrain bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snserved: ")
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&o.device, "device", "k40c", "device profile: k40c or titanxp")
	flag.IntVar(&o.devices, "devices", 2, "number of GPUs in the cluster")
	flag.StringVar(&o.policyArg, "policy", "packing", "scheduler policy: fifo, priority or packing")
	flag.IntVar(&o.shards, "shards", 1, "per-tenant sequencer shards (tenants hash onto shards; results stay deterministic)")
	flag.IntVar(&o.queue, "queue", serve.DefaultQueueDepth, "bounded admission queue depth per shard")
	flag.IntVar(&o.quota, "tenant-quota", 0, "max jobs per tenant over the service lifetime (0 = unlimited)")
	flag.Int64Var(&o.spacingMS, "spacing", 1, "virtual arrival gap between sequenced jobs (ms)")
	flag.IntVar(&o.snapshotEvery, "snapshot-every", 0, "advance the resumable-replay watermark every N sequenced jobs (0 = replay full history)")
	flag.DurationVar(&o.slo, "slo", 0, "submit-latency p99 target; when exceeded the service sheds load with Retry-After (0 = off)")
	flag.StringVar(&o.logPath, "log", "", "write the deterministic request log to this file")
	flag.StringVar(&o.walDir, "wal-dir", "", "durable write-ahead log directory; on start the service recovers whatever the directory holds (truncating a torn tail) and resumes")
	flag.IntVar(&o.syncEvery, "sync-every", 0, "WAL fsync policy: <=1 fsyncs before every ack, N>1 fsyncs every N records (bounded loss window)")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured log level on stderr: debug, info, warn or error")
	flag.BoolVar(&o.exitAfterDrain, "exit-after-drain", false, "exit cleanly once a POST /v1/drain completes")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, nil, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run starts the service, reports its bound address on ready (when
// non-nil), and serves until the context is canceled or — with
// exit-after-drain — the service is drained via the API. It always
// drains before returning and prints the final schedule to w.
func run(ctx context.Context, o options, ready chan<- string, w io.Writer) error {
	var dev hw.DeviceSpec
	switch strings.ToLower(o.device) {
	case "k40c":
		dev = hw.TeslaK40c
	case "titanxp":
		dev = hw.TitanXP
	default:
		return fmt.Errorf("unknown device %q (have k40c, titanxp)", o.device)
	}
	pol, ok := sched.PolicyByName(o.policyArg)
	if !ok {
		return fmt.Errorf("unknown policy %q (have fifo, priority, packing)", o.policyArg)
	}
	var level slog.Level
	if o.logLevel == "" {
		o.logLevel = "info"
	}
	if err := level.UnmarshalText([]byte(o.logLevel)); err != nil {
		return fmt.Errorf("unknown log level %q (have debug, info, warn, error)", o.logLevel)
	}
	lg := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cfg := serve.Config{
		Cluster:       sched.Cluster{Device: dev, Devices: o.devices},
		Policy:        pol,
		Shards:        o.shards,
		QueueDepth:    o.queue,
		TenantQuota:   o.quota,
		SpacingMS:     o.spacingMS,
		SnapshotEvery: o.snapshotEvery,
		SLOTargetP99:  o.slo,
		WALDir:        o.walDir,
		SyncEvery:     o.syncEvery,
		Logger:        lg,
	}
	var logFile *os.File
	if o.logPath != "" {
		f, err := os.Create(o.logPath)
		if err != nil {
			return err
		}
		logFile = f
		cfg.RequestLog = f
	}

	svc, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if rec := svc.Recovered(); rec != nil {
		if rec.Torn != nil {
			fmt.Fprintf(w, "snserved: recovered %d jobs from %s (torn tail truncated at segment %d offset %d: %s)\n",
				len(rec.Jobs), o.walDir, rec.Torn.Segment, rec.Torn.Offset, rec.Torn.Reason)
		} else if len(rec.Jobs) > 0 {
			fmt.Fprintf(w, "snserved: recovered %d jobs from %s (%d segment(s), clean tail)\n",
				len(rec.Jobs), o.walDir, rec.Segments)
		}
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	fmt.Fprintf(w, "snserved: listening on %s — %d x %s (%.2f GiB usable each), policy %s, %d shard(s), queue %d\n",
		ln.Addr(), o.devices, dev.Name, float64(dev.UsableBytes)/(1<<30), pol.Name, svc.Shards(), cfg.QueueDepth)

	server := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return err
	case <-drainedOrNever(svc, o.exitAfterDrain):
	}

	res, err := svc.Drain()
	if err != nil {
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return err
	}
	summary(w, res)
	// Release the durability layer and the request log with real fsyncs
	// on the signal path too (not just after an API drain): a clean exit
	// must leave both fully on disk, and a failure must reach the exit
	// code rather than vanish with the process.
	if err := svc.Close(); err != nil {
		return err
	}
	if logFile != nil {
		if err := logFile.Sync(); err != nil {
			return fmt.Errorf("request log sync: %w", err)
		}
		if err := logFile.Close(); err != nil {
			return fmt.Errorf("request log close: %w", err)
		}
		fmt.Fprintf(w, "request log: %s (replay with: snsched -trace %s)\n", o.logPath, o.logPath)
	}
	return nil
}

// drainedOrNever returns the service's drain signal, or a channel that
// never fires when exit-after-drain is off.
func drainedOrNever(svc *serve.Service, exitAfterDrain bool) <-chan struct{} {
	if exitAfterDrain {
		return svc.Drained()
	}
	return make(chan struct{})
}

// summary prints the final schedule: per-job outcomes and per-device
// utilization, the same numbers a replay of the request log produces.
func summary(w io.Writer, res *sched.Result) {
	rejected := 0
	jt := metrics.NewTable(fmt.Sprintf("final schedule (policy %s): per-job results", res.Policy),
		"job", "network", "batch", "prio", "gpu", "arrival", "wait", "jct", "preempt")
	for _, j := range res.Jobs {
		batch := workload.BatchLabel(j.Batch, j.BatchSchedule)
		if j.Rejected {
			rejected++
			jt.Add(j.ID, j.Network, batch, fmt.Sprint(j.Priority), "-",
				fmt.Sprintf("%dms", int64(j.Arrival)/1e6), "-", "rejected", "-")
			continue
		}
		jt.Add(j.ID, j.Network, batch, fmt.Sprint(j.Priority), fmt.Sprint(j.Device),
			fmt.Sprintf("%dms", int64(j.Arrival)/1e6), j.Wait.String(), j.JCT.String(),
			fmt.Sprint(j.Preemptions))
	}
	fmt.Fprintln(w, jt.String())

	dt := metrics.NewTable("per-device utilization",
		"gpu", "busy", "busy%", "peak reserved MiB", "mem util%", "iterations")
	for i, d := range res.Devices {
		dt.Add(fmt.Sprint(i), d.Busy.String(), fmt.Sprintf("%.1f", 100*d.BusyFrac),
			metrics.MiB(d.PeakReserved), fmt.Sprintf("%.1f", 100*d.MemUtil), fmt.Sprint(d.Iterations))
	}
	fmt.Fprintln(w, dt.String())

	fmt.Fprintf(w, "drained: %d jobs (%d rejected), makespan %v, cluster mem util %.1f%%, compute util %.1f%%\n",
		len(res.Jobs), rejected, res.Makespan, 100*res.Utilization, 100*res.ComputeUtilization)
}
