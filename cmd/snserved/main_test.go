package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

// startDaemon runs the daemon on an ephemeral port and returns a
// client plus the channel run's error lands on.
func startDaemon(t *testing.T, o options, out *bytes.Buffer) (*serve.Client, context.CancelFunc, chan error) {
	t.Helper()
	o.addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, o, ready, out) }()
	select {
	case addr := <-ready:
		return &serve.Client{BaseURL: "http://" + addr}, cancel, errCh
	case err := <-errCh:
		cancel()
		t.Fatalf("daemon failed to start: %v", err)
		return nil, nil, nil
	}
}

// End to end: serve, submit over HTTP, drain via the API, exit
// cleanly, and leave a request log that snsched can replay.
func TestServeSubmitDrainExit(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "requests.trace")
	var out bytes.Buffer
	o := options{device: "k40c", devices: 2, policyArg: "packing",
		queue: 8, spacingMS: 1, logPath: logPath, exitAfterDrain: true}
	c, cancel, errCh := startDaemon(t, o, &out)
	defer cancel()

	if err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
	for _, req := range []serve.SubmitRequest{
		{Tenant: "a", ID: "x", Network: "AlexNet", Batch: 16, Iterations: 2},
		{Tenant: "b", ID: "y", Network: "AlexNet", Schedule: "16,32", Iterations: 2},
	} {
		if _, err := c.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if d.Jobs != 2 {
		t.Errorf("drained %d jobs, want 2", d.Jobs)
	}

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after drain")
	}
	for _, want := range []string{"listening on", "final schedule", "per-device utilization", "drained: 2 jobs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// The persisted request log is a valid trace holding both jobs.
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("request log does not parse: %v", err)
	}
	if len(trace) != 2 {
		t.Errorf("request log holds %d jobs, want 2", len(trace))
	}
	if string(data) != d.ReplayLog {
		t.Error("request-log file differs from the drain summary's replay log")
	}
}

// A signal (context cancellation) also drains and exits cleanly.
func TestServeSignalDrains(t *testing.T) {
	var out bytes.Buffer
	o := options{device: "k40c", devices: 1, policyArg: "fifo", queue: 4, spacingMS: 1}
	c, cancel, errCh := startDaemon(t, o, &out)
	if _, err := c.Submit(serve.SubmitRequest{Network: "AlexNet", Batch: 16}); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit after signal: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
	if !strings.Contains(out.String(), "drained: 1 jobs") {
		t.Errorf("signal drain summary missing:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, options{device: "nope", policyArg: "packing", addr: "127.0.0.1:0"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run(ctx, options{device: "k40c", policyArg: "nope", addr: "127.0.0.1:0"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("unknown policy accepted")
	}
}
