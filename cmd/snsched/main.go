// Command snsched replays a multi-tenant workload trace on a
// simulated GPU cluster and prints per-job JCT/queueing tables and
// per-device utilization under each scheduling policy (FIFO,
// priority with preemption, memory-aware packing).
//
// The replay is fully deterministic: admission decisions use the
// memmgr runtime's dry-run peak/iteration estimates and the cluster
// runs in virtual time, so two invocations on the same trace produce
// byte-identical output — including runs whose scenario scripts device
// failures mid-flight.
//
// Usage:
//
//	snsched                         # static scenario, all policies, 2x K40c
//	snsched -scenario list          # list the bundled scenarios
//	snsched -scenario gang          # 1000 multi-GPU gangs, 256-device cluster
//	snsched -scenario cotenant      # co-tenancy trace under cross-job planning
//	snsched -scenario faults        # scripted device failures and recoveries
//	snsched -trace jobs.trace       # replay a custom trace file
//	snsched -policy packing -devices 4 -device titanxp
//	snsched -scenario faults -dump-trace   # print a scenario's trace file
//
// Each scenario bundles a trace with the cluster it targets (size,
// topology, all-reduce overlap, cross-job planning, fault plan);
// -devices, -device and -trace override the pieces individually. A
// trace file may script device faults alongside jobs
// ("fault fail dev=4 at=1500", "fault recover dev=4 at=2s"); victims
// restore from their last iteration-boundary checkpoint and multi-GPU
// gangs shrink elastically to their surviving members when they can.
//
// Dynamic jobs declare a per-iteration batch schedule in the trace's
// batch field ("128x2,512" runs two iterations at 128 then one at
// 512); admission reserves the worst-case shape, so a ramping job can
// never OOM its device mid-run. Multi-GPU jobs declare a gang size in
// the trace's optional gpus=N field. -log-level emits the structured
// admission/preemption/failure log on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"strings"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

type options struct {
	tracePath string
	scenario  string
	devices   int
	device    string
	policyArg string
	logLevel  string
}

// scenario is one bundled preset: a trace plus the cluster shape it
// was built for.
type scenario struct {
	name string
	desc string
	// jobs/faults produce the bundled trace; devices is the cluster
	// size the trace targets; options assemble the cluster (topology,
	// overlap, cross-job planning, fault plan) via sched.NewCluster.
	jobs    func() ([]workload.TraceJob, []workload.TraceFault)
	devices int
	opts    func(faults []workload.TraceFault) []sched.Option
}

// plain wraps a fault-free bundled trace.
func plain(f func() []workload.TraceJob) func() ([]workload.TraceJob, []workload.TraceFault) {
	return func() ([]workload.TraceJob, []workload.TraceFault) { return f(), nil }
}

// faultOpt converts trace fault events into the cluster option; it is
// a no-op for fault-free traces, so every scenario threads it.
func faultOpt(faults []workload.TraceFault) []sched.Option {
	if len(faults) == 0 {
		return nil
	}
	return []sched.Option{sched.WithFaultPlan(sched.FaultsFromTrace(faults))}
}

// scenarios lists the bundled presets in listing order.
var scenarios = []scenario{
	{
		name: "static", desc: "bundled multi-tenant trace on 2 devices (the default)",
		jobs: plain(workload.DefaultTrace), devices: 2, opts: faultOpt,
	},
	{
		name: "dynamic", desc: "dynamic per-iteration batch schedules, worst-case admission",
		jobs: plain(workload.DefaultDynamicTrace), devices: 2, opts: faultOpt,
	},
	{
		name: "gang", desc: "1000 multi-GPU gangs on a 256-device multi-node cluster, overlapped all-reduce",
		jobs: plain(workload.GangTrace), devices: workload.GangClusterDevices,
		opts: func(faults []workload.TraceFault) []sched.Option {
			return append([]sched.Option{sched.WithTopology(hw.DefaultTopology()), sched.WithOverlap()},
				faultOpt(faults)...)
		},
	},
	{
		name: "cotenant", desc: "co-tenancy arrival waves under interference-aware cross-job planning (8 GiB spill)",
		jobs: plain(workload.CoTenantTrace), devices: workload.CoTenantClusterDevices,
		opts: func(faults []workload.TraceFault) []sched.Option {
			return append([]sched.Option{sched.WithCrossJob(8 * hw.GiB)}, faultOpt(faults)...)
		},
	},
	{
		name: "crossjob", desc: "the static trace under cross-job planning (default spill pool)",
		jobs: plain(workload.DefaultTrace), devices: 2,
		opts: func(faults []workload.TraceFault) []sched.Option {
			return append([]sched.Option{sched.WithCrossJob(0)}, faultOpt(faults)...)
		},
	},
	{
		name: "faults", desc: "scripted device failures: checkpoint restores and elastic gang shrink on 8 devices",
		jobs: workload.FaultTrace, devices: workload.FaultClusterDevices,
		opts: func(faults []workload.TraceFault) []sched.Option {
			return append([]sched.Option{sched.WithTopology(hw.DefaultTopology()), sched.WithOverlap()},
				faultOpt(faults)...)
		},
	},
}

func scenarioByName(name string) (scenario, bool) {
	for _, s := range scenarios {
		if s.name == name {
			return s, true
		}
	}
	return scenario{}, false
}

func scenarioNames() string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.name
	}
	return strings.Join(names, ", ")
}

// listScenarios renders the -scenario list table.
func listScenarios(w io.Writer) {
	t := metrics.NewTable("bundled scenarios (-scenario NAME)", "name", "devices", "description")
	for _, s := range scenarios {
		t.Add(s.name, fmt.Sprint(s.devices), s.desc)
	}
	fmt.Fprintln(w, t.String())
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snsched: ")
	var (
		o    options
		dump bool
	)
	flag.StringVar(&o.scenario, "scenario", "static",
		"bundled scenario: "+scenarioNames()+" (or list)")
	flag.StringVar(&o.tracePath, "trace", "", "trace file replacing the scenario's bundled trace (may script fault events)")
	flag.IntVar(&o.devices, "devices", 0, "number of GPUs in the cluster (default: the scenario's size)")
	flag.StringVar(&o.device, "device", "k40c", "device profile: k40c or titanxp")
	flag.StringVar(&o.policyArg, "policy", "all", "scheduler policy: fifo, priority, packing, topo or all")
	flag.StringVar(&o.logLevel, "log-level", "", "structured scheduling log on stderr: debug, info, warn or error (default: off)")
	flag.BoolVar(&dump, "dump-trace", false, "print the scenario's bundled trace in the trace-file format and exit")
	flag.Parse()

	if o.scenario == "list" {
		listScenarios(os.Stdout)
		return
	}
	if dump {
		sc, ok := scenarioByName(o.scenario)
		if !ok {
			log.Fatalf("unknown scenario %q (have %s, list)", o.scenario, scenarioNames())
		}
		jobs, faults := sc.jobs()
		fmt.Print(workload.FormatTraceEvents(jobs, faults))
		return
	}
	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(o options, w io.Writer) error {
	if o.scenario == "" {
		o.scenario = "static"
	}
	sc, ok := scenarioByName(o.scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (have %s, list)", o.scenario, scenarioNames())
	}
	trace, faults := sc.jobs()
	if o.devices <= 0 {
		o.devices = sc.devices
	}
	if o.tracePath != "" {
		f, err := os.Open(o.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		// A malformed trace is a user error: fail with the file and the
		// offending line (the parser names it, and a gang wider than the
		// cluster dies here, not hours into the replay), never a bare
		// message. Fault events ride in the same file.
		if trace, faults, err = workload.ParseTraceEvents(f, o.devices); err != nil {
			return fmt.Errorf("%s: %w", o.tracePath, err)
		}
	}

	var dev hw.DeviceSpec
	switch strings.ToLower(o.device) {
	case "k40c":
		dev = hw.TeslaK40c
	case "titanxp":
		dev = hw.TitanXP
	default:
		return fmt.Errorf("unknown device %q (have k40c, titanxp)", o.device)
	}
	cluster, err := sched.NewCluster(sched.Uniform(dev, o.devices), sc.opts(faults)...)
	if err != nil {
		return err
	}
	jobs := sched.JobsFromTrace(trace)

	var lg *slog.Logger
	if o.logLevel != "" {
		var level slog.Level
		if err := level.UnmarshalText([]byte(o.logLevel)); err != nil {
			return fmt.Errorf("bad -log-level %q (have debug, info, warn, error)", o.logLevel)
		}
		lg = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	}

	var results []*sched.Result
	if o.policyArg == "all" {
		if results, err = policy.CompareSchedulers(cluster, jobs); err != nil {
			return err
		}
	} else {
		p, ok := sched.PolicyByName(o.policyArg)
		if !ok {
			return fmt.Errorf("unknown policy %q (have fifo, priority, packing, topo, all)", o.policyArg)
		}
		s, err := sched.NewScheduler(cluster, p)
		if err != nil {
			return err
		}
		s.SetLogger(lg)
		r, err := s.Run(jobs)
		if err != nil {
			return err
		}
		results = []*sched.Result{r}
	}

	fmt.Fprintf(w, "scenario %s: %d x %s (%.2f GiB usable each), %d jobs",
		o.scenario, cluster.Devices, dev.Name, float64(cluster.Capacity())/(1<<30), len(jobs))
	if n := len(faults); n > 0 {
		fmt.Fprintf(w, ", %d fault events", n)
	}
	fmt.Fprint(w, "\n\n")
	for _, r := range results {
		render(w, r)
	}
	if len(results) > 1 {
		renderComparison(w, results)
	}
	return nil
}

// render prints one policy's per-job and per-device tables, plus the
// fault-recovery table when the run scripted device faults.
func render(w io.Writer, r *sched.Result) {
	faulted := !r.Cluster.Faults.Empty()
	jt := metrics.NewTable(fmt.Sprintf("policy %s: per-job schedule", r.Policy),
		"job", "network", "batch", "manager", "prio", "gpu", "arrival", "wait", "jct", "preempt")
	for _, j := range r.Jobs {
		mgr := j.Manager
		if mgr == "" {
			mgr = "-"
		}
		batch := workload.BatchLabel(j.Batch, j.BatchSchedule)
		if j.Rejected {
			jt.Add(j.ID, j.Network, batch, mgr, fmt.Sprint(j.Priority),
				"-", ms(int64(j.Arrival)), "-", "rejected", "-")
			continue
		}
		jt.Add(j.ID, j.Network, batch, mgr, fmt.Sprint(j.Priority),
			gangLabel(j), ms(int64(j.Arrival)), j.Wait.String(), j.JCT.String(),
			fmt.Sprint(j.Preemptions))
	}
	fmt.Fprintln(w, jt.String())

	if faulted {
		ft := metrics.NewTable(fmt.Sprintf("policy %s: fault recovery", r.Policy),
			"job", "restores", "shrinks", "lost iters", "final placement")
		for _, j := range r.Jobs {
			if j.Restores+j.Shrinks+j.LostIterations == 0 {
				continue
			}
			ft.Add(j.ID, fmt.Sprint(j.Restores), fmt.Sprint(j.Shrinks),
				fmt.Sprint(j.LostIterations), gangLabel(j))
		}
		fmt.Fprintln(w, ft.String())
	}

	cols := []string{"gpu", "busy", "busy%", "peak reserved MiB", "mem util%", "residents", "spill MiB", "iterations"}
	if faulted {
		cols = append(cols, "fails", "downtime")
	}
	dt := metrics.NewTable(fmt.Sprintf("policy %s: per-device utilization", r.Policy), cols...)
	for i, d := range r.Devices {
		row := []string{fmt.Sprint(i), d.Busy.String(), pct(d.BusyFrac), metrics.MiB(d.PeakReserved),
			pct(d.MemUtil), fmt.Sprint(d.PeakResidents), metrics.MiB(d.SpillPeak),
			fmt.Sprint(d.Iterations)}
		if faulted {
			row = append(row, fmt.Sprint(d.Failures), d.Downtime.String())
		}
		dt.Add(row...)
	}
	fmt.Fprintln(w, dt.String())
}

// renderComparison prints the policy-vs-policy summary.
func renderComparison(w io.Writer, results []*sched.Result) {
	faulted := len(results) > 0 && !results[0].Cluster.Faults.Empty()
	cols := []string{"policy", "makespan", "cluster mem util%", "compute util%", "mean jct", "mean wait", "preemptions", "rejected"}
	if faulted {
		cols = append(cols, "restores", "shrinks")
	}
	t := metrics.NewTable("scheduler policy comparison", cols...)
	for _, r := range results {
		pre, rej, res, shr := 0, 0, 0, 0
		for _, j := range r.Jobs {
			pre += j.Preemptions
			res += j.Restores
			shr += j.Shrinks
			if j.Rejected {
				rej++
			}
		}
		row := []string{r.Policy, r.Makespan.String(), pct(r.Utilization), pct(r.ComputeUtilization),
			r.MeanJCT().String(), r.MeanWait().String(), fmt.Sprint(pre), fmt.Sprint(rej)}
		if faulted {
			row = append(row, fmt.Sprint(res), fmt.Sprint(shr))
		}
		t.Add(row...)
	}
	fmt.Fprintln(w, t.String())
}

// gangLabel renders a job's placement: the device for singles, the
// full gang ("0+1+2+3") for multi-GPU jobs.
func gangLabel(j sched.JobResult) string {
	if len(j.Gang) == 0 {
		return fmt.Sprint(j.Device)
	}
	parts := make([]string, len(j.Gang))
	for i, g := range j.Gang {
		parts[i] = fmt.Sprint(g)
	}
	return strings.Join(parts, "+")
}

func ms(ns int64) string { return fmt.Sprintf("%dms", ns/1e6) }

func pct(f float64) string { return fmt.Sprintf("%.1f", 100*f) }
