// Command snsched replays a multi-tenant workload trace on a
// simulated GPU cluster and prints per-job JCT/queueing tables and
// per-device utilization under each scheduling policy (FIFO,
// priority with preemption, memory-aware packing).
//
// The replay is fully deterministic: admission decisions use the
// memmgr runtime's dry-run peak/iteration estimates and the cluster
// runs in virtual time, so two invocations on the same trace produce
// byte-identical output.
//
// Usage:
//
//	snsched                         # bundled trace, all policies, 2x K40c
//	snsched -trace jobs.trace       # replay a custom trace file
//	snsched -dynamic                # bundled dynamic-batch trace
//	snsched -policy packing -devices 4 -device titanxp
//	snsched -gang                   # bundled 256-device gang trace
//	snsched -gang -overlap -policy topo
//	snsched -cotenant -crossjob     # co-tenancy trace under cross-job planning
//	snsched -dump-trace             # print the bundled trace file
//
// Dynamic jobs declare a per-iteration batch schedule in the trace's
// batch field ("128x2,512" runs two iterations at 128 then one at
// 512); admission reserves the worst-case shape, so a ramping job can
// never OOM its device mid-run.
//
// Multi-GPU jobs declare a gang size in the trace's optional gpus=N
// field; -gang replays the bundled 1000-job gang trace on a 256-device
// multi-node cluster (nodes of 8, NVLink islands of 4), where the
// topology-aware "topo" policy packs gangs onto the fastest
// interconnect tier that holds them. -overlap hides each gang's
// bucketed all-reduce behind the backward pass.
//
// -crossjob plans co-resident jobs together per device instead of
// admitting each against its worst case in isolation: one shared
// host-side spill pool per device (-spill GiB) parks the persistent
// floors of waiting tenants, and admission charges the worst single
// tenant plus the parked floors — strictly more jobs per device, still
// never an OOM. -cotenant replays the bundled 48-job co-tenancy trace
// built to show the difference. -log-level emits the structured
// admission/preemption/spill log on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"strings"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

type options struct {
	tracePath string
	dynamic   bool
	gang      bool
	cotenant  bool
	crossjob  bool
	spillGiB  int
	overlap   bool
	devices   int
	device    string
	policyArg string
	logLevel  string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snsched: ")
	var (
		o    options
		dump bool
	)
	flag.StringVar(&o.tracePath, "trace", "", "trace file (default: the bundled multi-tenant trace)")
	flag.BoolVar(&o.dynamic, "dynamic", false, "replay the bundled dynamic-batch trace instead of the static default")
	flag.BoolVar(&o.gang, "gang", false, "replay the bundled multi-GPU gang trace on a 256-device multi-node cluster")
	flag.BoolVar(&o.cotenant, "cotenant", false, "replay the bundled co-tenancy trace (pairs naturally with -crossjob)")
	flag.BoolVar(&o.crossjob, "crossjob", false, "plan co-resident jobs together per device (interference-aware admission with host-side floor spilling)")
	flag.IntVar(&o.spillGiB, "spill", 0, "per-device host spill pool in GiB under -crossjob (0 selects the 64 GiB default)")
	flag.BoolVar(&o.overlap, "overlap", false, "overlap gang all-reduce with backward compute")
	flag.IntVar(&o.devices, "devices", 0, "number of GPUs in the cluster (default 2, or 256 with -gang)")
	flag.StringVar(&o.device, "device", "k40c", "device profile: k40c or titanxp")
	flag.StringVar(&o.policyArg, "policy", "all", "scheduler policy: fifo, priority, packing, topo or all")
	flag.StringVar(&o.logLevel, "log-level", "", "structured scheduling log on stderr: debug, info, warn or error (default: off)")
	flag.BoolVar(&dump, "dump-trace", false, "print the bundled trace in the trace-file format and exit")
	flag.Parse()

	if dump {
		switch {
		case o.gang:
			fmt.Print(workload.FormatTrace(workload.GangTrace()))
		case o.cotenant:
			fmt.Print(workload.FormatTrace(workload.CoTenantTrace()))
		case o.dynamic:
			fmt.Print(workload.FormatTrace(workload.DefaultDynamicTrace()))
		default:
			fmt.Print(workload.FormatTrace(workload.DefaultTrace()))
		}
		return
	}
	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(o options, w io.Writer) error {
	trace := workload.DefaultTrace()
	switch {
	case o.gang:
		trace = workload.GangTrace()
	case o.cotenant:
		trace = workload.CoTenantTrace()
	case o.dynamic:
		trace = workload.DefaultDynamicTrace()
	}
	if o.devices <= 0 {
		o.devices = 2
		if o.gang {
			o.devices = workload.GangClusterDevices
		}
	}
	if o.tracePath != "" {
		f, err := os.Open(o.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		// A malformed trace is a user error: fail with the file and the
		// offending line (the parser names it, and a gang wider than the
		// cluster dies here, not hours into the replay), never a bare
		// message.
		if trace, err = workload.ParseTraceLimit(f, o.devices); err != nil {
			return fmt.Errorf("%s: %w", o.tracePath, err)
		}
	}

	var dev hw.DeviceSpec
	switch strings.ToLower(o.device) {
	case "k40c":
		dev = hw.TeslaK40c
	case "titanxp":
		dev = hw.TitanXP
	default:
		return fmt.Errorf("unknown device %q (have k40c, titanxp)", o.device)
	}
	cluster := sched.Cluster{Device: dev, Devices: o.devices, Overlap: o.overlap,
		CrossJob: o.crossjob, HostSpillBytes: int64(o.spillGiB) * hw.GiB}
	if o.gang {
		cluster.Topology = hw.DefaultTopology()
	}
	jobs := sched.JobsFromTrace(trace)

	var lg *slog.Logger
	if o.logLevel != "" {
		var level slog.Level
		if err := level.UnmarshalText([]byte(o.logLevel)); err != nil {
			return fmt.Errorf("bad -log-level %q (have debug, info, warn, error)", o.logLevel)
		}
		lg = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	}

	var results []*sched.Result
	if o.policyArg == "all" {
		var err error
		if results, err = policy.CompareSchedulers(cluster, jobs); err != nil {
			return err
		}
	} else {
		p, ok := sched.PolicyByName(o.policyArg)
		if !ok {
			return fmt.Errorf("unknown policy %q (have fifo, priority, packing, topo, all)", o.policyArg)
		}
		s, err := sched.NewScheduler(cluster, p)
		if err != nil {
			return err
		}
		s.SetLogger(lg)
		r, err := s.Run(jobs)
		if err != nil {
			return err
		}
		results = []*sched.Result{r}
	}

	fmt.Fprintf(w, "cluster: %d x %s (%.2f GiB usable each), %d jobs\n\n",
		cluster.Devices, dev.Name, float64(cluster.Capacity())/(1<<30), len(jobs))
	for _, r := range results {
		render(w, r)
	}
	if len(results) > 1 {
		renderComparison(w, results)
	}
	return nil
}

// render prints one policy's per-job and per-device tables.
func render(w io.Writer, r *sched.Result) {
	jt := metrics.NewTable(fmt.Sprintf("policy %s: per-job schedule", r.Policy),
		"job", "network", "batch", "manager", "prio", "gpu", "arrival", "wait", "jct", "preempt")
	for _, j := range r.Jobs {
		mgr := j.Manager
		if mgr == "" {
			mgr = "-"
		}
		batch := workload.BatchLabel(j.Batch, j.BatchSchedule)
		if j.Rejected {
			jt.Add(j.ID, j.Network, batch, mgr, fmt.Sprint(j.Priority),
				"-", ms(int64(j.Arrival)), "-", "rejected", "-")
			continue
		}
		jt.Add(j.ID, j.Network, batch, mgr, fmt.Sprint(j.Priority),
			gangLabel(j), ms(int64(j.Arrival)), j.Wait.String(), j.JCT.String(),
			fmt.Sprint(j.Preemptions))
	}
	fmt.Fprintln(w, jt.String())

	dt := metrics.NewTable(fmt.Sprintf("policy %s: per-device utilization", r.Policy),
		"gpu", "busy", "busy%", "peak reserved MiB", "mem util%", "residents", "spill MiB", "iterations")
	for i, d := range r.Devices {
		dt.Add(fmt.Sprint(i), d.Busy.String(), pct(d.BusyFrac), metrics.MiB(d.PeakReserved),
			pct(d.MemUtil), fmt.Sprint(d.PeakResidents), metrics.MiB(d.SpillPeak),
			fmt.Sprint(d.Iterations))
	}
	fmt.Fprintln(w, dt.String())
}

// renderComparison prints the policy-vs-policy summary.
func renderComparison(w io.Writer, results []*sched.Result) {
	t := metrics.NewTable("scheduler policy comparison",
		"policy", "makespan", "cluster mem util%", "compute util%", "mean jct", "mean wait", "preemptions", "rejected")
	for _, r := range results {
		pre, rej := 0, 0
		for _, j := range r.Jobs {
			pre += j.Preemptions
			if j.Rejected {
				rej++
			}
		}
		t.Add(r.Policy, r.Makespan.String(), pct(r.Utilization), pct(r.ComputeUtilization),
			r.MeanJCT().String(), r.MeanWait().String(), fmt.Sprint(pre), fmt.Sprint(rej))
	}
	fmt.Fprintln(w, t.String())
}

// gangLabel renders a job's placement: the device for singles, the
// full gang ("0+1+2+3") for multi-GPU jobs.
func gangLabel(j sched.JobResult) string {
	if len(j.Gang) == 0 {
		return fmt.Sprint(j.Device)
	}
	parts := make([]string, len(j.Gang))
	for i, g := range j.Gang {
		parts[i] = fmt.Sprint(g)
	}
	return strings.Join(parts, "+")
}

func ms(ns int64) string { return fmt.Sprintf("%dms", ns/1e6) }

func pct(f float64) string { return fmt.Sprintf("%.1f", 100*f) }
