package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

// The acceptance criterion for the replay: two consecutive runs of
// the bundled trace produce byte-identical JCT/utilization tables.
func TestReplayDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(options{devices: 2, device: "k40c", policyArg: "all"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(options{devices: 2, device: "k40c", policyArg: "all"}, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two replays differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"policy fifo", "policy priority", "policy packing",
		"scheduler policy comparison", "rejected", "per-device utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// A trace file round-trips through -trace exactly like the bundled
// default.
func TestTraceFileMatchesBundled(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "default.trace")
	if err := os.WriteFile(path, []byte(workload.FormatTrace(workload.DefaultTrace())), 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile, bundled bytes.Buffer
	if err := run(options{tracePath: path, devices: 2, device: "k40c", policyArg: "packing"}, &fromFile); err != nil {
		t.Fatal(err)
	}
	if err := run(options{devices: 2, device: "k40c", policyArg: "packing"}, &bundled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile.Bytes(), bundled.Bytes()) {
		t.Error("replaying the formatted bundled trace from a file differs from the built-in default")
	}
}

// Malformed trace files fail with the file name and the offending
// line number, not a bare error (main exits non-zero via log.Fatal).
func TestMalformedTraceNamesOffendingLine(t *testing.T) {
	header := "# id arrival_ms network batch manager priority iterations\n"
	ok := "good 0 AlexNet 16 naive 1 1\n"
	cases := []struct {
		name     string
		trace    string
		wantLine string
	}{
		{"missing fields", header + ok + "bad 100 AlexNet 16 naive 1\n", "line 3"},
		{"extra fields", header + ok + "bad 100 AlexNet 16 naive 1 1 1\n", "line 3"},
		{"bad arrival", header + "bad x AlexNet 16 naive 1 1\n", "line 2"},
		{"negative arrival", header + "bad -5 AlexNet 16 naive 1 1\n", "line 2"},
		{"bad batch", header + ok + ok2("bad", "100", "AlexNet", "zero", "naive", "1", "1"), "line 3"},
		{"zero batch", header + ok2("bad", "100", "AlexNet", "0", "naive", "1", "1"), "line 2"},
		{"bad schedule repeat", header + ok2("bad", "100", "AlexNet", "16x0", "naive", "1", "1"), "line 2"},
		{"bad priority", header + ok2("bad", "100", "AlexNet", "16", "naive", "high", "1"), "line 2"},
		{"bad iterations", header + ok2("bad", "100", "AlexNet", "16", "naive", "1", "none"), "line 2"},
		{"zero iterations", header + ok2("bad", "100", "AlexNet", "16", "naive", "1", "0"), "line 2"},
		{"duplicate id", header + ok + "\n# comment\n" + ok, "line 5"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.trace")
			if err := os.WriteFile(path, []byte(c.trace), 0o644); err != nil {
				t.Fatal(err)
			}
			err := run(options{tracePath: path, devices: 2, device: "k40c", policyArg: "packing"}, &bytes.Buffer{})
			if err == nil {
				t.Fatal("malformed trace accepted")
			}
			if !strings.Contains(err.Error(), c.wantLine) {
				t.Errorf("error %q does not name the offending %s", err, c.wantLine)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error %q does not name the trace file", err)
			}
		})
	}
}

// ok2 builds one trace line from its seven fields.
func ok2(f ...string) string { return strings.Join(f, " ") + "\n" }

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(options{devices: 2, device: "nope", policyArg: "all"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run(options{devices: 2, device: "k40c", policyArg: "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown policy accepted")
	}
}

// The bundled dynamic trace replays deterministically and renders the
// per-iteration batch schedules in the job table.
func TestDynamicReplayDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	opts := options{scenario: "dynamic", devices: 2, device: "k40c", policyArg: "all"}
	if err := run(opts, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(opts, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two dynamic replays differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	for _, want := range []string{"128,256,384,512", "128,512,128", "16x2,32x2"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("output missing schedule %q", want)
		}
	}
}

// The dynamic trace round-trips through the trace-file schedule
// syntax exactly like the bundled default.
func TestDynamicTraceFileMatchesBundled(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dynamic.trace")
	if err := os.WriteFile(path, []byte(workload.FormatTrace(workload.DefaultDynamicTrace())), 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile, bundled bytes.Buffer
	if err := run(options{scenario: "dynamic", tracePath: path, devices: 2, device: "k40c", policyArg: "packing"}, &fromFile); err != nil {
		t.Fatal(err)
	}
	if err := run(options{scenario: "dynamic", devices: 2, device: "k40c", policyArg: "packing"}, &bundled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile.Bytes(), bundled.Bytes()) {
		t.Error("replaying the formatted dynamic trace from a file differs from the built-in")
	}
}

// The bundled gang trace replays deterministically on the 256-device
// multi-node cluster — the CLI half of the gang determinism gate —
// and renders gang placements in the job table.
func TestGangReplayDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	opts := options{scenario: "gang", device: "k40c", policyArg: "topo"}
	if err := run(opts, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(opts, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two gang replays differ")
	}
	out := a.String()
	if !strings.Contains(out, "policy topo") {
		t.Error("output missing the topo policy table")
	}
	if !strings.Contains(out, "+") {
		t.Error("job table renders no multi-device gang placement")
	}
}

// A trace whose gang exceeds the cluster fails at parse time with the
// offending line, before any simulation runs.
func TestGangWiderThanClusterFailsAtParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wide.trace")
	trace := "ok 0 AlexNet 16 naive 1 1\nwide 10 AlexNet 16 naive 1 1 gpus=3\n"
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(options{tracePath: path, devices: 2, device: "k40c", policyArg: "packing"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("gang wider than the cluster accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "gang needs 3 devices") {
		t.Errorf("error %q does not name the line and the gang width", err)
	}
}

// The faults scenario is the headline failure demo: two replays are
// byte-identical (the CLI half of the fault determinism gate), the
// fault-recovery and downtime tables render, and no job is lost.
func TestFaultScenarioReplayDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	opts := options{scenario: "faults", device: "k40c", policyArg: "all"}
	if err := run(opts, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(opts, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two fault replays differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"3 fault events", "fault recovery", "restores", "shrinks",
		"lost iters", "downtime", "gang-resnet"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "rejected\n") {
		t.Error("fault scenario rejected a job")
	}
}

// -scenario selects the preset cluster; unknown names fail loudly and
// name the choices.
func TestScenarioSelection(t *testing.T) {
	err := run(options{scenario: "nope", device: "k40c", policyArg: "all"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") ||
		!strings.Contains(err.Error(), "faults") {
		t.Errorf("unknown scenario error %v does not list the presets", err)
	}
	var out bytes.Buffer
	if err := run(options{scenario: "cotenant", device: "k40c", policyArg: "packing"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scenario cotenant") {
		t.Error("cotenant scenario header missing")
	}
	// Every preset replays cleanly end to end under one policy.
	for _, sc := range scenarios {
		if sc.name == "gang" {
			continue // exercised by TestGangReplayDeterministic (256 devices)
		}
		if err := run(options{scenario: sc.name, device: "k40c", policyArg: "topo"}, &bytes.Buffer{}); err != nil {
			t.Errorf("scenario %s: %v", sc.name, err)
		}
	}
	listScenarios(&out)
	for _, sc := range scenarios {
		if !strings.Contains(out.String(), sc.name) {
			t.Errorf("scenario list missing %s", sc.name)
		}
	}
}

// A custom trace file may script fault events; the faults fire exactly
// as a scenario's bundled plan would, and a malformed fault line fails
// at parse time naming the file, the line and the token.
func TestTraceFileFaultEvents(t *testing.T) {
	jobs, faults := workload.FaultTrace()
	path := filepath.Join(t.TempDir(), "faults.trace")
	if err := os.WriteFile(path, []byte(workload.FormatTraceEvents(jobs, faults)), 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile, bundled bytes.Buffer
	if err := run(options{scenario: "faults", tracePath: path, device: "k40c", policyArg: "topo"}, &fromFile); err != nil {
		t.Fatal(err)
	}
	if err := run(options{scenario: "faults", device: "k40c", policyArg: "topo"}, &bundled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile.Bytes(), bundled.Bytes()) {
		t.Error("replaying the formatted fault trace from a file differs from the bundled scenario")
	}

	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte("a 0 AlexNet 16 naive 1 1\nfault explode dev=0 at=5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(options{scenario: "static", tracePath: bad, device: "k40c", policyArg: "packing"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("malformed fault line accepted")
	}
	for _, want := range []string{bad, "line 2", `"explode"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
