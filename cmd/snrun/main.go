// Command snrun simulates training one network under one memory
// policy and prints the run summary, optionally with the per-step
// memory profile.
//
// Usage:
//
//	snrun -net ResNet50 -batch 384 [-device k40c|titanxp]
//	      [-framework SuperNeurons|Caffe|MXNet|Torch|TensorFlow]
//	      [-pool-gib 12] [-iterations 1] [-profile] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	superneurons "repro"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snrun: ")
	var (
		netName   = flag.String("net", "AlexNet", "network: "+strings.Join(superneurons.Networks(), ", "))
		batch     = flag.Int("batch", 128, "batch size")
		device    = flag.String("device", "k40c", "device profile: k40c or titanxp")
		framework = flag.String("framework", "SuperNeurons", "memory policy: SuperNeurons, Caffe, MXNet, Torch, TensorFlow")
		poolGiB   = flag.Float64("pool-gib", 0, "override GPU pool size in GiB (0 = device default)")
		iters     = flag.Int("iterations", 1, "training iterations to simulate")
		profile   = flag.Bool("profile", false, "print the per-step memory profile")
		csvPath   = flag.String("csv", "", "write the per-step profile as CSV to this file")
		tracePath = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the timeline to this file")
		diagram   = flag.Bool("diagram", false, "print the execution route with Fig.6-style fwd/bwd step numbering")
	)
	flag.Parse()

	var dev superneurons.Device
	switch strings.ToLower(*device) {
	case "k40c":
		dev = superneurons.TeslaK40c
	case "titanxp":
		dev = superneurons.TitanXP
	default:
		log.Fatalf("unknown device %q (want k40c or titanxp)", *device)
	}

	fw, ok := superneurons.FrameworkByName(*framework)
	if !ok {
		log.Fatalf("unknown framework %q", *framework)
	}
	cfg := fw.Config(dev)
	if *poolGiB > 0 {
		cfg.PoolBytes = int64(*poolGiB * float64(hw.GiB))
	}
	cfg.Iterations = *iters
	cfg.CollectTrace = *tracePath != ""

	net, err := superneurons.Build(*netName, *batch)
	if err != nil {
		log.Fatal(err)
	}
	if *diagram {
		fmt.Printf("execution route of %s (forward/backward step numbering, Alg. 1)\n\n", net.Name)
		fmt.Print(net.RouteDiagram())
		fmt.Println()
	}
	res, err := superneurons.Run(net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("framework: %s on %s\n", fw.Name, dev.Name)
	fmt.Print(superneurons.Summary(res))
	fmt.Printf("  hottest steps    %s\n", strings.Join(superneurons.PeakSteps(res, 3), "; "))

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(f, res.Trace); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(trace.Summary(res.Trace))
		fmt.Printf("chrome trace written to %s\n", *tracePath)
	}

	if *profile || *csvPath != "" {
		t := metrics.NewTable("per-step profile",
			"step", "label", "resident MiB", "tensors", "workspace MiB", "algo", "time")
		for _, s := range res.Steps {
			t.Add(fmt.Sprint(s.Index), s.Label, metrics.MiB(s.ResidentBytes),
				fmt.Sprint(s.LiveTensors), metrics.MiB(s.WorkspaceBytes),
				s.Algo.String(), s.Time.String())
		}
		if *profile {
			fmt.Println()
			fmt.Print(t.String())
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := t.CSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("profile written to %s\n", *csvPath)
		}
	}
}
