// Command snload is the load generator for snserved: it fires N
// concurrent clients (each its own tenant) at the service's HTTP API,
// submitting jobs drawn from the bundled workload traces, and reports
// submission throughput and latency percentiles. With -drain it then
// drains the service and summarizes the final schedule — the CI smoke
// path asserting a clean end-to-end run.
//
// Usage:
//
//	snload -addr http://127.0.0.1:8080
//	snload -addr http://127.0.0.1:8080 -clients 8 -jobs 32 -drain
//	snload -addr http://127.0.0.1:8080 -templates dynamic
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/workload"
)

type options struct {
	addr       string
	clients    int
	jobs       int
	retries    int
	templates  string
	idempotent bool
	think      time.Duration
	drain      bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snload: ")
	var o options
	flag.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "snserved base URL")
	flag.IntVar(&o.clients, "clients", 4, "concurrent clients (one tenant each)")
	flag.IntVar(&o.jobs, "jobs", 8, "jobs submitted per client")
	flag.IntVar(&o.retries, "retries", 50, "queue-full retries per submission")
	flag.StringVar(&o.templates, "templates", "mixed", "job templates: static, dynamic or mixed")
	flag.BoolVar(&o.idempotent, "idempotent", false, "attach idempotency keys and retry transport failures (rides out a service crash + restart)")
	flag.DurationVar(&o.think, "think", 0, "per-client delay between submissions")
	flag.BoolVar(&o.drain, "drain", false, "drain the service after the run and print the final schedule")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(o options, w io.Writer) error {
	var templates []workload.TraceJob
	switch o.templates {
	case "static":
		templates = workload.DefaultTrace()
	case "dynamic":
		templates = workload.DefaultDynamicTrace()
	case "mixed":
		templates = serve.DefaultTemplates()
	default:
		return fmt.Errorf("unknown template set %q (have static, dynamic, mixed)", o.templates)
	}

	client := &serve.Client{BaseURL: o.addr}
	if err := client.Healthz(); err != nil {
		return fmt.Errorf("service not reachable at %s: %w", o.addr, err)
	}
	rep, err := serve.RunLoad(serve.LoadConfig{
		Target:        client,
		Clients:       o.clients,
		JobsPerClient: o.jobs,
		Templates:     templates,
		SubmitRetries: o.retries,
		Idempotent:    o.idempotent,
		ThinkTime:     o.think,
		Drain:         o.drain,
	})
	if err != nil {
		return err
	}

	t := metrics.NewTable(fmt.Sprintf("load run: %d clients x %d jobs against %s", o.clients, o.jobs, o.addr),
		"submitted", "deduped", "retries", "exhausted", "queue-full", "shed", "quota-denied", "failed", "elapsed", "req/s", "p50", "p90", "p99", "max")
	t.Add(fmt.Sprint(rep.Submitted), fmt.Sprint(rep.Deduped), fmt.Sprint(rep.Retries),
		fmt.Sprint(rep.Exhausted), fmt.Sprint(rep.QueueFull), fmt.Sprint(rep.Shed),
		fmt.Sprint(rep.QuotaDenied),
		fmt.Sprint(rep.Failed), rep.Elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", rep.Throughput),
		rep.P50.Round(time.Microsecond).String(), rep.P90.Round(time.Microsecond).String(),
		rep.P99.Round(time.Microsecond).String(), rep.Max.Round(time.Microsecond).String())
	fmt.Fprintln(w, t.String())

	if len(rep.Shards) > 1 {
		st := metrics.NewTable("per-shard submission latency (shard assignment from the submit responses)",
			"shard", "submitted", "p50", "p99")
		for _, sl := range rep.Shards {
			st.Add(fmt.Sprint(sl.Shard), fmt.Sprint(sl.Submitted),
				sl.P50.Round(time.Microsecond).String(), sl.P99.Round(time.Microsecond).String())
		}
		fmt.Fprintln(w, st.String())
	}

	if rep.Drained != nil {
		r := rep.Drained.Result
		fmt.Fprintf(w, "drained: %d jobs (%d rejected), makespan %v, cluster mem util %.1f%%, compute util %.1f%%\n",
			rep.Drained.Jobs, rep.Drained.Rejected, r.Makespan, 100*r.Utilization, 100*r.ComputeUtilization)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d submissions failed", rep.Failed)
	}
	return nil
}
