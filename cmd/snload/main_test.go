package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/serve"
)

func startService(t *testing.T) string {
	t.Helper()
	svc, err := serve.New(serve.Config{
		Cluster: sched.Cluster{Device: hw.TeslaK40c, Devices: 2},
		Policy:  sched.Packing,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestLoadRunAgainstService(t *testing.T) {
	addr := startService(t)
	var out bytes.Buffer
	o := options{addr: addr, clients: 2, jobs: 3, retries: 50, templates: "dynamic", drain: true}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"load run: 2 clients x 3 jobs", "drained: 6 jobs", "req/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLoadRejectsBadFlags(t *testing.T) {
	if err := run(options{addr: "http://127.0.0.1:1", templates: "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown template set accepted")
	}
	if err := run(options{addr: "http://127.0.0.1:1", templates: "mixed"}, &bytes.Buffer{}); err == nil {
		t.Error("unreachable service accepted")
	}
}
