package main

import (
	"strings"
	"testing"
)

// The parallel per-framework searches must not leak goroutine
// scheduling into the report: consecutive sweeps are byte-identical.
// This guards the PR 1 parallelization of the capacity searches.
func TestWiderSweepDeterministic(t *testing.T) {
	a, err := sweep("wider", 16, 0, "AlexNet", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sweep("wider", 16, 0, "AlexNet", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two identical sweeps differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "largest trainable batch for AlexNet") {
		t.Errorf("unexpected sweep output:\n%s", a)
	}
	// Every framework fits batch 8 on the K40c, so the capacity
	// search must saturate the limit for each of them. Rows start
	// after the title, header and separator lines.
	for _, line := range strings.Split(strings.TrimSpace(a), "\n")[3:] {
		if !strings.HasSuffix(strings.TrimSpace(line), " 8") {
			t.Errorf("framework row did not reach the search limit: %q", line)
		}
	}
}

func TestSweepUnknownMode(t *testing.T) {
	if _, err := sweep("sideways", 1, 1, "AlexNet", 1); err == nil {
		t.Error("unknown mode accepted")
	}
}
