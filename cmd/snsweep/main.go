// Command snsweep runs the capacity searches of the evaluation: the
// deepest trainable ResNet (going deeper, Table 4) or the largest
// trainable batch (going wider, Table 5) for every framework policy.
// The per-framework searches run in parallel (internal/par); results
// land in input order, so the output is deterministic.
//
// Usage:
//
//	snsweep -mode deeper [-batch 16] [-max-n3 2600]
//	snsweep -mode wider  [-net ResNet50] [-limit 2048]
package main

import (
	"flag"
	"fmt"
	"log"

	superneurons "repro"
	"repro/internal/metrics"
	"repro/internal/nnet"
	"repro/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snsweep: ")
	var (
		mode  = flag.String("mode", "deeper", "deeper (Table 4) or wider (Table 5)")
		batch = flag.Int("batch", 16, "batch size for the depth sweep")
		maxN3 = flag.Int("max-n3", 2600, "upper bound of the stage-3 repeat count")
		net   = flag.String("net", "ResNet50", "network for the batch sweep")
		limit = flag.Int("limit", 2048, "upper bound of the batch search")
	)
	flag.Parse()

	out, err := sweep(*mode, *batch, *maxN3, *net, *limit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}

// sweep renders one capacity-search table; the parallel per-framework
// searches land in framework order, so the result is a pure function
// of its arguments.
func sweep(mode string, batch, maxN3 int, net string, limit int) (string, error) {
	dev := superneurons.TeslaK40c
	frameworks := superneurons.Frameworks()
	switch mode {
	case "deeper":
		t := metrics.NewTable(
			fmt.Sprintf("deepest trainable ResNet at batch %d on %s", batch, dev.Name),
			"framework", "depth", "n3", "basic layers")
		type row struct{ n3, depth int }
		rows, err := par.MapErr(frameworks, 0, func(f superneurons.Framework) (row, error) {
			n3, depth, err := superneurons.MaxDepth(f, dev, batch, maxN3)
			if err != nil {
				return row{}, fmt.Errorf("%s: %w", f.Name, err)
			}
			return row{n3: n3, depth: depth}, nil
		})
		if err != nil {
			return "", err
		}
		for i, f := range frameworks {
			layers := 0
			if rows[i].n3 > 0 {
				layers = nnet.ResNetTable4(1, rows[i].n3).BasicLayers()
			}
			t.Add(f.Name, fmt.Sprint(rows[i].depth), fmt.Sprint(rows[i].n3), fmt.Sprint(layers))
		}
		return t.String(), nil
	case "wider":
		t := metrics.NewTable(
			fmt.Sprintf("largest trainable batch for %s on %s", net, dev.Name),
			"framework", "batch")
		rows, err := par.MapErr(frameworks, 0, func(f superneurons.Framework) (int, error) {
			b, err := superneurons.MaxBatch(f, net, dev, limit)
			if err != nil {
				return 0, fmt.Errorf("%s: %w", f.Name, err)
			}
			return b, nil
		})
		if err != nil {
			return "", err
		}
		for i, f := range frameworks {
			t.Add(f.Name, fmt.Sprint(rows[i]))
		}
		return t.String(), nil
	default:
		return "", fmt.Errorf("unknown mode %q", mode)
	}
}
