// Command snsweep runs the capacity searches of the evaluation: the
// deepest trainable ResNet (going deeper, Table 4) or the largest
// trainable batch (going wider, Table 5) for every framework policy.
//
// Usage:
//
//	snsweep -mode deeper [-batch 16] [-max-n3 2600]
//	snsweep -mode wider  [-net ResNet50] [-limit 2048]
package main

import (
	"flag"
	"fmt"
	"log"

	superneurons "repro"
	"repro/internal/metrics"
	"repro/internal/nnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snsweep: ")
	var (
		mode  = flag.String("mode", "deeper", "deeper (Table 4) or wider (Table 5)")
		batch = flag.Int("batch", 16, "batch size for the depth sweep")
		maxN3 = flag.Int("max-n3", 2600, "upper bound of the stage-3 repeat count")
		net   = flag.String("net", "ResNet50", "network for the batch sweep")
		limit = flag.Int("limit", 2048, "upper bound of the batch search")
	)
	flag.Parse()

	dev := superneurons.TeslaK40c
	switch *mode {
	case "deeper":
		t := metrics.NewTable(
			fmt.Sprintf("deepest trainable ResNet at batch %d on %s", *batch, dev.Name),
			"framework", "depth", "n3", "basic layers")
		for _, f := range superneurons.Frameworks() {
			n3, depth, err := superneurons.MaxDepth(f, dev, *batch, *maxN3)
			if err != nil {
				log.Fatalf("%s: %v", f.Name, err)
			}
			layers := 0
			if n3 > 0 {
				layers = nnet.ResNetTable4(1, n3).BasicLayers()
			}
			t.Add(f.Name, fmt.Sprint(depth), fmt.Sprint(n3), fmt.Sprint(layers))
		}
		fmt.Print(t.String())
	case "wider":
		t := metrics.NewTable(
			fmt.Sprintf("largest trainable batch for %s on %s", *net, dev.Name),
			"framework", "batch")
		for _, f := range superneurons.Frameworks() {
			b, err := superneurons.MaxBatch(f, *net, dev, *limit)
			if err != nil {
				log.Fatalf("%s: %v", f.Name, err)
			}
			t.Add(f.Name, fmt.Sprint(b))
		}
		fmt.Print(t.String())
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
