// Command sntables regenerates every table and figure of the paper's
// evaluation on the simulated substrate and prints them next to the
// paper's published numbers. Its full output is the source of
// EXPERIMENTS.md.
//
// Usage:
//
//	sntables            # everything (takes a minute or two)
//	sntables -only table4,fig10
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sntables: ")
	only := flag.String("only", "", "comma-separated subset: table1..table5, fig2, fig8, fig10..fig14")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	run := func(key, note string, fn func() string) {
		if !sel(key) {
			return
		}
		start := time.Now()
		out := fn()
		fmt.Println(out)
		if note != "" {
			fmt.Println(note)
		}
		fmt.Printf("[%s regenerated in %v]\n\n", key, time.Since(start).Round(time.Millisecond))
	}

	run("table1", "", func() string { return experiments.Table1().String() })
	run("table2", "", func() string { return experiments.Table2().String() })
	run("table3", "", func() string { return experiments.Table3().String() })
	run("table4", "", func() string { return experiments.Table4().String() })

	var t5 map[string]map[string]int
	needT5 := sel("table5") || sel("fig13")
	if needT5 {
		t5 = experiments.Table5Data()
	}
	run("table5", "", func() string { return experiments.Table5(t5).String() })

	run("fig2", "", func() string { return experiments.Fig2().String() })
	run("fig8", "", func() string {
		a, b := experiments.Fig8()
		return a.String() + "\n" + b.String()
	})
	run("fig10", "", func() string { return experiments.Fig10(experiments.Fig10Runs()) })
	run("fig11", "", func() string { return experiments.Fig11().String() })
	run("fig12", "", func() string { return experiments.Fig12() })
	run("fig13", "", func() string { return experiments.Fig13(t5).String() })
	run("fig14", "", func() string { return experiments.Fig14() })
}
