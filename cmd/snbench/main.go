// Command snbench is the benchmark-baseline pipeline behind CI's
// bench-baseline job: it turns `go test -bench` output into a stable
// JSON summary and gates a new summary against a committed baseline.
//
//	go test -run '^$' -bench <regex> -benchtime=1x -count=3 . | snbench parse > BENCH_new.json
//	snbench compare [-tolerance 0.25] BENCH_baseline.json BENCH_new.json
//
// parse keeps, per benchmark, the MINIMUM ns/op across the -count
// repetitions — the least-noise estimator for a deterministic
// simulation workload — plus the repetition count.
//
// compare fails (exit 1) when any baseline benchmark is missing from
// the new summary or slower than baseline by more than the tolerance
// (default 0.25 = +25% ns/op). Benchmarks where both sides run under
// the floor (-floor, default 10µs) are reported but not gated: at that
// scale timer jitter, not code, decides the ratio. Benchmarks new in
// this run are reported and pass.
//
// To refresh the committed baseline after an intentional perf change:
//
//	go test -run '^$' -bench <regex> -benchtime=1x -count=3 . | snbench parse > BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Summary is the JSON artifact: one entry per benchmark.
type Summary struct {
	Schema     int                  `json:"schema"`
	Benchmarks map[string]BenchStat `json:"benchmarks"`
}

// BenchStat summarizes one benchmark across -count repetitions.
type BenchStat struct {
	// NsPerOp is the minimum ns/op observed.
	NsPerOp float64 `json:"ns_per_op"`
	// Runs is how many repetitions were folded in.
	Runs int `json:"runs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snbench: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: snbench parse < bench-output | snbench compare [-tolerance f] [-floor ns] baseline.json new.json")
	}
	switch os.Args[1] {
	case "parse":
		sum, err := parseBench(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		tolerance := fs.Float64("tolerance", 0.25, "allowed ns/op regression fraction (0.25 = +25%)")
		floor := fs.Float64("floor", 10_000, "ns/op below which a benchmark is reported but not gated")
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			log.Fatal("usage: snbench compare [-tolerance f] [-floor ns] baseline.json new.json")
		}
		base, err := readSummary(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		cur, err := readSummary(fs.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		if err := compare(base, cur, *tolerance, *floor, os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown subcommand %q (have parse, compare)", os.Args[1])
	}
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkMultiTenantSchedulers/fifo-8   1   53170531 ns/op
//
// capturing the name (GOMAXPROCS suffix stripped) and ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench folds `go test -bench` output into a Summary, keeping
// the minimum ns/op per benchmark across repetitions.
func parseBench(r io.Reader) (*Summary, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	sum := &Summary{Schema: 1, Benchmarks: map[string]BenchStat{}}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("snbench: bad ns/op in %q: %v", line, err)
		}
		st, seen := sum.Benchmarks[m[1]]
		if !seen || ns < st.NsPerOp {
			st.NsPerOp = ns
		}
		st.Runs++
		sum.Benchmarks[m[1]] = st
	}
	if len(sum.Benchmarks) == 0 {
		return nil, fmt.Errorf("snbench: no benchmark lines found in input")
	}
	return sum, nil
}

func readSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("snbench: %s: %v", path, err)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("snbench: %s: no benchmarks", path)
	}
	return &s, nil
}

// compare renders the baseline-vs-new table and returns an error
// naming every gated regression or missing benchmark.
func compare(base, cur *Summary, tolerance, floor float64, w io.Writer) error {
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	var failures []string
	t := metrics.NewTable(fmt.Sprintf("benchmark gate (tolerance +%.0f%%, floor %s)",
		100*tolerance, fmtNs(floor)),
		"benchmark", "baseline", "new", "ratio", "verdict")
	for _, n := range names {
		b := base.Benchmarks[n]
		c, ok := cur.Benchmarks[n]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from new run", n))
			t.Add(n, fmtNs(b.NsPerOp), "-", "-", "MISSING")
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok"
		switch {
		case b.NsPerOp < floor && c.NsPerOp < floor:
			verdict = "ok (under floor)"
		case ratio > 1+tolerance:
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %s -> %s (%.2fx > %.2fx allowed)",
				n, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), ratio, 1+tolerance))
		}
		t.Add(n, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), fmt.Sprintf("%.2f", ratio), verdict)
	}
	extra := make([]string, 0, len(cur.Benchmarks))
	for n := range cur.Benchmarks {
		if _, ok := base.Benchmarks[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		t.Add(n, "-", fmtNs(cur.Benchmarks[n].NsPerOp), "-", "new (no baseline)")
	}
	fmt.Fprintln(w, t.String())
	if len(failures) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "gate passed: %d benchmarks within +%.0f%% of baseline\n", len(names), 100*tolerance)
	return nil
}

// fmtNs renders ns/op with an adaptive unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
