// Command snbench is the benchmark-baseline pipeline behind CI's
// bench-baseline job: it turns `go test -bench` output into a stable
// JSON summary and gates a new summary against a committed baseline.
//
//	go test -run '^$' -bench <regex> -benchtime=1x -count=3 -benchmem . | snbench parse > BENCH_new.json
//	snbench compare [-tolerance 0.25] BENCH_baseline.json BENCH_new.json
//
// parse keeps, per benchmark, the MINIMUM ns/op across the -count
// repetitions — the least-noise estimator for a deterministic
// simulation workload — plus the repetition count. With -benchmem in
// the input it also records allocs/op and B/op (minimum across
// repetitions); the artifact is then schema 2. Schema-1 files (no
// allocation data) are still read and gated on ns/op only, so an old
// committed baseline keeps working.
//
// compare fails (exit 1) when any baseline benchmark is missing from
// the new summary, slower than baseline by more than the tolerance
// (default 0.25 = +25% ns/op), or — when both sides carry allocation
// data — allocating more than tolerance above baseline. Benchmarks
// where both sides run under the floor (-floor, default 10µs) are
// reported but not ns/op-gated: at that scale timer jitter, not code,
// decides the ratio. Allocation counts are deterministic, so they are
// gated even under the time floor, but a regression needs to exceed
// -allocfloor extra allocs/op (default 16) as well as the tolerance
// ratio, so ±1 alloc on a zero-alloc micro-benchmark does not fail the
// build. Benchmarks new in this run are reported and pass.
//
// To refresh the committed baseline after an intentional perf change:
//
//	go test -run '^$' -bench <regex> -benchtime=1x -count=3 -benchmem . ./internal/gpumem | snbench parse > BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Summary is the JSON artifact: one entry per benchmark.
type Summary struct {
	Schema     int                  `json:"schema"`
	Benchmarks map[string]BenchStat `json:"benchmarks"`
}

// BenchStat summarizes one benchmark across -count repetitions.
type BenchStat struct {
	// NsPerOp is the minimum ns/op observed.
	NsPerOp float64 `json:"ns_per_op"`
	// Runs is how many repetitions were folded in.
	Runs int `json:"runs"`
	// AllocsPerOp and BytesPerOp are the minimum allocation counts
	// observed, present only when the bench output carried -benchmem
	// columns (schema 2). Pointers distinguish "recorded as zero" from
	// "not recorded" so a schema-1 baseline is never allocation-gated.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snbench: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: snbench parse < bench-output | snbench compare [-tolerance f] [-floor ns] baseline.json new.json")
	}
	switch os.Args[1] {
	case "parse":
		sum, err := parseBench(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		var opts gateOpts
		fs.Float64Var(&opts.Tolerance, "tolerance", 0.25, "allowed regression fraction for ns/op and allocs/op (0.25 = +25%)")
		fs.Float64Var(&opts.Floor, "floor", 10_000, "ns/op below which timing is reported but not gated")
		fs.Float64Var(&opts.AllocFloor, "allocfloor", 16, "extra allocs/op a regression must exceed before it is gated")
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			log.Fatal("usage: snbench compare [-tolerance f] [-floor ns] [-allocfloor n] baseline.json new.json")
		}
		base, err := readSummary(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		cur, err := readSummary(fs.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		if err := compare(base, cur, opts, os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown subcommand %q (have parse, compare)", os.Args[1])
	}
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkPoolAllocFree-8   1   14041 ns/op   336 B/op   2 allocs/op
//
// capturing the name (GOMAXPROCS suffix stripped), ns/op, and — when
// the run used -benchmem — B/op and allocs/op. Custom metrics such as
// req/s may sit between ns/op and the memory columns.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*\s([0-9]+) B/op\s+([0-9]+) allocs/op)?`)

// parseBench folds `go test -bench` output into a Summary, keeping
// the minimum per benchmark across repetitions for ns/op and, when
// present, for B/op and allocs/op.
func parseBench(r io.Reader) (*Summary, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	sum := &Summary{Schema: 2, Benchmarks: map[string]BenchStat{}}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("snbench: bad ns/op in %q: %v", line, err)
		}
		st, seen := sum.Benchmarks[m[1]]
		if !seen || ns < st.NsPerOp {
			st.NsPerOp = ns
		}
		if m[3] != "" {
			bpo, err1 := strconv.ParseFloat(m[3], 64)
			apo, err2 := strconv.ParseFloat(m[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("snbench: bad -benchmem columns in %q", line)
			}
			if st.BytesPerOp == nil || bpo < *st.BytesPerOp {
				st.BytesPerOp = &bpo
			}
			if st.AllocsPerOp == nil || apo < *st.AllocsPerOp {
				st.AllocsPerOp = &apo
			}
		}
		st.Runs++
		sum.Benchmarks[m[1]] = st
	}
	if len(sum.Benchmarks) == 0 {
		return nil, fmt.Errorf("snbench: no benchmark lines found in input")
	}
	return sum, nil
}

func readSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("snbench: %s: %v", path, err)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("snbench: %s: no benchmarks", path)
	}
	if s.Schema < 1 || s.Schema > 2 {
		return nil, fmt.Errorf("snbench: %s: unsupported schema %d (have 1, 2)", path, s.Schema)
	}
	return &s, nil
}

// gateOpts are the compare thresholds.
type gateOpts struct {
	// Tolerance is the allowed regression fraction, applied to both
	// ns/op and allocs/op (0.25 = +25%).
	Tolerance float64
	// Floor is the ns/op under which timing differences are reported
	// but not gated (timer jitter dominates there).
	Floor float64
	// AllocFloor is the absolute allocs/op increase a regression must
	// additionally exceed to be gated; allocation counts are
	// deterministic, so there is no analogue of the time floor, only
	// this small-count slack.
	AllocFloor float64
}

// compare renders the baseline-vs-new table and returns an error
// naming every gated regression or missing benchmark.
func compare(base, cur *Summary, opts gateOpts, w io.Writer) error {
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	var failures []string
	t := metrics.NewTable(fmt.Sprintf("benchmark gate (tolerance +%.0f%%, floor %s, alloc floor %.0f)",
		100*opts.Tolerance, fmtNs(opts.Floor), opts.AllocFloor),
		"benchmark", "baseline", "new", "ratio", "allocs/op", "verdict")
	for _, n := range names {
		b := base.Benchmarks[n]
		c, ok := cur.Benchmarks[n]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from new run", n))
			t.Add(n, fmtNs(b.NsPerOp), "-", "-", "-", "MISSING")
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok"
		switch {
		case b.NsPerOp < opts.Floor && c.NsPerOp < opts.Floor:
			verdict = "ok (under floor)"
		case ratio > 1+opts.Tolerance:
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %s -> %s (%.2fx > %.2fx allowed)",
				n, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), ratio, 1+opts.Tolerance))
		}
		allocs := "-"
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			ba, ca := *b.AllocsPerOp, *c.AllocsPerOp
			allocs = fmt.Sprintf("%.0f -> %.0f", ba, ca)
			if ca > ba*(1+opts.Tolerance) && ca-ba > opts.AllocFloor {
				if verdict == "ok" || verdict == "ok (under floor)" {
					verdict = "REGRESSION (allocs)"
				}
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (+%.0f > +%.0f%% and > %.0f extra allowed)",
					n, ba, ca, ca-ba, 100*opts.Tolerance, opts.AllocFloor))
			}
		}
		t.Add(n, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), fmt.Sprintf("%.2f", ratio), allocs, verdict)
	}
	extra := make([]string, 0, len(cur.Benchmarks))
	for n := range cur.Benchmarks {
		if _, ok := base.Benchmarks[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		t.Add(n, "-", fmtNs(cur.Benchmarks[n].NsPerOp), "-", "-", "new (no baseline)")
	}
	fmt.Fprintln(w, t.String())
	if len(failures) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "gate passed: %d benchmarks within +%.0f%% of baseline\n", len(names), 100*opts.Tolerance)
	return nil
}

// fmtNs renders ns/op with an adaptive unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
