package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMultiTenantSchedulers/fifo-8         	       1	  53170531 ns/op
BenchmarkMultiTenantSchedulers/fifo-8         	       1	  41000000 ns/op
BenchmarkMultiTenantSchedulers/fifo-8         	       1	  47000000 ns/op
BenchmarkServeThroughput-8                    	       1	   2487912 ns/op	 1614 req/s
BenchmarkServeThroughput-8                    	       1	   2600000 ns/op	 1500 req/s
PASS
ok  	repro	1.013s
`

// sampleBenchMem mixes -benchmem output, a custom metric between the
// ns/op and memory columns, and a plain line without memory columns.
const sampleBenchMem = `goos: linux
BenchmarkFig14EndToEnd-8      	       1	 135187406 ns/op	114476240 B/op	 1083505 allocs/op
BenchmarkFig14EndToEnd-8      	       1	 140000000 ns/op	114480000 B/op	 1083999 allocs/op
BenchmarkServeThroughput-8    	       1	   2487912 ns/op	 1614 req/s	  123456 B/op	    2048 allocs/op
BenchmarkPoolScaling/index/spans=4096-8     	    2000	       277.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkRouteConstruction-8  	      10	    900000 ns/op
PASS
`

func TestParseBenchKeepsMinAcrossRuns(t *testing.T) {
	sum, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	fifo, ok := sum.Benchmarks["BenchmarkMultiTenantSchedulers/fifo"]
	if !ok {
		t.Fatalf("fifo benchmark missing: %v", sum.Benchmarks)
	}
	if fifo.NsPerOp != 41000000 || fifo.Runs != 3 {
		t.Errorf("fifo = %+v, want min 41000000 over 3 runs", fifo)
	}
	st, ok := sum.Benchmarks["BenchmarkServeThroughput"]
	if !ok || st.NsPerOp != 2487912 || st.Runs != 2 {
		t.Errorf("serve = %+v (ok=%v), want min 2487912 over 2 runs", st, ok)
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 0.1s\n")); err == nil {
		t.Error("input without benchmark lines accepted")
	}
}

// TestParseBenchMemColumns covers the schema-2 path: allocs/op and
// B/op are folded with the per-column minimum, custom metrics between
// ns/op and the memory columns are skipped, and lines without memory
// columns leave the pointers nil.
func TestParseBenchMemColumns(t *testing.T) {
	sum, err := parseBench(strings.NewReader(sampleBenchMem))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Schema != 2 {
		t.Errorf("schema = %d, want 2", sum.Schema)
	}
	fig := sum.Benchmarks["BenchmarkFig14EndToEnd"]
	if fig.AllocsPerOp == nil || *fig.AllocsPerOp != 1083505 {
		t.Errorf("Fig14 allocs = %v, want min 1083505", fig.AllocsPerOp)
	}
	if fig.BytesPerOp == nil || *fig.BytesPerOp != 114476240 {
		t.Errorf("Fig14 bytes = %v, want min 114476240", fig.BytesPerOp)
	}
	st := sum.Benchmarks["BenchmarkServeThroughput"]
	if st.AllocsPerOp == nil || *st.AllocsPerOp != 2048 {
		t.Errorf("serve allocs = %v, want 2048 despite the req/s column", st.AllocsPerOp)
	}
	zero := sum.Benchmarks["BenchmarkPoolScaling/index/spans=4096"]
	if zero.AllocsPerOp == nil || *zero.AllocsPerOp != 0 {
		t.Errorf("pool allocs = %v, want recorded zero", zero.AllocsPerOp)
	}
	plain := sum.Benchmarks["BenchmarkRouteConstruction"]
	if plain.AllocsPerOp != nil || plain.BytesPerOp != nil {
		t.Errorf("plain line grew memory columns: %+v", plain)
	}
}

func sum(pairs map[string]float64) *Summary {
	s := &Summary{Schema: 1, Benchmarks: map[string]BenchStat{}}
	for n, ns := range pairs {
		s.Benchmarks[n] = BenchStat{NsPerOp: ns, Runs: 3}
	}
	return s
}

// withAllocs upgrades a summary entry to schema 2 with the given
// allocs/op.
func withAllocs(s *Summary, name string, allocs float64) *Summary {
	s.Schema = 2
	st := s.Benchmarks[name]
	st.AllocsPerOp = &allocs
	s.Benchmarks[name] = st
	return s
}

var defaultGate = gateOpts{Tolerance: 0.25, Floor: 10_000, AllocFloor: 16}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkA": 1e6, "BenchmarkB": 2e6})
	cur := sum(map[string]float64{"BenchmarkA": 1.2e6, "BenchmarkB": 1.8e6, "BenchmarkNew": 5e6})
	var out bytes.Buffer
	if err := compare(base, cur, defaultGate, &out); err != nil {
		t.Fatalf("compare failed within tolerance: %v\n%s", err, out.String())
	}
	for _, want := range []string{"gate passed", "new (no baseline)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkA": 1e6})
	cur := sum(map[string]float64{"BenchmarkA": 1.3e6})
	var out bytes.Buffer
	err := compare(base, cur, defaultGate, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("30%% regression passed the 25%% gate: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("table missing REGRESSION verdict:\n%s", out.String())
	}
}

func TestCompareFlagsMissingBenchmark(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkA": 1e6, "BenchmarkGone": 1e6})
	cur := sum(map[string]float64{"BenchmarkA": 1e6})
	var out bytes.Buffer
	err := compare(base, cur, defaultGate, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Fatalf("missing benchmark passed the gate: %v", err)
	}
}

func TestReadSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	want := sum(map[string]float64{"BenchmarkA": 1e6})
	data, _ := json.Marshal(want)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["BenchmarkA"].NsPerOp != 1e6 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := readSummary(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	_ = os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := readSummary(bad); err == nil {
		t.Error("unparseable summary accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	_ = os.WriteFile(empty, []byte("{}"), 0o644)
	if _, err := readSummary(empty); err == nil {
		t.Error("summary without benchmarks accepted")
	}
}

func TestFmtNsUnits(t *testing.T) {
	cases := map[float64]string{
		500:   "500ns",
		2_500: "2.50us",
		3e6:   "3.00ms",
		1.5e9: "1.50s",
		41e6:  "41.00ms",
	}
	for ns, want := range cases {
		if got := fmtNs(ns); got != want {
			t.Errorf("fmtNs(%g) = %q, want %q", ns, got, want)
		}
	}
}

// Sub-floor noise is reported but never gated: a 3x ratio between two
// nanosecond-scale timings is timer jitter, not a regression.
func TestCompareFloorExemptsNoise(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkTiny": 200})
	cur := sum(map[string]float64{"BenchmarkTiny": 600})
	var out bytes.Buffer
	if err := compare(base, cur, defaultGate, &out); err != nil {
		t.Fatalf("sub-floor ratio gated: %v", err)
	}
	if !strings.Contains(out.String(), "under floor") {
		t.Errorf("floor verdict missing:\n%s", out.String())
	}
}

// Allocation counts are deterministic, so a big allocs/op jump fails
// the gate even when ns/op is steady — that is the entire point of
// recording them.
func TestCompareFlagsAllocRegression(t *testing.T) {
	base := withAllocs(sum(map[string]float64{"BenchmarkA": 1e6}), "BenchmarkA", 1000)
	cur := withAllocs(sum(map[string]float64{"BenchmarkA": 1e6}), "BenchmarkA", 2000)
	var out bytes.Buffer
	err := compare(base, cur, defaultGate, &out)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("2x allocs/op passed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION (allocs)") {
		t.Errorf("table missing allocs verdict:\n%s", out.String())
	}
}

// The absolute alloc floor keeps zero-alloc micro-benchmarks from
// failing on a ±few-alloc wobble even though the ratio is huge.
func TestCompareAllocFloorExemptsSmallCounts(t *testing.T) {
	base := withAllocs(sum(map[string]float64{"BenchmarkTiny": 200}), "BenchmarkTiny", 0)
	cur := withAllocs(sum(map[string]float64{"BenchmarkTiny": 210}), "BenchmarkTiny", 2)
	var out bytes.Buffer
	if err := compare(base, cur, defaultGate, &out); err != nil {
		t.Fatalf("+2 allocs/op gated: %v", err)
	}
}

// A schema-1 baseline (no allocation data) must still gate ns/op and
// silently skip the allocation gate — backward compatibility for the
// committed BENCH_baseline.json across the schema bump.
func TestCompareSchema1BaselineSkipsAllocGate(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkA": 1e6})
	cur := withAllocs(sum(map[string]float64{"BenchmarkA": 1.1e6}), "BenchmarkA", 1e9)
	var out bytes.Buffer
	if err := compare(base, cur, defaultGate, &out); err != nil {
		t.Fatalf("schema-1 baseline tripped the alloc gate: %v", err)
	}
}

func TestReadSummaryRejectsUnknownSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.json")
	_ = os.WriteFile(path, []byte(`{"schema":3,"benchmarks":{"BenchmarkA":{"ns_per_op":1,"runs":1}}}`), 0o644)
	if _, err := readSummary(path); err == nil {
		t.Error("schema 3 accepted")
	}
}

// TestSummaryRoundTripSchema2 pins the JSON shape of the schema-2
// artifact: allocs_per_op/bytes_per_op round-trip, absent columns stay
// absent.
func TestSummaryRoundTripSchema2(t *testing.T) {
	sum, err := parseBench(strings.NewReader(sampleBenchMem))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"allocs_per_op"`) {
		t.Fatalf("schema-2 JSON missing allocs_per_op: %s", data)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s2.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	fig := got.Benchmarks["BenchmarkFig14EndToEnd"]
	if fig.AllocsPerOp == nil || *fig.AllocsPerOp != 1083505 {
		t.Errorf("round-tripped allocs = %v", fig.AllocsPerOp)
	}
	plain := got.Benchmarks["BenchmarkRouteConstruction"]
	if plain.AllocsPerOp != nil {
		t.Errorf("absent column materialized: %+v", plain)
	}
}
