package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMultiTenantSchedulers/fifo-8         	       1	  53170531 ns/op
BenchmarkMultiTenantSchedulers/fifo-8         	       1	  41000000 ns/op
BenchmarkMultiTenantSchedulers/fifo-8         	       1	  47000000 ns/op
BenchmarkServeThroughput-8                    	       1	   2487912 ns/op	 1614 req/s
BenchmarkServeThroughput-8                    	       1	   2600000 ns/op	 1500 req/s
PASS
ok  	repro	1.013s
`

func TestParseBenchKeepsMinAcrossRuns(t *testing.T) {
	sum, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	fifo, ok := sum.Benchmarks["BenchmarkMultiTenantSchedulers/fifo"]
	if !ok {
		t.Fatalf("fifo benchmark missing: %v", sum.Benchmarks)
	}
	if fifo.NsPerOp != 41000000 || fifo.Runs != 3 {
		t.Errorf("fifo = %+v, want min 41000000 over 3 runs", fifo)
	}
	st, ok := sum.Benchmarks["BenchmarkServeThroughput"]
	if !ok || st.NsPerOp != 2487912 || st.Runs != 2 {
		t.Errorf("serve = %+v (ok=%v), want min 2487912 over 2 runs", st, ok)
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 0.1s\n")); err == nil {
		t.Error("input without benchmark lines accepted")
	}
}

func sum(pairs map[string]float64) *Summary {
	s := &Summary{Schema: 1, Benchmarks: map[string]BenchStat{}}
	for n, ns := range pairs {
		s.Benchmarks[n] = BenchStat{NsPerOp: ns, Runs: 3}
	}
	return s
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkA": 1e6, "BenchmarkB": 2e6})
	cur := sum(map[string]float64{"BenchmarkA": 1.2e6, "BenchmarkB": 1.8e6, "BenchmarkNew": 5e6})
	var out bytes.Buffer
	if err := compare(base, cur, 0.25, 10_000, &out); err != nil {
		t.Fatalf("compare failed within tolerance: %v\n%s", err, out.String())
	}
	for _, want := range []string{"gate passed", "new (no baseline)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkA": 1e6})
	cur := sum(map[string]float64{"BenchmarkA": 1.3e6})
	var out bytes.Buffer
	err := compare(base, cur, 0.25, 10_000, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Fatalf("30%% regression passed the 25%% gate: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("table missing REGRESSION verdict:\n%s", out.String())
	}
}

func TestCompareFlagsMissingBenchmark(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkA": 1e6, "BenchmarkGone": 1e6})
	cur := sum(map[string]float64{"BenchmarkA": 1e6})
	var out bytes.Buffer
	err := compare(base, cur, 0.25, 10_000, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Fatalf("missing benchmark passed the gate: %v", err)
	}
}

func TestReadSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	want := sum(map[string]float64{"BenchmarkA": 1e6})
	data, _ := json.Marshal(want)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["BenchmarkA"].NsPerOp != 1e6 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := readSummary(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	_ = os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := readSummary(bad); err == nil {
		t.Error("unparseable summary accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	_ = os.WriteFile(empty, []byte("{}"), 0o644)
	if _, err := readSummary(empty); err == nil {
		t.Error("summary without benchmarks accepted")
	}
}

func TestFmtNsUnits(t *testing.T) {
	cases := map[float64]string{
		500:   "500ns",
		2_500: "2.50us",
		3e6:   "3.00ms",
		1.5e9: "1.50s",
		41e6:  "41.00ms",
	}
	for ns, want := range cases {
		if got := fmtNs(ns); got != want {
			t.Errorf("fmtNs(%g) = %q, want %q", ns, got, want)
		}
	}
}

// Sub-floor noise is reported but never gated: a 3x ratio between two
// nanosecond-scale timings is timer jitter, not a regression.
func TestCompareFloorExemptsNoise(t *testing.T) {
	base := sum(map[string]float64{"BenchmarkTiny": 200})
	cur := sum(map[string]float64{"BenchmarkTiny": 600})
	var out bytes.Buffer
	if err := compare(base, cur, 0.25, 10_000, &out); err != nil {
		t.Fatalf("sub-floor ratio gated: %v", err)
	}
	if !strings.Contains(out.String(), "under floor") {
		t.Errorf("floor verdict missing:\n%s", out.String())
	}
}
