package superneurons

import (
	"testing"
)

// BenchmarkGangScheduling replays the bundled 1000-job gang trace on
// a 256-device multi-node cluster (nodes of 8, NVLink islands of 4,
// all-reduce overlapped) under each scheduling policy. Gang admission
// multiplies the scheduler's work per decision — every member device
// is dry-run-checked and reserved atomically — so this benchmark
// gates the placement hot path at cluster scale, where
// BenchmarkMultiTenantSchedulers gates it at two devices.
func BenchmarkGangScheduling(b *testing.B) {
	cluster := Cluster{
		Device:   TeslaK40c,
		Devices:  256,
		Topology: DefaultClusterTopology(),
		Overlap:  true,
	}
	jobs := GangClusterTrace()
	for _, p := range SchedulerPolicies() {
		b.Run(p.Name, func(b *testing.B) {
			s, err := NewScheduler(cluster, p)
			if err != nil {
				b.Fatal(err)
			}
			var last *ScheduleResult
			for i := 0; i < b.N; i++ {
				r, err := s.Run(jobs)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			preempts := 0
			for _, j := range last.Jobs {
				preempts += j.Preemptions
			}
			b.Logf("%s: makespan %v, compute util %.1f%%, mean jct %v, mean wait %v, preemptions %d",
				p.Name, last.Makespan, 100*last.ComputeUtilization,
				last.MeanJCT(), last.MeanWait(), preempts)
		})
	}
}
