package core

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/recompute"
	"repro/internal/tcache"
	"repro/internal/utp"
)

const mib = float64(1 << 20)

func mustRun(t *testing.T, net *nnet.Net, cfg Config) *Result {
	t.Helper()
	r, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// alexConfigs returns the four stacked configurations of the paper's
// Fig. 10: baseline, +liveness, +offload, +recomputation.
func alexConfigs(d hw.DeviceSpec) (base, live, off, rec Config) {
	base = Baseline(d)
	live = base
	live.Liveness = true
	off = live
	off.Offload = utp.OffloadConv
	off.Prefetch = true
	rec = off
	rec.Recompute = recompute.CostAware
	return
}

func TestFig10MemoryReductionChain(t *testing.T) {
	net := nnet.AlexNet(200)
	base, live, off, rec := alexConfigs(hw.TeslaK40c)

	r0 := mustRun(t, net, base)
	r1 := mustRun(t, nnet.AlexNet(200), live)
	r2 := mustRun(t, nnet.AlexNet(200), off)
	r3 := mustRun(t, nnet.AlexNet(200), rec)

	// The paper's headline chain: Σf+Σb > liveness > +offload > +recompute.
	if !(r0.PeakResident > r1.PeakResident &&
		r1.PeakResident > r2.PeakResident &&
		r2.PeakResident > r3.PeakResident) {
		t.Fatalf("peak chain broken: %d > %d > %d > %d",
			r0.PeakResident, r1.PeakResident, r2.PeakResident, r3.PeakResident)
	}
	// Baseline equals the analytic Σ l_i^f + Σ l_i^b.
	if r0.PeakResident != r0.BaselineBytes {
		t.Errorf("baseline peak %d != Σf+Σb %d", r0.PeakResident, r0.BaselineBytes)
	}
	// Fig. 10a: liveness peak is 1489.355 MB at backward POOL5.
	if got := float64(r1.PeakResident) / mib; got < 1489.3 || got > 1489.4 {
		t.Errorf("liveness peak = %.3f MiB, paper says 1489.355", got)
	}
	if r1.Steps[r1.PeakStep].Label != "pool5 bwd" {
		t.Errorf("liveness peak at %q, paper says backward POOL5", r1.Steps[r1.PeakStep].Label)
	}
	// Fig. 10b: offload drops the peak by another ~300 MB; the paper
	// measured 1132.155 (ours lands within ~10%: the prefetch window
	// differs slightly).
	if got := float64(r2.PeakResident) / mib; got < 1000 || got > 1250 {
		t.Errorf("offload peak = %.3f MiB, paper says 1132.155", got)
	}
	// Fig. 10c: the full stack approaches max(l_i) = 886.23 MiB.
	if got := float64(r3.PeakResident) / mib; got < 886 || got > 980 {
		t.Errorf("recompute peak = %.3f MiB, paper says ~886.4", got)
	}
	if got := float64(r3.LPeak) / mib; got < 886.22 || got > 886.24 {
		t.Errorf("lpeak = %.3f MiB, want 886.23", got)
	}
}

func TestRecomputeStrategiesOnAlexNet(t *testing.T) {
	_, _, off, _ := alexConfigs(hw.TeslaK40c)

	speeds := off
	speeds.Recompute = recompute.SpeedCentric
	rs := mustRun(t, nnet.AlexNet(200), speeds)

	mems := off
	mems.Recompute = recompute.MemoryCentric
	rm := mustRun(t, nnet.AlexNet(200), mems)

	cas := off
	cas.Recompute = recompute.CostAware
	rc := mustRun(t, nnet.AlexNet(200), cas)

	// Measured replay counts: speed-centric replays each segment once
	// (14 layer forwards, matching the paper's count exactly);
	// memory-centric replays prefixes per backward step; cost-aware
	// sits in between.
	if rs.ExtraForwards != 14 {
		t.Errorf("speed-centric extras = %d, want 14", rs.ExtraForwards)
	}
	if !(rs.ExtraForwards < rc.ExtraForwards && rc.ExtraForwards < rm.ExtraForwards) {
		t.Errorf("extras ordering broken: %d < %d < %d",
			rs.ExtraForwards, rc.ExtraForwards, rm.ExtraForwards)
	}
	// Memory-centric reaches the floor exactly: peak == max(l_i),
	// the paper's 886.23 MB.
	if rm.PeakResident != rm.LPeak {
		t.Errorf("memory-centric peak %.3f != lpeak %.3f",
			float64(rm.PeakResident)/mib, float64(rm.LPeak)/mib)
	}
	// Cost-aware's peak matches memory-centric's within the prefetch
	// window while costing nearly as few replays as speed-centric.
	if float64(rc.PeakResident) > 1.1*float64(rm.PeakResident) {
		t.Errorf("cost-aware peak %.3f too far above memory-centric %.3f",
			float64(rc.PeakResident)/mib, float64(rm.PeakResident)/mib)
	}
	if rs.PeakResident <= rc.PeakResident {
		t.Error("speed-centric must use more memory than cost-aware")
	}
}

func TestResNetMeasuredReplayCounts(t *testing.T) {
	_, _, off, _ := alexConfigs(hw.TeslaK40c)
	off.Offload = utp.OffloadConvAndKept
	for _, c := range []struct {
		depth                 int
		speed, memory, costAw int
	}{
		// Measured counts: lower than the paper's analytic 84/118/85
		// and 169/237/170 because cuDNN backward kernels do not
		// consume every forward tensor (e.g. nothing reads a
		// pre-join BN output in backward). The analytic counts are
		// asserted against the paper in internal/recompute.
		{50, 68, 137, 70},
		{101, 136, 273, 138},
	} {
		for _, s := range []struct {
			strat recompute.Strategy
			want  int
		}{
			{recompute.SpeedCentric, c.speed},
			{recompute.MemoryCentric, c.memory},
			{recompute.CostAware, c.costAw},
		} {
			cfg := off
			cfg.Recompute = s.strat
			r := mustRun(t, nnet.ResNet(c.depth, 16), cfg)
			if r.ExtraForwards != s.want {
				t.Errorf("ResNet%d %s extras = %d, want %d", c.depth, s.strat, r.ExtraForwards, s.want)
			}
		}
	}
}

func TestOffloadTrafficAndOverlap(t *testing.T) {
	_, _, off, _ := alexConfigs(hw.TeslaK40c)
	r := mustRun(t, nnet.AlexNet(200), off)
	// Eager offloading moves the five conv outputs (495.97 MiB) out
	// and back, plus the input batch re-upload.
	if got := float64(r.OffloadBytes) / mib; got < 495 || got > 500 {
		t.Errorf("offload traffic = %.1f MiB, want ~496", got)
	}
	if r.PrefetchBytes < r.OffloadBytes {
		t.Error("everything offloaded must come back (plus the input batch)")
	}
	// Both DMA engines actually ran, and communication overlapped
	// computation: total busy time across engines exceeds the
	// iteration's wall clock lower bound.
	if r.D2HBusy == 0 || r.H2DBusy == 0 {
		t.Fatal("DMA engines never ran")
	}
	hidden := r.D2HBusy + r.H2DBusy - r.StallTime
	if hidden <= 0 {
		t.Errorf("no communication was hidden: d2h %v h2d %v stalls %v",
			r.D2HBusy, r.H2DBusy, r.StallTime)
	}
}

func TestTensorCacheEliminatesTraffic(t *testing.T) {
	// Table 3: with the working set fitting in DRAM, the Tensor Cache
	// eliminates all offload/prefetch traffic.
	cfg := SuperNeurons(hw.TeslaK40c)
	r := mustRun(t, nnet.AlexNet(256), cfg)
	if r.TotalTraffic() != 0 {
		t.Errorf("traffic with tensor cache = %d bytes, want 0", r.TotalTraffic())
	}
	if r.CacheHits == 0 {
		t.Error("cache should be serving hits")
	}
	if r.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 when everything fits", r.Evictions)
	}
}

func TestTensorCacheEvictsUnderPressure(t *testing.T) {
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.PoolBytes = 2200 * hw.MiB // fits working sets but not the whole resident set
	r := mustRun(t, nnet.AlexNet(300), cfg)
	if r.Evictions == 0 || r.OffloadBytes == 0 {
		t.Fatalf("expected evictions under pressure, got %d (%d bytes)",
			r.Evictions, r.OffloadBytes)
	}
}

func TestOOMOnTinyPool(t *testing.T) {
	cfg := Baseline(hw.TeslaK40c)
	cfg.PoolBytes = 256 * hw.MiB
	_, err := Run(nnet.AlexNet(256), cfg)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestSuperNeuronsTrainsWhereBaselineCannot(t *testing.T) {
	// The paper's raison d'être: the full runtime trains networks the
	// naive strategy cannot fit. ResNet-50 at batch 224 wants ~29 GB
	// naively; SuperNeurons runs it in 12 GB.
	net := nnet.ResNet(50, 224)
	if _, err := Run(net, Baseline(hw.TeslaK40c)); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("baseline unexpectedly fit (err=%v)", err)
	}
	r := mustRun(t, nnet.ResNet(50, 224), SuperNeurons(hw.TeslaK40c))
	if r.Throughput <= 0 {
		t.Error("training produced no throughput")
	}
}

func TestDeepResNetDepthIndependentPeak(t *testing.T) {
	// With conv+kept offloading and recomputation, the functional peak
	// is bounded by max(l_i), not by depth — the paper's ResNet-2500
	// enabler. Compare two depths at batch 4.
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.TensorCache = false // eager mode exposes the bound directly
	r1 := mustRun(t, nnet.ResNetStages(4, 3, 4, 6, 3), cfg)
	r2 := mustRun(t, nnet.ResNetStages(4, 3, 4, 30, 3), cfg)
	ratio := float64(r2.PeakResident) / float64(r1.PeakResident)
	if ratio > 1.15 {
		t.Errorf("peak grew %.2fx with 4x depth; should be ~flat", ratio)
	}
}

func TestMemoryPoolFasterThanNative(t *testing.T) {
	// Table 2: the preallocated pool amortizes cudaMalloc/cudaFree.
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.TensorCache = false
	rPool := mustRun(t, nnet.ResNet(50, 16), cfg)
	cfg.UseMemPool = false
	rNative := mustRun(t, nnet.ResNet(50, 16), cfg)
	speedup := rPool.Throughput / rNative.Throughput
	if speedup < 1.2 {
		t.Errorf("pool speedup on ResNet-50 = %.2fx, paper says 1.53x", speedup)
	}
	if rNative.AllocTime <= rPool.AllocTime {
		t.Error("native allocator must spend more time in malloc/free")
	}
}

func TestDynamicWorkspaceSpeedsTraining(t *testing.T) {
	// Fig. 2: convolution workspaces buy 1.2-2.5x.
	cfg := SuperNeurons(hw.TitanXP)
	fast := mustRun(t, nnet.AlexNet(200), cfg)
	cfg.DynamicWorkspace = false
	slow := mustRun(t, nnet.AlexNet(200), cfg)
	ratio := fast.Throughput / slow.Throughput
	if ratio < 1.1 || ratio > 2.6 {
		t.Errorf("workspace speedup = %.2fx, want within [1.1, 2.6]", ratio)
	}
	// Assigned workspace never exceeds the max-speed request.
	for _, s := range fast.Steps {
		if s.WorkspaceBytes > s.MaxSpeedWorkspace {
			t.Fatalf("step %s: assigned ws %d > max-speed ws %d", s.Label, s.WorkspaceBytes, s.MaxSpeedWorkspace)
		}
	}
}

func TestWorkspaceShrinksUnderPressure(t *testing.T) {
	// Fig. 12: with less pool the runtime sacrifices workspace, not
	// functionality.
	big := SuperNeurons(hw.TitanXP)
	big.PoolBytes = 5 * hw.GiB
	small := SuperNeurons(hw.TitanXP)
	small.PoolBytes = 3 * hw.GiB
	rb := mustRun(t, nnet.AlexNet(300), big)
	rs := mustRun(t, nnet.AlexNet(300), small)
	wsb, wss := int64(0), int64(0)
	for i := range rb.Steps {
		wsb += rb.Steps[i].WorkspaceBytes
		wss += rs.Steps[i].WorkspaceBytes
	}
	if wss >= wsb {
		t.Errorf("workspace under 3G (%d) should be below 5G (%d)", wss, wsb)
	}
	if rs.Throughput >= rb.Throughput {
		t.Errorf("throughput under 3G (%.1f) should be below 5G (%.1f)", rs.Throughput, rb.Throughput)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := SuperNeurons(hw.TeslaK40c)
	r1 := mustRun(t, nnet.ResNet(50, 32), cfg)
	r2 := mustRun(t, nnet.ResNet(50, 32), cfg)
	if r1.PeakResident != r2.PeakResident || r1.IterTime != r2.IterTime ||
		r1.TotalTraffic() != r2.TotalTraffic() || r1.ExtraForwards != r2.ExtraForwards {
		t.Fatal("identical configurations must produce identical results")
	}
}

func TestMultipleIterationsSteadyState(t *testing.T) {
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.Iterations = 3
	r3 := mustRun(t, nnet.AlexNet(64), cfg)
	cfg.Iterations = 1
	r1 := mustRun(t, nnet.AlexNet(64), cfg)
	if r3.IterTime != r1.IterTime {
		t.Errorf("per-iteration time drifts: %v vs %v", r3.IterTime, r1.IterTime)
	}
}

func TestInPlaceActReducesBaseline(t *testing.T) {
	base := Baseline(hw.TeslaK40c)
	r := mustRun(t, nnet.VGG16(16), base)
	base.InPlaceAct = true
	rIn := mustRun(t, nnet.VGG16(16), base)
	if rIn.PeakResident >= r.PeakResident {
		t.Errorf("in-place activations must reduce the resident set: %d vs %d",
			rIn.PeakResident, r.PeakResident)
	}
}

func TestAllArchitecturesRunUnderSuperNeurons(t *testing.T) {
	for _, e := range nnet.Registry {
		r := mustRun(t, e.Build(8), SuperNeurons(hw.TeslaK40c))
		if r.Throughput <= 0 {
			t.Errorf("%s: no throughput", e.Name)
		}
		if r.PeakResident <= 0 || r.PeakResident > 12*hw.GiB {
			t.Errorf("%s: peak %d out of range", e.Name, r.PeakResident)
		}
	}
}

func TestExternalPoolHierarchy(t *testing.T) {
	// Fig. 7: when local CPU DRAM is exhausted, offloads spill to the
	// peer GPU's pool over PCIe P2P. Constrain the CPU pool below the
	// offload volume and verify training still succeeds with a peer.
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.TensorCache = false // eager offloads exercise the hierarchy
	cfg.HostBytes = 256 * hw.MiB
	base, err := Run(nnet.AlexNet(200), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ExternalPools = []ExternalPool{PeerGPUPool(8 * hw.GiB)}
	peer, err := Run(nnet.AlexNet(200), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With only 256 MiB of pinned CPU RAM some offloads could not
	// leave the GPU; the peer pool absorbs them, lowering the peak.
	if peer.PeakResident >= base.PeakResident {
		t.Errorf("peer pool should absorb spilled offloads: %d vs %d",
			peer.PeakResident, base.PeakResident)
	}
	if peer.OffloadBytes <= base.OffloadBytes {
		t.Errorf("more offloads must proceed with the peer pool: %d vs %d",
			peer.OffloadBytes, base.OffloadBytes)
	}
}

func TestRemotePoolSlowerThanLocal(t *testing.T) {
	// RDMA offloading works but costs more than pinned local DRAM.
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.TensorCache = false
	local, err := Run(nnet.AlexNet(200), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HostBytes = 64 * hw.MiB // force nearly everything remote
	cfg.ExternalPools = []ExternalPool{RemotePool(64 * hw.GiB)}
	remote, err := Run(nnet.AlexNet(200), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Throughput >= local.Throughput {
		t.Errorf("remote offloading should be slower: %.1f vs %.1f img/s",
			remote.Throughput, local.Throughput)
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.TensorCache = false
	cfg.CollectTrace = true
	r := mustRun(t, nnet.AlexNet(64), cfg)
	if len(r.Trace) == 0 {
		t.Fatal("no spans collected")
	}
	lanes := map[string]bool{}
	for _, s := range r.Trace {
		if s.End < s.Start {
			t.Fatalf("span %q ends before it starts", s.Name)
		}
		lanes[s.Lane] = true
	}
	for _, want := range []string{"compute", "d2h", "h2d"} {
		if !lanes[want] {
			t.Errorf("lane %q missing from trace", want)
		}
	}
	// Without the flag, no spans are kept.
	cfg.CollectTrace = false
	if r := mustRun(t, nnet.AlexNet(64), cfg); len(r.Trace) != 0 {
		t.Error("spans collected without CollectTrace")
	}
}

func TestCachePolicyAblation(t *testing.T) {
	// Under pressure, LRU must not move more eviction traffic than
	// MRU: back-propagation reuses the most recent tensors first, the
	// paper's argument for LRU (§3.3.2).
	traffic := func(p tcache.Policy) int64 {
		cfg := SuperNeurons(hw.TeslaK40c)
		cfg.PoolBytes = 2200 * hw.MiB
		cfg.CachePolicy = p
		r := mustRun(t, nnet.AlexNet(300), cfg)
		return r.OffloadBytes
	}
	lru, mru := traffic(tcache.LRU), traffic(tcache.MRU)
	if lru > mru {
		t.Errorf("LRU traffic %d exceeds MRU %d; recency should win", lru, mru)
	}
}

func TestStepProfileCount(t *testing.T) {
	net := nnet.AlexNet(8)
	r := mustRun(t, net, SuperNeurons(hw.TeslaK40c))
	if len(r.Steps) != 2*len(net.Nodes)-1 {
		t.Errorf("profile has %d steps, want %d", len(r.Steps), 2*len(net.Nodes)-1)
	}
}

func TestSGDUpdatePhase(t *testing.T) {
	cfg := SuperNeurons(hw.TeslaK40c)
	plain := mustRun(t, nnet.AlexNet(64), cfg)
	cfg.SGDUpdate = true
	updated := mustRun(t, nnet.AlexNet(64), cfg)
	if len(updated.Steps) != len(plain.Steps)+1 {
		t.Fatalf("update must add one profile step: %d vs %d", len(updated.Steps), len(plain.Steps))
	}
	last := updated.Steps[len(updated.Steps)-1]
	if last.Label != "sgd update" || last.Time <= 0 {
		t.Errorf("update step = %+v", last)
	}
	if updated.IterTime <= plain.IterTime {
		t.Error("the update must lengthen the iteration")
	}
}

func TestAutotuneConvergesAndCaches(t *testing.T) {
	// First iteration pays the cudnnFind-style probes; later
	// iterations reuse the cache, and the chosen algorithms match the
	// instantaneous selector's (our timing model is noise-free).
	base := SuperNeurons(hw.TitanXP)
	base.TensorCache = false
	instant := mustRun(t, nnet.AlexNet(64), base)

	tuned := base
	tuned.AutotuneConv = true
	tuned.Iterations = 2
	r := mustRun(t, nnet.AlexNet(64), tuned)
	// The reported (last) iteration runs from cache: same choices,
	// nearly the same time as the instantaneous selector.
	for i := range instant.Steps {
		if instant.Steps[i].Algo != r.Steps[i].Algo {
			t.Errorf("step %s: autotuned %v vs instantaneous %v",
				instant.Steps[i].Label, r.Steps[i].Algo, instant.Steps[i].Algo)
		}
	}

	oneIter := tuned
	oneIter.Iterations = 1
	first := mustRun(t, nnet.AlexNet(64), oneIter)
	if first.IterTime <= r.IterTime {
		t.Errorf("first (probing) iteration %v must exceed steady state %v",
			first.IterTime, r.IterTime)
	}
}
