package core

import (
	"errors"
	"fmt"

	"repro/internal/gpumem"
	"repro/internal/hw"
	"repro/internal/layers"
	"repro/internal/liveness"
	"repro/internal/nnet"
	"repro/internal/program"
	"repro/internal/recompute"
	"repro/internal/sim"
	"repro/internal/tcache"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/utp"
)

// ErrOutOfMemory reports that the configuration cannot train the
// network on the device; capacity searches rely on it.
var ErrOutOfMemory = gpumem.ErrOutOfMemory

// Run simulates cfg.Iterations training iterations of net and returns
// the profile of the last one.
func Run(net *nnet.Net, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	p := program.BuildWith(net, program.Options{InPlaceAct: cfg.InPlaceAct})
	e := newExec(p, cfg)
	if err := e.run(); err != nil {
		return nil, fmt.Errorf("core: %s batch %d: %w", net.Name, net.Batch(), err)
	}
	return e.res, nil
}

// tstate is the executor's mutable view of one tensor.
type tstate struct {
	gpu  gpumem.Allocation
	host gpumem.Allocation
	// hostPool indexes the external pool holding the host copy.
	hostPool int

	onGPU  bool
	onHost bool

	// inflight gates GPU reads on a pending H2D copy.
	inflight      sim.Event
	inflightValid bool

	// offPending marks an issued D2H whose GPU copy is reclaimable
	// once the event completes and the forward read horizon passes.
	offEv      sim.Event
	offPending bool
}

type exec struct {
	cfg   Config
	p     *program.Program
	live  *liveness.Result
	rplan *recompute.Plan
	uplan *utp.Plan

	tl      *sim.Timeline
	compute *sim.Engine
	h2d     *sim.Engine
	d2h     *sim.Engine

	gpu gpumem.Allocator
	// The Unified Tensor Pool's external memory spaces, filled in
	// order (local CPU DRAM first, then peers/remote per Fig. 7).
	hosts     []*gpumem.Pool
	hostLinks []hw.LinkSpec
	hostNames []string

	cache *tcache.Cache

	ts    []tstate
	owner []int // tensor ID -> producing node ID (-1 for gradients)

	resBytes int64
	resCount int

	segReplayed []bool
	persistent  gpumem.Allocation
	curStep     int

	// dropAt[si] lists dropped-tensor IDs whose forward read horizon
	// ends at step si; pendingOff tracks issued offloads awaiting
	// harvest. Both keep the per-step work proportional to actual
	// events rather than the tensor count (ResNet-2500 has ~60k
	// tensors).
	dropAt     [][]int
	pendingOff []int

	// algoCache holds autotuned convolution choices per step index,
	// keyed with the workspace budget they were tuned under.
	algoCache map[int]tunedAlgo

	res *Result
}

// tunedAlgo is one cached autotune result.
type tunedAlgo struct {
	algo   layers.Algo
	budget int64
}

func newExec(p *program.Program, cfg Config) *exec {
	e := &exec{
		cfg:   cfg,
		p:     p,
		live:  liveness.Analyze(p),
		tl:    sim.NewTimeline(),
		ts:    make([]tstate, p.Reg.Len()),
		owner: make([]int, p.Reg.Len()),
		res:   &Result{Network: p.Net.Name, Batch: p.Net.Batch()},
	}
	e.rplan = recompute.BuildPlan(p, cfg.Recompute)
	e.uplan = utp.BuildPlan(p, cfg.Offload, e.rplan)
	e.segReplayed = make([]bool, len(e.rplan.Segments))
	e.compute = e.tl.NewEngine("compute")
	e.h2d = e.tl.NewEngine("h2d")
	e.d2h = e.tl.NewEngine("d2h")
	if cfg.UseMemPool {
		e.gpu = gpumem.NewPool(cfg.PoolBytes, cfg.Device.PoolOp)
	} else {
		e.gpu = gpumem.NewNative(cfg.PoolBytes, cfg.Device.CudaMalloc, cfg.Device.CudaFree)
	}
	e.hosts = []*gpumem.Pool{gpumem.NewPool(cfg.HostBytes, cfg.Device.PoolOp)}
	e.hostLinks = []hw.LinkSpec{cfg.HostLink}
	e.hostNames = []string{"cpu"}
	for _, ep := range cfg.ExternalPools {
		e.hosts = append(e.hosts, gpumem.NewPool(ep.Bytes, cfg.Device.PoolOp))
		e.hostLinks = append(e.hostLinks, ep.Link)
		e.hostNames = append(e.hostNames, ep.Name)
	}
	if cfg.TensorCache {
		e.cache = tcache.NewWithPolicy(cfg.CachePolicy)
	}
	for i := range e.owner {
		e.owner[i] = -1
	}
	for _, nd := range p.Net.Nodes {
		// With in-place sharing several nodes map to one tensor; the
		// true producer (first writer in creation order) owns it.
		if e.owner[p.Out[nd.ID].ID] == -1 {
			e.owner[p.Out[nd.ID].ID] = nd.ID
		}
	}
	e.res.BaselineBytes = p.BaselineBytes()
	e.res.LPeak, _ = p.LPeak()
	e.res.PersistentBytes = p.PersistentBytes

	e.dropAt = make([][]int, len(p.Steps))
	for id := range e.owner {
		nd := e.owner[id]
		if nd < 0 || !e.rplan.Drop[nd] {
			continue
		}
		if last := e.uplan.LastFwdRead[id]; last >= 0 {
			e.dropAt[last] = append(e.dropAt[last], id)
		}
	}
	return e
}

func (e *exec) run() error {
	// Parameters, parameter gradients and auxiliary state live on the
	// GPU for the whole run.
	if e.p.PersistentBytes > 0 {
		a, err := e.gpu.Alloc(e.p.PersistentBytes)
		if err != nil {
			return fmt.Errorf("allocating persistent state: %w", err)
		}
		e.persistent = a
	}
	for it := 0; it < e.cfg.Iterations; it++ {
		if err := e.runIteration(); err != nil {
			return err
		}
	}
	return nil
}

func (e *exec) runIteration() error {
	// Reset per-iteration accounting so the reported numbers describe
	// one steady-state iteration.
	e.res.Steps = e.res.Steps[:0]
	e.res.OffloadBytes, e.res.PrefetchBytes = 0, 0
	e.res.ExtraForwards = 0
	e.res.AllocCalls, e.res.FreeCalls, e.res.AllocTime = 0, 0, 0
	e.res.StallTime = 0
	e.res.PeakResident, e.res.PeakStep = 0, 0
	e.res.Trace = e.res.Trace[:0]
	for i := range e.segReplayed {
		e.segReplayed[i] = false
	}
	e.pendingOff = e.pendingOff[:0]
	start := e.tl.Now()

	for si := range e.p.Steps {
		if err := e.runStep(si); err != nil {
			return err
		}
	}
	if e.cfg.SGDUpdate {
		e.runUpdate()
	}

	// Iteration epilogue: without Liveness Analysis nothing was freed
	// mid-iteration (the naive baseline); reclaim everything now. With
	// it, only stragglers with pending transfers remain.
	for id := range e.ts {
		e.freeAll(e.p.Reg.Get(id))
	}
	if e.resBytes != 0 || e.resCount != 0 {
		return fmt.Errorf("internal accounting drift: %d bytes / %d tensors leak", e.resBytes, e.resCount)
	}

	e.res.IterTime = sim.Duration(e.tl.Now() - start)
	if e.res.IterTime > 0 {
		e.res.Throughput = float64(e.p.Net.Batch()) / e.res.IterTime.Seconds()
	}
	e.res.PoolPeak = e.gpu.Peak()
	e.res.ComputeBusy = e.compute.BusyTime()
	e.res.H2DBusy = e.h2d.BusyTime()
	e.res.D2HBusy = e.d2h.BusyTime()
	if e.cache != nil {
		cs := e.cache.Stats()
		e.res.CacheHits, e.res.CacheMisses, e.res.Evictions = cs.Hits, cs.Misses, cs.Evictions
	}
	return nil
}

func (e *exec) runStep(si int) error {
	st := &e.p.Steps[si]
	e.curStep = si
	stepStart := e.tl.Now()

	// Trigger planned prefetches so the H2D copy overlaps this step's
	// computation (§3.3.1).
	if e.cfg.Prefetch {
		for _, tid := range e.uplan.PrefetchAt[si] {
			t := e.p.Reg.Get(tid)
			s := &e.ts[tid]
			if s.onHost && !s.onGPU && !s.inflightValid {
				// Prefetch failures are tolerated: the tensor will be
				// fetched on demand at its use.
				_ = e.fetch(t)
			}
		}
	}
	e.harvestOffloads(false)

	// Recomputation replays reconstruct dropped forward dependencies.
	var replayedNow []*tensor.Tensor
	if st.Phase == program.Backward {
		var err error
		replayedNow, err = e.replayFor(st)
		if err != nil {
			return err
		}
	}

	// Pin reads on the GPU, collecting the transfer events the kernel
	// must wait for.
	var deps []sim.Event
	for _, t := range st.Reads {
		s := &e.ts[t.ID]
		if !s.onGPU {
			if !s.onHost {
				return fmt.Errorf("step %d (%s): read %s is neither on GPU nor host", si, st.Label(), t)
			}
			if e.cache != nil {
				e.cache.Check(t) // records the miss
			}
			if err := e.fetch(t); err != nil {
				return err
			}
		} else if e.cache != nil {
			e.cache.Check(t) // hit: move to MRU
		}
		if s.inflightValid {
			deps = append(deps, s.inflight)
			if s.inflight.DoneBy(e.tl.Now()) {
				s.inflightValid = false
			}
		}
		t.Locked = true
	}
	// Materialize writes.
	for _, t := range st.Writes {
		s := &e.ts[t.ID]
		if !s.onGPU {
			if err := e.alloc(t); err != nil {
				return err
			}
			if e.cache != nil {
				e.cache.In(t)
			}
		}
		t.Locked = true
	}

	// Dynamic convolution workspace (§3.5): the fastest algorithm that
	// fits the bytes left after the functional tensors.
	var wsAlloc gpumem.Allocation
	var wsBytes int64
	algo := layers.Algo{Kind: layers.AlgoImplicitGEMM, Speedup: 1.0}
	var maxWS int64
	if st.Node.L.Type == layers.Conv {
		maxWS = st.Node.L.MaxSpeedAlgo().Workspace
		if e.cfg.DynamicWorkspace {
			budget := e.gpu.MaxAlloc()
			if e.cfg.WorkspaceLimit > 0 && e.cfg.WorkspaceLimit < budget {
				budget = e.cfg.WorkspaceLimit
			}
			algo = e.selectAlgo(st, budget)
			if algo.Workspace > 0 {
				a, err := e.gpu.Alloc(algo.Workspace)
				if err != nil {
					// Should not happen in this single-threaded
					// executor; degrade to the zero-workspace algorithm.
					algo = layers.Algo{Kind: layers.AlgoImplicitGEMM, Speedup: 1.0}
				} else {
					e.chargeAlloc()
					wsAlloc, wsBytes = a, algo.Workspace
				}
			}
		}
	}

	// Submit the kernel, gated on its inbound transfers.
	var dur sim.Duration
	if st.Phase == program.Forward {
		dur = st.Node.L.FwdTime(e.cfg.Device, algo.Speedup)
	} else {
		dur = st.Node.L.BwdTime(e.cfg.Device, algo.Speedup)
	}
	engineFree := e.compute.FreeAt()
	ev := e.compute.Submit(e.tl.Now(), dur, deps...)
	kernelStart := ev.At() - sim.Time(dur)
	floor := engineFree
	if e.tl.Now() > floor {
		floor = e.tl.Now()
	}
	if kernelStart > floor {
		e.res.StallTime += sim.Duration(kernelStart - floor)
	}
	e.span("compute", st.Label(), ev, dur)
	e.tl.Wait(ev)

	if wsBytes > 0 {
		e.chargeFree()
		if err := e.gpu.Free(wsAlloc.ID); err != nil {
			return err
		}
	}

	// Eager offload: checkpoint outputs leave for pinned host memory
	// as soon as they are produced; with the Tensor Cache the transfer
	// only happens under memory pressure (eviction).
	if st.Phase == program.Forward && e.cache == nil && e.cfg.Offload != utp.OffloadNone {
		out := e.p.Out[st.Node.ID]
		if e.uplan.OffloadTensor[out.ID] && e.ts[out.ID].onGPU {
			e.issueOffload(out)
		}
	}
	// The input batch is host-backed by definition — it was staged in
	// CPU RAM by the data pipeline — so its GPU copy is reclaimable
	// after the forward pass at zero D2H cost. With the Tensor Cache
	// the copy stays cached until real memory pressure evicts it.
	if st.Phase == program.Forward && st.Node.L.Type == layers.Data && e.cfg.Liveness && e.cache == nil {
		out := e.p.Out[st.Node.ID]
		s := &e.ts[out.ID]
		if s.onGPU && !s.onHost {
			// The input batch lives in local CPU DRAM (pool 0).
			if ha, err := e.hosts[0].Alloc(out.Bytes()); err == nil {
				s.host = ha
				s.hostPool = 0
				s.onHost = true
				s.offPending = true // completes instantly: data was never GPU-only
				e.pendingOff = append(e.pendingOff, out.ID)
			}
		}
	}

	for _, t := range st.Reads {
		t.Locked = false
	}
	for _, t := range st.Writes {
		t.Locked = false
	}

	// Post-step frees.
	if e.cfg.Liveness {
		// Memory-centric replays evaporate immediately (§3.4).
		for _, t := range replayedNow {
			e.freeGPU(t)
		}
		for _, tid := range e.live.FreeAfter[si] {
			e.freeAll(e.p.Reg.Get(tid))
		}
		if st.Phase == program.Forward {
			e.dropAfterFwd(si)
		}
	}

	e.res.Steps = append(e.res.Steps, StepProfile{
		Index:             si,
		Label:             st.Label(),
		Phase:             st.Phase,
		ResidentBytes:     e.resBytes,
		LiveTensors:       e.resCount,
		PoolUsedBytes:     e.gpu.Used(),
		WorkspaceBytes:    wsBytes,
		MaxSpeedWorkspace: maxWS,
		Algo:              algo.Kind,
		Time:              sim.Duration(e.tl.Now() - stepStart),
	})
	return nil
}

// runUpdate models the momentum-SGD weight update: a bandwidth-bound
// pass reading parameters, gradients and momentum and writing
// parameters and momentum, plus two fused multiply-adds per element.
func (e *exec) runUpdate() {
	start := e.tl.Now()
	params := e.p.Net.ParamBytes()
	if params == 0 {
		return
	}
	elems := float64(params / tensor.ElemSize)
	dur := e.cfg.Device.KernelTime(4*elems, 5*params,
		0.10*e.cfg.Device.EffScale, 0.85*e.cfg.Device.MemEffScale)
	ev := e.compute.Submit(e.tl.Now(), dur)
	e.span("compute", "sgd update", ev, dur)
	e.tl.Wait(ev)
	e.res.Steps = append(e.res.Steps, StepProfile{
		Index:         len(e.p.Steps),
		Label:         "sgd update",
		Phase:         program.Backward,
		ResidentBytes: e.resBytes,
		LiveTensors:   e.resCount,
		PoolUsedBytes: e.gpu.Used(),
		Time:          sim.Duration(e.tl.Now() - start),
	})
}

// dropAfterFwd frees forward outputs scheduled for recomputation once
// their forward read horizon passes.
func (e *exec) dropAfterFwd(si int) {
	for _, id := range e.dropAt[si] {
		if e.ts[id].onGPU {
			e.freeGPU(e.p.Reg.Get(id))
		}
	}
}

// replayFor reconstructs the dropped forward tensors this backward
// step reads, segment by segment. It returns the tensors that must be
// freed right after the step (memory-centric replays).
func (e *exec) replayFor(st *program.Step) ([]*tensor.Tensor, error) {
	var freeAfter []*tensor.Tensor
	type segNeed struct {
		seg    *recompute.Segment
		maxPos int
	}
	var needs []segNeed
	for _, t := range st.Reads {
		nd := e.owner[t.ID]
		if nd < 0 || !e.rplan.Drop[nd] || e.ts[t.ID].onGPU {
			continue
		}
		seg := e.rplan.SegmentOf[nd]
		if seg == nil {
			return nil, fmt.Errorf("dropped tensor %s has no segment", t)
		}
		pos := -1
		for i, m := range seg.Members {
			if m.ID == nd {
				pos = i
				break
			}
		}
		found := false
		for i := range needs {
			if needs[i].seg == seg {
				if pos > needs[i].maxPos {
					needs[i].maxPos = pos
				}
				found = true
			}
		}
		if !found {
			needs = append(needs, segNeed{seg: seg, maxPos: pos})
		}
	}
	var keep map[int]bool
	if len(needs) > 0 {
		keep = make(map[int]bool, len(st.Reads))
		for _, t := range st.Reads {
			keep[t.ID] = true
		}
	}
	for _, n := range needs {
		if !n.seg.UseMemoryCentric {
			// Speed-centric: replay the whole segment once; later
			// backward steps inside it reuse the results, which
			// liveness frees at their true last use.
			if e.segReplayed[n.seg.ID] {
				continue
			}
			if err := e.replayMembers(n.seg, len(n.seg.Members)-1, nil, nil); err != nil {
				return nil, err
			}
			e.segReplayed[n.seg.ID] = true
		} else {
			// Memory-centric: replay only the needed prefix, freeing
			// the chain behind the replay front (streaming), and free
			// the rest immediately after this step.
			if err := e.replayMembers(n.seg, n.maxPos, &freeAfter, keep); err != nil {
				return nil, err
			}
		}
	}
	return freeAfter, nil
}

// replayMembers re-runs the forward of segment members [0..upTo],
// ensuring each replay's own inputs are resident first. In streaming
// (memory-centric) mode — keep != nil — inputs behind the replay front
// are freed as soon as the next member has consumed them, unless the
// triggering step itself needs them, so the replay's transient
// footprint never exceeds two members plus the backward working set.
func (e *exec) replayMembers(seg *recompute.Segment, upTo int, freeAfter *[]*tensor.Tensor, keep map[int]bool) error {
	for i := 0; i <= upTo; i++ {
		m := seg.Members[i]
		out := e.p.Out[m.ID]
		if e.ts[out.ID].onGPU {
			continue
		}
		var deps []sim.Event
		for _, pr := range m.Prev {
			in := e.p.Out[pr.ID]
			s := &e.ts[in.ID]
			if !s.onGPU {
				if !s.onHost {
					return fmt.Errorf("replay of %s: input %s unavailable", m.Name(), in)
				}
				if err := e.fetch(in); err != nil {
					return err
				}
			}
			if s.inflightValid {
				deps = append(deps, s.inflight)
			}
			in.Locked = true
		}
		if err := e.alloc(out); err != nil {
			return err
		}
		if e.cache != nil {
			e.cache.In(out)
		}
		dur := m.L.FwdTime(e.cfg.Device, 1.0)
		ev := e.compute.Submit(e.tl.Now(), dur, deps...)
		e.span("compute", "replay "+m.Name(), ev, dur)
		e.tl.Wait(ev)
		e.res.ExtraForwards++
		for _, pr := range m.Prev {
			in := e.p.Out[pr.ID]
			in.Locked = false
			if keep == nil || keep[in.ID] {
				continue
			}
			// Streaming free: the input is recoverable either from its
			// host copy or by another replay (dropped member).
			s := &e.ts[in.ID]
			recoverable := s.onHost || (e.owner[in.ID] >= 0 && e.rplan.Drop[e.owner[in.ID]])
			if s.onGPU && recoverable {
				e.freeGPU(in)
			}
		}
		if freeAfter != nil {
			*freeAfter = append(*freeAfter, out)
		}
	}
	return nil
}

// alloc places a tensor on the GPU, evicting cached tensors or waiting
// on pending offloads under memory pressure.
func (e *exec) alloc(t *tensor.Tensor) error {
	for {
		a, err := e.gpu.Alloc(t.Bytes())
		if err == nil {
			e.chargeAlloc()
			s := &e.ts[t.ID]
			s.gpu = a
			s.onGPU = true
			t.Place = tensor.OnGPU
			e.resBytes += t.Bytes()
			e.resCount++
			if e.resBytes > e.res.PeakResident {
				e.res.PeakResident = e.resBytes
				e.res.PeakStep = e.curStep
			}
			return nil
		}
		if !errors.Is(err, gpumem.ErrOutOfMemory) {
			return err
		}
		if e.reclaim(t.Bytes()) {
			continue
		}
		return fmt.Errorf("allocating %s (%d bytes): %w", t, t.Bytes(), err)
	}
}

// reclaim tries to make room: first harvest pending offload frees,
// then evict LRU cache victims (Alg. 2's LRU.out).
func (e *exec) reclaim(need int64) bool {
	if e.harvestOffloads(true) {
		return true
	}
	if e.cache != nil {
		victims, ok := e.cache.Victims(need)
		if !ok {
			return false
		}
		for _, v := range victims {
			e.evict(v)
		}
		return true
	}
	return false
}

// evict synchronously offloads an unlocked LRU victim and frees its
// GPU copy.
func (e *exec) evict(t *tensor.Tensor) {
	s := &e.ts[t.ID]
	if !s.onGPU {
		return
	}
	if !s.onHost {
		ha, pool, ok := e.hostAlloc(t.Bytes())
		if !ok {
			return // every external pool exhausted: leave resident
		}
		s.host = ha
		s.hostPool = pool
		s.onHost = true
		dur := e.hostLinks[pool].TransferTime(t.Bytes())
		ev := e.d2h.Submit(e.tl.Now(), dur)
		e.span("d2h", "evict "+t.Name, ev, dur)
		// The reused memory must not be overwritten before the copy
		// drains; the synchronous wait is the eviction's cost.
		if ev.At() > e.tl.Now() {
			e.res.StallTime += sim.Duration(ev.At() - e.tl.Now())
		}
		e.tl.Wait(ev)
		e.res.OffloadBytes += t.Bytes()
	}
	e.cache.Evicted(t)
	e.freeGPU(t)
}

// issueOffload starts the eager D2H copy of a freshly produced
// checkpoint tensor; the GPU copy is reclaimed by harvestOffloads once
// the transfer completes and the forward no longer reads it.
func (e *exec) issueOffload(t *tensor.Tensor) {
	s := &e.ts[t.ID]
	if s.onHost || s.offPending {
		return
	}
	ha, pool, ok := e.hostAlloc(t.Bytes())
	if !ok {
		return
	}
	s.host = ha
	s.hostPool = pool
	s.onHost = true
	dur := e.hostLinks[pool].TransferTime(t.Bytes())
	s.offEv = e.d2h.Submit(e.tl.Now(), dur)
	s.offPending = true
	e.span("d2h", "offload "+t.Name, s.offEv, dur)
	e.pendingOff = append(e.pendingOff, t.ID)
	e.res.OffloadBytes += t.Bytes()
}

// harvestOffloads frees GPU copies whose D2H transfer completed and
// whose forward reads are done (the executor is past the tensor's last
// forward reader). With force, it waits for a pending transfer if none
// has completed yet (the background checker thread's job in the real
// runtime).
func (e *exec) harvestOffloads(force bool) bool {
	freed := false
	waited := false
	remaining := e.pendingOff[:0]
	for _, id := range e.pendingOff {
		s := &e.ts[id]
		if !s.offPending || !s.onGPU {
			s.offPending = false
			continue
		}
		t := e.p.Reg.Get(id)
		if t.Locked || e.curStep <= e.uplan.LastFwdRead[id] {
			remaining = append(remaining, id)
			continue
		}
		if !s.offEv.DoneBy(e.tl.Now()) {
			if !force || waited {
				remaining = append(remaining, id)
				continue
			}
			e.res.StallTime += sim.Duration(s.offEv.At() - e.tl.Now())
			e.tl.Wait(s.offEv)
			waited = true
		}
		s.offPending = false
		e.freeGPU(t)
		freed = true
	}
	e.pendingOff = remaining
	return freed
}

// fetch brings an offloaded tensor back to the GPU; consuming kernels
// gate on the recorded in-flight event.
func (e *exec) fetch(t *tensor.Tensor) error {
	s := &e.ts[t.ID]
	if err := e.alloc(t); err != nil {
		return err
	}
	dur := e.hostLinks[s.hostPool].TransferTime(t.Bytes())
	s.inflight = e.h2d.Submit(e.tl.Now(), dur)
	s.inflightValid = true
	e.span("h2d", "fetch "+t.Name, s.inflight, dur)
	e.res.PrefetchBytes += t.Bytes()
	if e.cache != nil {
		e.cache.In(t)
	}
	return nil
}

// freeGPU releases the GPU copy only (any host copy survives).
func (e *exec) freeGPU(t *tensor.Tensor) {
	s := &e.ts[t.ID]
	if !s.onGPU {
		return
	}
	if s.inflightValid {
		// An in-flight H2D copy targets this memory; it must drain
		// before the bytes can be reused.
		e.tl.Wait(s.inflight)
		s.inflightValid = false
	}
	e.chargeFree()
	if err := e.gpu.Free(s.gpu.ID); err != nil {
		panic(err) // accounting bug, not a runtime condition
	}
	s.onGPU = false
	e.resBytes -= t.Bytes()
	e.resCount--
	if e.cache != nil {
		e.cache.Remove(t)
	}
	if s.onHost {
		t.Place = tensor.OnHost
	} else if e.owner[t.ID] >= 0 && e.rplan.Drop[e.owner[t.ID]] {
		t.Place = tensor.Dropped
	} else {
		t.Place = tensor.Unallocated
	}
}

// freeAll releases both copies (liveness last-use free).
func (e *exec) freeAll(t *tensor.Tensor) {
	s := &e.ts[t.ID]
	if s.offPending {
		e.tl.Wait(s.offEv)
		s.offPending = false
	}
	if s.onGPU {
		e.freeGPU(t)
	}
	if s.onHost {
		if err := e.hosts[s.hostPool].Free(s.host.ID); err != nil {
			panic(err)
		}
		s.onHost = false
	}
	t.Place = tensor.Unallocated
}

// hostAlloc reserves bytes in the first external pool with room,
// returning the allocation, the pool index and success.
func (e *exec) hostAlloc(n int64) (gpumem.Allocation, int, bool) {
	for i, p := range e.hosts {
		if a, err := p.Alloc(n); err == nil {
			return a, i, true
		}
	}
	return gpumem.Allocation{}, 0, false
}

// selectAlgo picks the convolution algorithm for a step under the
// given workspace budget. With AutotuneConv it emulates
// cudnnFindConvolutionForwardAlgorithm: the first time a layer is
// planned (or when the budget no longer covers the cached choice)
// every memory-feasible candidate runs once on the compute engine and
// the fastest is cached.
func (e *exec) selectAlgo(st *program.Step, budget int64) layers.Algo {
	if !e.cfg.AutotuneConv {
		return st.Node.L.BestAlgoWithin(budget)
	}
	if e.algoCache == nil {
		e.algoCache = make(map[int]tunedAlgo)
	}
	if c, ok := e.algoCache[st.Index]; ok && c.algo.Workspace <= budget && c.budget <= budget {
		return c.algo
	}
	best := layers.Algo{Kind: layers.AlgoImplicitGEMM, Speedup: 1.0}
	var bestTime sim.Duration = 1 << 62
	for _, a := range st.Node.L.ConvAlgos() {
		if a.Workspace > budget {
			continue
		}
		var dur sim.Duration
		if st.Phase == program.Forward {
			dur = st.Node.L.FwdTime(e.cfg.Device, a.Speedup)
		} else {
			dur = st.Node.L.BwdTime(e.cfg.Device, a.Speedup)
		}
		// The probe executes for real, like cudnnFind.
		ev := e.compute.Submit(e.tl.Now(), dur)
		e.span("compute", "autotune "+st.Label(), ev, dur)
		e.tl.Wait(ev)
		if dur < bestTime {
			bestTime = dur
			best = a
		}
	}
	e.algoCache[st.Index] = tunedAlgo{algo: best, budget: budget}
	return best
}

// span records a timeline span when tracing is enabled.
func (e *exec) span(lane, name string, end sim.Event, dur sim.Duration) {
	if !e.cfg.CollectTrace {
		return
	}
	e.res.Trace = append(e.res.Trace, trace.Span{
		Lane: lane, Name: name,
		Start: end.At() - sim.Time(dur), End: end.At(),
	})
}

func (e *exec) chargeAlloc() {
	e.tl.Advance(e.gpu.AllocCost())
	e.res.AllocCalls++
	e.res.AllocTime += e.gpu.AllocCost()
}

func (e *exec) chargeFree() {
	e.tl.Advance(e.gpu.FreeCost())
	e.res.FreeCalls++
	e.res.AllocTime += e.gpu.FreeCost()
}
