package core

import (
	"fmt"
	"strings"

	"repro/internal/gpumem"
	"repro/internal/memmgr"
	"repro/internal/nnet"
	"repro/internal/program"
	"repro/internal/sim"
)

// ErrOutOfMemory reports that the configuration cannot train the
// network on the device; capacity searches rely on it.
var ErrOutOfMemory = gpumem.ErrOutOfMemory

// Result and StepProfile moved to internal/memmgr with the
// memory-manager extraction (the Runtime owns the profile it fills
// in); the aliases keep core's Run signature self-contained for the
// packages and examples built on top of it.
type (
	// Result aggregates one run.
	Result = memmgr.Result
	// StepProfile records the memory state after one step executed —
	// the data behind the paper's Fig. 10 step-wise curves and
	// Fig. 12 workspace bars.
	StepProfile = memmgr.StepProfile
)

// Run simulates cfg.Iterations training iterations of net and returns
// the profile of the last one.
func Run(net *nnet.Net, cfg Config) (*Result, error) {
	mgr, ok := memmgr.Lookup(cfg.Manager)
	if !ok {
		return nil, fmt.Errorf("core: %s batch %d: unknown memory manager %q (have %s)",
			net.Name, net.Batch(), cfg.Manager, strings.Join(memmgr.Names(), ", "))
	}
	cfg = mgr.Normalize(cfg).WithDefaults()
	p := program.BuildWith(net, program.Options{InPlaceAct: cfg.InPlaceAct})
	e := newExec(p, cfg, mgr)
	if err := e.run(); err != nil {
		return nil, fmt.Errorf("core: %s batch %d: %w", net.Name, net.Batch(), err)
	}
	return e.rt.Res, nil
}

// exec orchestrates one run: it owns the step loop and delegates every
// memory-management decision to the manager's subsystems. The
// normalized configuration lives in rt.Cfg, shared with the
// subsystems.
type exec struct {
	rt *memmgr.Runtime
	mm memmgr.Components
}

func newExec(p *program.Program, cfg Config, mgr memmgr.MemoryManager) *exec {
	rt := memmgr.NewRuntime(p, cfg)
	return &exec{rt: rt, mm: mgr.Components(rt)}
}

func (e *exec) run() error {
	rt := e.rt
	// Parameters, parameter gradients and auxiliary state live on the
	// GPU for the whole run.
	if rt.P.PersistentBytes > 0 {
		a, err := rt.GPU.Alloc(rt.P.PersistentBytes)
		if err != nil {
			return fmt.Errorf("allocating persistent state: %w", err)
		}
		rt.Persistent = a
	}
	for it := 0; it < rt.Cfg.Iterations; it++ {
		if err := e.runIteration(); err != nil {
			return err
		}
	}
	return nil
}

func (e *exec) runIteration() error {
	rt := e.rt
	rt.ResetIteration()
	start := rt.TL.Now()

	for si := range rt.P.Steps {
		if err := e.runStep(si); err != nil {
			return err
		}
	}
	if rt.Cfg.SGDUpdate {
		e.runUpdate()
	}

	// Iteration epilogue: without Liveness Analysis nothing was freed
	// mid-iteration (the naive baseline); reclaim everything now. With
	// it, only stragglers with pending transfers remain.
	for id := range rt.TS {
		e.mm.Residency.FreeAll(rt.P.Reg.Get(id))
	}
	if rt.ResBytes != 0 || rt.ResCount != 0 {
		return fmt.Errorf("internal accounting drift: %d bytes / %d tensors leak", rt.ResBytes, rt.ResCount)
	}

	res := rt.Res
	res.IterTime = sim.Duration(rt.TL.Now() - start)
	if res.IterTime > 0 {
		res.Throughput = float64(rt.P.Net.Batch()) / res.IterTime.Seconds()
	}
	res.PoolPeak = rt.GPU.Peak()
	res.ComputeBusy = rt.Compute.BusyTime()
	res.H2DBusy = rt.H2D.BusyTime()
	res.D2HBusy = rt.D2H.BusyTime()
	if rt.Cache != nil {
		cs := rt.Cache.Stats()
		res.CacheHits, res.CacheMisses, res.Evictions = cs.Hits, cs.Misses, cs.Evictions
	}
	return nil
}
