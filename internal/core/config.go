// Package core is the SuperNeurons runtime: it executes the tensor
// program of one training iteration on the simulated GPU. Since the
// memmgr decomposition, core owns only the orchestration — the step
// loop that submits kernels and drives the iteration — while every
// memory-management decision (tensor placement, movement, allocation,
// deallocation, recomputation, workspace policy; §3 of the paper)
// lives behind the pluggable subsystem interfaces of internal/memmgr.
//
// The manager running a given configuration is selected by
// Config.Manager: the empty name runs the flag-driven manager, which
// interprets the technique flags literally (how the ablation studies
// toggle individual mechanisms), while named managers ("superneurons",
// "vdnn", "naive", the framework models) own the policy surface. The
// competing frameworks' models (internal/policy) route through the
// same seam, so every capacity and speed comparison in the evaluation
// isolates exactly the policy difference.
package core

import (
	"repro/internal/hw"
	"repro/internal/memmgr"
)

// ExternalPool describes one external memory space of the Unified
// Tensor Pool (Fig. 7 of the paper).
type ExternalPool = memmgr.ExternalPool

// PeerGPUPool returns a peer GPU's DRAM reachable over the same PCIe
// switch (~10 GB/s).
func PeerGPUPool(bytes int64) ExternalPool { return memmgr.PeerGPUPool(bytes) }

// RemotePool returns remote CPU/GPU DRAM over GPUDirect RDMA (~6 GB/s).
func RemotePool(bytes int64) ExternalPool { return memmgr.RemotePool(bytes) }

// Config selects the device, the memory manager and the
// memory/performance techniques for a run.
type Config = memmgr.Config

// SuperNeurons returns the full configuration of the paper's system on
// the given device.
func SuperNeurons(d hw.DeviceSpec) Config { return memmgr.SuperNeuronsConfig(d) }

// Baseline returns the naive network-wide allocation strategy: every
// memory request gets an independent tensor and nothing is recycled
// (peak = Σ l_i^f + Σ l_i^b).
func Baseline(d hw.DeviceSpec) Config { return memmgr.BaselineConfig(d) }
