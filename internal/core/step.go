package core

import (
	"repro/internal/gpumem"
	"repro/internal/layers"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// runStep executes one step of the program: it lets the offload engine
// overlap transfers, the replayer reconstruct dropped dependencies and
// the residency manager pin the working set, then submits the kernel
// and applies the post-step policy hooks.
func (e *exec) runStep(si int) error {
	rt := e.rt
	st := &rt.P.Steps[si]
	rt.CurStep = si
	stepStart := rt.TL.Now()

	// Trigger planned prefetches so the H2D copy overlaps this step's
	// computation (§3.3.1), and harvest completed offloads.
	if err := e.mm.Offload.Prefetch(si); err != nil {
		return err
	}
	e.mm.Offload.Harvest(false)

	// Recomputation replays reconstruct dropped forward dependencies.
	var replayedNow []*tensor.Tensor
	if st.Phase == program.Backward {
		var err error
		replayedNow, err = e.mm.Replay.ReplayFor(st)
		if err != nil {
			return err
		}
	}

	// Pin reads on the GPU, collecting the transfer events the kernel
	// must wait for, and materialize writes.
	deps, err := e.mm.Residency.PinReads(st)
	if err != nil {
		return err
	}
	if err := e.mm.Residency.MaterializeWrites(st); err != nil {
		return err
	}

	// Dynamic convolution workspace (§3.5): the fastest algorithm that
	// fits the bytes left after the functional tensors.
	var wsAlloc gpumem.Allocation
	var wsBytes int64
	algo := layers.Algo{Kind: layers.AlgoImplicitGEMM, Speedup: 1.0}
	var maxWS int64
	if st.Node.L.Type == layers.Conv {
		maxWS = st.Node.L.MaxSpeedAlgo().Workspace
		if rt.Cfg.DynamicWorkspace {
			budget := rt.GPU.MaxAlloc()
			if rt.Cfg.WorkspaceLimit > 0 && rt.Cfg.WorkspaceLimit < budget {
				budget = rt.Cfg.WorkspaceLimit
			}
			algo = e.mm.Tuner.SelectAlgo(st, budget)
			if algo.Workspace > 0 {
				a, err := rt.GPU.Alloc(algo.Workspace)
				if err != nil {
					// Should not happen in this single-threaded
					// executor; degrade to the zero-workspace algorithm.
					algo = layers.Algo{Kind: layers.AlgoImplicitGEMM, Speedup: 1.0}
				} else {
					rt.ChargeAlloc()
					wsAlloc, wsBytes = a, algo.Workspace
				}
			}
		}
	}

	// Submit the kernel, gated on its inbound transfers.
	var dur sim.Duration
	if st.Phase == program.Forward {
		dur = st.Node.L.FwdTime(rt.Cfg.Device, algo.Speedup)
	} else {
		dur = st.Node.L.BwdTime(rt.Cfg.Device, algo.Speedup)
	}
	engineFree := rt.Compute.FreeAt()
	ev := rt.Compute.Submit(rt.TL.Now(), dur, deps...)
	kernelStart := ev.At() - sim.Time(dur)
	floor := engineFree
	if rt.TL.Now() > floor {
		floor = rt.TL.Now()
	}
	if kernelStart > floor {
		rt.Res.StallTime += sim.Duration(kernelStart - floor)
	}
	rt.Span("compute", st.Label(), ev, dur)
	rt.TL.Wait(ev)

	if wsBytes > 0 {
		rt.ChargeFree()
		if err := rt.GPU.Free(wsAlloc.ID); err != nil {
			return err
		}
	}

	// Post-kernel offload protocol: eager D2H of fresh checkpoints and
	// the zero-cost reclaim of the host-backed input batch.
	e.mm.Offload.AfterKernel(st)

	e.mm.Residency.Unpin(st)

	// Post-step frees.
	if rt.Cfg.Liveness {
		// Memory-centric replays evaporate immediately (§3.4).
		for _, t := range replayedNow {
			e.mm.Residency.FreeGPU(t)
		}
		for _, tid := range rt.Live.FreeAfter[si] {
			e.mm.Residency.FreeAll(rt.P.Reg.Get(tid))
		}
		if st.Phase == program.Forward {
			e.mm.Offload.DropAfterFwd(si)
		}
	}

	rt.Res.Steps = append(rt.Res.Steps, StepProfile{
		Index:             si,
		Label:             st.Label(),
		Phase:             st.Phase,
		ResidentBytes:     rt.ResBytes,
		LiveTensors:       rt.ResCount,
		PoolUsedBytes:     rt.GPU.Used(),
		WorkspaceBytes:    wsBytes,
		MaxSpeedWorkspace: maxWS,
		Algo:              algo.Kind,
		Time:              sim.Duration(rt.TL.Now() - stepStart),
	})
	return nil
}

// runUpdate models the momentum-SGD weight update: a bandwidth-bound
// pass reading parameters, gradients and momentum and writing
// parameters and momentum, plus two fused multiply-adds per element.
func (e *exec) runUpdate() {
	rt := e.rt
	start := rt.TL.Now()
	params := rt.P.Net.ParamBytes()
	if params == 0 {
		return
	}
	elems := float64(params / tensor.ElemSize)
	dur := rt.Cfg.Device.KernelTime(4*elems, 5*params,
		0.10*rt.Cfg.Device.EffScale, 0.85*rt.Cfg.Device.MemEffScale)
	ev := rt.Compute.Submit(rt.TL.Now(), dur)
	rt.Span("compute", "sgd update", ev, dur)
	rt.TL.Wait(ev)
	rt.Res.Steps = append(rt.Res.Steps, StepProfile{
		Index:         len(rt.P.Steps),
		Label:         "sgd update",
		Phase:         program.Backward,
		ResidentBytes: rt.ResBytes,
		LiveTensors:   rt.ResCount,
		PoolUsedBytes: rt.GPU.Used(),
		Time:          sim.Duration(rt.TL.Now() - start),
	})
}
