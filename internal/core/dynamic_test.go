package core_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/utp"
	"repro/internal/workload"
)

// ablationConfig is the frozen-static-plan baseline of the dynamic
// ablation: liveness only, no offloading — the plan a one-shot
// planner would freeze at iteration 0's small shape — on a pool
// shrunk so the ramp's later shapes cannot fit without widening.
func ablationConfig() core.Config {
	return core.Config{
		Device:           hw.TeslaK40c,
		HostLink:         hw.PCIePinned,
		UseMemPool:       true,
		Liveness:         true,
		DynamicWorkspace: true,
		PoolBytes:        2600 * hw.MiB,
		BatchSchedule:    workload.DynamicSchedules["ramp50"],
	}
}

func resnet50(batch int) *nnet.Net { return nnet.ResNet(50, batch) }

// The acceptance ablation: on the bundled ramp50 dynamic trace, the
// adaptive planner must strictly reduce OOM failures (or stall time)
// versus the frozen static plan, training strictly more images.
func TestAdaptiveBeatsFrozenStaticPlan(t *testing.T) {
	static, err := core.RunDynamic(resnet50, ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ablationConfig()
	cfg.AdaptivePlan = true
	adaptive, err := core.RunDynamic(resnet50, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The frozen plan fits the ramp's first shape and loses the bigger
	// ones to OOM; it never revises itself.
	if static.OOMFailures == 0 {
		t.Fatalf("static plan lost no iterations; the ablation pool is not tight enough (peaks: %+v)", static.Iters)
	}
	if static.Replans != 0 {
		t.Errorf("static plan recorded %d replans, want 0", static.Replans)
	}

	// Adaptive must strictly improve the failure count and train more.
	if adaptive.OOMFailures >= static.OOMFailures {
		t.Errorf("adaptive OOM failures %d not strictly below static %d",
			adaptive.OOMFailures, static.OOMFailures)
	}
	if adaptive.Images <= static.Images {
		t.Errorf("adaptive trained %d images, static %d; want strictly more", adaptive.Images, static.Images)
	}
	if adaptive.Replans == 0 {
		t.Error("adaptive run revised the plan 0 times; it cannot have adapted")
	}

	// The revisions must be visible in the per-iteration plans: the
	// ramp's later iterations run with a wider offload set than the
	// frozen baseline's.
	last := adaptive.Iters[len(adaptive.Iters)-1]
	if last.Offload == utp.OffloadNone {
		t.Errorf("adaptive run ended with offload still disabled: %+v", last)
	}
	for _, it := range static.Iters {
		if it.Offload != utp.OffloadNone || it.Replanned {
			t.Errorf("static iteration %d deviated from the frozen plan: %+v", it.Index, it)
		}
	}
}

// Replays must stay byte-identical: determinism is load-bearing for
// admission control.
func TestDynamicReplayByteIdentical(t *testing.T) {
	for _, adaptivePlan := range []bool{false, true} {
		cfg := ablationConfig()
		cfg.AdaptivePlan = adaptivePlan
		a, err := core.RunDynamic(resnet50, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.RunDynamic(resnet50, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("adaptive=%v: two replays of the same dynamic trace differ:\n%+v\n%+v", adaptivePlan, a, b)
		}
	}
}

// An OOM'd iteration is lost work, not a dead job: the run continues,
// state is reclaimed, and later iterations that fit still train.
func TestDynamicOOMRecovery(t *testing.T) {
	cfg := ablationConfig()
	cfg.BatchSchedule = []int{16, 48, 16}
	r, err := core.RunDynamic(resnet50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Iters) != 3 {
		t.Fatalf("ran %d iterations, want 3", len(r.Iters))
	}
	if r.Iters[0].OOM || !r.Iters[1].OOM || r.Iters[2].OOM {
		t.Errorf("OOM pattern %v/%v/%v, want false/true/false",
			r.Iters[0].OOM, r.Iters[1].OOM, r.Iters[2].OOM)
	}
	if r.OOMFailures != 1 {
		t.Errorf("OOMFailures = %d, want 1", r.OOMFailures)
	}
	if r.Images != 32 {
		t.Errorf("trained %d images, want 32 (the two fitting iterations)", r.Images)
	}
}

// A run under a full-capacity pool behaves like repeated static runs:
// every scheduled shape trains, per-iteration batches follow the
// schedule, and cycling extends it when Iterations asks for more.
func TestDynamicScheduleCycles(t *testing.T) {
	cfg := core.Config{
		Device: hw.TeslaK40c, HostLink: hw.PCIePinned,
		UseMemPool: true, Liveness: true,
		BatchSchedule: []int{8, 16},
		Iterations:    5,
	}
	r, err := core.RunDynamic(func(b int) *nnet.Net { return nnet.AlexNet(b) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 16, 8, 16, 8}
	if len(r.Iters) != len(want) {
		t.Fatalf("ran %d iterations, want %d", len(r.Iters), len(want))
	}
	for i, it := range r.Iters {
		if it.Batch != want[i] {
			t.Errorf("iteration %d ran batch %d, want %d", i, it.Batch, want[i])
		}
		if it.OOM {
			t.Errorf("iteration %d OOM'd on a full-capacity device", i)
		}
	}
	if r.OOMFailures != 0 || r.Images != 8+16+8+16+8 {
		t.Errorf("failures=%d images=%d, want 0 and 56", r.OOMFailures, r.Images)
	}
}

func TestRunDynamicValidation(t *testing.T) {
	cfg := core.Config{Device: hw.TeslaK40c}
	if _, err := core.RunDynamic(resnet50, cfg); err == nil ||
		!strings.Contains(err.Error(), "schedule") {
		t.Errorf("empty schedule not rejected: %v", err)
	}
	cfg.BatchSchedule = []int{16}
	cfg.Manager = "does-not-exist"
	if _, err := core.RunDynamic(resnet50, cfg); err == nil ||
		!strings.Contains(err.Error(), "unknown memory manager") {
		t.Errorf("unknown manager not rejected: %v", err)
	}
}
