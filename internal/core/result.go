package core

import "repro/internal/memmgr"

// StepProfile records the memory state after one step executed — the
// data behind the paper's Fig. 10 step-wise curves and Fig. 12
// workspace bars.
type StepProfile = memmgr.StepProfile

// Result aggregates one run.
type Result = memmgr.Result
