package core

// The dynamic run loop: training workloads whose input shape changes
// between iterations (bucketed sequence lengths, batch ramps, mixed
// request streams). The static Run path computes one plan before
// iteration 0 and replays it verbatim; here the program is rebuilt for
// the incoming shape at every iteration boundary, and — with
// Config.AdaptivePlan — a memmgr.Adaptive planner revises the
// offload/prefetch/recompute knobs online from the previous
// iterations' measured signals instead of trusting the one-shot static
// plan. The timeline, engines and memory pools persist across
// re-plans, so virtual time and pool fragmentation carry over exactly
// as they would on a real device.
//
// An iteration that cannot fit under the current plan fails with OOM;
// the failure is recorded (lost work, not a dead job), all state is
// reclaimed, and the run continues with the next iteration — under the
// adaptive planner, with a wider plan.

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/gpumem"
	"repro/internal/memmgr"
	"repro/internal/nnet"
	"repro/internal/program"
	"repro/internal/recompute"
	"repro/internal/sim"
	"repro/internal/utp"
	"repro/internal/workload"
)

// IterationProfile records one iteration of a dynamic run: the shape
// and plan in force, the outcome, and the measured signals the
// adaptive planner consumed at the following boundary.
type IterationProfile struct {
	Index int
	Batch int

	// The plan knobs in force for this iteration; Replanned marks that
	// the adaptive planner revised them at the preceding boundary.
	Offload   utp.Mode
	Prefetch  bool
	Recompute recompute.Strategy
	Replanned bool

	// OOM reports the iteration failed under the plan (counted, state
	// reclaimed, run continued).
	OOM bool

	IterTime  sim.Duration
	StallTime sim.Duration
	// PoolPeak is this iteration's pool high-water mark (peak tracking
	// is reset at each iteration start); Fragmentation the pool state
	// after the iteration.
	PoolPeak      int64
	Fragmentation float64

	CacheHits        int64
	CacheMisses      int64
	FailedPrefetches int64
	OffloadBytes     int64
	PrefetchBytes    int64
}

// DynamicResult aggregates a dynamic run.
type DynamicResult struct {
	Network  string
	Manager  string
	Adaptive bool
	Schedule []int

	Iters []IterationProfile

	// TotalTime is the end-to-end virtual time including failed
	// iterations; TotalStall sums the per-iteration stalls.
	TotalTime  sim.Duration
	TotalStall sim.Duration
	// OOMFailures counts iterations lost to OOM under the plan in
	// force; Replans counts adaptive plan revisions.
	OOMFailures int
	Replans     int
	// Images counts successfully trained samples; Throughput is
	// Images over TotalTime.
	Images     int64
	Throughput float64
}

// RunDynamic simulates a dynamic-shape training run: iteration i runs
// at cfg.BatchSchedule[i mod len] (at least len(BatchSchedule)
// iterations; more when cfg.Iterations asks, cycling the schedule).
// build constructs the network at a given batch size — nnet.ByName
// provides one for every registered architecture.
func RunDynamic(build func(int) *nnet.Net, cfg Config) (*DynamicResult, error) {
	mgr, ok := memmgr.Lookup(cfg.Manager)
	if !ok {
		return nil, fmt.Errorf("core: unknown memory manager %q (have %s)",
			cfg.Manager, strings.Join(memmgr.Names(), ", "))
	}
	cfg = mgr.Normalize(cfg).WithDefaults()
	sched := workload.Schedule(cfg.BatchSchedule)
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("core: dynamic run: %w", err)
	}
	iters := cfg.Iterations
	if iters < len(sched) {
		iters = len(sched)
	}

	var adaptive *memmgr.Adaptive
	knobs := cfg
	if cfg.AdaptivePlan {
		adaptive = memmgr.NewAdaptive(cfg)
		knobs = adaptive.Config()
	}

	res := &DynamicResult{
		Manager:  cfg.Manager,
		Adaptive: cfg.AdaptivePlan,
		Schedule: append([]int(nil), sched...),
	}

	var (
		rt           *memmgr.Runtime
		e            *exec
		curBatch     = -1
		rebindNeeded bool
		persistent   int64
		cacheBase    [2]int64 // hits, misses at the last (re)bind
	)

	for it := 0; it < iters; it++ {
		batch := sched.At(it)
		replanned := false
		switch {
		case rt == nil:
			net := build(batch)
			p := program.BuildWith(net, program.Options{InPlaceAct: knobs.InPlaceAct})
			rt = memmgr.NewRuntime(p, knobs)
			e = &exec{rt: rt, mm: mgr.Components(rt)}
			res.Network = net.Name
			curBatch = batch
		case batch != curBatch || rebindNeeded:
			net := build(batch)
			p := program.BuildWith(net, program.Options{InPlaceAct: knobs.InPlaceAct})
			if err := rt.Rebind(p, knobs); err != nil {
				return nil, fmt.Errorf("core: %s iteration %d: %w", res.Network, it, err)
			}
			e.mm = mgr.Components(rt)
			cacheBase = [2]int64{}
			replanned = rebindNeeded
			curBatch = batch
		}
		rebindNeeded = false

		prof := IterationProfile{
			Index: it, Batch: batch,
			Offload: knobs.Offload, Prefetch: knobs.Prefetch, Recompute: knobs.Recompute,
			Replanned: replanned,
		}

		start := rt.TL.Now()
		if p, ok := rt.GPU.(interface{ ResetPeak() }); ok {
			p.ResetPeak()
		}
		// Reset the per-iteration counters up front: if the persistent
		// resize OOMs below, runIteration (which normally resets them)
		// never runs, and the profile must not report the previous
		// iteration's stalls and traffic.
		rt.ResetIteration()
		iterErr := e.ensurePersistent(&persistent)
		if iterErr == nil {
			iterErr = e.runIteration()
		}
		if iterErr != nil {
			if !errors.Is(iterErr, ErrOutOfMemory) {
				return nil, fmt.Errorf("core: %s batch %d iteration %d: %w", res.Network, batch, it, iterErr)
			}
			prof.OOM = true
			res.OOMFailures++
			if err := e.abortIteration(); err != nil {
				return nil, fmt.Errorf("core: %s iteration %d: %w", res.Network, it, err)
			}
		}

		prof.IterTime = sim.Duration(rt.TL.Now() - start)
		prof.StallTime = rt.Res.StallTime
		prof.PoolPeak = rt.GPU.Peak()
		if f, ok := rt.GPU.(interface{ Fragmentation() float64 }); ok {
			prof.Fragmentation = f.Fragmentation()
		}
		if rt.Cache != nil {
			cs := rt.Cache.Stats()
			prof.CacheHits = cs.Hits - cacheBase[0]
			prof.CacheMisses = cs.Misses - cacheBase[1]
			cacheBase = [2]int64{cs.Hits, cs.Misses}
		}
		prof.FailedPrefetches = rt.Res.FailedPrefetches
		prof.OffloadBytes, prof.PrefetchBytes = rt.Res.OffloadBytes, rt.Res.PrefetchBytes

		if !prof.OOM {
			res.Images += int64(batch)
		}
		res.TotalStall += prof.StallTime
		res.Iters = append(res.Iters, prof)

		if adaptive != nil && it+1 < iters {
			sig := memmgr.Signals{
				Iteration: it, Batch: batch, NextBatch: sched.At(it + 1),
				OOM:      prof.OOM,
				IterTime: prof.IterTime, StallTime: prof.StallTime,
				PoolPeak: prof.PoolPeak, PoolBytes: knobs.PoolBytes,
				Fragmentation:    prof.Fragmentation,
				CacheHits:        prof.CacheHits,
				CacheMisses:      prof.CacheMisses,
				FailedPrefetches: prof.FailedPrefetches,
			}
			if adaptive.Observe(sig) {
				knobs = adaptive.Config()
				rebindNeeded = true
			}
		}
	}

	if adaptive != nil {
		res.Replans = adaptive.Replans()
	}
	res.TotalTime = sim.Duration(rt.TL.Now())
	if res.TotalTime > 0 {
		res.Throughput = float64(res.Images) / res.TotalTime.Seconds()
	}
	return res, nil
}

// ensurePersistent sizes the persistent allocation (parameters,
// parameter gradients, auxiliary state) to the bound program's needs.
// Auxiliary state scales with the batch, so a shape change at an
// iteration boundary resizes it.
func (e *exec) ensurePersistent(allocated *int64) error {
	rt := e.rt
	want := rt.P.PersistentBytes
	if *allocated == want {
		return nil
	}
	if *allocated > 0 {
		if err := rt.GPU.Free(rt.Persistent.ID); err != nil {
			return err
		}
		*allocated = 0
		rt.Persistent = gpumem.Allocation{}
	}
	if want > 0 {
		a, err := rt.GPU.Alloc(want)
		if err != nil {
			return fmt.Errorf("allocating persistent state: %w", err)
		}
		rt.Persistent = a
		*allocated = want
	}
	return nil
}

// abortIteration reclaims all functional state after a failed
// iteration: unlock every tensor, free both copies, drop pending
// transfers. The pool must account to zero afterwards, exactly like a
// successful iteration's epilogue.
func (e *exec) abortIteration() error {
	rt := e.rt
	for id := range rt.TS {
		t := rt.P.Reg.Get(id)
		t.Locked = false
		e.mm.Residency.FreeAll(t)
	}
	rt.PendingOff = rt.PendingOff[:0]
	if rt.ResBytes != 0 || rt.ResCount != 0 {
		return fmt.Errorf("aborted iteration leaks %d bytes / %d tensors", rt.ResBytes, rt.ResCount)
	}
	return nil
}
