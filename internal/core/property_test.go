package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/recompute"
	"repro/internal/tcache"
	"repro/internal/utp"
)

// randomConfig derives an arbitrary-but-valid configuration from the
// rng, covering the full cross-product of the runtime's techniques.
func randomConfig(rng *rand.Rand) Config {
	cfg := Config{
		Device:     hw.TeslaK40c,
		HostLink:   hw.PCIePinned,
		UseMemPool: rng.Intn(4) > 0,
	}
	if rng.Intn(2) == 0 {
		cfg.HostLink = hw.PCIePageable
	}
	cfg.Liveness = rng.Intn(4) > 0
	if cfg.Liveness {
		cfg.Offload = utp.Mode(rng.Intn(4))
		cfg.Prefetch = rng.Intn(2) == 0
		cfg.TensorCache = rng.Intn(2) == 0
		cfg.CachePolicy = tcache.Policy(rng.Intn(3))
		cfg.Recompute = recompute.Strategy(rng.Intn(4))
	}
	cfg.DynamicWorkspace = rng.Intn(2) == 0
	if rng.Intn(3) == 0 {
		cfg.WorkspaceLimit = int64(rng.Intn(256)+8) * hw.MiB
	}
	cfg.InPlaceAct = rng.Intn(3) == 0
	if rng.Intn(3) == 0 {
		cfg.ExternalPools = []ExternalPool{PeerGPUPool(4 * hw.GiB)}
	}
	return cfg
}

// TestExecutorInvariantsUnderRandomConfigs is the executor's fuzz
// harness: any combination of techniques must run AlexNet and
// ResNet-50 without errors, deterministically, with the peak bounded
// below by max(l_i) and above by Σf+Σb, and the pool high-water within
// capacity.
func TestExecutorInvariantsUnderRandomConfigs(t *testing.T) {
	nets := []func() *nnet.Net{
		func() *nnet.Net { return nnet.AlexNet(16) },
		func() *nnet.Net { return nnet.ResNet(50, 4) },
		func() *nnet.Net { return nnet.DenseNet121(2) },
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		build := nets[rng.Intn(len(nets))]

		r1, err := Run(build(), cfg)
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, cfg, err)
		}
		r2, err := Run(build(), cfg)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if r1.PeakResident != r2.PeakResident || r1.IterTime != r2.IterTime ||
			r1.TotalTraffic() != r2.TotalTraffic() || r1.ExtraForwards != r2.ExtraForwards {
			t.Fatalf("seed %d: nondeterministic results", seed)
		}
		if r1.PeakResident < r1.LPeak {
			t.Fatalf("seed %d: peak %d below max(l_i) %d", seed, r1.PeakResident, r1.LPeak)
		}
		if r1.PeakResident > r1.BaselineBytes {
			t.Fatalf("seed %d: peak %d above Σf+Σb %d", seed, r1.PeakResident, r1.BaselineBytes)
		}
		if r1.PoolPeak > cfg.WithDefaults().PoolBytes {
			t.Fatalf("seed %d: pool peak %d above capacity", seed, r1.PoolPeak)
		}
		if r1.IterTime <= 0 || r1.Throughput <= 0 {
			t.Fatalf("seed %d: degenerate timing %v / %v", seed, r1.IterTime, r1.Throughput)
		}
	}
}

// TestHostPoolExhaustionIsGraceful injects an undersized pinned host
// pool: offloads that cannot find host room simply stay resident, and
// training must still complete (at a higher peak) rather than fail.
func TestHostPoolExhaustionIsGraceful(t *testing.T) {
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.TensorCache = false
	cfg.HostBytes = 1 * hw.MiB // nothing fits
	r, err := Run(nnet.AlexNet(200), cfg)
	if err != nil {
		t.Fatalf("host exhaustion must not fail the run: %v", err)
	}
	if r.OffloadBytes != 0 {
		t.Errorf("no offload should have succeeded, moved %d bytes", r.OffloadBytes)
	}
	cfg.HostBytes = 0 // default, plenty
	r2, err := Run(nnet.AlexNet(200), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakResident <= r2.PeakResident {
		t.Error("without host room the peak must be higher")
	}
}

// TestCacheThrashingTerminates stresses the eviction path: a pool
// barely above the working set forces continuous evictions and
// refetches, which must converge, not livelock.
func TestCacheThrashingTerminates(t *testing.T) {
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.PoolBytes = 2 * hw.GiB
	r, err := Run(nnet.AlexNet(256), cfg)
	if err != nil {
		// A clean OOM is acceptable at this margin; a hang is not.
		if !errors.Is(err, ErrOutOfMemory) {
			t.Fatal(err)
		}
		return
	}
	if r.Evictions == 0 {
		t.Error("expected eviction pressure at this pool size")
	}
}

// TestPageableLinkSlowsOffloading verifies the §2.2 claim that
// pageable transfers cost at least 50% of the communication speed.
func TestPageableLinkSlowsOffloading(t *testing.T) {
	cfg := SuperNeurons(hw.TeslaK40c)
	cfg.TensorCache = false
	pinned := mustRun(t, nnet.AlexNet(200), cfg)
	cfg.HostLink = hw.PCIePageable
	pageable := mustRun(t, nnet.AlexNet(200), cfg)
	if pageable.Throughput >= pinned.Throughput {
		t.Errorf("pageable %f must be slower than pinned %f",
			pageable.Throughput, pinned.Throughput)
	}
}
