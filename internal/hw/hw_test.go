package hw

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTransferTime(t *testing.T) {
	l := LinkSpec{Name: "test", BytesPerSec: 1e9, Latency: 100}
	// 1e9 bytes at 1e9 B/s = 1s plus latency.
	if got := l.TransferTime(1e9); got != sim.Second+100 {
		t.Errorf("TransferTime(1e9) = %v, want 1s+100ns", got)
	}
	if got := l.TransferTime(0); got != 100 {
		t.Errorf("TransferTime(0) = %v, want latency only", got)
	}
}

func TestPinnedFasterThanPageable(t *testing.T) {
	const n = 256 * MiB
	if PCIePinned.TransferTime(n) >= PCIePageable.TransferTime(n) {
		t.Fatal("pinned transfers must be faster than pageable")
	}
	// The paper says pageable loses at least 50% of speed.
	ratio := float64(PCIePageable.TransferTime(n)) / float64(PCIePinned.TransferTime(n))
	if ratio < 1.9 {
		t.Errorf("pageable/pinned time ratio = %.2f, want ~2x", ratio)
	}
}

func TestKernelTimeRoofline(t *testing.T) {
	d := DeviceSpec{
		Name: "unit", PeakFLOPS: 1e12, MemBWBytes: 1e11,
		KernelLaunch: 0,
	}
	// Compute-bound: 1e12 FLOPs at 1e12 FLOP/s = 1s; memory side is 1e9/1e11 = 10ms.
	if got := d.KernelTime(1e12, 1e9, 1, 1); got != sim.Second {
		t.Errorf("compute-bound kernel = %v, want 1s", got)
	}
	// Memory-bound: tiny FLOPs, 1e11 bytes at 1e11 B/s = 1s.
	if got := d.KernelTime(1, 1e11, 1, 1); got != sim.Second {
		t.Errorf("memory-bound kernel = %v, want 1s", got)
	}
}

func TestKernelTimeEfficiencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KernelTime with zero efficiency must panic")
		}
	}()
	TeslaK40c.KernelTime(1, 1, 0, 1)
}

func TestDeviceProfilesSane(t *testing.T) {
	for _, d := range []DeviceSpec{TeslaK40c, TitanXP} {
		if d.UsableBytes <= 0 || d.UsableBytes > d.DRAMBytes {
			t.Errorf("%s: usable bytes %d out of range", d.Name, d.UsableBytes)
		}
		if d.PeakFLOPS <= 0 || d.MemBWBytes <= 0 {
			t.Errorf("%s: non-positive peak specs", d.Name)
		}
		if d.CudaMalloc <= d.PoolOp {
			t.Errorf("%s: cudaMalloc must cost more than a pool op", d.Name)
		}
		if d.CudaFree < d.CudaMalloc {
			t.Errorf("%s: cudaFree (synchronizing) should cost at least cudaMalloc", d.Name)
		}
	}
	if TitanXP.PeakFLOPS <= TeslaK40c.PeakFLOPS {
		t.Error("TITAN Xp must be faster than K40c")
	}
}

// Property: kernel time is monotone in both FLOPs and bytes.
func TestKernelTimeMonotoneProperty(t *testing.T) {
	d := TeslaK40c
	f := func(f1, f2 uint32, b1, b2 uint32) bool {
		fa, fb := float64(f1), float64(f1)+float64(f2)
		ba, bb := int64(b1), int64(b1)+int64(b2)
		return d.KernelTime(fa, ba, 0.5, 0.5) <= d.KernelTime(fb, bb, 0.5, 0.5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer time is additive-superadditive: moving n bytes once
// costs no more than moving it in two chunks (latency is paid twice).
func TestTransferSplitProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		n1, n2 := int64(a), int64(b)
		whole := PCIePinned.TransferTime(n1 + n2)
		split := PCIePinned.TransferTime(n1) + PCIePinned.TransferTime(n2)
		return whole <= split
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
