package hw

import "testing"

// Tier classification over the default DGX-style layout: nodes of 8,
// two 4-device NVLink islands per node.
func TestTierBetweenTable(t *testing.T) {
	topo := DefaultTopology()
	cases := []struct {
		name string
		a, b int
		want Tier
	}{
		{"self is island-local", 0, 0, TierNVLink},
		{"same island", 0, 3, TierNVLink},
		{"second island of node 0", 4, 7, TierNVLink},
		{"island of a later node", 8, 11, TierNVLink},
		{"same node across islands", 0, 4, TierPCIe},
		{"island boundary", 3, 4, TierPCIe},
		{"later node across islands", 8, 12, TierPCIe},
		{"adjacent nodes", 7, 8, TierNetwork},
		{"distant nodes", 0, 255, TierNetwork},
		{"node boundary", 15, 16, TierNetwork},
	}
	for _, c := range cases {
		if got := topo.TierBetween(c.a, c.b); got != c.want {
			t.Errorf("%s: TierBetween(%d, %d) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

// The zero topology (normalized) is one flat node without NVLink:
// every pair is a same-node PCIe peer, the historical cluster model.
func TestZeroTopologyIsFlatPCIe(t *testing.T) {
	topo := Topology{}.WithDefaults()
	if tier := topo.TierBetween(0, 100000); tier != TierPCIe {
		t.Errorf("zero topology classifies pair as %v, want %v", tier, TierPCIe)
	}
	if link := topo.SlowestLink([]int{0, 7, 200}); link != topo.PCIe {
		t.Errorf("zero topology slowest link = %v, want the PCIe tier", link.Name)
	}
}

// SlowestLink prices a gang by its worst wire.
func TestSlowestLinkByGangSpan(t *testing.T) {
	topo := DefaultTopology().WithDefaults()
	cases := []struct {
		name string
		devs []int
		want LinkSpec
	}{
		{"inside one island", []int{0, 1, 2, 3}, topo.NVLink},
		{"across islands", []int{0, 4}, topo.PCIe},
		{"whole node", []int{0, 1, 2, 3, 4, 5, 6, 7}, topo.PCIe},
		{"across nodes", []int{0, 8}, topo.Network},
		{"one slow pair poisons the gang", []int{0, 1, 2, 8}, topo.Network},
		{"gang of one communicates nothing", []int{5}, topo.NVLink},
	}
	for _, c := range cases {
		if got := topo.SlowestLink(c.devs); got != c.want {
			t.Errorf("%s: SlowestLink(%v) = %q, want %q", c.name, c.devs, got.Name, c.want.Name)
		}
	}
}

// Property: tier classification is symmetric, and island identity
// agrees with it — two devices share an Island exactly when their
// tier is NVLink.
func TestTierSymmetryAndIslandProperty(t *testing.T) {
	topo := DefaultTopology()
	for a := 0; a < 48; a++ {
		for b := 0; b < 48; b++ {
			ab, ba := topo.TierBetween(a, b), topo.TierBetween(b, a)
			if ab != ba {
				t.Fatalf("TierBetween(%d,%d)=%v but TierBetween(%d,%d)=%v", a, b, ab, b, a, ba)
			}
			sameIsland := topo.Island(a) == topo.Island(b)
			if sameIsland != (ab == TierNVLink) {
				t.Fatalf("Island(%d)=%d Island(%d)=%d but tier %v", a, topo.Island(a), b, topo.Island(b), ab)
			}
			if !topo.SameNode(a, b) && ab != TierNetwork {
				t.Fatalf("devices %d,%d on different nodes classified %v", a, b, ab)
			}
		}
	}
}

// Property: SlowestLink is invariant under gang permutation — pricing
// depends on the set of devices, not their order.
func TestSlowestLinkPermutationProperty(t *testing.T) {
	topo := DefaultTopology().WithDefaults()
	gangs := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{0, 4, 8, 12},
		{12, 0, 8, 4},
		{7, 8, 15, 16},
		{16, 15, 8, 7},
	}
	for i := 0; i+1 < len(gangs); i += 2 {
		a, b := topo.SlowestLink(gangs[i]), topo.SlowestLink(gangs[i+1])
		if a != b {
			t.Errorf("SlowestLink(%v)=%q but SlowestLink(%v)=%q", gangs[i], a.Name, gangs[i+1], b.Name)
		}
	}
}
