package hw

import (
	"fmt"

	"repro/internal/sim"
)

// Interconnect tiers. The paper's cost model (§3.3.2, §5) prices
// offload and prefetch against a single host link; a multi-node
// cluster adds the dimension the per-device model leaves open: which
// pair of devices shares which wire. Three tiers cover the machines of
// the paper's era and their descendants:
//
//   - TierNVLink: device pairs inside one NVLink island share the
//     point-to-point mesh — the fast tier.
//   - TierPCIe: same-node pairs in different islands (or nodes without
//     NVLink) cross the PCIe switch complex.
//   - TierNetwork: cross-node pairs ride the fabric (GPUDirect RDMA in
//     the paper's measurement).
//
// Only the ratio between tiers matters for placement decisions, just
// as only the kernel-cost ratios matter for the offload decisions; the
// tiers therefore reuse the same LinkSpec roofline the host link uses.
type Tier int

const (
	// TierNVLink connects device pairs within one NVLink island.
	TierNVLink Tier = iota
	// TierPCIe connects same-node pairs in different islands.
	TierPCIe
	// TierNetwork connects pairs on different nodes.
	TierNetwork
)

// String names the tier for reports.
func (t Tier) String() string {
	switch t {
	case TierNVLink:
		return "nvlink"
	case TierPCIe:
		return "pcie"
	case TierNetwork:
		return "network"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// NVLink is the intra-island device-to-device link: a single NVLink
// 1.0 brick sustains ~18 GB/s practical per direction with negligible
// setup cost next to PCIe DMA descriptors.
var NVLink = LinkSpec{Name: "nvlink", BytesPerSec: 18e9, Latency: 5 * sim.Microsecond}

// NodeNetwork is the cross-node fabric: GPUDirect RDMA at the paper's
// quoted 6 GB/s practical (§3.3.2), with host-adapter setup latency.
var NodeNetwork = GPUDirectRDMA

// Topology describes which device pairs of a cluster share which
// interconnect tier. Devices are numbered densely; node membership and
// island membership follow from integer division, which keeps the
// whole topology a comparable value (it is embedded in scheduler
// results and snapshot keys).
//
// The zero Topology means "no structure declared": every pair is
// same-node PCIe peer-to-peer, matching the single-node clusters of
// earlier evaluations. Normalize callers through WithDefaults.
type Topology struct {
	// DevicesPerNode is the number of devices per node; 0 places every
	// device on one node.
	DevicesPerNode int
	// NVLinkIsland is the number of devices per NVLink island within a
	// node; 0 means the node has no NVLink and same-node pairs use the
	// PCIe tier.
	NVLinkIsland int
	// NVLink, PCIe and Network are the per-tier link profiles.
	NVLink  LinkSpec
	PCIe    LinkSpec
	Network LinkSpec
}

// DefaultTopology is a DGX-style node layout: nodes of 8 devices, two
// 4-device NVLink islands per node, PCIe across islands and GPUDirect
// RDMA across nodes.
func DefaultTopology() Topology {
	return Topology{
		DevicesPerNode: 8,
		NVLinkIsland:   4,
		NVLink:         NVLink,
		PCIe:           PCIeP2P,
		Network:        NodeNetwork,
	}
}

// WithDefaults fills the zero values: an undeclared node size means
// one flat node, and unset links take the era profiles (PCIe P2P
// within a node, NVLink for islands, GPUDirect RDMA across nodes).
func (t Topology) WithDefaults() Topology {
	if t.DevicesPerNode <= 0 {
		t.DevicesPerNode = 1 << 30 // one flat node
	}
	if t.NVLinkIsland < 0 {
		t.NVLinkIsland = 0
	}
	if t.NVLink.BytesPerSec == 0 {
		t.NVLink = NVLink
	}
	if t.PCIe.BytesPerSec == 0 {
		t.PCIe = PCIeP2P
	}
	if t.Network.BytesPerSec == 0 {
		t.Network = NodeNetwork
	}
	return t
}

// Node returns the node index of a device.
func (t Topology) Node(dev int) int {
	if t.DevicesPerNode <= 0 {
		return 0
	}
	return dev / t.DevicesPerNode
}

// SameNode reports whether two devices share a node.
func (t Topology) SameNode(a, b int) bool { return t.Node(a) == t.Node(b) }

// Island returns a cluster-unique NVLink-island index for a device, or
// -1 when the topology declares no islands. Two devices share an
// island exactly when TierBetween classifies them as TierNVLink.
func (t Topology) Island(dev int) int {
	if t.NVLinkIsland <= 0 {
		return -1
	}
	if t.DevicesPerNode > 0 {
		perNode := (t.DevicesPerNode + t.NVLinkIsland - 1) / t.NVLinkIsland
		return t.Node(dev)*perNode + (dev%t.DevicesPerNode)/t.NVLinkIsland
	}
	return dev / t.NVLinkIsland
}

// TierBetween classifies the link tier between two devices. A device
// paired with itself is island-local by definition.
func (t Topology) TierBetween(a, b int) Tier {
	if !t.SameNode(a, b) {
		return TierNetwork
	}
	if t.NVLinkIsland > 0 {
		// Islands partition each node; membership is position within
		// the node, so the classification is symmetric by construction.
		na, nb := a, b
		if t.DevicesPerNode > 0 {
			na, nb = a%t.DevicesPerNode, b%t.DevicesPerNode
		}
		if na/t.NVLinkIsland == nb/t.NVLinkIsland {
			return TierNVLink
		}
	}
	return TierPCIe
}

// LinkBetween returns the link profile for a device pair.
func (t Topology) LinkBetween(a, b int) LinkSpec {
	switch t.TierBetween(a, b) {
	case TierNVLink:
		return t.NVLink
	case TierPCIe:
		return t.PCIe
	default:
		return t.Network
	}
}

// SlowestLink returns the slowest pairwise link among the devices — a
// synchronous collective (ring all-reduce) moves every byte across
// every hop, so its cost is set by the worst wire in the gang. A gang
// of one (or none) communicates nothing and gets the fast tier.
func (t Topology) SlowestLink(devs []int) LinkSpec {
	slowest := t.NVLink
	if slowest.BytesPerSec == 0 {
		slowest = t.PCIe
	}
	first := true
	for i, a := range devs {
		for _, b := range devs[i+1:] {
			l := t.LinkBetween(a, b)
			if first || slower(l, slowest) {
				slowest = l
				first = false
			}
		}
	}
	return slowest
}

// slower orders links by sustained bandwidth, breaking ties with the
// higher setup latency.
func slower(a, b LinkSpec) bool {
	if a.BytesPerSec != b.BytesPerSec {
		return a.BytesPerSec < b.BytesPerSec
	}
	return a.Latency > b.Latency
}
