// Package hw describes the simulated hardware: GPU device profiles,
// interconnect links, and the latency constants of the native CUDA
// allocator. The SuperNeurons evaluation ran on an NVIDIA K40c (capacity
// experiments, 12 GB) and a TITAN XP (throughput experiments); both are
// provided as calibrated profiles.
//
// Kernel and transfer durations are derived with a roofline model:
//
//	t_kernel   = max(FLOPs / (PeakFLOPS * effCompute), Bytes / (MemBW * effMem)) + launch overhead
//	t_transfer = Bytes / linkBW + link latency
//
// Only the *ratios* between layer costs matter for the scheduling
// decisions the paper studies (what to offload, what to recompute, how
// much workspace is affordable), so a roofline abstraction preserves the
// behaviour of the real substrate.
package hw

import "repro/internal/sim"

// KiB, MiB and GiB are binary byte units. The paper reports MB/GB in
// binary units (its AlexNet tensor sizes match NCHW geometry only when
// divided by 2^20), so we follow the same convention.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// DeviceSpec describes a simulated GPU.
type DeviceSpec struct {
	Name string

	// DRAMBytes is the physical device memory. UsableBytes is what a
	// process can actually allocate after the CUDA context and cuDNN
	// handles take their share.
	DRAMBytes   int64
	UsableBytes int64

	// PeakFLOPS is single-precision peak throughput (FLOP/s).
	PeakFLOPS float64
	// MemBWBytes is peak device memory bandwidth (bytes/s).
	MemBWBytes float64

	// KernelLaunch is the fixed host+device overhead per kernel.
	KernelLaunch sim.Duration

	// CudaMalloc/CudaFree are the modeled costs of the native CUDA
	// allocator; cudaFree additionally synchronizes the device, which
	// is the dominant reason frameworks avoid it on the training path
	// (ResNet-50 loses ~36% of iteration time to these calls, per the
	// paper §3.2.1).
	CudaMalloc sim.Duration
	CudaFree   sim.Duration

	// PoolOp is the cost of one allocation/deallocation in the
	// preallocated heap-based memory pool.
	PoolOp sim.Duration

	// EffScale and MemEffScale scale the per-layer-type roofline
	// efficiencies (internal/layers) to this device, capturing how well
	// the era's cuDNN kernels exploited it. The K40c (Kepler, 2013
	// kernels) sustains a much lower fraction of peak than the TITAN Xp
	// (Pascal, mature cuDNN 6 kernels).
	EffScale    float64
	MemEffScale float64
}

// LinkSpec describes an interconnect between memory spaces.
type LinkSpec struct {
	Name string
	// BytesPerSec is sustained bandwidth; Latency is the fixed setup
	// cost per transfer (driver + DMA descriptor).
	BytesPerSec float64
	Latency     sim.Duration
}

// TransferTime returns the modeled duration of moving n bytes across
// the link.
func (l LinkSpec) TransferTime(n int64) sim.Duration {
	if n <= 0 {
		return l.Latency
	}
	return l.Latency + sim.Duration(float64(n)/l.BytesPerSec*1e9)
}

// KernelTime applies the roofline model for a kernel with the given
// work, using efficiency factors in (0,1] for each roof.
func (d DeviceSpec) KernelTime(flops float64, bytes int64, effCompute, effMem float64) sim.Duration {
	if effCompute <= 0 || effMem <= 0 {
		panic("hw: non-positive efficiency")
	}
	tc := flops / (d.PeakFLOPS * effCompute)
	tm := float64(bytes) / (d.MemBWBytes * effMem)
	t := tc
	if tm > t {
		t = tm
	}
	return d.KernelLaunch + sim.Duration(t*1e9)
}

// Predefined device profiles. Peak numbers are the published board
// specs; efficiency is applied per layer type by the cost model in
// internal/layers.
var (
	// TeslaK40c: the paper's 12 GB capacity-experiment board.
	TeslaK40c = DeviceSpec{
		Name:         "Tesla K40c",
		DRAMBytes:    12 * GiB,
		UsableBytes:  12*GiB - 512*MiB,
		PeakFLOPS:    4.29e12,
		MemBWBytes:   288e9,
		KernelLaunch: 8 * sim.Microsecond,
		CudaMalloc:   150 * sim.Microsecond,
		CudaFree:     350 * sim.Microsecond,
		PoolOp:       1 * sim.Microsecond,
		EffScale:     0.42,
		MemEffScale:  0.80,
	}

	// TitanXP: the paper's throughput-experiment board (Fig. 14).
	TitanXP = DeviceSpec{
		Name:         "TITAN Xp",
		DRAMBytes:    12 * GiB,
		UsableBytes:  12*GiB - 512*MiB,
		PeakFLOPS:    12.15e12,
		MemBWBytes:   547.7e9,
		KernelLaunch: 6 * sim.Microsecond,
		CudaMalloc:   150 * sim.Microsecond,
		CudaFree:     350 * sim.Microsecond,
		PoolOp:       1 * sim.Microsecond,
		EffScale:     0.85,
		MemEffScale:  0.90,
	}
)

// Interconnect profiles. The paper (§3.3.2) quotes practical speeds of
// 8 GB/s for CPU↔GPU over PCIe 3.0 x16 with pinned memory, 10 GB/s
// GPU↔GPU under one PCIe switch, and 6 GB/s for GPU-Direct RDMA.
// TensorFlow-style swapping with pageable memory loses at least 50% of
// the pinned bandwidth (§2.2).
var (
	PCIePinned    = LinkSpec{Name: "pcie-pinned", BytesPerSec: 8e9, Latency: 10 * sim.Microsecond}
	PCIePageable  = LinkSpec{Name: "pcie-pageable", BytesPerSec: 4e9, Latency: 25 * sim.Microsecond}
	PCIeP2P       = LinkSpec{Name: "pcie-p2p", BytesPerSec: 10e9, Latency: 8 * sim.Microsecond}
	GPUDirectRDMA = LinkSpec{Name: "gpudirect-rdma", BytesPerSec: 6e9, Latency: 15 * sim.Microsecond}
)
