package gpumem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestPool(capBytes int64) *Pool {
	return NewPool(capBytes, sim.Microsecond)
}

func TestPoolBasicAllocFree(t *testing.T) {
	p := newTestPool(10 * BlockSize)
	a, err := p.Alloc(100) // rounds to one block
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes != BlockSize {
		t.Errorf("rounded size = %d, want %d", a.Bytes, BlockSize)
	}
	if p.Used() != BlockSize || p.Live() != 1 {
		t.Errorf("used=%d live=%d after one alloc", p.Used(), p.Live())
	}
	if err := p.Free(a.ID); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 0 || p.Live() != 0 {
		t.Errorf("used=%d live=%d after free", p.Used(), p.Live())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPoolFirstFit(t *testing.T) {
	p := newTestPool(10 * BlockSize)
	a, _ := p.Alloc(2 * BlockSize) // [0,2)
	b, _ := p.Alloc(3 * BlockSize) // [2,5)
	c, _ := p.Alloc(1 * BlockSize) // [5,6)
	if a.Addr != 0 || b.Addr != 2*BlockSize || c.Addr != 5*BlockSize {
		t.Fatalf("addresses %d,%d,%d not sequential", a.Addr, b.Addr, c.Addr)
	}
	// Free the middle hole; a new 2-block alloc should land there
	// (first fit), not after c.
	if err := p.Free(b.ID); err != nil {
		t.Fatal(err)
	}
	d, _ := p.Alloc(2 * BlockSize)
	if d.Addr != 2*BlockSize {
		t.Errorf("first-fit alloc at %d, want %d", d.Addr, 2*BlockSize)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPoolCoalescing(t *testing.T) {
	p := newTestPool(8 * BlockSize)
	a, _ := p.Alloc(2 * BlockSize)
	b, _ := p.Alloc(2 * BlockSize)
	c, _ := p.Alloc(2 * BlockSize)
	// Free a and c (non-adjacent), then b: all must coalesce with the
	// tail into one span covering the pool.
	p.Free(a.ID)
	p.Free(c.ID)
	p.Free(b.ID)
	if got := p.LargestFree(); got != 8*BlockSize {
		t.Errorf("largest free after coalesce = %d, want %d", got, 8*BlockSize)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPoolOutOfMemory(t *testing.T) {
	p := newTestPool(4 * BlockSize)
	if _, err := p.Alloc(5 * BlockSize); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if p.Stats().FailedAllocs != 1 {
		t.Error("failed alloc not counted")
	}
}

func TestPoolFragmentationOOM(t *testing.T) {
	// Free bytes suffice but no contiguous span does.
	p := newTestPool(6 * BlockSize)
	a, _ := p.Alloc(2 * BlockSize)
	b, _ := p.Alloc(2 * BlockSize)
	_, _ = p.Alloc(2 * BlockSize)
	p.Free(a.ID)
	_ = b
	// Holes: [0,2) free, [4,6)... wait: c occupies [4,6), so frees are
	// [0,2) only. Free b too -> [0,4) coalesced. Then alloc 4 blocks OK.
	if _, err := p.Alloc(4 * BlockSize); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("expected OOM while fragmented")
	}
	p.Free(b.ID)
	if _, err := p.Alloc(4 * BlockSize); err != nil {
		t.Fatalf("after coalescing, alloc should succeed: %v", err)
	}
}

func TestPoolFreeUnknown(t *testing.T) {
	p := newTestPool(4 * BlockSize)
	if err := p.Free(42); err == nil {
		t.Fatal("freeing unknown ID must error")
	}
}

func TestPoolPeakTracking(t *testing.T) {
	p := newTestPool(10 * BlockSize)
	a, _ := p.Alloc(4 * BlockSize)
	b, _ := p.Alloc(3 * BlockSize)
	p.Free(a.ID)
	p.Free(b.ID)
	if p.Peak() != 7*BlockSize {
		t.Errorf("peak = %d, want %d", p.Peak(), 7*BlockSize)
	}
	p.ResetPeak()
	if p.Peak() != 0 {
		t.Errorf("peak after reset = %d, want 0", p.Peak())
	}
}

func TestPoolCostsCheaperThanNative(t *testing.T) {
	p := NewPool(BlockSize, sim.Microsecond)
	n := NewNative(BlockSize, 90*sim.Microsecond, 160*sim.Microsecond)
	if p.AllocCost() >= n.AllocCost() || p.FreeCost() >= n.FreeCost() {
		t.Error("pool ops must be cheaper than native ops")
	}
}

func TestNativeAllocFree(t *testing.T) {
	n := NewNative(1<<20, 90*sim.Microsecond, 160*sim.Microsecond)
	a, err := n.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes != 1024 { // 256-byte granularity
		t.Errorf("native rounded to %d, want 1024", a.Bytes)
	}
	if n.Used() != 1024 || n.Live() != 1 {
		t.Error("native accounting wrong after alloc")
	}
	if err := n.Free(a.ID); err != nil {
		t.Fatal(err)
	}
	if n.Used() != 0 || n.Peak() != 1024 {
		t.Error("native accounting wrong after free")
	}
	if err := n.Free(a.ID); err == nil {
		t.Error("double free must error")
	}
}

func TestNativeOOM(t *testing.T) {
	n := NewNative(512, 0, 0)
	if _, err := n.Alloc(1024); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFragmentationMetric(t *testing.T) {
	p := newTestPool(6 * BlockSize)
	if p.Fragmentation() != 0 {
		t.Error("fresh pool has zero fragmentation")
	}
	a, _ := p.Alloc(2 * BlockSize)
	b, _ := p.Alloc(2 * BlockSize)
	_ = b
	p.Free(a.ID)
	// Free spans: [0,2) and [4,6): largest 2, total 4 -> frag 0.5.
	if got := p.Fragmentation(); got != 0.5 {
		t.Errorf("fragmentation = %v, want 0.5", got)
	}
}

func TestPoolMaxAllocTracksLargestHole(t *testing.T) {
	p := newTestPool(8 * BlockSize)
	if p.MaxAlloc() != 8*BlockSize {
		t.Fatalf("fresh MaxAlloc = %d", p.MaxAlloc())
	}
	a, _ := p.Alloc(3 * BlockSize)
	b, _ := p.Alloc(2 * BlockSize)
	_, _ = p.Alloc(1 * BlockSize)
	p.Free(a.ID) // hole [0,3)
	_ = b
	if p.MaxAlloc() != 3*BlockSize {
		t.Errorf("MaxAlloc = %d, want 3 blocks (hole) despite 2 free at tail", p.MaxAlloc())
	}
}

func TestNativeMaxAllocAndStats(t *testing.T) {
	n := NewNative(10*256, 0, 0)
	a, err := n.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if n.MaxAlloc() != 9*256 {
		t.Errorf("native MaxAlloc = %d", n.MaxAlloc())
	}
	if n.Capacity() != 10*256 {
		t.Errorf("capacity = %d", n.Capacity())
	}
	st := n.Stats()
	if st.Allocs != 1 || st.BytesServed != 256 {
		t.Errorf("stats = %+v", st)
	}
	if a.Addr != -1 {
		t.Error("native allocations have no pool address")
	}
	if err := n.Free(a.ID); err != nil {
		t.Fatal(err)
	}
	if n.Live() != 0 {
		t.Error("live count wrong")
	}
}

func TestNativeZeroByteAlloc(t *testing.T) {
	n := NewNative(1024, 0, 0)
	a, err := n.Alloc(0)
	if err != nil || a.Bytes != 256 {
		t.Fatalf("zero-byte alloc = %+v, %v (want 256-byte granule)", a, err)
	}
}

func TestPoolZeroByteAlloc(t *testing.T) {
	p := newTestPool(4 * BlockSize)
	a, err := p.Alloc(0)
	if err != nil || a.Bytes != BlockSize {
		t.Fatalf("zero-byte alloc = %+v, %v (want one block)", a, err)
	}
}

func TestNewPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sub-block capacity must panic")
		}
	}()
	NewPool(512, 0)
}

func TestNewNativeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive capacity must panic")
		}
	}()
	NewNative(0, 0, 0)
}

// Property: under random alloc/free sequences the pool never violates
// its structural invariants and accounting stays exact.
func TestPoolInvariantProperty(t *testing.T) {
	f := func(seed int64, opsCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newTestPool(64 * BlockSize)
		live := make([]int64, 0)
		for i := 0; i < int(opsCount)+8; i++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				n := int64(rng.Intn(int(8*BlockSize))) + 1
				a, err := p.Alloc(n)
				if err == nil {
					live = append(live, a.ID)
				}
			} else {
				k := rng.Intn(len(live))
				if p.Free(live[k]) != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			}
			if p.CheckInvariants() != nil {
				return false
			}
		}
		for _, id := range live {
			if p.Free(id) != nil {
				return false
			}
		}
		// After freeing everything the pool must be one coalesced span.
		return p.CheckInvariants() == nil && p.Used() == 0 &&
			p.LargestFree() == p.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: allocations never overlap while live.
func TestPoolNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := newTestPool(1 << 20)
		type ext struct{ lo, hi int64 }
		var exts []ext
		for _, s := range sizes {
			a, err := p.Alloc(int64(s) + 1)
			if err != nil {
				continue
			}
			for _, e := range exts {
				if a.Addr < e.hi && e.lo < a.Addr+a.Bytes {
					return false
				}
			}
			exts = append(exts, ext{a.Addr, a.Addr + a.Bytes})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: random alloc/free sequences keep the free list
// address-sorted and fully coalesced (CheckInvariants), keep
// Fragmentation within [0,1] after every operation, and freeing
// everything restores one span of full capacity with zero
// fragmentation.
func TestPoolFragmentationProperty(t *testing.T) {
	f := func(seed int64, opsCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newTestPool(128 * BlockSize)
		live := make([]int64, 0)
		for i := 0; i < int(opsCount)+16; i++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				a, err := p.Alloc(int64(rng.Intn(int(6*BlockSize))) + 1)
				if err == nil {
					live = append(live, a.ID)
				}
			} else {
				k := rng.Intn(len(live))
				if p.Free(live[k]) != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			}
			if p.CheckInvariants() != nil {
				return false
			}
			if fr := p.Fragmentation(); fr < 0 || fr > 1 {
				t.Logf("fragmentation %v out of [0,1]", fr)
				return false
			}
		}
		for _, id := range live {
			if p.Free(id) != nil {
				return false
			}
		}
		// Fully drained: a single free span covering the whole pool.
		return p.CheckInvariants() == nil && p.Used() == 0 &&
			p.LargestFree() == p.Capacity() && p.Fragmentation() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
