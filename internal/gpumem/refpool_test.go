package gpumem

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// refPool is the pre-index linear-scan pool, kept verbatim as the
// reference implementation for differential testing: Alloc is an O(n)
// first-fit scan of an address-sorted free slice, Free an O(n) sorted
// insert with coalescing, LargestFree an O(n) sweep. The production
// Pool must reproduce its placement, IDs and errors byte for byte.
type refPool struct {
	capacity int64
	opCost   sim.Duration

	free   []span // sorted by addr, fully coalesced
	allocd map[int64]span
	nextID int64

	used  int64
	peak  int64
	stats Stats
}

func newRefPool(capacity int64, opCost sim.Duration) *refPool {
	capacity = capacity / BlockSize * BlockSize
	if capacity <= 0 {
		panic("gpumem: pool capacity must be at least one block")
	}
	return &refPool{
		capacity: capacity,
		opCost:   opCost,
		free:     []span{{addr: 0, size: capacity}},
		allocd:   make(map[int64]span),
		nextID:   1,
	}
}

func (p *refPool) Alloc(n int64) (Allocation, error) {
	need := roundUp(n)
	for i, f := range p.free {
		if f.size < need {
			continue
		}
		a := Allocation{ID: p.nextID, Addr: f.addr, Bytes: need}
		p.nextID++
		if f.size == need {
			p.free = append(p.free[:i], p.free[i+1:]...)
		} else {
			p.free[i] = span{addr: f.addr + need, size: f.size - need}
		}
		p.allocd[a.ID] = span{id: a.ID, addr: a.Addr, size: need}
		p.used += need
		if p.used > p.peak {
			p.peak = p.used
		}
		p.stats.Allocs++
		p.stats.BytesServed += need
		return a, nil
	}
	p.stats.FailedAllocs++
	return Allocation{}, fmt.Errorf("%w: need %d bytes, free %d (largest contiguous %d)",
		ErrOutOfMemory, need, p.capacity-p.used, p.LargestFree())
}

func (p *refPool) Free(id int64) error {
	s, ok := p.allocd[id]
	if !ok {
		return fmt.Errorf("gpumem: free of unknown allocation %d", id)
	}
	delete(p.allocd, id)
	p.used -= s.size
	p.stats.Frees++

	i := sort.Search(len(p.free), func(i int) bool { return p.free[i].addr > s.addr })
	p.free = append(p.free, span{})
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = span{addr: s.addr, size: s.size}
	if i+1 < len(p.free) && p.free[i].addr+p.free[i].size == p.free[i+1].addr {
		p.free[i].size += p.free[i+1].size
		p.free = append(p.free[:i+1], p.free[i+2:]...)
	}
	if i > 0 && p.free[i-1].addr+p.free[i-1].size == p.free[i].addr {
		p.free[i-1].size += p.free[i].size
		p.free = append(p.free[:i], p.free[i+1:]...)
	}
	return nil
}

func (p *refPool) Used() int64      { return p.used }
func (p *refPool) Peak() int64      { return p.peak }
func (p *refPool) Capacity() int64  { return p.capacity }
func (p *refPool) FreeBytes() int64 { return p.capacity - p.used }
func (p *refPool) MaxAlloc() int64  { return p.LargestFree() }
func (p *refPool) FreeSpans() int   { return len(p.free) }

func (p *refPool) LargestFree() int64 {
	var m int64
	for _, f := range p.free {
		if f.size > m {
			m = f.size
		}
	}
	return m
}

func (p *refPool) Fragmentation() float64 {
	free := p.FreeBytes()
	if free == 0 {
		return 0
	}
	return 1 - float64(p.LargestFree())/float64(free)
}

func (p *refPool) CheckInvariants() error {
	var freeBytes int64
	for i, f := range p.free {
		if f.size <= 0 || f.addr < 0 || f.addr+f.size > p.capacity {
			return fmt.Errorf("free span %d out of range: %+v", i, f)
		}
		if f.addr%BlockSize != 0 || f.size%BlockSize != 0 {
			return fmt.Errorf("free span %d not block aligned: %+v", i, f)
		}
		if i > 0 {
			prev := p.free[i-1]
			if prev.addr+prev.size > f.addr {
				return fmt.Errorf("free spans overlap: %+v then %+v", prev, f)
			}
			if prev.addr+prev.size == f.addr {
				return fmt.Errorf("free spans not coalesced: %+v then %+v", prev, f)
			}
		}
		freeBytes += f.size
	}
	var usedBytes int64
	for _, s := range p.allocd {
		usedBytes += s.size
	}
	if usedBytes != p.used {
		return fmt.Errorf("used accounting drift: sum %d vs counter %d", usedBytes, p.used)
	}
	if freeBytes+usedBytes != p.capacity {
		return fmt.Errorf("free+used = %d, capacity %d", freeBytes+usedBytes, p.capacity)
	}
	return nil
}
