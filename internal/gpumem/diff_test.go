package gpumem

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// The differential property: under arbitrary alloc/free workloads the
// indexed pool and the linear-scan reference produce identical
// Allocation sequences (ID, Addr, Bytes), identical errors, and agree
// on every observable metric, while both keep their invariants. This
// is what "byte-identical first-fit placement" means operationally —
// every determinism guarantee built on the pool (memmgr conformance,
// sched trace replay, serve log replay) reduces to it.

// diffStep drives both pools through one operation and asserts
// equivalence. live holds IDs currently allocated on both sides (the
// ID sequences are identical, so one list serves both).
func diffStep(t *testing.T, p *Pool, r *refPool, op func() (Allocation, error, Allocation, error)) {
	t.Helper()
	pa, pe, ra, re := op()
	if pa != ra {
		t.Fatalf("allocation diverged: pool %+v vs reference %+v", pa, ra)
	}
	if (pe == nil) != (re == nil) || (pe != nil && pe.Error() != re.Error()) {
		t.Fatalf("error diverged: pool %v vs reference %v", pe, re)
	}
	assertSameView(t, p, r)
}

func assertSameView(t *testing.T, p *Pool, r *refPool) {
	t.Helper()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("pool invariants: %v", err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("reference invariants: %v", err)
	}
	if p.Used() != r.Used() || p.Peak() != r.Peak() {
		t.Fatalf("usage diverged: pool used=%d peak=%d, reference used=%d peak=%d",
			p.Used(), p.Peak(), r.Used(), r.Peak())
	}
	if p.LargestFree() != r.LargestFree() {
		t.Fatalf("LargestFree diverged: %d vs %d", p.LargestFree(), r.LargestFree())
	}
	if p.FreeSpans() != r.FreeSpans() {
		t.Fatalf("span count diverged: %d vs %d", p.FreeSpans(), r.FreeSpans())
	}
	if p.Fragmentation() != r.Fragmentation() {
		t.Fatalf("Fragmentation diverged: %v vs %v", p.Fragmentation(), r.Fragmentation())
	}
	if p.MaxAlloc() != r.MaxAlloc() {
		t.Fatalf("MaxAlloc diverged: %d vs %d", p.MaxAlloc(), r.MaxAlloc())
	}
}

// TestPoolMatchesReferenceFirstFit fuzzes randomized alloc/free
// workloads over a spread of pool sizes and allocation regimes,
// including exact-fit-heavy and OOM-heavy mixes.
func TestPoolMatchesReferenceFirstFit(t *testing.T) {
	regimes := []struct {
		name     string
		blocks   int64 // pool capacity in blocks
		maxAlloc int64 // request ceiling in bytes
		freeBias int   // out of 10: how often to free when possible
	}{
		{"small-tight", 32, 16 * BlockSize, 4},
		{"exact-fit", 64, 4 * BlockSize, 5}, // block-multiple sizes: exact fits dominate
		{"mixed", 256, 12*BlockSize + 511, 4},
		{"oom-heavy", 48, 64 * BlockSize, 2},
		{"churny", 1024, 8*BlockSize + 13, 6},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				p := NewPool(reg.blocks*BlockSize, sim.Microsecond)
				r := newRefPool(reg.blocks*BlockSize, sim.Microsecond)
				var live []int64
				for op := 0; op < 400; op++ {
					if len(live) == 0 || rng.Intn(10) >= reg.freeBias {
						n := rng.Int63n(reg.maxAlloc) + 1
						if reg.name == "exact-fit" {
							n = (rng.Int63n(4) + 1) * BlockSize
						}
						var a Allocation
						var err error
						diffStep(t, p, r, func() (Allocation, error, Allocation, error) {
							var ra Allocation
							var re error
							a, err = p.Alloc(n)
							ra, re = r.Alloc(n)
							return a, err, ra, re
						})
						if err == nil {
							live = append(live, a.ID)
						}
					} else {
						k := rng.Intn(len(live))
						id := live[k]
						live = append(live[:k], live[k+1:]...)
						diffStep(t, p, r, func() (Allocation, error, Allocation, error) {
							return Allocation{}, p.Free(id), Allocation{}, r.Free(id)
						})
					}
				}
				// Drain in random order; both must converge to one
				// full-capacity span.
				rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
				for _, id := range live {
					diffStep(t, p, r, func() (Allocation, error, Allocation, error) {
						return Allocation{}, p.Free(id), Allocation{}, r.Free(id)
					})
				}
				if p.LargestFree() != p.Capacity() {
					t.Fatalf("seed %d: drained pool not one span: largest %d, capacity %d",
						seed, p.LargestFree(), p.Capacity())
				}
			}
		})
	}
}

// TestPoolMatchesReferenceErrors pins the divergence-sensitive error
// paths: OOM text (which embeds LargestFree) and unknown-ID frees.
func TestPoolMatchesReferenceErrors(t *testing.T) {
	p := NewPool(8*BlockSize, sim.Microsecond)
	r := newRefPool(8*BlockSize, sim.Microsecond)
	// Fragment both: [busy][free][busy][free]...
	var ids []int64
	for i := 0; i < 4; i++ {
		a, _ := p.Alloc(2 * BlockSize)
		r.Alloc(2 * BlockSize)
		ids = append(ids, a.ID)
	}
	p.Free(ids[1])
	r.Free(ids[1])
	p.Free(ids[3])
	r.Free(ids[3])
	pe := func() error { _, err := p.Alloc(3 * BlockSize); return err }()
	re := func() error { _, err := r.Alloc(3 * BlockSize); return err }()
	if pe == nil || re == nil || pe.Error() != re.Error() {
		t.Fatalf("OOM errors diverged:\n  pool:      %v\n  reference: %v", pe, re)
	}
	if pe2, re2 := p.Free(99), r.Free(99); pe2 == nil || re2 == nil || pe2.Error() != re2.Error() {
		t.Fatalf("unknown-free errors diverged: %v vs %v", pe2, re2)
	}
	assertSameView(t, p, r)
}
