package gpumem

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// benchAllocator is the slice of the pool API the scaling benchmark
// exercises, implemented by both the indexed Pool and the linear-scan
// reference.
type benchAllocator interface {
	Alloc(n int64) (Allocation, error)
	Free(id int64) error
	MaxAlloc() int64
	FreeSpans() int
}

// fragmentTo carves the allocator's address space into exactly spans
// free holes: (spans-1) one-block holes separated by live blocks, plus
// a final two-block hole. Every benchmark op then allocates two blocks,
// which first-fit can only place in the last hole — the linear
// reference walks all spans to find it, the index descends O(log n) —
// and frees it again, restoring the layout. MaxAlloc is sampled too,
// mirroring the step loop's per-convolution workspace sizing.
func fragmentTo(tb testing.TB, p benchAllocator, spans int) {
	holes := make([]int64, 0, spans)
	for i := 0; i < spans-1; i++ {
		if _, err := p.Alloc(BlockSize); err != nil { // separator, stays live
			tb.Fatal(err)
		}
		h, err := p.Alloc(BlockSize)
		if err != nil {
			tb.Fatal(err)
		}
		holes = append(holes, h.ID)
	}
	if _, err := p.Alloc(BlockSize); err != nil {
		tb.Fatal(err)
	}
	h, err := p.Alloc(2 * BlockSize)
	if err != nil {
		tb.Fatal(err)
	}
	holes = append(holes, h.ID)
	for _, id := range holes {
		if err := p.Free(id); err != nil {
			tb.Fatal(err)
		}
	}
	if p.FreeSpans() != spans {
		tb.Fatalf("setup produced %d free spans, want %d", p.FreeSpans(), spans)
	}
}

// BenchmarkPoolScaling measures one MaxAlloc + first-fit alloc/free
// cycle against the number of free spans, for the production index and
// the pre-PR linear scan. The index's per-op cost should stay near
// flat from 64 to 16384 spans while the reference grows linearly.
func BenchmarkPoolScaling(b *testing.B) {
	spanCounts := []int{64, 256, 1024, 4096, 16384}
	impls := []struct {
		name string
		mk   func(capacity int64) benchAllocator
	}{
		{"index", func(c int64) benchAllocator { return NewPool(c, sim.Microsecond) }},
		{"linear-reference", func(c int64) benchAllocator { return newRefPool(c, sim.Microsecond) }},
	}
	for _, impl := range impls {
		for _, spans := range spanCounts {
			// "spans=N", not "spans-N": a trailing -number would be
			// indistinguishable from the GOMAXPROCS suffix that
			// snbench (like benchstat) strips from benchmark names.
			b.Run(fmt.Sprintf("%s/spans=%d", impl.name, spans), func(b *testing.B) {
				p := impl.mk(int64(2*spans+1) * BlockSize)
				fragmentTo(b, p, spans)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if p.MaxAlloc() < 2*BlockSize {
						b.Fatal("layout lost the two-block hole")
					}
					a, err := p.Alloc(2 * BlockSize)
					if err != nil {
						b.Fatal(err)
					}
					if err := p.Free(a.ID); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
