package gpumem

import (
	"fmt"

	"repro/internal/sim"
)

// Native models the CUDA driver allocator (cudaMalloc/cudaFree). It
// never fragments in this model — capacity is the only limit — but
// every call carries the driver latency, and cudaFree additionally
// implies a device synchronization, which the paper identifies as the
// reason Liveness Analysis is unaffordably slow without a pool
// (ResNet-50 spends 36.28% of training time in these calls, §3.2.1).
type Native struct {
	capacity  int64
	allocCost sim.Duration
	freeCost  sim.Duration

	allocd map[int64]int64 // id -> size
	nextID int64
	used   int64
	peak   int64
	stats  Stats
}

// NewNative returns a native-allocator model with the given capacity
// and per-call costs.
func NewNative(capacity int64, allocCost, freeCost sim.Duration) *Native {
	if capacity <= 0 {
		panic("gpumem: native capacity must be positive")
	}
	return &Native{
		capacity:  capacity,
		allocCost: allocCost,
		freeCost:  freeCost,
		allocd:    make(map[int64]int64),
		nextID:    1,
	}
}

// Alloc reserves n bytes (rounded to 256-byte CUDA allocation
// granularity).
func (a *Native) Alloc(n int64) (Allocation, error) {
	if n <= 0 {
		n = 1
	}
	need := (n + 255) / 256 * 256
	if a.used+need > a.capacity {
		a.stats.FailedAllocs++
		return Allocation{}, fmt.Errorf("%w: need %d bytes, free %d",
			ErrOutOfMemory, need, a.capacity-a.used)
	}
	id := a.nextID
	a.nextID++
	a.allocd[id] = need
	a.used += need
	if a.used > a.peak {
		a.peak = a.used
	}
	a.stats.Allocs++
	a.stats.BytesServed += need
	return Allocation{ID: id, Addr: -1, Bytes: need}, nil
}

// Free releases an allocation.
func (a *Native) Free(id int64) error {
	size, ok := a.allocd[id]
	if !ok {
		return fmt.Errorf("gpumem: native free of unknown allocation %d", id)
	}
	delete(a.allocd, id)
	a.used -= size
	a.stats.Frees++
	return nil
}

// AllocCost returns the cudaMalloc latency.
func (a *Native) AllocCost() sim.Duration { return a.allocCost }

// FreeCost returns the cudaFree latency (includes the implicit sync).
func (a *Native) FreeCost() sim.Duration { return a.freeCost }

// Used returns the current reserved bytes.
func (a *Native) Used() int64 { return a.used }

// Peak returns the high-water mark.
func (a *Native) Peak() int64 { return a.peak }

// Capacity returns the device capacity given at construction.
func (a *Native) Capacity() int64 { return a.capacity }

// MaxAlloc returns the largest allocation that can succeed; the native
// model does not fragment, so this is simply the free bytes.
func (a *Native) MaxAlloc() int64 { return a.capacity - a.used }

// ResetPeak restarts peak tracking from the current usage, so callers
// can measure per-phase high-water marks.
func (a *Native) ResetPeak() { a.peak = a.used }

// Fragmentation reports 0: the native model never fragments (capacity
// is its only limit).
func (a *Native) Fragmentation() float64 { return 0 }

// Live returns the number of live allocations.
func (a *Native) Live() int { return len(a.allocd) }

// Stats returns a copy of the activity counters.
func (a *Native) Stats() Stats { return a.stats }
