// Package gpumem implements the memory-management substrate of the
// SuperNeurons runtime (§3.2.1 of the paper):
//
//   - Pool: a fast heap-based allocator over one big preallocated
//     region, carved into 1 KiB blocks, with a first-fit free-space
//     index (an address-ordered AVL tree augmented with subtree max
//     span sizes, giving O(log n) alloc/free and O(1) MaxAlloc), an
//     ID→node table for O(1) deallocation lookup, and free-span
//     coalescing. Pool operations cost ~1 µs of virtual time, which
//     amortizes away the cudaMalloc/cudaFree overhead that costs
//     ResNet-50 36% of its iteration time on the native allocator.
//
//   - Native: a cost model of cudaMalloc/cudaFree (cudaFree
//     synchronizes the device, making it the more expensive call).
//
// Both implement Allocator so the runtime can swap them (Table 2 of the
// paper compares exactly this).
package gpumem

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// BlockSize is the basic storage unit of the pool. The paper divides
// the preallocated region into 1 KB blocks.
const BlockSize int64 = 1024

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("gpumem: out of memory")

// Allocation identifies a live allocation.
type Allocation struct {
	ID    int64 // node ID, key for Free
	Addr  int64 // byte offset within the managed region
	Bytes int64 // rounded-up extent actually reserved
}

// Allocator is the common interface of the pool and the native
// cost-model allocator. Implementations are not safe for concurrent
// use; every simulated device owns its own instance.
type Allocator interface {
	// Alloc reserves n bytes and returns the allocation handle.
	Alloc(n int64) (Allocation, error)
	// Free releases a previous allocation by ID.
	Free(id int64) error
	// AllocCost and FreeCost are the virtual-time prices of one call.
	AllocCost() sim.Duration
	FreeCost() sim.Duration
	// Used is the current reserved footprint; Peak its high-water mark.
	Used() int64
	Peak() int64
	// Capacity is the total manageable size.
	Capacity() int64
	// MaxAlloc is the largest single allocation that can currently
	// succeed (bounded by fragmentation for the pool).
	MaxAlloc() int64
}

type span struct {
	id   int64
	addr int64
	size int64
}

// Stats aggregates allocator activity for reporting.
type Stats struct {
	Allocs       int64
	Frees        int64
	FailedAllocs int64
	BytesServed  int64
}

// Pool is the heap-based preallocated memory pool.
type Pool struct {
	capacity int64
	opCost   sim.Duration

	free   freeIndex // address-ordered, fully coalesced free spans
	allocd map[int64]span
	nextID int64

	used  int64
	peak  int64
	stats Stats
}

// NewPool preallocates a pool of the given capacity (rounded down to a
// whole number of blocks) whose operations cost opCost virtual time.
func NewPool(capacity int64, opCost sim.Duration) *Pool {
	capacity = capacity / BlockSize * BlockSize
	if capacity <= 0 {
		panic("gpumem: pool capacity must be at least one block")
	}
	p := &Pool{
		capacity: capacity,
		opCost:   opCost,
		allocd:   make(map[int64]span),
		nextID:   1,
	}
	p.free.insert(0, capacity)
	return p
}

func roundUp(n int64) int64 {
	if n <= 0 {
		n = 1
	}
	return (n + BlockSize - 1) / BlockSize * BlockSize
}

// Alloc reserves n bytes (rounded up to whole blocks) using first-fit:
// the index returns the lowest-address free span with room, exactly
// what a linear scan of the address-sorted free list would pick, in
// O(log n).
func (p *Pool) Alloc(n int64) (Allocation, error) {
	need := roundUp(n)
	addr, size, ok := p.free.firstFit(need)
	if !ok {
		p.stats.FailedAllocs++
		return Allocation{}, fmt.Errorf("%w: need %d bytes, free %d (largest contiguous %d)",
			ErrOutOfMemory, need, p.capacity-p.used, p.LargestFree())
	}
	a := Allocation{ID: p.nextID, Addr: addr, Bytes: need}
	p.nextID++
	if size == need {
		p.free.remove(addr)
	} else {
		p.free.takeFront(addr, need)
	}
	p.allocd[a.ID] = span{id: a.ID, addr: a.Addr, size: need}
	p.used += need
	if p.used > p.peak {
		p.peak = p.used
	}
	p.stats.Allocs++
	p.stats.BytesServed += need
	return a, nil
}

// Free returns an allocation to the pool, coalescing with its free
// neighbors in O(log n): an adjacent successor is absorbed and removed,
// an adjacent predecessor is grown in place.
func (p *Pool) Free(id int64) error {
	s, ok := p.allocd[id]
	if !ok {
		return fmt.Errorf("gpumem: free of unknown allocation %d", id)
	}
	delete(p.allocd, id)
	p.used -= s.size
	p.stats.Frees++

	start, size := s.addr, s.size
	if na, ns, ok := p.free.nextSpan(start); ok && start+size == na {
		p.free.remove(na)
		size += ns
	}
	if pa, ps, ok := p.free.prevSpan(start); ok && pa+ps == start {
		p.free.grow(pa, size)
	} else {
		p.free.insert(start, size)
	}
	return nil
}

// AllocCost returns the virtual-time price of one pool allocation.
func (p *Pool) AllocCost() sim.Duration { return p.opCost }

// FreeCost returns the virtual-time price of one pool deallocation.
func (p *Pool) FreeCost() sim.Duration { return p.opCost }

// Used returns the currently reserved bytes.
func (p *Pool) Used() int64 { return p.used }

// Peak returns the highest reserved footprint observed.
func (p *Pool) Peak() int64 { return p.peak }

// Capacity returns the pool's total size.
func (p *Pool) Capacity() int64 { return p.capacity }

// FreeBytes returns the total unreserved bytes.
func (p *Pool) FreeBytes() int64 { return p.capacity - p.used }

// MaxAlloc returns the largest single allocation that can currently
// succeed: the largest contiguous free extent.
func (p *Pool) MaxAlloc() int64 { return p.LargestFree() }

// LargestFree returns the largest contiguous free extent; allocations
// larger than this fail even if FreeBytes would suffice. It is an O(1)
// read of the index root's augmentation — the step loop calls it (via
// MaxAlloc) on every convolution step to size the dynamic workspace.
func (p *Pool) LargestFree() int64 { return p.free.largest() }

// FreeSpans returns the number of fragments the free space is split
// into (a fragmentation diagnostic).
func (p *Pool) FreeSpans() int { return p.free.count }

// Fragmentation returns 1 - largest/total free space, in [0,1]. An
// empty or fully-allocated pool reports 0.
func (p *Pool) Fragmentation() float64 {
	free := p.FreeBytes()
	if free == 0 {
		return 0
	}
	return 1 - float64(p.LargestFree())/float64(free)
}

// Live returns the number of live allocations.
func (p *Pool) Live() int { return len(p.allocd) }

// Stats returns a copy of the activity counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetPeak restarts peak tracking from the current usage, so callers
// can measure per-phase high-water marks.
func (p *Pool) ResetPeak() { p.peak = p.used }

// CheckInvariants validates internal consistency; it is exercised by
// property-based tests and returns a descriptive error on violation.
func (p *Pool) CheckInvariants() error {
	if err := p.free.check(); err != nil {
		return err
	}
	var freeBytes int64
	prevEnd := int64(-1) // end of the previous span; -1 = none yet
	if err := p.free.walk(func(addr, size int64) error {
		switch {
		case size <= 0 || addr < 0 || addr+size > p.capacity:
			return fmt.Errorf("free span out of range: [%d,%d)", addr, addr+size)
		case addr%BlockSize != 0 || size%BlockSize != 0:
			return fmt.Errorf("free span not block aligned: [%d,%d)", addr, addr+size)
		case prevEnd > addr:
			return fmt.Errorf("free spans overlap: previous ends at %d, next starts at %d", prevEnd, addr)
		case prevEnd == addr:
			return fmt.Errorf("free spans not coalesced at %d", addr)
		}
		prevEnd = addr + size
		freeBytes += size
		return nil
	}); err != nil {
		return err
	}
	var usedBytes int64
	spans := make([]span, 0, len(p.allocd))
	for id, s := range p.allocd {
		if s.id != id {
			return fmt.Errorf("allocated span id mismatch: %d vs %+v", id, s)
		}
		usedBytes += s.size
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].addr < spans[j].addr })
	for i := 1; i < len(spans); i++ {
		if spans[i-1].addr+spans[i-1].size > spans[i].addr {
			return fmt.Errorf("allocated spans overlap: %+v then %+v", spans[i-1], spans[i])
		}
	}
	if usedBytes != p.used {
		return fmt.Errorf("used accounting drift: sum %d vs counter %d", usedBytes, p.used)
	}
	if freeBytes+usedBytes != p.capacity {
		return fmt.Errorf("free+used = %d, capacity %d", freeBytes+usedBytes, p.capacity)
	}
	return nil
}
