package gpumem

import (
	"errors"
	"math/rand"
	"testing"
)

// Edge cases the free-space index must handle exactly like the linear
// free list: exact-fit removals at the head and tail of the address
// space, three-way coalescing, re-use after a full drain, spans
// touching the capacity boundary, and metric consistency after long
// random churn.

func TestPoolExactFitHead(t *testing.T) {
	p := newTestPool(8 * BlockSize)
	a, _ := p.Alloc(3 * BlockSize) // head [0,3)
	b, _ := p.Alloc(5 * BlockSize) // tail [3,8): pool is full
	if p.MaxAlloc() != 0 {
		t.Fatalf("full pool MaxAlloc = %d", p.MaxAlloc())
	}
	if err := p.Free(a.ID); err != nil {
		t.Fatal(err)
	}
	// Exact fit into the head hole must remove the only span.
	c, err := p.Alloc(3 * BlockSize)
	if err != nil || c.Addr != 0 {
		t.Fatalf("exact head fit: %+v, %v", c, err)
	}
	if p.FreeSpans() != 0 || p.MaxAlloc() != 0 {
		t.Fatalf("spans=%d maxalloc=%d after exact head fit", p.FreeSpans(), p.MaxAlloc())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = b
}

func TestPoolExactFitTail(t *testing.T) {
	p := newTestPool(8 * BlockSize)
	a, _ := p.Alloc(5 * BlockSize) // [0,5)
	b, _ := p.Alloc(3 * BlockSize) // [5,8): capacity-boundary span
	if err := p.Free(b.ID); err != nil {
		t.Fatal(err)
	}
	// The tail hole ends exactly at capacity; an exact fit must land
	// there and empty the index.
	c, err := p.Alloc(3 * BlockSize)
	if err != nil || c.Addr != 5*BlockSize {
		t.Fatalf("exact tail fit: %+v, %v", c, err)
	}
	if c.Addr+c.Bytes != p.Capacity() {
		t.Fatalf("tail allocation [%d,%d) does not end at capacity %d", c.Addr, c.Addr+c.Bytes, p.Capacity())
	}
	if p.FreeSpans() != 0 {
		t.Fatalf("spans=%d after exact tail fit", p.FreeSpans())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = a
}

func TestPoolThreeWayCoalesce(t *testing.T) {
	p := newTestPool(10 * BlockSize)
	edge, _ := p.Alloc(1 * BlockSize) // [0,1) keeps the merge off the head
	a, _ := p.Alloc(2 * BlockSize)    // [1,3)
	b, _ := p.Alloc(2 * BlockSize)    // [3,5)
	c, _ := p.Alloc(2 * BlockSize)    // [5,7)
	d, _ := p.Alloc(3 * BlockSize)    // [7,10) keeps it off the tail
	p.Free(a.ID)
	p.Free(c.ID)
	if p.FreeSpans() != 2 {
		t.Fatalf("spans=%d, want 2 disjoint holes", p.FreeSpans())
	}
	// Freeing b merges predecessor [1,3), b [3,5) and successor [5,7)
	// into one span in a single Free call.
	p.Free(b.ID)
	if p.FreeSpans() != 1 || p.LargestFree() != 6*BlockSize {
		t.Fatalf("three-way coalesce: spans=%d largest=%d, want 1 span of %d",
			p.FreeSpans(), p.LargestFree(), 6*BlockSize)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_, _ = edge, d
}

func TestPoolAllocAfterFullDrain(t *testing.T) {
	p := newTestPool(16 * BlockSize)
	for round := 0; round < 3; round++ {
		var ids []int64
		for {
			a, err := p.Alloc(3 * BlockSize)
			if err != nil {
				break
			}
			ids = append(ids, a.ID)
		}
		// Drain back-to-front on even rounds, front-to-back on odd.
		if round%2 == 1 {
			for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
		for _, id := range ids {
			if err := p.Free(id); err != nil {
				t.Fatal(err)
			}
		}
		// After a full drain the whole capacity must be allocatable as
		// one extent again.
		a, err := p.Alloc(p.Capacity())
		if err != nil {
			t.Fatalf("round %d: full-capacity alloc after drain: %v", round, err)
		}
		if a.Addr != 0 || p.FreeSpans() != 0 {
			t.Fatalf("round %d: full alloc at %d, %d spans left", round, a.Addr, p.FreeSpans())
		}
		if err := p.Free(a.ID); err != nil {
			t.Fatal(err)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolCapacityBoundarySpans(t *testing.T) {
	p := newTestPool(4 * BlockSize)
	// A request one byte over capacity must OOM without disturbing the
	// index; exactly capacity must succeed.
	if _, err := p.Alloc(4*BlockSize + 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-capacity alloc: %v", err)
	}
	a, err := p.Alloc(4 * BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if p.Used() != p.Capacity() || p.LargestFree() != 0 || p.Fragmentation() != 0 {
		t.Fatalf("full pool: used=%d largest=%d frag=%v", p.Used(), p.LargestFree(), p.Fragmentation())
	}
	if _, err := p.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc on full pool: %v", err)
	}
	if err := p.Free(a.ID); err != nil {
		t.Fatal(err)
	}
	if p.LargestFree() != p.Capacity() {
		t.Fatalf("largest=%d after freeing the boundary span", p.LargestFree())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolMetricsAfterLongChurn runs a long random workload and, after
// every operation, cross-checks Fragmentation and LargestFree against
// values recomputed from a full walk of the index.
func TestPoolMetricsAfterLongChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := newTestPool(512 * BlockSize)
	var live []int64
	for op := 0; op < 5000; op++ {
		if len(live) == 0 || rng.Intn(5) < 3 {
			if a, err := p.Alloc(rng.Int63n(6*BlockSize) + 1); err == nil {
				live = append(live, a.ID)
			}
		} else {
			k := rng.Intn(len(live))
			if err := p.Free(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
		var largest, freeBytes int64
		spans := 0
		p.free.walk(func(addr, size int64) error {
			if size > largest {
				largest = size
			}
			freeBytes += size
			spans++
			return nil
		})
		if got := p.LargestFree(); got != largest {
			t.Fatalf("op %d: LargestFree=%d, walk says %d", op, got, largest)
		}
		if got := p.FreeBytes(); got != freeBytes {
			t.Fatalf("op %d: FreeBytes=%d, walk says %d", op, got, freeBytes)
		}
		if got := p.FreeSpans(); got != spans {
			t.Fatalf("op %d: FreeSpans=%d, walk says %d", op, got, spans)
		}
		want := 0.0
		if freeBytes > 0 {
			want = 1 - float64(largest)/float64(freeBytes)
		}
		if got := p.Fragmentation(); got != want {
			t.Fatalf("op %d: Fragmentation=%v, want %v", op, got, want)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
