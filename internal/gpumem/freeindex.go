package gpumem

import "fmt"

// freeIndex is the pool's free-space index: an address-ordered AVL tree
// over the free spans, where every node is augmented with the maximum
// span size in its subtree. The augmentation answers "lowest-address
// span with size ≥ need" (exactly first fit) in O(log n), makes
// LargestFree/MaxAlloc O(1) reads of the root, and keeps
// insert-with-coalesce on Free at O(log n). Placement is byte-identical
// to a linear first-fit scan of the address-sorted free list: both
// return the fitting span with the lowest address.
//
// Removed nodes are recycled through a spare list so steady-state
// alloc/free traffic performs no heap allocations.
type freeIndex struct {
	root  *fnode
	count int
	spare *fnode // recycled nodes, chained through left
}

// fnode is one free span. h is the AVL height; max the largest span
// size in the subtree rooted here.
type fnode struct {
	left, right *fnode
	addr, size  int64
	max         int64
	h           int32
}

func fheight(n *fnode) int32 {
	if n == nil {
		return 0
	}
	return n.h
}

func fmaxsize(n *fnode) int64 {
	if n == nil {
		return 0
	}
	return n.max
}

// refresh recomputes the node's height and max from its children.
func (n *fnode) refresh() {
	n.h = 1 + max(fheight(n.left), fheight(n.right))
	n.max = max(n.size, fmaxsize(n.left), fmaxsize(n.right))
}

func rotateLeft(n *fnode) *fnode {
	r := n.right
	n.right = r.left
	r.left = n
	n.refresh()
	r.refresh()
	return r
}

func rotateRight(n *fnode) *fnode {
	l := n.left
	n.left = l.right
	l.right = n
	n.refresh()
	l.refresh()
	return l
}

// rebalance restores the AVL invariant at n after one child changed
// height by at most one, refreshing augmentations along the way.
func rebalance(n *fnode) *fnode {
	n.refresh()
	switch bf := fheight(n.left) - fheight(n.right); {
	case bf > 1:
		if fheight(n.left.left) < fheight(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if fheight(n.right.right) < fheight(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func (ix *freeIndex) newNode(addr, size int64) *fnode {
	n := ix.spare
	if n != nil {
		ix.spare = n.left
		*n = fnode{}
	} else {
		n = &fnode{}
	}
	n.addr, n.size, n.max, n.h = addr, size, size, 1
	return n
}

func (ix *freeIndex) recycle(n *fnode) {
	*n = fnode{left: ix.spare}
	ix.spare = n
}

// insert adds a span. Spans never overlap, so addr is always new.
func (ix *freeIndex) insert(addr, size int64) {
	ix.root = ix.ins(ix.root, addr, size)
	ix.count++
}

func (ix *freeIndex) ins(n *fnode, addr, size int64) *fnode {
	if n == nil {
		return ix.newNode(addr, size)
	}
	if addr < n.addr {
		n.left = ix.ins(n.left, addr, size)
	} else {
		n.right = ix.ins(n.right, addr, size)
	}
	return rebalance(n)
}

// remove deletes the span at addr, which must exist.
func (ix *freeIndex) remove(addr int64) {
	ix.root = ix.rm(ix.root, addr)
	ix.count--
}

func (ix *freeIndex) rm(n *fnode, addr int64) *fnode {
	if n == nil {
		panic(fmt.Sprintf("gpumem: free index: remove of missing span at %d", addr))
	}
	switch {
	case addr < n.addr:
		n.left = ix.rm(n.left, addr)
	case addr > n.addr:
		n.right = ix.rm(n.right, addr)
	default:
		if n.left == nil {
			r := n.right
			ix.recycle(n)
			return r
		}
		if n.right == nil {
			l := n.left
			ix.recycle(n)
			return l
		}
		// Two children: adopt the in-order successor's span, then
		// delete that successor from the right subtree.
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.addr, n.size = s.addr, s.size
		n.right = ix.rm(n.right, s.addr)
	}
	return rebalance(n)
}

// firstFit returns the lowest-address span with size ≥ need: descend
// left whenever the left subtree holds a big-enough span, take the
// current node next, and only then fall through to the right subtree.
func (ix *freeIndex) firstFit(need int64) (addr, size int64, ok bool) {
	n := ix.root
	if fmaxsize(n) < need {
		return 0, 0, false
	}
	for {
		if fmaxsize(n.left) >= need {
			n = n.left
			continue
		}
		if n.size >= need {
			return n.addr, n.size, true
		}
		n = n.right // the subtree max guarantees a fit further right
	}
}

// adjust applies f to the span at addr (which must exist) and refreshes
// the max augmentation along the search path. The mutation must keep
// the node's address between its in-order neighbors — shrinking a span
// from the front or growing it in place both qualify — so the tree
// shape and heights are untouched.
func (ix *freeIndex) adjust(addr int64, f func(n *fnode)) {
	ix.adj(ix.root, addr, f)
}

func (ix *freeIndex) adj(n *fnode, addr int64, f func(n *fnode)) {
	if n == nil {
		panic(fmt.Sprintf("gpumem: free index: adjust of missing span at %d", addr))
	}
	switch {
	case addr < n.addr:
		ix.adj(n.left, addr, f)
	case addr > n.addr:
		ix.adj(n.right, addr, f)
	default:
		f(n)
	}
	n.max = max(n.size, fmaxsize(n.left), fmaxsize(n.right))
}

// takeFront carves need bytes off the front of the span at addr; the
// span must be strictly larger than need (exact fits use remove).
func (ix *freeIndex) takeFront(addr, need int64) {
	ix.adjust(addr, func(n *fnode) {
		n.addr += need
		n.size -= need
	})
}

// grow extends the span at addr by delta bytes (coalescing a freed
// neighbor into its predecessor without re-keying the tree).
func (ix *freeIndex) grow(addr, delta int64) {
	ix.adjust(addr, func(n *fnode) { n.size += delta })
}

// prevSpan returns the span with the greatest address < addr.
func (ix *freeIndex) prevSpan(addr int64) (a, size int64, ok bool) {
	for n := ix.root; n != nil; {
		if n.addr < addr {
			a, size, ok = n.addr, n.size, true
			n = n.right
		} else {
			n = n.left
		}
	}
	return a, size, ok
}

// nextSpan returns the span with the smallest address > addr.
func (ix *freeIndex) nextSpan(addr int64) (a, size int64, ok bool) {
	for n := ix.root; n != nil; {
		if n.addr > addr {
			a, size, ok = n.addr, n.size, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return a, size, ok
}

// largest returns the size of the biggest free span in O(1).
func (ix *freeIndex) largest() int64 { return fmaxsize(ix.root) }

// walk visits the spans in address order until fn returns an error.
func (ix *freeIndex) walk(fn func(addr, size int64) error) error {
	return walkNode(ix.root, fn)
}

func walkNode(n *fnode, fn func(addr, size int64) error) error {
	if n == nil {
		return nil
	}
	if err := walkNode(n.left, fn); err != nil {
		return err
	}
	if err := fn(n.addr, n.size); err != nil {
		return err
	}
	return walkNode(n.right, fn)
}

// check validates the tree structure itself: BST order by address, AVL
// balance, correct heights and max augmentations, and the node count.
func (ix *freeIndex) check() error {
	n, err := checkNode(ix.root)
	if err != nil {
		return err
	}
	if n != ix.count {
		return fmt.Errorf("free index count drift: %d nodes, counter %d", n, ix.count)
	}
	return nil
}

func checkNode(n *fnode) (int, error) {
	if n == nil {
		return 0, nil
	}
	if n.left != nil && n.left.addr >= n.addr {
		return 0, fmt.Errorf("free index order violation: left %d >= %d", n.left.addr, n.addr)
	}
	if n.right != nil && n.right.addr <= n.addr {
		return 0, fmt.Errorf("free index order violation: right %d <= %d", n.right.addr, n.addr)
	}
	if bf := fheight(n.left) - fheight(n.right); bf < -1 || bf > 1 {
		return 0, fmt.Errorf("free index unbalanced at %d: balance factor %d", n.addr, bf)
	}
	if want := 1 + max(fheight(n.left), fheight(n.right)); n.h != want {
		return 0, fmt.Errorf("free index height drift at %d: %d, want %d", n.addr, n.h, want)
	}
	if want := max(n.size, fmaxsize(n.left), fmaxsize(n.right)); n.max != want {
		return 0, fmt.Errorf("free index max drift at %d: %d, want %d", n.addr, n.max, want)
	}
	nl, err := checkNode(n.left)
	if err != nil {
		return 0, err
	}
	nr, err := checkNode(n.right)
	if err != nil {
		return 0, err
	}
	return nl + nr + 1, nil
}
