package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/layers"
	"repro/internal/metrics"
	"repro/internal/nnet"
	"repro/internal/par"
	"repro/internal/policy"
	"repro/internal/program"
	"repro/internal/recompute"
	"repro/internal/utp"
	"repro/internal/workload"
)

// Fig2 reproduces the memory/speed trade-off of convolution
// workspaces: per network, the training-memory requirement with and
// without workspaces, and the measured speedup of enabling them. The
// memory columns are analytic (Σ l_i^f + Σ l_i^b + persistent state,
// plus the largest single max-speed workspace when enabled, since one
// layer computes at a time); speedups are measured on a memory-rich
// configuration to isolate the workspace effect, as the paper's Fig. 2
// did with networks exceeding 12 GB.
func Fig2() *metrics.Table {
	t := metrics.NewTable(
		"Fig 2: memory (GiB) and speedup with convolution workspaces (TITAN Xp)",
		"network", "batch", "mem", "mem+ws", "speedup")
	nets := []string{"AlexNet", "VGG16", "VGG19", "InceptionV4", "ResNet50", "ResNet101", "ResNet152"}
	type row struct {
		mem, memWS, speedup float64
	}
	rows := par.Map(nets, 0, func(name string) row {
		b := fig2Batch(name)
		p := program.Build(nnet.ByName(name)(b))
		mem := float64(p.BaselineBytes() + p.PersistentBytes)
		var maxWS int64
		for _, nd := range p.Net.Nodes {
			if nd.L.Type == layers.Conv {
				if ws := nd.L.MaxSpeedAlgo().Workspace; ws > maxWS {
					maxWS = ws
				}
			}
		}
		cfg := core.SuperNeurons(hw.TitanXP)
		cfg.PoolBytes = 96 * hw.GiB // isolate the workspace effect from capacity
		fast, err := core.Run(nnet.ByName(name)(b), cfg)
		if err != nil {
			panic(err)
		}
		cfg.DynamicWorkspace = false
		slow, err := core.Run(nnet.ByName(name)(b), cfg)
		if err != nil {
			panic(err)
		}
		return row{mem / gib, (mem + float64(maxWS)) / gib, fast.Throughput / slow.Throughput}
	})
	for i, name := range nets {
		t.Add(name, fmt.Sprint(fig2Batch(name)),
			fmt.Sprintf("%.2f", rows[i].mem), fmt.Sprintf("%.2f", rows[i].memWS),
			fmt.Sprintf("%.2fx", rows[i].speedup))
	}
	return t
}

// Fig8 reproduces the execution-time and memory breakdowns by layer
// type across the seven networks (both passes, analytic over the
// lowered program).
func Fig8() (timeTable, memTable *metrics.Table) {
	nets := []string{"AlexNet", "InceptionV4", "ResNet101", "ResNet152", "ResNet50", "VGG16", "VGG19"}
	types := []layers.Type{layers.Conv, layers.FC, layers.Dropout, layers.Softmax,
		layers.Pool, layers.Act, layers.BN, layers.LRN}
	header := []string{"network"}
	for _, ty := range types {
		header = append(header, ty.String())
	}
	timeTable = metrics.NewTable("Fig 8a: % of compute time by layer type", header...)
	memTable = metrics.NewTable("Fig 8b: % of memory usage by layer type", header...)

	for _, name := range nets {
		b := table2Batch(name)
		p := program.Build(nnet.ByName(name)(b))
		timeBy := make(map[layers.Type]float64)
		memBy := make(map[layers.Type]float64)
		var timeTotal, memTotal float64
		for _, nd := range p.Net.Nodes {
			dt := float64(nd.L.FwdTime(hw.TitanXP, 1) + nd.L.BwdTime(hw.TitanXP, 1))
			timeBy[nd.L.Type] += dt
			timeTotal += dt
			m := float64(p.Out[nd.ID].Bytes())
			if dx := p.DX[nd.ID]; dx != nil {
				m += float64(dx.Bytes())
			}
			memBy[nd.L.Type] += m
			memTotal += m
		}
		trow := []string{name}
		mrow := []string{name}
		for _, ty := range types {
			trow = append(trow, fmt.Sprintf("%.1f", 100*timeBy[ty]/timeTotal))
			mrow = append(mrow, fmt.Sprintf("%.1f", 100*memBy[ty]/memTotal))
		}
		timeTable.Add(trow...)
		memTable.Add(mrow...)
	}
	return timeTable, memTable
}

// Fig10Result bundles one memory-technique case study run.
type Fig10Result struct {
	Name string
	Res  *core.Result
}

// Fig10Runs executes the four stacked configurations of the AlexNet
// b=200 case study: baseline, liveness, +offload/prefetch,
// +cost-aware recomputation.
func Fig10Runs() []Fig10Result {
	d := hw.TeslaK40c
	base := core.Baseline(d)
	live := base
	live.Liveness = true
	off := live
	off.Offload = utp.OffloadConv
	off.Prefetch = true
	rec := off
	rec.Recompute = recompute.CostAware

	out := []Fig10Result{{"baseline", nil}, {"liveness", nil}, {"+offload", nil}, {"+recompute", nil}}
	for i, cfg := range []core.Config{base, live, off, rec} {
		r, err := core.Run(nnet.AlexNet(200), cfg)
		if err != nil {
			panic(err)
		}
		out[i].Res = r
	}
	return out
}

// Fig10 renders the step-wise memory curves and the peak comparison of
// the case study.
func Fig10(runs []Fig10Result) string {
	var b strings.Builder
	series := make([]metrics.Series, 0, len(runs))
	for _, r := range runs {
		s := metrics.Series{Name: r.Name}
		for _, st := range r.Res.Steps {
			s.X = append(s.X, float64(st.Index))
			s.Y = append(s.Y, float64(st.ResidentBytes)/(1<<20))
		}
		series = append(series, s)
	}
	b.WriteString(metrics.Chart("Fig 10: AlexNet b=200 step-wise memory (MiB)", series, 94, 24))

	t := metrics.NewTable("peaks", "configuration", "peak MiB", "at step", "paper MB", "paper step")
	paper := []struct {
		v    float64
		step string
	}{
		{paperFig10.Baseline, "-"},
		{paperFig10.Liveness, paperFig10.LivenessStep},
		{paperFig10.Offload, paperFig10.OffloadStep},
		{paperFig10.Recompute, "lrn1 bwd"},
	}
	for i, r := range runs {
		t.Add(r.Name, metrics.MiB(r.Res.PeakResident),
			r.Res.Steps[r.Res.PeakStep].Label,
			fmt.Sprintf("%.3f", paper[i].v), paper[i].step)
	}
	b.WriteString("\n")
	b.WriteString(t.String())

	// Live tensor counts, the orange curves of the paper's figure.
	counts := make([]metrics.Series, 0, 2)
	for _, i := range []int{0, 1} {
		s := metrics.Series{Name: runs[i].Name}
		for _, st := range runs[i].Res.Steps {
			s.X = append(s.X, float64(st.Index))
			s.Y = append(s.Y, float64(st.LiveTensors))
		}
		counts = append(counts, s)
	}
	b.WriteString("\n")
	b.WriteString(metrics.Chart("live tensor counts (baseline vs liveness)", counts, 94, 12))
	return b.String()
}

// Fig11 reproduces the normalized-speed comparison with and without
// the Tensor Cache. Like the paper's component study it runs on the
// K40c, where computation is slow enough for eager transfers to
// partially hide — the cache's win is avoiding them entirely.
func Fig11() *metrics.Table {
	t := metrics.NewTable(
		"Fig 11: normalized speed without/with Tensor Cache (K40c)",
		"network", "batch", "img/s no cache", "img/s cache", "normalized (no cache)")
	nets := []string{"AlexNet", "VGG16", "InceptionV4", "ResNet50", "ResNet101", "ResNet152"}
	type row struct{ eager, cached float64 }
	rows := par.Map(nets, 0, func(name string) row {
		b := fig11Batch(name)
		cfg := core.SuperNeurons(hw.TeslaK40c)
		cached, err := core.Run(nnet.ByName(name)(b), cfg)
		if err != nil {
			panic(err)
		}
		cfg.TensorCache = false
		eager, err := core.Run(nnet.ByName(name)(b), cfg)
		if err != nil {
			panic(err)
		}
		return row{eager.Throughput, cached.Throughput}
	})
	for i, name := range nets {
		t.Add(name, fmt.Sprint(fig11Batch(name)),
			fmt.Sprintf("%.1f", rows[i].eager), fmt.Sprintf("%.1f", rows[i].cached),
			fmt.Sprintf("%.2f", rows[i].eager/rows[i].cached))
	}
	return t
}

// Fig12 reproduces the dynamic-workspace study: assigned vs max-speed
// workspace per CONV step under different batch sizes and pool sizes,
// with the resulting throughput.
func Fig12() string {
	var b strings.Builder
	cases := []struct {
		batch int
		pool  int64
	}{
		{100, 3 * hw.GiB},
		{300, 3 * hw.GiB},
		{300, 5 * hw.GiB},
	}
	for _, c := range cases {
		cfg := core.SuperNeurons(hw.TeslaK40c)
		cfg.PoolBytes = c.pool
		r, err := core.Run(nnet.AlexNet(c.batch), cfg)
		if err != nil {
			panic(err)
		}
		var labels []string
		var assigned, maxSpeed []float64
		for _, st := range r.Steps {
			if st.MaxSpeedWorkspace == 0 && st.WorkspaceBytes == 0 {
				continue
			}
			labels = append(labels, st.Label)
			assigned = append(assigned, float64(st.WorkspaceBytes)/(1<<20))
			maxSpeed = append(maxSpeed, float64(st.MaxSpeedWorkspace)/(1<<20))
		}
		fmt.Fprintf(&b, "batch=%d pool=%s GiB  ->  %.0f img/s\n", c.batch, metrics.GiB(c.pool), r.Throughput)
		rows := metrics.NewTable("", "conv step", "assigned WS MiB", "max-speed WS MiB")
		for i := range labels {
			rows.Add(labels[i], fmt.Sprintf("%.1f", assigned[i]), fmt.Sprintf("%.1f", maxSpeed[i]))
		}
		b.WriteString(rows.String())
		b.WriteString("\n")
	}
	b.WriteString("paper: 203 img/s under a 3 GB pool vs 240 img/s under 5 GB (Fig 12c/d)\n")
	return b.String()
}

// Fig13 reproduces the memory-cost comparison: Σ l_i^f + Σ l_i^b (plus
// persistent state) at every framework's largest trainable batch from
// Table 5.
func Fig13(table5 map[string]map[string]int) *metrics.Table {
	t := metrics.NewTable(
		"Fig 13: memory cost in GiB at each framework's peak batch",
		"network", "Caffe", "MXNet", "Torch", "TensorFlow", "SuperNeurons", "SN/Caffe")
	nets := []string{"AlexNet", "VGG16", "InceptionV4", "ResNet50", "ResNet101", "ResNet152"}
	fws := []string{"Caffe", "MXNet", "Torch", "TensorFlow", "SuperNeurons"}
	for _, n := range nets {
		row := []string{n}
		var caffe, sn float64
		for _, f := range fws {
			p := program.Build(nnet.ByName(n)(table5[n][f]))
			g := float64(p.BaselineBytes()+p.PersistentBytes) / gib
			if f == "Caffe" {
				caffe = g
			}
			if f == "SuperNeurons" {
				sn = g
			}
			row = append(row, fmt.Sprintf("%.1f", g))
		}
		row = append(row, fmt.Sprintf("%.1fx", sn/caffe))
		t.Add(row...)
	}
	return t
}

// Fig14 reproduces the end-to-end throughput sweeps: img/s vs batch
// for every framework on the TITAN Xp, one chart and one table per
// network. Zero entries mark out-of-memory.
func Fig14() string {
	var b strings.Builder
	nets := []string{"AlexNet", "ResNet50", "VGG16", "ResNet101", "InceptionV4", "ResNet152"}
	for _, name := range nets {
		batches := workload.Fig14Batches[name]
		rows, err := policy.BatchSweep(policy.All, nnet.ByName(name), hw.TitanXP, batches)
		if err != nil {
			panic(err)
		}
		var series []metrics.Series
		t := metrics.NewTable(fmt.Sprintf("Fig 14 (%s): img/s vs batch", name),
			append([]string{"framework"}, intsToStrings(batches)...)...)
		for i, f := range policy.All {
			s := metrics.Series{Name: f.Name}
			row := []string{f.Name}
			for j, batch := range batches {
				if rows[i][j] > 0 {
					s.X = append(s.X, float64(batch))
					s.Y = append(s.Y, rows[i][j])
					row = append(row, fmt.Sprintf("%.0f", rows[i][j]))
				} else {
					row = append(row, "OOM")
				}
			}
			series = append(series, s)
			t.Add(row...)
		}
		b.WriteString(t.String())
		b.WriteString(metrics.Chart("", series, 72, 14))
		b.WriteString("\n")
	}
	return b.String()
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}
