package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestTable1ShapeAndPaperColumns(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 9 { // 3 networks x 3 strategies
		t.Fatalf("rows = %d, want 9", len(tb.Rows))
	}
	// The analytic columns must equal the paper's counts exactly.
	for _, r := range tb.Rows {
		if r[2] != r[3] {
			t.Errorf("%s/%s: analytic %s != paper %s", r[0], r[1], r[2], r[3])
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if !strings.HasSuffix(r[3], "x") {
			t.Errorf("%s: speedup cell %q", r[0], r[3])
		}
		if r[3] < "1" {
			t.Errorf("%s: pool must not be slower than cuda: %q", r[0], r[3])
		}
	}
}

func TestTable3TrafficShape(t *testing.T) {
	tb := Table3()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// No-cache traffic must grow with batch; cache column must be ~0.
	prev := ""
	for _, r := range tb.Rows {
		if prev != "" && r[1] <= prev && len(r[1]) <= len(prev) {
			t.Errorf("no-cache traffic not increasing: %s then %s", prev, r[1])
		}
		prev = r[1]
		if r[2] != "0.00" {
			t.Errorf("batch %s: cache traffic %s, want 0.00", r[0], r[2])
		}
	}
}

func TestFig8Breakdown(t *testing.T) {
	tt, mt := Fig8()
	if len(tt.Rows) != 7 || len(mt.Rows) != 7 {
		t.Fatalf("rows = %d/%d, want 7/7", len(tt.Rows), len(mt.Rows))
	}
	// Fig 8's premise: CONV dominates time on every network.
	for _, r := range tt.Rows {
		conv := r[1]
		for i := 2; i < len(r); i++ {
			if len(r[i]) > len(conv) || (len(r[i]) == len(conv) && r[i] > conv) {
				t.Errorf("%s: %s%% (%s) exceeds CONV %s%%", r[0], tt.Header[i], r[i], conv)
			}
		}
	}
}

func TestFig10Rendering(t *testing.T) {
	runs := Fig10Runs()
	if len(runs) != 4 {
		t.Fatalf("runs = %d", len(runs))
	}
	out := Fig10(runs)
	for _, want := range []string{"baseline", "liveness", "+offload", "+recompute", "1489.355", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10 output missing %q", want)
		}
	}
	// The measured liveness peak equals the paper's number.
	if !strings.Contains(out, "1489.36") && !strings.Contains(out, "1489.35") {
		t.Error("fig10 must report the 1489.355 MiB liveness peak")
	}
}

func TestFig12Rendering(t *testing.T) {
	out := Fig12()
	for _, want := range []string{"batch=100", "batch=300", "conv1 fwd", "conv1 bwd", "img/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig12 output missing %q", want)
		}
	}
}

func TestFig2SpeedupsInBand(t *testing.T) {
	tb := Fig2()
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		var x float64
		if _, err := fmt.Sscanf(r[4], "%fx", &x); err != nil {
			t.Fatalf("%s: bad speedup cell %q", r[0], r[4])
		}
		if x < 1.1 || x > 2.6 {
			t.Errorf("%s: workspace speedup %.2f outside the paper's 1.2-2.5 band", r[0], x)
		}
	}
}

func TestFig11CacheAlwaysWins(t *testing.T) {
	tb := Fig11()
	for _, r := range tb.Rows {
		var norm float64
		if _, err := fmt.Sscanf(r[4], "%f", &norm); err != nil {
			t.Fatalf("bad cell %q", r[4])
		}
		if norm > 1.0 {
			t.Errorf("%s: eager faster than cached (%.2f)", r[0], norm)
		}
		if norm < 0.5 {
			t.Errorf("%s: loss without cache too large (%.2f); paper caps at ~0.67", r[0], norm)
		}
	}
}

func TestTable4OrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search")
	}
	tb := Table4()
	depth := map[string]int{}
	for _, r := range tb.Rows {
		fmt.Sscanf(r[1], "%d", new(int))
		var d int
		fmt.Sscanf(r[1], "%d", &d)
		depth[r[0]] = d
	}
	if !(depth["SuperNeurons"] > depth["TensorFlow"] &&
		depth["TensorFlow"] > depth["MXNet"] &&
		depth["MXNet"] > depth["Torch"] &&
		depth["Torch"] > depth["Caffe"]) {
		t.Errorf("depth ordering broken: %v", depth)
	}
	if depth["SuperNeurons"] < 1920 {
		t.Errorf("SuperNeurons depth %d below the paper's 1920", depth["SuperNeurons"])
	}
}

func TestTable5AndFig13Consistency(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search")
	}
	data := Table5Data()
	for net, row := range data {
		if !(row["SuperNeurons"] >= row["TensorFlow"] &&
			row["TensorFlow"] > row["MXNet"] &&
			row["MXNet"] > row["Torch"] &&
			row["Torch"] >= row["Caffe"]) {
			t.Errorf("%s: batch ordering broken: %v", net, row)
		}
	}
	t5 := Table5(data)
	if len(t5.Rows) != 6 {
		t.Errorf("table5 rows = %d", len(t5.Rows))
	}
	f13 := Fig13(data)
	if len(f13.Rows) != 6 {
		t.Errorf("fig13 rows = %d", len(f13.Rows))
	}
	// SN/Caffe ratio cell must exceed 1x everywhere.
	for _, r := range f13.Rows {
		var x float64
		if _, err := fmt.Sscanf(r[6], "%fx", &x); err != nil || x <= 1 {
			t.Errorf("%s: SN/Caffe = %q", r[0], r[6])
		}
	}
}

func TestFig14SuperNeuronsLeadsOrSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep")
	}
	out := Fig14()
	for _, net := range []string{"AlexNet", "ResNet50", "VGG16", "ResNet101", "InceptionV4", "ResNet152"} {
		if !strings.Contains(out, "Fig 14 ("+net+")") {
			t.Errorf("missing sweep for %s", net)
		}
	}
	if !strings.Contains(out, "SuperNeurons") || !strings.Contains(out, "OOM") {
		t.Error("sweep must include SuperNeurons and OOM markers for weaker policies")
	}
}
