// Package experiments regenerates every table and figure of the
// paper's evaluation (§4) on the simulated substrate and renders them
// side by side with the paper's published numbers. The benchmark
// harness (bench_test.go at the module root) and cmd/sntables both
// drive these functions, so EXPERIMENTS.md is reproducible with one
// command.
package experiments

// Paper-published values, transcribed from the PPoPP'18 text, used for
// the "paper" columns of every reproduction.

// paperTable1 holds (extra recomputations, peak MB) per strategy.
var paperTable1 = map[string]struct {
	SpeedExtra, MemExtra, CAExtra int
	SpeedPeak, MemPeak, CAPeak    float64
}{
	"AlexNet":   {14, 23, 17, 993.018, 886.23, 886.23},
	"ResNet50":  {84, 118, 85, 455.125, 401, 401},
	"ResNet101": {169, 237, 170, 455.125, 401, 401},
}

// paperTable2 holds img/s under cudaMalloc/cudaFree vs the GPU memory
// pool on the K40 (AlexNet batch 128, rest 16).
var paperTable2 = map[string]struct{ CUDA, Pool float64 }{
	"AlexNet":     {359.4, 401.6},
	"VGG16":       {12.1, 14.4},
	"InceptionV4": {6.77, 10.0},
	"ResNet50":    {21.5, 32.9},
	"ResNet101":   {11.3, 18.95},
	"ResNet152":   {7.46, 13.2},
}

// paperTable3 holds communications in GB for AlexNet batch sweeps.
var paperTable3 = struct {
	Batches            []int
	NoCache, WithCache []float64
}{
	Batches:   []int{256, 384, 512, 640, 896, 1024},
	NoCache:   []float64{2.56, 3.72, 4.88, 6.03, 8.35, 9.50},
	WithCache: []float64{0, 0, 0, 0, 0, 0.88},
}

// paperTable4 holds the deepest trainable ResNet per framework (12 GB
// K40, batch 16).
var paperTable4 = map[string]int{
	"Caffe": 148, "MXNet": 480, "Torch": 152, "TensorFlow": 592, "SuperNeurons": 1920,
}

// paperTable5 holds the largest trainable batch per framework per
// network (12 GB K40); 0 marks the paper's N/A entries.
var paperTable5 = map[string]map[string]int{
	"AlexNet":     {"Caffe": 768, "MXNet": 768, "Torch": 1024, "TensorFlow": 1408, "SuperNeurons": 1792},
	"VGG16":       {"Caffe": 48, "MXNet": 64, "Torch": 48, "TensorFlow": 80, "SuperNeurons": 224},
	"InceptionV4": {"Caffe": 16, "MXNet": 0, "Torch": 0, "TensorFlow": 64, "SuperNeurons": 240},
	"ResNet50":    {"Caffe": 24, "MXNet": 80, "Torch": 32, "TensorFlow": 128, "SuperNeurons": 384},
	"ResNet101":   {"Caffe": 16, "MXNet": 48, "Torch": 16, "TensorFlow": 80, "SuperNeurons": 256},
	"ResNet152":   {"Caffe": 16, "MXNet": 32, "Torch": 16, "TensorFlow": 48, "SuperNeurons": 176},
}

// paperFig10 holds the step-wise peaks of the AlexNet b=200 case study.
var paperFig10 = struct {
	Baseline, Liveness, Offload, Recompute float64
	LivenessStep, OffloadStep              string
}{
	Baseline: 2189.437, Liveness: 1489.355, Offload: 1132.155, Recompute: 886.385,
	LivenessStep: "pool5 bwd", OffloadStep: "pool2 bwd",
}

// table2Batch returns the Table 2 batch size convention (AlexNet 128,
// rest 16); Fig 11 uses AlexNet 128 and 32 elsewhere, Fig 2 uses
// AlexNet 200 and 32 elsewhere.
func table2Batch(net string) int {
	if net == "AlexNet" {
		return 128
	}
	return 16
}

func fig2Batch(net string) int {
	if net == "AlexNet" {
		return 200
	}
	return 32
}

func fig11Batch(net string) int {
	if net == "AlexNet" {
		return 128
	}
	return 32
}
