package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/nnet"
	"repro/internal/par"
	"repro/internal/policy"
	"repro/internal/program"
	"repro/internal/recompute"
	"repro/internal/utp"
	"repro/internal/workload"
)

const gib = float64(1 << 30)

// recomputeEvalConfig is the §4.1.1 configuration the recomputation
// study runs under: liveness + UTP offloading + the given strategy,
// eager (no tensor cache) so the memory effects are directly visible.
func recomputeEvalConfig(d hw.DeviceSpec, s recompute.Strategy) core.Config {
	return core.Config{
		Device: d, HostLink: hw.PCIePinned,
		UseMemPool: true, Liveness: true,
		Offload: utp.OffloadConvAndKept, Prefetch: true,
		Recompute: s,
	}
}

// Table1 reproduces the recomputation-strategy comparison: extra
// forward passes and peak memory for the speed-centric,
// memory-centric and cost-aware strategies. The "analytic" columns use
// the paper's closed-form segment accounting (Σs, Σs(s+1)/2) and match
// its Table 1 exactly; the "measured" columns come from executing the
// replays, where cuDNN kernel signatures excuse some reconstructions
// (see EXPERIMENTS.md).
func Table1() *metrics.Table {
	t := metrics.NewTable(
		"Table 1: recomputation strategies (extra forwards / peak MB)",
		"network", "strategy", "analytic", "paper", "measured", "peak MiB", "paper MB")
	cases := []struct {
		name  string
		build func() *nnet.Net
	}{
		{"AlexNet", func() *nnet.Net { return nnet.AlexNet(200) }},
		{"ResNet50", func() *nnet.Net { return nnet.ResNet(50, 16) }},
		{"ResNet101", func() *nnet.Net { return nnet.ResNet(101, 16) }},
	}
	for _, c := range cases {
		ref := paperTable1[c.name]
		pl := recompute.BuildPlan(program.Build(c.build()), recompute.CostAware)
		aSpeed, aMem := pl.AnalyticExtras()
		aCA := pl.AnalyticCostAware()
		for _, s := range []struct {
			strat                recompute.Strategy
			analytic, paperExtra int
			paperPeak            float64
		}{
			{recompute.SpeedCentric, aSpeed, ref.SpeedExtra, ref.SpeedPeak},
			{recompute.MemoryCentric, aMem, ref.MemExtra, ref.MemPeak},
			{recompute.CostAware, aCA, ref.CAExtra, ref.CAPeak},
		} {
			r, err := core.Run(c.build(), recomputeEvalConfig(hw.TeslaK40c, s.strat))
			if err != nil {
				panic(err)
			}
			t.Add(c.name, s.strat.String(),
				fmt.Sprint(s.analytic), fmt.Sprint(s.paperExtra),
				fmt.Sprint(r.ExtraForwards),
				metrics.MiB(r.PeakResident), fmt.Sprintf("%.3f", s.paperPeak))
		}
	}
	return t
}

// Table2 reproduces the GPU-memory-pool speedup over
// cudaMalloc/cudaFree on the K40c.
func Table2() *metrics.Table {
	t := metrics.NewTable(
		"Table 2: img/s with cudaMalloc/cudaFree vs GPU memory pool (K40c)",
		"network", "cuda", "pool", "speedup", "paper cuda", "paper pool", "paper x")
	nets := []string{"AlexNet", "VGG16", "InceptionV4", "ResNet50", "ResNet101", "ResNet152"}
	type row struct{ cuda, pool float64 }
	rows := par.Map(nets, 0, func(name string) row {
		cfg := core.SuperNeurons(hw.TeslaK40c)
		cfg.TensorCache = false // eager UTP: the §4.1.2 pool study setting
		b := table2Batch(name)
		rPool, err := core.Run(nnet.ByName(name)(b), cfg)
		if err != nil {
			panic(err)
		}
		cfg.UseMemPool = false
		rCUDA, err := core.Run(nnet.ByName(name)(b), cfg)
		if err != nil {
			panic(err)
		}
		return row{rCUDA.Throughput, rPool.Throughput}
	})
	for i, name := range nets {
		ref := paperTable2[name]
		t.Add(name,
			fmt.Sprintf("%.1f", rows[i].cuda), fmt.Sprintf("%.1f", rows[i].pool),
			fmt.Sprintf("%.2fx", rows[i].pool/rows[i].cuda),
			fmt.Sprintf("%.1f", ref.CUDA), fmt.Sprintf("%.1f", ref.Pool),
			fmt.Sprintf("%.2fx", ref.Pool/ref.CUDA))
	}
	return t
}

// Table3 reproduces the Tensor Cache communication study: PCIe traffic
// per iteration for AlexNet as the batch grows, with and without the
// cache.
func Table3() *metrics.Table {
	t := metrics.NewTable(
		"Table 3: communications per iteration in GB (AlexNet, K40c)",
		"batch", "no cache", "tensor cache", "paper no cache", "paper cache")
	type row struct{ eager, cached float64 }
	rows := par.Map(paperTable3.Batches, 0, func(b int) row {
		cfg := core.SuperNeurons(hw.TeslaK40c)
		cfg.TensorCache = false
		rEager, err := core.Run(nnet.AlexNet(b), cfg)
		if err != nil {
			panic(err)
		}
		cfg = core.SuperNeurons(hw.TeslaK40c)
		rCache, err := core.Run(nnet.AlexNet(b), cfg)
		if err != nil {
			panic(err)
		}
		return row{float64(rEager.TotalTraffic()) / gib, float64(rCache.TotalTraffic()) / gib}
	})
	for i, b := range paperTable3.Batches {
		t.Add(fmt.Sprint(b),
			fmt.Sprintf("%.2f", rows[i].eager), fmt.Sprintf("%.2f", rows[i].cached),
			fmt.Sprintf("%.2f", paperTable3.NoCache[i]), fmt.Sprintf("%.2f", paperTable3.WithCache[i]))
	}
	return t
}

// Table4 reproduces the going-deeper study: the deepest Table-4 ResNet
// (n1=6, n2=32, n4=6, varying n3) each framework trains at batch 16 on
// 12 GB.
func Table4() *metrics.Table {
	t := metrics.NewTable(
		"Table 4: deepest trainable ResNet (batch 16, 12 GB K40c)",
		"framework", "depth", "n3", "paper depth", "vs paper 2nd-best x")
	type row struct{ n3, depth int }
	rows := par.Map(policy.All, 0, func(f policy.Framework) row {
		n3, depth, err := policy.MaxDepth(f, hw.TeslaK40c, 16, 2600)
		if err != nil {
			panic(fmt.Sprintf("%s: %v", f.Name, err))
		}
		return row{n3, depth}
	})
	for i, f := range policy.All {
		t.Add(f.Name, fmt.Sprint(rows[i].depth), fmt.Sprint(rows[i].n3),
			fmt.Sprint(paperTable4[f.Name]),
			fmt.Sprintf("%.2f", float64(rows[i].depth)/592)) // paper's 2nd best: TensorFlow 592
	}
	return t
}

// Table5Data measures the largest trainable batch for every
// (framework, network) pair; Table5 and Fig13 share it.
func Table5Data() map[string]map[string]int {
	nets := []string{"AlexNet", "VGG16", "InceptionV4", "ResNet50", "ResNet101", "ResNet152"}
	type cell struct {
		net, fw string
		batch   int
	}
	var work []cell
	for _, n := range nets {
		for _, f := range policy.All {
			work = append(work, cell{net: n, fw: f.Name})
		}
	}
	results := par.Map(work, 0, func(c cell) cell {
		f, _ := policy.ByName(c.fw)
		b, err := policy.MaxBatch(f, nnet.ByName(c.net), hw.TeslaK40c, workload.Table5SearchLimit[c.net])
		if err != nil {
			panic(fmt.Sprintf("%s/%s: %v", c.fw, c.net, err))
		}
		c.batch = b
		return c
	})
	out := make(map[string]map[string]int)
	for _, c := range results {
		if out[c.net] == nil {
			out[c.net] = make(map[string]int)
		}
		out[c.net][c.fw] = c.batch
	}
	return out
}

// Table5 reproduces the going-wider study from the given data (use
// Table5Data). Paper N/A entries print as "N/A".
func Table5(data map[string]map[string]int) *metrics.Table {
	t := metrics.NewTable(
		"Table 5: largest trainable batch (12 GB K40c)",
		"network", "Caffe", "MXNet", "Torch", "TensorFlow", "SuperNeurons",
		"paper: Caffe", "MXNet", "Torch", "TF", "SN")
	nets := []string{"AlexNet", "VGG16", "InceptionV4", "ResNet50", "ResNet101", "ResNet152"}
	fw := []string{"Caffe", "MXNet", "Torch", "TensorFlow", "SuperNeurons"}
	napr := func(v int) string {
		if v == 0 {
			return "N/A"
		}
		return fmt.Sprint(v)
	}
	for _, n := range nets {
		row := []string{n}
		for _, f := range fw {
			row = append(row, fmt.Sprint(data[n][f]))
		}
		for _, f := range fw {
			row = append(row, napr(paperTable5[n][f]))
		}
		t.Add(row...)
	}
	return t
}
