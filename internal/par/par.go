// Package par provides small deterministic parallel-execution helpers
// for the capacity searches and benchmark sweeps: results land in
// input order regardless of goroutine scheduling, so every report is
// reproducible.
package par

import (
	"runtime"
	"sync"
)

// For runs fn(i) for i in [0,n) on up to workers goroutines (workers
// <= 0 selects GOMAXPROCS). It returns when all calls finished.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Map applies fn to every item concurrently and returns the results in
// input order.
func Map[T, R any](items []T, workers int, fn func(T) R) []R {
	out := make([]R, len(items))
	For(len(items), workers, func(i int) {
		out[i] = fn(items[i])
	})
	return out
}
