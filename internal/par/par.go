// Package par provides small deterministic parallel-execution helpers
// for the capacity searches and benchmark sweeps: results land in
// input order regardless of goroutine scheduling, so every report is
// reproducible. Failures are deterministic too — a panic inside a
// worker re-raises on the caller's goroutine, and errors surface in
// input order — so a parallel sweep fails exactly like its
// sequential equivalent.
package par

import (
	"runtime"
	"sync"
)

// For runs fn(i) for i in [0,n) on up to workers goroutines (workers
// <= 0 selects GOMAXPROCS). It returns when all calls finished.
//
// A panic inside fn does not crash the process from a worker
// goroutine: it is recovered and re-raised on the caller's goroutine
// after all workers stop. When several calls panic, the one with the
// smallest index wins, matching what a sequential loop would have
// raised first.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		mu       sync.Mutex
		panicked bool
		panicIdx int
		panicVal any
	)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if !panicked || i < panicIdx {
					panicked, panicIdx, panicVal = true, i, r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	if workers == 1 {
		// Same contract as the parallel path: every call runs, the
		// first panic re-raises afterwards.
		for i := 0; i < n; i++ {
			call(i)
		}
		if panicked {
			panic(panicVal)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				call(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

// Map applies fn to every item concurrently and returns the results in
// input order.
func Map[T, R any](items []T, workers int, fn func(T) R) []R {
	out := make([]R, len(items))
	For(len(items), workers, func(i int) {
		out[i] = fn(items[i])
	})
	return out
}

// MapErr applies fn to every item concurrently. All calls run to
// completion; the returned error is the first failure in input order
// (not completion order), so retries and error reports are
// reproducible.
func MapErr[T, R any](items []T, workers int, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	For(len(items), workers, func(i int) {
		out[i], errs[i] = fn(items[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
