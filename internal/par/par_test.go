package par

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForRunsAll(t *testing.T) {
	var count int64
	For(100, 8, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	For(0, 4, func(i int) { t.Fatal("must not run") })
	For(5, 0, func(i int) { atomic.AddInt64(&count, 1) }) // default workers
	if count != 105 {
		t.Fatalf("count = %d", count)
	}
}

func TestForSingleWorkerIsSequential(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := []int{5, 3, 8, 1, 9, 2}
	out := Map(in, 4, func(x int) int { return x * x })
	for i, v := range out {
		if v != in[i]*in[i] {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := func() (r any) {
			defer func() { r = recover() }()
			For(20, workers, func(i int) {
				if i >= 10 {
					panic(i)
				}
			})
			return nil
		}()
		if got == nil {
			t.Fatalf("workers=%d: panic not propagated", workers)
		}
	}
}

func TestForPanicPicksSmallestIndex(t *testing.T) {
	// Every call panics; the re-raised value must be the smallest
	// index, like a sequential loop, regardless of worker count.
	for _, workers := range []int{2, 8} {
		got := func() (r any) {
			defer func() { r = recover() }()
			For(50, workers, func(i int) { panic(i) })
			return nil
		}()
		if got != 0 {
			t.Errorf("workers=%d: recovered %v, want 0", workers, got)
		}
	}
}

func TestForRunsAllDespitePanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var count int64
		func() {
			defer func() { recover() }()
			For(30, workers, func(i int) {
				atomic.AddInt64(&count, 1)
				if i == 3 {
					panic("boom")
				}
			})
		}()
		if count != 30 {
			t.Errorf("workers=%d: ran %d of 30 calls; a panic must not strand queued work", workers, count)
		}
	}
}

func TestMapErrFirstErrorByInputOrder(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 3, 8} {
		_, err := MapErr(items, workers, func(x int) (int, error) {
			if x%2 == 1 {
				return 0, fmt.Errorf("odd %d", x)
			}
			return x * 10, nil
		})
		if err == nil || err.Error() != "odd 1" {
			t.Errorf("workers=%d: err = %v, want odd 1 (first in input order)", workers, err)
		}
	}
	out, err := MapErr(items, 4, func(x int) (int, error) { return x + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != items[i]+1 {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicProperty(t *testing.T) {
	f := func(xs []int8) bool {
		a := Map(xs, 3, func(x int8) int { return int(x) + 1 })
		b := Map(xs, 7, func(x int8) int { return int(x) + 1 })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
