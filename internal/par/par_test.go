package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForRunsAll(t *testing.T) {
	var count int64
	For(100, 8, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	For(0, 4, func(i int) { t.Fatal("must not run") })
	For(5, 0, func(i int) { atomic.AddInt64(&count, 1) }) // default workers
	if count != 105 {
		t.Fatalf("count = %d", count)
	}
}

func TestForSingleWorkerIsSequential(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := []int{5, 3, 8, 1, 9, 2}
	out := Map(in, 4, func(x int) int { return x * x })
	for i, v := range out {
		if v != in[i]*in[i] {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicProperty(t *testing.T) {
	f := func(xs []int8) bool {
		a := Map(xs, 3, func(x int8) int { return int(x) + 1 })
		b := Map(xs, 7, func(x int8) int { return int(x) + 1 })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
