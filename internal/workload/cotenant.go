package workload

// The bundled co-tenancy trace: the cross-job memory-planning
// evaluation workload. Like the gang trace, everything here is pure
// arithmetic over a fixed seed — the trace is a constant, and the
// determinism gate replays it twice and compares byte for byte.

// CoTenantClusterDevices is the cluster size CoTenantTrace targets:
// two devices, so co-residency pressure — not placement choice — is
// what the trace exercises.
const CoTenantClusterDevices = 2

// coShape is one distinct job shape of the co-tenant trace. The shapes
// are chosen so dry-run peaks sit between 55% and 65% of a Tesla K40c
// while persistent floors stay a few percent: under isolated
// (sum-of-peaks) admission at most one big job fits a device, while an
// interference-aware planner — which charges the worst case over the
// running tenant plus the parked floors — co-locates several. The
// dynamic shapes spike to their worst case only every few iterations,
// so co-tenant peaks interleave rather than coincide.
type coShape struct {
	network  string
	batch    int
	schedule string // compact batch-schedule syntax, "" for static
	manager  string
}

var coShapes = []coShape{
	{"AlexNet", 512, "", "naive"},
	{"ResNet50", 32, "", "naive"},
	{"VGG16", 32, "", "caffe"},
	{"AlexNet", 512, "128x2,512", "naive"},
	{"AlexNet", 512, "64,512,128", "superneurons"},
	{"ResNet50", 32, "8x3,32", "naive"},
	{"AlexNet", 256, "", "naive"},
	{"AlexNet", 256, "128,256x2", "vdnn"},
}

// CoTenantTrace generates the bundled 48-job co-tenancy trace for a
// CoTenantClusterDevices-device cluster: a mix of static jobs and
// dynamic-batch jobs whose worst-case peaks interleave. Arrivals come
// in tight waves so several big jobs always contend for the same
// device, which is exactly where isolated admission serializes and
// cross-job planning stacks.
func CoTenantTrace() []TraceJob {
	seed := uint64(0xc0_7e9a97) ^ 0x9e3779b97f4a7c15
	jobs := make([]TraceJob, 0, 48)
	for i := 0; i < 48; i++ {
		r := xorshift64(&seed)
		shape := coShapes[r%uint64(len(coShapes))]
		tj := TraceJob{
			ID:         coJobID(i),
			ArrivalMS:  int64(i/8)*1500 + int64((r>>16)%500),
			Network:    shape.network,
			Batch:      shape.batch,
			Manager:    shape.manager,
			Priority:   int((r >> 32) % 10),
			Iterations: 2 + int((r>>40)%4),
		}
		if shape.schedule != "" {
			sched, err := ParseSchedule(shape.schedule)
			if err != nil {
				panic("workload: bad built-in co-tenant schedule: " + err.Error())
			}
			tj.Batch = sched.Max()
			tj.BatchSchedule = sched
		}
		jobs = append(jobs, tj)
	}
	return jobs
}

// coJobID names co-tenant-trace jobs c00..c47.
func coJobID(i int) string {
	return "c" + string([]byte{'0' + byte(i/10%10), '0' + byte(i%10)})
}
