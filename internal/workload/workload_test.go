package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/nnet"
)

func TestInputShapesMatchBuilders(t *testing.T) {
	for _, e := range nnet.Registry {
		s, err := InputShape(e.Name, 4)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		net := e.Build(4)
		if net.Input.L.Out != s {
			t.Errorf("%s: workload shape %v != builder shape %v", e.Name, s, net.Input.L.Out)
		}
	}
	if _, err := InputShape("nope", 1); err == nil {
		t.Error("unknown network must error")
	}
}

func TestFig14SweepsAreSortedAndCovered(t *testing.T) {
	for name, batches := range Fig14Batches {
		if nnet.ByName(name) == nil {
			t.Errorf("sweep for unknown network %q", name)
		}
		for i := 1; i < len(batches); i++ {
			if batches[i] <= batches[i-1] {
				t.Errorf("%s: batches not increasing: %v", name, batches)
			}
		}
	}
	for name := range Table5SearchLimit {
		if nnet.ByName(name) == nil {
			t.Errorf("search limit for unknown network %q", name)
		}
	}
}

func TestSourceDeterminism(t *testing.T) {
	s1, err := NewSource("AlexNet", 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSource("AlexNet", 2, 42)
	for i := 0; i < 3; i++ {
		b1, b2 := s1.Next(), s2.Next()
		if b1 != b2 {
			t.Fatalf("batch %d differs: %+v vs %+v", i, b1, b2)
		}
		if b1.Index != i {
			t.Errorf("batch index = %d, want %d", b1.Index, i)
		}
	}
	s3, _ := NewSource("AlexNet", 2, 43)
	if s3.Next().Seed == func() uint64 { s, _ := NewSource("AlexNet", 2, 42); return s.Next().Seed }() {
		t.Error("different seeds must yield different batches")
	}
}

func TestPixels(t *testing.T) {
	src, _ := NewSource("AlexNet", 1, 7)
	b := src.Next()
	dst := make([]float32, b.Shape.Elems())
	if err := b.Pixels(dst); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range dst {
		if v < 0 || v >= 1 {
			t.Fatalf("pixel %v out of [0,1)", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(len(dst))
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("pixel mean = %.3f, want ~0.5", mean)
	}
	if err := b.Pixels(make([]float32, 3)); err == nil {
		t.Error("wrong-size dst must error")
	}
}

func TestSplitmixAvalancheProperty(t *testing.T) {
	f := func(x uint64) bool { return splitmix(x) != splitmix(x+1) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
