package workload

import (
	"reflect"
	"strings"
	"testing"
)

// The bundled traces survive parse -> format -> parse unchanged, and
// the formatted text is a fixed point (format(parse(format)) is
// byte-identical) — the property the serving layer's request-log
// replay rests on.
func TestTraceRoundTrips(t *testing.T) {
	for _, c := range []struct {
		name string
		jobs []TraceJob
	}{
		{"static", DefaultTrace()},
		{"dynamic", DefaultDynamicTrace()},
	} {
		t.Run(c.name, func(t *testing.T) {
			text := FormatTrace(c.jobs)
			parsed, err := ParseTrace(strings.NewReader(text))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(parsed, c.jobs) {
				t.Errorf("parse(format(jobs)) != jobs:\n%v\nvs\n%v", parsed, c.jobs)
			}
			again := FormatTrace(parsed)
			if again != text {
				t.Errorf("format(parse(text)) differs from text:\n--- first\n%s\n--- second\n%s", text, again)
			}
		})
	}
}

// FormatJob lines after TraceHeader accumulate to exactly FormatTrace.
func TestFormatJobMatchesFormatTrace(t *testing.T) {
	jobs := DefaultDynamicTrace()
	var b strings.Builder
	b.WriteString(TraceHeader)
	for _, j := range jobs {
		b.WriteString(FormatJob(j))
	}
	if b.String() != FormatTrace(jobs) {
		t.Error("incremental FormatJob output differs from FormatTrace")
	}
}

// A one-entry batch schedule collapses to a plain batch on the round
// trip: "16x1" has no distinct dynamic meaning.
func TestSingleEntryScheduleNormalizes(t *testing.T) {
	in := "solo 0 AlexNet 16x1 - 1 2\n"
	parsed, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if parsed[0].Batch != 16 || parsed[0].BatchSchedule != nil {
		t.Errorf("16x1 parsed as %+v, want plain batch 16", parsed[0])
	}
	if got := FormatJob(parsed[0]); got != "solo 0 AlexNet 16 - 1 2\n" {
		t.Errorf("formatted as %q", got)
	}
}

func TestParseTraceRejectsDuplicateIDs(t *testing.T) {
	in := "a 0 AlexNet 16 - 1 1\nb 1 AlexNet 16 - 1 1\na 2 AlexNet 32 - 1 1\n"
	_, err := ParseTrace(strings.NewReader(in))
	if err == nil {
		t.Fatal("duplicate job ids accepted")
	}
	for _, want := range []string{"line 3", "line 1", "duplicate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// Shard directives namespace the ids of the section they open, so the
// same job name appearing under two shards — or a shard-prefixed name
// colliding with a plain one — parses under the per-merged-log
// duplicate rule: uniqueness of the final, prefixed ids.
func TestParseTraceShardSections(t *testing.T) {
	cases := []struct {
		name string
		in   string
		ids  []string // nil: expect an error
	}{
		{
			name: "same id under two shards",
			in:   "# shard 0\nt/a 0 AlexNet 16 - 1 1\n# shard 1\nt/a 1 AlexNet 16 - 1 1\n",
			ids:  []string{"s0/t/a", "s1/t/a"},
		},
		{
			name: "directive interleaves plain comments",
			in:   "# any comment\n# shard 2\n# another\nx 0 AlexNet 16 - 1 1\n",
			ids:  []string{"s2/x"},
		},
		{
			name: "duplicate within one shard still rejected",
			in:   "# shard 0\na 0 AlexNet 16 - 1 1\na 1 AlexNet 16 - 1 1\n",
		},
		{
			name: "prefixed id colliding with explicit one rejected",
			in:   "s1/a 0 AlexNet 16 - 1 1\n# shard 1\na 1 AlexNet 16 - 1 1\n",
		},
		{
			name: "bad shard number",
			in:   "# shard -3\na 0 AlexNet 16 - 1 1\n",
		},
		{
			name: "reopening a shard keeps its prefix",
			in:   "# shard 0\na 0 AlexNet 16 - 1 1\n# shard 1\nb 1 AlexNet 16 - 1 1\n# shard 0\nc 2 AlexNet 16 - 1 1\n",
			ids:  []string{"s0/a", "s1/b", "s0/c"},
		},
	}
	for _, tc := range cases {
		jobs, err := ParseTrace(strings.NewReader(tc.in))
		if tc.ids == nil {
			if err == nil {
				t.Errorf("%s: parse accepted bad trace", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		got := make([]string, len(jobs))
		for i, j := range jobs {
			got[i] = j.ID
		}
		if len(got) != len(tc.ids) {
			t.Errorf("%s: ids %v, want %v", tc.name, got, tc.ids)
			continue
		}
		for i := range got {
			if got[i] != tc.ids[i] {
				t.Errorf("%s: ids %v, want %v", tc.name, got, tc.ids)
				break
			}
		}
	}
}

// Long comment lines (up to the 1 MiB scanner buffer) must not kill
// the parse: request logs carry human annotations.
func TestParseTraceLongCommentLine(t *testing.T) {
	in := "# " + strings.Repeat("x", 200*1024) + "\na 0 AlexNet 16 - 1 1\n"
	jobs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "a" {
		t.Errorf("jobs = %+v", jobs)
	}
}

// An over-long line fails with the line context rather than silently
// truncating.
func TestParseTraceOverlongLineNamesLine(t *testing.T) {
	in := "a 0 AlexNet 16 - 1 1\n# " + strings.Repeat("x", 2*1024*1024) + "\n"
	_, err := ParseTrace(strings.NewReader(in))
	if err == nil {
		t.Fatal("2 MiB line accepted")
	}
	if !strings.Contains(err.Error(), "after line 1") {
		t.Errorf("error %q lacks line context", err)
	}
}

// The bundled traces themselves are well-formed: unique ids, known
// managers, positive iterations.
func TestBundledTracesWellFormed(t *testing.T) {
	for _, jobs := range [][]TraceJob{DefaultTrace(), DefaultDynamicTrace()} {
		ids := map[string]bool{}
		for _, j := range jobs {
			if ids[j.ID] {
				t.Errorf("duplicate id %q in bundled trace", j.ID)
			}
			ids[j.ID] = true
			if j.Iterations <= 0 || j.Batch <= 0 {
				t.Errorf("job %q has non-positive batch/iterations: %+v", j.ID, j)
			}
			if len(j.BatchSchedule) > 0 && j.Batch != Schedule(j.BatchSchedule).Max() {
				t.Errorf("job %q: Batch %d != schedule max %d", j.ID, j.Batch, Schedule(j.BatchSchedule).Max())
			}
		}
	}
}
