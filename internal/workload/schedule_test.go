package workload

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestRamp(t *testing.T) {
	got := Ramp(16, 48, 3)
	want := Schedule{16, 32, 48}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ramp(16,48,3) = %v, want %v", got, want)
	}
	if r := Ramp(8, 64, 1); !reflect.DeepEqual(r, Schedule{64}) {
		t.Errorf("degenerate ramp = %v, want [64]", r)
	}
}

func TestBuckets(t *testing.T) {
	got := Buckets(2, 64, 128)
	want := Schedule{64, 64, 128, 128}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Buckets(2,64,128) = %v, want %v", got, want)
	}
}

func TestScheduleAccessors(t *testing.T) {
	s := Schedule{16, 48, 16, 32}
	if s.Max() != 48 {
		t.Errorf("Max = %d, want 48", s.Max())
	}
	if got := s.Distinct(); !reflect.DeepEqual(got, []int{16, 32, 48}) {
		t.Errorf("Distinct = %v, want [16 32 48]", got)
	}
	for i, want := range []int{16, 48, 16, 32, 16, 48} {
		if got := s.At(i); got != want {
			t.Errorf("At(%d) = %d, want %d (cycling)", i, got, want)
		}
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Schedule
		out  string // canonical rendering
	}{
		{"64", Schedule{64}, "64"},
		{"16x2,32,64x3", Schedule{16, 16, 32, 64, 64, 64}, "16x2,32,64x3"},
		{"128,256,384,512", Schedule{128, 256, 384, 512}, "128,256,384,512"},
	}
	for _, c := range cases {
		got, err := ParseSchedule(c.in)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSchedule(%q) = %v, want %v", c.in, got, c.want)
		}
		if got.String() != c.out {
			t.Errorf("(%v).String() = %q, want %q", got, got.String(), c.out)
		}
		back, err := ParseSchedule(got.String())
		if err != nil || !reflect.DeepEqual(back, got) {
			t.Errorf("round trip of %q failed: %v %v", c.in, back, err)
		}
	}
	for _, bad := range []string{"", "0", "-4", "16x0", "16x-1", "a", "16,,32", "16xx2",
		"1x2000000000", "1x1000000,2x1000000"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
	// The expansion cap is a ceiling, not a smaller de-facto limit.
	if got, err := ParseSchedule(fmt.Sprintf("1x%d", MaxScheduleLen)); err != nil || len(got) != MaxScheduleLen {
		t.Errorf("schedule at the cap rejected: %d entries, %v", len(got), err)
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{}).Validate(); err == nil {
		t.Error("empty schedule accepted")
	}
	if err := (Schedule{16, 0}).Validate(); err == nil {
		t.Error("zero batch accepted")
	}
	if err := (Schedule{16, 32}).Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestBundledDynamicSchedules(t *testing.T) {
	names := DynamicScheduleNames()
	if len(names) == 0 {
		t.Fatal("no bundled dynamic schedules")
	}
	for _, n := range names {
		if err := DynamicSchedules[n].Validate(); err != nil {
			t.Errorf("bundled schedule %q invalid: %v", n, err)
		}
	}
}

// Dynamic trace lines round-trip through the batch-field schedule
// syntax.
func TestTraceScheduleRoundTrip(t *testing.T) {
	jobs := DefaultDynamicTrace()
	parsed, err := ParseTrace(strings.NewReader(FormatTrace(jobs)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, jobs) {
		t.Errorf("dynamic trace did not round-trip:\n%+v\n%+v", parsed, jobs)
	}
}
