package workload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("a 0 AlexNet 16 - 0 1\n"),
		{},
		[]byte("# idem k-1 t/a\n"),
		bytes.Repeat([]byte{0xA5}, 4096),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		var got []byte
		var err error
		got, rest, err = ReadFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload %q, want %q", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the last frame", len(rest))
	}
}

func TestFrameSize(t *testing.T) {
	p := []byte("hello")
	if got := len(AppendFrame(nil, p)); got != FrameSize(len(p)) {
		t.Fatalf("encoded %d bytes, FrameSize says %d", got, FrameSize(len(p)))
	}
}

// Every strict prefix of a valid frame stream must fail with
// ErrFrameTruncated at the frame holding the cut — the torn-tail
// signature recovery keys on.
func TestFrameTruncationAtEveryByte(t *testing.T) {
	full := AppendFrame(nil, []byte("first record\n"))
	full = AppendFrame(full, []byte("second record\n"))
	first := FrameSize(len("first record\n"))
	for cut := 0; cut < len(full); cut++ {
		b := full[:cut]
		if cut >= first {
			var err error
			if _, b, err = ReadFrame(b); err != nil {
				t.Fatalf("cut %d: first frame unreadable: %v", cut, err)
			}
		}
		if cut == len(full) {
			continue
		}
		if _, _, err := ReadFrame(b); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut %d: err %v, want ErrFrameTruncated", cut, err)
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	good := AppendFrame(nil, []byte("payload under test\n"))

	t.Run("payload bit flip", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[10] ^= 0x40
		if _, _, err := ReadFrame(b); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("err %v, want ErrFrameCorrupt", err)
		}
	})
	t.Run("crc bit flip", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[5] ^= 0x01
		if _, _, err := ReadFrame(b); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("err %v, want ErrFrameCorrupt", err)
		}
	})
	t.Run("oversize length", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.BigEndian.PutUint32(b[0:4], MaxFramePayload+1)
		if _, _, err := ReadFrame(b); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("err %v, want ErrFrameCorrupt", err)
		}
	})
	t.Run("length shrunk", func(t *testing.T) {
		// A shorter declared length re-frames the payload tail as the
		// next header; the CRC of the shortened payload cannot match.
		b := append([]byte(nil), good...)
		binary.BigEndian.PutUint32(b[0:4], 3)
		if _, _, err := ReadFrame(b); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("err %v, want ErrFrameCorrupt", err)
		}
	})
	t.Run("empty buffer", func(t *testing.T) {
		if _, _, err := ReadFrame(nil); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("err %v, want ErrFrameTruncated", err)
		}
	})
}

func TestAppendFrameOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversize payload did not panic at the write site")
		}
	}()
	AppendFrame(nil, make([]byte, MaxFramePayload+1))
}
