package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// TraceFault is one scripted device-fault event in a trace: a device
// failing or recovering at a virtual instant. Times are milliseconds,
// like arrivals, so fault scripts stay human-editable.
type TraceFault struct {
	AtMS   int64
	Device int
	// Recover returns a failed device to service; false is a failure.
	Recover bool
}

// parseFault parses one "fault fail|recover dev=N at=T" line.
func parseFault(line int, f []string) (TraceFault, error) {
	var tf TraceFault
	if len(f) != 4 {
		return tf, fmt.Errorf("workload: trace line %d: want \"fault fail|recover dev=N at=T\", got %d fields", line, len(f))
	}
	switch f[1] {
	case "fail":
	case "recover":
		tf.Recover = true
	default:
		return tf, fmt.Errorf("workload: trace line %d: bad fault kind %q (want fail or recover)", line, f[1])
	}
	v, ok := strings.CutPrefix(f[2], "dev=")
	if !ok {
		return tf, fmt.Errorf("workload: trace line %d: want dev=N, got %q", line, f[2])
	}
	var err error
	if tf.Device, err = strconv.Atoi(v); err != nil || tf.Device < 0 {
		return tf, fmt.Errorf("workload: trace line %d: bad fault device %q", line, f[2])
	}
	v, ok = strings.CutPrefix(f[3], "at=")
	if !ok {
		return tf, fmt.Errorf("workload: trace line %d: want at=T, got %q", line, f[3])
	}
	if tf.AtMS, err = parseMS(v); err != nil {
		return tf, fmt.Errorf("workload: trace line %d: bad fault time %q", line, f[3])
	}
	return tf, nil
}

// parseMS parses a trace time field: a bare integer is milliseconds,
// and the "ms" and "s" suffixes are accepted ("2000", "2000ms" and
// "2s" are the same instant). Negative times are rejected.
func parseMS(s string) (int64, error) {
	mult := int64(1)
	if v, ok := strings.CutSuffix(s, "ms"); ok {
		s = v
	} else if v, ok := strings.CutSuffix(s, "s"); ok {
		s = v
		mult = 1000
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("time %q out of range", s)
	}
	return n * mult, nil
}

// FaultHeader is the comment line FormatTraceEvents emits before the
// fault events.
const FaultHeader = "# fault fail|recover dev=N at=T\n"

// FormatFault renders one fault event as a ParseTraceEvents line (with
// trailing newline), in the canonical millisecond form.
func FormatFault(f TraceFault) string {
	kind := "fail"
	if f.Recover {
		kind = "recover"
	}
	return fmt.Sprintf("fault %s dev=%d at=%dms\n", kind, f.Device, f.AtMS)
}

// FormatTraceEvents renders jobs then fault events in the
// ParseTraceEvents format, with header comments; it is FormatTrace
// when there are no faults, so fault-free traces keep their historical
// bytes. Reparsing the output yields the same jobs and faults.
func FormatTraceEvents(jobs []TraceJob, faults []TraceFault) string {
	var b strings.Builder
	b.WriteString(FormatTrace(jobs))
	if len(faults) > 0 {
		b.WriteString(FaultHeader)
		for _, f := range faults {
			b.WriteString(FormatFault(f))
		}
	}
	return b.String()
}

// FaultClusterDevices is the cluster size FaultTrace targets: one
// DefaultTopology node — two 4-device NVLink islands.
const FaultClusterDevices = 8

// FaultTrace is the bundled failure-scenario trace: a long 4-wide gang
// (highest priority, first arrival, so every policy places it on the
// first NVLink island) plus device-sized singles that land on the
// second island, under three scripted faults. Device 4 fails
// permanently mid-flight — its resident re-queues from its checkpoint
// and finishes elsewhere. Device 2 fails while the gang is mid-
// iteration — the gang shrinks elastically to its three survivors,
// losing only the in-flight iteration — and later recovers, returning
// the device to placement. No job is lost: every victim resumes from
// its last iteration-boundary checkpoint and completes.
func FaultTrace() ([]TraceJob, []TraceFault) {
	jobs := []TraceJob{
		// ResNet50 b48 naive ≈87% of a K40c: the gang's island stays
		// exclusive — nothing in the zoo fits the 13% gap — so its
		// iteration boundaries are regular and t=2s lands mid-iteration.
		{ID: "gang-resnet", ArrivalMS: 0, Network: "ResNet50", Batch: 48, Manager: "naive", Priority: 9, Iterations: 20, GPUs: 4},
		{ID: "solo-alex", ArrivalMS: 100, Network: "AlexNet", Batch: 512, Manager: "naive", Priority: 5, Iterations: 12},
		{ID: "solo-vgg", ArrivalMS: 200, Network: "VGG16", Batch: 32, Manager: "caffe", Priority: 4, Iterations: 10},
		{ID: "solo-sn", ArrivalMS: 300, Network: "AlexNet", Batch: 512, Manager: "superneurons", Priority: 3, Iterations: 16},
		{ID: "solo-vdnn", ArrivalMS: 400, Network: "ResNet50", Batch: 32, Manager: "vdnn", Priority: 3, Iterations: 10},
		// Arrives after device 2 recovers, so the returned device is
		// the only one with room — recovery visibly re-enters placement.
		{ID: "late-alex", ArrivalMS: 4500, Network: "AlexNet", Batch: 512, Manager: "naive", Priority: 6, Iterations: 8},
	}
	faults := []TraceFault{
		{AtMS: 1500, Device: 4},
		{AtMS: 2000, Device: 2},
		{AtMS: 4000, Device: 2, Recover: true},
	}
	return jobs, faults
}
