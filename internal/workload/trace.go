package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TraceJob is one line of a multi-tenant workload trace: a training
// job submitted to the shared cluster. Times are in milliseconds so
// traces stay human-editable; the scheduler converts to virtual time.
type TraceJob struct {
	ID        string
	ArrivalMS int64
	Network   string
	// Batch is the worst-case batch: the static batch size, or the
	// largest entry of BatchSchedule for a dynamic job.
	Batch int
	// BatchSchedule, when non-nil, declares a per-iteration batch
	// schedule (a dynamic-shape job); nil means every iteration runs
	// at Batch.
	BatchSchedule Schedule
	Manager       string
	Priority      int
	Iterations    int
	// GPUs is the gang size: the number of devices the job occupies
	// simultaneously as a synchronous data-parallel gang. 0 and 1 both
	// mean a single device.
	GPUs int
}

// ParseTrace reads a whitespace-separated trace: one job per line as
//
//	id arrival_ms network batch manager priority iterations
//
// Blank lines and comment lines starting with '#' are skipped, with
// one directive exception: a "# shard N" line opens a shard section,
// and every following job id is namespaced with an "s<N>/" prefix
// until the next directive. Sectioned logs — exported per-shard by the
// serving layer, or concatenated from several services — therefore
// never collide on ids even when the same tenant submitted the same
// job name to each; the uniqueness check runs on the final, prefixed
// ids (the per-merged-log rule).
//
// A manager of "-" means the default (flag-driven) manager. The batch
// field accepts the compact schedule syntax ("16x2,32,64x3") to
// declare a dynamic per-iteration batch schedule. An optional eighth
// field "gpus=N" declares a multi-GPU gang of N devices. Final job IDs
// must be unique: the scheduler, the serving layer and every per-job
// report key on them. Every error names the offending line.
func ParseTrace(r io.Reader) ([]TraceJob, error) {
	return ParseTraceLimit(r, 0)
}

// ParseTraceLimit is ParseTrace with a gang-size ceiling: a positive
// maxGPUs rejects any job whose gpus=N exceeds it, naming the line —
// so a trace replayed onto a known cluster fails at parse time, not
// after hours of simulation. Zero means no ceiling. Fault-event lines
// are an error here: a caller that cannot deliver faults (the serving
// layer's request log) must refuse such a trace loudly rather than
// silently drop its failures; use ParseTraceEvents to accept them.
func ParseTraceLimit(r io.Reader, maxGPUs int) ([]TraceJob, error) {
	jobs, _, err := parseTrace(r, maxGPUs, false)
	return jobs, err
}

// ParseTraceEvents is ParseTraceLimit extended with the fault-event
// syntax: alongside job lines, a trace may script device failures and
// recoveries as
//
//	fault fail dev=N at=T
//	fault recover dev=N at=T
//
// where T is a time in milliseconds (a bare integer, or with an "ms"
// or "s" suffix: "at=2000", "at=2000ms" and "at=2s" are the same
// instant). Faults are returned in file order; a device that fails
// and never recovers is permanently lost.
func ParseTraceEvents(r io.Reader, maxGPUs int) ([]TraceJob, []TraceFault, error) {
	return parseTrace(r, maxGPUs, true)
}

func parseTrace(r io.Reader, maxGPUs int, allowFaults bool) ([]TraceJob, []TraceFault, error) {
	var out []TraceJob
	var faults []TraceFault
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	seen := make(map[string]int)
	prefix := ""
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			if f := strings.Fields(strings.TrimPrefix(text, "#")); len(f) == 2 && f[0] == "shard" {
				n, err := strconv.Atoi(f[1])
				if err != nil || n < 0 {
					return nil, nil, fmt.Errorf("workload: trace line %d: bad shard directive %q", line, text)
				}
				prefix = fmt.Sprintf("s%d/", n)
			}
			continue
		}
		f := strings.Fields(text)
		if f[0] == "fault" {
			if !allowFaults {
				return nil, nil, fmt.Errorf("workload: trace line %d: fault events are not supported here (replay the trace through a fault-aware caller)", line)
			}
			tf, err := parseFault(line, f)
			if err != nil {
				return nil, nil, err
			}
			faults = append(faults, tf)
			continue
		}
		if len(f) != 7 && len(f) != 8 {
			return nil, nil, fmt.Errorf("workload: trace line %d: want 7 fields (id arrival_ms network batch manager priority iterations [gpus=N]), got %d", line, len(f))
		}
		var (
			tj  TraceJob
			err error
		)
		tj.ID = prefix + f[0]
		if first, dup := seen[tj.ID]; dup {
			return nil, nil, fmt.Errorf("workload: trace line %d: duplicate job id %q (first on line %d)", line, tj.ID, first)
		}
		seen[tj.ID] = line
		if tj.ArrivalMS, err = strconv.ParseInt(f[1], 10, 64); err != nil || tj.ArrivalMS < 0 {
			return nil, nil, fmt.Errorf("workload: trace line %d: bad arrival %q", line, f[1])
		}
		tj.Network = f[2]
		sched, err := ParseSchedule(f[3])
		if err != nil {
			return nil, nil, fmt.Errorf("workload: trace line %d: bad batch %q", line, f[3])
		}
		tj.Batch = sched.Max()
		if len(sched) > 1 {
			tj.BatchSchedule = sched
		}
		if tj.Manager = f[4]; tj.Manager == "-" {
			tj.Manager = ""
		}
		if tj.Priority, err = strconv.Atoi(f[5]); err != nil {
			return nil, nil, fmt.Errorf("workload: trace line %d: bad priority %q", line, f[5])
		}
		if tj.Iterations, err = strconv.Atoi(f[6]); err != nil || tj.Iterations <= 0 {
			return nil, nil, fmt.Errorf("workload: trace line %d: bad iterations %q", line, f[6])
		}
		if len(f) == 8 {
			v, ok := strings.CutPrefix(f[7], "gpus=")
			if !ok {
				return nil, nil, fmt.Errorf("workload: trace line %d: want gpus=N, got %q", line, f[7])
			}
			if tj.GPUs, err = strconv.Atoi(v); err != nil || tj.GPUs < 1 {
				return nil, nil, fmt.Errorf("workload: trace line %d: bad gang size %q", line, f[7])
			}
			if maxGPUs > 0 && tj.GPUs > maxGPUs {
				return nil, nil, fmt.Errorf("workload: trace line %d: gang needs %d devices, cluster has %d", line, tj.GPUs, maxGPUs)
			}
		}
		out = append(out, tj)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("workload: reading trace after line %d: %w", line, err)
	}
	return out, faults, nil
}

// TraceHeader is the comment line FormatTrace emits before the jobs.
const TraceHeader = "# id arrival_ms network batch manager priority iterations\n"

// BatchLabel renders a job's batch field: the compact schedule syntax
// for a dynamic job, the plain batch otherwise. It is the single
// source of the trace format's batch column; the CLI tables reuse it
// so they cannot diverge from the trace files.
func BatchLabel(batch int, sched Schedule) string {
	if len(sched) > 1 {
		return sched.String()
	}
	return fmt.Sprint(batch)
}

// FormatJob renders one job as a ParseTrace line (with trailing
// newline). Incremental writers (the serving layer's request log)
// append FormatJob lines after a TraceHeader and stay byte-identical
// with FormatTrace over the same jobs. The gpus=N field appears only
// for gangs, so single-device logs keep their historical bytes.
func FormatJob(j TraceJob) string {
	m := j.Manager
	if m == "" {
		m = "-"
	}
	gang := ""
	if j.GPUs > 1 {
		gang = fmt.Sprintf(" gpus=%d", j.GPUs)
	}
	return fmt.Sprintf("%s %d %s %s %s %d %d%s\n",
		j.ID, j.ArrivalMS, j.Network, BatchLabel(j.Batch, j.BatchSchedule), m, j.Priority, j.Iterations, gang)
}

// FormatTrace renders jobs in the ParseTrace format, with a header
// comment.
func FormatTrace(jobs []TraceJob) string {
	var b strings.Builder
	b.WriteString(TraceHeader)
	for _, j := range jobs {
		b.WriteString(FormatJob(j))
	}
	return b.String()
}

// DefaultTrace is the bundled multi-tenant trace the scheduler
// evaluation replays: two big jobs fill most of both devices, a
// high-priority job too large for the remaining gaps blocks a FIFO
// queue head-of-line, a stream of small jobs fits the gaps a
// memory-aware policy can backfill, and one job exceeds a whole
// device so admission control must reject it. Footprints are the
// dry-run pool peaks on the Tesla K40c (11.5 GiB usable): ResNet50
// b32 naive ≈58%, VGG16 b32 caffe ≈55%, AlexNet b512 naive ≈62%, the
// smalls 13–32%.
func DefaultTrace() []TraceJob {
	return []TraceJob{
		{ID: "big-resnet", ArrivalMS: 0, Network: "ResNet50", Batch: 32, Manager: "naive", Priority: 2, Iterations: 8},
		{ID: "big-vgg", ArrivalMS: 0, Network: "VGG16", Batch: 32, Manager: "caffe", Priority: 2, Iterations: 3},
		{ID: "urgent-alex", ArrivalMS: 100, Network: "AlexNet", Batch: 512, Manager: "naive", Priority: 9, Iterations: 4},
		{ID: "small-sn", ArrivalMS: 200, Network: "AlexNet", Batch: 256, Manager: "superneurons", Priority: 1, Iterations: 4},
		{ID: "small-vdnn", ArrivalMS: 250, Network: "ResNet50", Batch: 32, Manager: "vdnn", Priority: 2, Iterations: 3},
		{ID: "small-alex", ArrivalMS: 300, Network: "AlexNet", Batch: 128, Manager: "naive", Priority: 1, Iterations: 5},
		{ID: "mid-sn", ArrivalMS: 350, Network: "AlexNet", Batch: 512, Manager: "superneurons", Priority: 3, Iterations: 2},
		{ID: "too-big", ArrivalMS: 400, Network: "AlexNet", Batch: 1024, Manager: "naive", Priority: 4, Iterations: 1},
		{ID: "late-alex", ArrivalMS: 5000, Network: "AlexNet", Batch: 64, Manager: "naive", Priority: 5, Iterations: 6},
	}
}

// DefaultDynamicTrace is the bundled dynamic-workload trace: jobs
// whose per-iteration batch schedules vary their footprint across the
// run. Admission control must reserve each job's worst-case shape
// (max over the schedule's distinct batches), so a ramped or spiking
// job can never OOM its device mid-run, while static small jobs fill
// the remaining gaps.
func DefaultDynamicTrace() []TraceJob {
	ramp := Ramp(128, 512, 4)
	spike := Schedule{128, 512, 128}
	buckets := Buckets(2, 16, 32)
	return []TraceJob{
		{ID: "ramp-alex", ArrivalMS: 0, Network: "AlexNet", Batch: ramp.Max(), BatchSchedule: ramp,
			Manager: "naive", Priority: 2, Iterations: len(ramp)},
		{ID: "spike-alex", ArrivalMS: 50, Network: "AlexNet", Batch: spike.Max(), BatchSchedule: spike,
			Manager: "superneurons", Priority: 3, Iterations: len(spike)},
		{ID: "bucket-resnet", ArrivalMS: 100, Network: "ResNet50", Batch: buckets.Max(), BatchSchedule: buckets,
			Manager: "vdnn", Priority: 2, Iterations: len(buckets)},
		{ID: "steady-alex", ArrivalMS: 150, Network: "AlexNet", Batch: 128, Manager: "naive", Priority: 1, Iterations: 5},
		{ID: "steady-sn", ArrivalMS: 200, Network: "AlexNet", Batch: 256, Manager: "superneurons", Priority: 1, Iterations: 3},
	}
}
