// Package workload defines the synthetic training workloads of the
// evaluation: canonical input geometries, the batch-size sweeps of the
// paper's figures, and a deterministic synthetic ImageNet-like batch
// source. The memory scheduler's decisions depend only on tensor
// geometry, so the source generates batch descriptors (and, when
// asked, deterministic pseudo-pixel payloads for end-to-end example
// realism) rather than real JPEG data.
package workload

import (
	"fmt"

	"repro/internal/tensor"
)

// InputShape returns the canonical per-network input geometry at the
// given batch size.
func InputShape(network string, batch int) (tensor.Shape, error) {
	switch network {
	case "AlexNet":
		return tensor.Shape{N: batch, C: 3, H: 227, W: 227}, nil
	case "InceptionV4":
		return tensor.Shape{N: batch, C: 3, H: 299, W: 299}, nil
	case "VGG16", "VGG19", "ResNet50", "ResNet101", "ResNet152", "DenseNet121":
		return tensor.Shape{N: batch, C: 3, H: 224, W: 224}, nil
	default:
		return tensor.Shape{}, fmt.Errorf("workload: unknown network %q", network)
	}
}

// Fig14Batches lists the batch sweeps of the paper's Fig. 14 per
// network (its x-axes).
var Fig14Batches = map[string][]int{
	"AlexNet":     {128, 256, 512, 768, 1024, 1280, 1408},
	"ResNet50":    {16, 32, 64, 96, 128, 160, 192},
	"VGG16":       {16, 32, 48, 64, 96, 128, 160},
	"ResNet101":   {16, 32, 48, 64, 80, 96, 112},
	"InceptionV4": {8, 16, 24, 32, 48, 64, 80},
	"ResNet152":   {8, 16, 24, 32, 48, 64, 80},
}

// Table5SearchLimit bounds the max-batch search per network (safely
// above any framework's capacity on a 12 GB card).
var Table5SearchLimit = map[string]int{
	"AlexNet":     8192,
	"VGG16":       1024,
	"InceptionV4": 1024,
	"ResNet50":    2048,
	"ResNet101":   1024,
	"ResNet152":   1024,
}

// Batch describes one synthetic training batch.
type Batch struct {
	Index int
	Shape tensor.Shape
	Seed  uint64
}

// Source deterministically yields synthetic batches for a network.
type Source struct {
	shape tensor.Shape
	seed  uint64
	next  int
}

// NewSource returns a batch source for the network at the batch size,
// seeded for reproducibility.
func NewSource(network string, batch int, seed uint64) (*Source, error) {
	s, err := InputShape(network, batch)
	if err != nil {
		return nil, err
	}
	return &Source{shape: s, seed: seed}, nil
}

// Next returns the next batch descriptor.
func (s *Source) Next() Batch {
	b := Batch{Index: s.next, Shape: s.shape, Seed: splitmix(s.seed + uint64(s.next))}
	s.next++
	return b
}

// Pixels materializes the batch's deterministic pseudo-pixel payload
// into dst (length must be Shape.Elems()); used by examples that want
// an end-to-end training-loop feel. The generator is splitmix64 over
// the element index, scaled to [0,1).
func (b Batch) Pixels(dst []float32) error {
	if int64(len(dst)) != b.Shape.Elems() {
		return fmt.Errorf("workload: dst has %d elements, want %d", len(dst), b.Shape.Elems())
	}
	state := b.Seed
	for i := range dst {
		state = splitmix(state)
		dst[i] = float32(state>>40) / float32(1<<24)
	}
	return nil
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
