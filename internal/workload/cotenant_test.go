package workload

import (
	"reflect"
	"strings"
	"testing"
)

func TestCoTenantTraceIsDeterministic(t *testing.T) {
	a, b := CoTenantTrace(), CoTenantTrace()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the co-tenant trace differ")
	}
	if FormatTrace(a) != FormatTrace(b) {
		t.Fatal("co-tenant trace bytes differ across generations")
	}
}

func TestCoTenantTraceShape(t *testing.T) {
	jobs := CoTenantTrace()
	if len(jobs) != 48 {
		t.Fatalf("trace has %d jobs, want 48", len(jobs))
	}
	seen := make(map[string]bool)
	dynamic, static := 0, 0
	for i, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job id %q", j.ID)
		}
		seen[j.ID] = true
		if j.ArrivalMS < 0 || j.Iterations < 2 || j.Batch <= 0 {
			t.Fatalf("job %d malformed: %+v", i, j)
		}
		if len(j.BatchSchedule) > 1 {
			dynamic++
			if err := j.BatchSchedule.Validate(); err != nil {
				t.Fatalf("job %d schedule: %v", i, err)
			}
			if j.Batch != j.BatchSchedule.Max() {
				t.Fatalf("job %d batch %d is not its schedule's max %d", i, j.Batch, j.BatchSchedule.Max())
			}
		} else {
			static++
		}
	}
	if dynamic == 0 || static == 0 {
		t.Fatalf("trace must mix static and dynamic jobs, got %d static / %d dynamic", static, dynamic)
	}
	// The trace must survive its own file format — snsched writes and
	// replays it through ParseTrace.
	rt, err := ParseTrace(strings.NewReader(FormatTrace(jobs)))
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if !reflect.DeepEqual(rt, jobs) {
		t.Fatal("co-tenant trace does not round-trip through the trace format")
	}
}

func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"16x2,32,64x3", "128", "1x1", "0", "-4", "8x0", "x", ",", "16,,32",
		"  8 , 8 ", "999999999999999999999", "64x2x2", "3x", "7,7,7,7",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSchedule(in)
		if err != nil {
			return
		}
		// A parse that succeeds must yield a valid schedule...
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSchedule(%q) accepted an invalid schedule: %v", in, verr)
		}
		if s.Max() <= 0 {
			t.Fatalf("ParseSchedule(%q): max %d", in, s.Max())
		}
		// ...whose canonical rendering re-parses to the same schedule
		// (the trace file format's batch column round-trip).
		rt, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("re-parsing %q (from %q): %v", s.String(), in, err)
		}
		if !reflect.DeepEqual(rt, s) {
			t.Fatalf("round trip changed the schedule: %v -> %q -> %v", s, s.String(), rt)
		}
	})
}
