package workload

// The bundled gang-scheduling trace: the multi-node evaluation
// workload. Everything here is pure arithmetic over fixed seeds — no
// math/rand, no time — so the trace is a constant: every build, every
// replay, every CI runner sees the same bytes (the determinism gate
// replays it twice and compares byte for byte).

// GangClusterDevices is the cluster size GangTrace targets: 32 nodes
// of 8 devices under hw.DefaultTopology.
const GangClusterDevices = 256

// gangShape is one of the few distinct job shapes in the gang trace.
// Keeping the shape count small bounds the scheduler's dry-run work: a
// thousand-job trace costs a handful of estimator runs.
type gangShape struct {
	network string
	batch   int
	manager string
}

// gangShapes are the distinct (network, batch, manager) combinations
// the trace draws from; weights skew toward the cheap shapes so the
// cluster stays busy rather than blocked.
var gangShapes = []gangShape{
	{"AlexNet", 128, "naive"},
	{"AlexNet", 256, "superneurons"},
	{"AlexNet", 64, "naive"},
	{"AlexNet", 256, "vdnn"},
	{"ResNet50", 32, "superneurons"},
	{"ResNet50", 32, "vdnn"},
	{"VGG16", 32, "caffe"},
	{"AlexNet", 512, "naive"},
}

// xorshift64 is the trace's deterministic number stream.
func xorshift64(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// GangTrace generates the bundled 1000-job gang trace for a
// GangClusterDevices-device cluster: roughly half the jobs are
// single-device, the rest gangs of 2, 4 or 8 (an NVLink island or a
// whole node under the default topology) with a thin tail of 16-wide
// gangs that must span nodes. Arrivals come in waves so admission
// always has a queue to pack but the queue stays shallow.
func GangTrace() []TraceJob {
	seed := uint64(0x5eed_0f_9a9) ^ 0xa5a5a5a5a5a5a5a5
	jobs := make([]TraceJob, 0, 1000)
	for i := 0; i < 1000; i++ {
		r := xorshift64(&seed)
		shape := gangShapes[r%uint64(len(gangShapes))]
		gpus := 1
		switch d := (r >> 8) % 100; {
		case d < 50:
			gpus = 1
		case d < 70:
			gpus = 2
		case d < 85:
			gpus = 4
		case d < 95:
			gpus = 8
		default:
			gpus = 16
		}
		// Waves of 50 arrivals every 2 simulated seconds, jittered
		// inside the wave so same-instant ties stay rare.
		arrival := int64(i/50)*2000 + int64((r>>16)%1000)
		tj := TraceJob{
			ID:         jobID(i),
			ArrivalMS:  arrival,
			Network:    shape.network,
			Batch:      shape.batch,
			Manager:    shape.manager,
			Priority:   int((r >> 32) % 10),
			Iterations: 1 + int((r>>40)%6),
		}
		// Single-device jobs leave GPUs zero, exactly as ParseTrace
		// produces them — the trace round-trips through its file format.
		if gpus > 1 {
			tj.GPUs = gpus
		}
		jobs = append(jobs, tj)
	}
	return jobs
}

// jobID names gang-trace jobs g000..g999 so the trace sorts and diffs
// cleanly.
func jobID(i int) string {
	digits := [3]byte{'0' + byte(i/100%10), '0' + byte(i/10%10), '0' + byte(i%10)}
	return "g" + string(digits[:])
}
