package workload

import (
	"strings"
	"testing"
)

// The optional gpus=N trace field: parse, bounds, and malformed
// inputs, each error naming the offending line.
func TestParseTraceGangField(t *testing.T) {
	parse := func(body string, maxGPUs int) ([]TraceJob, error) {
		return ParseTraceLimit(strings.NewReader(body), maxGPUs)
	}

	jobs, err := parse("g 0 AlexNet 64 naive 1 2 gpus=4\nsingle 5 AlexNet 64 - 1 1\n", 8)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].GPUs != 4 {
		t.Errorf("gpus=4 parsed as %d", jobs[0].GPUs)
	}
	if jobs[1].GPUs != 0 {
		t.Errorf("job without gpus field parsed as %d", jobs[1].GPUs)
	}

	malformed := []struct {
		name string
		body string
		max  int
		want string // substring the error must carry
	}{
		{"wider than cluster", "ok 0 AlexNet 64 naive 1 1\ng 1 AlexNet 64 naive 1 1 gpus=9\n", 8,
			"line 2: gang needs 9 devices, cluster has 8"},
		{"zero gang", "g 0 AlexNet 64 naive 1 1 gpus=0\n", 0, "line 1: bad gang size"},
		{"negative gang", "g 0 AlexNet 64 naive 1 1 gpus=-2\n", 0, "line 1: bad gang size"},
		{"non-numeric gang", "g 0 AlexNet 64 naive 1 1 gpus=two\n", 0, "line 1: bad gang size"},
		{"bare eighth field", "g 0 AlexNet 64 naive 1 1 4\n", 0, "line 1: want gpus=N"},
		{"misspelled key", "g 0 AlexNet 64 naive 1 1 gpu=4\n", 0, "line 1: want gpus=N"},
		{"ninth field", "g 0 AlexNet 64 naive 1 1 gpus=4 extra\n", 0, "line 1: want 7 fields"},
	}
	for _, c := range malformed {
		_, err := parse(c.body, c.max)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}

	// No ceiling: any positive gang parses.
	if _, err := parse("g 0 AlexNet 64 naive 1 1 gpus=4096\n", 0); err != nil {
		t.Errorf("unlimited parse rejected wide gang: %v", err)
	}
}

// The bundled gang trace is a well-formed constant: 1000 jobs, gangs
// within the 256-device cluster, a healthy single/gang mix, and the
// same bytes on every call.
func TestGangTraceWellFormed(t *testing.T) {
	jobs := GangTrace()
	if len(jobs) != 1000 {
		t.Fatalf("gang trace has %d jobs, want 1000", len(jobs))
	}
	singles, gangs, wide := 0, 0, 0
	for i, j := range jobs {
		if j.GPUs > GangClusterDevices {
			t.Fatalf("job %d gang %d exceeds the %d-device cluster", i, j.GPUs, GangClusterDevices)
		}
		switch {
		case j.GPUs <= 1:
			singles++
		case j.GPUs > 8:
			wide++
		default:
			gangs++
		}
		if j.Iterations < 1 {
			t.Fatalf("job %d has %d iterations", i, j.Iterations)
		}
		if j.ArrivalMS < 0 {
			t.Fatalf("job %d arrives at %d", i, j.ArrivalMS)
		}
	}
	if singles == 0 || gangs == 0 || wide == 0 {
		t.Errorf("trace mix singles=%d gangs=%d wide=%d, want all three populated", singles, gangs, wide)
	}
	if a, b := FormatTrace(GangTrace()), FormatTrace(GangTrace()); a != b {
		t.Fatal("two generations of the gang trace differ")
	}
}
