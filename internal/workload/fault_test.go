package workload

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseTraceEventsFaults covers the fault-event syntax end to end:
// accepted spellings, the millisecond/second suffixes, and every
// malformed shape — each error must carry the line number and the
// offending token.
func TestParseTraceEventsFaults(t *testing.T) {
	const trace = `# jobs then faults
a 0 AlexNet 128 naive 1 2
fault fail dev=4 at=1500
fault recover dev=4 at=2s
b 100 AlexNet 128 naive 1 2
fault fail dev=0 at=2500ms
`
	jobs, faults, err := ParseTraceEvents(strings.NewReader(trace), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != "a" || jobs[1].ID != "b" {
		t.Fatalf("jobs = %+v", jobs)
	}
	want := []TraceFault{
		{AtMS: 1500, Device: 4},
		{AtMS: 2000, Device: 4, Recover: true},
		{AtMS: 2500, Device: 0},
	}
	if !reflect.DeepEqual(faults, want) {
		t.Fatalf("faults = %+v, want %+v", faults, want)
	}

	bad := map[string]struct {
		line string
		want string // error must contain this, plus the line number
	}{
		"too few fields":  {"fault fail dev=1", "want \"fault fail|recover dev=N at=T\""},
		"too many fields": {"fault fail dev=1 at=5 extra", "got 5 fields"},
		"bad kind":        {"fault pause dev=1 at=5", `bad fault kind "pause"`},
		"missing dev=":    {"fault fail gpu=1 at=5", `want dev=N, got "gpu=1"`},
		"bad device":      {"fault fail dev=x at=5", `bad fault device "dev=x"`},
		"negative device": {"fault fail dev=-1 at=5", `bad fault device "dev=-1"`},
		"missing at=":     {"fault fail dev=1 t=5", `want at=T, got "t=5"`},
		"bad time":        {"fault fail dev=1 at=soon", `bad fault time "at=soon"`},
		"negative time":   {"fault fail dev=1 at=-5", `bad fault time "at=-5"`},
		"overflow time":   {"fault fail dev=1 at=9223372036854775807s", `bad fault time`},
	}
	for name, tc := range bad {
		in := "a 0 AlexNet 128 naive 1 2\n\n" + tc.line + "\n"
		_, _, err := ParseTraceEvents(strings.NewReader(in), 0)
		if err == nil {
			t.Errorf("%s: malformed fault line accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("%s: error %q does not name line 3", name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", name, err, tc.want)
		}
	}
}

// TestParseTraceRejectsFaultLines: callers that cannot deliver faults
// (ParseTrace/ParseTraceLimit — the serving layer's request log) must
// refuse a faulted trace loudly, never silently drop its failures.
func TestParseTraceRejectsFaultLines(t *testing.T) {
	const trace = "a 0 AlexNet 128 naive 1 2\nfault fail dev=0 at=100\n"
	_, err := ParseTrace(strings.NewReader(trace))
	if err == nil || !strings.Contains(err.Error(), "line 2") ||
		!strings.Contains(err.Error(), "fault events are not supported here") {
		t.Errorf("ParseTrace accepted a faulted trace: %v", err)
	}
	if _, err := ParseTraceLimit(strings.NewReader(trace), 4); err == nil {
		t.Error("ParseTraceLimit accepted a faulted trace")
	}
}

// TestFormatTraceEventsRoundTrip: rendering jobs+faults and reparsing
// yields the same values, the canonical bytes are stable, and a
// fault-free trace keeps its historical FormatTrace bytes.
func TestFormatTraceEventsRoundTrip(t *testing.T) {
	jobs, faults := FaultTrace()
	text := FormatTraceEvents(jobs, faults)
	j2, f2, err := ParseTraceEvents(strings.NewReader(text), FaultClusterDevices)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, j2) {
		t.Errorf("jobs did not round-trip:\n%+v\n%+v", jobs, j2)
	}
	if !reflect.DeepEqual(faults, f2) {
		t.Errorf("faults did not round-trip:\n%+v\n%+v", faults, f2)
	}
	if again := FormatTraceEvents(j2, f2); again != text {
		t.Errorf("canonical form not stable:\n--- first\n%s\n--- second\n%s", text, again)
	}
	if got, want := FormatTraceEvents(jobs, nil), FormatTrace(jobs); got != want {
		t.Errorf("fault-free FormatTraceEvents diverges from FormatTrace")
	}
}

func TestParseMS(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1500", 1500, true},
		{"1500ms", 1500, true},
		{"2s", 2000, true},
		{"0s", 0, true},
		{"", 0, false},
		{"ms", 0, false},
		{"s", 0, false},
		{"-1", 0, false},
		{"-1s", 0, false},
		{"1.5s", 0, false},
		{"9223372036854775807", 9223372036854775807, true},
		{"9223372036854775807ms", 9223372036854775807, true},
		{"9223372036854775807s", 0, false}, // would overflow ×1000
		{"9223372036854776s", 0, false},
	}
	for _, tc := range cases {
		got, err := parseMS(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("parseMS(%q) = %d, %v; want %d, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestFaultTraceWellFormed: the bundled failure scenario parses under
// its own cluster ceiling and scripts a permanent failure plus a
// fail/recover cycle.
func TestFaultTraceWellFormed(t *testing.T) {
	jobs, faults := FaultTrace()
	if len(jobs) == 0 || len(faults) == 0 {
		t.Fatal("fault trace empty")
	}
	text := FormatTraceEvents(jobs, faults)
	if _, _, err := ParseTraceEvents(strings.NewReader(text), FaultClusterDevices); err != nil {
		t.Fatal(err)
	}
	gangs := 0
	for _, j := range jobs {
		if j.GPUs > FaultClusterDevices {
			t.Errorf("job %s needs %d devices, cluster has %d", j.ID, j.GPUs, FaultClusterDevices)
		}
		if j.GPUs > 1 {
			gangs++
		}
	}
	if gangs == 0 {
		t.Error("fault trace has no gang to shrink")
	}
	down := map[int]bool{}
	for _, f := range faults {
		if f.Device < 0 || f.Device >= FaultClusterDevices {
			t.Errorf("fault targets device %d of %d", f.Device, FaultClusterDevices)
		}
		down[f.Device] = !f.Recover
	}
	permanent := 0
	for _, d := range down {
		if d {
			permanent++
		}
	}
	if permanent == 0 {
		t.Error("fault trace has no permanent failure")
	}
	if len(down) < 2 {
		t.Error("fault trace touches fewer than two devices")
	}
}

// FuzzParseTrace asserts the trace parser (fault-event syntax
// included) never panics, and that anything it accepts re-formats and
// re-parses to the same values — the trace half of the fuzz satellite.
func FuzzParseTrace(f *testing.F) {
	jobs, faults := FaultTrace()
	f.Add(FormatTraceEvents(jobs, faults))
	f.Add(FormatTrace(DefaultTrace()))
	f.Add("fault fail dev=0 at=100\nfault recover dev=0 at=2s\n")
	f.Add("# shard 3\na 0 AlexNet 16x2,32 naive 1 4 gpus=2\nfault fail dev=1 at=5ms\n")
	f.Add("fault fail dev=1\nfault fail dev=1 at=-3\n")
	f.Fuzz(func(t *testing.T, text string) {
		jobs, faults, err := ParseTraceEvents(strings.NewReader(text), 0)
		if err != nil {
			return
		}
		// Accepted traces must survive a format/reparse cycle exactly:
		// the canonical rendering is itself a valid trace for the same
		// jobs and faults, and is a fixpoint of formatting. Gang sizes 0
		// and 1 both mean a single device and the renderer omits the
		// field for both, so normalize before comparing.
		for i := range jobs {
			if jobs[i].GPUs == 1 {
				jobs[i].GPUs = 0
			}
		}
		canon := FormatTraceEvents(jobs, faults)
		j2, f2, err := ParseTraceEvents(strings.NewReader(canon), 0)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if !reflect.DeepEqual(jobs, j2) || !reflect.DeepEqual(faults, f2) {
			t.Fatalf("format/reparse changed the trace:\n%+v %+v\n%+v %+v", jobs, faults, j2, f2)
		}
		if again := FormatTraceEvents(j2, f2); again != canon {
			t.Fatalf("canonical form not a fixpoint:\n--- first\n%s\n--- second\n%s", canon, again)
		}
	})
}
