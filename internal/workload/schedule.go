package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Schedule is a per-iteration batch-size schedule: entry i is the
// batch size of training iteration i. Dynamic workloads — bucketed
// sequence lengths, batch-size ramps, mixed request streams — declare
// one instead of a single static batch, and the runtime re-plans at
// each iteration boundary (the scenario class TENSILE targets, where
// vDNN-style one-shot offload schedules break down).
type Schedule []int

// Validate checks that every entry is a positive batch size.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("workload: empty batch schedule")
	}
	for i, b := range s {
		if b <= 0 {
			return fmt.Errorf("workload: schedule entry %d: batch must be positive, got %d", i, b)
		}
	}
	return nil
}

// Max returns the largest batch in the schedule — the worst-case shape
// admission control must provision for.
func (s Schedule) Max() int {
	m := 0
	for _, b := range s {
		if b > m {
			m = b
		}
	}
	return m
}

// Distinct returns the sorted distinct batch sizes — each is one
// memoized dry run for a scheduler's worst-case-per-shape estimate.
func (s Schedule) Distinct() []int {
	seen := make(map[int]bool, len(s))
	var out []int
	for _, b := range s {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return out
}

// At returns the batch of iteration i, cycling when the run is longer
// than the declared schedule.
func (s Schedule) At(i int) int { return s[i%len(s)] }

// Ramp returns a linearly interpolated batch ramp from 'from' to 'to'
// over n iterations (inclusive endpoints) — the growing-batch training
// regime.
func Ramp(from, to, n int) Schedule {
	if n <= 1 {
		return Schedule{to}
	}
	out := make(Schedule, n)
	for i := range out {
		out[i] = from + (to-from)*i/(n-1)
	}
	return out
}

// Buckets repeats each batch size reps times in order — the bucketed
// sequence-length regime, where inputs are grouped into a few shape
// buckets and iterations sweep them.
func Buckets(reps int, batches ...int) Schedule {
	out := make(Schedule, 0, reps*len(batches))
	for _, b := range batches {
		for r := 0; r < reps; r++ {
			out = append(out, b)
		}
	}
	return out
}

// MaxScheduleLen bounds a parsed schedule's expanded length: a trace
// line like "1x2000000000" must fail at parse time, not allocate a
// multi-gigabyte slice.
const MaxScheduleLen = 1 << 20

// ParseSchedule reads the compact trace syntax: comma-separated batch
// sizes, each optionally with an xN repeat — "16x2,32,64x3" is
// [16 16 32 64 64 64]. A plain integer parses as a one-entry schedule.
// Schedules longer than MaxScheduleLen entries are rejected.
func ParseSchedule(s string) (Schedule, error) {
	var out Schedule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		batchStr, reps := part, 1
		if i := strings.IndexByte(part, 'x'); i >= 0 {
			batchStr = part[:i]
			r, err := strconv.Atoi(part[i+1:])
			if err != nil || r <= 0 {
				return nil, fmt.Errorf("workload: bad repeat in schedule entry %q", part)
			}
			reps = r
		}
		if reps > MaxScheduleLen-len(out) {
			return nil, fmt.Errorf("workload: schedule longer than %d entries at %q", MaxScheduleLen, part)
		}
		b, err := strconv.Atoi(batchStr)
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("workload: bad batch in schedule entry %q", part)
		}
		for r := 0; r < reps; r++ {
			out = append(out, b)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the schedule in the ParseSchedule syntax, run-length
// encoded.
func (s Schedule) String() string {
	var b strings.Builder
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j-i > 1 {
			fmt.Fprintf(&b, "%dx%d", s[i], j-i)
		} else {
			fmt.Fprintf(&b, "%d", s[i])
		}
		i = j
	}
	return b.String()
}

// DynamicSchedules are the bundled dynamic-batch traces of the
// adaptive-planning evaluation, keyed by name.
var DynamicSchedules = map[string]Schedule{
	// ramp grows the batch across the run, the regime where a plan
	// frozen at iteration 0's small shape runs out of memory mid-run.
	"ramp": Ramp(32, 256, 8),
	// buckets sweeps three sequence-length-like shape buckets.
	"buckets": Buckets(2, 64, 192, 96),
	// spike holds a comfortable steady state with one oversized burst,
	// the worst case for a static plan sized to the common shape.
	"spike": {64, 64, 256, 256, 64, 64},
	// ramp50 is the ramp scaled to ResNet-50 batch sizes (the
	// adaptive-vs-frozen-plan ablation runs it on a shrunken pool).
	"ramp50": {16, 32, 48, 48},
}

// DynamicScheduleNames lists the bundled schedules sorted by name.
func DynamicScheduleNames() []string {
	names := make([]string, 0, len(DynamicSchedules))
	for n := range DynamicSchedules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
