package workload

// Record framing for durable logs. The serving layer's write-ahead log
// appends each sequenced request as one framed record: a fixed header
// of payload length and CRC followed by the payload bytes (a line in
// the workload-trace format). The frame is what makes torn tails
// detectable: a crash mid-write leaves a truncated header, a truncated
// payload, or a payload whose checksum disagrees with the header, and
// a reader distinguishes all three from a clean end of log.
//
// Wire layout, big-endian:
//
//	[4 bytes payload length][4 bytes IEEE CRC-32 of payload][payload]
//
// The helpers live here rather than in the serving layer so offline
// tools (and tests) can read WAL segments with nothing but the
// workload package.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// frameHeaderSize is the fixed per-record overhead: 4 length bytes and
// 4 CRC bytes.
const frameHeaderSize = 8

// MaxFramePayload bounds one record's payload. It matches the trace
// scanner's 1 MiB line buffer: no legitimate trace line approaches it,
// and the cap stops a corrupt length field from demanding gigabytes.
const MaxFramePayload = 1 << 20

// Named frame errors. ErrFrameTruncated means the buffer ended inside
// a frame (the torn-tail signature of a crash mid-write);
// ErrFrameCorrupt means the frame is structurally complete but its
// checksum or length field is wrong (bit rot, or a torn write that
// landed inside an earlier record).
var (
	ErrFrameTruncated = errors.New("workload: frame truncated")
	ErrFrameCorrupt   = errors.New("workload: frame corrupt")
)

// AppendFrame appends one framed record to dst and returns the
// extended slice. Payloads above MaxFramePayload are refused by
// ReadFrame, so writers must keep records under the cap; AppendFrame
// panics on oversize payloads to surface the programming error at the
// write site rather than as unreadable logs later.
func AppendFrame(dst []byte, payload []byte) []byte {
	if len(payload) > MaxFramePayload {
		panic(fmt.Sprintf("workload: frame payload %d bytes exceeds MaxFramePayload", len(payload)))
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// FrameSize returns the encoded size of a record with payloadLen
// payload bytes.
func FrameSize(payloadLen int) int { return frameHeaderSize + payloadLen }

// ReadFrame decodes the first frame in b, returning its payload (a
// subslice of b, not a copy) and the remaining bytes. A short buffer
// returns ErrFrameTruncated; a bad length or checksum returns
// ErrFrameCorrupt. Both errors carry context; errors.Is matches the
// sentinel.
func ReadFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < frameHeaderSize {
		return nil, b, fmt.Errorf("%w: %d header bytes of %d", ErrFrameTruncated, len(b), frameHeaderSize)
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n > MaxFramePayload {
		return nil, b, fmt.Errorf("%w: declared payload %d bytes exceeds cap %d", ErrFrameCorrupt, n, MaxFramePayload)
	}
	if len(b) < frameHeaderSize+int(n) {
		return nil, b, fmt.Errorf("%w: %d payload bytes of %d", ErrFrameTruncated, len(b)-frameHeaderSize, n)
	}
	payload = b[frameHeaderSize : frameHeaderSize+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[4:8]); got != want {
		return nil, b, fmt.Errorf("%w: crc %08x, header says %08x", ErrFrameCorrupt, got, want)
	}
	return payload, b[frameHeaderSize+int(n):], nil
}
