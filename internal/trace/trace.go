// Package trace exports the simulated execution timeline in the
// Chrome trace-event format (chrome://tracing, Perfetto), with one
// lane per engine — compute, H2D DMA, D2H DMA — so the overlap of
// communications and computations the runtime engineers for (§3.3) can
// be inspected visually.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Span is one executed task on one engine lane.
type Span struct {
	Lane  string // "compute", "h2d", "d2h"
	Name  string // e.g. "conv1 fwd", "offload conv1.y"
	Start sim.Time
	End   sim.Time
}

// Duration returns the span's length.
func (s Span) Duration() sim.Duration { return sim.Duration(s.End - s.Start) }

// event is the Chrome trace-event JSON shape ("X" = complete event,
// "M" = metadata). Timestamps are microseconds.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the spans as a Chrome trace JSON document.
func WriteChrome(w io.Writer, spans []Span) error {
	lanes := laneIndex(spans)
	events := make([]event, 0, len(spans)+len(lanes))
	names := make([]string, len(lanes))
	for lane, tid := range lanes {
		names[tid] = lane
	}
	for tid, lane := range names {
		events = append(events, event{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": lane},
		})
	}
	for _, s := range spans {
		events = append(events, event{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Start) / 1e3,
			Dur: float64(s.End-s.Start) / 1e3,
			Pid: 0, Tid: lanes[s.Lane],
		})
	}
	doc := struct {
		TraceEvents []event `json:"traceEvents"`
		Unit        string  `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func laneIndex(spans []Span) map[string]int {
	set := map[string]bool{}
	for _, s := range spans {
		set[s.Lane] = true
	}
	lanes := make([]string, 0, len(set))
	for l := range set {
		lanes = append(lanes, l)
	}
	sort.Strings(lanes)
	idx := make(map[string]int, len(lanes))
	for i, l := range lanes {
		idx[l] = i
	}
	return idx
}

// Summary aggregates per-lane busy time and span counts — a quick
// text alternative to the visual trace.
func Summary(spans []Span) string {
	type agg struct {
		busy  sim.Duration
		count int
		last  sim.Time
	}
	lanes := map[string]*agg{}
	var span sim.Time
	for _, s := range spans {
		a := lanes[s.Lane]
		if a == nil {
			a = &agg{}
			lanes[s.Lane] = a
		}
		a.busy += s.Duration()
		a.count++
		if s.End > a.last {
			a.last = s.End
		}
		if s.End > span {
			span = s.End
		}
	}
	names := make([]string, 0, len(lanes))
	for l := range lanes {
		names = append(names, l)
	}
	sort.Strings(names)
	out := fmt.Sprintf("timeline span %v\n", sim.Duration(span))
	for _, l := range names {
		a := lanes[l]
		util := 0.0
		if span > 0 {
			util = float64(a.busy) / float64(span)
		}
		out += fmt.Sprintf("  %-8s %5d spans, busy %v (%.0f%% of span)\n", l, a.count, a.busy, 100*util)
	}
	return out
}
