package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleSpans() []Span {
	return []Span{
		{Lane: "compute", Name: "conv1 fwd", Start: 0, End: 100},
		{Lane: "d2h", Name: "offload conv1.y", Start: 50, End: 400},
		{Lane: "compute", Name: "relu1 fwd", Start: 100, End: 150},
		{Lane: "h2d", Name: "fetch conv1.y", Start: 500, End: 900},
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteChrome(&sb, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 lane-metadata events + 4 spans.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("events = %d, want 7", len(doc.TraceEvents))
	}
	var metas, complete int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			complete++
		}
	}
	if metas != 3 || complete != 4 {
		t.Errorf("metas=%d complete=%d", metas, complete)
	}
}

func TestChromeTimestampsAreMicroseconds(t *testing.T) {
	var sb strings.Builder
	spans := []Span{{Lane: "compute", Name: "k", Start: 2000, End: 5000}} // 2µs..5µs
	if err := WriteChrome(&sb, spans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"ts":2`) || !strings.Contains(sb.String(), `"dur":3`) {
		t.Errorf("timestamps not in microseconds: %s", sb.String())
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{Start: 10, End: 250}
	if s.Duration() != 240 {
		t.Errorf("duration = %v", s.Duration())
	}
}

func TestSummary(t *testing.T) {
	out := Summary(sampleSpans())
	for _, want := range []string{"compute", "d2h", "h2d", "2 spans", "timeline span"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Compute lane busy = 150ns over a 900ns span = 17%.
	if !strings.Contains(out, "17%") {
		t.Errorf("compute utilization missing:\n%s", out)
	}
	_ = sim.Duration(0)
}

func TestSummaryEmpty(t *testing.T) {
	if out := Summary(nil); !strings.Contains(out, "timeline span") {
		t.Errorf("empty summary = %q", out)
	}
}
