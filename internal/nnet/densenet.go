package nnet

import (
	"fmt"

	"repro/internal/tensor"
)

// DenseNetConfig parameterizes a DenseNet (Huang et al.): per-block
// layer counts and the growth rate.
type DenseNetConfig struct {
	Blocks []int
	Growth int
}

// DenseNet121Config is the standard 121-layer configuration.
var DenseNet121Config = DenseNetConfig{Blocks: []int{6, 12, 24, 16}, Growth: 32}

// DenseNet builds a densely-connected network: inside a block every
// composite layer consumes the concatenation of all earlier feature
// maps (the paper's "full-join" non-linearity, Fig. 1b right), which is
// the most demanding dependency pattern for a memory scheduler.
func DenseNet(batch int, cfg DenseNetConfig) *Net {
	b, n := NewBuilder(fmt.Sprintf("DenseNet%d", denseNetDepth(cfg)),
		tensor.Shape{N: batch, C: 3, H: 224, W: 224})

	// Stem: 7x7 conv stride 2, BN, ReLU, 3x3 max pool stride 2.
	n = b.Conv(n, "conv0", 2*cfg.Growth, 7, 2, 3)
	n = b.BN(n, "bn0")
	n = b.Act(n, "relu0")
	n = b.Pool(n, "pool0", 3, 2, 1, false)

	for bi, reps := range cfg.Blocks {
		n = denseBlock(b, n, fmt.Sprintf("db%d", bi+1), reps, cfg.Growth)
		if bi < len(cfg.Blocks)-1 {
			n = transition(b, n, fmt.Sprintf("tr%d", bi+1))
		}
	}

	n = b.BN(n, "bn_final")
	n = b.Act(n, "relu_final")
	n = b.GlobalPool(n, "avgpool")
	n = b.FC(n, "fc", 1000)
	b.Softmax(n, "softmax")
	return b.Finish()
}

// denseBlock appends reps composite layers; layer k concatenates the
// block input with the outputs of layers 1..k-1 before its bottleneck.
func denseBlock(b *Builder, in *Node, id string, reps, growth int) *Node {
	feats := []*Node{in}
	for r := 1; r <= reps; r++ {
		lid := fmt.Sprintf("%s_l%d", id, r)
		var x *Node
		if len(feats) == 1 {
			x = feats[0]
		} else {
			x = b.Concat(lid+"_cat", feats...)
		}
		x = b.BN(x, lid+"_bn1")
		x = b.Act(x, lid+"_relu1")
		x = b.Conv(x, lid+"_conv1", 4*growth, 1, 1, 0)
		x = b.BN(x, lid+"_bn2")
		x = b.Act(x, lid+"_relu2")
		x = b.Conv(x, lid+"_conv2", growth, 3, 1, 1)
		feats = append(feats, x)
	}
	return b.Concat(id+"_out", feats...)
}

// transition appends the half-channel 1x1 conv + 2x2 average pool
// between dense blocks.
func transition(b *Builder, in *Node, id string) *Node {
	n := b.BN(in, id+"_bn")
	n = b.Act(n, id+"_relu")
	n = b.Conv(n, id+"_conv", in.L.Out.C/2, 1, 1, 0)
	return b.Pool(n, id+"_pool", 2, 2, 0, true)
}

// denseNetDepth counts weighted layers: 2 convs per composite layer,
// one per transition, stem conv, classifier FC.
func denseNetDepth(cfg DenseNetConfig) int {
	d := 2 // stem conv + fc
	for _, reps := range cfg.Blocks {
		d += 2 * reps
	}
	d += len(cfg.Blocks) - 1
	return d
}

// DenseNet121 builds the standard DenseNet-121.
func DenseNet121(batch int) *Net { return DenseNet(batch, DenseNet121Config) }
