package nnet

import (
	"fmt"

	"repro/internal/tensor"
)

// ResNetStages builds a bottleneck ResNet controlled by the four
// for-loop limits of the paper's Table 4:
//
//	depth = 3*(n1+n2+n3+n4) + 2
//
// counting the three convolutions of every bottleneck block plus the
// stem convolution and the classifier. Standard instantiations:
// ResNet-50 = (3,4,6,3), ResNet-101 = (3,4,23,3), ResNet-152 =
// (3,8,36,3); Table 4's depth sweep fixes n1=6, n2=32, n4=6 and varies
// n3.
func ResNetStages(batch, n1, n2, n3, n4 int) *Net {
	reps := [4]int{n1, n2, n3, n4}
	name := fmt.Sprintf("ResNet%d", 3*(n1+n2+n3+n4)+2)
	b, n := NewBuilder(name, tensor.Shape{N: batch, C: 3, H: 224, W: 224})

	// Stem: 7x7/64 stride 2, BN, ReLU, 3x3 max pool stride 2 -> 64x56x56.
	n = b.Conv(n, "conv1", 64, 7, 2, 3)
	n = b.BN(n, "bn1")
	n = b.Act(n, "relu1")
	n = b.Pool(n, "pool1", 3, 2, 1, false)

	mid := [4]int{64, 128, 256, 512}
	out := [4]int{256, 512, 1024, 2048}
	for s := 0; s < 4; s++ {
		for r := 0; r < reps[s]; r++ {
			stride := 1
			if s > 0 && r == 0 {
				stride = 2
			}
			project := r == 0 // first block of each stage changes channel count
			n = bottleneck(b, n, fmt.Sprintf("s%db%d", s+1, r+1), mid[s], out[s], stride, project)
		}
	}

	n = b.GlobalPool(n, "avgpool")
	n = b.FC(n, "fc", 1000)
	b.Softmax(n, "softmax")
	return b.Finish()
}

// bottleneck appends one residual bottleneck unit: 1x1 reduce, 3x3,
// 1x1 expand on the main path; identity or plain 1x1 projection on the
// shortcut (no shortcut BN — the paper's Table 1 recompute counts for
// ResNet-50/101 only decompose with an unnormalized projection);
// element-wise join; ReLU.
func bottleneck(b *Builder, in *Node, id string, mid, out, stride int, project bool) *Node {
	n := b.Conv(in, id+"_conv1", mid, 1, stride, 0)
	n = b.BN(n, id+"_bn1")
	n = b.Act(n, id+"_relu1")
	n = b.Conv(n, id+"_conv2", mid, 3, 1, 1)
	n = b.BN(n, id+"_bn2")
	n = b.Act(n, id+"_relu2")
	n = b.Conv(n, id+"_conv3", out, 1, 1, 0)
	n = b.BN(n, id+"_bn3")

	shortcut := in
	if project {
		shortcut = b.Conv(in, id+"_proj", out, 1, stride, 0)
	}
	n = b.Eltwise(id+"_join", n, shortcut)
	return b.Act(n, id+"_relu")
}

// ResNet builds the named standard depths (50, 101, 152) or panics on
// anything else; use ResNetStages for custom depths.
func ResNet(depth, batch int) *Net {
	switch depth {
	case 50:
		return ResNetStages(batch, 3, 4, 6, 3)
	case 101:
		return ResNetStages(batch, 3, 4, 23, 3)
	case 152:
		return ResNetStages(batch, 3, 8, 36, 3)
	default:
		panic(fmt.Sprintf("nnet: no standard ResNet-%d; use ResNetStages", depth))
	}
}

// ResNetTable4 builds the Table 4 depth-sweep variant: n1=6, n2=32,
// n4=6, with the given n3.
func ResNetTable4(batch, n3 int) *Net { return ResNetStages(batch, 6, 32, n3, 6) }

// ResNetDepth returns the paper's depth formula for the four limits.
func ResNetDepth(n1, n2, n3, n4 int) int { return 3*(n1+n2+n3+n4) + 2 }
