package nnet

import (
	"repro/internal/layers"
	"repro/internal/tensor"
)

// AlexNet builds the 23-layer LRN variant the paper profiles in its
// Fig. 10 (footnote 3):
//
//	CONV1→RELU1→LRN1→POOL1→CONV2→RELU2→LRN2→POOL2→CONV3→RELU3→
//	CONV4→RELU4→CONV5→RELU5→POOL5→FC1→RELU6→Dropout1→FC2→RELU7→
//	Dropout2→FC3→Softmax
//
// plus the data layer feeding 3×227×227 images. The geometry follows
// Krizhevsky et al. including the historical two-GPU channel grouping
// on conv2/4/5 (grouping halves those layers' parameters and FLOPs but
// not their activation footprints, so the paper's reported tensor
// sizes still match exactly).
func AlexNet(batch int) *Net {
	b, n := NewBuilder("AlexNet", tensor.Shape{N: batch, C: 3, H: 227, W: 227})

	n = b.Conv(n, "conv1", 96, 11, 4, 0) // 96x55x55
	n = b.Act(n, "relu1")
	n = b.LRN(n, "lrn1")
	n = b.Pool(n, "pool1", 3, 2, 0, false) // 96x27x27

	n = b.Add(layers.NewConvGrouped("conv2", n.L.Out, 256, 5, 1, 2, 2), n) // 256x27x27
	n = b.Act(n, "relu2")
	n = b.LRN(n, "lrn2")
	n = b.Pool(n, "pool2", 3, 2, 0, false) // 256x13x13

	n = b.Conv(n, "conv3", 384, 3, 1, 1) // 384x13x13
	n = b.Act(n, "relu3")
	n = b.Add(layers.NewConvGrouped("conv4", n.L.Out, 384, 3, 1, 1, 2), n) // 384x13x13
	n = b.Act(n, "relu4")
	n = b.Add(layers.NewConvGrouped("conv5", n.L.Out, 256, 3, 1, 1, 2), n) // 256x13x13
	n = b.Act(n, "relu5")
	n = b.Pool(n, "pool5", 3, 2, 0, false) // 256x6x6

	n = b.FC(n, "fc1", 4096)
	n = b.Act(n, "relu6")
	n = b.Dropout(n, "dropout1")
	n = b.FC(n, "fc2", 4096)
	n = b.Act(n, "relu7")
	n = b.Dropout(n, "dropout2")
	n = b.FC(n, "fc3", 1000)
	b.Softmax(n, "softmax")

	return b.Finish()
}
