package nnet

// BuilderFunc constructs a network at a given batch size.
type BuilderFunc func(batch int) *Net

// Registry maps the canonical network names used throughout the
// evaluation to their builders, in the order the paper's tables list
// them.
var Registry = []struct {
	Name  string
	Build BuilderFunc
}{
	{"AlexNet", AlexNet},
	{"VGG16", VGG16},
	{"VGG19", VGG19},
	{"InceptionV4", InceptionV4},
	{"ResNet50", func(n int) *Net { return ResNet(50, n) }},
	{"ResNet101", func(n int) *Net { return ResNet(101, n) }},
	{"ResNet152", func(n int) *Net { return ResNet(152, n) }},
	{"DenseNet121", DenseNet121},
}

// ByName returns the builder for a canonical network name, or nil.
func ByName(name string) BuilderFunc {
	for _, e := range Registry {
		if e.Name == name {
			return e.Build
		}
	}
	return nil
}

// ResNet50Builder returns the ResNet-50 builder (a convenience for
// call sites that need a BuilderFunc value).
func ResNet50Builder() BuilderFunc { return ByName("ResNet50") }
