package nnet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/layers"
	"repro/internal/tensor"
)

// fig6Net reproduces the nested-fan network of the paper's Fig. 6:
// a→(b | c→(f | g)→? ) — concretely: a fans to b,c,d; b,c,d join at e;
// e fans to f,g,h; f,g,h join at i; i→j. We build it with
// shape-preserving layers so joins are well-formed.
func fig6Net(t *testing.T) (*Net, map[string]*Node) {
	t.Helper()
	s := tensor.Shape{N: 1, C: 4, H: 8, W: 8}
	b, a := NewBuilder("fig6", s)
	nodes := map[string]*Node{"a": a}
	add := func(name string, prev ...*Node) *Node {
		var n *Node
		if len(prev) == 1 {
			n = b.Act(prev[0], name)
		} else {
			n = b.Eltwise(name, prev...)
		}
		nodes[name] = n
		return n
	}
	nb := add("b", a)
	nc := add("c", a)
	nd := add("d", a)
	ne := add("e", nb, nc, nd)
	nf := add("f", ne)
	ng := add("g", ne)
	nh := add("h", ne)
	ni := add("i", nf, ng, nh)
	add("j", ni)
	return b.Finish(), nodes
}

func TestRouteLinear(t *testing.T) {
	n := AlexNet(2)
	route := n.Route()
	if len(route) != len(n.Nodes) {
		t.Fatalf("route length %d != nodes %d", len(route), len(n.Nodes))
	}
	for i, nd := range route {
		if nd.ID != i {
			t.Fatalf("linear net must execute in creation order; step %d got node %d", i, nd.ID)
		}
	}
}

func TestRouteJoinWaitsForAllPredecessors(t *testing.T) {
	net, nodes := fig6Net(t)
	route := net.Route()
	pos := make(map[string]int)
	for i, nd := range route {
		pos[nd.Name()] = i
	}
	// Alg.1: e must run after b, c and d; i after f, g and h.
	for _, pre := range []string{"b", "c", "d"} {
		if pos[pre] > pos["e"] {
			t.Errorf("join e ran before predecessor %s", pre)
		}
	}
	for _, pre := range []string{"f", "g", "h"} {
		if pos[pre] > pos["i"] {
			t.Errorf("join i ran before predecessor %s", pre)
		}
	}
	if pos["j"] != len(route)-1 {
		t.Error("j must be last")
	}
	_ = nodes
}

func TestRouteIsRepeatable(t *testing.T) {
	net, _ := fig6Net(t)
	r1 := net.Route()
	r2 := net.Route() // counters must have been reset
	if len(r1) != len(r2) {
		t.Fatal("second route has different length")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("route not deterministic at step %d", i)
		}
	}
}

func TestBackwardRouteIsReverse(t *testing.T) {
	net, _ := fig6Net(t)
	fwd, bwd := net.Route(), net.BackwardRoute()
	for i := range fwd {
		if fwd[i] != bwd[len(bwd)-1-i] {
			t.Fatalf("backward route is not the reverse at %d", i)
		}
	}
}

func TestRouteTopologicalProperty(t *testing.T) {
	// Every edge must go forward in route order, on every architecture.
	for _, e := range Registry {
		net := e.Build(1)
		pos := make(map[*Node]int, len(net.Nodes))
		for i, nd := range net.Route() {
			pos[nd] = i
		}
		for _, nd := range net.Nodes {
			for _, nx := range nd.Next {
				if pos[nx] <= pos[nd] {
					t.Errorf("%s: edge %s->%s violates topological order", e.Name, nd.Name(), nx.Name())
				}
			}
		}
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	s := tensor.Shape{N: 1, C: 1, H: 2, W: 2}
	b, a := NewBuilder("broken", s)
	n := b.Act(a, "x")
	// Sever the Next edge to create an asymmetric graph.
	a.Next = nil
	bad := &Net{Name: "broken", Nodes: b.net.Nodes, Input: a}
	_ = n
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate must reject asymmetric edges")
	}
}

func TestAlexNetStructure(t *testing.T) {
	n := AlexNet(200)
	// Paper footnote 3: 23 layers; we add the data layer.
	if got := n.BasicLayers(); got != 24 {
		t.Errorf("AlexNet layers = %d, want 24 (23 + data)", got)
	}
	if n.CountType(layers.Conv) != 5 || n.CountType(layers.FC) != 3 ||
		n.CountType(layers.LRN) != 2 || n.CountType(layers.Pool) != 3 {
		t.Error("AlexNet layer-type census wrong")
	}
	// Fig. 10 anchors: conv outputs at batch 200.
	wantMiB := map[string]float64{
		"conv1": 221.56, "conv2": 142.38, "conv3": 49.51, "conv4": 49.51, "conv5": 33.01,
	}
	for _, nd := range n.Nodes {
		if want, ok := wantMiB[nd.Name()]; ok {
			got := float64(nd.L.OutBytes()) / (1 << 20)
			if got < want-0.01 || got > want+0.01 {
				t.Errorf("%s out = %.2f MiB, want %.2f", nd.Name(), got, want)
			}
		}
	}
	// ~61M parameters.
	params := n.ParamBytes() / 4
	if params < 58e6 || params > 64e6 {
		t.Errorf("AlexNet params = %d, want ~61M", params)
	}
}

func TestVGGStructure(t *testing.T) {
	v16 := VGG16(32)
	if v16.ConvDepth() != 16 {
		t.Errorf("VGG16 weighted depth = %d, want 16", v16.ConvDepth())
	}
	v19 := VGG19(32)
	if v19.ConvDepth() != 19 {
		t.Errorf("VGG19 weighted depth = %d, want 19", v19.ConvDepth())
	}
	// ~138M parameters for VGG16.
	params := v16.ParamBytes() / 4
	if params < 130e6 || params > 145e6 {
		t.Errorf("VGG16 params = %d, want ~138M", params)
	}
}

func TestResNetDepthFormula(t *testing.T) {
	if ResNetDepth(3, 4, 6, 3) != 50 {
		t.Error("ResNet-50 formula broken")
	}
	if ResNetDepth(3, 4, 23, 3) != 101 {
		t.Error("ResNet-101 formula broken")
	}
	if ResNetDepth(3, 8, 36, 3) != 152 {
		t.Error("ResNet-152 formula broken")
	}
	for _, d := range []int{50, 101, 152} {
		n := ResNet(d, 2)
		// ConvDepth counts projection shortcuts too (4 of them) plus
		// the FC; the canonical depth counts stem + 3/block + fc.
		want := d + 4 // the four projection convs are extra vs the naming convention
		if got := n.ConvDepth(); got != want {
			t.Errorf("ResNet-%d conv depth = %d, want %d", d, got, want)
		}
		if n.Nodes[len(n.Nodes)-1].L.Type != layers.Softmax {
			t.Errorf("ResNet-%d must end in softmax", d)
		}
	}
}

func TestResNetUnknownDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ResNet(42) must panic")
		}
	}()
	ResNet(42, 1)
}

func TestResNetJoinShapes(t *testing.T) {
	n := ResNet(50, 4)
	for _, nd := range n.Nodes {
		if nd.L.Type == layers.Eltwise && len(nd.Prev) != 2 {
			t.Errorf("residual join %s has %d inputs", nd.Name(), len(nd.Prev))
		}
	}
	// Final feature map must be 2048x7x7.
	for _, nd := range n.Nodes {
		if nd.Name() == "avgpool" {
			in := nd.L.In[0]
			if in.C != 2048 || in.H != 7 {
				t.Errorf("pre-avgpool shape = %v, want 2048x7x7", in)
			}
		}
	}
}

func TestInceptionV4Structure(t *testing.T) {
	n := InceptionV4(2)
	// The paper: "the latest Inception v4 has 515 basic layers".
	if got := n.BasicLayers(); got < 450 || got > 560 {
		t.Errorf("InceptionV4 basic layers = %d, want ~515", got)
	}
	// Spatial flow: 35x35 after stem-cat3, 17x17 after reduction-A,
	// 8x8 after reduction-B.
	want := map[string][2]int{"stem_cat3": {35, 384}, "ra_cat": {17, 1024}, "rb_cat": {8, 1536}}
	for _, nd := range n.Nodes {
		if w, ok := want[nd.Name()]; ok {
			if nd.L.Out.H != w[0] || nd.L.Out.C != w[1] {
				t.Errorf("%s out = %v, want %dx%dx%d", nd.Name(), nd.L.Out, w[1], w[0], w[0])
			}
		}
	}
}

func TestDenseNetStructure(t *testing.T) {
	n := DenseNet121(2)
	if denseNetDepth(DenseNet121Config) != 121 {
		t.Errorf("DenseNet-121 depth formula = %d", denseNetDepth(DenseNet121Config))
	}
	// Full-join: the last layer of block 4 concatenates 16+1 feature
	// groups... check the block output concat has reps+1 inputs.
	for _, nd := range n.Nodes {
		if nd.Name() == "db4_out" && len(nd.Prev) != 17 {
			t.Errorf("db4_out joins %d inputs, want 17", len(nd.Prev))
		}
	}
	// Channel bookkeeping: block1 out = 64 + 6*32 = 256.
	for _, nd := range n.Nodes {
		if nd.Name() == "db1_out" && nd.L.Out.C != 256 {
			t.Errorf("db1_out channels = %d, want 256", nd.L.Out.C)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Registry) != 8 {
		t.Errorf("registry has %d entries, want 8", len(Registry))
	}
	for _, e := range Registry {
		n := e.Build(1)
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
		if n.Batch() != 1 {
			t.Errorf("%s batch = %d", e.Name, n.Batch())
		}
	}
	if ByName("AlexNet") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}

func TestRouteDiagram(t *testing.T) {
	net, _ := fig6Net(t)
	out := net.RouteDiagram()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(net.Nodes) {
		t.Fatalf("diagram lines = %d, want %d", len(lines), len(net.Nodes))
	}
	// Joins and fans are annotated (Fig. 6's structure).
	if !strings.Contains(out, "[join]") || !strings.Contains(out, "[fan]") {
		t.Errorf("diagram missing join/fan annotations:\n%s", out)
	}
	// Fig. 6 numbering: forward step i pairs with backward step
	// 2N-1-i; the first layer carries the last backward step.
	want := fmt.Sprintf("%3d/%3d", 0, 2*len(net.Nodes)-1)
	if !strings.HasPrefix(lines[0], want) {
		t.Errorf("first line %q lacks the %q numbering", lines[0], want)
	}
}

func TestDeepResNetRouteScales(t *testing.T) {
	// The paper trains ResNet-2500 (~1e4 basic layers). The route
	// construction must handle graphs of that scale; use a quarter of
	// it here to keep the test fast.
	n := ResNetTable4(1, 160) // depth = 3*(6+32+160+6)+2 = 614
	if d := ResNetDepth(6, 32, 160, 6); d != 614 {
		t.Fatalf("table-4 depth = %d", d)
	}
	route := n.Route()
	if len(route) != len(n.Nodes) {
		t.Fatal("route incomplete on deep ResNet")
	}
	if n.BasicLayers() < 2000 {
		t.Errorf("deep ResNet has %d basic layers, expected >2000", n.BasicLayers())
	}
}
