package nnet

import (
	"fmt"

	"repro/internal/tensor"
)

// vgg builds a VGG network from the per-stage 3×3 convolution counts
// (configuration D = VGG-16: 2,2,3,3,3; configuration E = VGG-19:
// 2,2,4,4,4), following Simonyan & Zisserman.
func vgg(name string, batch int, stages [5]int) *Net {
	b, n := NewBuilder(name, tensor.Shape{N: batch, C: 3, H: 224, W: 224})
	channels := [5]int{64, 128, 256, 512, 512}
	for s, reps := range stages {
		for r := 0; r < reps; r++ {
			id := fmt.Sprintf("%d_%d", s+1, r+1)
			n = b.Conv(n, "conv"+id, channels[s], 3, 1, 1)
			n = b.Act(n, "relu"+id)
		}
		n = b.Pool(n, fmt.Sprintf("pool%d", s+1), 2, 2, 0, false)
	}
	n = b.FC(n, "fc6", 4096)
	n = b.Act(n, "relu6")
	n = b.Dropout(n, "drop6")
	n = b.FC(n, "fc7", 4096)
	n = b.Act(n, "relu7")
	n = b.Dropout(n, "drop7")
	n = b.FC(n, "fc8", 1000)
	b.Softmax(n, "softmax")
	return b.Finish()
}

// VGG16 builds configuration D (13 conv + 3 FC weighted layers).
func VGG16(batch int) *Net { return vgg("VGG16", batch, [5]int{2, 2, 3, 3, 3}) }

// VGG19 builds configuration E (16 conv + 3 FC weighted layers).
func VGG19(batch int) *Net { return vgg("VGG19", batch, [5]int{2, 2, 4, 4, 4}) }
