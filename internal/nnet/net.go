// Package nnet represents neural networks as layer graphs and
// implements the paper's Algorithm 1: constructing a serial execution
// route through an arbitrary non-linear (fan/join) architecture by
// depth-first search that pauses at joins until every predecessor has
// executed.
//
// The package also ships faithful builders for every architecture the
// paper evaluates: AlexNet (the 23-layer LRN variant of its Fig. 10),
// VGG-16/19, bottleneck ResNets with the 4 for-loop depth controls of
// Table 4, Inception-v4, and DenseNet-121.
package nnet

import (
	"fmt"
	"strings"

	"repro/internal/layers"
	"repro/internal/tensor"
)

// Node is one layer instance in a network graph.
type Node struct {
	ID   int
	L    layers.Spec
	Prev []*Node
	Next []*Node
}

// Name returns the layer name.
func (n *Node) Name() string { return n.L.Name }

// Net is a directed acyclic layer graph with a single data source.
type Net struct {
	Name  string
	Nodes []*Node // in creation order; Nodes[i].ID == i
	Input *Node
}

// Batch returns the batch size the network was built for.
func (n *Net) Batch() int { return n.Input.L.Out.N }

// CountType returns the number of layers of the given type.
func (n *Net) CountType(t layers.Type) int {
	c := 0
	for _, nd := range n.Nodes {
		if nd.L.Type == t {
			c++
		}
	}
	return c
}

// BasicLayers returns the total layer count (the paper's "basic
// network layers").
func (n *Net) BasicLayers() int { return len(n.Nodes) }

// ConvDepth returns the weighted-layer depth (CONV + FC), the counting
// convention behind names like "ResNet-50".
func (n *Net) ConvDepth() int {
	return n.CountType(layers.Conv) + n.CountType(layers.FC)
}

// ParamBytes sums all persistent parameter bytes.
func (n *Net) ParamBytes() int64 {
	var sum int64
	for _, nd := range n.Nodes {
		sum += nd.L.ParamBytes()
	}
	return sum
}

// AuxBytes sums all persistent auxiliary bytes (dropout reserves, BN
// saved statistics).
func (n *Net) AuxBytes() int64 {
	var sum int64
	for _, nd := range n.Nodes {
		sum += nd.L.AuxBytes()
	}
	return sum
}

// Route computes the forward execution order with the paper's
// Algorithm 1: depth-first traversal from the data layer, where a node
// with multiple predecessors (a join) executes only after its input
// dependency counter reaches the predecessor count. The counters are
// reset afterwards so Route can be called repeatedly.
//
// Route panics if the graph is not a single-source DAG reaching every
// node, which would make the returned order non-executable.
func (n *Net) Route() []*Node {
	counters := make([]int, len(n.Nodes))
	route := make([]*Node, 0, len(n.Nodes))
	var visit func(*Node)
	visit = func(nd *Node) {
		counters[nd.ID]++
		if counters[nd.ID] < len(nd.Prev) {
			return // a join: wait until all prior layers finish (Alg.1 line 5)
		}
		route = append(route, nd)
		for _, nx := range nd.Next {
			visit(nx)
		}
	}
	visit(n.Input)
	if len(route) != len(n.Nodes) {
		panic(fmt.Sprintf("nnet: route covers %d of %d nodes; graph disconnected or cyclic",
			len(route), len(n.Nodes)))
	}
	return route
}

// BackwardRoute returns the backward execution order: the exact
// reverse of the forward route (the paper's Fig. 6 numbering).
func (n *Net) BackwardRoute() []*Node {
	fwd := n.Route()
	bwd := make([]*Node, len(fwd))
	for i, nd := range fwd {
		bwd[len(fwd)-1-i] = nd
	}
	return bwd
}

// RouteDiagram renders the execution route with the paper's Fig. 6
// numbering: every layer with its forward and backward step indices
// and its predecessors, so fan/join scheduling can be inspected.
func (n *Net) RouteDiagram() string {
	route := n.Route()
	fwd := make(map[*Node]int, len(route))
	for i, nd := range route {
		fwd[nd] = i
	}
	var b strings.Builder
	total := 2 * len(route)
	for i, nd := range route {
		bwd := total - 1 - i
		preds := make([]string, len(nd.Prev))
		for j, p := range nd.Prev {
			preds[j] = p.Name()
		}
		join := ""
		if len(nd.Prev) > 1 {
			join = "  [join]"
		}
		if len(nd.Next) > 1 {
			join += "  [fan]"
		}
		fmt.Fprintf(&b, "%3d/%3d  %-8s %-16s <- %s%s\n",
			i, bwd, nd.L.Type, nd.Name(), strings.Join(preds, ", "), join)
	}
	return b.String()
}

// Validate checks structural sanity: IDs match positions, edges are
// symmetric, shapes agree along edges, and exactly one data layer
// exists. Builders call this before returning.
func (n *Net) Validate() error {
	if n.Input == nil || len(n.Nodes) == 0 {
		return fmt.Errorf("nnet %s: empty network", n.Name)
	}
	dataCount := 0
	for i, nd := range n.Nodes {
		if nd.ID != i {
			return fmt.Errorf("nnet %s: node %q has ID %d at position %d", n.Name, nd.Name(), nd.ID, i)
		}
		if nd.L.Type == layers.Data {
			dataCount++
		}
		if len(nd.Prev) != len(nd.L.In) {
			return fmt.Errorf("nnet %s: node %q has %d predecessors but %d input shapes",
				n.Name, nd.Name(), len(nd.Prev), len(nd.L.In))
		}
		for j, p := range nd.Prev {
			if p.L.Out != nd.L.In[j] {
				return fmt.Errorf("nnet %s: edge %q->%q shape mismatch: %v vs %v",
					n.Name, p.Name(), nd.Name(), p.L.Out, nd.L.In[j])
			}
			found := false
			for _, q := range p.Next {
				if q == nd {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("nnet %s: edge %q->%q not symmetric", n.Name, p.Name(), nd.Name())
			}
		}
	}
	if dataCount != 1 {
		return fmt.Errorf("nnet %s: %d data layers, want 1", n.Name, dataCount)
	}
	return nil
}

// Builder incrementally assembles a Net. Its helper methods derive each
// layer's input shape from the predecessor node, so architecture code
// reads like the layer listings in the papers.
type Builder struct {
	net *Net
}

// NewBuilder starts a network with the given name and input geometry,
// returning the builder and the data node.
func NewBuilder(name string, input tensor.Shape) (*Builder, *Node) {
	b := &Builder{net: &Net{Name: name}}
	data := b.Add(layers.NewData("data", input))
	b.net.Input = data
	return b, data
}

// Add appends a layer connected to the given predecessors.
func (b *Builder) Add(spec layers.Spec, prevs ...*Node) *Node {
	nd := &Node{ID: len(b.net.Nodes), L: spec, Prev: prevs}
	for _, p := range prevs {
		p.Next = append(p.Next, nd)
	}
	b.net.Nodes = append(b.net.Nodes, nd)
	return nd
}

// Conv adds a square convolution after prev.
func (b *Builder) Conv(prev *Node, name string, outC, k, stride, pad int) *Node {
	return b.Add(layers.NewConv(name, prev.L.Out, outC, k, stride, pad), prev)
}

// ConvRect adds a rectangular convolution after prev.
func (b *Builder) ConvRect(prev *Node, name string, outC, kh, kw, stride, padH, padW int) *Node {
	return b.Add(layers.NewConvRect(name, prev.L.Out, outC, kh, kw, stride, padH, padW), prev)
}

// Pool adds a pooling layer after prev.
func (b *Builder) Pool(prev *Node, name string, k, stride, pad int, avg bool) *Node {
	return b.Add(layers.NewPool(name, prev.L.Out, k, stride, pad, avg), prev)
}

// GlobalPool adds a global average pool after prev.
func (b *Builder) GlobalPool(prev *Node, name string) *Node {
	return b.Add(layers.NewGlobalPool(name, prev.L.Out), prev)
}

// Act adds a ReLU after prev.
func (b *Builder) Act(prev *Node, name string) *Node {
	return b.Add(layers.NewAct(name, prev.L.Out), prev)
}

// LRN adds a local response normalization after prev.
func (b *Builder) LRN(prev *Node, name string) *Node {
	return b.Add(layers.NewLRN(name, prev.L.Out), prev)
}

// BN adds a batch normalization after prev.
func (b *Builder) BN(prev *Node, name string) *Node {
	return b.Add(layers.NewBN(name, prev.L.Out), prev)
}

// FC adds a fully-connected layer after prev.
func (b *Builder) FC(prev *Node, name string, outC int) *Node {
	return b.Add(layers.NewFC(name, prev.L.Out, outC), prev)
}

// Dropout adds a dropout layer after prev.
func (b *Builder) Dropout(prev *Node, name string) *Node {
	return b.Add(layers.NewDropout(name, prev.L.Out), prev)
}

// Softmax adds a softmax-with-loss layer after prev.
func (b *Builder) Softmax(prev *Node, name string) *Node {
	return b.Add(layers.NewSoftmax(name, prev.L.Out), prev)
}

// Concat joins the predecessors by channel concatenation (a fan join).
func (b *Builder) Concat(name string, prevs ...*Node) *Node {
	shapes := make([]tensor.Shape, len(prevs))
	for i, p := range prevs {
		shapes[i] = p.L.Out
	}
	return b.Add(layers.NewConcat(name, shapes...), prevs...)
}

// Eltwise joins the predecessors by element-wise sum (a residual join).
func (b *Builder) Eltwise(name string, prevs ...*Node) *Node {
	shapes := make([]tensor.Shape, len(prevs))
	for i, p := range prevs {
		shapes[i] = p.L.Out
	}
	return b.Add(layers.NewEltwise(name, shapes...), prevs...)
}

// Finish validates and returns the assembled network.
func (b *Builder) Finish() *Net {
	if err := b.net.Validate(); err != nil {
		panic(err)
	}
	return b.net
}
