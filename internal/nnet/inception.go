package nnet

import (
	"fmt"

	"repro/internal/tensor"
)

// InceptionV4 builds Inception-v4 (Szegedy et al., AAAI 2017): the
// stem, 4× Inception-A, Reduction-A, 7× Inception-B, Reduction-B,
// 3× Inception-C, and the classifier. Every convolution is followed by
// BN and ReLU, matching the reference implementation; the result has
// ~500 basic layers, in line with the paper's "515 basic layers
// consuming 44.3 GB" description.
func InceptionV4(batch int) *Net {
	b, n := NewBuilder("InceptionV4", tensor.Shape{N: batch, C: 3, H: 299, W: 299})
	n = inceptionStem(b, n)
	for i := 1; i <= 4; i++ {
		n = inceptionA(b, n, fmt.Sprintf("a%d", i))
	}
	n = reductionA(b, n)
	for i := 1; i <= 7; i++ {
		n = inceptionB(b, n, fmt.Sprintf("b%d", i))
	}
	n = reductionB(b, n)
	for i := 1; i <= 3; i++ {
		n = inceptionC(b, n, fmt.Sprintf("c%d", i))
	}
	n = b.GlobalPool(n, "avgpool")
	n = b.Dropout(n, "dropout")
	n = b.FC(n, "fc", 1000)
	b.Softmax(n, "softmax")
	return b.Finish()
}

// cbr appends the Conv→BN→ReLU triplet used throughout Inception.
func cbr(b *Builder, in *Node, name string, outC, k, stride, pad int) *Node {
	n := b.Conv(in, name, outC, k, stride, pad)
	n = b.BN(n, name+"_bn")
	return b.Act(n, name+"_relu")
}

// cbrRect is cbr with a rectangular kernel (the 1×7/7×1 and 1×3/3×1
// factorizations).
func cbrRect(b *Builder, in *Node, name string, outC, kh, kw, stride, padH, padW int) *Node {
	n := b.ConvRect(in, name, outC, kh, kw, stride, padH, padW)
	n = b.BN(n, name+"_bn")
	return b.Act(n, name+"_relu")
}

func inceptionStem(b *Builder, n *Node) *Node {
	n = cbr(b, n, "stem_conv1", 32, 3, 2, 0) // 149x149
	n = cbr(b, n, "stem_conv2", 32, 3, 1, 0) // 147x147
	n = cbr(b, n, "stem_conv3", 64, 3, 1, 1) // 147x147

	// First fan: 3x3 max pool ∥ stride-2 conv, concatenated (73x73).
	p1 := b.Pool(n, "stem_pool1", 3, 2, 0, false)
	c1 := cbr(b, n, "stem_conv4", 96, 3, 2, 0)
	n = b.Concat("stem_cat1", p1, c1) // 160x73x73

	// Second fan: two conv towers (71x71).
	t1 := cbr(b, n, "stem_t1_conv1", 64, 1, 1, 0)
	t1 = cbr(b, t1, "stem_t1_conv2", 96, 3, 1, 0)
	t2 := cbr(b, n, "stem_t2_conv1", 64, 1, 1, 0)
	t2 = cbrRect(b, t2, "stem_t2_conv2", 64, 7, 1, 1, 3, 0)
	t2 = cbrRect(b, t2, "stem_t2_conv3", 64, 1, 7, 1, 0, 3)
	t2 = cbr(b, t2, "stem_t2_conv4", 96, 3, 1, 0)
	n = b.Concat("stem_cat2", t1, t2) // 192x71x71

	// Third fan: stride-2 conv ∥ max pool (35x35).
	c2 := cbr(b, n, "stem_conv5", 192, 3, 2, 0)
	p2 := b.Pool(n, "stem_pool2", 3, 2, 0, false)
	return b.Concat("stem_cat3", c2, p2) // 384x35x35
}

func inceptionA(b *Builder, n *Node, id string) *Node {
	br1 := b.Pool(n, id+"_pool", 3, 1, 1, true)
	br1 = cbr(b, br1, id+"_b1_conv", 96, 1, 1, 0)

	br2 := cbr(b, n, id+"_b2_conv", 96, 1, 1, 0)

	br3 := cbr(b, n, id+"_b3_conv1", 64, 1, 1, 0)
	br3 = cbr(b, br3, id+"_b3_conv2", 96, 3, 1, 1)

	br4 := cbr(b, n, id+"_b4_conv1", 64, 1, 1, 0)
	br4 = cbr(b, br4, id+"_b4_conv2", 96, 3, 1, 1)
	br4 = cbr(b, br4, id+"_b4_conv3", 96, 3, 1, 1)

	return b.Concat(id+"_cat", br1, br2, br3, br4) // 384x35x35
}

func reductionA(b *Builder, n *Node) *Node {
	br1 := b.Pool(n, "ra_pool", 3, 2, 0, false)
	br2 := cbr(b, n, "ra_b2_conv", 384, 3, 2, 0)
	br3 := cbr(b, n, "ra_b3_conv1", 192, 1, 1, 0)
	br3 = cbr(b, br3, "ra_b3_conv2", 224, 3, 1, 1)
	br3 = cbr(b, br3, "ra_b3_conv3", 256, 3, 2, 0)
	return b.Concat("ra_cat", br1, br2, br3) // 1024x17x17
}

func inceptionB(b *Builder, n *Node, id string) *Node {
	br1 := b.Pool(n, id+"_pool", 3, 1, 1, true)
	br1 = cbr(b, br1, id+"_b1_conv", 128, 1, 1, 0)

	br2 := cbr(b, n, id+"_b2_conv", 384, 1, 1, 0)

	br3 := cbr(b, n, id+"_b3_conv1", 192, 1, 1, 0)
	br3 = cbrRect(b, br3, id+"_b3_conv2", 224, 1, 7, 1, 0, 3)
	br3 = cbrRect(b, br3, id+"_b3_conv3", 256, 7, 1, 1, 3, 0)

	br4 := cbr(b, n, id+"_b4_conv1", 192, 1, 1, 0)
	br4 = cbrRect(b, br4, id+"_b4_conv2", 192, 1, 7, 1, 0, 3)
	br4 = cbrRect(b, br4, id+"_b4_conv3", 224, 7, 1, 1, 3, 0)
	br4 = cbrRect(b, br4, id+"_b4_conv4", 224, 1, 7, 1, 0, 3)
	br4 = cbrRect(b, br4, id+"_b4_conv5", 256, 7, 1, 1, 3, 0)

	return b.Concat(id+"_cat", br1, br2, br3, br4) // 1024x17x17
}

func reductionB(b *Builder, n *Node) *Node {
	br1 := b.Pool(n, "rb_pool", 3, 2, 0, false)
	br2 := cbr(b, n, "rb_b2_conv1", 192, 1, 1, 0)
	br2 = cbr(b, br2, "rb_b2_conv2", 192, 3, 2, 0)
	br3 := cbr(b, n, "rb_b3_conv1", 256, 1, 1, 0)
	br3 = cbrRect(b, br3, "rb_b3_conv2", 256, 1, 7, 1, 0, 3)
	br3 = cbrRect(b, br3, "rb_b3_conv3", 320, 7, 1, 1, 3, 0)
	br3 = cbr(b, br3, "rb_b3_conv4", 320, 3, 2, 0)
	return b.Concat("rb_cat", br1, br2, br3) // 1536x8x8
}

func inceptionC(b *Builder, n *Node, id string) *Node {
	br1 := b.Pool(n, id+"_pool", 3, 1, 1, true)
	br1 = cbr(b, br1, id+"_b1_conv", 256, 1, 1, 0)

	br2 := cbr(b, n, id+"_b2_conv", 256, 1, 1, 0)

	br3 := cbr(b, n, id+"_b3_conv", 384, 1, 1, 0)
	br3a := cbrRect(b, br3, id+"_b3_conv_a", 256, 1, 3, 1, 0, 1)
	br3b := cbrRect(b, br3, id+"_b3_conv_b", 256, 3, 1, 1, 1, 0)

	br4 := cbr(b, n, id+"_b4_conv1", 384, 1, 1, 0)
	br4 = cbrRect(b, br4, id+"_b4_conv2", 448, 1, 3, 1, 0, 1)
	br4 = cbrRect(b, br4, id+"_b4_conv3", 512, 3, 1, 1, 1, 0)
	br4a := cbrRect(b, br4, id+"_b4_conv_a", 256, 1, 3, 1, 0, 1)
	br4b := cbrRect(b, br4, id+"_b4_conv_b", 256, 3, 1, 1, 1, 0)

	return b.Concat(id+"_cat", br1, br2, br3a, br3b, br4a, br4b) // 1536x8x8
}
