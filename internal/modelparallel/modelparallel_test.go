package modelparallel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/sim"
)

func TestSingleGPUIsReference(t *testing.T) {
	r, err := Run(nnet.AlexNet(64), Config{GPUs: 1, Device: hw.TitanXP})
	if err != nil {
		t.Fatal(err)
	}
	if r.CommTime != 0 || r.Slowdown != 1 {
		t.Errorf("1 GPU must have no comm/slowdown: %+v", r)
	}
	if r.Utilization < 0.999 {
		t.Errorf("1-GPU utilization = %v", r.Utilization)
	}
}

func TestSegmentsAreBalancedAndComplete(t *testing.T) {
	net := nnet.ResNet(50, 16)
	r, err := Run(net, Config{GPUs: 4, Device: hw.TitanXP})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SegmentTime) != 4 || len(r.BoundaryBytes) != 3 {
		t.Fatalf("segments=%d cuts=%d", len(r.SegmentTime), len(r.BoundaryBytes))
	}
	var sum sim.Duration
	var maxSeg sim.Duration
	for _, s := range r.SegmentTime {
		sum += s
		if s > maxSeg {
			maxSeg = s
		}
	}
	if sum != r.SingleGPU {
		t.Errorf("segment times %v do not sum to the single-GPU total %v", sum, r.SingleGPU)
	}
	// Greedy balance: no segment should exceed twice the ideal share.
	if float64(maxSeg) > 2*float64(r.SingleGPU)/4 {
		t.Errorf("unbalanced split: max segment %v of total %v", maxSeg, r.SingleGPU)
	}
	for _, b := range r.BoundaryBytes {
		if b <= 0 {
			t.Error("every cut must move a real activation")
		}
	}
}

func TestPaperClaimFortyPercentWaste(t *testing.T) {
	// §2.1: splitting a network across GPUs compromises at least 40%
	// of the added capability. At 2+ GPUs the serial pipeline leaves
	// well over 40% idle.
	for _, k := range []int{2, 4} {
		waste, err := WastedCapacity(nnet.VGG16(32), Config{GPUs: k, Device: hw.TitanXP})
		if err != nil {
			t.Fatal(err)
		}
		if waste < 0.4 {
			t.Errorf("%d GPUs: wasted capacity %.0f%%, paper claims >= 40%%", k, 100*waste)
		}
	}
}

func TestSlowdownGrowsWithCuts(t *testing.T) {
	net := nnet.ResNet(101, 8)
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8} {
		r, err := Run(net, Config{GPUs: k, Device: hw.TeslaK40c})
		if err != nil {
			t.Fatal(err)
		}
		if r.Slowdown < prev {
			t.Errorf("slowdown must not shrink with more cuts: %v after %v", r.Slowdown, prev)
		}
		prev = r.Slowdown
		if k > 1 && r.Throughput <= 0 {
			t.Error("degenerate throughput")
		}
	}
}

func TestInvalidGPUCount(t *testing.T) {
	if _, err := Run(nnet.AlexNet(8), Config{GPUs: 0, Device: hw.TitanXP}); err == nil {
		t.Fatal("zero GPUs must error")
	}
}
