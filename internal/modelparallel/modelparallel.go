// Package modelparallel models the alternative the paper rejects in
// §2.1: dissecting the network across GPUs (DistBelief / Coates et
// al.) so each device holds a contiguous segment of layers. Without
// pipelining, only one segment computes at a time while activations
// and gradients cross the interconnect at every cut — which is why the
// paper reports such splits "compromise at least 40% speed" and builds
// SuperNeurons for the data-parallel regime instead.
//
// The model partitions the forward route into compute-balanced
// contiguous segments, charges each boundary tensor's transfer in both
// passes, and reports the utilization loss relative to a single
// (memory-unconstrained) device.
package modelparallel

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/sim"
)

// Config describes a layer-wise model-parallel split.
type Config struct {
	// GPUs is the number of contiguous segments.
	GPUs int
	// Device is the per-GPU profile; Interconnect carries the boundary
	// tensors (PCIe P2P when zero).
	Device       hw.DeviceSpec
	Interconnect hw.LinkSpec
}

// Result summarizes one model-parallel iteration.
type Result struct {
	GPUs int
	// SegmentTime is each segment's forward+backward compute time.
	SegmentTime []sim.Duration
	// BoundaryBytes is the activation volume crossing each cut (the
	// same volume returns as gradients in the backward pass).
	BoundaryBytes []int64
	// CommTime is the total inter-GPU transfer time per iteration.
	CommTime sim.Duration
	// IterTime is the serial iteration time; SingleGPU the
	// one-device reference; Utilization the per-GPU average busy
	// fraction; Slowdown = IterTime / SingleGPU.
	IterTime    sim.Duration
	SingleGPU   sim.Duration
	Utilization float64
	Slowdown    float64
	Throughput  float64 // img/s
}

// Run simulates one iteration of the layer-wise split. Memory is
// assumed sufficient on each device (the paper's §2.1 compares the
// *speed* of the approaches).
func Run(net *nnet.Net, cfg Config) (*Result, error) {
	if cfg.GPUs < 1 {
		return nil, fmt.Errorf("modelparallel: need at least one GPU, got %d", cfg.GPUs)
	}
	if cfg.Interconnect.BytesPerSec == 0 {
		cfg.Interconnect = hw.PCIeP2P
	}
	route := net.Route()
	cost := make([]sim.Duration, len(route))
	var total sim.Duration
	for i, nd := range route {
		cost[i] = nd.L.FwdTime(cfg.Device, 1) + nd.L.BwdTime(cfg.Device, 1)
		total += cost[i]
	}

	// Balanced contiguous partition: greedy fill to total/GPUs.
	bounds := partition(cost, cfg.GPUs)
	res := &Result{GPUs: cfg.GPUs, SingleGPU: total}
	start := 0
	for _, end := range bounds {
		var seg sim.Duration
		for i := start; i < end; i++ {
			seg += cost[i]
		}
		res.SegmentTime = append(res.SegmentTime, seg)
		if end < len(route) {
			// Every edge crossing the cut carries its tensor forward
			// and its gradient backward.
			var bytes int64
			inSeg := make(map[int]bool, end-start)
			for i := start; i < end; i++ {
				inSeg[route[i].ID] = true
			}
			for i := start; i < end; i++ {
				for _, nx := range route[i].Next {
					if !inSeg[nx.ID] {
						bytes += route[i].L.OutBytes()
						break
					}
				}
			}
			res.BoundaryBytes = append(res.BoundaryBytes, bytes)
			res.CommTime += 2 * cfg.Interconnect.TransferTime(bytes)
		}
		start = end
	}

	// Serial execution: segments run one after another in both passes,
	// with the boundary transfers in between.
	res.IterTime = total + res.CommTime
	if res.IterTime > 0 {
		res.Slowdown = float64(res.IterTime) / float64(total)
		// Each GPU is busy only for its own segment.
		var busy sim.Duration
		for _, s := range res.SegmentTime {
			busy += s
		}
		res.Utilization = float64(busy) / (float64(cfg.GPUs) * float64(res.IterTime))
		res.Throughput = float64(net.Batch()) / res.IterTime.Seconds()
	}
	return res, nil
}

// partition returns the end indices of a greedy compute-balanced
// contiguous split of cost into k parts.
func partition(cost []sim.Duration, k int) []int {
	var total sim.Duration
	for _, c := range cost {
		total += c
	}
	target := total / sim.Duration(k)
	bounds := make([]int, 0, k)
	var acc sim.Duration
	for i, c := range cost {
		acc += c
		if acc >= target && len(bounds) < k-1 {
			bounds = append(bounds, i+1)
			acc = 0
		}
		_ = i
	}
	bounds = append(bounds, len(cost))
	return bounds
}

// WastedCapacity reports the fraction of the k GPUs' aggregate compute
// capability a layer-wise split leaves idle — the quantity behind the
// paper's "compromises at least 40% speed" framing: adding devices
// under model parallelism mostly adds idle silicon.
func WastedCapacity(net *nnet.Net, cfg Config) (float64, error) {
	r, err := Run(net, cfg)
	if err != nil {
		return 0, err
	}
	return 1 - r.Utilization, nil
}
