package serve

// The durability layer under the sequencer: a segmented write-ahead
// log. Every record the merger flushes into the request log is first
// appended here as a CRC+length-framed record (workload.AppendFrame)
// whose payload is one line of text — exactly the workload-trace line
// the request log carries, or an "# idem <key> <id>" directive binding
// an idempotency key to the job the NEXT record sequences. Idem
// directives precede their job record, so a torn tail can orphan a
// directive (dropped at recovery — the client was never acked) but can
// never keep a job while losing its key, which is what makes retried
// submissions exactly-once across a crash.
//
// Segments are numbered files (wal-00000000.seg, wal-00000001.seg, …);
// each opens with a header frame
//
//	# snwal 1 seg <n> spacing <ms>
//
// that pins the format version, the segment's position in the chain
// and the virtual-arrival spacing the log was merged at. Rotation
// happens when a segment passes SegmentBytes.
//
// Durability policy: SyncEvery <= 1 fsyncs at the end of every merge
// batch before any submitter is acked ("on-ack" — an acked submission
// survives kill -9). SyncEvery = N > 1 fsyncs once N records
// accumulate, trading a bounded window (at most N-1 sequenced records)
// for fewer fsyncs; acks then mean "sequenced", not yet "durable".

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/workload"
)

const (
	walMagic = "snwal 1"
	// DefaultSegmentBytes rotates WAL segments at 1 MiB unless
	// Config.SegmentBytes overrides it.
	DefaultSegmentBytes = 1 << 20
)

// walSegmentName renders the file name of segment n.
func walSegmentName(n int) string { return fmt.Sprintf("wal-%08d.seg", n) }

// walHeaderLine renders segment n's header-frame payload.
func walHeaderLine(n int, spacingMS int64) string {
	return fmt.Sprintf("# %s seg %d spacing %d\n", walMagic, n, spacingMS)
}

// wal is the append side of the write-ahead log. It is not
// goroutine-safe: the Service serializes appends under its own lock
// (the merger is the single writer).
type wal struct {
	dir          string
	spacingMS    int64
	segmentBytes int64
	syncEvery    int

	f        *os.File // current segment
	seg      int      // current segment index
	size     int64    // current segment size in bytes
	records  int      // job records appended over the WAL lifetime
	durable  int      // job records covered by the last fsync
	unsynced int      // job records appended since the last fsync
	scratch  []byte   // frame-encoding buffer, reused across appends
}

// openWALSegment opens segment n for appending, creating it with its
// header frame when fresh. size is the current byte size (0 for a new
// segment).
func (w *wal) openSegment(n int, size int64) error {
	path := filepath.Join(w.dir, walSegmentName(n))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: wal: open segment: %w", err)
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return fmt.Errorf("serve: wal: seek segment: %w", err)
	}
	w.f, w.seg, w.size = f, n, size
	if size == 0 {
		w.scratch = workload.AppendFrame(w.scratch[:0], []byte(walHeaderLine(n, w.spacingMS)))
		if err := w.write(w.scratch); err != nil {
			return err
		}
	}
	return nil
}

// write appends raw bytes to the current segment, tracking its size.
func (w *wal) write(b []byte) error {
	n, err := w.f.Write(b)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("serve: wal: write: %w", err)
	}
	return nil
}

// appendJob appends one sequenced job — its idempotency directive
// first, when key is non-empty, then the trace line — rotating the
// segment beforehand if the current one is full. The caller decides
// when to commit (fsync); see commit.
func (w *wal) appendJob(tj workload.TraceJob, key string) error {
	if w.f == nil {
		return fmt.Errorf("serve: wal: append after close")
	}
	if w.size >= w.segmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	w.scratch = w.scratch[:0]
	if key != "" {
		w.scratch = workload.AppendFrame(w.scratch, []byte(walIdemLine(key, tj.ID)))
	}
	w.scratch = workload.AppendFrame(w.scratch, []byte(workload.FormatJob(tj)))
	if err := w.write(w.scratch); err != nil {
		return err
	}
	w.records++
	w.unsynced++
	return nil
}

// rotate fsyncs and closes the current segment and opens the next one.
// A record pair (idem directive + job line) never splits across a
// rotation: rotate runs only between appendJob calls.
func (w *wal) rotate() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("serve: wal: sync on rotate: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("serve: wal: close on rotate: %w", err)
	}
	w.durable = w.records
	w.unsynced = 0
	return w.openSegment(w.seg+1, 0)
}

// commit applies the fsync policy after a merge batch: on-ack mode
// (SyncEvery <= 1) syncs whenever records are pending; grouped mode
// waits for SyncEvery pending records. It reports how many job records
// are durable after the call.
func (w *wal) commit() (durable int, err error) {
	if w.unsynced > 0 && (w.syncEvery <= 1 || w.unsynced >= w.syncEvery) {
		if err := w.sync(); err != nil {
			return w.durable, err
		}
	}
	return w.durable, nil
}

// sync forces an fsync of the current segment regardless of policy
// (drain, SIGTERM, rotation). A closed WAL has nothing to sync.
func (w *wal) sync() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("serve: wal: sync: %w", err)
	}
	w.durable = w.records
	w.unsynced = 0
	return nil
}

// close fsyncs and closes the current segment.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.sync()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("serve: wal: close: %w", cerr)
	}
	w.f = nil
	return err
}

// openWAL recovers whatever the directory holds — truncating a torn
// tail in place, removing any segments past the tear — and returns the
// append handle positioned after the recovered prefix plus the
// recovered state itself. A fresh (empty or absent) directory starts
// at segment 0. spacingMS must match the recovered log's spacing; a
// mismatch is ErrWALSpacing.
func openWAL(dir string, spacingMS int64, segmentBytes int64, syncEvery int) (*wal, *RecoveredLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: wal: %w", err)
	}
	rec, err := RecoverWAL(dir)
	if err != nil {
		return nil, nil, err
	}
	if rec.SpacingMS != 0 && rec.SpacingMS != spacingMS {
		return nil, nil, fmt.Errorf("%w: log merged at %d ms, service configured for %d ms",
			ErrWALSpacing, rec.SpacingMS, spacingMS)
	}
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	w := &wal{dir: dir, spacingMS: spacingMS, segmentBytes: segmentBytes, syncEvery: syncEvery}
	w.records, w.durable = len(rec.Jobs), len(rec.Jobs)

	// Make the tear physical: truncate the torn segment at the last
	// good frame and delete every segment after it, so the append
	// position is exactly the end of the recovered prefix.
	if tt := rec.Torn; tt != nil {
		for n := tt.Segment + 1; n < rec.Segments; n++ {
			if err := os.Remove(filepath.Join(dir, walSegmentName(n))); err != nil && !os.IsNotExist(err) {
				return nil, nil, fmt.Errorf("serve: wal: drop torn segment: %w", err)
			}
		}
		if err := os.Truncate(filepath.Join(dir, walSegmentName(tt.Segment)), tt.Offset); err != nil {
			return nil, nil, fmt.Errorf("serve: wal: truncate torn tail: %w", err)
		}
		if tt.Offset == 0 {
			// The tear is at the segment's own header: restart the
			// segment from scratch (openSegment rewrites the header).
			if err := w.openSegment(tt.Segment, 0); err != nil {
				return nil, nil, err
			}
			return w, rec, nil
		}
		if err := w.openSegment(tt.Segment, tt.Offset); err != nil {
			return nil, nil, err
		}
		return w, rec, nil
	}
	if rec.Segments == 0 {
		if err := w.openSegment(0, 0); err != nil {
			return nil, nil, err
		}
		return w, rec, nil
	}
	last := rec.Segments - 1
	info, err := os.Stat(filepath.Join(dir, walSegmentName(last)))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: wal: %w", err)
	}
	if err := w.openSegment(last, info.Size()); err != nil {
		return nil, nil, err
	}
	return w, rec, nil
}

// walIdemLine renders the idempotency directive bound to the job
// record that follows it.
func walIdemLine(key, id string) string { return fmt.Sprintf("# idem %s %s\n", key, id) }
