package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestMultiShardReplayByteIdentical is the sharded variant of the
// single-sequencer replay guarantee: traffic from many tenants spread
// over 4 independent sequencers merges into one log whose offline
// replay reproduces the drain result byte for byte.
func TestMultiShardReplayByteIdentical(t *testing.T) {
	var logBuf bytes.Buffer
	s := mustNew(t, Config{Shards: 4, SnapshotEvery: 8, RequestLog: &logBuf})

	const tenants, each = 16, 4
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			for k := 0; k < each; k++ {
				req := small(fmt.Sprintf("c%d", ti), fmt.Sprintf("j%d", k))
				if _, err := s.Submit(req); err != nil {
					t.Errorf("submit c%d/j%d: %v", ti, k, err)
				}
			}
		}(ti)
	}
	wg.Wait()
	if n := s.WaitSequenced(tenants*each, 5*time.Second); n != tenants*each {
		t.Fatalf("sequenced %d jobs, want %d", n, tenants*each)
	}
	final, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}

	logText := s.ReplayLog()
	if logBuf.String() != logText {
		t.Fatal("incremental request log differs from ReplayLog")
	}
	trace, err := workload.ParseTrace(strings.NewReader(logText))
	if err != nil {
		t.Fatalf("request log is not a valid trace: %v", err)
	}
	// Arrivals are the dense deterministic grid regardless of which
	// shard merged each slot.
	for i, tj := range trace {
		if tj.ArrivalMS != int64(i) {
			t.Fatalf("job %d arrival %d, want %d", i, tj.ArrivalMS, i)
		}
	}
	fresh, err := sched.NewScheduler(testCluster(), sched.Packing)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fresh.Run(sched.JobsFromTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", replayed), fmt.Sprintf("%+v", final); got != want {
		t.Errorf("offline replay differs from service result:\n--- replay\n%s\n--- service\n%s", got, want)
	}
	if !reflect.DeepEqual(replayed.Jobs, final.Jobs) {
		t.Error("per-job results differ between service and replay")
	}

	// The sharded export parses under the shard directives with
	// namespaced ids and covers exactly the merged log.
	sharded, err := workload.ParseTrace(strings.NewReader(s.ShardedReplayLog()))
	if err != nil {
		t.Fatalf("sharded replay log is not a valid trace: %v", err)
	}
	if len(sharded) != len(trace) {
		t.Fatalf("sharded log has %d jobs, merged log %d", len(sharded), len(trace))
	}
	arrivals := make(map[string]int64, len(trace))
	for _, tj := range trace {
		arrivals[tj.ID] = tj.ArrivalMS
	}
	busy := map[string]bool{}
	for _, tj := range sharded {
		prefix, id, ok := strings.Cut(tj.ID, "/")
		if !ok || !strings.HasPrefix(prefix, "s") {
			t.Fatalf("sharded id %q not namespaced", tj.ID)
		}
		busy[prefix] = true
		want, known := arrivals[id]
		if !known {
			t.Fatalf("sharded job %q not in merged log", tj.ID)
		}
		if tj.ArrivalMS != want {
			t.Fatalf("sharded job %q arrival %d, merged %d", tj.ID, tj.ArrivalMS, want)
		}
	}
	if len(busy) < 2 {
		t.Errorf("16 tenants landed on %d shard(s); expected the hash to spread them", len(busy))
	}
}

// TestDrainDuringConcurrentSubmits storms every shard from many
// goroutines while a drain fires mid-flight: every submission must
// either be sequenced exactly once or be refused — no lost jobs, no
// double sequencing. Run under -race in CI.
func TestDrainDuringConcurrentSubmits(t *testing.T) {
	s := mustNew(t, Config{Shards: 4, SnapshotEvery: 16, QueueDepth: 1 << 16})

	const workers, each = 8, 50
	accepted := make([][]string, workers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for k := 0; k < each; k++ {
				req := small(fmt.Sprintf("w%d", w), fmt.Sprintf("j%d", k))
				st, err := s.Submit(req)
				switch {
				case err == nil:
					accepted[w] = append(accepted[w], st.ID)
				case errors.Is(err, ErrDraining):
					// refused; must not appear in the log
				default:
					t.Errorf("submit w%d/j%d: %v", w, k, err)
				}
			}
		}(w)
	}
	var final *sched.Result
	var drainErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(time.Millisecond)
		final, drainErr = s.Drain()
	}()
	close(start)
	wg.Wait()
	if drainErr != nil {
		t.Fatal(drainErr)
	}

	counts := map[string]int{}
	for _, jr := range final.Jobs {
		counts[jr.ID]++
	}
	total := 0
	for w := range accepted {
		for _, id := range accepted[w] {
			if counts[id] != 1 {
				t.Errorf("accepted job %s appears %d times in the final schedule", id, counts[id])
			}
			total++
		}
	}
	if len(final.Jobs) != total {
		t.Errorf("final schedule has %d jobs, %d were accepted", len(final.Jobs), total)
	}
	// Drain is idempotent after the storm.
	again, err := s.Drain()
	if err != nil || again != final {
		t.Errorf("second drain = (%p, %v), want identical result", again, err)
	}
}

// TestCheckpointResumeEqualsFullReplay: a mid-stream checkpoint plus
// the log suffix reproduces the full-history drain result byte for
// byte — the crash-recovery/compaction guarantee.
func TestCheckpointResumeEqualsFullReplay(t *testing.T) {
	s := mustNew(t, Config{Manual: true, Shards: 3, SnapshotEvery: 2})
	nets := []SubmitRequest{
		{Network: "AlexNet", Batch: 16, Iterations: 2},
		{Network: "AlexNet", Batch: 32, Priority: 5},
		{Network: "AlexNet", Schedule: "16x2,32", Iterations: 3, Manager: "superneurons"},
		{Network: "AlexNet", Batch: 1024}, // deterministically rejected
	}
	submit := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			req := nets[i%len(nets)]
			req.Tenant = fmt.Sprintf("t%d", i%5)
			if _, err := s.Submit(req); err != nil {
				t.Fatal(err)
			}
		}
	}
	submit(12)
	s.Advance(0)

	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	submit(7)
	s.Advance(0)
	final, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}

	cs, err := RestoreCheckpoint(ckpt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Seq != 12 || cs.SpacingMS != 1 {
		t.Fatalf("checkpoint covers seq %d spacing %d, want 12 and 1", cs.Seq, cs.SpacingMS)
	}
	trace, err := workload.ParseTrace(strings.NewReader(s.ReplayLog()))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := cs.Resume(sched.JobsFromTrace(trace[cs.Seq:]))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, final) {
		t.Fatalf("checkpoint-resumed result diverges from full replay:\ngot  %+v\nwant %+v", resumed, final)
	}
	if fmt.Sprintf("%+v", resumed) != fmt.Sprintf("%+v", final) {
		t.Fatal("rendered results differ")
	}
}

func TestCheckpointDisabledAndMalformed(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	if _, err := s.Checkpoint(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("checkpoint without compaction: %v, want ErrNoCheckpoint", err)
	}

	sc := mustNew(t, Config{Manual: true, SnapshotEvery: 1})
	if _, err := sc.Submit(small("t", "a")); err != nil {
		t.Fatal(err)
	}
	sc.Advance(0)
	good, err := sc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCheckpoint(good, nil); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	bad := map[string][]byte{
		"empty":        nil,
		"bad magic":    []byte("snckpt 99\nseq 0 1\nsched 0\nend\n"),
		"no seq":       []byte("snckpt 1\n"),
		"neg seq":      []byte("snckpt 1\nseq -1 1\nsched 0\nend\n"),
		"zero spacing": []byte("snckpt 1\nseq 0 0\nsched 0\nend\n"),
		"short body":   []byte("snckpt 1\nseq 0 1\nsched 999\nxx"),
		"truncated":    good[:len(good)-6],
		"junk payload": []byte("snckpt 1\nseq 0 1\nsched 4\njunkend\n"),
		"seq mismatch": bytes.Replace(good, []byte("seq 1 "), []byte("seq 2 "), 1),
	}
	for name, data := range bad {
		if _, err := RestoreCheckpoint(data, nil); err == nil {
			t.Errorf("%s: malformed checkpoint accepted", name)
		}
	}
}

// FuzzRestoreCheckpoint asserts the checkpoint framing and snapshot
// decoders never panic and never accept a frame whose declared seq
// disagrees with the embedded replay state. Resume liveness is NOT
// asserted here: a syntactically valid mutant may encode astronomical
// remaining work (e.g. 2^50 iterations) that the simulator would
// faithfully — and slowly — execute; semantic equivalence of resumed
// replays is covered deterministically by
// TestCheckpointResumeEqualsFullReplay.
func FuzzRestoreCheckpoint(f *testing.F) {
	s, err := New(Config{Cluster: testCluster(), Manual: true, SnapshotEvery: 2})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(small(fmt.Sprintf("t%d", i%2), fmt.Sprintf("j%d", i))); err != nil {
			f.Fatal(err)
		}
	}
	s.Advance(0)
	good, err := s.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("snckpt 1\nseq 0 1\nsched 0\nend\n"))
	f.Add([]byte("snckpt 1\nseq 3 5\nsched 10\n0123456789end\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cs, err := RestoreCheckpoint(data, nil)
		if err != nil {
			return
		}
		if cs.Replay == nil || cs.Replay.Len() != cs.Seq {
			t.Fatalf("accepted checkpoint has %v jobs for declared seq %d", cs.Replay, cs.Seq)
		}
	})
}

// TestGovernorShedAndRecover drives the latency window directly
// through both transitions.
func TestGovernorShedAndRecover(t *testing.T) {
	g := newGovernor(10*time.Millisecond, slog.New(slog.NewTextHandler(io.Discard, nil)))
	for i := 0; i < governorWindow; i++ {
		g.observe(time.Millisecond)
	}
	if g.shedding() {
		t.Fatal("governor shed under a healthy p99")
	}
	for i := 0; i < governorWindow; i++ {
		g.observe(100 * time.Millisecond)
	}
	if !g.shedding() {
		t.Fatal("governor did not shed with p99 10x over the SLO")
	}
	// Fast (shed-path) samples refill the window; hysteresis clears.
	for i := 0; i < 2*governorWindow; i++ {
		g.observe(time.Millisecond)
	}
	if g.shedding() {
		t.Fatal("governor never recovered after the window drained")
	}
}

// TestServiceShedsUnderSLO: with an impossible SLO the service starts
// refusing work with ErrOverloaded and a retry hint.
func TestServiceShedsUnderSLO(t *testing.T) {
	s := mustNew(t, Config{Manual: true, SLOTargetP99: time.Nanosecond, QueueDepth: 1 << 16})
	var overloaded error
	for i := 0; i < 4*governorWindow; i++ {
		_, err := s.Submit(small("t", fmt.Sprintf("j%d", i)))
		if err != nil {
			overloaded = err
			break
		}
	}
	if !errors.Is(overloaded, ErrOverloaded) {
		t.Fatalf("service never shed under a 1ns SLO: %v", overloaded)
	}
	var re *RetryableError
	if !errors.As(overloaded, &re) || re.RetryAfter <= 0 {
		t.Fatalf("shed error carries no retry hint: %v", overloaded)
	}
	if m, err := s.Metrics(); err != nil || !m.Shedding {
		t.Errorf("metrics shedding = %v (err %v), want true", m != nil && m.Shedding, err)
	}
}

// BenchmarkServeStatusAfterN measures one marginal
// submit+sequence+status round at history length n. With compaction
// off every status replays the whole log (linear in n); with
// SnapshotEvery set the replay resumes from the watermark and the cost
// stays flat. Arrivals are spaced a virtual minute apart so the
// simulated cluster keeps up with the log — compaction can only
// finalize work the cluster has virtually completed, so a permanently
// backlogged trace would keep the suffix growing no matter the
// watermark.
func BenchmarkServeStatusAfterN(b *testing.B) {
	for _, n := range []int{512, 2048, 8192} {
		for _, every := range []int{0, 64} {
			mode := "off"
			if every > 0 {
				mode = "on"
			}
			b.Run(fmt.Sprintf("history=%d/snapshot=%s", n, mode), func(b *testing.B) {
				s, err := New(Config{Cluster: testCluster(), Manual: true, QueueDepth: 1 << 20, SnapshotEvery: every, SpacingMS: 60_000})
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if _, err := s.Submit(small("t", fmt.Sprintf("h%d", i))); err != nil {
						b.Fatal(err)
					}
				}
				s.Advance(0)
				if _, err := s.Status("t/h0"); err != nil { // warm the replay memo
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id := fmt.Sprintf("t/x%d", i)
					if _, err := s.Submit(SubmitRequest{Tenant: "t", ID: fmt.Sprintf("x%d", i), Network: "AlexNet", Batch: 16}); err != nil {
						b.Fatal(err)
					}
					s.Advance(1)
					if _, err := s.Status(id); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
