// Package serve is the long-running job-submission service over the
// multi-tenant cluster scheduler: the piece that turns the batch-replay
// evaluation harness (internal/sched, cmd/snsched) into a system that
// accepts training-job requests concurrently, the way the paper's
// runtime is meant to be consumed by a fleet of users.
//
// The design splits the service into a concurrent edge and a
// deterministic core:
//
//   - Concurrency at the edge. Submit may be called from any number of
//     goroutines (the HTTP handlers do). Tenants are partitioned onto
//     shards; each shard owns a bounded set of per-tenant admission
//     queues and its own sequencer, so shards admit traffic in
//     parallel without sharing a lock. Within a shard no tenant can
//     starve the others (round-robin fairness) and no tenant can
//     exceed its lifetime quota.
//   - Determinism at the core. Each shard's sequencer emits
//     (shard, local-seq) records stamped with globally claimed slot
//     numbers; the merger flushes records into the request log in
//     ascending slot order — a pure function of the sequence numbers,
//     never wall clock. The i-th merged job gets the deterministic
//     virtual arrival i·spacing ms, so the merged log is exactly a
//     workload trace (workload.FormatTrace bytes). Everything the
//     service reports — job status, cluster metrics, the drain
//     summary — is a pure function of that log, computed by replaying
//     it through the same sched machinery cmd/snsched uses.
//     Re-running a day of logged traffic therefore reproduces every
//     per-job result byte-identically, whatever the shard count was.
//
// Replay cost does not grow with history: with SnapshotEvery set, the
// merger feeds a resumable sched.Incremental whose watermark advances
// as the log grows, so a status or metrics query only replays the
// active suffix (and a finalized job's status is O(1)). The paused
// replay also serializes (Checkpoint), giving crash-recoverable log
// compaction: restore the checkpoint, append the log suffix, and the
// result equals a full replay byte for byte.
//
// Because the cluster runs in virtual time, a "status" query returns
// the projected schedule of the job given the traffic admitted so far;
// later arrivals may still preempt it (exactly as in the batch
// replay), and the drain summary is the final word.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultQueueDepth bounds each shard's admission queue when Config
// leaves it 0.
const DefaultQueueDepth = 256

// DefaultIdempotencyCap bounds the idempotency dedup index when Config
// leaves it 0: the service remembers the most recent this-many keys.
const DefaultIdempotencyCap = 4096

// Sentinel errors of the submission path; the HTTP layer maps each to
// a status code.
var (
	// ErrQueueFull: the shard's bounded admission queue is at capacity.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrQuota: the tenant used up its lifetime job quota.
	ErrQuota = errors.New("serve: tenant quota exhausted")
	// ErrDraining: the service no longer accepts jobs.
	ErrDraining = errors.New("serve: service is draining")
	// ErrDuplicateID: the (tenant, id) pair was already submitted.
	ErrDuplicateID = errors.New("serve: duplicate job id")
	// ErrBadRequest: the request is malformed (unknown network, bad
	// batch/schedule, unknown manager, illegal characters).
	ErrBadRequest = errors.New("serve: invalid request")
	// ErrUnknownJob: no job with that id.
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrOverloaded: the admission governor is shedding load because
	// measured submit latency exceeds the configured SLO.
	ErrOverloaded = errors.New("serve: service overloaded")
)

// RetryableError wraps a backpressure sentinel (ErrQueueFull,
// ErrOverloaded) with a retry hint; the HTTP layer surfaces it as a
// Retry-After header. errors.Is still matches the wrapped sentinel.
type RetryableError struct {
	Err        error
	RetryAfter time.Duration
}

func (e *RetryableError) Error() string { return e.Err.Error() }
func (e *RetryableError) Unwrap() error { return e.Err }

// Config parameterizes a Service.
type Config struct {
	// Cluster is the simulated GPU pool jobs are scheduled onto.
	Cluster sched.Cluster
	// Policy is the scheduler policy (default sched.Packing).
	Policy sched.Policy
	// Shards partitions tenants across independent sequencers
	// (default 1). All of a tenant's jobs land on one shard, so
	// per-tenant fairness and FIFO submission order are preserved;
	// the shard count never changes the log format or the replay.
	Shards int
	// QueueDepth bounds each shard's admission queue: the number of
	// accepted-but-not-yet-sequenced jobs a shard holds. Submit fails
	// with ErrQueueFull beyond it. 0 means DefaultQueueDepth.
	QueueDepth int
	// TenantQuota caps the number of jobs one tenant may submit over
	// the service lifetime; 0 means unlimited.
	TenantQuota int
	// SpacingMS is the virtual arrival gap between consecutively
	// merged jobs (default 1 ms): the i-th job in the request log
	// arrives at i·SpacingMS.
	SpacingMS int64
	// SnapshotEvery enables log compaction: every SnapshotEvery merged
	// jobs the service advances its resumable replay's watermark, so
	// queries replay only the suffix since the last advance instead of
	// the whole history, and finalized job statuses are O(1). 0
	// disables compaction (every query replays the full log — the
	// original behavior, linear in history).
	SnapshotEvery int
	// SLOTargetP99, when positive, arms the admission governor: the
	// service tracks its own submit latency, and when the windowed p99
	// exceeds the target it sheds load (ErrOverloaded) until the p99
	// recovers below 80% of the target.
	SLOTargetP99 time.Duration
	// RequestLog, when non-nil, receives the deterministic request log
	// incrementally: the workload trace header at construction, then
	// one trace line per merged job. The accumulated bytes are at
	// every instant a valid workload trace equal to ReplayLog().
	RequestLog io.Writer
	// WALDir, when non-empty, arms the durability layer: every merged
	// job is appended to a segmented write-ahead log under this
	// directory before submitters are acked, and New recovers whatever
	// the directory already holds (truncating a torn tail) so a
	// restarted service resumes with the identical merged log. With a
	// WAL attached (and Manual unset) Submit blocks until the job is
	// sequenced — and, under the on-ack sync policy, durable — and
	// returns the sequenced status instead of StateQueued.
	WALDir string
	// SyncEvery sets the WAL fsync policy: <= 1 fsyncs before every ack
	// (an acked submission survives kill -9); N > 1 fsyncs every N
	// records, trading a bounded loss window (at most N-1 acked-but-
	// unsynced records) for fewer fsyncs.
	SyncEvery int
	// SegmentBytes rotates WAL segments past this size (default
	// DefaultSegmentBytes).
	SegmentBytes int64
	// IdempotencyCap bounds the dedup index of remembered
	// IdempotencyKeys (default DefaultIdempotencyCap). The oldest key
	// is evicted first; an evicted key no longer dedupes.
	IdempotencyCap int
	// Logger receives structured service events (admissions, sequencing,
	// watermark advances, shedding); nil discards them. Per-job events
	// log at Debug, lifecycle transitions at Info/Warn.
	Logger *slog.Logger
	// Manual disables the background sequencer goroutines; callers
	// step admission explicitly with Advance (tests do, to observe
	// fairness deterministically).
	Manual bool
}

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// StateQueued: accepted into a shard's admission queue, not yet
	// merged into the request log.
	StateQueued JobState = "queued"
	// StateScheduled: sequenced and placed by the scheduler; Result
	// holds the projected schedule.
	StateScheduled JobState = "scheduled"
	// StateRejected: sequenced but rejected by admission control (the
	// job cannot fit any device).
	StateRejected JobState = "rejected"
)

// SubmitRequest is one training-job submission.
type SubmitRequest struct {
	// Tenant namespaces the job; empty means "anon". Tenants share the
	// cluster under the round-robin fairness and quota rules.
	Tenant string `json:"tenant,omitempty"`
	// ID names the job within the tenant; empty auto-assigns one. The
	// full job id is "tenant/id".
	ID string `json:"id,omitempty"`
	// Network and Batch select the model shape (see
	// superneurons.Networks).
	Network string `json:"network"`
	Batch   int    `json:"batch,omitempty"`
	// Schedule, when non-empty, declares a dynamic per-iteration batch
	// schedule in the compact trace syntax ("16x2,32"); it overrides
	// Batch.
	Schedule string `json:"schedule,omitempty"`
	// Manager names the memory manager (empty: the default).
	Manager string `json:"manager,omitempty"`
	// Priority orders jobs under the priority policy.
	Priority int `json:"priority,omitempty"`
	// Iterations is the training length (default 1).
	Iterations int `json:"iterations,omitempty"`
	// IdempotencyKey, when non-empty, makes the submission retry-safe:
	// a later submit carrying the same key returns the original job's
	// status (Deduped set) instead of sequencing a new job. With a WAL
	// attached the binding survives a crash, so a retry after a lost
	// ack can never double-sequence. Keys share the request-log token
	// alphabet (no whitespace or '#') and live in a bounded index; see
	// Config.IdempotencyCap.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// JobStatus is the service's view of one job.
type JobStatus struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	// Shard is the sequencer shard the tenant maps to.
	Shard int `json:"shard"`
	// QueuePosition is the 1-based position in the tenant's admission
	// queue while queued.
	QueuePosition int `json:"queue_position,omitempty"`
	// Seq is the position in the request log once sequenced (-1 while
	// queued); ArrivalMS is the deterministic virtual arrival.
	Seq       int   `json:"seq"`
	ArrivalMS int64 `json:"arrival_ms"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
	// Durable reports that the job's WAL record is covered by an fsync
	// (always false without a WAL).
	Durable bool `json:"durable,omitempty"`
	// Deduped marks a submit response that resolved to a previously
	// submitted job via its IdempotencyKey.
	Deduped bool `json:"deduped,omitempty"`
	// Result is the projected schedule of a sequenced job, replayed
	// from the request log.
	Result *sched.JobResult `json:"result,omitempty"`
}

// TenantStat aggregates one tenant in Metrics.
type TenantStat struct {
	// Accepted is the lifetime count (queued + sequenced) the quota
	// applies to.
	Accepted  int `json:"accepted"`
	Queued    int `json:"queued"`
	Sequenced int `json:"sequenced"`
}

// ShardStat aggregates one sequencer shard in Metrics.
type ShardStat struct {
	Tenants   int `json:"tenants"`
	Queued    int `json:"queued"`
	Sequenced int `json:"sequenced"`
}

// Metrics is a point-in-time cluster snapshot, computed by replaying
// the current request log.
type Metrics struct {
	Policy   string `json:"policy"`
	Device   string `json:"device"`
	Devices  int    `json:"devices"`
	Capacity int64  `json:"capacity_bytes"`

	JobsAccepted  int  `json:"jobs_accepted"`
	JobsQueued    int  `json:"jobs_queued"`
	JobsSequenced int  `json:"jobs_sequenced"`
	JobsRejected  int  `json:"jobs_rejected"`
	Draining      bool `json:"draining"`
	// Shedding reports whether the admission governor is currently
	// rejecting load to protect the SLO.
	Shedding bool `json:"shedding,omitempty"`
	// SnapshotSeq is the log position of the replay watermark: queries
	// replay only jobs at or after it. 0 with compaction disabled.
	SnapshotSeq int `json:"snapshot_seq,omitempty"`
	// EstimatedShapes counts memoized dry-run shapes in the admission
	// estimator.
	EstimatedShapes int                   `json:"estimated_shapes"`
	Tenants         map[string]TenantStat `json:"tenants"`
	Shards          []ShardStat           `json:"shards,omitempty"`

	Makespan           sim.Duration       `json:"makespan_ns"`
	MeanJCT            sim.Duration       `json:"mean_jct_ns"`
	MeanWait           sim.Duration       `json:"mean_wait_ns"`
	Utilization        float64            `json:"utilization"`
	ComputeUtilization float64            `json:"compute_utilization"`
	DeviceStats        []sched.DeviceStat `json:"device_stats"`
}

// job is the service's record of one submission.
type job struct {
	tj     workload.TraceJob
	tenant string
	key    string // idempotency key, "" when the client sent none
	shard  int
	sub    int // global submission order
	seq    int // request-log position; -1 while queued (guarded by Service.mu)
	local  int // per-shard sequence number, assigned when popped
}

// Service is a concurrent job-submission front-end over one
// deterministic cluster scheduler. All methods are safe for concurrent
// use.
//
// Lock order: shard.mu before Service.mu, never the reverse. A shard
// claims slots and hands records to the merger while holding its own
// lock, so a drained shard queue means every one of its claimed slots
// has reached the merger.
type Service struct {
	cfg    Config
	sch    *sched.Scheduler
	shards []*shard
	gov    *governor
	lg     *slog.Logger
	lgDbg  bool // Debug level enabled (checked once; gates hot-path logging)

	// slots hands out dense global sequence slots; the merger flushes
	// them in ascending order.
	slots atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	byID    map[string]*job
	count   map[string]int // lifetime accepted per tenant
	queued  map[string]int // currently queued per tenant
	tenants []string       // tenants in first-seen order
	pending int            // total queued across shards
	subs    int            // global submission counter
	reorder recordHeap     // merged-but-not-yet-dense records
	log     []workload.TraceJob
	byShard []shardTally
	logErr  error

	// Durability (Config.WALDir). wal is the append handle; durable is
	// the job-record count covered by the last fsync; walErr latches
	// the first append/sync failure (once set, acks stop). rec is the
	// state New recovered at start, nil without a WAL.
	wal     *wal
	durable int
	walErr  error
	rec     *RecoveredLog

	// Idempotency dedup index: key -> job, bounded FIFO (idemOrder is
	// insertion order; the front evicts first).
	idem      map[string]*job
	idemOrder []string

	// inc is the resumable replay (SnapshotEvery > 0); lastAdv is the
	// log length at its last watermark advance.
	inc     *sched.Incremental
	lastAdv int
	incErr  error

	draining bool
	stopped  bool
	drainCh  chan struct{}

	// result memo: the replay of log[:resN].
	resN   int
	resOK  bool
	res    *sched.Result
	resErr error
}

// shardTally is the merger-side per-shard bookkeeping (guarded by
// Service.mu): the shard's slice of the merged log, for the sectioned
// export.
type shardTally struct {
	sequenced int
	log       []workload.TraceJob
}

// New constructs a Service and, unless cfg.Manual is set, starts one
// sequencer goroutine per shard. The request-log header is written
// immediately so the log sink is a valid (empty) workload trace from
// the start.
func New(cfg Config) (*Service, error) {
	if cfg.Policy.Name == "" {
		cfg.Policy = sched.Packing
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.SpacingMS <= 0 {
		cfg.SpacingMS = 1
	}
	sch, err := sched.NewScheduler(cfg.Cluster, cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.IdempotencyCap <= 0 {
		cfg.IdempotencyCap = DefaultIdempotencyCap
	}
	s := &Service{
		cfg:     cfg,
		sch:     sch,
		byID:    make(map[string]*job),
		count:   make(map[string]int),
		queued:  make(map[string]int),
		idem:    make(map[string]*job),
		byShard: make([]shardTally, cfg.Shards),
		drainCh: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Logger != nil {
		s.lg = cfg.Logger
	} else {
		s.lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.lgDbg = s.lg.Enabled(context.Background(), slog.LevelDebug)
	if cfg.SnapshotEvery > 0 {
		inc, err := sched.NewIncremental(cfg.Cluster, cfg.Policy, sch.Estimator())
		if err != nil {
			return nil, err
		}
		s.inc = inc
	}
	if cfg.SLOTargetP99 > 0 {
		s.gov = newGovernor(cfg.SLOTargetP99, s.lg)
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(i)
	}
	s.logWrite(workload.TraceHeader)
	if cfg.WALDir != "" {
		if err := s.attachWAL(); err != nil {
			return nil, err
		}
	}
	if !cfg.Manual {
		for _, sh := range s.shards {
			go s.shardLoop(sh)
		}
	}
	s.lg.Info("service up", "shards", cfg.Shards, "queue_depth", cfg.QueueDepth,
		"snapshot_every", cfg.SnapshotEvery, "policy", cfg.Policy.Name)
	return s, nil
}

// attachWAL opens (and recovers) the write-ahead log and seeds the
// service with the recovered prefix: the merged log, per-shard and
// per-tenant tallies, the slot counter, and the surviving idempotency
// bindings, exactly as if the recovered jobs had just been sequenced.
// Runs from New, before any concurrency, so no locks are needed.
func (s *Service) attachWAL() error {
	w, rec, err := openWAL(s.cfg.WALDir, s.cfg.SpacingMS, s.cfg.SegmentBytes, s.cfg.SyncEvery)
	if err != nil {
		return err
	}
	s.wal, s.rec = w, rec
	s.durable = len(rec.Jobs)
	for i, tj := range rec.Jobs {
		tenant := tj.ID
		if cut := strings.IndexByte(tenant, '/'); cut >= 0 {
			tenant = tenant[:cut]
		}
		sh := s.shardOf(tenant)
		j := &job{tj: tj, tenant: tenant, shard: sh.idx, sub: i, seq: i, local: sh.local}
		sh.local++
		if s.count[tenant] == 0 {
			s.tenants = append(s.tenants, tenant)
		}
		s.count[tenant]++
		s.subs++
		s.byID[tj.ID] = j
		s.log = append(s.log, tj)
		ty := &s.byShard[sh.idx]
		ty.sequenced++
		ty.log = append(ty.log, tj)
		s.logWrite(workload.FormatJob(tj))
		if s.inc != nil && s.incErr == nil {
			if _, err := s.inc.Append(sched.JobFromTrace(tj)); err != nil {
				s.incErr = err
				s.lg.Error("incremental replay append failed on recovery", "id", tj.ID, "err", err)
			}
		}
	}
	// Rebind the surviving idempotency keys, newest-first wins the
	// bounded index (the recovered list is in log order).
	idem := rec.Idem
	if len(idem) > s.cfg.IdempotencyCap {
		idem = idem[len(idem)-s.cfg.IdempotencyCap:]
	}
	for _, e := range idem {
		if j, ok := s.byID[e.ID]; ok {
			j.key = e.Key
			s.idem[e.Key] = j
			s.idemOrder = append(s.idemOrder, e.Key)
		}
	}
	s.slots.Store(int64(len(rec.Jobs)))
	s.advanceWatermarkLocked()
	if rec.Torn != nil {
		s.lg.Warn("wal recovered with torn tail", "jobs", len(rec.Jobs),
			"segment", rec.Torn.Segment, "offset", rec.Torn.Offset, "reason", rec.Torn.Reason)
	} else if len(rec.Jobs) > 0 {
		s.lg.Info("wal recovered", "jobs", len(rec.Jobs), "segments", rec.Segments)
	}
	return nil
}

// Recovered reports the WAL state New restored at start: nil without a
// WAL, otherwise the recovered prefix (possibly empty) including any
// torn-tail diagnosis.
func (s *Service) Recovered() *RecoveredLog { return s.rec }

// shardOf maps a tenant to its shard: a stable hash, so a tenant's
// jobs always share one queue and keep their FIFO submission order.
func (s *Service) shardOf(tenant string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := fnv.New32a()
	_, _ = io.WriteString(h, tenant)
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// logWrite appends to the request-log sink, recording the first error.
// Callers hold s.mu (except New).
func (s *Service) logWrite(line string) {
	if s.cfg.RequestLog == nil || s.logErr != nil {
		return
	}
	if _, err := io.WriteString(s.cfg.RequestLog, line); err != nil {
		s.logErr = fmt.Errorf("serve: request log: %w", err)
		s.lg.Error("request log write failed", "err", err)
	}
}

// Submit validates and enqueues one job on its tenant's shard. The
// dry-run validation runs outside every lock (the estimator memoizes
// concurrently), so submissions of known shapes are cheap and
// parallel. The returned status is StateQueued; rejection by the
// cluster's memory admission happens deterministically after
// sequencing and shows up in Status.
func (s *Service) Submit(req SubmitRequest) (*JobStatus, error) {
	var t0 time.Time
	if s.gov != nil {
		t0 = time.Now()
		if s.gov.shedding() {
			err := &RetryableError{Err: ErrOverloaded, RetryAfter: time.Second}
			s.gov.observe(time.Since(t0))
			return nil, err
		}
	}
	st, j, err := s.submit(req)
	if err == nil && s.wal != nil && !s.cfg.Manual {
		// Durable-synchronous ack: with a WAL attached, an accepted job
		// is always eventually sequenced (Drain flushes every shard
		// before stopping), so block until it is — and, under the
		// on-ack sync policy, until the fsync covering it has run —
		// then return the sequenced status. Manual mode cannot block:
		// the caller is the one who must step Advance.
		st, err = s.awaitDurable(j, st.Deduped)
	}
	if s.gov != nil {
		s.gov.observe(time.Since(t0))
	}
	return st, err
}

// awaitDurable blocks until j is sequenced (and durable, in on-ack
// mode) and returns its sequenced status. A latched WAL failure turns
// into an error: the service can no longer promise the ack survives.
func (s *Service) awaitDurable(j *job, deduped bool) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for j.seq < 0 && !s.stopped && s.walErr == nil {
		s.cond.Wait()
	}
	if s.cfg.SyncEvery <= 1 {
		for j.seq >= 0 && s.durable <= j.seq && !s.stopped && s.walErr == nil {
			s.cond.Wait()
		}
	}
	if s.walErr != nil {
		return nil, s.walErr
	}
	if j.seq < 0 {
		// Only reachable if the service stopped without sequencing —
		// which Drain's flush rules out; be defensive anyway.
		return nil, ErrDraining
	}
	st := s.sequencedStatusLocked(j)
	st.Deduped = deduped
	return st, nil
}

func (s *Service) submit(req SubmitRequest) (*JobStatus, *job, error) {
	tj, tenant, err := s.validate(req)
	if err != nil {
		return nil, nil, err
	}
	sh := s.shardOf(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.mu.Lock()
	// Idempotent replay resolves before every other admission rule —
	// including draining: a retry of an already-accepted submission is
	// not new load, and must keep returning the original ack.
	if req.IdempotencyKey != "" {
		if j, ok := s.idem[req.IdempotencyKey]; ok {
			defer s.mu.Unlock()
			var st *JobStatus
			if j.seq >= 0 {
				st = s.sequencedStatusLocked(j)
			} else {
				st = &JobStatus{ID: j.tj.ID, Tenant: j.tenant, State: StateQueued, Shard: j.shard, Seq: -1}
			}
			st.Deduped = true
			return st, j, nil
		}
	}
	if s.draining {
		s.mu.Unlock()
		return nil, nil, ErrDraining
	}
	if tj.ID == "" {
		// Auto ids must dodge user-chosen ones: a request that supplied
		// no id can never fail as a duplicate.
		for i := s.subs; ; i++ {
			cand := fmt.Sprintf("%s/j%d", tenant, i)
			if _, taken := s.byID[cand]; !taken {
				tj.ID = cand
				break
			}
		}
	}
	if _, dup := s.byID[tj.ID]; dup {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s", ErrDuplicateID, tj.ID)
	}
	if q := s.cfg.TenantQuota; q > 0 && s.count[tenant] >= q {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: tenant %s at %d jobs", ErrQuota, tenant, q)
	}
	if sh.pending >= s.cfg.QueueDepth {
		s.mu.Unlock()
		// The shard depth watermark: the retry hint scales with how
		// loaded the shard is, so clients back off harder the deeper
		// the backlog.
		hint := time.Second * time.Duration(1+2*sh.pending/s.cfg.QueueDepth)
		return nil, nil, &RetryableError{
			Err:        fmt.Errorf("%w: shard %d at %d pending", ErrQueueFull, sh.idx, sh.pending),
			RetryAfter: hint,
		}
	}
	j := &job{tj: tj, tenant: tenant, key: req.IdempotencyKey, shard: sh.idx, sub: s.subs, seq: -1}
	s.subs++
	if s.count[tenant] == 0 {
		s.tenants = append(s.tenants, tenant)
	}
	s.count[tenant]++
	s.queued[tenant]++
	s.pending++
	s.byID[tj.ID] = j
	if j.key != "" {
		s.idem[j.key] = j
		s.idemOrder = append(s.idemOrder, j.key)
		for len(s.idemOrder) > s.cfg.IdempotencyCap {
			delete(s.idem, s.idemOrder[0])
			s.idemOrder = s.idemOrder[1:]
		}
	}
	s.mu.Unlock()

	pos := sh.enqueue(tenant, j)
	if s.lgDbg {
		s.lg.Debug("job accepted", "tenant", tenant, "shard", sh.idx, "id", tj.ID, "queue_pos", pos)
	}
	return &JobStatus{
		ID: tj.ID, Tenant: tenant, State: StateQueued, Shard: sh.idx,
		QueuePosition: pos, Seq: -1,
	}, j, nil
}

// validate checks the request shape and dry-runs every distinct batch
// so malformed submissions (unknown network or manager, bad schedule)
// are refused before they can poison the deterministic log. An
// out-of-memory dry run is NOT a validation error: the job is logged
// and rejected deterministically by the scheduler, exactly as in a
// trace replay.
func (s *Service) validate(req SubmitRequest) (workload.TraceJob, string, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	if err := checkToken("tenant", tenant); err != nil {
		return workload.TraceJob{}, "", err
	}
	if strings.Contains(tenant, "/") {
		return workload.TraceJob{}, "", fmt.Errorf("%w: tenant %q must not contain '/'", ErrBadRequest, tenant)
	}
	if req.IdempotencyKey != "" {
		// Keys land in WAL directive lines, so they share the log's
		// token alphabet.
		if err := checkToken("idempotency_key", req.IdempotencyKey); err != nil {
			return workload.TraceJob{}, "", err
		}
	}
	var tj workload.TraceJob
	if req.ID != "" {
		if err := checkToken("id", req.ID); err != nil {
			return workload.TraceJob{}, "", err
		}
		tj.ID = tenant + "/" + req.ID
	}
	if req.Network == "" {
		return workload.TraceJob{}, "", fmt.Errorf("%w: network is required", ErrBadRequest)
	}
	tj.Network = req.Network
	tj.Manager = req.Manager
	tj.Priority = req.Priority
	tj.Iterations = req.Iterations
	if tj.Iterations <= 0 {
		tj.Iterations = 1
	}

	batches := []int{req.Batch}
	if req.Schedule != "" {
		sc, err := workload.ParseSchedule(req.Schedule)
		if err != nil {
			return workload.TraceJob{}, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		tj.Batch = sc.Max()
		if len(sc) > 1 {
			tj.BatchSchedule = sc
		}
		batches = sc.Distinct()
	} else {
		if req.Batch <= 0 {
			return workload.TraceJob{}, "", fmt.Errorf("%w: batch must be positive, got %d", ErrBadRequest, req.Batch)
		}
		tj.Batch = req.Batch
	}
	for _, b := range batches {
		_, err := s.sch.Estimator().Estimate(tj.Network, b, tj.Manager, s.cfg.Cluster.Device)
		if err != nil && !errors.Is(err, core.ErrOutOfMemory) {
			return workload.TraceJob{}, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	return tj, tenant, nil
}

// checkToken refuses characters that would corrupt the
// whitespace-separated request log.
func checkToken(field, v string) error {
	if strings.ContainsAny(v, " \t\n\r#") {
		return fmt.Errorf("%w: %s %q must not contain whitespace or '#'", ErrBadRequest, field, v)
	}
	return nil
}

// Advance sequences up to max pending jobs (all of them when max <= 0)
// across the shards in index order and returns how many were
// sequenced. Only useful with Config.Manual; the background sequencers
// run the same code.
func (s *Service) Advance(max int) int {
	n := 0
	for _, sh := range s.shards {
		if max > 0 && n >= max {
			break
		}
		m := 0
		if max > 0 {
			m = max - n
		}
		sh.mu.Lock()
		n += s.sequenceLocked(sh, m)
		sh.mu.Unlock()
	}
	return n
}

// shardLoop is one shard's background sequencer.
func (s *Service) shardLoop(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		for sh.pending == 0 && !sh.stopped {
			sh.cond.Wait()
		}
		if sh.stopped {
			return
		}
		s.sequenceLocked(sh, 0)
	}
}

// Status returns one job's current status.
func (s *Service) Status(id string) (*JobStatus, error) {
	s.mu.Lock()
	j, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.seq >= 0 {
		defer s.mu.Unlock()
		return s.sequencedStatusLocked(j), nil
	}
	s.mu.Unlock()

	// Still queued: the position lives behind the shard's lock, which
	// must be taken before (never while holding) s.mu.
	sh := s.shards[j.shard]
	sh.mu.Lock()
	pos := sh.position(j)
	sh.mu.Unlock()
	if pos > 0 {
		return &JobStatus{
			ID: j.tj.ID, Tenant: j.tenant, State: StateQueued, Shard: j.shard,
			QueuePosition: pos, Seq: -1,
		}, nil
	}
	// Sequenced between the two looks (or in the merge buffer).
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.seq >= 0 {
		return s.sequencedStatusLocked(j), nil
	}
	return &JobStatus{ID: j.tj.ID, Tenant: j.tenant, State: StateQueued, Shard: j.shard, Seq: -1}, nil
}

// Jobs returns every submitted job's status in submission order.
func (s *Service) Jobs() ([]*JobStatus, error) {
	s.mu.Lock()
	all := make([]*job, 0, len(s.byID))
	for _, j := range s.byID {
		all = append(all, j)
	}
	// Submission order is the deterministic listing order.
	sort.Slice(all, func(i, k int) bool { return all[i].sub < all[k].sub })
	out := make([]*JobStatus, len(all))
	var queuedIdx []int
	for i, j := range all {
		if j.seq >= 0 {
			out[i] = s.sequencedStatusLocked(j)
		} else {
			out[i] = &JobStatus{ID: j.tj.ID, Tenant: j.tenant, State: StateQueued, Shard: j.shard, Seq: -1}
			queuedIdx = append(queuedIdx, i)
		}
	}
	s.mu.Unlock()
	// Fill queue positions shard by shard, outside s.mu (lock order).
	for _, i := range queuedIdx {
		j := all[i]
		sh := s.shards[j.shard]
		sh.mu.Lock()
		out[i].QueuePosition = sh.position(j)
		sh.mu.Unlock()
	}
	return out, nil
}

// Metrics returns the current cluster snapshot.
func (s *Service) Metrics() (*Metrics, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &Metrics{
		Policy:          s.cfg.Policy.Name,
		Device:          s.cfg.Cluster.Device.Name,
		Devices:         s.cfg.Cluster.Devices,
		Capacity:        s.cfg.Cluster.Capacity(),
		JobsQueued:      s.pending,
		JobsSequenced:   len(s.log),
		Draining:        s.draining,
		Shedding:        s.gov != nil && s.gov.shedding(),
		SnapshotSeq:     s.lastAdv,
		EstimatedShapes: s.sch.Estimator().Len(),
		Tenants:         make(map[string]TenantStat, len(s.tenants)),
	}
	m.JobsAccepted = m.JobsQueued + m.JobsSequenced
	for _, t := range s.tenants {
		st := TenantStat{Accepted: s.count[t], Queued: s.queued[t]}
		st.Sequenced = st.Accepted - st.Queued
		m.Tenants[t] = st
	}
	if len(s.shards) > 1 {
		m.Shards = make([]ShardStat, len(s.shards))
		for i := range s.byShard {
			m.Shards[i].Sequenced = s.byShard[i].sequenced
		}
		for _, t := range s.tenants {
			i := s.shardOf(t).idx
			m.Shards[i].Tenants++
			m.Shards[i].Queued += s.queued[t]
		}
	}
	snap, err := s.resultLocked()
	if err != nil {
		return nil, err
	}
	for _, j := range snap.Jobs {
		if j.Rejected {
			m.JobsRejected++
		}
	}
	m.Makespan = snap.Makespan
	m.MeanJCT = snap.MeanJCT()
	m.MeanWait = snap.MeanWait()
	m.Utilization = snap.Utilization
	m.ComputeUtilization = snap.ComputeUtilization
	m.DeviceStats = snap.Devices
	return m, nil
}

// WaitSequenced blocks until at least n jobs have been sequenced into
// the request log, or the timeout elapses, and returns the sequenced
// count. It is the long-poll primitive behind the metrics endpoint.
func (s *Service) WaitSequenced(n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.log) < n && !s.stopped {
		left := time.Until(deadline)
		if left <= 0 {
			break
		}
		// The timer must broadcast under the mutex: cond.Wait registers
		// the waiter while unlocking, so a locked broadcaster cannot
		// fire in the gap and lose the wakeup.
		t := time.AfterFunc(left, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		s.cond.Wait()
		t.Stop()
	}
	return len(s.log)
}

// Drain stops admission, sequences everything still queued on every
// shard, and returns the final schedule of the whole request log. It
// is idempotent; concurrent and later calls return the same result.
func (s *Service) Drain() (*sched.Result, error) {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		s.lg.Info("draining")
	}

	// Flush every shard. A shard's lock is held from pop through merge,
	// so once a shard is drained here none of its jobs are in flight.
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sequenceLocked(sh, 0)
		sh.stopped = true
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stopped {
		s.stopped = true
		s.cond.Broadcast()
		close(s.drainCh)
		s.lg.Info("drained", "jobs", len(s.log))
	}
	if s.wal != nil && s.walErr == nil {
		// Grouped sync mode may hold acked records below SyncEvery; a
		// drain is a durability point regardless of policy.
		if err := s.wal.sync(); err != nil {
			s.walErr = err
		} else {
			s.durable = len(s.log)
		}
	}
	r, err := s.resultLocked()
	if err == nil {
		err = s.logErr
	}
	if err == nil {
		err = s.walErr
	}
	return r, err
}

// Close releases the durability layer: a final fsync and close of the
// current WAL segment. Call after Drain (a drained service appends
// nothing more); the returned error is the first WAL failure of the
// service lifetime, so a daemon can surface it in its exit code. Safe
// without a WAL and safe to call twice.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		if err := s.wal.close(); err != nil && s.walErr == nil {
			s.walErr = err
		}
	}
	return s.walErr
}

// Drained is closed once Drain has run (e.g. via the HTTP API), so a
// daemon can exit after a remote drain.
func (s *Service) Drained() <-chan struct{} { return s.drainCh }

// ReplayLog returns the deterministic request log accumulated so far —
// a complete workload trace. Feeding it to workload.ParseTrace and
// sched.Scheduler.Run (or cmd/snsched -trace) reproduces every per-job
// result byte-identically.
func (s *Service) ReplayLog() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return workload.FormatTrace(s.log)
}

// ShardedReplayLog renders the request log as per-shard sections under
// "# shard N" directives (each shard's jobs in local sequencing order,
// with their merged arrival times). workload.ParseTrace namespaces the
// ids per section, so logs from different shards — or different
// services — can be concatenated without id collisions.
func (s *Service) ShardedReplayLog() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteString(workload.TraceHeader)
	for i := range s.byShard {
		fmt.Fprintf(&b, "# shard %d\n", i)
		for _, tj := range s.byShard[i].log {
			b.WriteString(workload.FormatJob(tj))
		}
	}
	return b.String()
}

// LogErr reports the first request-log write error, if any.
func (s *Service) LogErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logErr
}

// Cluster returns the configured cluster (for daemons' banners).
func (s *Service) Cluster() sched.Cluster { return s.cfg.Cluster }

// PolicyName returns the configured policy name.
func (s *Service) PolicyName() string { return s.cfg.Policy.Name }

// Shards returns the configured shard count.
func (s *Service) Shards() int { return len(s.shards) }
