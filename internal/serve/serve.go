// Package serve is the long-running job-submission service over the
// multi-tenant cluster scheduler: the piece that turns the batch-replay
// evaluation harness (internal/sched, cmd/snsched) into a system that
// accepts training-job requests concurrently, the way the paper's
// runtime is meant to be consumed by a fleet of users.
//
// The design splits the service into a concurrent edge and a
// deterministic core:
//
//   - Concurrency at the edge. Submit may be called from any number of
//     goroutines (the HTTP handlers do). Each accepted request lands in
//     a bounded per-tenant admission queue; a single sequencer drains
//     the queues round-robin across tenants, so no tenant can starve
//     the others by flooding the queue (fairness), and no tenant can
//     exceed its lifetime quota (admission control above the
//     scheduler's own memory-based admission).
//   - Determinism at the core. The sequencer collapses all wall-clock
//     nondeterminism into one total order: the i-th sequenced job gets
//     the deterministic virtual arrival i·spacing ms and is appended to
//     the request log, which is exactly a workload trace
//     (workload.FormatTrace bytes). Everything the service reports —
//     job status, cluster metrics, the drain summary — is a pure
//     function of that log, computed by replaying it through the same
//     sched.Scheduler that cmd/snsched uses. Re-running a day of
//     logged traffic therefore reproduces every per-job result
//     byte-identically.
//
// Because the cluster runs in virtual time, a "status" query returns
// the projected schedule of the job given the traffic admitted so far;
// later arrivals may still preempt it (exactly as in the batch
// replay), and the drain summary is the final word.
package serve

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultQueueDepth bounds the admission queue when Config leaves it 0.
const DefaultQueueDepth = 256

// Sentinel errors of the submission path; the HTTP layer maps each to
// a status code.
var (
	// ErrQueueFull: the bounded admission queue is at capacity.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrQuota: the tenant used up its lifetime job quota.
	ErrQuota = errors.New("serve: tenant quota exhausted")
	// ErrDraining: the service no longer accepts jobs.
	ErrDraining = errors.New("serve: service is draining")
	// ErrDuplicateID: the (tenant, id) pair was already submitted.
	ErrDuplicateID = errors.New("serve: duplicate job id")
	// ErrBadRequest: the request is malformed (unknown network, bad
	// batch/schedule, unknown manager, illegal characters).
	ErrBadRequest = errors.New("serve: invalid request")
	// ErrUnknownJob: no job with that id.
	ErrUnknownJob = errors.New("serve: unknown job")
)

// Config parameterizes a Service.
type Config struct {
	// Cluster is the simulated GPU pool jobs are scheduled onto.
	Cluster sched.Cluster
	// Policy is the scheduler policy (default sched.Packing).
	Policy sched.Policy
	// QueueDepth bounds the admission queue: the total number of
	// accepted-but-not-yet-sequenced jobs across all tenants. Submit
	// fails with ErrQueueFull beyond it. 0 means DefaultQueueDepth.
	QueueDepth int
	// TenantQuota caps the number of jobs one tenant may submit over
	// the service lifetime; 0 means unlimited.
	TenantQuota int
	// SpacingMS is the virtual arrival gap between consecutively
	// sequenced jobs (default 1 ms): the i-th job in the request log
	// arrives at i·SpacingMS.
	SpacingMS int64
	// RequestLog, when non-nil, receives the deterministic request log
	// incrementally: the workload trace header at construction, then
	// one trace line per sequenced job. The accumulated bytes are at
	// every instant a valid workload trace equal to ReplayLog().
	RequestLog io.Writer
	// Manual disables the background sequencer goroutine; callers
	// step admission explicitly with Advance (tests do, to observe
	// fairness deterministically).
	Manual bool
}

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// StateQueued: accepted into the admission queue, not yet
	// sequenced into the request log.
	StateQueued JobState = "queued"
	// StateScheduled: sequenced and placed by the scheduler; Result
	// holds the projected schedule.
	StateScheduled JobState = "scheduled"
	// StateRejected: sequenced but rejected by admission control (the
	// job cannot fit any device).
	StateRejected JobState = "rejected"
)

// SubmitRequest is one training-job submission.
type SubmitRequest struct {
	// Tenant namespaces the job; empty means "anon". Tenants share the
	// cluster under the round-robin fairness and quota rules.
	Tenant string `json:"tenant,omitempty"`
	// ID names the job within the tenant; empty auto-assigns one. The
	// full job id is "tenant/id".
	ID string `json:"id,omitempty"`
	// Network and Batch select the model shape (see
	// superneurons.Networks).
	Network string `json:"network"`
	Batch   int    `json:"batch,omitempty"`
	// Schedule, when non-empty, declares a dynamic per-iteration batch
	// schedule in the compact trace syntax ("16x2,32"); it overrides
	// Batch.
	Schedule string `json:"schedule,omitempty"`
	// Manager names the memory manager (empty: the default).
	Manager string `json:"manager,omitempty"`
	// Priority orders jobs under the priority policy.
	Priority int `json:"priority,omitempty"`
	// Iterations is the training length (default 1).
	Iterations int `json:"iterations,omitempty"`
}

// JobStatus is the service's view of one job.
type JobStatus struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	// QueuePosition is the 1-based position in the tenant's admission
	// queue while queued.
	QueuePosition int `json:"queue_position,omitempty"`
	// Seq is the position in the request log once sequenced (-1 while
	// queued); ArrivalMS is the deterministic virtual arrival.
	Seq       int   `json:"seq"`
	ArrivalMS int64 `json:"arrival_ms"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
	// Result is the projected schedule of a sequenced job, replayed
	// from the request log.
	Result *sched.JobResult `json:"result,omitempty"`
}

// TenantStat aggregates one tenant in Metrics.
type TenantStat struct {
	// Accepted is the lifetime count (queued + sequenced) the quota
	// applies to.
	Accepted  int `json:"accepted"`
	Queued    int `json:"queued"`
	Sequenced int `json:"sequenced"`
}

// Metrics is a point-in-time cluster snapshot, computed by replaying
// the current request log.
type Metrics struct {
	Policy   string `json:"policy"`
	Device   string `json:"device"`
	Devices  int    `json:"devices"`
	Capacity int64  `json:"capacity_bytes"`

	JobsAccepted  int  `json:"jobs_accepted"`
	JobsQueued    int  `json:"jobs_queued"`
	JobsSequenced int  `json:"jobs_sequenced"`
	JobsRejected  int  `json:"jobs_rejected"`
	Draining      bool `json:"draining"`
	// EstimatedShapes counts memoized dry-run shapes in the admission
	// estimator.
	EstimatedShapes int                   `json:"estimated_shapes"`
	Tenants         map[string]TenantStat `json:"tenants"`

	Makespan           sim.Duration       `json:"makespan_ns"`
	MeanJCT            sim.Duration       `json:"mean_jct_ns"`
	MeanWait           sim.Duration       `json:"mean_wait_ns"`
	Utilization        float64            `json:"utilization"`
	ComputeUtilization float64            `json:"compute_utilization"`
	DeviceStats        []sched.DeviceStat `json:"device_stats"`
}

// job is the service's record of one submission.
type job struct {
	tj     workload.TraceJob
	tenant string
	sub    int // global submission order
	seq    int // request-log position; -1 while queued
}

// Service is a concurrent job-submission front-end over one
// deterministic cluster scheduler. All methods are safe for concurrent
// use.
type Service struct {
	cfg Config
	sch *sched.Scheduler

	mu      sync.Mutex
	cond    *sync.Cond
	byID    map[string]*job
	queues  map[string][]*job // per-tenant admission queues
	ring    []string          // tenants in first-seen order
	rr      int               // round-robin cursor into ring
	pending int               // total queued across tenants
	count   map[string]int    // lifetime accepted per tenant
	subs    int               // global submission counter
	log     []workload.TraceJob
	logErr  error

	draining bool
	stopped  bool
	drainCh  chan struct{}

	// snapshot cache: the replay of log[:snapN].
	snapN   int
	snapOK  bool
	snap    *sched.Result
	snapErr error
}

// New constructs a Service and, unless cfg.Manual is set, starts its
// sequencer goroutine. The request-log header is written immediately
// so the log sink is a valid (empty) workload trace from the start.
func New(cfg Config) (*Service, error) {
	if cfg.Policy.Name == "" {
		cfg.Policy = sched.Packing
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.SpacingMS <= 0 {
		cfg.SpacingMS = 1
	}
	sch, err := sched.NewScheduler(cfg.Cluster, cfg.Policy)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		sch:     sch,
		byID:    make(map[string]*job),
		queues:  make(map[string][]*job),
		count:   make(map[string]int),
		drainCh: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.logWrite(workload.TraceHeader)
	if !cfg.Manual {
		go s.sequencer()
	}
	return s, nil
}

// logWrite appends to the request-log sink, recording the first error.
func (s *Service) logWrite(line string) {
	if s.cfg.RequestLog == nil || s.logErr != nil {
		return
	}
	if _, err := io.WriteString(s.cfg.RequestLog, line); err != nil {
		s.logErr = fmt.Errorf("serve: request log: %w", err)
	}
}

// Submit validates and enqueues one job. The dry-run validation runs
// outside the service lock (the estimator memoizes concurrently), so
// submissions of known shapes are cheap and parallel. The returned
// status is StateQueued; rejection by the cluster's memory admission
// happens deterministically after sequencing and shows up in Status.
func (s *Service) Submit(req SubmitRequest) (*JobStatus, error) {
	tj, tenant, err := s.validate(req)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if tj.ID == "" {
		// Auto ids must dodge user-chosen ones: a request that supplied
		// no id can never fail as a duplicate.
		for i := s.subs; ; i++ {
			cand := fmt.Sprintf("%s/j%d", tenant, i)
			if _, taken := s.byID[cand]; !taken {
				tj.ID = cand
				break
			}
		}
	}
	if _, dup := s.byID[tj.ID]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, tj.ID)
	}
	if q := s.cfg.TenantQuota; q > 0 && s.count[tenant] >= q {
		return nil, fmt.Errorf("%w: tenant %s at %d jobs", ErrQuota, tenant, q)
	}
	if s.pending >= s.cfg.QueueDepth {
		return nil, fmt.Errorf("%w: %d pending", ErrQueueFull, s.pending)
	}

	j := &job{tj: tj, tenant: tenant, sub: s.subs, seq: -1}
	s.subs++
	s.count[tenant]++
	if _, known := s.queues[tenant]; !known {
		s.ring = append(s.ring, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], j)
	s.pending++
	s.byID[tj.ID] = j
	s.cond.Broadcast()
	return s.statusLocked(j), nil
}

// validate checks the request shape and dry-runs every distinct batch
// so malformed submissions (unknown network or manager, bad schedule)
// are refused before they can poison the deterministic log. An
// out-of-memory dry run is NOT a validation error: the job is logged
// and rejected deterministically by the scheduler, exactly as in a
// trace replay.
func (s *Service) validate(req SubmitRequest) (workload.TraceJob, string, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	if err := checkToken("tenant", tenant); err != nil {
		return workload.TraceJob{}, "", err
	}
	if strings.Contains(tenant, "/") {
		return workload.TraceJob{}, "", fmt.Errorf("%w: tenant %q must not contain '/'", ErrBadRequest, tenant)
	}
	var tj workload.TraceJob
	if req.ID != "" {
		if err := checkToken("id", req.ID); err != nil {
			return workload.TraceJob{}, "", err
		}
		tj.ID = tenant + "/" + req.ID
	}
	if req.Network == "" {
		return workload.TraceJob{}, "", fmt.Errorf("%w: network is required", ErrBadRequest)
	}
	tj.Network = req.Network
	tj.Manager = req.Manager
	tj.Priority = req.Priority
	tj.Iterations = req.Iterations
	if tj.Iterations <= 0 {
		tj.Iterations = 1
	}

	batches := []int{req.Batch}
	if req.Schedule != "" {
		sc, err := workload.ParseSchedule(req.Schedule)
		if err != nil {
			return workload.TraceJob{}, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		tj.Batch = sc.Max()
		if len(sc) > 1 {
			tj.BatchSchedule = sc
		}
		batches = sc.Distinct()
	} else {
		if req.Batch <= 0 {
			return workload.TraceJob{}, "", fmt.Errorf("%w: batch must be positive, got %d", ErrBadRequest, req.Batch)
		}
		tj.Batch = req.Batch
	}
	for _, b := range batches {
		_, err := s.sch.Estimator().Estimate(tj.Network, b, tj.Manager, s.cfg.Cluster.Device)
		if err != nil && !errors.Is(err, core.ErrOutOfMemory) {
			return workload.TraceJob{}, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	return tj, tenant, nil
}

// checkToken refuses characters that would corrupt the
// whitespace-separated request log.
func checkToken(field, v string) error {
	if strings.ContainsAny(v, " \t\n\r#") {
		return fmt.Errorf("%w: %s %q must not contain whitespace or '#'", ErrBadRequest, field, v)
	}
	return nil
}

// sequencer is the background admission loop: whenever jobs are
// pending it drains them round-robin across tenants into the log.
func (s *Service) sequencer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for s.pending == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			return
		}
		s.advanceLocked(0)
	}
}

// Advance sequences up to max pending jobs (all of them when max <= 0)
// and returns how many were sequenced. Only useful with Config.Manual;
// the background sequencer calls the same code.
func (s *Service) Advance(max int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advanceLocked(max)
}

// advanceLocked pops jobs round-robin across the tenant ring: one job
// per tenant per turn, skipping empty queues. Each popped job gets the
// next sequence number, its deterministic arrival, and its request-log
// line.
func (s *Service) advanceLocked(max int) int {
	n := 0
	for s.pending > 0 && (max <= 0 || n < max) {
		for len(s.queues[s.ring[s.rr]]) == 0 {
			s.rr = (s.rr + 1) % len(s.ring)
		}
		t := s.ring[s.rr]
		s.rr = (s.rr + 1) % len(s.ring)
		j := s.queues[t][0]
		s.queues[t] = s.queues[t][1:]
		s.pending--
		j.seq = len(s.log)
		j.tj.ArrivalMS = int64(j.seq) * s.cfg.SpacingMS
		s.log = append(s.log, j.tj)
		s.logWrite(workload.FormatJob(j.tj))
		n++
	}
	if n > 0 {
		s.cond.Broadcast()
	}
	return n
}

// snapshotLocked replays the current request log through the
// scheduler, memoized by log length. This is the only way any result
// is produced: the service's answers and a later offline replay of the
// log are the same computation.
func (s *Service) snapshotLocked() (*sched.Result, error) {
	if s.snapOK && s.snapN == len(s.log) {
		return s.snap, s.snapErr
	}
	jobs := sched.JobsFromTrace(s.log)
	r, err := s.sch.Run(jobs)
	s.snapN, s.snap, s.snapErr, s.snapOK = len(s.log), r, err, true
	return r, err
}

// statusLocked renders one job's status against the current snapshot.
func (s *Service) statusLocked(j *job) *JobStatus {
	st := &JobStatus{ID: j.tj.ID, Tenant: j.tenant, Seq: j.seq, ArrivalMS: j.tj.ArrivalMS}
	if j.seq < 0 {
		st.State = StateQueued
		for i, q := range s.queues[j.tenant] {
			if q == j {
				st.QueuePosition = i + 1
				break
			}
		}
		return st
	}
	snap, err := s.snapshotLocked()
	if err != nil {
		st.Reason = err.Error()
		st.State = StateRejected
		return st
	}
	jr := snap.Jobs[j.seq]
	st.Result = &jr
	if jr.Rejected {
		st.State = StateRejected
		st.Reason = jr.Reason
	} else {
		st.State = StateScheduled
	}
	return st
}

// Status returns one job's current status.
func (s *Service) Status(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return s.statusLocked(j), nil
}

// Jobs returns every submitted job's status in submission order.
func (s *Service) Jobs() ([]*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := make([]*job, 0, len(s.byID))
	for _, j := range s.byID {
		all = append(all, j)
	}
	// Submission order is the deterministic listing order.
	sort.Slice(all, func(i, k int) bool { return all[i].sub < all[k].sub })
	out := make([]*JobStatus, len(all))
	for i, j := range all {
		out[i] = s.statusLocked(j)
	}
	return out, nil
}

// Metrics returns the current cluster snapshot.
func (s *Service) Metrics() (*Metrics, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &Metrics{
		Policy:          s.cfg.Policy.Name,
		Device:          s.cfg.Cluster.Device.Name,
		Devices:         s.cfg.Cluster.Devices,
		Capacity:        s.cfg.Cluster.Capacity(),
		JobsQueued:      s.pending,
		JobsSequenced:   len(s.log),
		Draining:        s.draining,
		EstimatedShapes: s.sch.Estimator().Len(),
		Tenants:         make(map[string]TenantStat, len(s.ring)),
	}
	m.JobsAccepted = m.JobsQueued + m.JobsSequenced
	for _, t := range s.ring {
		st := TenantStat{Accepted: s.count[t], Queued: len(s.queues[t])}
		st.Sequenced = st.Accepted - st.Queued
		m.Tenants[t] = st
	}
	snap, err := s.snapshotLocked()
	if err != nil {
		return nil, err
	}
	for _, j := range snap.Jobs {
		if j.Rejected {
			m.JobsRejected++
		}
	}
	m.Makespan = snap.Makespan
	m.MeanJCT = snap.MeanJCT()
	m.MeanWait = snap.MeanWait()
	m.Utilization = snap.Utilization
	m.ComputeUtilization = snap.ComputeUtilization
	m.DeviceStats = snap.Devices
	return m, nil
}

// WaitSequenced blocks until at least n jobs have been sequenced into
// the request log, or the timeout elapses, and returns the sequenced
// count. It is the long-poll primitive behind the metrics endpoint.
func (s *Service) WaitSequenced(n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.log) < n && !s.stopped {
		left := time.Until(deadline)
		if left <= 0 {
			break
		}
		// The timer must broadcast under the mutex: cond.Wait registers
		// the waiter while unlocking, so a locked broadcaster cannot
		// fire in the gap and lose the wakeup.
		t := time.AfterFunc(left, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		s.cond.Wait()
		t.Stop()
	}
	return len(s.log)
}

// Drain stops admission, sequences everything still queued, and
// returns the final schedule of the whole request log. It is
// idempotent; concurrent and later calls return the same result.
func (s *Service) Drain() (*sched.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	s.advanceLocked(0)
	if !s.stopped {
		s.stopped = true
		s.cond.Broadcast()
		close(s.drainCh)
	}
	r, err := s.snapshotLocked()
	if err == nil {
		err = s.logErr
	}
	return r, err
}

// Drained is closed once Drain has run (e.g. via the HTTP API), so a
// daemon can exit after a remote drain.
func (s *Service) Drained() <-chan struct{} { return s.drainCh }

// ReplayLog returns the deterministic request log accumulated so far —
// a complete workload trace. Feeding it to workload.ParseTrace and
// sched.Scheduler.Run (or cmd/snsched -trace) reproduces every per-job
// result byte-identically.
func (s *Service) ReplayLog() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return workload.FormatTrace(s.log)
}

// LogErr reports the first request-log write error, if any.
func (s *Service) LogErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logErr
}

// Cluster returns the configured cluster (for daemons' banners).
func (s *Service) Cluster() sched.Cluster { return s.cfg.Cluster }

// PolicyName returns the configured policy name.
func (s *Service) PolicyName() string { return s.cfg.Policy.Name }
