package serve

// Log-compaction checkpoints. A checkpoint captures the service's
// resumable replay — the scheduler state with every event below the
// watermark already processed — as a self-contained byte artifact, so
// a restarted service (or an offline auditor) can resume the replay
// from the watermark instead of re-running the whole request log.
// Determinism makes the artifact verifiable: resuming a checkpoint and
// draining it yields byte-for-byte the result of a full replay of the
// same log.
//
// Framing is line-based and self-describing:
//
//	snckpt 1
//	seq <merged jobs> <spacing ms>
//	sched <payload bytes>
//	<sched.EncodeSnapshot payload>
//	idem <key> <id>        (zero or more)
//	end
//
// The idem lines — added for crash-safe serving — persist the
// idempotency bindings of sequenced jobs, so a service restored from a
// checkpoint keeps deduplicating retries. They sit between the sched
// payload and the end marker; a checkpoint without them (the original
// format) still decodes, so old artifacts remain restorable.
//
// The decoder validates every field and never panics on malformed
// input (fuzzed in snapshot_test.go).

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/sched"
)

const ckptMagic = "snckpt 1"

// ErrNoCheckpoint is returned by Service.Checkpoint when compaction is
// disabled (Config.SnapshotEvery == 0): without a resumable replay
// there is no scheduler state to capture.
var ErrNoCheckpoint = fmt.Errorf("serve: checkpoints need SnapshotEvery > 0")

// ErrBadCheckpoint is the sentinel under every RestoreCheckpoint
// decode failure; errors.Is matches it through the per-field context.
var ErrBadCheckpoint = errors.New("serve: bad checkpoint")

// Checkpoint serializes the service's current resumable replay. The
// artifact covers every job sequenced so far (processed up to the
// watermark, pending above it); appending later log entries to the
// restored replay reproduces the full-log result exactly.
func (s *Service) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inc == nil {
		return nil, ErrNoCheckpoint
	}
	if s.incErr != nil {
		return nil, s.incErr
	}
	payload := sched.EncodeSnapshot(s.inc)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nseq %d %d\nsched %d\n", ckptMagic, len(s.log), s.cfg.SpacingMS, len(payload))
	b.Write(payload)
	// Idempotency bindings of sequenced jobs, in insertion order, so a
	// restore rebuilds the same bounded index.
	for _, key := range s.idemOrder {
		if j := s.idem[key]; j != nil && j.seq >= 0 {
			fmt.Fprintf(&b, "idem %s %s\n", key, j.tj.ID)
		}
	}
	b.WriteString("end\n")
	s.lg.Info("checkpoint written", "seq", len(s.log), "bytes", b.Len())
	return b.Bytes(), nil
}

// Checkpoint is a restored compaction artifact: the resumable replay
// plus the log position it covers.
type CheckpointState struct {
	// Seq is the number of request-log entries the checkpoint covers;
	// resume by appending log entries seq, seq+1, ... to Replay.
	Seq int
	// SpacingMS is the virtual arrival spacing the log was merged at.
	SpacingMS int64
	// Idem holds the persisted idempotency bindings in insertion
	// order; empty for artifacts from before the idem extension.
	Idem []IdemEntry
	// Replay is the restored paused replay.
	Replay *sched.Incremental
}

// RestoreCheckpoint decodes a checkpoint artifact. est may be nil; pass
// a shared estimator to reuse memoized dry runs.
func RestoreCheckpoint(data []byte, est *sched.Estimator) (*CheckpointState, error) {
	fail := func(format string, args ...any) (*CheckpointState, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadCheckpoint, fmt.Sprintf(format, args...))
	}
	line, rest, ok := bytes.Cut(data, []byte{'\n'})
	if !ok || string(line) != ckptMagic {
		return fail("magic %q", string(line))
	}
	line, rest, ok = bytes.Cut(rest, []byte{'\n'})
	f := bytes.Fields(line)
	if !ok || len(f) != 3 || string(f[0]) != "seq" {
		return fail("seq line %q", string(line))
	}
	seq, err := strconv.Atoi(string(f[1]))
	if err != nil || seq < 0 {
		return fail("seq count %q", string(f[1]))
	}
	spacing, err := strconv.ParseInt(string(f[2]), 10, 64)
	if err != nil || spacing <= 0 {
		return fail("spacing %q", string(f[2]))
	}
	line, rest, ok = bytes.Cut(rest, []byte{'\n'})
	f = bytes.Fields(line)
	if !ok || len(f) != 2 || string(f[0]) != "sched" {
		return fail("sched line %q", string(line))
	}
	n, err := strconv.Atoi(string(f[1]))
	if err != nil || n < 0 || n > len(rest) {
		return fail("payload length %q over %d remaining bytes", string(f[1]), len(rest))
	}
	inc, err := sched.RestoreIncremental(rest[:n], est)
	if err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrBadCheckpoint, err)
	}
	if inc.Len() != seq {
		return fail("payload holds %d jobs, frame declares %d", inc.Len(), seq)
	}
	// Trailer: optional idem lines, then the end marker.
	var idem []IdemEntry
	tail := rest[n:]
	for {
		line, next, ok := bytes.Cut(tail, []byte{'\n'})
		if !ok {
			return fail("missing end marker")
		}
		if string(line) == "end" {
			if len(next) != 0 {
				return fail("%d trailing bytes after end marker", len(next))
			}
			break
		}
		f := bytes.Fields(line)
		if len(f) != 3 || string(f[0]) != "idem" {
			return fail("trailer line %q", string(line))
		}
		idem = append(idem, IdemEntry{Key: string(f[1]), ID: string(f[2])})
		tail = next
	}
	return &CheckpointState{Seq: seq, SpacingMS: spacing, Idem: idem, Replay: inc}, nil
}

// Resume appends the request-log suffix beyond the checkpoint (entries
// Seq onward) and returns the drained result — byte-identical to a
// full replay of the whole log.
func (c *CheckpointState) Resume(suffix []sched.Job) (*sched.Result, error) {
	for _, j := range suffix {
		if _, err := c.Replay.Append(j); err != nil {
			return nil, err
		}
	}
	return c.Replay.Result()
}
