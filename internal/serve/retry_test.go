package serve

// Client-side retry semantics: the capped-exponential backoff with
// full jitter, SubmitRetry's fail-fast/retry split, and the load
// generator riding out transport failures in idempotent mode.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 5 || p.BaseDelay != 50*time.Millisecond || p.MaxDelay != 2*time.Second {
		t.Fatalf("defaults = %+v", p)
	}
	for attempt := 0; attempt < 70; attempt++ { // far past shift overflow
		d := p.backoff(attempt, 0)
		if d <= 0 || d > p.MaxDelay {
			t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, p.MaxDelay)
		}
	}
	for i := 0; i < 50; i++ {
		if d := p.backoff(0, 10*time.Millisecond); d <= 0 || d > 10*time.Millisecond {
			t.Fatalf("hinted backoff %v outside (0, 10ms]", d)
		}
		if d := p.backoff(0, time.Hour); d > p.MaxDelay {
			t.Fatalf("pathological hint not capped: %v", d)
		}
	}
}

// Backpressure retries until the queue frees; the report counts the
// sleeps.
func TestSubmitRetryBackpressure(t *testing.T) {
	c, s := startServer(t, Config{Manual: true, QueueDepth: 1})
	if _, err := c.Submit(small("t", "a")); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.Advance(0)
	}()
	st, retries, err := c.SubmitRetry(small("t", "b"),
		RetryPolicy{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("retry did not ride out the full queue: %v (%d retries)", err, retries)
	}
	if retries == 0 {
		t.Error("queue was full yet no retry was counted")
	}
	if st.ID != "t/b" {
		t.Errorf("submitted %q", st.ID)
	}
}

func TestSubmitRetryFailFast(t *testing.T) {
	c, _ := startServer(t, Config{Manual: true})
	_, retries, err := c.SubmitRetry(SubmitRequest{Tenant: "t", Network: "NopeNet", Batch: 4},
		RetryPolicy{BaseDelay: time.Millisecond})
	if err == nil || retries != 0 {
		t.Fatalf("validation error retried %d times (%v), want fail-fast", retries, err)
	}
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err %v, want ErrBadRequest through the retry wrapper", err)
	}
}

// A transport failure is ambiguous — the service may have sequenced
// the job — so blind resubmission is allowed only with an idempotency
// key.
func TestSubmitRetryTransport(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // every request now fails at the dial
	c := &Client{BaseURL: url}

	req := small("t", "a")
	if _, retries, err := c.SubmitRetry(req, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}); err == nil || retries != 0 {
		t.Fatalf("keyless transport failure: %d retries, err %v — want immediate failure", retries, err)
	}
	req.IdempotencyKey = "k1"
	if _, retries, err := c.SubmitRetry(req, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}); err == nil || retries != 2 {
		t.Fatalf("keyed transport failure: %d retries, err %v — want 2 retries then the last error", retries, err)
	}
	// A deadline tighter than the first backoff stops the sequence
	// before any sleep.
	if _, retries, err := c.SubmitRetry(req,
		RetryPolicy{MaxAttempts: 100, BaseDelay: time.Second, Deadline: 10 * time.Millisecond}); err == nil || retries != 0 {
		t.Fatalf("deadline ignored: %d retries, err %v", retries, err)
	}
}

// Idempotency over HTTP: the key rides the wire, the dedup answer
// carries Deduped (and Durable, with a WAL attached), and the
// checkpoint endpoint serves an artifact with the binding.
func TestHTTPIdempotentDedup(t *testing.T) {
	c, _ := startServer(t, Config{WALDir: t.TempDir(), SnapshotEvery: 1})
	req := small("t", "a")
	req.IdempotencyKey = "k1"
	st, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable || st.Deduped {
		t.Fatalf("first submission status %+v, want durable and not deduped", st)
	}
	retry := req
	retry.ID = "a-retry"
	st2, err := c.Submit(retry)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Deduped || st2.ID != st.ID {
		t.Fatalf("retry status %+v, want dedup to %s", st2, st.ID)
	}
	data, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := RestoreCheckpoint(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Idem) != 1 || cs.Idem[0].Key != "k1" {
		t.Fatalf("checkpoint over HTTP lost the idem binding: %+v", cs.Idem)
	}
}

// The load generator in idempotent mode rides out transport failures:
// a proxy that kills every third connection still yields a full run.
func TestRunLoadIdempotentFlaky(t *testing.T) {
	if len(DefaultTemplates()) == 0 {
		t.Fatal("no default templates")
	}
	_, svc := startServer(t, Config{QueueDepth: 64})
	var n atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && n.Add(1)%3 == 1 {
			// Drop the connection without a response: a transport
			// failure, not an API error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer cannot hijack")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		svc.Handler().ServeHTTP(w, r)
	}))
	defer flaky.Close()

	// Fresh connection per request: keep-alives off, so the standard
	// library cannot transparently replay a killed POST itself — the
	// retry must come from the load generator.
	client := &Client{BaseURL: flaky.URL, HTTPClient: &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
	}}
	rep, err := RunLoad(LoadConfig{
		Target: client, Clients: 2, JobsPerClient: 4,
		Templates:     DefaultTemplates()[:2],
		Idempotent:    true,
		SubmitRetries: 20,
		RetryDelay:    time.Millisecond,
		ThinkTime:     100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 8 || rep.Failed != 0 {
		t.Fatalf("report %+v, want all 8 submissions to survive the flaky transport", rep)
	}
	if rep.Retries == 0 {
		t.Error("connections were killed yet no retry was counted")
	}
}

// retryDelay honors (and caps) the server hint, with full jitter.
func TestLoadRetryDelay(t *testing.T) {
	cfg := LoadConfig{RetryDelay: 2 * time.Millisecond}
	for i := 0; i < 50; i++ {
		if d := retryDelay(cfg, errors.New("plain")); d <= 0 || d > 2*time.Millisecond {
			t.Fatalf("plain error delay %v outside (0, 2ms]", d)
		}
		if d := retryDelay(cfg, &RetryableError{Err: ErrOverloaded, RetryAfter: 5 * time.Millisecond}); d <= 0 || d > 5*time.Millisecond {
			t.Fatalf("hinted delay %v outside (0, 5ms]", d)
		}
		if d := retryDelay(cfg, &RetryableError{Err: ErrOverloaded, RetryAfter: time.Hour}); d > 100*time.Millisecond {
			t.Fatalf("pathological hint not capped: %v", d)
		}
		if d := retryDelay(cfg, &APIError{Status: 429, RetryAfter: 3 * time.Millisecond}); d <= 0 || d > 3*time.Millisecond {
			t.Fatalf("API-error hint delay %v outside (0, 3ms]", d)
		}
	}
}
