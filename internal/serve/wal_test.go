package serve

// The crash-safety battery: kill-9 simulated at every byte boundary of
// the WAL, recovery-equals-uninterrupted at shard counts 1 and 4,
// idempotent retries across restarts, and the named-error contract of
// every decoder on the recovery path. The in-process "crash" here is
// stronger than a real SIGKILL: a real kill can only tear the unsynced
// tail, while these tests tear at arbitrary byte offsets (CI's
// crash-recovery job does the real kill).

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// walConfig is the standard durable test service: on-ack fsync, small
// segments so rotation is exercised.
func walConfig(dir string, shards int) Config {
	return Config{WALDir: dir, Shards: shards, SnapshotEvery: 4}
}

// keyedReq builds the deterministic submission stream the chaos tests
// replay: request i always has the same tenant, id, shape and
// idempotency key, so a resubmission is a true retry.
func keyedReq(i int) SubmitRequest {
	req := small(fmt.Sprintf("t%d", i%3), fmt.Sprintf("j%d", i))
	req.IdempotencyKey = fmt.Sprintf("key-%03d", i)
	if i%4 == 3 {
		req.Batch = 32
	}
	return req
}

// submitSeq submits requests [from, to) sequentially and asserts each
// ack is sequenced and durable (the on-ack contract).
func submitSeq(t *testing.T, s *Service, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		st, err := s.Submit(keyedReq(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if st.Seq < 0 {
			t.Fatalf("submit %d: acked unsequenced (seq %d)", i, st.Seq)
		}
		if !st.Durable {
			t.Fatalf("submit %d: acked without durability", i)
		}
	}
}

func drainClose(t *testing.T, s *Service) string {
	t.Helper()
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	log := s.ReplayLog()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return log
}

// TestWALDurableAckAndRecover: with a WAL attached, Submit acks
// sequenced+durable, and a fresh RecoverWAL of the directory yields
// exactly the merged log.
func TestWALDurableAckAndRecover(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, walConfig(dir, 1))
	submitSeq(t, s, 0, 8)
	log := drainClose(t, s)

	rec, err := RecoverWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn != nil {
		t.Fatalf("clean shutdown recovered torn: %+v", rec.Torn)
	}
	if got := workload.FormatTrace(rec.Jobs); got != log {
		t.Fatalf("recovered log differs from served log:\ngot  %q\nwant %q", got, log)
	}
	if len(rec.Idem) != 8 {
		t.Fatalf("recovered %d idem bindings, want 8", len(rec.Idem))
	}
	for i, e := range rec.Idem {
		if e.Key != fmt.Sprintf("key-%03d", i) {
			t.Fatalf("idem %d key %q", i, e.Key)
		}
	}
}

// TestWALRecoveryPrefixAtEveryByte tears the WAL at every byte offset
// — every possible kill -9 point — and asserts recovery never panics,
// never errors, recovers exactly the complete-frame prefix, and leaves
// a directory the service can keep appending to.
func TestWALRecoveryPrefixAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, walConfig(dir, 1))
	submitSeq(t, s, 0, 6)
	log := drainClose(t, s)
	full, err := os.ReadFile(filepath.Join(dir, walSegmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.ParseTrace(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}

	// jobEnds[k] is the byte offset at which the k-th job record is
	// complete (its idem directive precedes it inside the same append).
	// cleanEnds are the only cuts recovery reports as untorn: the header
	// boundary and job-record boundaries — a cut at an idem-frame end
	// reads cleanly but leaves a dangling directive, which is a tear.
	var jobEnds []int
	cleanEnds := map[int]bool{}
	rest := full
	off := 0
	for len(rest) > 0 {
		var payload []byte
		if payload, rest, err = workload.ReadFrame(rest); err != nil {
			t.Fatal(err)
		}
		off += workload.FrameSize(len(payload))
		if !strings.HasPrefix(string(payload), "# idem ") {
			cleanEnds[off] = true
		}
		if !strings.HasPrefix(string(payload), "#") {
			jobEnds = append(jobEnds, off)
		}
	}

	for cut := 0; cut <= len(full); cut++ {
		want := 0
		for _, e := range jobEnds {
			if e <= cut {
				want++
			}
		}
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, walSegmentName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverWAL(cutDir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rec.Jobs) != want {
			t.Fatalf("cut %d: recovered %d jobs, want %d", cut, len(rec.Jobs), want)
		}
		if want > 0 && !reflect.DeepEqual(rec.Jobs, trace[:want]) {
			t.Fatalf("cut %d: recovered jobs are not the log prefix", cut)
		}
		if (rec.Torn == nil) != cleanEnds[cut] {
			t.Fatalf("cut %d: torn = %+v, want tear iff the cut is not a record boundary", cut, rec.Torn)
		}
		// The repaired directory must accept appends at the exact
		// recovered position.
		w, rec2, err := openWAL(cutDir, 1, 0, 0)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(rec2.Jobs) != want {
			t.Fatalf("cut %d: reopen recovered %d jobs, want %d", cut, len(rec2.Jobs), want)
		}
		extra := workload.TraceJob{
			ID: "x/extra", ArrivalMS: int64(want), Network: "AlexNet", Batch: 16, Iterations: 1,
		}
		if err := w.appendJob(extra, "key-extra"); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := w.close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		rec3, err := RecoverWAL(cutDir)
		if err != nil {
			t.Fatalf("cut %d: re-recover: %v", cut, err)
		}
		if len(rec3.Jobs) != want+1 || rec3.Torn != nil {
			t.Fatalf("cut %d: after repair+append recovered %d jobs (torn %v), want %d",
				cut, len(rec3.Jobs), rec3.Torn, want+1)
		}
		if last := rec3.Idem[len(rec3.Idem)-1]; last.Key != "key-extra" || last.ID != "x/extra" {
			t.Fatalf("cut %d: appended idem binding lost: %+v", cut, last)
		}
	}
}

// TestCrashRecoveryEqualsUninterrupted is the kill-9 chaos gate: a
// service crashed mid-run (WAL torn mid-record) and restarted on the
// same directory, with the client retrying idempotently, produces a
// merged request log byte-identical to an uninterrupted run — at one
// shard and at four.
func TestCrashRecoveryEqualsUninterrupted(t *testing.T) {
	const total, crashAt = 12, 7
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Uninterrupted reference run.
			refDir := t.TempDir()
			ref := mustNew(t, walConfig(refDir, shards))
			submitSeq(t, ref, 0, total)
			wantLog := drainClose(t, ref)

			// Crashed run: same submission stream, torn at crashAt.
			dir := t.TempDir()
			s1 := mustNew(t, walConfig(dir, shards))
			submitSeq(t, s1, 0, crashAt)
			drainClose(t, s1)
			// Simulate the kill: the process died mid-append of the next
			// record, leaving half a frame (idem directive torn) on disk.
			nextIdem := workload.AppendFrame(nil, []byte(walIdemLine("key-007", "t1/j7")))
			seg := lastSegment(t, dir)
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(nextIdem[:len(nextIdem)/2]); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			// Restart on the same directory: recovery truncates the tear.
			s2 := mustNew(t, walConfig(dir, shards))
			rec := s2.Recovered()
			if rec == nil || len(rec.Jobs) != crashAt {
				t.Fatalf("recovered %+v, want %d jobs", rec, crashAt)
			}
			if rec.Torn == nil {
				t.Fatal("torn tail not reported")
			}
			// The client retries the last acked submissions (lost-ack
			// paranoia): each must dedupe, not re-sequence.
			for i := crashAt - 2; i < crashAt; i++ {
				st, err := s2.Submit(keyedReq(i))
				if err != nil {
					t.Fatalf("retry %d: %v", i, err)
				}
				if !st.Deduped {
					t.Fatalf("retry %d was not deduplicated", i)
				}
				if want := fmt.Sprintf("t%d/j%d", i%3, i); st.ID != want {
					t.Fatalf("retry %d resolved to %q, want %q", i, st.ID, want)
				}
			}
			// Then the rest of the stream.
			submitSeq(t, s2, crashAt, total)
			gotLog := drainClose(t, s2)
			if gotLog != wantLog {
				t.Fatalf("post-recovery log differs from uninterrupted run:\ngot  %q\nwant %q", gotLog, wantLog)
			}
		})
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := walSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return segs[len(segs)-1]
}

// TestCheckpointResumeFromRecoveredLog: a checkpoint taken by the
// recovered service, resumed over the log suffix, equals the full
// replay — compaction and crash recovery compose.
func TestCheckpointResumeFromRecoveredLog(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNew(t, walConfig(dir, 2))
	submitSeq(t, s1, 0, 6)
	drainClose(t, s1)

	s2 := mustNew(t, walConfig(dir, 2))
	ckpt, err := s2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	submitSeq(t, s2, 6, 10)
	final, err := s2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	log := s2.ReplayLog()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	cs, err := RestoreCheckpoint(ckpt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Seq != 6 {
		t.Fatalf("checkpoint covers %d jobs, want 6", cs.Seq)
	}
	if len(cs.Idem) != 6 {
		t.Fatalf("checkpoint persisted %d idem bindings, want 6", len(cs.Idem))
	}
	trace, err := workload.ParseTrace(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := cs.Resume(sched.JobsFromTrace(trace[cs.Seq:]))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, final) {
		t.Fatalf("checkpoint-resumed result diverges from recovered service's drain:\ngot  %+v\nwant %+v", resumed, final)
	}
}

// TestWALGroupedSyncMode: SyncEvery N>1 trades the on-ack guarantee
// for batched fsyncs — early acks are sequenced but not yet durable,
// the Nth record syncs the group, and drain syncs unconditionally.
func TestWALGroupedSyncMode(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir, 1)
	cfg.SyncEvery = 4
	s := mustNew(t, cfg)
	for i := 0; i < 3; i++ {
		st, err := s.Submit(keyedReq(i))
		if err != nil {
			t.Fatal(err)
		}
		if st.Seq < 0 {
			t.Fatalf("submit %d unsequenced", i)
		}
		if st.Durable {
			t.Fatalf("submit %d durable before the sync group filled", i)
		}
	}
	st, err := s.Submit(keyedReq(3))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable {
		t.Fatal("4th record should have synced the group")
	}
	st, err = s.Submit(keyedReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.Durable {
		t.Fatal("5th record durable too early")
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// Drain is a durability point regardless of policy.
	st2, err := s.Status("t1/j4")
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Durable {
		t.Fatal("drain did not sync the tail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 5 {
		t.Fatalf("recovered %d jobs, want 5", len(rec.Jobs))
	}
}

// TestWALSegmentRotation: tiny segments force rotation; recovery walks
// the chain and a restarted service keeps appending into it.
func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir, 1)
	cfg.SegmentBytes = 128 // a record pair is ~60 bytes: rotate every couple of jobs
	s := mustNew(t, cfg)
	submitSeq(t, s, 0, 9)
	log := drainClose(t, s)

	rec, err := RecoverWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Segments < 3 {
		t.Fatalf("expected rotation, got %d segment(s)", rec.Segments)
	}
	if got := workload.FormatTrace(rec.Jobs); got != log {
		t.Fatal("multi-segment recovery differs from served log")
	}

	s2 := mustNew(t, cfg)
	if got := len(s2.Recovered().Jobs); got != 9 {
		t.Fatalf("restart recovered %d jobs, want 9", got)
	}
	submitSeq(t, s2, 9, 12)
	log2 := drainClose(t, s2)
	if !strings.HasPrefix(log2, log) {
		t.Fatal("resumed log does not extend the recovered log")
	}
}

// TestWALNamedErrors: structural damage surfaces as the named
// sentinels — never a panic, never silent truncation of deliberate
// bytes.
func TestWALNamedErrors(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		cfg := walConfig(dir, 1)
		cfg.SegmentBytes = 128
		s := mustNew(t, cfg)
		submitSeq(t, s, 0, 9)
		drainClose(t, s)
		return dir
	}

	t.Run("segment gap", func(t *testing.T) {
		dir := build(t)
		if err := os.Remove(filepath.Join(dir, walSegmentName(1))); err != nil {
			t.Fatal(err)
		}
		if _, err := RecoverWAL(dir); !errors.Is(err, ErrWALGap) {
			t.Fatalf("err %v, want ErrWALGap", err)
		}
	})
	t.Run("spacing mismatch", func(t *testing.T) {
		dir := build(t)
		cfg := walConfig(dir, 1)
		cfg.SpacingMS = 7
		cfg.Cluster = testCluster()
		if _, err := New(cfg); !errors.Is(err, ErrWALSpacing) {
			t.Fatalf("err %v, want ErrWALSpacing", err)
		}
	})
	t.Run("valid frame, corrupt content", func(t *testing.T) {
		dir := t.TempDir()
		var b []byte
		b = workload.AppendFrame(b, []byte(walHeaderLine(0, 1)))
		b = workload.AppendFrame(b, []byte("this is not a trace line\n"))
		if err := os.WriteFile(filepath.Join(dir, walSegmentName(0)), b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := RecoverWAL(dir); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("err %v, want ErrWALCorrupt", err)
		}
	})
	t.Run("off-grid arrival", func(t *testing.T) {
		dir := t.TempDir()
		tj := workload.TraceJob{ID: "t/j", ArrivalMS: 5, Network: "AlexNet", Batch: 16, Iterations: 1}
		var b []byte
		b = workload.AppendFrame(b, []byte(walHeaderLine(0, 1)))
		b = workload.AppendFrame(b, []byte(workload.FormatJob(tj)))
		if err := os.WriteFile(filepath.Join(dir, walSegmentName(0)), b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := RecoverWAL(dir); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("err %v, want ErrWALCorrupt", err)
		}
	})
	t.Run("wrong segment index in header", func(t *testing.T) {
		dir := t.TempDir()
		b := workload.AppendFrame(nil, []byte(walHeaderLine(3, 1)))
		if err := os.WriteFile(filepath.Join(dir, walSegmentName(0)), b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := RecoverWAL(dir); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("err %v, want ErrWALCorrupt", err)
		}
	})
	t.Run("empty directory is a clean empty log", func(t *testing.T) {
		rec, err := RecoverWAL(t.TempDir())
		if err != nil || len(rec.Jobs) != 0 || rec.Torn != nil {
			t.Fatalf("rec %+v err %v, want empty clean recovery", rec, err)
		}
	})
}

// TestIdempotencyDedupAndEviction: a replayed key returns the original
// job; the index is bounded FIFO, and an evicted key stops deduping.
func TestIdempotencyDedupAndEviction(t *testing.T) {
	s := mustNew(t, Config{Manual: true, IdempotencyCap: 2})
	sub := func(id, key string) *JobStatus {
		t.Helper()
		req := small("t", id)
		req.IdempotencyKey = key
		st, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	first := sub("a", "k1")
	if first.Deduped {
		t.Fatal("first submission marked deduped")
	}
	retry := sub("a-retried-with-other-id", "k1")
	if !retry.Deduped || retry.ID != first.ID {
		t.Fatalf("retry got %+v, want dedup to %s", retry, first.ID)
	}
	sub("b", "k2")
	sub("c", "k3") // evicts k1
	if st := sub("d", "k1"); st.Deduped {
		t.Fatal("evicted key still dedupes")
	}
	// A bad key is refused before it can corrupt a WAL directive line.
	req := small("t", "e")
	req.IdempotencyKey = "has space"
	if _, err := s.Submit(req); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("whitespace key: %v, want ErrBadRequest", err)
	}
}

// TestIdempotencyAcrossRestart: the WAL persists the binding, so a
// retry lands as a dedup after the crash, not a second sequencing.
func TestIdempotencyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNew(t, walConfig(dir, 1))
	st, err := s1.Submit(keyedReq(0))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(t, s1)

	s2 := mustNew(t, walConfig(dir, 1))
	retry, err := s2.Submit(keyedReq(0))
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Deduped || retry.ID != st.ID || retry.Seq != st.Seq {
		t.Fatalf("post-restart retry %+v, want dedup to %+v", retry, st)
	}
	log := drainClose(t, s2)
	if n := strings.Count(log, st.ID+" "); n != 1 {
		t.Fatalf("job appears %d times in the log, want exactly once:\n%s", n, log)
	}
}

// TestRestoreCheckpointNamedErrors: every malformed checkpoint decodes
// to an error matching ErrBadCheckpoint — empty, truncated, corrupted,
// and trailer-damaged inputs — complementing FuzzRestoreCheckpoint's
// never-panic sweep.
func TestRestoreCheckpointNamedErrors(t *testing.T) {
	s := mustNew(t, Config{Manual: true, SnapshotEvery: 1})
	req := small("t", "a")
	req.IdempotencyKey = "k1"
	if _, err := s.Submit(req); err != nil {
		t.Fatal(err)
	}
	s.Advance(0)
	good, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := RestoreCheckpoint(good, nil)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(cs.Idem) != 1 || cs.Idem[0] != (IdemEntry{Key: "k1", ID: "t/a"}) {
		t.Fatalf("idem round trip: %+v", cs.Idem)
	}

	bad := map[string][]byte{
		"empty":              nil,
		"magic only":         []byte("snckpt 1"),
		"bad magic":          []byte("snckpt 99\nseq 0 1\nsched 0\nend\n"),
		"no seq line":        []byte("snckpt 1\n"),
		"negative seq":       []byte("snckpt 1\nseq -1 1\nsched 0\nend\n"),
		"zero spacing":       []byte("snckpt 1\nseq 0 0\nsched 0\nend\n"),
		"payload oversold":   []byte("snckpt 1\nseq 0 1\nsched 999\nxx"),
		"truncated tail":     good[:len(good)-4],
		"junk payload":       []byte("snckpt 1\nseq 0 1\nsched 4\njunkend\n"),
		"bad trailer":        bytes.Replace(good, []byte("idem k1 t/a\n"), []byte("idem k1\n"), 1),
		"junk after end":     append(append([]byte{}, good...), []byte("trailing\n")...),
		"end marker missing": bytes.Replace(good, []byte("end\n"), []byte("END\n"), 1),
	}
	for name, data := range bad {
		_, err := RestoreCheckpoint(data, nil)
		if err == nil {
			t.Errorf("%s: malformed checkpoint accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: err %v does not match ErrBadCheckpoint", name, err)
		}
	}
}

// FuzzRecoverWAL throws torn, bit-flipped and arbitrary segment bytes
// at recovery: it must never panic, and whatever prefix it accepts
// must be a valid log — dense arrival grid, unique ids, idem bindings
// pointing at recovered jobs — that openWAL can repair and append to.
func FuzzRecoverWAL(f *testing.F) {
	var valid []byte
	valid = workload.AppendFrame(valid, []byte(walHeaderLine(0, 1)))
	valid = workload.AppendFrame(valid, []byte(walIdemLine("k0", "t/a")))
	valid = workload.AppendFrame(valid, []byte(workload.FormatJob(
		workload.TraceJob{ID: "t/a", ArrivalMS: 0, Network: "AlexNet", Batch: 16, Iterations: 1})))
	valid = workload.AppendFrame(valid, []byte(workload.FormatJob(
		workload.TraceJob{ID: "t/b", ArrivalMS: 1, Network: "AlexNet", Batch: 32, Iterations: 2})))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:11])
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-3] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walSegmentName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverWAL(dir)
		if err != nil {
			if !errors.Is(err, ErrWALCorrupt) && !errors.Is(err, ErrWALGap) {
				t.Fatalf("unnamed recovery error: %v", err)
			}
			return
		}
		seen := map[string]bool{}
		for i, tj := range rec.Jobs {
			if tj.ArrivalMS != int64(i)*rec.SpacingMS {
				t.Fatalf("job %d arrival %d off the %dms grid", i, tj.ArrivalMS, rec.SpacingMS)
			}
			if seen[tj.ID] {
				t.Fatalf("duplicate id %q survived recovery", tj.ID)
			}
			seen[tj.ID] = true
		}
		for _, e := range rec.Idem {
			if !seen[e.ID] {
				t.Fatalf("idem binding %q -> %q points at no recovered job", e.Key, e.ID)
			}
		}
		// The recovered directory must be appendable at the tear.
		spacing := rec.SpacingMS
		if spacing == 0 {
			spacing = 1
		}
		w, rec2, err := openWAL(dir, spacing, 0, 0)
		if err != nil {
			t.Fatalf("openWAL after clean recovery: %v", err)
		}
		if len(rec2.Jobs) != len(rec.Jobs) {
			t.Fatalf("reopen recovered %d jobs, first pass %d", len(rec2.Jobs), len(rec.Jobs))
		}
		extra := workload.TraceJob{
			ID: "fuzz/appended", ArrivalMS: int64(len(rec.Jobs)) * spacing,
			Network: "AlexNet", Batch: 16, Iterations: 1,
		}
		if seen[extra.ID] || extra.ArrivalMS < 0 { // overflow on an absurd fuzzed spacing
			w.close()
			return
		}
		if err := w.appendJob(extra, ""); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		rec3, err := RecoverWAL(dir)
		if err != nil {
			t.Fatalf("re-recover after append: %v", err)
		}
		if len(rec3.Jobs) != len(rec.Jobs)+1 || rec3.Torn != nil {
			t.Fatalf("append after repair not recovered: %d jobs, torn %v", len(rec3.Jobs), rec3.Torn)
		}
	})
}
