package serve

// A shard owns one slice of the tenant space: its own bounded
// per-tenant admission queues and its own sequencer. Shards never
// share admission state, so submissions to different shards contend
// only on the (short) merge step.

import "sync"

type shard struct {
	idx  int
	mu   sync.Mutex
	cond *sync.Cond

	queues  map[string][]*job
	ring    []string // tenants in first-seen order, the round-robin ring
	rr      int      // ring cursor
	pending int
	local   int // next per-shard sequence number
	stopped bool

	batch []*job // scratch: jobs popped in one sequencing pass
}

func newShard(idx int) *shard {
	sh := &shard{idx: idx, queues: make(map[string][]*job)}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// enqueue appends j to its tenant's queue and returns the 1-based
// position. Caller holds sh.mu.
func (sh *shard) enqueue(tenant string, j *job) int {
	q, known := sh.queues[tenant]
	if !known {
		sh.ring = append(sh.ring, tenant)
	}
	sh.queues[tenant] = append(q, j)
	sh.pending++
	sh.cond.Signal()
	return len(sh.queues[tenant])
}

// position returns j's 1-based place in its tenant queue, or 0 when j
// is no longer queued. Caller holds sh.mu.
func (sh *shard) position(j *job) int {
	for i, q := range sh.queues[j.tenant] {
		if q == j {
			return i + 1
		}
	}
	return 0
}

// sequenceLocked pops up to max jobs (all pending when max <= 0) off
// the shard round-robin — one job per tenant per turn, so no tenant
// can starve the others — claims a dense block of global slots for
// them, and hands them to the merger. Caller holds sh.mu; the slot
// claim and the merge happen under it, so a drained shard has no
// records in flight.
func (s *Service) sequenceLocked(sh *shard, max int) int {
	n := 0
	sh.batch = sh.batch[:0]
	for sh.pending > 0 && (max <= 0 || n < max) {
		for len(sh.queues[sh.ring[sh.rr]]) == 0 {
			sh.rr = (sh.rr + 1) % len(sh.ring)
		}
		t := sh.ring[sh.rr]
		sh.rr = (sh.rr + 1) % len(sh.ring)
		q := sh.queues[t]
		j := q[0]
		sh.queues[t] = q[1:]
		sh.pending--
		j.local = sh.local
		sh.local++
		sh.batch = append(sh.batch, j)
		n++
	}
	if n == 0 {
		return 0
	}
	// Claim a dense block of global slots. Slot order — never wall
	// clock — is the total order of the merged log.
	base := s.slots.Add(int64(n)) - int64(n)
	s.mu.Lock()
	s.mergeLocked(sh, base)
	s.mu.Unlock()
	return n
}
