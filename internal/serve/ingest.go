package serve

// The zero-churn ingest path. encoding/json's generic decoder
// allocates per field (reflection scratch, string headers, interface
// boxes); at serving rates that churn dominates the submit hot path.
// SubmitRequest is a small flat object, so a hand-rolled scanner
// decodes it with zero heap allocations beyond the strings that
// escape into the request itself, and the 202 response is rendered by
// an append-style encoder into a pooled buffer. Both halves keep
// encoding/json's observable semantics for this shape — unknown
// fields skipped, case-insensitive key match, null is a no-op,
// trailing data after the object ignored (stream-decoder semantics) —
// and the fuzz test in ingest_test.go drives both decoders
// differentially.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

// DecodeSubmitRequest parses one JSON-encoded SubmitRequest. It never
// panics on malformed input and allocates only when a string field
// contains escapes.
func DecodeSubmitRequest(data []byte, req *SubmitRequest) error {
	d := jsonScan{buf: data}
	d.ws()
	if d.null() {
		// encoding/json's stream decoder treats a top-level null as a
		// no-op assignment.
		return nil
	}
	if !d.eat('{') {
		return d.fail("expected object")
	}
	d.ws()
	if d.eat('}') {
		return nil
	}
	for {
		d.ws()
		key, err := d.key()
		if err != nil {
			return err
		}
		d.ws()
		if !d.eat(':') {
			return d.fail("expected ':' after key %q", key)
		}
		d.ws()
		if err := d.field(req, key); err != nil {
			return err
		}
		d.ws()
		if d.eat(',') {
			continue
		}
		if d.eat('}') {
			return nil
		}
		return d.fail("expected ',' or '}'")
	}
}

// jsonScan is a minimal non-allocating JSON scanner over one buffer.
type jsonScan struct {
	buf []byte
	i   int
}

func (d *jsonScan) fail(format string, args ...any) error {
	return fmt.Errorf("json offset %d: %s", d.i, fmt.Sprintf(format, args...))
}

func (d *jsonScan) ws() {
	for d.i < len(d.buf) {
		switch d.buf[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

func (d *jsonScan) eat(c byte) bool {
	if d.i < len(d.buf) && d.buf[d.i] == c {
		d.i++
		return true
	}
	return false
}

// field dispatches one key/value pair into req; unknown keys have
// their values skipped, like encoding/json.
func (d *jsonScan) field(req *SubmitRequest, key []byte) error {
	var sp *string
	var ip *int
	switch {
	case foldEq(key, "tenant"):
		sp = &req.Tenant
	case foldEq(key, "id"):
		sp = &req.ID
	case foldEq(key, "network"):
		sp = &req.Network
	case foldEq(key, "schedule"):
		sp = &req.Schedule
	case foldEq(key, "manager"):
		sp = &req.Manager
	case foldEq(key, "idempotency_key"):
		sp = &req.IdempotencyKey
	case foldEq(key, "batch"):
		ip = &req.Batch
	case foldEq(key, "priority"):
		ip = &req.Priority
	case foldEq(key, "iterations"):
		ip = &req.Iterations
	default:
		return d.skip(0)
	}
	if d.null() {
		return nil
	}
	if sp != nil {
		v, err := d.str()
		if err != nil {
			return d.fail("field %q: %v", key, err)
		}
		*sp = v
		return nil
	}
	v, err := d.integer()
	if err != nil {
		return d.fail("field %q: %v", key, err)
	}
	*ip = v
	return nil
}

// null consumes a JSON null (a no-op assignment, as in encoding/json).
func (d *jsonScan) null() bool {
	if d.i+4 <= len(d.buf) && string(d.buf[d.i:d.i+4]) == "null" {
		d.i += 4
		return true
	}
	return false
}

// str parses a JSON string. The fast path (no escapes) returns a
// string backed by one allocation of the exact content; escapes fall
// back to a builder.
func (d *jsonScan) str() (string, error) {
	if !d.eat('"') {
		return "", d.fail("expected string")
	}
	start := d.i
	ascii := true
	for d.i < len(d.buf) {
		c := d.buf[d.i]
		if c == '"' {
			raw := d.buf[start:d.i]
			d.i++
			if ascii || utf8.Valid(raw) {
				return string(raw), nil
			}
			return sanitizeUTF8(string(raw)), nil
		}
		if c == '\\' {
			return d.strSlow(start)
		}
		if c < 0x20 {
			return "", d.fail("control character in string")
		}
		if c >= utf8.RuneSelf {
			ascii = false
		}
		d.i++
	}
	return "", d.fail("unterminated string")
}

// key parses an object key without copying it out of the buffer (the
// dominant case; escaped keys take the slow path).
func (d *jsonScan) key() ([]byte, error) {
	if !d.eat('"') {
		return nil, d.fail("expected string")
	}
	start := d.i
	for d.i < len(d.buf) {
		c := d.buf[d.i]
		if c == '"' {
			k := d.buf[start:d.i]
			d.i++
			return k, nil
		}
		if c == '\\' {
			s, err := d.strSlow(start)
			return []byte(s), err
		}
		if c < 0x20 {
			return nil, d.fail("control character in string")
		}
		d.i++
	}
	return nil, d.fail("unterminated string")
}

// foldEq matches a key against an ASCII field name the way
// encoding/json folds: ASCII case-insensitively, with the full-fold
// fallback covering the Kelvin-sign and long-s orbits.
func foldEq(key []byte, name string) bool {
	if len(key) == len(name) {
		ok := true
		for i := 0; i < len(key); i++ {
			c := key[i]
			if c >= utf8.RuneSelf {
				ok = false
				break
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != name[i] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	for i := 0; i < len(key); i++ {
		if key[i] >= utf8.RuneSelf {
			return strings.EqualFold(string(key), name)
		}
	}
	return false
}

// strSlow finishes a string containing escapes; d.i is at the first
// backslash, start is just after the opening quote.
func (d *jsonScan) strSlow(start int) (string, error) {
	var b strings.Builder
	b.Write(d.buf[start:d.i])
	for d.i < len(d.buf) {
		c := d.buf[d.i]
		switch {
		case c == '"':
			d.i++
			return finishString(&b), nil
		case c == '\\':
			d.i++
			if d.i >= len(d.buf) {
				return "", d.fail("unterminated escape")
			}
			switch e := d.buf[d.i]; e {
			case '"', '\\', '/':
				b.WriteByte(e)
				d.i++
			case 'b':
				b.WriteByte('\b')
				d.i++
			case 'f':
				b.WriteByte('\f')
				d.i++
			case 'n':
				b.WriteByte('\n')
				d.i++
			case 'r':
				b.WriteByte('\r')
				d.i++
			case 't':
				b.WriteByte('\t')
				d.i++
			case 'u':
				d.i++
				r, err := d.uescape()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					// A valid pair is consumed whole; anything else
					// renders U+FFFD and reprocesses the next escape
					// on its own, as encoding/json does.
					if r2, n, ok := d.peekU(); ok {
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							d.i += n
							b.WriteRune(dec)
							continue
						}
					}
					b.WriteRune(utf8.RuneError)
					continue
				}
				b.WriteRune(r)
			default:
				return "", d.fail("bad escape '\\%c'", e)
			}
		case c < 0x20:
			return "", d.fail("control character in string")
		default:
			b.WriteByte(c)
			d.i++
		}
	}
	return "", d.fail("unterminated string")
}

// finish validates a completed slow-path string.
func finishString(b *strings.Builder) string {
	s := b.String()
	if utf8.ValidString(s) {
		return s
	}
	return sanitizeUTF8(s)
}

// peekU reads a "\u XXXX" escape at the cursor without consuming it,
// returning the rune and its byte length.
func (d *jsonScan) peekU() (rune, int, bool) {
	if d.i+6 > len(d.buf) || d.buf[d.i] != '\\' || d.buf[d.i+1] != 'u' {
		return 0, 0, false
	}
	var r rune
	for k := 0; k < 4; k++ {
		c := d.buf[d.i+2+k]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, 0, false
		}
	}
	return r, 6, true
}

// sanitizeUTF8 replaces invalid bytes with U+FFFD, byte for byte, the
// way encoding/json repairs string values.
func sanitizeUTF8(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); {
		r, n := utf8.DecodeRuneInString(s[i:])
		b.WriteRune(r)
		i += n
	}
	return b.String()
}

// uescape parses the 4 hex digits after "\u"; d.i is just past 'u'.
func (d *jsonScan) uescape() (rune, error) {
	if d.i+4 > len(d.buf) {
		return 0, d.fail("truncated \\u escape")
	}
	var r rune
	for k := 0; k < 4; k++ {
		c := d.buf[d.i+k]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, d.fail("bad \\u escape")
		}
	}
	d.i += 4
	return r, nil
}

// integer parses a JSON number that must be an integer (the only
// numeric shape in SubmitRequest), matching encoding/json's refusal of
// fractions and exponents for int fields.
func (d *jsonScan) integer() (int, error) {
	neg := d.eat('-')
	var v int64
	digits := 0
	for d.i < len(d.buf) {
		c := d.buf[d.i]
		if c >= '0' && c <= '9' {
			if v > ((1<<63-1)-9)/10 {
				return 0, d.fail("integer overflow")
			}
			v = v*10 + int64(c-'0')
			digits++
			d.i++
			continue
		}
		if c == '.' || c == 'e' || c == 'E' || c == '+' {
			return 0, d.fail("number is not an integer")
		}
		break
	}
	if digits == 0 {
		return 0, d.fail("expected number")
	}
	if neg {
		v = -v
	}
	return int(v), nil
}

// skip consumes one JSON value of any shape (for unknown keys).
func (d *jsonScan) skip(depth int) error {
	if depth > 64 {
		return d.fail("value nested too deeply")
	}
	d.ws()
	if d.i >= len(d.buf) {
		return d.fail("truncated value")
	}
	switch c := d.buf[d.i]; {
	case c == '"':
		_, err := d.str()
		return err
	case c == '{' || c == '[':
		open, close := c, byte('}')
		if open == '[' {
			close = ']'
		}
		d.i++
		d.ws()
		if d.eat(close) {
			return nil
		}
		for {
			if open == '{' {
				d.ws()
				if _, err := d.str(); err != nil {
					return err
				}
				d.ws()
				if !d.eat(':') {
					return d.fail("expected ':'")
				}
			}
			if err := d.skip(depth + 1); err != nil {
				return err
			}
			d.ws()
			if d.eat(',') {
				continue
			}
			if d.eat(close) {
				return nil
			}
			return d.fail("expected ',' or '%c'", close)
		}
	case c == 't':
		return d.lit("true")
	case c == 'f':
		return d.lit("false")
	case c == 'n':
		return d.lit("null")
	default:
		_, err := d.number()
		return err
	}
}

func (d *jsonScan) lit(s string) error {
	if d.i+len(s) <= len(d.buf) && string(d.buf[d.i:d.i+len(s)]) == s {
		d.i += len(s)
		return nil
	}
	return d.fail("bad literal")
}

// number consumes any JSON number (skipped values may be floats).
func (d *jsonScan) number() (int, error) {
	start := d.i
	for d.i < len(d.buf) {
		switch c := d.buf[d.i]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			d.i++
		default:
			if d.i == start {
				return 0, d.fail("expected value")
			}
			return 0, nil
		}
	}
	if d.i == start {
		return 0, d.fail("expected value")
	}
	return 0, nil
}

// appendJobStatusJSON renders the submit-response JobStatus (queued:
// no Result) exactly as the indented encoding/json encoder would,
// into dst.
func appendJobStatusJSON(dst []byte, st *JobStatus) []byte {
	dst = append(dst, "{\n  \"id\": "...)
	dst = appendJSONString(dst, st.ID)
	dst = append(dst, ",\n  \"tenant\": "...)
	dst = appendJSONString(dst, st.Tenant)
	dst = append(dst, ",\n  \"state\": "...)
	dst = appendJSONString(dst, string(st.State))
	dst = append(dst, ",\n  \"shard\": "...)
	dst = strconv.AppendInt(dst, int64(st.Shard), 10)
	if st.QueuePosition != 0 {
		dst = append(dst, ",\n  \"queue_position\": "...)
		dst = strconv.AppendInt(dst, int64(st.QueuePosition), 10)
	}
	dst = append(dst, ",\n  \"seq\": "...)
	dst = strconv.AppendInt(dst, int64(st.Seq), 10)
	dst = append(dst, ",\n  \"arrival_ms\": "...)
	dst = strconv.AppendInt(dst, st.ArrivalMS, 10)
	if st.Reason != "" {
		dst = append(dst, ",\n  \"reason\": "...)
		dst = appendJSONString(dst, st.Reason)
	}
	if st.Durable {
		dst = append(dst, ",\n  \"durable\": true"...)
	}
	if st.Deduped {
		dst = append(dst, ",\n  \"deduped\": true"...)
	}
	dst = append(dst, "\n}\n"...)
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString escapes s the way encoding/json does, including the
// HTML-safe escapes for <, > and &.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' && c < utf8.RuneSelf {
			i++
			continue
		}
		if c >= utf8.RuneSelf {
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				dst = append(dst, s[start:i]...)
				dst = append(dst, `\ufffd`...)
				i += size
				start = i
				continue
			}
			if r == '\u2028' || r == '\u2029' {
				dst = append(dst, s[start:i]...)
				dst = append(dst, `\u202`...)
				dst = append(dst, hexDigits[r&0xF])
				i += size
				start = i
				continue
			}
			i += size
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, `\"`...)
		case '\\':
			dst = append(dst, `\\`...)
		case '\n':
			dst = append(dst, `\n`...)
		case '\r':
			dst = append(dst, `\r`...)
		case '\t':
			dst = append(dst, `\t`...)
		default:
			dst = append(dst, `\u00`...)
			dst = append(dst, hexDigits[c>>4], hexDigits[c&0xF])
		}
		i++
		start = i
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// ingestBuf is the pooled per-request scratch of the HTTP submit
// handler: the body read buffer and the response render buffer.
type ingestBuf struct {
	body []byte
	out  []byte
}

var ingestBufs = sync.Pool{
	New: func() any { return &ingestBuf{body: make([]byte, 0, 1024), out: make([]byte, 0, 512)} },
}
