package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"repro/internal/sched"
)

// The HTTP/JSON surface of a Service. Every endpoint is stateless over
// the service's own state, so the handlers are safe under arbitrary
// concurrency.
//
//	POST /v1/jobs        submit a job (SubmitRequest body) -> 202 JobStatus
//	GET  /v1/jobs        list all jobs -> [JobStatus]
//	GET  /v1/jobs/{id}   one job ("tenant/name") -> JobStatus
//	GET  /v1/metrics     cluster snapshot; ?wait_jobs=N&wait_ms=M
//	                     long-polls until N jobs are sequenced
//	POST /v1/drain       stop admission, flush the queue -> DrainSummary
//	GET  /v1/replay-log  the deterministic request log (text/plain)
//	GET  /v1/healthz     liveness
//
// Submission errors map to status codes: bad request 400, duplicate id
// 409, queue full or quota exhausted 429, draining 503.

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// DrainSummary is the drain response: the final schedule of the whole
// request log plus the log itself.
type DrainSummary struct {
	Jobs      int           `json:"jobs"`
	Rejected  int           `json:"rejected"`
	Result    *sched.Result `json:"result"`
	ReplayLog string        `json:"replay_log"`
}

// errCode classifies a submission error for transport.
func errCode(err error) (int, string) {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrDuplicateID):
		return http.StatusConflict, "duplicate_id"
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrQuota):
		return http.StatusTooManyRequests, "quota"
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound, "unknown_job"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// readBody drains r into buf (reusing its capacity) and returns the
// filled slice.
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status, code := errCode(err)
	// Backpressure errors carry a retry hint for well-behaved clients.
	var re *RetryableError
	if errors.As(err, &re) && re.RetryAfter > 0 {
		secs := int64((re.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, apiError{Error: err.Error(), Code: code})
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "policy": s.PolicyName(), "devices": s.Cluster().Devices,
		})
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		// The submit hot path avoids encoding/json on both sides:
		// pooled read/render buffers, a non-allocating decoder, an
		// append-style encoder.
		buf := ingestBufs.Get().(*ingestBuf)
		defer ingestBufs.Put(buf)
		var err error
		if buf.body, err = readBody(r.Body, buf.body[:0]); err != nil {
			writeErr(w, fmt.Errorf("%w: body: %v", ErrBadRequest, err))
			return
		}
		var req SubmitRequest
		if err := DecodeSubmitRequest(buf.body, &req); err != nil {
			writeErr(w, fmt.Errorf("%w: body: %v", ErrBadRequest, err))
			return
		}
		st, err := s.Submit(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		if st.Result != nil {
			// A durable-synchronous submit (WAL attached) acks with the
			// full sequenced status; the schedule projection is not a
			// shape the zero-alloc renderer covers.
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		buf.out = appendJobStatusJSON(buf.out[:0], st)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write(buf.out)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs, err := s.Jobs()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, jobs)
	})

	mux.HandleFunc("GET /v1/jobs/{id...}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if n, _ := strconv.Atoi(r.URL.Query().Get("wait_jobs")); n > 0 {
			waitMS, _ := strconv.Atoi(r.URL.Query().Get("wait_ms"))
			if waitMS <= 0 {
				waitMS = 1000
			}
			s.WaitSequenced(n, time.Duration(waitMS)*time.Millisecond)
		}
		m, err := s.Metrics()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, m)
	})

	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Drain()
		if err != nil {
			writeErr(w, err)
			return
		}
		sum := DrainSummary{Jobs: len(res.Jobs), Result: res, ReplayLog: s.ReplayLog()}
		for _, j := range res.Jobs {
			if j.Rejected {
				sum.Rejected++
			}
		}
		writeJSON(w, http.StatusOK, sum)
	})

	mux.HandleFunc("GET /v1/replay-log", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.URL.Query().Get("sharded") != "" {
			_, _ = io.WriteString(w, s.ShardedReplayLog())
			return
		}
		_, _ = io.WriteString(w, s.ReplayLog())
	})

	mux.HandleFunc("GET /v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.Checkpoint()
		if err != nil {
			if errors.Is(err, ErrNoCheckpoint) {
				writeJSON(w, http.StatusNotFound, apiError{Error: err.Error(), Code: "no_checkpoint"})
				return
			}
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	})

	return mux
}

// Client is a thin typed client for the HTTP API, used by the load
// generator, cmd/snload, and the CI smoke test.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// APIError is a non-2xx response decoded from the error body.
type APIError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's backpressure hint (from the
	// Retry-After header), zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: api %d (%s): %s", e.Status, e.Code, e.Message)
}

// Err maps the wire code back to the matching sentinel error, so
// errors.Is works across the HTTP boundary.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case "bad_request":
		return ErrBadRequest
	case "duplicate_id":
		return ErrDuplicateID
	case "queue_full":
		return ErrQueueFull
	case "quota":
		return ErrQuota
	case "overloaded":
		return ErrOverloaded
	case "draining":
		return ErrDraining
	case "unknown_job":
		return ErrUnknownJob
	}
	return nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do performs one request and decodes the JSON response into out.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var retry time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Code != "" {
			return &APIError{Status: resp.StatusCode, Code: ae.Code, Message: ae.Error, RetryAfter: retry}
		}
		return &APIError{Status: resp.StatusCode, Code: "http", Message: string(data), RetryAfter: retry}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit submits one job.
func (c *Client) Submit(req SubmitRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// RetryPolicy shapes SubmitRetry's backoff: capped exponential with
// full jitter, honoring the server's Retry-After hint, bounded by an
// attempt cap and an overall deadline.
type RetryPolicy struct {
	// MaxAttempts is the total number of submit attempts (default 5).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms); attempt n
	// backs off up to BaseDelay·2ⁿ.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step and the honored Retry-After hint
	// (default 2s), so a pathological hint cannot stall the client.
	MaxDelay time.Duration
	// Deadline bounds the whole retry sequence; 0 means attempts-only.
	// The client never starts a sleep that would cross the deadline.
	Deadline time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the jittered sleep before retry attempt+1: full
// jitter over the capped exponential step, where a Retry-After hint
// (capped too) replaces the step.
func (p RetryPolicy) backoff(attempt int, hint time.Duration) time.Duration {
	d := p.BaseDelay << attempt
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	if hint > 0 {
		d = hint
		if d > p.MaxDelay {
			d = p.MaxDelay
		}
	}
	// Full jitter: spread retries over (0, d] so synchronized clients
	// do not re-arrive in lockstep.
	return time.Duration(rand.Int64N(int64(d))) + 1
}

// SubmitRetry submits one job with retries under pol. Backpressure
// responses (queue full, overload shed) always retry; transport
// failures — where the client cannot know whether the service
// sequenced the job — retry only when the request carries an
// IdempotencyKey, because only then is a replayed submission safe.
// Validation, quota, duplicate-id and draining errors fail fast. It
// returns the status, how many retries were spent, and the last error
// when attempts or the deadline ran out.
func (c *Client) SubmitRetry(req SubmitRequest, pol RetryPolicy) (*JobStatus, int, error) {
	pol = pol.withDefaults()
	var deadline time.Time
	if pol.Deadline > 0 {
		deadline = time.Now().Add(pol.Deadline)
	}
	retries := 0
	for attempt := 0; ; attempt++ {
		st, err := c.Submit(req)
		if err == nil {
			return st, retries, nil
		}
		var hint time.Duration
		var ae *APIError
		switch {
		case errors.As(err, &ae):
			if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrOverloaded) {
				return nil, retries, err
			}
			hint = ae.RetryAfter
		case req.IdempotencyKey == "":
			// Ambiguous transport failure and no key: a blind resubmit
			// could double-sequence.
			return nil, retries, err
		}
		if attempt+1 >= pol.MaxAttempts {
			return nil, retries, err
		}
		sleep := pol.backoff(attempt, hint)
		if !deadline.IsZero() && time.Now().Add(sleep).After(deadline) {
			return nil, retries, err
		}
		time.Sleep(sleep)
		retries++
	}
}

// Status fetches one job's status by full id ("tenant/name").
func (c *Client) Status(id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Metrics fetches the cluster snapshot.
func (c *Client) Metrics() (*Metrics, error) {
	var m Metrics
	if err := c.do(http.MethodGet, "/v1/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// MetricsWait long-polls until n jobs are sequenced (or the service
// side waits out), then returns the snapshot.
func (c *Client) MetricsWait(n int, wait time.Duration) (*Metrics, error) {
	var m Metrics
	path := fmt.Sprintf("/v1/metrics?wait_jobs=%d&wait_ms=%d", n, wait.Milliseconds())
	if err := c.do(http.MethodGet, path, nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Drain drains the service and returns the final summary.
func (c *Client) Drain() (*DrainSummary, error) {
	var d DrainSummary
	if err := c.do(http.MethodPost, "/v1/drain", nil, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// ReplayLog fetches the deterministic request log.
func (c *Client) ReplayLog() (string, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/replay-log")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: replay-log: http %d", resp.StatusCode)
	}
	return string(data), nil
}

// Checkpoint fetches the service's compaction checkpoint (404 when
// SnapshotEvery is off).
func (c *Client) Checkpoint() ([]byte, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/checkpoint")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Code != "" {
			return nil, &APIError{Status: resp.StatusCode, Code: ae.Code, Message: ae.Error}
		}
		return nil, fmt.Errorf("serve: checkpoint: http %d", resp.StatusCode)
	}
	return data, nil
}

// Healthz reports whether the service answers its liveness probe.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}
