package serve

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestChaosCheckpointDuringDrain races Service.Checkpoint against
// concurrent submissions and the drain itself (run under -race in CI).
// Every checkpoint that succeeds mid-chaos must be a coherent
// compaction artifact: restoring it and appending the request-log
// suffix it does not cover reproduces the drained result exactly. A
// checkpoint interleaved with Drain may also fail cleanly — what it
// must never do is race, corrupt its payload, or capture a state the
// log suffix cannot extend.
func TestChaosCheckpointDuringDrain(t *testing.T) {
	s := mustNew(t, Config{QueueDepth: 16, Shards: 3, SnapshotEvery: 2, TenantQuota: 8})

	const tenants, perTenant = 4, 8
	var wg sync.WaitGroup
	for ci := 0; ci < tenants; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for k := 0; k < perTenant; k++ {
				req := small(fmt.Sprintf("w%d", ci), fmt.Sprintf("j%d", k))
				req.Iterations = 1 + k%3
				for {
					_, err := s.Submit(req)
					if errors.Is(err, ErrQueueFull) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("submit: %v", err)
					}
					break
				}
			}
		}(ci)
	}

	// Checkpoint continuously while traffic is in flight and while the
	// drain below flushes the shards.
	stop := make(chan struct{})
	var ckpts [][]byte
	var ckptMu sync.Mutex
	var cwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, err := s.Checkpoint()
				if err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
				ckptMu.Lock()
				ckpts = append(ckpts, data)
				ckptMu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	wg.Wait()
	s.WaitSequenced(tenants*perTenant, 5*time.Second)
	final, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	// One more checkpoint strictly after the drain: it covers the whole
	// log, so its resume needs no suffix at all.
	post, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	cwg.Wait()
	ckpts = append(ckpts, post)

	if len(final.Jobs) != tenants*perTenant {
		t.Fatalf("drained %d jobs, want %d", len(final.Jobs), tenants*perTenant)
	}
	trace, err := workload.ParseTrace(strings.NewReader(s.ReplayLog()))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != tenants*perTenant {
		t.Fatalf("request log holds %d jobs, want %d", len(trace), tenants*perTenant)
	}

	// Every snapshot taken during the chaos restores and resumes to the
	// exact drained result. Restores share one estimator: the dry runs
	// are pure, so sharing cannot change any outcome, only the cost.
	est := sched.NewEstimator()
	seen := map[int]bool{}
	for i, data := range ckpts {
		cs, err := RestoreCheckpoint(data, est)
		if err != nil {
			t.Fatalf("checkpoint %d: restore: %v", i, err)
		}
		if cs.Seq < 0 || cs.Seq > len(trace) {
			t.Fatalf("checkpoint %d covers seq %d of a %d-entry log", i, cs.Seq, len(trace))
		}
		// Resuming is the expensive half; replay each distinct log
		// position once (concurrent checkpointers mostly capture
		// duplicate positions).
		if seen[cs.Seq] {
			continue
		}
		seen[cs.Seq] = true
		resumed, err := cs.Resume(sched.JobsFromTrace(trace[cs.Seq:]))
		if err != nil {
			t.Fatalf("checkpoint %d (seq %d): resume: %v", i, cs.Seq, err)
		}
		if !reflect.DeepEqual(resumed, final) {
			t.Fatalf("checkpoint %d (seq %d): resumed result diverges from drain", i, cs.Seq)
		}
	}
	if !seen[len(trace)] {
		t.Error("post-drain checkpoint did not cover the full log")
	}
}

// TestChaosDrainRacesSubmit hammers Drain from several goroutines
// while submitters are still pushing: exactly one drain result is
// computed, late submissions fail with ErrDraining, and the drained
// result replays the request log byte for byte.
func TestChaosDrainRacesSubmit(t *testing.T) {
	s := mustNew(t, Config{QueueDepth: 32, Shards: 2})

	var wg sync.WaitGroup
	for ci := 0; ci < 4; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				req := small(fmt.Sprintf("w%d", ci), fmt.Sprintf("j%d", k))
				_, err := s.Submit(req)
				switch {
				case err == nil:
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
					// Both are legitimate mid-drain outcomes; the log
					// below is the source of truth for what got in.
				default:
					t.Errorf("submit: %v", err)
				}
			}
		}(ci)
	}

	results := make([]*sched.Result, 8)
	var dwg sync.WaitGroup
	for r := range results {
		dwg.Add(1)
		go func(r int) {
			defer dwg.Done()
			res, err := s.Drain()
			if err != nil {
				t.Errorf("drain %d: %v", r, err)
				return
			}
			results[r] = res
		}(r)
	}
	dwg.Wait()
	wg.Wait()

	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatal("concurrent drains computed distinct results")
		}
	}
	if results[0] == nil {
		t.Fatal("no drain result")
	}
	// The drained result is exactly the replay of the accumulated log.
	trace, err := workload.ParseTrace(strings.NewReader(s.ReplayLog()))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != len(results[0].Jobs) {
		t.Fatalf("log holds %d jobs, drain scheduled %d", len(trace), len(results[0].Jobs))
	}
	sch, err := sched.NewScheduler(s.Cluster(), sched.Packing)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := sch.Run(sched.JobsFromTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, results[0]) {
		t.Fatal("drained result diverges from a from-scratch replay of the log")
	}
}
