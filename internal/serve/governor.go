package serve

// The admission governor is the SLO-aware half of backpressure: the
// queue-depth watermark bounds memory, the governor bounds latency.
// It tracks the service's own submit latency over a sliding window
// and, when the windowed p99 exceeds the configured target, sheds
// load (Submit fails fast with ErrOverloaded + Retry-After) until the
// p99 recovers. Shed-path latencies are observed too — shedding is
// cheap, so the window drains toward fast samples and the governor
// un-sheds on its own; hysteresis (recover below 80% of the target)
// keeps it from flapping at the boundary.

import (
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	governorWindow  = 256 // latency samples retained
	governorRecalc  = 64  // recompute p99 every this many samples
	governorMinObs  = 64  // no verdict before this many samples
	governorRecover = 0.8 // un-shed below this fraction of the SLO
)

type governor struct {
	slo time.Duration
	lg  *slog.Logger

	mu      sync.Mutex
	window  []time.Duration // ring buffer once full
	idx     int
	since   int
	scratch []time.Duration // preallocated sort buffer
	p99     time.Duration

	shed atomic.Bool
}

func newGovernor(slo time.Duration, lg *slog.Logger) *governor {
	return &governor{
		slo:     slo,
		lg:      lg,
		window:  make([]time.Duration, 0, governorWindow),
		scratch: make([]time.Duration, 0, governorWindow),
	}
}

// shedding reports whether submissions should fail fast right now.
func (g *governor) shedding() bool { return g.shed.Load() }

// observe records one submit latency and periodically re-evaluates the
// shed decision.
func (g *governor) observe(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.window) < governorWindow {
		g.window = append(g.window, d)
	} else {
		g.window[g.idx] = d
		g.idx = (g.idx + 1) % governorWindow
	}
	g.since++
	if g.since < governorRecalc || len(g.window) < governorMinObs {
		return
	}
	g.since = 0
	g.scratch = append(g.scratch[:0], g.window...)
	sort.Slice(g.scratch, func(i, j int) bool { return g.scratch[i] < g.scratch[j] })
	g.p99 = g.scratch[len(g.scratch)*99/100]
	if g.shed.Load() {
		if float64(g.p99) < governorRecover*float64(g.slo) {
			g.shed.Store(false)
			g.lg.Info("load shed cleared", "p99", g.p99, "slo", g.slo)
		}
	} else if g.p99 > g.slo {
		g.shed.Store(true)
		g.lg.Warn("shedding load", "p99", g.p99, "slo", g.slo)
	}
}
