package serve

// The read side of the write-ahead log: scan segments in order,
// validate every frame, and rebuild the merged-log prefix a restarted
// service resumes from.
//
// The torn-tail rule: a frame-level failure — truncated header,
// truncated payload, checksum mismatch — is the signature of a crash
// mid-write, so recovery stops there, keeps everything before it, and
// reports the tear (RecoveredLog.Torn) so the writer can truncate the
// file and resume appending at that exact byte. Everything after the
// first bad frame is dropped even if later bytes happen to look like
// frames: an append-only log can only tear at its tail, so bytes past
// a tear are either garbage or half-written.
//
// A structurally valid frame whose *content* is wrong — an unparseable
// job line, an arrival off the slot grid, a duplicate id, a segment
// header naming the wrong segment — is NOT a crash artifact (the
// checksum proves those bytes were written deliberately), so it
// surfaces as a named ErrWALCorrupt instead of being silently
// truncated away. Recovery never panics on any input; FuzzRecoverWAL
// holds it to that.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// Named recovery errors. errors.Is matches them through the wrapped
// context every failure carries.
var (
	// ErrWALCorrupt: a checksummed frame holds content the writer could
	// never have produced (bad job line, off-grid arrival, duplicate
	// id, mismatched segment header). The log needs operator attention;
	// auto-truncating it could silently discard acked submissions.
	ErrWALCorrupt = errors.New("serve: wal corrupt")
	// ErrWALGap: the segment chain is missing a middle segment, so the
	// recovered prefix would have a hole — unrecoverable automatically.
	ErrWALGap = errors.New("serve: wal segment gap")
	// ErrWALSpacing: the recovered log was merged at a different
	// virtual-arrival spacing than the service is configured for.
	ErrWALSpacing = errors.New("serve: wal spacing mismatch")
)

// IdemEntry is one recovered idempotency binding: a retry of Key must
// return job ID instead of sequencing a new job.
type IdemEntry struct {
	Key string
	ID  string
}

// TornTail locates the first bad frame of a recovered WAL: everything
// from Offset in Segment onward is dropped.
type TornTail struct {
	Segment int
	Offset  int64
	// Reason is the frame error that marked the tear.
	Reason string
}

// RecoveredLog is the state rebuilt from a WAL directory.
type RecoveredLog struct {
	// Jobs is the recovered merged-log prefix, in slot order; job i's
	// arrival is i·SpacingMS, exactly as the uninterrupted run merged
	// it.
	Jobs []workload.TraceJob
	// Idem holds the surviving idempotency bindings in log order. A
	// binding whose job record fell past the tear is dropped: its
	// submitter was never acked, and the retry must re-sequence.
	Idem []IdemEntry
	// SpacingMS is the virtual-arrival spacing recorded in the segment
	// headers; 0 when the directory held no readable segments.
	SpacingMS int64
	// Segments counts the segment files present on disk (including any
	// past the tear that recovery dropped).
	Segments int
	// Torn is non-nil when the log ended in a torn tail rather than a
	// clean frame boundary.
	Torn *TornTail
}

// RecoverWAL scans a WAL directory and rebuilds the merged-log prefix.
// It is read-only: truncating the tear on disk is the writer's job
// (the service does it when it reopens the WAL for appending). An
// empty or absent directory recovers an empty log.
func RecoverWAL(dir string) (*RecoveredLog, error) {
	segs, err := walSegments(dir)
	if err != nil {
		return nil, err
	}
	rec := &RecoveredLog{Segments: len(segs)}
	seen := make(map[string]bool)
	var pendingKey, pendingID string
	var pendingSeg int
	var pendingOff int64
	pending := false

	for n, path := range segs {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: wal: %w", err)
		}
		var off int64
		tear := func(reason error) {
			// A pending idem directive is part of the torn tail too: its
			// job record never made it to disk, so the tear moves back to
			// the directive's own frame — otherwise repair would leave a
			// dangling directive that shadows the next append.
			if pending {
				rec.Torn = &TornTail{Segment: pendingSeg, Offset: pendingOff,
					Reason: reason.Error() + " (dangling idem directive dropped)"}
				return
			}
			rec.Torn = &TornTail{Segment: n, Offset: off, Reason: reason.Error()}
		}

		// Segment header frame.
		payload, rest, err := workload.ReadFrame(data)
		if err != nil {
			tear(err)
			return rec, nil
		}
		segIdx, spacing, err := parseWALHeader(string(payload))
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d header: %v", ErrWALCorrupt, n, err)
		}
		if segIdx != n {
			return nil, fmt.Errorf("%w: segment file %d declares index %d", ErrWALCorrupt, n, segIdx)
		}
		if rec.SpacingMS == 0 {
			rec.SpacingMS = spacing
		} else if spacing != rec.SpacingMS {
			return nil, fmt.Errorf("%w: segment %d merged at %d ms, chain started at %d ms",
				ErrWALCorrupt, n, spacing, rec.SpacingMS)
		}
		off = int64(workload.FrameSize(len(payload)))

		for len(rest) > 0 {
			payload, rest, err = workload.ReadFrame(rest)
			if err != nil {
				tear(err)
				return rec, nil
			}
			line := string(payload)
			switch {
			case strings.HasPrefix(line, "# idem "):
				key, id, err := parseWALIdem(line)
				if err != nil {
					return nil, fmt.Errorf("%w: segment %d offset %d: %v", ErrWALCorrupt, n, off, err)
				}
				if pending {
					return nil, fmt.Errorf("%w: segment %d offset %d: idem directive %q shadows an unbound directive %q",
						ErrWALCorrupt, n, off, key, pendingKey)
				}
				pendingKey, pendingID, pending = key, id, true
				pendingSeg, pendingOff = n, off
			case strings.HasPrefix(line, "#"):
				return nil, fmt.Errorf("%w: segment %d offset %d: unexpected directive %q", ErrWALCorrupt, n, off, line)
			default:
				jobs, err := workload.ParseTrace(strings.NewReader(line))
				if err != nil || len(jobs) != 1 {
					return nil, fmt.Errorf("%w: segment %d offset %d: bad job record: %v", ErrWALCorrupt, n, off, err)
				}
				tj := jobs[0]
				if seen[tj.ID] {
					return nil, fmt.Errorf("%w: segment %d offset %d: duplicate job id %q", ErrWALCorrupt, n, off, tj.ID)
				}
				if want := int64(len(rec.Jobs)) * rec.SpacingMS; tj.ArrivalMS != want {
					return nil, fmt.Errorf("%w: segment %d offset %d: job %q arrival %d ms, slot grid says %d ms",
						ErrWALCorrupt, n, off, tj.ID, tj.ArrivalMS, want)
				}
				if pending {
					if pendingID != tj.ID {
						return nil, fmt.Errorf("%w: segment %d offset %d: idem directive binds %q, next record is %q",
							ErrWALCorrupt, n, off, pendingID, tj.ID)
					}
					rec.Idem = append(rec.Idem, IdemEntry{Key: pendingKey, ID: pendingID})
					pending = false
				}
				seen[tj.ID] = true
				rec.Jobs = append(rec.Jobs, tj)
			}
			off += int64(workload.FrameSize(len(payload)))
		}
	}
	// A dangling final directive (its job record never made it to disk)
	// is a torn tail even when every frame read cleanly: the submitter
	// was never acked, and the writer must truncate the directive before
	// appending or it would shadow the next record's directive.
	if pending {
		rec.Torn = &TornTail{Segment: pendingSeg, Offset: pendingOff,
			Reason: fmt.Sprintf("dangling idem directive %q (job record never written)", pendingKey)}
	}
	return rec, nil
}

// walSegments lists the directory's segment files in chain order,
// requiring the chain to start at 0 and be contiguous.
func walSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: wal: %w", err)
	}
	idx := make(map[int]string)
	max := -1
	for _, e := range entries {
		name := e.Name()
		var n int
		if _, err := fmt.Sscanf(name, "wal-%d.seg", &n); err != nil || walSegmentName(n) != name {
			continue // not a segment file; leave it alone
		}
		idx[n] = filepath.Join(dir, name)
		if n > max {
			max = n
		}
	}
	segs := make([]string, 0, len(idx))
	for n := 0; n <= max; n++ {
		path, ok := idx[n]
		if !ok {
			return nil, fmt.Errorf("%w: segment %d of %d missing", ErrWALGap, n, max)
		}
		segs = append(segs, path)
	}
	return segs, nil
}

// parseWALHeader validates a segment header line and extracts the
// segment index and spacing.
func parseWALHeader(line string) (seg int, spacingMS int64, err error) {
	f := strings.Fields(line)
	// "# snwal 1 seg <n> spacing <ms>"
	if len(f) != 7 || f[0] != "#" || f[1]+" "+f[2] != walMagic || f[3] != "seg" || f[5] != "spacing" {
		return 0, 0, fmt.Errorf("bad header %q", strings.TrimSuffix(line, "\n"))
	}
	if seg, err = strconv.Atoi(f[4]); err != nil || seg < 0 {
		return 0, 0, fmt.Errorf("bad segment index %q", f[4])
	}
	if spacingMS, err = strconv.ParseInt(f[6], 10, 64); err != nil || spacingMS <= 0 {
		return 0, 0, fmt.Errorf("bad spacing %q", f[6])
	}
	return seg, spacingMS, nil
}

// parseWALIdem validates an idempotency directive line.
func parseWALIdem(line string) (key, id string, err error) {
	f := strings.Fields(line)
	// "# idem <key> <id>"
	if len(f) != 4 || f[0] != "#" || f[1] != "idem" {
		return "", "", fmt.Errorf("bad idem directive %q", strings.TrimSuffix(line, "\n"))
	}
	return f[2], f[3], nil
}
