package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

func startServer(t *testing.T, cfg Config) (*Client, *Service) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, s
}

func TestHTTPEndToEnd(t *testing.T) {
	c, _ := startServer(t, Config{})
	if err := c.Healthz(); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	st, err := c.Submit(SubmitRequest{Tenant: "web", ID: "a", Network: "AlexNet", Batch: 16, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "web/a" {
		t.Errorf("submitted id = %q", st.ID)
	}
	if _, err := c.Submit(SubmitRequest{Tenant: "web", ID: "dyn", Network: "AlexNet", Schedule: "16x2,32"}); err != nil {
		t.Fatal(err)
	}
	m, err := c.MetricsWait(2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsSequenced != 2 {
		t.Fatalf("metrics sequenced = %d, want 2", m.JobsSequenced)
	}
	if m2, err := c.Metrics(); err != nil || m2.JobsSequenced != 2 {
		t.Fatalf("plain metrics = %+v, %v", m2, err)
	}
	st, err = c.Status("web/a")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateScheduled || st.Result == nil {
		t.Errorf("status = %+v, want scheduled with result", st)
	}
	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("job list = %d entries, want 2", len(jobs))
	}
	logText, err := c.ReplayLog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(logText, workload.TraceHeader) {
		t.Errorf("replay log missing header:\n%s", logText)
	}
	d, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if d.Jobs != 2 || d.Result == nil || d.ReplayLog != logText {
		t.Errorf("drain summary = jobs %d, log match %v", d.Jobs, d.ReplayLog == logText)
	}
	// The dynamic job's schedule survives the round trip.
	if !strings.Contains(d.ReplayLog, "16x2,32") {
		t.Errorf("replay log lost the batch schedule:\n%s", d.ReplayLog)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	c, s := startServer(t, Config{Manual: true, QueueDepth: 1, TenantQuota: 2})
	codes := func(req SubmitRequest) int {
		_, err := c.Submit(req)
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("submit %+v: err = %v, want APIError", req, err)
		}
		return ae.Status
	}
	if got := codes(SubmitRequest{Network: "NopeNet", Batch: 4}); got != http.StatusBadRequest {
		t.Errorf("unknown network -> %d, want 400", got)
	}
	if _, err := c.Submit(small("t", "a")); err != nil {
		t.Fatal(err)
	}
	if got := codes(small("t", "a")); got != http.StatusConflict {
		t.Errorf("duplicate -> %d, want 409", got)
	}
	if got := codes(small("t", "b")); got != http.StatusTooManyRequests {
		t.Errorf("queue full -> %d, want 429", got)
	}
	s.Advance(0)
	if _, err := c.Submit(small("t", "b")); err != nil {
		t.Fatal(err)
	}
	s.Advance(0)
	if got := codes(small("t", "c")); got != http.StatusTooManyRequests {
		t.Errorf("quota -> %d, want 429", got)
	}
	// Sentinels survive the HTTP boundary, and the wire error is
	// self-describing.
	_, err := c.Submit(small("t", "c"))
	if !errors.Is(err, ErrQuota) {
		t.Errorf("errors.Is(ErrQuota) false across HTTP: %v", err)
	}
	if !strings.Contains(err.Error(), "429") || !strings.Contains(err.Error(), "quota") {
		t.Errorf("API error text uninformative: %v", err)
	}
	if _, err := c.Status("t/none"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("status of unknown job: %v, want ErrUnknownJob", err)
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(small("t", "late")); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: %v, want ErrDraining", err)
	}
}

// The load generator drives the full HTTP stack and its report adds up.
func TestRunLoadAgainstService(t *testing.T) {
	c, s := startServer(t, Config{QueueDepth: 16})
	templates := []workload.TraceJob{
		{Network: "AlexNet", Batch: 16, Iterations: 1},
		{Network: "AlexNet", Batch: 32, Iterations: 2, Priority: 3},
		{Network: "AlexNet", BatchSchedule: workload.Schedule{16, 16, 32}, Batch: 32, Iterations: 3},
	}
	rep, err := RunLoad(LoadConfig{
		Target: c, Clients: 3, JobsPerClient: 5, Templates: templates, Drain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 15 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want 15 submitted", rep)
	}
	if rep.Drained == nil || rep.Drained.Jobs != 15 {
		t.Fatalf("drain summary = %+v, want 15 jobs", rep.Drained)
	}
	if rep.Throughput <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("latency stats implausible: %+v", rep)
	}
	// The drained service's log replays to the drain summary's result.
	trace, err := workload.ParseTrace(strings.NewReader(rep.Drained.ReplayLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 15 {
		t.Fatalf("replay log holds %d jobs, want 15", len(trace))
	}
	fresh, err := sched.NewScheduler(s.Cluster(), sched.Packing)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fresh.Run(sched.JobsFromTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Makespan != rep.Drained.Result.Makespan || replayed.Utilization != rep.Drained.Result.Utilization {
		t.Error("replay of load-generated log differs from drain result")
	}
}

// Quota denials surface in the load report instead of failing the run.
func TestRunLoadQuota(t *testing.T) {
	c, _ := startServer(t, Config{TenantQuota: 2})
	rep, err := RunLoad(LoadConfig{
		Target: c, Clients: 2, JobsPerClient: 4,
		Templates: []workload.TraceJob{{Network: "AlexNet", Batch: 16, Iterations: 1}},
		Drain:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 4 || rep.QuotaDenied != 4 {
		t.Errorf("report = %+v, want 4 submitted + 4 quota-denied", rep)
	}
}
