package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// decodeStd is the reference decoder: the exact encoding/json path the
// HTTP handler used before the hand-rolled one (stream semantics —
// trailing data after the first value is ignored).
func decodeStd(data []byte, req *SubmitRequest) error {
	return json.NewDecoder(bytes.NewReader(data)).Decode(req)
}

func TestDecodeSubmitRequestMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		`{"tenant":"acme","id":"j1","network":"AlexNet","batch":256}`,
		`{"network":"VGG16","batch":32,"priority":-2,"iterations":10,"manager":"vdnn"}`,
		`{"network":"AlexNet","schedule":"16x2,32","tenant":"dyn"}`,
		`  {  "Network" : "ResNet50" , "BATCH" : 64 }  `,
		`{"network":"AlexNet","batch":1,"unknown":{"nested":[1,2,{"x":null}],"b":true}}`,
		`{"network":"AlexNet","batch":1,"extra":"ignored","also":3.75}`,
		`{"tenant":"\u00e9\u0442\u4f60","network":"AlexNet","batch":1}`,
		`{"id":"a\\\"b\tc","network":"AlexNet","batch":1}`,
		`{"id":"\ud83d\ude00","network":"AlexNet","batch":1}`,
		`{"tenant":null,"network":"AlexNet","batch":2}`,
		`{}`,
		`null`,
		`{"network":"AlexNet","batch":-5}`,
		`{"network":"AlexNet","batch":1} trailing garbage`,
	}
	for _, body := range cases {
		var got, want SubmitRequest
		gotErr := DecodeSubmitRequest([]byte(body), &got)
		wantErr := decodeStd([]byte(body), &want)
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("%s: error mismatch: got %v, encoding/json %v", body, gotErr, wantErr)
			continue
		}
		if gotErr == nil && got != want {
			t.Errorf("%s:\ngot  %+v\nwant %+v", body, got, want)
		}
	}
}

func TestDecodeSubmitRequestErrors(t *testing.T) {
	cases := []string{
		``,
		`[1,2]`,
		`"just a string"`,
		`{"network": "AlexNet"`,
		`{"network": }`,
		`{"batch": 1.5, "network":"x"}`,
		`{"batch": 1e3, "network":"x"}`,
		`{"batch": "12", "network":"x"}`,
		`{"network": 42}`,
		`{"network": "x" "batch": 1}`,
		`{network: "x"}`,
		`{"id":"unterminated`,
		`{"id":"bad \q escape"}`,
		`{"id":"trunc \u12"}`,
		"{\"id\":\"ctrl \x01 char\"}",
	}
	for _, body := range cases {
		var req SubmitRequest
		if err := DecodeSubmitRequest([]byte(body), &req); err == nil {
			t.Errorf("%q: decoder accepted malformed body", body)
		}
	}
}

func TestAppendJobStatusJSONMatchesEncodingJSON(t *testing.T) {
	cases := []*JobStatus{
		{ID: "acme/j1", Tenant: "acme", State: StateQueued, Shard: 3, QueuePosition: 7, Seq: -1},
		{ID: "t/j", Tenant: "t", State: StateQueued, Seq: -1},
		{ID: `q"uote\back`, Tenant: "<tag>&amp", State: StateQueued, Seq: -1, ArrivalMS: 12345},
		{ID: "uni/\u00e9\u4f60", Tenant: "u2028\u2028u2029\u2029", State: StateRejected, Seq: 4, Reason: "bad\nreason\ttabs"},
		{ID: "bad/\xff\xfeutf8", Tenant: "t", State: StateQueued, Seq: -1},
		{ID: "d/j", Tenant: "d", State: StateScheduled, Shard: 1, Seq: 9, ArrivalMS: 9, Durable: true},
		{ID: "d/j2", Tenant: "d", State: StateQueued, Seq: -1, Deduped: true},
		{ID: "d/j3", Tenant: "d", State: StateScheduled, Seq: 0, Durable: true, Deduped: true},
	}
	for _, st := range cases {
		want, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		got := appendJobStatusJSON(nil, st)
		if !bytes.Equal(got, want) {
			t.Errorf("status %+v:\ngot  %q\nwant %q", st, got, want)
		}
	}
}

// FuzzDecodeSubmitRequest drives the hand-rolled decoder and
// encoding/json differentially: the fast path must never panic, and
// whenever both decoders accept a body they must agree on every field.
func FuzzDecodeSubmitRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"acme","id":"j1","network":"AlexNet","batch":256,"priority":3,"iterations":4}`))
	f.Add([]byte(`{"network":"x","schedule":"16x2,32","manager":"vdnn"}`))
	f.Add([]byte(`{"network":"x","idempotency_key":"cl00-k001","IDEMPOTENCY_KEY":"shout"}`))
	f.Add([]byte(`{"NeTwOrK":"x","unknown":[{"deep":null},true,1.5e3]}`))
	f.Add([]byte(`{"id":"\ud83d\ude00 \u00e9 \\ \" \n","network":"x","batch":1}`))
	f.Add([]byte(`{"id":"\ud800 lone","network":"x"}`))
	f.Add([]byte("{\"tenant\":\"\xff\xfe\",\"batch\":-0}"))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"batch":9223372036854775807}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var got SubmitRequest
		gotErr := DecodeSubmitRequest(data, &got)
		var want SubmitRequest
		wantErr := decodeStd(data, &want)
		if gotErr == nil && wantErr == nil && got != want {
			t.Fatalf("decoders disagree on %q:\nfast %+v\nstd  %+v", data, got, want)
		}
		// The fast decoder may be laxer on number syntax than the
		// standard one (leading zeros), but must never accept what it
		// cannot represent: any accepted body must re-encode cleanly.
		if gotErr == nil {
			if _, err := json.Marshal(got); err != nil {
				t.Fatalf("accepted request fails to re-encode: %v", err)
			}
		}
	})
}

func BenchmarkServeIngest(b *testing.B) {
	body := []byte(`{"tenant":"acme","id":"j042","network":"AlexNet","batch":256,"priority":3,"iterations":4}`)

	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req SubmitRequest
			if err := DecodeSubmitRequest(body, &req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("decode-std", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req SubmitRequest
			if err := decodeStd(body, &req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("sequence", func(b *testing.B) {
		s, err := New(Config{Cluster: testCluster(), Manual: true, QueueDepth: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		reqs := make([]SubmitRequest, b.N)
		for i := range reqs {
			reqs[i] = SubmitRequest{Tenant: "bench", ID: fmt.Sprintf("j%d", i), Network: "AlexNet", Batch: 256}
		}
		// Warm the estimator so the dry run is out of the measurement.
		if _, err := s.Submit(SubmitRequest{Tenant: "warm", Network: "AlexNet", Batch: 256}); err != nil {
			b.Fatal(err)
		}
		s.Advance(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Submit(reqs[i]); err != nil {
				b.Fatal(err)
			}
			s.Advance(1)
		}
	})

	b.Run("respond", func(b *testing.B) {
		st := &JobStatus{ID: "acme/j042", Tenant: "acme", State: StateQueued, Shard: 2, QueuePosition: 17, Seq: -1}
		buf := make([]byte, 0, 512)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendJobStatusJSON(buf[:0], st)
		}
	})
}
