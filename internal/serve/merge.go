package serve

// The merger turns per-shard sequencing batches into one total order.
// Shards claim dense blocks of global slot numbers; records enter a
// min-heap keyed by slot and flush into the request log exactly when
// they complete the dense prefix (top slot == log length). The order
// is a pure function of the slot numbers — never wall clock — so the
// merged log, and everything replayed from it, is deterministic given
// the slot assignment. With one shard the merge is the identity and
// the service behaves exactly like a single global sequencer.

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// record is one sequenced-but-not-yet-merged job.
type record struct {
	slot int64
	j    *job
}

// recordHeap is a hand-rolled min-heap by slot (no container/heap
// interface boxing on the sequencing hot path).
type recordHeap []record

func (h *recordHeap) push(r record) {
	*h = append(*h, r)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].slot <= a[i].slot {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *recordHeap) pop() record {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = record{}
	*h = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && a[l].slot < a[m].slot {
			m = l
		}
		if r < n && a[r].slot < a[m].slot {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// mergeLocked hands sh's freshly popped batch (slots base..base+n-1)
// to the merger and flushes the dense prefix into the request log.
// Caller holds sh.mu and s.mu, in that order.
func (s *Service) mergeLocked(sh *shard, base int64) {
	for i, j := range sh.batch {
		s.reorder.push(record{slot: base + int64(i), j: j})
	}
	flushed := 0
	for len(s.reorder) > 0 && s.reorder[0].slot == int64(len(s.log)) {
		r := s.reorder.pop()
		j := r.j
		j.seq = len(s.log)
		j.tj.ArrivalMS = int64(j.seq) * s.cfg.SpacingMS
		s.log = append(s.log, j.tj)
		s.logWrite(workload.FormatJob(j.tj))
		if s.wal != nil && s.walErr == nil {
			if err := s.wal.appendJob(j.tj, j.key); err != nil {
				// Latch the failure: no further acks until an operator
				// intervenes, since durability can no longer be promised.
				s.walErr = err
				s.lg.Error("wal append failed", "id", j.tj.ID, "err", err)
			}
		}
		s.queued[j.tenant]--
		s.pending--
		ty := &s.byShard[j.shard]
		ty.sequenced++
		ty.log = append(ty.log, j.tj)
		if s.inc != nil && s.incErr == nil {
			if _, err := s.inc.Append(sched.JobFromTrace(j.tj)); err != nil {
				// Cannot happen while the watermark invariant holds;
				// degrade to full replays rather than corrupt state.
				s.incErr = err
				s.lg.Error("incremental replay append failed", "id", j.tj.ID, "err", err)
			}
		}
		if s.lgDbg {
			s.lg.Debug("job sequenced", "tenant", j.tenant, "shard", j.shard,
				"id", j.tj.ID, "seq", j.seq, "local_seq", j.local, "arrival_ms", j.tj.ArrivalMS)
		}
		flushed++
	}
	if flushed > 0 {
		if s.wal != nil && s.walErr == nil {
			// Group commit: one fsync covers the whole merge batch (or,
			// in grouped mode, waits for SyncEvery records). Must run
			// before the broadcast so an on-ack waiter that wakes with
			// seq assigned is already durable.
			d, err := s.wal.commit()
			s.durable = d
			if err != nil {
				s.walErr = err
				s.lg.Error("wal sync failed", "err", err)
			}
		}
		s.advanceWatermarkLocked()
		s.cond.Broadcast()
	}
}

// advanceWatermarkLocked raises the resumable replay's watermark once
// SnapshotEvery new jobs have been merged since the last advance. The
// watermark is the log length in virtual time: every future job merges
// at arrival ≥ len(log)·spacing, so advancing there can never process
// an event a later append could perturb — the compaction-safety
// invariant.
func (s *Service) advanceWatermarkLocked() {
	if s.inc == nil || s.incErr != nil || len(s.log)-s.lastAdv < s.cfg.SnapshotEvery {
		return
	}
	w := sim.Time(int64(len(s.log))*s.cfg.SpacingMS) * sim.Time(sim.Millisecond)
	s.inc.AdvanceTo(w)
	s.lastAdv = len(s.log)
	s.lg.Info("replay watermark advanced", "seq", s.lastAdv,
		"watermark_ms", int64(s.inc.Watermark())/int64(sim.Millisecond),
		"finalized", s.inc.Finished()+s.inc.Rejected())
}

// resultLocked replays the current request log, memoized by log
// length. With compaction on, the replay resumes from the watermark
// (O(active suffix)); otherwise it replays the full history. Drain's
// idempotence relies on the memo: repeated drains return the identical
// *Result pointer.
func (s *Service) resultLocked() (*sched.Result, error) {
	if s.resOK && s.resN == len(s.log) {
		return s.res, s.resErr
	}
	var r *sched.Result
	var err error
	if s.inc != nil && s.incErr == nil {
		r, err = s.inc.Result()
	} else {
		r, err = s.sch.Run(sched.JobsFromTrace(s.log))
	}
	s.resN, s.res, s.resErr, s.resOK = len(s.log), r, err, true
	return r, err
}

// sequencedStatusLocked renders a sequenced job's status. Finalized
// jobs resolve O(1) off the resumable replay; everything still in
// motion comes from the (memoized) suffix replay. Caller holds s.mu.
func (s *Service) sequencedStatusLocked(j *job) *JobStatus {
	st := &JobStatus{ID: j.tj.ID, Tenant: j.tenant, Shard: j.shard, Seq: j.seq, ArrivalMS: j.tj.ArrivalMS}
	st.Durable = s.wal != nil && j.seq < s.durable
	var jr sched.JobResult
	done := false
	if s.inc != nil && s.incErr == nil {
		jr, done = s.inc.Finalized(j.seq)
	}
	if !done {
		var err error
		switch {
		case s.resOK && s.resN == len(s.log):
			// A full result for this exact log is already memoized
			// (e.g. after a drain) — read it instead of replaying.
			if err = s.resErr; err == nil {
				jr = s.res.Jobs[j.seq]
			}
		case s.inc != nil && s.incErr == nil:
			// Suffix replay for just this job: no O(history) result
			// assembly on the query path.
			jr, err = s.inc.JobResult(j.seq)
		default:
			var snap *sched.Result
			if snap, err = s.resultLocked(); err == nil {
				jr = snap.Jobs[j.seq]
			}
		}
		if err != nil {
			st.Reason = err.Error()
			st.State = StateRejected
			return st
		}
	}
	st.Result = &jr
	if jr.Rejected {
		st.State = StateRejected
		st.Reason = jr.Reason
	} else {
		st.State = StateScheduled
	}
	return st
}
