package serve

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/workload"
)

func testCluster() sched.Cluster {
	return sched.Cluster{Device: hw.TeslaK40c, Devices: 2}
}

// small returns a cheap submission (one dry-run shape shared by most
// tests of a service instance).
func small(tenant, id string) SubmitRequest {
	return SubmitRequest{Tenant: tenant, ID: id, Network: "AlexNet", Batch: 16, Iterations: 1}
}

func mustNew(t *testing.T, cfg Config) *Service {
	t.Helper()
	cfg.Cluster = testCluster()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The sequencer drains tenants round-robin: a tenant that floods the
// queue first cannot push another tenant's jobs behind its own.
func TestFairnessRoundRobinAcrossTenants(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	for k := 0; k < 4; k++ {
		if _, err := s.Submit(small("alpha", fmt.Sprintf("a%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 4; k++ {
		if _, err := s.Submit(small("beta", fmt.Sprintf("b%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Advance(0); n != 8 {
		t.Fatalf("Advance sequenced %d jobs, want 8", n)
	}
	trace, err := workload.ParseTrace(strings.NewReader(s.ReplayLog()))
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, j := range trace {
		order = append(order, j.ID)
	}
	want := []string{"alpha/a0", "beta/b0", "alpha/a1", "beta/b1", "alpha/a2", "beta/b2", "alpha/a3", "beta/b3"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("sequenced order %v, want round-robin %v", order, want)
	}
	for i, j := range trace {
		if j.ArrivalMS != int64(i) {
			t.Errorf("job %d arrival %dms, want %d (1ms spacing)", i, j.ArrivalMS, i)
		}
	}
}

func TestTenantQuota(t *testing.T) {
	s := mustNew(t, Config{Manual: true, TenantQuota: 2})
	for k := 0; k < 2; k++ {
		if _, err := s.Submit(small("q", fmt.Sprintf("j%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(small("q", "j2")); !errors.Is(err, ErrQuota) {
		t.Errorf("third job of quota-2 tenant: err = %v, want ErrQuota", err)
	}
	// The quota is per tenant: another tenant still gets in.
	if _, err := s.Submit(small("other", "j0")); err != nil {
		t.Errorf("other tenant blocked by q's quota: %v", err)
	}
	// Sequencing does not refund the lifetime quota.
	s.Advance(0)
	if _, err := s.Submit(small("q", "j3")); !errors.Is(err, ErrQuota) {
		t.Errorf("quota refunded by sequencing: err = %v, want ErrQuota", err)
	}
}

func TestBoundedAdmissionQueue(t *testing.T) {
	s := mustNew(t, Config{Manual: true, QueueDepth: 3})
	for k := 0; k < 3; k++ {
		if _, err := s.Submit(small("t", fmt.Sprintf("j%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(small("t", "j3")); !errors.Is(err, ErrQueueFull) {
		t.Errorf("submit beyond queue depth: err = %v, want ErrQueueFull", err)
	}
	// Draining the queue frees capacity.
	s.Advance(1)
	if _, err := s.Submit(small("t", "j3")); err != nil {
		t.Errorf("submit after drain-by-one: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	cases := []struct {
		name string
		req  SubmitRequest
	}{
		{"unknown network", SubmitRequest{Network: "NopeNet", Batch: 4}},
		{"zero batch", SubmitRequest{Network: "AlexNet"}},
		{"bad schedule", SubmitRequest{Network: "AlexNet", Schedule: "16x0"}},
		{"unknown manager", SubmitRequest{Network: "AlexNet", Batch: 4, Manager: "nope"}},
		{"whitespace tenant", SubmitRequest{Tenant: "a b", Network: "AlexNet", Batch: 4}},
		{"slash tenant", SubmitRequest{Tenant: "a/b", Network: "AlexNet", Batch: 4}},
		{"hash id", SubmitRequest{ID: "x#y", Network: "AlexNet", Batch: 4}},
		{"missing network", SubmitRequest{Batch: 4}},
	}
	for _, c := range cases {
		if _, err := s.Submit(c.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", c.name, err)
		}
	}
	if _, err := s.Submit(small("t", "dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(small("t", "dup")); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate id: err = %v, want ErrDuplicateID", err)
	}
}

func TestStatusLifecycle(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	st, err := s.Submit(small("t", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Seq != -1 || st.QueuePosition != 1 {
		t.Errorf("fresh submission status = %+v, want queued at position 1", st)
	}
	st2, _ := s.Submit(small("t", "b"))
	if st2.QueuePosition != 2 {
		t.Errorf("second submission position = %d, want 2", st2.QueuePosition)
	}
	s.Advance(0)
	st, err = s.Status("t/a")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateScheduled || st.Seq != 0 || st.Result == nil {
		t.Errorf("sequenced status = %+v, want scheduled seq 0 with result", st)
	}
	if st.Result.Estimate.PeakBytes <= 0 || st.Result.JCT <= 0 {
		t.Errorf("scheduled result lacks estimate/JCT: %+v", st.Result)
	}
	if _, err := s.Status("t/nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job: err = %v, want ErrUnknownJob", err)
	}
}

// A job too large for any device is accepted into the log and then
// deterministically rejected by the scheduler's admission control —
// the same outcome a trace replay produces.
func TestOversizedJobRejectedDeterministically(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	if _, err := s.Submit(SubmitRequest{Tenant: "t", ID: "big", Network: "AlexNet", Batch: 1024}); err != nil {
		t.Fatal(err)
	}
	s.Advance(0)
	st, err := s.Status("t/big")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRejected || st.Reason == "" {
		t.Errorf("oversized job status = %+v, want rejected with reason", st)
	}
}

func TestDrainStopsAdmission(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	if _, err := s.Submit(small("t", "a")); err != nil {
		t.Fatal(err)
	}
	res, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Errorf("drain flushed %d jobs, want 1", len(res.Jobs))
	}
	if _, err := s.Submit(small("t", "late")); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: err = %v, want ErrDraining", err)
	}
	select {
	case <-s.Drained():
	default:
		t.Error("Drained channel not closed after Drain")
	}
	// Idempotent: a second drain returns the same result.
	res2, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res != res2 {
		t.Error("second Drain recomputed the result")
	}
}

// The heart of the tentpole: traffic submitted concurrently by many
// goroutines, sequenced by the service, must replay byte-identically
// through the same path cmd/snsched uses.
func TestConcurrentTrafficReplaysByteIdentical(t *testing.T) {
	var logBuf bytes.Buffer
	s := mustNew(t, Config{RequestLog: &logBuf})

	templates := []SubmitRequest{
		{Network: "AlexNet", Batch: 16, Iterations: 2},
		{Network: "AlexNet", Batch: 32, Iterations: 1, Priority: 5},
		{Network: "AlexNet", Schedule: "16x2,32", Iterations: 3, Manager: "superneurons"},
		{Network: "AlexNet", Batch: 1024}, // deterministically rejected
	}
	const clients, each = 6, 4
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for k := 0; k < each; k++ {
				req := templates[(ci+k)%len(templates)]
				req.Tenant = fmt.Sprintf("c%d", ci)
				req.ID = fmt.Sprintf("j%d", k)
				if _, err := s.Submit(req); err != nil {
					t.Errorf("submit c%d/j%d: %v", ci, k, err)
				}
			}
		}(ci)
	}
	wg.Wait()
	if n := s.WaitSequenced(clients*each, 5*time.Second); n != clients*each {
		t.Fatalf("sequenced %d jobs, want %d", n, clients*each)
	}
	final, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}

	// The incrementally written log and ReplayLog agree byte for byte.
	logText := s.ReplayLog()
	if logBuf.String() != logText {
		t.Fatalf("incremental request log differs from ReplayLog:\n--- file\n%s\n--- replay\n%s", logBuf.String(), logText)
	}

	// An offline replay of the log through a fresh scheduler (the
	// cmd/snsched path) reproduces every per-job result byte-identically.
	trace, err := workload.ParseTrace(strings.NewReader(logText))
	if err != nil {
		t.Fatalf("request log is not a valid trace: %v", err)
	}
	fresh, err := sched.NewScheduler(testCluster(), sched.Packing)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fresh.Run(sched.JobsFromTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	got, want := fmt.Sprintf("%+v", replayed), fmt.Sprintf("%+v", final)
	if got != want {
		t.Errorf("offline replay differs from service result:\n--- replay\n%s\n--- service\n%s", got, want)
	}
	if !reflect.DeepEqual(replayed.Jobs, final.Jobs) {
		t.Error("per-job results differ between service and replay")
	}
}

// Concurrent submitters, status pollers and metrics readers against a
// draining service: the -race CI job's main course.
func TestConcurrentSubmitAndQuery(t *testing.T) {
	s := mustNew(t, Config{QueueDepth: 8, TenantQuota: 6})
	var wg sync.WaitGroup
	for ci := 0; ci < 4; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for k := 0; k < 6; k++ {
				req := small(fmt.Sprintf("w%d", ci), fmt.Sprintf("j%d", k))
				for {
					_, err := s.Submit(req)
					if errors.Is(err, ErrQueueFull) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("submit: %v", err)
					}
					break
				}
			}
		}(ci)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if _, err := s.Metrics(); err != nil {
					t.Errorf("metrics: %v", err)
				}
				_, _ = s.Status("w0/j0")
				_, _ = s.Jobs()
			}
		}()
	}
	wg.Wait()
	s.WaitSequenced(24, 5*time.Second)
	res, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 24 {
		t.Errorf("drained %d jobs, want 24", len(res.Jobs))
	}
	m, err := s.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Draining || m.JobsSequenced != 24 || m.JobsQueued != 0 {
		t.Errorf("post-drain metrics = %+v", m)
	}
	if len(m.Tenants) != 4 {
		t.Errorf("tenant stats = %v, want 4 tenants", m.Tenants)
	}
	for tn, st := range m.Tenants {
		if st.Accepted != 6 || st.Sequenced != 6 || st.Queued != 0 {
			t.Errorf("tenant %s stats = %+v, want 6 accepted/sequenced", tn, st)
		}
	}
}

func TestWaitSequencedTimesOut(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	if _, err := s.Submit(small("t", "a")); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if n := s.WaitSequenced(1, 30*time.Millisecond); n != 0 {
		t.Errorf("WaitSequenced returned %d with a manual sequencer, want 0", n)
	}
	if time.Since(t0) < 25*time.Millisecond {
		t.Error("WaitSequenced returned before its timeout")
	}
}

// failingWriter breaks after the header to exercise the request-log
// error path.
type failingWriter struct{ writes int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > 1 {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

func TestRequestLogWriteErrorSurfacesAtDrain(t *testing.T) {
	s := mustNew(t, Config{Manual: true, RequestLog: &failingWriter{}})
	if err := s.LogErr(); err != nil {
		t.Fatalf("log error before any job: %v", err)
	}
	if _, err := s.Submit(small("t", "a")); err != nil {
		t.Fatal(err)
	}
	s.Advance(0)
	if err := s.LogErr(); err == nil {
		t.Error("lost request-log line not recorded")
	}
	if _, err := s.Drain(); err == nil {
		t.Error("Drain hides the broken request log")
	}
}

func TestAutoAssignedIDs(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	st, err := s.Submit(SubmitRequest{Network: "AlexNet", Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "anon/j0" || st.Tenant != "anon" {
		t.Errorf("auto id = %q tenant %q, want anon/j0", st.ID, st.Tenant)
	}
	st2, _ := s.Submit(SubmitRequest{Network: "AlexNet", Batch: 16})
	if st2.ID == st.ID {
		t.Error("auto ids collide")
	}
}

// A request without an id can never fail as a duplicate, even when a
// user-chosen id squats on the auto-id namespace.
func TestAutoIDsDodgeUserChosenIDs(t *testing.T) {
	s := mustNew(t, Config{Manual: true})
	if _, err := s.Submit(small("anon", "j1")); err != nil { // squats anon/j1
		t.Fatal(err)
	}
	var ids []string
	for k := 0; k < 3; k++ {
		st, err := s.Submit(SubmitRequest{Network: "AlexNet", Batch: 16})
		if err != nil {
			t.Fatalf("auto-id submission %d: %v", k, err)
		}
		ids = append(ids, st.ID)
	}
	seen := map[string]bool{"anon/j1": true}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("auto id %q collides", id)
		}
		seen[id] = true
	}
}
