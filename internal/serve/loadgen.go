package serve

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"repro/internal/workload"
)

// LoadConfig drives RunLoad: N concurrent clients submitting jobs from
// a template set against one service.
type LoadConfig struct {
	// Target is the service under load.
	Target *Client
	// Clients is the number of concurrent submitters (default 4); each
	// submits as its own tenant ("client00", "client01", ...).
	Clients int
	// JobsPerClient is each client's submission count (default 8).
	JobsPerClient int
	// Templates supplies the job shapes, cycled per client with an
	// offset so tenants mix shapes; nil means the bundled static +
	// dynamic traces.
	Templates []workload.TraceJob
	// SubmitRetries caps the retry attempts of one submission after
	// backpressure (defaults 50 × 2ms RetryDelay) — backpressure, not
	// failure. A submission that runs out of attempts counts as both
	// Failed and Exhausted.
	SubmitRetries int
	RetryDelay    time.Duration
	// Idempotent attaches a deterministic IdempotencyKey to every
	// submission and retries transport failures too (a replayed
	// submission dedupes server-side instead of double-sequencing), so
	// the load survives a service crash and restart mid-run.
	Idempotent bool
	// ThinkTime spaces one client's consecutive submissions; 0 submits
	// back to back.
	ThinkTime time.Duration
	// Drain drains the service after all submissions.
	Drain bool
}

// LoadReport is RunLoad's outcome: counts, wall-clock throughput and
// submission latency percentiles.
type LoadReport struct {
	Submitted   int // successful submissions
	QueueFull   int // queue-full responses absorbed by retries
	Shed        int // overload (SLO shed) responses absorbed by retries
	QuotaDenied int // submissions refused by tenant quota
	Failed      int // submissions lost after retries or on other errors
	Retries     int // retry sleeps taken across all submissions
	Exhausted   int // submissions that ran out of retry attempts
	Deduped     int // submissions answered from the idempotency index

	Elapsed    time.Duration
	Throughput float64 // successful submissions per wall-clock second

	P50, P90, P99, Max time.Duration // submission latency

	// Shards breaks the successful submissions down by the shard that
	// sequenced them (from the submit response), ordered by shard index.
	// Single-shard services report one row.
	Shards []ShardLoad

	// Drained holds the drain summary when LoadConfig.Drain is set.
	Drained *DrainSummary
}

// ShardLoad aggregates the successful submissions that landed on one
// shard: the count and that shard's submission latency percentiles.
type ShardLoad struct {
	Shard     int
	Submitted int
	P50, P99  time.Duration
}

// DefaultTemplates returns the bundled static and dynamic traces as a
// single template set — every shape the evaluation traces exercise,
// including the deliberately oversized job the scheduler must reject.
func DefaultTemplates() []workload.TraceJob {
	return append(workload.DefaultTrace(), workload.DefaultDynamicTrace()...)
}

// RunLoad fires cfg.Clients concurrent clients at the target and
// aggregates their outcomes. The template cycle is deterministic per
// client, so two equal-config runs submit the same job population
// (the sequenced order — and thus the request log — still depends on
// arrival interleaving; determinism of results given the log is the
// service's job).
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Target == nil {
		return nil, fmt.Errorf("serve: loadgen needs a target client")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.JobsPerClient <= 0 {
		cfg.JobsPerClient = 8
	}
	if cfg.Templates == nil {
		cfg.Templates = DefaultTemplates()
	}
	if cfg.SubmitRetries <= 0 {
		cfg.SubmitRetries = 50
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 2 * time.Millisecond
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		byShard   = map[int][]time.Duration{}
		rep       LoadReport
	)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			tenant := fmt.Sprintf("client%02d", ci)
			for k := 0; k < cfg.JobsPerClient; k++ {
				tpl := cfg.Templates[(ci+k)%len(cfg.Templates)]
				req := SubmitRequest{
					Tenant:     tenant,
					ID:         fmt.Sprintf("j%03d", k),
					Network:    tpl.Network,
					Batch:      tpl.Batch,
					Manager:    tpl.Manager,
					Priority:   tpl.Priority,
					Iterations: tpl.Iterations,
				}
				if len(tpl.BatchSchedule) > 1 {
					req.Schedule = tpl.BatchSchedule.String()
					req.Batch = 0
				}
				if cfg.Idempotent {
					// Deterministic per (client, slot), so a resubmission
					// of the same logical job carries the same key.
					req.IdempotencyKey = fmt.Sprintf("%s-k%03d", tenant, k)
				}
				out := submitWithRetry(cfg, req)
				mu.Lock()
				switch out.kind {
				case submitOK:
					rep.Submitted++
					latencies = append(latencies, out.lat)
					byShard[out.shard] = append(byShard[out.shard], out.lat)
					if out.deduped {
						rep.Deduped++
					}
				case submitQuota:
					rep.QuotaDenied++
				case submitFailed:
					rep.Failed++
				case submitExhausted:
					rep.Failed++
					rep.Exhausted++
				}
				rep.QueueFull += out.full
				rep.Shed += out.shed
				rep.Retries += out.retries
				mu.Unlock()
				if cfg.ThinkTime > 0 && k+1 < cfg.JobsPerClient {
					time.Sleep(cfg.ThinkTime)
				}
			}
		}(ci)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.Submitted) / rep.Elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = percentile(latencies, 0.50)
	rep.P90 = percentile(latencies, 0.90)
	rep.P99 = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.Max = latencies[n-1]
	}
	shardIdx := make([]int, 0, len(byShard))
	for sh := range byShard {
		shardIdx = append(shardIdx, sh)
	}
	sort.Ints(shardIdx)
	for _, sh := range shardIdx {
		lats := byShard[sh]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.Shards = append(rep.Shards, ShardLoad{
			Shard:     sh,
			Submitted: len(lats),
			P50:       percentile(lats, 0.50),
			P99:       percentile(lats, 0.99),
		})
	}
	if cfg.Drain {
		d, err := cfg.Target.Drain()
		if err != nil {
			return &rep, fmt.Errorf("serve: loadgen drain: %w", err)
		}
		rep.Drained = d
	}
	return &rep, nil
}

// Outcomes of one submission attempt sequence.
const (
	submitOK = iota
	submitQuota
	submitFailed
	submitExhausted
)

// submitOutcome is one submission's aggregate over its attempts.
type submitOutcome struct {
	lat     time.Duration
	kind    int
	full    int // queue-full responses absorbed
	shed    int // overload responses absorbed
	retries int // retry sleeps taken
	shard   int // sequencing shard of a successful submission
	deduped bool
}

// submitWithRetry submits one job, absorbing queue-full and overload
// backpressure up to the attempt cap. In idempotent mode transport
// failures retry too — the key makes a replayed submission safe — which
// is what lets a load run ride out a service crash and restart.
func submitWithRetry(cfg LoadConfig, req SubmitRequest) submitOutcome {
	var out submitOutcome
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		st, err := cfg.Target.Submit(req)
		out.lat = time.Since(t0)
		var ae *APIError
		switch {
		case err == nil:
			out.kind, out.shard, out.deduped = submitOK, st.Shard, st.Deduped
			return out
		case errors.Is(err, ErrQuota):
			out.kind = submitQuota
			return out
		case errors.Is(err, ErrQueueFull):
			if attempt >= cfg.SubmitRetries {
				out.kind = submitExhausted
				return out
			}
			out.full++
		case errors.Is(err, ErrOverloaded):
			if attempt >= cfg.SubmitRetries {
				out.kind = submitExhausted
				return out
			}
			out.shed++
		case cfg.Idempotent && !errors.As(err, &ae):
			// Transport failure (no HTTP response): replaying the same
			// key cannot double-sequence.
			if attempt >= cfg.SubmitRetries {
				out.kind = submitExhausted
				return out
			}
		default:
			out.kind = submitFailed
			return out
		}
		out.retries++
		time.Sleep(retryDelay(cfg, err))
	}
}

// retryDelay picks the sleep before the next attempt: the server's
// Retry-After hint when present — capped so a pathological hint cannot
// stall the generator — or the configured delay, with full jitter over
// (0, delay] either way so retrying clients spread out instead of
// re-arriving in lockstep.
func retryDelay(cfg LoadConfig, err error) time.Duration {
	d := cfg.RetryDelay
	max := 50 * cfg.RetryDelay
	var re *RetryableError
	var ae *APIError
	switch {
	case errors.As(err, &re) && re.RetryAfter > 0:
		d = re.RetryAfter
	case errors.As(err, &ae) && ae.RetryAfter > 0:
		d = ae.RetryAfter
	}
	if d > max {
		d = max
	}
	return time.Duration(rand.Int64N(int64(d))) + 1
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
