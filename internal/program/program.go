// Package program lowers a network graph into the tensor-level
// execution program the SuperNeurons planners operate on: one forward
// step per layer in route order, one backward step per layer in reverse
// order, each annotated with the tensors it reads and writes.
//
// The lowering encodes the memory behaviour of a cuDNN-based trainer:
//
//   - every layer's forward allocates its output tensor;
//   - CONV/POOL/LRN/BN/FC/Softmax backward allocates a distinct input
//     gradient (dX), while ReLU/Dropout compute gradients in place over
//     dY and Concat/Eltwise hand out views of dY — so their "dX" aliases
//     the gradient tensor of their own output;
//   - a layer whose output feeds several consumers has its output
//     gradient accumulated into the first consumer's buffer (no extra
//     allocation);
//   - each backward step additionally reads the forward tensors its
//     kernel signature demands (layers.Spec.BwdNeeds).
//
// From the per-step working sets the package derives max(l_i) — the
// paper's l_peak, the smallest peak memory any layer-wise schedule can
// achieve and the floor Cost-Aware Recomputation reaches.
package program

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/nnet"
	"repro/internal/tensor"
)

// Phase distinguishes forward from backward steps.
type Phase uint8

// Phases.
const (
	Forward Phase = iota
	Backward
)

// String returns "fwd" or "bwd".
func (p Phase) String() string {
	if p == Forward {
		return "fwd"
	}
	return "bwd"
}

// Step is one schedulable unit: a layer execution in one phase.
type Step struct {
	Index int
	Node  *nnet.Node
	Phase Phase

	// Reads lists tensors that must be GPU-resident throughout the
	// step; Writes lists tensors the step creates or updates. A tensor
	// appearing in both (in-place gradient) is listed once in each.
	Reads  []*tensor.Tensor
	Writes []*tensor.Tensor

	// label caches Label()'s result: the step loop asks for it on every
	// step of every iteration, so it is rendered once at lowering.
	label string
}

// Label renders e.g. "conv1 fwd" for profiles. Steps built by the
// lowering carry a precomputed label; hand-rolled test steps fall back
// to rendering on demand.
func (s *Step) Label() string {
	if s.label != "" {
		return s.label
	}
	return fmt.Sprintf("%s %s", s.Node.Name(), s.Phase)
}

// Program is the lowered execution plan for one training iteration.
type Program struct {
	Net   *nnet.Net
	Reg   *tensor.Registry
	Steps []Step

	// Out[nodeID] is the node's forward output tensor; DX[nodeID] is
	// its allocated input-gradient tensor (nil for in-place layers);
	// GradOut[nodeID] is the resolved tensor holding the gradient with
	// respect to the node's output (nil for the loss layer).
	Out     []*tensor.Tensor
	DX      []*tensor.Tensor
	GradOut []*tensor.Tensor

	// FwdStep/BwdStep map node IDs to step indices (BwdStep is -1 for
	// the data layer, which has no backward).
	FwdStep []int
	BwdStep []int

	// PersistentBytes covers parameters, parameter gradients and
	// auxiliary state (dropout reserves, BN statistics): resident for
	// the whole run, untouched by the per-iteration schedulers.
	PersistentBytes int64
}

// Options tunes the lowering.
type Options struct {
	// InPlaceAct makes ReLU and Dropout forwards operate in place,
	// sharing the producer's buffer (Torch's nn.ReLU(true) / Caffe's
	// in-place layers). Applied only when the producer has a single
	// consumer, where it is always safe.
	InPlaceAct bool
}

// Build lowers the network with default options.
func Build(net *nnet.Net) *Program { return BuildWith(net, Options{}) }

// BuildWith lowers the network.
func BuildWith(net *nnet.Net, opts Options) *Program {
	n := len(net.Nodes)
	p := &Program{
		Net:     net,
		Reg:     &tensor.Registry{},
		Out:     make([]*tensor.Tensor, n),
		DX:      make([]*tensor.Tensor, n),
		GradOut: make([]*tensor.Tensor, n),
		FwdStep: make([]int, n),
		BwdStep: make([]int, n),
	}

	route := net.Route()

	// Create forward outputs in route order so tensor IDs follow
	// execution order (matches the paper's t0, t1, ... numbering).
	for _, nd := range route {
		if opts.InPlaceAct && inPlaceEligible(nd) {
			p.Out[nd.ID] = p.Out[nd.Prev[0].ID]
			continue
		}
		p.Out[nd.ID] = p.Reg.New(nd.Name()+".y", tensor.Data, nd.L.Out)
	}
	// Create dX tensors in backward order.
	for i := len(route) - 1; i >= 0; i-- {
		nd := route[i]
		if nd.L.AllocatesDX() {
			// dX matches the (first) input shape; for multi-input
			// layers that allocate (none today) this would extend.
			p.DX[nd.ID] = p.Reg.New(nd.Name()+".dx", tensor.Grad, nd.L.In[0])
		}
	}
	// Resolve output-gradient aliases.
	for _, nd := range route {
		p.GradOut[nd.ID] = p.resolveGradOut(nd, make(map[int]bool))
	}

	// Persistent state: parameters, parameter gradients, aux.
	p.PersistentBytes = 2*net.ParamBytes() + net.AuxBytes()

	// Forward steps.
	for _, nd := range route {
		st := Step{Index: len(p.Steps), Node: nd, Phase: Forward}
		st.label = st.Node.Name() + " " + st.Phase.String()
		for _, pr := range nd.Prev {
			st.Reads = append(st.Reads, p.Out[pr.ID])
		}
		st.Writes = append(st.Writes, p.Out[nd.ID])
		p.FwdStep[nd.ID] = st.Index
		p.Steps = append(p.Steps, st)
	}
	// Backward steps in reverse route order; the data layer has none.
	for i := range p.BwdStep {
		p.BwdStep[i] = -1
	}
	for i := len(route) - 1; i >= 0; i-- {
		nd := route[i]
		if len(nd.Prev) == 0 {
			continue
		}
		st := Step{Index: len(p.Steps), Node: nd, Phase: Backward}
		st.label = st.Node.Name() + " " + st.Phase.String()
		if g := p.GradOut[nd.ID]; g != nil {
			st.Reads = append(st.Reads, g)
		}
		needX, needY := nd.L.BwdNeeds()
		if needX {
			for _, pr := range nd.Prev {
				st.Reads = append(st.Reads, p.Out[pr.ID])
			}
		}
		if needY {
			st.Reads = append(st.Reads, p.Out[nd.ID])
		}
		if dx := p.DX[nd.ID]; dx != nil {
			st.Writes = append(st.Writes, dx)
		} else if g := p.GradOut[nd.ID]; g != nil {
			// In-place: the step updates the aliased gradient buffer.
			st.Writes = append(st.Writes, g)
		}
		p.BwdStep[nd.ID] = st.Index
		p.Steps = append(p.Steps, st)
	}
	return p
}

// inPlaceEligible reports whether a node may share its producer's
// buffer: an activation or dropout whose single input feeds only it.
func inPlaceEligible(nd *nnet.Node) bool {
	if len(nd.Prev) != 1 || len(nd.Prev[0].Next) != 1 {
		return false
	}
	switch nd.L.Type {
	case layers.Act, layers.Dropout:
		return true
	}
	return false
}

// resolveGradOut walks down the consumer graph to find the tensor that
// will hold the gradient with respect to nd's output: the dX buffer of
// the nearest downstream dX-allocating layer, following in-place and
// view-aliasing chains. With several consumers the first one's buffer
// is the accumulation target.
func (p *Program) resolveGradOut(nd *nnet.Node, visiting map[int]bool) *tensor.Tensor {
	if len(nd.Next) == 0 {
		return nil // loss layer: gradient originates here
	}
	if visiting[nd.ID] {
		return nil
	}
	visiting[nd.ID] = true
	c := nd.Next[0]
	if dx := p.DX[c.ID]; dx != nil {
		return dx
	}
	return p.resolveGradOut(c, visiting)
}

// StepTensors returns the deduplicated union of a step's reads and
// writes — the tensors that must coexist on the GPU for the step.
func StepTensors(st *Step) []*tensor.Tensor {
	return AppendStepTensors(nil, st)
}

// AppendStepTensors appends the step's distinct tensors to dst and
// returns the extended slice, deduplicating against everything already
// in dst. Callers on hot paths pass a reused scratch buffer (dst[:0])
// so per-step analysis does no allocation; the read/write lists are a
// handful of entries, so the linear dedup scan beats a map.
func AppendStepTensors(dst []*tensor.Tensor, st *Step) []*tensor.Tensor {
	for _, lists := range [2][]*tensor.Tensor{st.Reads, st.Writes} {
		for _, t := range lists {
			if !containsID(dst, t.ID) {
				dst = append(dst, t)
			}
		}
	}
	return dst
}

// WorkingSet returns the bytes that must coexist for step i — the
// paper's per-layer memory usage l_i (forward or backward flavor). It
// computes the deduplicated union inline, without materializing it.
func (p *Program) WorkingSet(i int) int64 {
	st := &p.Steps[i]
	var sum int64
	for ri, t := range st.Reads {
		if !containsID(st.Reads[:ri], t.ID) {
			sum += t.Bytes()
		}
	}
	for wi, t := range st.Writes {
		if !containsID(st.Reads, t.ID) && !containsID(st.Writes[:wi], t.ID) {
			sum += t.Bytes()
		}
	}
	return sum
}

func containsID(ts []*tensor.Tensor, id int) bool {
	for _, t := range ts {
		if t.ID == id {
			return true
		}
	}
	return false
}

// LPeak returns max(l_i) over all steps: the layer-wise lower bound on
// peak memory that Cost-Aware Recomputation attains.
func (p *Program) LPeak() (bytes int64, step int) {
	for i := range p.Steps {
		if ws := p.WorkingSet(i); ws > bytes {
			bytes, step = ws, i
		}
	}
	return bytes, step
}

// BaselineBytes returns the naive allocation footprint Σ l_i^f + Σ l_i^b:
// every forward output plus every gradient tensor live at once.
func (p *Program) BaselineBytes() int64 {
	return p.Reg.TotalBytes(tensor.Data, tensor.Grad)
}

// NumSteps returns the step count of one iteration.
func (p *Program) NumSteps() int { return len(p.Steps) }
