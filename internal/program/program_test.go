package program

import (
	"testing"

	"repro/internal/layers"
	"repro/internal/nnet"
	"repro/internal/tensor"
)

const mib = float64(1 << 20)

func TestAlexNetProgramShape(t *testing.T) {
	p := Build(nnet.AlexNet(200))
	// 24 nodes (data + the paper's 23) -> 24 forward + 23 backward steps.
	if got := p.NumSteps(); got != 47 {
		t.Errorf("steps = %d, want 47", got)
	}
	// 24 forward outputs + 14 dX tensors (conv5, pool3, lrn2, fc3, softmax).
	if got := p.Reg.Len(); got != 38 {
		t.Errorf("tensors = %d, want 38", got)
	}
	nDX := 0
	for _, dx := range p.DX {
		if dx != nil {
			nDX++
		}
	}
	if nDX != 14 {
		t.Errorf("dX tensors = %d, want 14", nDX)
	}
}

func TestStepOrdering(t *testing.T) {
	p := Build(nnet.AlexNet(4))
	for i, st := range p.Steps {
		if st.Index != i {
			t.Fatalf("step %d has index %d", i, st.Index)
		}
	}
	// First half forward in route order, second half backward reversed.
	n := len(p.Net.Nodes)
	for i := 0; i < n; i++ {
		if p.Steps[i].Phase != Forward {
			t.Fatalf("step %d should be forward", i)
		}
	}
	for i := n; i < len(p.Steps); i++ {
		if p.Steps[i].Phase != Backward {
			t.Fatalf("step %d should be backward", i)
		}
	}
	if p.Steps[n-1].Node != p.Steps[n].Node {
		t.Error("backward must start at the last forward layer")
	}
}

func TestGradAliasingInPlaceChains(t *testing.T) {
	net := nnet.AlexNet(4)
	p := Build(net)
	byName := make(map[string]*nnet.Node)
	for _, nd := range net.Nodes {
		byName[nd.Name()] = nd
	}
	// relu1 is in-place: its "dX" is the gradient buffer of its own
	// output, which is lrn1's dX.
	relu1, lrn1 := byName["relu1"], byName["lrn1"]
	if p.DX[relu1.ID] != nil {
		t.Fatal("relu must not allocate dX")
	}
	if p.GradOut[relu1.ID] != p.DX[lrn1.ID] {
		t.Error("gradOut(relu1) must alias lrn1.dX")
	}
	// conv1's dY is gradOut(conv1) = relu1's gradIn = lrn1.dX too.
	conv1 := byName["conv1"]
	if p.GradOut[conv1.ID] != p.DX[lrn1.ID] {
		t.Error("gradOut(conv1) must alias lrn1.dX through the in-place relu")
	}
	// The loss layer has no output gradient.
	softmax := byName["softmax"]
	if p.GradOut[softmax.ID] != nil {
		t.Error("loss layer must have nil gradOut")
	}
	if p.DX[softmax.ID] == nil {
		t.Error("loss layer must seed a gradient tensor")
	}
}

func TestGradAliasingResNetJoin(t *testing.T) {
	net := nnet.ResNet(50, 2)
	p := Build(net)
	// For an eltwise join, both branch producers and the join itself
	// share one gradient buffer (views of dY).
	for _, nd := range net.Nodes {
		if nd.L.Type != layers.Eltwise {
			continue
		}
		g := p.GradOut[nd.ID]
		if g == nil {
			t.Fatalf("join %s has nil gradOut", nd.Name())
		}
		for _, pr := range nd.Prev {
			if p.GradOut[pr.ID] != g {
				t.Errorf("branch %s does not alias join %s's gradient", pr.Name(), nd.Name())
			}
		}
		break
	}
}

func TestWorkingSetLRN1Backward(t *testing.T) {
	// The paper's l_peak anchor: backward LRN1 on AlexNet b=200 needs
	// x, y, dy, dx — four 221.56 MiB tensors = 886.23 MiB (Table 1).
	p := Build(nnet.AlexNet(200))
	var lrn1 *nnet.Node
	for _, nd := range p.Net.Nodes {
		if nd.Name() == "lrn1" {
			lrn1 = nd
		}
	}
	ws := float64(p.WorkingSet(p.BwdStep[lrn1.ID])) / mib
	if ws < 886.22 || ws > 886.24 {
		t.Errorf("backward LRN1 working set = %.3f MiB, want 886.23", ws)
	}
	lp, step := p.LPeak()
	if p.Steps[step].Node != lrn1 {
		t.Errorf("lpeak at %s, want lrn1 bwd", p.Steps[step].Label())
	}
	if got := float64(lp) / mib; got < 886.22 || got > 886.24 {
		t.Errorf("lpeak = %.3f MiB, want 886.23", got)
	}
}

func TestBaselineBytes(t *testing.T) {
	p := Build(nnet.AlexNet(200))
	// Baseline = all data + grad tensors at once; must exceed the
	// paper's 2189 MiB (we model two extra tensors) but stay in range.
	got := float64(p.BaselineBytes()) / mib
	if got < 2100 || got > 2900 {
		t.Errorf("baseline = %.1f MiB, expected 2100-2900", got)
	}
}

func TestPersistentBytes(t *testing.T) {
	net := nnet.AlexNet(32)
	p := Build(net)
	want := 2*net.ParamBytes() + net.AuxBytes()
	if p.PersistentBytes != want {
		t.Errorf("persistent = %d, want %d", p.PersistentBytes, want)
	}
}

func TestBackwardReadsMatchKernelSignatures(t *testing.T) {
	net := nnet.AlexNet(2)
	p := Build(net)
	for _, nd := range net.Nodes {
		bs := p.BwdStep[nd.ID]
		if bs < 0 {
			continue
		}
		st := &p.Steps[bs]
		readsOwn := false
		readsInput := false
		for _, r := range st.Reads {
			if r == p.Out[nd.ID] {
				readsOwn = true
			}
			for _, pr := range nd.Prev {
				if r == p.Out[pr.ID] {
					readsInput = true
				}
			}
		}
		needX, needY := nd.L.BwdNeeds()
		if needY && !readsOwn {
			t.Errorf("%s bwd must read its own output", nd.Name())
		}
		if needX && !readsInput {
			t.Errorf("%s bwd must read its input", nd.Name())
		}
	}
}

func TestStepTensorsDeduplicates(t *testing.T) {
	a := &tensor.Tensor{ID: 1, Shape: tensor.Shape{N: 1, C: 1, H: 1, W: 256}}
	st := Step{Reads: []*tensor.Tensor{a, a}, Writes: []*tensor.Tensor{a}}
	if got := StepTensors(&st); len(got) != 1 {
		t.Errorf("dedup failed: %d tensors", len(got))
	}
}

func TestAllArchitecturesLower(t *testing.T) {
	for _, e := range nnet.Registry {
		net := e.Build(2)
		p := Build(net)
		if p.NumSteps() != 2*len(net.Nodes)-1 {
			t.Errorf("%s: steps = %d, want %d", e.Name, p.NumSteps(), 2*len(net.Nodes)-1)
		}
		// Every non-data node's backward reads a gradient.
		for _, nd := range net.Nodes {
			if bs := p.BwdStep[nd.ID]; bs >= 0 {
				if p.GradOut[nd.ID] == nil && p.DX[nd.ID] == nil {
					t.Errorf("%s/%s: backward with no gradient tensors", e.Name, nd.Name())
				}
			}
		}
		if lp, _ := p.LPeak(); lp <= 0 || lp > p.BaselineBytes() {
			t.Errorf("%s: lpeak %d out of range", e.Name, lp)
		}
	}
}

func TestPhaseString(t *testing.T) {
	if Forward.String() != "fwd" || Backward.String() != "bwd" {
		t.Error("phase names wrong")
	}
}

func TestInPlaceActLowering(t *testing.T) {
	net := nnet.VGG16(4)
	plain := Build(net)
	inplace := BuildWith(nnet.VGG16(4), Options{InPlaceAct: true})
	if inplace.Reg.Len() >= plain.Reg.Len() {
		t.Fatalf("in-place lowering must create fewer tensors: %d vs %d",
			inplace.Reg.Len(), plain.Reg.Len())
	}
	// Every single-consumer ReLU shares its producer's buffer.
	byName := make(map[string]*nnet.Node)
	for _, nd := range inplace.Net.Nodes {
		byName[nd.Name()] = nd
	}
	relu := byName["relu1_1"]
	if inplace.Out[relu.ID] != inplace.Out[relu.Prev[0].ID] {
		t.Error("relu1_1 must alias conv1_1's output")
	}
	// The baseline footprint shrinks accordingly.
	if inplace.BaselineBytes() >= plain.BaselineBytes() {
		t.Error("in-place lowering must reduce the Σf+Σb baseline")
	}
	// Working sets stay valid: lpeak is positive and below baseline.
	lp, _ := inplace.LPeak()
	if lp <= 0 || lp > inplace.BaselineBytes() {
		t.Errorf("in-place lpeak %d out of range", lp)
	}
}
