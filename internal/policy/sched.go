package policy

import (
	"repro/internal/par"
	"repro/internal/sched"
)

// CompareSchedulers replays the same job stream on the same cluster
// under every built-in scheduler policy (FIFO, priority, memory-aware
// packing) — the multi-tenant counterpart of the single-job framework
// comparisons above. Policies run in parallel; dry-run estimates are
// memoized inside internal/sched, so the trace's distinct job shapes
// are simulated once. Results land in sched.Policies() order.
func CompareSchedulers(c sched.Cluster, jobs []sched.Job) ([]*sched.Result, error) {
	return par.MapErr(sched.Policies(), 0, func(p sched.Policy) (*sched.Result, error) {
		s, err := sched.NewScheduler(c, p)
		if err != nil {
			return nil, err
		}
		return s.Run(jobs)
	})
}
