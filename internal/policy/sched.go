package policy

import (
	"repro/internal/par"
	"repro/internal/sched"
)

// CompareSchedulers replays the same job stream on the same cluster
// under every built-in scheduler policy (FIFO, priority, memory-aware
// packing, topology-aware packing) — the multi-tenant counterpart of
// the single-job framework comparisons above. Policies run in parallel over one shared
// estimator, so the trace's distinct job shapes are dry-run once for
// the whole comparison. Results land in sched.Policies() order.
func CompareSchedulers(c sched.Cluster, jobs []sched.Job) ([]*sched.Result, error) {
	est := sched.NewEstimator()
	return par.MapErr(sched.Policies(), 0, func(p sched.Policy) (*sched.Result, error) {
		s, err := sched.NewSchedulerWithEstimator(c, p, est)
		if err != nil {
			return nil, err
		}
		return s.Run(jobs)
	})
}
