// Package policy models the memory-management policies of the deep
// learning frameworks the paper compares against (§2.2, §4.2) and
// drives the capacity searches behind Tables 4 and 5. Every framework
// runs on the same simulated substrate (internal/core), so the
// comparisons isolate exactly the policy differences:
//
//   - Caffe: the whole network stays resident; forward tensors are
//     reused for backward only through the executor's in-place
//     gradient chains. No liveness, no swapping, no recomputation.
//   - Torch: Caffe's policy plus pervasive in-place ReLU/Dropout
//     forwards (nn.ReLU(true)).
//   - MXNet: DAG liveness analysis plus the per-segment speed-centric
//     recomputation of Chen et al. — no swapping, so checkpoint
//     outputs accumulate on the GPU.
//   - TensorFlow: DAG liveness plus "swap long-lived tensors to CPU":
//     single-consumer forward outputs move to pageable host memory on
//     demand (no pinned staging, no prefetch overlap — the ≥50%
//     communication-speed loss §2.2 describes), no recomputation.
//   - SuperNeurons: the full runtime — liveness + pinned
//     prefetch/offload of checkpoints and join tensors + LRU tensor
//     cache + cost-aware recomputation + memory pool + dynamic
//     convolution workspaces.
package policy

import (
	"errors"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/par"
)

// Framework names a memory policy. Configs returns the runtime
// configurations tried in order until one fits — TensorFlow's memory
// optimizer, for instance, only inserts swap nodes when the plain
// execution would not fit. Every configuration routes through a named
// internal/memmgr MemoryManager, so the comparisons exercise the real
// policy seam rather than ad-hoc flag combinations.
type Framework struct {
	Name    string
	Configs func(d hw.DeviceSpec) []core.Config
}

// Config returns the framework's primary (preferred) configuration.
func (f Framework) Config(d hw.DeviceSpec) core.Config { return f.Configs(d)[0] }

// managed returns a Configs func routing to the named memmgr managers
// in fallback order.
func managed(managers ...string) func(d hw.DeviceSpec) []core.Config {
	return func(d hw.DeviceSpec) []core.Config {
		out := make([]core.Config, len(managers))
		for i, m := range managers {
			out[i] = core.Config{Manager: m, Device: d}
		}
		return out
	}
}

// Caffe keeps the whole network resident and caps each convolution's
// workspace at its conservative 8 MiB default.
var Caffe = Framework{Name: "Caffe", Configs: managed("caffe")}

// Torch is Caffe's policy plus in-place activations and a somewhat
// larger static workspace cap.
var Torch = Framework{Name: "Torch", Configs: managed("torch")}

// MXNet runs liveness plus speed-centric recomputation with its 1 GiB
// per-layer workspace default.
var MXNet = Framework{Name: "MXNet", Configs: managed("mxnet")}

// TensorFlow runs liveness, first without swapping; when the network
// does not fit, its memory optimizer inserts pageable on-demand
// swap-out/swap-in pairs for single-consumer tensors.
var TensorFlow = Framework{Name: "TensorFlow", Configs: managed("tensorflow", "tensorflow-swap")}

// SuperNeurons is the paper's full runtime.
var SuperNeurons = Framework{Name: "SuperNeurons", Configs: managed("superneurons")}

// VDNN models Rhu et al.'s vDNN (§5): eager pinned offloading of every
// sizable single-consumer tensor with prefetching — but no
// recomputation, no tensor cache, and no dynamic workspace policy
// beyond a fixed cap. Its performance depends entirely on the
// communication/computation ratio, which is the weakness on non-linear
// networks the paper calls out.
var VDNN = Framework{Name: "vDNN", Configs: managed("vdnn")}

// All lists the frameworks in the paper's table order.
var All = []Framework{Caffe, MXNet, Torch, TensorFlow, SuperNeurons}

// ByName returns the framework with the given name, or false.
func ByName(name string) (Framework, bool) {
	for _, f := range All {
		if f.Name == name {
			return f, true
		}
	}
	return Framework{}, false
}

// run executes the framework's configurations in order until one
// fits; it returns (nil, nil) when all of them run out of memory.
func run(f Framework, net *nnet.Net, d hw.DeviceSpec) (*core.Result, error) {
	for _, cfg := range f.Configs(d) {
		r, err := core.Run(net, cfg)
		if err == nil {
			return r, nil
		}
		if !errors.Is(err, core.ErrOutOfMemory) {
			return nil, err
		}
	}
	return nil, nil
}

// Trainable reports whether the framework can run one training
// iteration of the network on the device. Non-OOM errors propagate.
func Trainable(f Framework, net *nnet.Net, d hw.DeviceSpec) (bool, error) {
	r, err := run(f, net, d)
	return r != nil, err
}

// MaxBatch returns the largest batch in [1, hi] the framework can
// train, found by exponential probing plus binary search (capacity is
// monotone in batch size). Returns 0 if even batch 1 fails.
func MaxBatch(f Framework, build nnet.BuilderFunc, d hw.DeviceSpec, hi int) (int, error) {
	fits := func(b int) (bool, error) { return Trainable(f, build(b), d) }
	if ok, err := fits(1); err != nil || !ok {
		return 0, err
	}
	lo := 1
	probe := 2
	for probe <= hi {
		ok, err := fits(probe)
		if err != nil {
			return 0, err
		}
		if !ok {
			hi = probe - 1
			break
		}
		lo = probe
		probe *= 2
	}
	if probe > hi && lo == probe/2 {
		// Never failed up to hi.
		if ok, err := fits(hi); err != nil {
			return 0, err
		} else if ok {
			return hi, nil
		}
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		ok, err := fits(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// MaxDepth returns the deepest Table-4 ResNet (n1=6, n2=32, n4=6,
// varying n3 in [1, maxN3]) the framework can train at the given
// batch, as (n3, depth). Returns (0,0) if even n3=1 fails.
func MaxDepth(f Framework, d hw.DeviceSpec, batch, maxN3 int) (int, int, error) {
	fits := func(n3 int) (bool, error) { return Trainable(f, nnet.ResNetTable4(batch, n3), d) }
	if ok, err := fits(1); err != nil || !ok {
		return 0, 0, err
	}
	lo, hi := 1, maxN3
	probe := 2
	for probe <= hi {
		ok, err := fits(probe)
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			hi = probe - 1
			break
		}
		lo = probe
		probe *= 2
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		ok, err := fits(mid)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nnet.ResNetDepth(6, 32, lo, 6), nil
}

// Speed returns the training throughput (img/s) of the framework on
// the network, or 0 when it does not fit.
func Speed(f Framework, net *nnet.Net, d hw.DeviceSpec) (float64, error) {
	r, err := run(f, net, d)
	if err != nil || r == nil {
		return 0, err
	}
	return r.Throughput, nil
}

// BatchSweep measures img/s for each framework over the batch sizes,
// running frameworks in parallel. Entry [i][j] is frameworks[i] at
// batches[j]; 0 marks out-of-memory.
func BatchSweep(frameworks []Framework, build nnet.BuilderFunc, d hw.DeviceSpec, batches []int) ([][]float64, error) {
	return par.MapErr(frameworks, 0, func(f Framework) ([]float64, error) {
		row := make([]float64, len(batches))
		for j, b := range batches {
			s, err := Speed(f, build(b), d)
			if err != nil {
				return nil, err
			}
			row[j] = s
		}
		return row, nil
	})
}
