package policy

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestByName(t *testing.T) {
	if f, ok := ByName("SuperNeurons"); !ok || f.Name != "SuperNeurons" {
		t.Error("ByName(SuperNeurons) failed")
	}
	if _, ok := ByName("PyTorch"); ok {
		t.Error("unknown framework must not resolve")
	}
	if len(All) != 5 {
		t.Errorf("All has %d frameworks, want 5", len(All))
	}
}

func TestTrainable(t *testing.T) {
	ok, err := Trainable(SuperNeurons, nnet.AlexNet(32), hw.TeslaK40c)
	if err != nil || !ok {
		t.Fatalf("AlexNet b32 must train: ok=%v err=%v", ok, err)
	}
	ok, err = Trainable(Caffe, nnet.ResNet(152, 512), hw.TeslaK40c)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Caffe must not fit ResNet-152 at batch 512 in 12 GB")
	}
}

func TestMaxBatchOrdering(t *testing.T) {
	// Table 5's headline shape on one network: SuperNeurons trains the
	// largest batch; Caffe/Torch (keep-everything) the smallest; Torch
	// beats Caffe via in-place activations.
	d := hw.TeslaK40c
	build := nnet.ByName("ResNet50")
	caps := make(map[string]int)
	for _, f := range All {
		b, err := MaxBatch(f, build, d, 2048)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if b == 0 {
			t.Fatalf("%s cannot train ResNet-50 at batch 1", f.Name)
		}
		caps[f.Name] = b
	}
	t.Logf("ResNet-50 max batches: %v", caps)
	if !(caps["SuperNeurons"] > caps["TensorFlow"] &&
		caps["TensorFlow"] > caps["MXNet"] &&
		caps["MXNet"] > caps["Torch"] &&
		caps["Torch"] >= caps["Caffe"]) {
		t.Errorf("capacity ordering broken: %v", caps)
	}
	// Paper: SuperNeurons handles ~1.9x the second best on average; on
	// ResNet-50 specifically 384 vs 128 = 3x. Require at least 1.5x.
	if float64(caps["SuperNeurons"]) < 1.5*float64(caps["TensorFlow"]) {
		t.Errorf("SuperNeurons/second-best = %d/%d, want >= 1.5x",
			caps["SuperNeurons"], caps["TensorFlow"])
	}
}

func TestMaxDepthOrdering(t *testing.T) {
	// Table 4's shape: deepest trainable Table-4 ResNet at batch 16.
	d := hw.TeslaK40c
	depths := make(map[string]int)
	for _, f := range All {
		_, depth, err := MaxDepth(f, d, 16, 1200)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		depths[f.Name] = depth
	}
	t.Logf("max depths: %v", depths)
	if !(depths["SuperNeurons"] > depths["TensorFlow"] &&
		depths["TensorFlow"] > depths["MXNet"] &&
		depths["MXNet"] > depths["Torch"]) {
		t.Errorf("depth ordering broken: %v", depths)
	}
	// Paper: 1920 vs 592 = 3.2x deeper than the second best.
	if float64(depths["SuperNeurons"]) < 2*float64(depths["TensorFlow"]) {
		t.Errorf("SuperNeurons depth advantage too small: %v", depths)
	}
}

func TestVDNNWeakOnNonlinearNetworks(t *testing.T) {
	// §5: vDNN's eager offloading "quickly deteriorates once
	// computations are inadequate to overlap with communications" on
	// non-linear networks; SuperNeurons' cache+recompute avoid that.
	d := hw.TitanXP
	vdnn, err := Speed(VDNN, nnet.ResNet(50, 32), d)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := Speed(SuperNeurons, nnet.ResNet(50, 32), d)
	if err != nil {
		t.Fatal(err)
	}
	if vdnn <= 0 || sn <= 0 {
		t.Fatalf("speeds: vdnn=%v sn=%v", vdnn, sn)
	}
	if sn < 1.2*vdnn {
		t.Errorf("SuperNeurons (%.1f) should clearly beat vDNN (%.1f) on a non-linear net", sn, vdnn)
	}
	// vDNN still buys capacity relative to keep-everything Caffe.
	caffeMax, err := MaxBatch(Caffe, nnet.ByName("ResNet50"), hw.TeslaK40c, 2048)
	if err != nil {
		t.Fatal(err)
	}
	vdnnMax, err := MaxBatch(VDNN, nnet.ByName("ResNet50"), hw.TeslaK40c, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if vdnnMax <= caffeMax {
		t.Errorf("vDNN max batch %d must exceed Caffe's %d", vdnnMax, caffeMax)
	}
}

func TestSpeedReportsZeroOnOOM(t *testing.T) {
	s, err := Speed(Caffe, nnet.ResNet(152, 512), hw.TeslaK40c)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("speed on OOM = %v, want 0", s)
	}
}

func TestBatchSweepShape(t *testing.T) {
	rows, err := BatchSweep([]Framework{Caffe, SuperNeurons}, nnet.ByName("AlexNet"),
		hw.TitanXP, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 2 {
		t.Fatalf("sweep shape %dx%d", len(rows), len(rows[0]))
	}
	for i, row := range rows {
		for j, s := range row {
			if s <= 0 {
				t.Errorf("rows[%d][%d] = %v, want > 0", i, j, s)
			}
		}
	}
}

func TestCompareSchedulers(t *testing.T) {
	cluster := sched.Cluster{Device: hw.TeslaK40c, Devices: 2}
	jobs := sched.JobsFromTrace(workload.DefaultTrace())
	results, err := CompareSchedulers(cluster, jobs)
	if err != nil {
		t.Fatal(err)
	}
	policies := sched.Policies()
	if len(results) != len(policies) {
		t.Fatalf("%d results for %d policies", len(results), len(policies))
	}
	byName := map[string]*sched.Result{}
	for i, r := range results {
		if r.Policy != policies[i].Name {
			t.Errorf("results[%d] is %q, want %q (input order)", i, r.Policy, policies[i].Name)
		}
		byName[r.Policy] = r
	}
	// The multi-tenant headline: memory-aware packing beats FIFO on
	// cluster utilization even when both run in parallel goroutines.
	if byName["packing"].Utilization <= byName["fifo"].Utilization {
		t.Errorf("packing utilization %.4f not above fifo %.4f",
			byName["packing"].Utilization, byName["fifo"].Utilization)
	}
}
