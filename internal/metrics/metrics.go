// Package metrics renders the evaluation artifacts: aligned text
// tables for the paper's Tables 1-5, ASCII charts for its figures, and
// CSV export for external plotting. All benches and commands share
// these renderers so every reproduction prints comparable output.
package metrics

import (
	"fmt"
	"io"
	"strings"
)

// MiB formats bytes as mebibytes with the paper's two-decimal style.
func MiB(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/(1<<20)) }

// GiB formats bytes as gibibytes.
func GiB(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/(1<<30)) }

// Table is a simple aligned-column text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; missing cells render empty.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends one row of formatted values.
func (t *Table) Addf(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Header}, t.Rows...)
	for _, r := range rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart renders series as an ASCII scatter plot of the given text
// dimensions — the textual stand-in for the paper's figures.
func Chart(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX, minY, maxY := 0.0, 1.0, 0.0, 1.0
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			minX, maxX = min(minX, s.X[i]), max(maxX, s.X[i])
			minY, maxY = min(minY, s.Y[i]), max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range series {
		m := marks[si%len(marks)]
		for i := range s.X {
			x := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			y := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - y
			grid[row][x] = m
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "y: %.6g .. %.6g\n", minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "x: %.6g .. %.6g\n", minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

// Bars renders a one-line-per-item horizontal bar chart scaled to the
// largest value.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := int(v / maxV * float64(width))
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", maxLabel, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}
