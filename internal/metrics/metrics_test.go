package metrics

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.Add("a", "1")
	tb.Add("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset in every row.
	off := strings.Index(lines[1], "value")
	if lines[3][off:off+1] != "1" && lines[4][off:off+1] != "1" {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Addf("%d|%s", 7, "x")
	if tb.Rows[0][0] != "7" || tb.Rows[0][1] != "x" {
		t.Errorf("Addf rows = %v", tb.Rows)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add(`he said "hi"`, "x,y")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"he said \"\"hi\"\"\",\"x,y\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestByteFormats(t *testing.T) {
	if MiB(1<<20) != "1.00" || GiB(3<<30) != "3.00" {
		t.Error("byte formatting wrong")
	}
}

// Rows wider than the header still render, padding the header.
func TestTableRowsWiderThanHeader(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("1", "2", "3")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[2], "3") {
		t.Errorf("extra cell dropped: %q", out)
	}
}

// CSV surfaces writer errors instead of swallowing them.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errShort }

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func TestCSVPropagatesWriteError(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("1")
	if err := tb.CSV(failWriter{}); err == nil {
		t.Error("CSV ignored the writer error")
	}
}

func TestBarsUntitled(t *testing.T) {
	out := Bars("", []string{"a"}, []float64{3}, 4)
	if strings.HasPrefix(out, "\n") {
		t.Errorf("untitled bars start with a blank line: %q", out)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("full-scale bar missing: %q", out)
	}
}

func TestChartContainsAllSeries(t *testing.T) {
	s := []Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}
	out := Chart("demo", s, 20, 8)
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("marks missing:\n%s", out)
	}
	if !strings.Contains(out, "x: 0 .. 2") {
		t.Errorf("x range missing:\n%s", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	out := Chart("flat", []Series{{Name: "c", X: []float64{1}, Y: []float64{5}}}, 3, 2)
	if out == "" {
		t.Fatal("degenerate chart must still render")
	}
}

func TestBars(t *testing.T) {
	out := Bars("b", []string{"x", "yy"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("bars lines = %d", len(lines))
	}
	if strings.Count(lines[2], "#") != 10 || strings.Count(lines[1], "#") != 5 {
		t.Errorf("bar scaling wrong:\n%s", out)
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars("z", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Error("zero bars must be empty")
	}
}
