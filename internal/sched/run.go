package sched

import (
	"context"
	"fmt"
	"io"
	"log/slog"

	"repro/internal/dataparallel"
	"repro/internal/hw"
	"repro/internal/memmgr"
	"repro/internal/memplan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The discrete-event core of the scheduler, shared verbatim by the
// batch path (Scheduler.Run) and the resumable path (Incremental): one
// code path means a paused-and-resumed replay cannot diverge from a
// from-scratch replay.
//
// Events are plain data, not closures, for two reasons. First, a
// paused execution can be deep-copied (Incremental.Clone) and
// serialized (EncodeState) only if its in-flight events are
// re-materializable; a closure capturing the original run's structs is
// neither. Second, events carry an explicit (time, class, sequence)
// key so the processing order is a total order over data: arrivals
// sort before completions at the same virtual instant, matching the
// batch scheduler's historical behavior (it posted every arrival
// before draining, so at equal times an arrival's insertion sequence
// was always lower). That tie rule is what makes incremental replay
// provably identical to batch replay: both process the same event
// multiset in the same key order, so they produce the same schedule
// byte for byte.

// Event classes: arrivals order before iteration completions, and
// both order before fault events, at the same virtual time (see the
// package comment above and fault.go — a job checkpoints at an
// iteration boundary that coincides with a failure, and an arrival
// admitted onto a device failing that instant is displaced, not lost).
const (
	classArrival = 0
	classDone    = 1
	classFault   = 2
)

// event is one schedulable decision point.
type event struct {
	at    sim.Time
	class uint8
	seq   int64 // per-class monotone sequence, the final tie-break
	job   int   // index into exec.states; the recover flag (classFault)
	dev   int   // device index (classDone and classFault)
}

// before is the total event order: (time, class, sequence).
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.class != b.class {
		return a.class < b.class
	}
	return a.seq < b.seq
}

// eventQueue is a hand-rolled binary min-heap over events. It avoids
// container/heap so pushes do not box through interface{} — the
// dispatch path runs once per training iteration of every job.
type eventQueue []event

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l].before(h[m]) {
			m = l
		}
		if r < n && h[r].before(h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// jobState is the scheduler's mutable view of one job.
type jobState struct {
	Job
	seq int // input order, the deterministic tie-breaker
	// rejReason is non-empty when admission rejected the job up front.
	rejReason string
	// est is the admission estimate: for dynamic jobs, the worst case
	// over the schedule's distinct shapes.
	est memmgr.Estimate
	// iterTimes holds the per-schedule-position iteration durations
	// (one entry for static jobs). Immutable after creation, so clones
	// share it.
	iterTimes []sim.Duration
	remaining int
	device    int
	// gang lists the devices of the current (or last) placement,
	// ascending; admit assigns a fresh slice, so clones can share the
	// backing array. Always non-empty while the job is resident; a
	// single-device job's gang is just {device}.
	gang []int
	// gangAR is the total bucketed all-reduce cost per iteration at
	// the current placement (zero for single-device jobs); the exposed
	// share is derived per iteration, since dynamic-batch iterations
	// have different overlap windows.
	gangAR   sim.Duration
	started  bool
	start    sim.Time
	finish   sim.Time
	preempts int
	// marked is set when a preemptive policy has chosen this job as a
	// victim; it vacates at its next iteration boundary.
	marked bool
	// running is set while an iteration is in flight on the engine.
	running bool
	// liveDone is the sequence of the in-flight iteration's completion
	// event, -1 when none. A device failure aborts the iteration by
	// resetting it, so the already-queued completion is recognized as
	// stale when it fires.
	liveDone int64
	// Fault-recovery counters: checkpoint restores suffered, elastic
	// gang shrinks taken, and iterations lost in flight (each re-run
	// from the last iteration boundary).
	restores  int
	shrinks   int
	lostIters int
	// demand is the device-planner demand under CrossJob admission
	// (zero otherwise). Immutable after creation; clones share the
	// tensor slice.
	demand memplan.Demand
}

// device is the scheduler's mutable view of one GPU. The serial
// compute engine is modeled inline (freeAt/busy) rather than through
// sim.Engine so a paused execution can be cloned and serialized; the
// timestamp arithmetic is identical (a task starts at
// max(issue, freeAt) and runs for its duration).
type device struct {
	freeAt   sim.Time
	busy     sim.Duration
	used     int64
	peak     int64
	resident []*jobState
	rr       int // round-robin cursor into resident
	inflight bool
	iters    int

	// maxRes is the co-residency high-water mark; spillPeak the
	// host-spill-pool one (CrossJob only).
	maxRes    int
	spillPeak int64

	// Fault state: failed devices are skipped by every placement and
	// dispatch path; downSince stamps the current outage, down
	// accumulates completed ones, fails counts failure events.
	failed    bool
	downSince sim.Time
	down      sim.Duration
	fails     int

	// memIntegral accumulates used×dt for the memory-utilization
	// metric; lastT is the time of its last update.
	memIntegral float64
	lastT       sim.Time
}

func (d *device) setUsed(now sim.Time, delta int64) {
	d.memIntegral += float64(d.used) * float64(now-d.lastT)
	d.lastT = now
	d.used += delta
	if d.used > d.peak {
		d.peak = d.used
	}
}

// exec is one in-progress replay of a job stream over a cluster: the
// states, devices, pending queue and event queue of the discrete-event
// loop, advanced by processUntil.
type exec struct {
	cluster Cluster
	policy  Policy
	cap     int64
	est     *Estimator
	// topo is the normalized interconnect topology; overlap selects
	// the gang communication model (see Cluster).
	topo    hw.Topology
	overlap bool

	// crossjob enables the interference-aware device planners (one per
	// device, nil otherwise); spillCap is the per-device host spill
	// pool each planner owns. Planner state is a pure function of the
	// member set, which is what lets clone and snapshot-restore rebuild
	// planners by re-admitting residents (rebuildPlanners).
	crossjob bool
	spillCap int64
	planners []*memplan.Planner

	// lg receives structured scheduling decisions; lgDbg gates the
	// per-event hot path (checked once, the serve-layer idiom).
	lg    *slog.Logger
	lgDbg bool

	states  []*jobState
	devs    []*device
	pending []*jobState
	q       eventQueue
	doneSeq int64
	now     sim.Time // time of the last processed event
	runErr  error

	// Running aggregates over finalized jobs, so a summary of a long
	// history costs O(active), not O(history).
	finCount int
	rejCount int
	sumJCT   sim.Duration
	sumWait  sim.Duration
}

func newExec(c Cluster, p Policy, est *Estimator) (*exec, error) {
	if c.Devices <= 0 {
		return nil, fmt.Errorf("sched: cluster needs at least one device, got %d", c.Devices)
	}
	if c.Device.UsableBytes <= 0 {
		return nil, fmt.Errorf("sched: device %q has no usable memory", c.Device.Name)
	}
	if p.Less == nil {
		return nil, fmt.Errorf("sched: policy %q has no queue order", p.Name)
	}
	if err := c.Faults.Validate(c.Devices); err != nil {
		return nil, err
	}
	if est == nil {
		est = NewEstimator()
	}
	e := &exec{cluster: c, policy: p, cap: c.Capacity(), est: est,
		topo: c.Topology.WithDefaults(), overlap: c.Overlap}
	if len(e.cluster.Faults.Events) == 0 {
		// Normalize an empty plan to nil so option-built and
		// literal-built clusters compare equal in reported results.
		e.cluster.Faults.Events = nil
	}
	e.devs = make([]*device, c.Devices)
	for i := range e.devs {
		e.devs[i] = &device{}
	}
	if c.CrossJob {
		e.crossjob = true
		e.spillCap = c.HostSpillBytes
		if e.spillCap <= 0 {
			e.spillCap = defaultSpillBytes
		}
		// Reflect the resolved pool size in the reported cluster.
		e.cluster.HostSpillBytes = e.spillCap
		e.planners = make([]*memplan.Planner, len(e.devs))
		for i := range e.planners {
			pl, err := memplan.New(e.cap, e.spillCap, spillLink)
			if err != nil {
				return nil, fmt.Errorf("sched: %w", err)
			}
			e.planners[i] = pl
		}
	}
	e.setLogger(nil)
	return e, nil
}

// defaultSpillBytes is the per-device host spill pool under CrossJob
// when the cluster does not size it; spillLink prices the floor swaps
// (the pinned PCIe path memmgr's host offloads default to).
const defaultSpillBytes = 64 * hw.GiB

var spillLink = hw.PCIePinned

// setLogger installs the structured-event sink (nil discards).
func (e *exec) setLogger(lg *slog.Logger) {
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	e.lg = lg
	e.lgDbg = lg.Enabled(context.Background(), slog.LevelDebug)
}

// plannerID is the job's member key in device planners: the zero-padded
// trace index, so lexicographic member order (the planner's spill
// tie-break) is exactly trace order.
func plannerID(js *jobState) string { return fmt.Sprintf("%08d", js.seq) }

// coResidents renders a device's resident job IDs for logging.
func coResidents(d *device) []string {
	out := make([]string, 0, len(d.resident))
	for _, r := range d.resident {
		out = append(out, r.ID)
	}
	return out
}

// addJob estimates and appends one job, deciding up-front rejection.
// It does not post the arrival event; callers do (batch posts in input
// order, incremental as records merge).
func (e *exec) addJob(j Job) (int, error) {
	i := len(e.states)
	if j.Iterations <= 0 {
		j.Iterations = 1
	}
	if j.GPUs <= 0 {
		j.GPUs = 1
	}
	if j.ID == "" {
		j.ID = fmt.Sprintf("job%d", i)
	}
	if j.GPUs > e.cluster.Devices {
		// A gang wider than the cluster can never be placed; reject up
		// front like a single job that cannot fit an idle device.
		e.states = append(e.states, &jobState{Job: j, seq: i, liveDone: -1,
			rejReason: fmt.Sprintf("gang needs %d devices, cluster has %d", j.GPUs, e.cluster.Devices)})
		e.rejCount++
		return i, nil
	}
	batches := []int{j.Batch}
	if len(j.BatchSchedule) > 0 {
		sched := workload.Schedule(j.BatchSchedule)
		if err := sched.Validate(); err != nil {
			return -1, fmt.Errorf("sched: job %s: %w", j.ID, err)
		}
		batches = sched.Distinct()
	}
	perBatch := make(map[int]memmgr.Estimate, len(batches))
	var worst memmgr.Estimate
	worstBatch := 0
	rejReason := ""
	for _, b := range batches {
		est, err := e.est.Estimate(j.Network, b, j.Manager, e.cluster.Device)
		if err != nil {
			if isOOM(err) {
				rejReason = fmt.Sprintf("batch %d exceeds device memory even alone", b)
				break
			}
			return -1, fmt.Errorf("sched: job %s: %w", j.ID, err)
		}
		perBatch[b] = est
		if est.PeakBytes > worst.PeakBytes || worstBatch == 0 {
			worst = est
			worstBatch = b
		}
	}
	if rejReason != "" {
		// Rejected before any shape estimated cleanly: the recorded
		// Estimate stays zero, exactly as the batch scheduler always
		// reported it.
		e.states = append(e.states, &jobState{Job: j, seq: i, liveDone: -1, rejReason: rejReason})
		e.rejCount++
		e.lg.Info("job rejected", "job", j.ID, "reason", rejReason)
		return i, nil
	}
	if worst.PeakBytes > e.cap {
		rejReason = fmt.Sprintf("predicted worst-case peak %d exceeds device capacity %d", worst.PeakBytes, e.cap)
	}
	iterTimes := []sim.Duration{worst.IterTime}
	if len(j.BatchSchedule) > 0 {
		iterTimes = make([]sim.Duration, len(j.BatchSchedule))
		for k, b := range j.BatchSchedule {
			iterTimes[k] = perBatch[b].IterTime
		}
	}
	js := &jobState{Job: j, seq: i, rejReason: rejReason, est: worst, iterTimes: iterTimes, remaining: j.Iterations, device: -1, liveDone: -1}
	if rejReason != "" {
		js.remaining = 0
		e.rejCount++
		e.lg.Info("job rejected", "job", j.ID, "reason", rejReason,
			"peak_bytes", worst.PeakBytes, "capacity", e.cap)
	} else if e.crossjob {
		// The worst shape's tensor-granularity demand; the planner sees
		// the same worst case admission reserves.
		tds, err := e.est.TensorDemands(j.Network, worstBatch)
		if err != nil {
			return -1, fmt.Errorf("sched: job %s: %w", j.ID, err)
		}
		js.demand = buildDemand(js, tds)
	}
	e.states = append(e.states, js)
	return i, nil
}

// buildDemand assembles the device-planner demand from the admission
// estimate and the extracted tensor shapes, clamped to the functional
// budget (peak minus floor) — shape sizes are program-declared while
// the peak is a measured high-water mark, and the planner refuses
// demands whose shareable bytes exceed the job's running footprint. An
// estimate without a floor (recorded before the field existed) yields
// floor == peak: worst-case-in-isolation, never an optimistic plan.
func buildDemand(js *jobState, tds []memplan.TensorDemand) memplan.Demand {
	d := memplan.Demand{
		Job:        plannerID(js),
		PeakBytes:  js.est.PeakBytes,
		FloorBytes: js.est.FloorBytes,
		SpillBytes: js.est.SpillBytes,
		IterTime:   js.est.IterTime,
	}
	if d.FloorBytes <= 0 || d.FloorBytes > d.PeakBytes {
		d.FloorBytes = d.PeakBytes
	}
	budget := d.PeakBytes - d.FloorBytes
	for _, td := range tds {
		if td.Bytes > budget {
			continue
		}
		d.Tensors = append(d.Tensors, td)
		budget -= td.Bytes
	}
	return d
}

// postArrival schedules job i's arrival event (no-op for rejected
// jobs, which never enter the cluster). The arrival sequence is the
// job index itself: input order, the same tie-break the batch
// scheduler has always used for same-instant arrivals.
func (e *exec) postArrival(i int) {
	js := e.states[i]
	if js.rejReason != "" {
		return
	}
	e.q.push(event{at: js.Arrival, class: classArrival, seq: int64(i), job: i})
}

// processUntil runs events with time strictly below limit in
// (time, class, seq) order; a negative limit drains everything.
func (e *exec) processUntil(limit sim.Time) {
	for len(e.q) > 0 {
		if limit >= 0 && e.q[0].at >= limit {
			return
		}
		ev := e.q.pop()
		e.now = ev.at
		switch ev.class {
		case classArrival:
			e.pending = append(e.pending, e.states[ev.job])
			e.schedule(ev.at)
		case classDone:
			e.iterDone(e.states[ev.job], ev.dev, ev.at, ev.seq)
		case classFault:
			if ev.job != 0 {
				e.recoverDevice(ev.dev, ev.at)
			} else {
				e.failDevice(ev.dev, ev.at)
			}
		}
	}
}

func (e *exec) fail(err error) {
	if e.runErr == nil {
		e.runErr = err
	}
}

func (e *exec) schedule(now sim.Time) {
	e.policy.schedule(e, now)
}

// headroom is the fit context every placement decision routes through:
// the capacity left on device di after admitting js, and whether it
// fits at all. Isolated mode is the historical arithmetic (free minus
// solo peak); CrossJob asks the device planner, whose requirement
// charges the worst case over the running tenant plus parked floors —
// not the sum of solo peaks.
func (e *exec) headroom(js *jobState, di int) (int64, bool) {
	if e.devs[di].failed {
		return 0, false
	}
	if e.crossjob {
		return e.planners[di].Headroom(js.demand)
	}
	left := e.cap - e.devs[di].used - js.est.PeakBytes
	if left < 0 {
		return 0, false
	}
	return left, true
}

// headroomWithout is headroom with some residents hypothetically
// evicted — the preemption-viability probe.
func (e *exec) headroomWithout(js *jobState, di int, exclude func(*jobState) bool) (int64, bool) {
	d := e.devs[di]
	if d.failed {
		return 0, false
	}
	if e.crossjob {
		return e.planners[di].HeadroomWithout(func(member string) bool {
			for _, r := range d.resident {
				if plannerID(r) == member {
					return exclude(r)
				}
			}
			return false
		}, js.demand)
	}
	free := e.cap - d.used
	for _, r := range d.resident {
		if exclude(r) {
			free += r.est.PeakBytes
		}
	}
	left := free - js.est.PeakBytes
	if left < 0 {
		return 0, false
	}
	return left, true
}

// admit reserves the job's per-device peak on every gang member —
// all-or-nothing, the gang admission rule — prices the gang's
// all-reduce for this placement, and dispatches the first engine if
// idle.
func (e *exec) admit(js *jobState, gang []int, now sim.Time) {
	for _, di := range gang {
		d := e.devs[di]
		if e.crossjob {
			// The device reserves the planner's requirement delta: the
			// member set is replanned with js included, and used tracks
			// the new requirement exactly. Admit fails only when the
			// policy admitted without probing headroom first — that is
			// a scheduler bug, surfaced as a run error, never an OOM.
			pl := e.planners[di]
			before := pl.Requirement()
			if _, err := pl.Admit(js.demand); err != nil {
				e.fail(fmt.Errorf("sched: %w", err))
			}
			d.setUsed(now, pl.Requirement()-before)
			if sp := pl.SpillUsed(); sp > d.spillPeak {
				d.spillPeak = sp
			}
		} else {
			d.setUsed(now, js.est.PeakBytes)
		}
		if d.used > e.cap {
			e.fail(fmt.Errorf("sched: admission overflow on gpu%d: %d > capacity %d (job %s)", di, d.used, e.cap, js.ID))
		}
		d.resident = append(d.resident, js)
		if len(d.resident) > d.maxRes {
			d.maxRes = len(d.resident)
		}
	}
	js.gang = gang
	js.device = gang[0]
	// The collective is priced once per placement: a bucketed ring
	// all-reduce of the replica gradient across the gang, set by the
	// slowest pairwise tier (a preempted gang re-priced on re-admission
	// may land on a different tier, and an elastically shrunk gang is
	// re-priced by this same rule over its surviving subset).
	js.gangAR = dataparallel.PriceGang(e.topo, gang, js.est.GradientBytes, dataparallel.DefaultBuckets)
	if !js.started {
		js.started = true
		js.start = now
	}
	if e.lgDbg {
		attrs := []any{"job", js.ID, "device", gang[0], "gang", gang, "t", int64(now),
			"peak_bytes", js.est.PeakBytes, "cotenants", coResidents(e.devs[gang[0]])}
		if e.crossjob {
			pl := e.planners[gang[0]]
			g, _ := pl.Grant(js.demand.Job)
			attrs = append(attrs, "requirement", pl.Requirement(), "spill_used", pl.SpillUsed(),
				"shared_saved", pl.SharedSavedBytes())
			if g.SpilledBytes > 0 {
				e.lg.Debug("floor spilled", "job", js.ID, "device", gang[0],
					"spilled_bytes", g.SpilledBytes, "swap_penalty", int64(g.SwapPenalty))
			}
		}
		e.lg.Debug("job admitted", attrs...)
	}
	e.dispatch(e.devs[gang[0]], gang[0], now)
}

// vacate releases the job's reservation on every gang member and drops
// it from their resident sets — a gang always leaves atomically (an
// elastic shrink, which releases one member only, goes through
// vacateOne directly). The gang list is retained for reporting; the
// next admit overwrites it.
func (e *exec) vacate(js *jobState, now sim.Time) {
	for _, di := range js.gang {
		e.vacateOne(js, di, now)
	}
	js.gangAR = 0
}

// vacateOne drops the job from device di's resident set and releases
// its reservation there, re-planning the device's demand set under
// CrossJob.
func (e *exec) vacateOne(js *jobState, di int, now sim.Time) {
	d := e.devs[di]
	for i, r := range d.resident {
		if r == js {
			d.resident = append(d.resident[:i], d.resident[i+1:]...)
			if d.rr > i {
				d.rr--
			}
			break
		}
	}
	if len(d.resident) > 0 {
		d.rr %= len(d.resident)
	} else {
		d.rr = 0
	}
	if e.crossjob {
		pl := e.planners[di]
		before := pl.Requirement()
		if err := pl.Release(js.demand.Job); err != nil {
			e.fail(fmt.Errorf("sched: %w", err))
		}
		d.setUsed(now, pl.Requirement()-before)
	} else {
		d.setUsed(now, -js.est.PeakBytes)
	}
}

// dispatch submits the next resident iteration round-robin when the
// engine is idle. A gang iteration needs every member engine idle at
// once; a gang whose partners are busy is skipped this round (its
// members' completions retry it), so single-device work keeps flowing
// around a waiting gang.
func (e *exec) dispatch(d *device, di int, now sim.Time) {
	if d.failed || d.inflight || len(d.resident) == 0 {
		return
	}
	n := len(d.resident)
	for k := 0; k < n; k++ {
		js := d.resident[(d.rr+k)%n]
		if js.marked || js.remaining <= 0 || js.running {
			continue
		}
		if len(js.gang) > 1 {
			busy := false
			for _, g := range js.gang {
				if e.devs[g].inflight {
					busy = true
					break
				}
			}
			if busy {
				continue
			}
		}
		d.rr = (d.rr + k + 1) % n
		js.running = true
		start := now
		for _, g := range js.gang {
			if e.devs[g].freeAt > start {
				start = e.devs[g].freeAt
			}
		}
		dur := e.iterDur(js)
		end := start + sim.Time(dur)
		for _, g := range js.gang {
			gd := e.devs[g]
			gd.inflight = true
			gd.freeAt = end
			gd.busy += dur
		}
		e.doneSeq++
		js.liveDone = e.doneSeq
		e.q.push(event{at: end, class: classDone, seq: e.doneSeq, job: js.seq, dev: di})
		return
	}
}

// iterDone handles one iteration-completion event; for a gang it is
// the synchronous barrier at which all member engines free together.
// A completion whose iteration was aborted by a device failure is
// stale — its sequence no longer matches liveDone (the engines were
// already rewound at the failure instant) — and is dropped.
func (e *exec) iterDone(js *jobState, di int, now sim.Time, seq int64) {
	if !js.running || seq != js.liveDone {
		return
	}
	js.liveDone = -1
	gang := js.gang
	for _, g := range gang {
		gd := e.devs[g]
		gd.inflight = false
		gd.iters++
	}
	js.running = false
	js.remaining--
	switch {
	case js.remaining == 0:
		js.finish = now
		e.finCount++
		e.sumJCT += sim.Duration(js.finish - js.Arrival)
		e.sumWait += sim.Duration(js.start - js.Arrival)
		e.vacate(js, now)
	case js.marked:
		// Preempted at the iteration boundary: keep the completed
		// iterations, release the whole gang's reservations, re-queue.
		js.marked = false
		js.preempts++
		e.vacate(js, now)
		js.device = -1
		e.pending = append(e.pending, js)
	}
	e.schedule(now)
	for _, g := range gang {
		e.dispatch(e.devs[g], g, now)
	}
}

// iterDur returns the duration of the job's next iteration: completed
// iterations index the batch schedule, cycling past its end (static
// jobs have a single entry), plus the exposed share of the gang's
// all-reduce for the current placement.
func (e *exec) iterDur(js *jobState) sim.Duration {
	done := js.Iterations - js.remaining
	base := js.iterTimes[done%len(js.iterTimes)]
	if js.gangAR > 0 {
		base += dataparallel.ExposedAllReduce(js.gangAR, base, e.overlap)
	}
	if e.crossjob {
		// A spilled tenant swaps its floor in before the iteration and
		// back out after — the AccUDNN-style price of admission beyond
		// resident capacity. A gang pays its slowest member's swap.
		var pen sim.Duration
		for _, g := range js.gang {
			if p := e.planners[g].SwapPenalty(js.demand.Job); p > pen {
				pen = p
			}
		}
		base += pen
	}
	return base
}

// clone deep-copies the execution so the copy can be drained to
// completion without disturbing the paused original. Finished and
// rejected job states are immutable — the event loop never touches
// them again — so the clone shares them and deep-copies only the
// states the drain can still mutate (pending, resident, in-flight).
func (e *exec) clone() *exec {
	c := &exec{
		cluster: e.cluster, policy: e.policy, cap: e.cap, est: e.est,
		topo: e.topo, overlap: e.overlap,
		crossjob: e.crossjob, spillCap: e.spillCap, lg: e.lg, lgDbg: e.lgDbg,
		doneSeq: e.doneSeq, now: e.now, runErr: e.runErr,
		finCount: e.finCount, rejCount: e.rejCount, sumJCT: e.sumJCT, sumWait: e.sumWait,
	}
	c.states = make([]*jobState, len(e.states))
	copy(c.states, e.states)
	// remap duplicates a live state once and rewrites the index.
	remapped := make(map[*jobState]*jobState)
	remap := func(js *jobState) *jobState {
		if dup, ok := remapped[js]; ok {
			return dup
		}
		dup := &jobState{}
		*dup = *js
		remapped[js] = dup
		c.states[js.seq] = dup
		return dup
	}
	c.devs = make([]*device, len(e.devs))
	for i, d := range e.devs {
		dd := &device{}
		*dd = *d
		dd.resident = make([]*jobState, len(d.resident))
		for k, r := range d.resident {
			dd.resident[k] = remap(r)
		}
		c.devs[i] = dd
	}
	c.pending = make([]*jobState, len(e.pending))
	for i, p := range e.pending {
		c.pending[i] = remap(p)
	}
	c.q = make(eventQueue, len(e.q))
	copy(c.q, e.q)
	for _, ev := range c.q {
		if ev.class == classDone || ev.class == classArrival {
			remap(e.states[ev.job])
		}
	}
	if err := c.rebuildPlanners(); err != nil {
		c.fail(err)
	}
	return c
}

// rebuildPlanners reconstructs every device planner from its resident
// set. Planner state is a pure function of the member demand set, so
// re-admitting the residents — in any order — reproduces the exact
// plan: this is how clone and snapshot restore avoid serializing
// planner internals, and why legacy snapshots (no planner state at
// all) restore cleanly to isolated planning.
func (e *exec) rebuildPlanners() error {
	if !e.crossjob {
		return nil
	}
	e.planners = make([]*memplan.Planner, len(e.devs))
	for di, d := range e.devs {
		pl, err := memplan.New(e.cap, e.spillCap, spillLink)
		if err != nil {
			return fmt.Errorf("sched: %w", err)
		}
		for _, r := range d.resident {
			if _, err := pl.Admit(r.demand); err != nil {
				return fmt.Errorf("sched: rebuilding gpu%d plan: %w", di, err)
			}
		}
		e.planners[di] = pl
	}
	return nil
}

// jobResult renders job i's outcome. Valid for finalized jobs at any
// time and for every job once the exec is drained.
func (e *exec) jobResult(i int) JobResult {
	js := e.states[i]
	jr := JobResult{Job: js.Job, Estimate: js.est}
	if js.rejReason != "" {
		jr.Rejected = true
		jr.Reason = js.rejReason
		jr.Device = -1
		return jr
	}
	jr.Device = js.device
	if len(js.gang) > 1 {
		jr.Gang = append([]int(nil), js.gang...)
	}
	jr.Start = js.start
	jr.Finish = js.finish
	jr.Wait = sim.Duration(js.start - js.Arrival)
	jr.JCT = sim.Duration(js.finish - js.Arrival)
	jr.Preemptions = js.preempts
	jr.Restores = js.restores
	jr.Shrinks = js.shrinks
	jr.LostIterations = js.lostIters
	return jr
}

// result assembles the full Result. The exec must be drained; the
// device integrals are closed as a side effect, so call it once, on a
// clone or at the end of a batch run.
func (e *exec) result() (*Result, error) {
	if e.runErr != nil {
		return nil, e.runErr
	}
	failedDevs := 0
	for _, d := range e.devs {
		if d.failed {
			failedDevs++
		}
	}
	for _, js := range e.states {
		if js.rejReason == "" && js.remaining > 0 {
			if failedDevs > 0 {
				return nil, fmt.Errorf("sched: job %s stranded with %d iterations left (%d of %d devices failed at end of trace)",
					js.ID, js.remaining, failedDevs, len(e.devs))
			}
			return nil, fmt.Errorf("sched: job %s stranded with %d iterations left (scheduler deadlock)", js.ID, js.remaining)
		}
	}
	res := &Result{Policy: e.policy.Name, Cluster: e.cluster}
	res.Jobs = make([]JobResult, len(e.states))
	for i := range e.states {
		res.Jobs[i] = e.jobResult(i)
	}
	end := e.now
	res.Makespan = sim.Duration(end)
	res.Devices = make([]DeviceStat, len(e.devs))
	var busySum sim.Duration
	var memSum float64
	for i, d := range e.devs {
		d.setUsed(end, 0) // close the integral
		if d.failed {
			// An outage still open at end of trace (a permanent
			// failure) is charged through the makespan.
			d.down += sim.Duration(end - d.downSince)
			d.downSince = end
		}
		st := DeviceStat{Busy: d.busy, PeakReserved: d.peak, Iterations: d.iters,
			PeakResidents: d.maxRes, SpillPeak: d.spillPeak,
			Failures: d.fails, Downtime: d.down}
		if end > 0 {
			st.BusyFrac = float64(st.Busy) / float64(end)
			st.MemUtil = d.memIntegral / (float64(e.cap) * float64(end))
		}
		res.Devices[i] = st
		busySum += st.Busy
		memSum += d.memIntegral
	}
	if end > 0 {
		res.Utilization = memSum / (float64(e.cap) * float64(len(e.devs)) * float64(end))
		res.ComputeUtilization = float64(busySum) / (float64(len(e.devs)) * float64(end))
	}
	return res, nil
}
