package sched

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// JobFromTrace converts one workload trace entry (millisecond
// arrival) into a scheduler job.
func JobFromTrace(t workload.TraceJob) Job {
	return Job{
		ID:            t.ID,
		Network:       t.Network,
		Batch:         t.Batch,
		BatchSchedule: t.BatchSchedule,
		Manager:       t.Manager,
		Priority:      t.Priority,
		Arrival:       sim.Time(t.ArrivalMS) * sim.Time(sim.Millisecond),
		Iterations:    t.Iterations,
		GPUs:          t.GPUs,
	}
}

// JobsFromTrace converts workload trace entries into scheduler jobs.
func JobsFromTrace(ts []workload.TraceJob) []Job {
	out := make([]Job, len(ts))
	for i, t := range ts {
		out[i] = JobFromTrace(t)
	}
	return out
}

// FaultsFromTrace converts workload fault events (millisecond times)
// into a cluster fault plan, preserving file order.
func FaultsFromTrace(fs []workload.TraceFault) FaultPlan {
	if len(fs) == 0 {
		return FaultPlan{}
	}
	evs := make([]FaultEvent, len(fs))
	for i, f := range fs {
		evs[i] = FaultEvent{
			At:      sim.Time(f.AtMS) * sim.Time(sim.Millisecond),
			Device:  f.Device,
			Recover: f.Recover,
		}
	}
	return FaultPlan{Events: evs}
}
