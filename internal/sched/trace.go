package sched

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// JobsFromTrace converts workload trace entries (millisecond
// arrivals) into scheduler jobs.
func JobsFromTrace(ts []workload.TraceJob) []Job {
	out := make([]Job, len(ts))
	for i, t := range ts {
		out[i] = Job{
			ID:            t.ID,
			Network:       t.Network,
			Batch:         t.Batch,
			BatchSchedule: t.BatchSchedule,
			Manager:       t.Manager,
			Priority:      t.Priority,
			Arrival:       sim.Time(t.ArrivalMS) * sim.Time(sim.Millisecond),
			Iterations:    t.Iterations,
		}
	}
	return out
}
