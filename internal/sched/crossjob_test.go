package sched

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

func coTenantCluster(crossjob bool) Cluster {
	// A deliberately modest host spill pool: enough to park a few
	// floors per device, not enough to admit the whole trace at once —
	// so pool exhaustion and the admission boundary are both exercised.
	return Cluster{Device: hw.TeslaK40c, Devices: workload.CoTenantClusterDevices,
		CrossJob: crossjob, HostSpillBytes: 8 * hw.GiB}
}

func runCoTenant(t *testing.T, p Policy, crossjob bool, est *Estimator) *Result {
	t.Helper()
	s, err := NewSchedulerWithEstimator(coTenantCluster(crossjob), p, est)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(JobsFromTrace(workload.CoTenantTrace()))
	if err != nil {
		t.Fatalf("%s crossjob=%v: %v", p.Name, crossjob, err)
	}
	return res
}

// TestCrossJobAdmitsMoreCoResidents is the PR's acceptance criterion:
// on the co-tenant trace, interference-aware admission packs strictly
// more jobs per device than worst-case-in-isolation admission, with
// zero OOMs (any reservation overflow fails the run — the never-OOM
// guarantee is asserted inside admit) and strictly less queueing.
func TestCrossJobAdmitsMoreCoResidents(t *testing.T) {
	est := NewEstimator()
	for _, p := range []Policy{FIFO, Packing} {
		t.Run(p.Name, func(t *testing.T) {
			iso := runCoTenant(t, p, false, est)
			cj := runCoTenant(t, p, true, est)

			// Up-front admission control is identical: the same jobs are
			// rejected (worst-case shape vs an idle device) either way.
			for i := range iso.Jobs {
				if iso.Jobs[i].Rejected != cj.Jobs[i].Rejected {
					t.Fatalf("job %s rejection differs: isolated %v, crossjob %v",
						iso.Jobs[i].ID, iso.Jobs[i].Rejected, cj.Jobs[i].Rejected)
				}
			}
			isoRes, cjRes := 0, 0
			for di := range iso.Devices {
				isoRes += iso.Devices[di].PeakResidents
				cjRes += cj.Devices[di].PeakResidents
				if iso.Devices[di].SpillPeak != 0 {
					t.Fatalf("isolated run spilled %d bytes", iso.Devices[di].SpillPeak)
				}
				if cj.Devices[di].SpillPeak > cj.Cluster.HostSpillBytes {
					t.Fatalf("device %d spill peak %d exceeds pool %d",
						di, cj.Devices[di].SpillPeak, cj.Cluster.HostSpillBytes)
				}
			}
			if cjRes <= isoRes {
				t.Fatalf("cross-job planning admitted %d peak co-residents, isolated %d — want strictly more", cjRes, isoRes)
			}
			if cj.MeanWait() >= iso.MeanWait() {
				t.Fatalf("cross-job mean wait %v not below isolated %v", cj.MeanWait(), iso.MeanWait())
			}
			t.Logf("%s: peak co-residents %d -> %d, mean wait %v -> %v, makespan %v -> %v",
				p.Name, isoRes, cjRes, iso.MeanWait(), cj.MeanWait(), iso.Makespan, cj.Makespan)
		})
	}
}

// TestCrossJobReplayIsByteIdentical: the planner is deterministic, so
// two replays of the co-tenant trace — and their rendered forms — must
// match exactly at any co-tenancy level.
func TestCrossJobReplayIsByteIdentical(t *testing.T) {
	est := NewEstimator()
	a := runCoTenant(t, Packing, true, est)
	b := runCoTenant(t, Packing, true, est)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two cross-job replays diverge")
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("rendered cross-job replays diverge")
	}
}

// TestCrossJobSnapshotRoundTrip pauses a cross-job replay mid-flight —
// with co-residents and spilled floors on the devices — snapshots,
// restores, and demands the resumed result match the batch run exactly.
// The snapshot never carries planner internals; restore re-admits the
// residents and planner purity reproduces the plan.
func TestCrossJobSnapshotRoundTrip(t *testing.T) {
	c := coTenantCluster(true)
	jobs := JobsFromTrace(workload.CoTenantTrace())
	// Incremental appends must not move behind the watermark, so the
	// stream is replayed in arrival order (the batch baseline uses the
	// same order — input order is the determinism tie-break).
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	est := NewEstimator()
	s, err := NewSchedulerWithEstimator(c, Packing, est)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range []int{1, 8, 17, 33, len(jobs) - 1} {
		inc, err := NewIncremental(c, Packing, est)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs[:split] {
			if _, err := inc.Append(j); err != nil {
				t.Fatal(err)
			}
		}
		inc.AdvanceTo(jobs[split].Arrival)
		snap := EncodeSnapshot(inc)
		if !bytes.Contains(snap, []byte("\nplan ")) {
			t.Fatalf("split %d: cross-job snapshot carries no plan record", split)
		}
		restored, err := RestoreIncremental(snap, est)
		if err != nil {
			t.Fatalf("split %d: restore: %v", split, err)
		}
		if again := EncodeSnapshot(restored); !bytes.Equal(again, snap) {
			t.Fatalf("split %d: snapshot not stable across restore", split)
		}
		for _, j := range jobs[split:] {
			if _, err := restored.Append(j); err != nil {
				t.Fatal(err)
			}
		}
		got, err := restored.Result()
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("split %d: snapshot-resumed cross-job result diverges from batch", split)
		}
	}
}

// TestLegacySnapshotRestoresIsolated: a snapshot without a plan record
// — every snapshot taken before cross-job planning existed — restores
// to the historical isolated admission, and non-cross-job snapshots
// never emit the new records.
func TestLegacySnapshotRestoresIsolated(t *testing.T) {
	inc, err := NewIncremental(testCluster(), Packing, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range testJobs()[:4] {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	inc.AdvanceTo(sim.Time(70 * sim.Millisecond))
	snap := EncodeSnapshot(inc)
	for _, record := range []string{"\nplan ", "\ndemand "} {
		if bytes.Contains(snap, []byte(record)) {
			t.Fatalf("isolated snapshot carries a %q record", strings.TrimSpace(record))
		}
	}
	restored, err := RestoreIncremental(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ex.crossjob || restored.ex.planners != nil {
		t.Fatal("isolated snapshot restored with cross-job planners")
	}
	// A demand record without a plan record is a malformed snapshot,
	// not a silent planner activation.
	bad := mutate(snap, "pending ", "demand 0 1 0 0\npending ")
	if _, err := RestoreIncremental(bad, nil); err == nil {
		t.Fatal("decoder accepted a demand record without a plan record")
	}
}

// TestCrossJobPreemptionDeterministic drives the priority policy —
// whose viability probe and victim scan route through the planner's
// hypothetical-eviction headroom — over the co-tenant trace, and
// demands the preempting replay stay byte-deterministic with
// preemptions actually occurring.
func TestCrossJobPreemptionDeterministic(t *testing.T) {
	est := NewEstimator()
	a := runCoTenant(t, Priority, true, est)
	b := runCoTenant(t, Priority, true, est)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two preempting cross-job replays diverge")
	}
	pre := 0
	for _, j := range a.Jobs {
		pre += j.Preemptions
	}
	if pre == 0 {
		t.Fatal("priority policy preempted nothing on the co-tenant trace; the planner eviction probe went unexercised")
	}
	for di := range a.Devices {
		if a.Devices[di].SpillPeak > a.Cluster.HostSpillBytes {
			t.Fatalf("device %d spill peak %d exceeds pool %d", di, a.Devices[di].SpillPeak, a.Cluster.HostSpillBytes)
		}
	}
	t.Logf("priority: %d preemptions, makespan %v, mean wait %v", pre, a.Makespan, a.MeanWait())
}

// TestCrossJobSnapshotRejectsCorruption: hand-corrupted plan/demand
// records must fail restore with an error, never restore wrong or
// panic — the same discipline FuzzRestoreIncremental enforces on the
// base format.
func TestCrossJobSnapshotRejectsCorruption(t *testing.T) {
	c := coTenantCluster(true)
	est := NewEstimator()
	inc, err := NewIncremental(c, Packing, est)
	if err != nil {
		t.Fatal(err)
	}
	jobs := JobsFromTrace(workload.CoTenantTrace())
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	for _, j := range jobs[:8] {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	inc.AdvanceTo(jobs[8].Arrival)
	snap := EncodeSnapshot(inc)
	if !bytes.Contains(snap, []byte("\ndemand ")) {
		t.Fatal("test premise: snapshot carries no demand records")
	}
	for _, tc := range []struct{ name, old, new string }{
		{"zero spill pool", "plan 8589934592", "plan 0"},
		{"negative spill pool", "plan 8589934592", "plan -1"},
		{"malformed plan record", "plan 8589934592", "plan 1 2"},
		{"non-numeric tensor key", "demand 0 ", "demand 0 x"},
		{"demand index out of range", "demand 0 ", "demand 99 "},
		{"demand fields truncated", "demand 0 ", "demand "},
	} {
		bad := mutate(snap, tc.old, tc.new)
		if bytes.Equal(bad, snap) {
			t.Fatalf("%s: mutation %q not applied", tc.name, tc.old)
		}
		if _, err := RestoreIncremental(bad, est); err == nil {
			t.Fatalf("%s: corrupted snapshot restored without error", tc.name)
		}
	}
}

// TestCrossJobIncrementalQueries covers the paused-replay query
// surface under cross-job planning: watermark/len accounting, O(1)
// finalized lookups, clone isolation, and single-job drains agreeing
// with the full result.
func TestCrossJobIncrementalQueries(t *testing.T) {
	c := coTenantCluster(true)
	est := NewEstimator()
	inc, err := NewIncremental(c, Packing, est)
	if err != nil {
		t.Fatal(err)
	}
	jobs := JobsFromTrace(workload.CoTenantTrace())
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	for _, j := range jobs {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	mark := jobs[len(jobs)-1].Arrival
	inc.AdvanceTo(mark)
	if inc.Watermark() != mark {
		t.Fatalf("watermark %v, want %v", inc.Watermark(), mark)
	}
	if inc.Len() != len(jobs) {
		t.Fatalf("len %d, want %d", inc.Len(), len(jobs))
	}
	full, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	clone := inc.Clone()
	for i := range jobs {
		jr, err := inc.JobResult(i)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !reflect.DeepEqual(jr, full.Jobs[i]) {
			t.Fatalf("job %d: single-job drain %+v diverges from full result %+v", i, jr, full.Jobs[i])
		}
	}
	// Draining job results above used throwaway clones; the paused
	// clone must still produce the identical full result.
	cr, err := clone.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr, full) {
		t.Fatal("clone result diverges from original")
	}
}

// TestCrossJobLoggingObservesDecisions: the structured log mirrors the
// admission flow (and never alters it), carrying the co-tenant set and
// planner figures the serve layer's operators grep for.
func TestCrossJobLoggingObservesDecisions(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	est := NewEstimator()

	s, err := NewSchedulerWithEstimator(coTenantCluster(true), Packing, est)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogger(lg)
	logged, err := s.Run(JobsFromTrace(workload.CoTenantTrace()))
	if err != nil {
		t.Fatal(err)
	}
	silent := runCoTenant(t, Packing, true, est)
	if !reflect.DeepEqual(logged, silent) {
		t.Fatal("logging changed the schedule")
	}
	out := buf.String()
	for _, want := range []string{"job admitted", "cotenants=", "requirement=", "job=", "device="} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out[:min(len(out), 2000)])
		}
	}

	// Incremental replays expose the same sink.
	inc, err := NewIncremental(coTenantCluster(true), Packing, est)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	inc.SetLogger(lg)
	for _, j := range JobsFromTrace(workload.CoTenantTrace())[:8] {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	inc.AdvanceTo(sim.Time(2 * sim.Second))
	if !strings.Contains(buf.String(), "job admitted") {
		t.Fatal("incremental replay logged no admissions")
	}
	if !lg.Enabled(context.Background(), slog.LevelDebug) {
		t.Fatal("test premise: debug handler disabled")
	}
}
