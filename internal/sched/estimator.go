package sched

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memmgr"
	"repro/internal/memplan"
	"repro/internal/nnet"
	"repro/internal/program"
)

// Estimator memoizes dry-run admission estimates. Every manager's
// Result is deterministic, so one dry run per distinct
// (network, batch, manager, device) shape is exact forever — but the
// memo must be owned, not process-global: a global map grows without
// bound across clusters and leaks state between tests. Each Scheduler
// owns one Estimator; construct more with NewEstimator to share a memo
// deliberately.
type Estimator struct {
	mu      sync.Mutex
	cache   map[estKey]estVal
	demands map[demandKey][]memplan.TensorDemand
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{
		cache:   make(map[estKey]estVal),
		demands: make(map[demandKey][]memplan.TensorDemand),
	}
}

// Estimate predicts a job's peak pool footprint and iteration time by
// a memoized deterministic dry run: a thousand-job trace with a
// handful of distinct job shapes pays for a handful of dry runs.
func (e *Estimator) Estimate(network string, batch int, manager string, d hw.DeviceSpec) (memmgr.Estimate, error) {
	key := estKey{network: network, batch: batch, manager: manager, device: d}
	e.mu.Lock()
	if v, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return v.est, v.err
	}
	e.mu.Unlock()

	est, err := DryRun(network, batch, manager, d)
	e.mu.Lock()
	e.cache[key] = estVal{est: est, err: err}
	e.mu.Unlock()
	return est, err
}

// demandTopK bounds the tensor-granularity demand each job submits to
// its device planner: the largest shareable shapes carry nearly all of
// the cross-job reuse, and a short list keeps replanning (a fold over
// every member's tensors) cheap at high co-tenancy.
const demandTopK = 6

// TensorDemands returns the memoized tensor-granularity demand of the
// named network at the given batch — the largest shareable (data /
// gradient / workspace) shapes of its built program, the currency jobs
// submit to the device planner under Cluster.CrossJob. Shapes depend
// only on (network, batch), never on the manager or device, so the memo
// key is deliberately smaller than the estimate's.
func (e *Estimator) TensorDemands(network string, batch int) ([]memplan.TensorDemand, error) {
	key := demandKey{network: network, batch: batch}
	e.mu.Lock()
	if tds, ok := e.demands[key]; ok {
		e.mu.Unlock()
		return tds, nil
	}
	e.mu.Unlock()

	b := nnet.ByName(network)
	if b == nil {
		return nil, fmt.Errorf("sched: unknown network %q", network)
	}
	if batch <= 0 {
		return nil, fmt.Errorf("sched: batch must be positive, got %d", batch)
	}
	tds := memmgr.TensorDemands(program.Build(b(batch)), demandTopK)
	e.mu.Lock()
	e.demands[key] = tds
	e.mu.Unlock()
	return tds, nil
}

// Len returns the number of memoized shapes (for tests and
// introspection).
func (e *Estimator) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// DryRun predicts a job's peak pool footprint and iteration time by
// running one iteration of the named network under the named memory
// manager on an otherwise-idle device. The run is deterministic, so
// the prediction is exact. DryRun itself is unmemoized; schedulers
// route through their own Estimator.
func DryRun(network string, batch int, manager string, d hw.DeviceSpec) (memmgr.Estimate, error) {
	b := nnet.ByName(network)
	if b == nil {
		return memmgr.Estimate{}, fmt.Errorf("sched: unknown network %q", network)
	}
	if batch <= 0 {
		return memmgr.Estimate{}, fmt.Errorf("sched: batch must be positive, got %d", batch)
	}
	net := b(batch)
	r, err := core.Run(net, core.Config{Manager: manager, Device: d})
	if err != nil {
		return memmgr.Estimate{}, err
	}
	est := memmgr.EstimateOf(r)
	// The gradient volume a data-parallel gang exchanges per iteration
	// is the replica's parameter bytes; recording it here keeps gang
	// admission a pure function of the memoized estimate.
	est.GradientBytes = net.ParamBytes()
	return est, nil
}

// estKey embeds the whole DeviceSpec (a comparable struct of
// scalars): every spec field feeds the cost model, so two devices
// sharing a name must not share estimates.
type estKey struct {
	network string
	batch   int
	manager string
	device  hw.DeviceSpec
}

type estVal struct {
	est memmgr.Estimate
	err error
}

// demandKey memoizes tensor demands per program shape.
type demandKey struct {
	network string
	batch   int
}

// errOOM reports whether a dry run failed for capacity reasons.
func errOOM(err error) bool { return errors.Is(err, core.ErrOutOfMemory) }
