package sched

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memmgr"
	"repro/internal/nnet"
)

// DryRun predicts a job's peak pool footprint and iteration time by
// running one iteration of the named network under the named memory
// manager on an otherwise-idle device. The run is deterministic, so
// the prediction is exact and is memoized per
// (network, batch, manager, device): a thousand-job trace with a
// handful of distinct job shapes pays for a handful of dry runs.
func DryRun(network string, batch int, manager string, d hw.DeviceSpec) (memmgr.Estimate, error) {
	key := estKey{network: network, batch: batch, manager: manager, device: d}
	estMu.Lock()
	if v, ok := estCache[key]; ok {
		estMu.Unlock()
		return v.est, v.err
	}
	estMu.Unlock()

	est, err := dryRun(network, batch, manager, d)
	estMu.Lock()
	estCache[key] = estVal{est: est, err: err}
	estMu.Unlock()
	return est, err
}

func dryRun(network string, batch int, manager string, d hw.DeviceSpec) (memmgr.Estimate, error) {
	b := nnet.ByName(network)
	if b == nil {
		return memmgr.Estimate{}, fmt.Errorf("sched: unknown network %q", network)
	}
	if batch <= 0 {
		return memmgr.Estimate{}, fmt.Errorf("sched: batch must be positive, got %d", batch)
	}
	r, err := core.Run(b(batch), core.Config{Manager: manager, Device: d})
	if err != nil {
		return memmgr.Estimate{}, err
	}
	return memmgr.EstimateOf(r), nil
}

// estKey embeds the whole DeviceSpec (a comparable struct of
// scalars): every spec field feeds the cost model, so two devices
// sharing a name must not share estimates.
type estKey struct {
	network string
	batch   int
	manager string
	device  hw.DeviceSpec
}

type estVal struct {
	est memmgr.Estimate
	err error
}

var (
	estMu    sync.Mutex
	estCache = map[estKey]estVal{}
)

// errOOM reports whether a dry run failed for capacity reasons.
func errOOM(err error) bool { return errors.Is(err, core.ErrOutOfMemory) }
