package sched

import (
	"sort"

	"repro/internal/memmgr"
	"repro/internal/sim"
)

// Queued is the scheduler-visible view of a pending job, handed to a
// policy's queue order.
type Queued struct {
	Job
	// Index is the job's position in the input trace — the
	// deterministic tie-breaker of last resort.
	Index int
	// Estimate is the admission prediction.
	Estimate memmgr.Estimate
	// Preemptions counts evictions suffered so far.
	Preemptions int
}

// Policy is a declarative scheduling policy: how the pending queue is
// ordered, whether jobs behind a blocked head may be admitted
// (backfill), how a device is chosen among those with room, and
// whether a blocked head may evict lower-priority residents.
type Policy struct {
	Name string
	// Less orders the pending queue (ties fall back to trace order).
	Less func(a, b Queued) bool
	// Backfill admits jobs past a blocked queue head.
	Backfill bool
	// BestFit places on the device with the least leftover memory;
	// otherwise the first device with room wins.
	BestFit bool
	// Preemptive lets a blocked head evict strictly lower-priority
	// residents at their next iteration boundary.
	Preemptive bool
}

func byArrival(a, b Queued) bool { return a.Arrival < b.Arrival }

func byPriority(a, b Queued) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Arrival < b.Arrival
}

// The built-in policies compared in the evaluation.
var (
	// FIFO admits strictly in arrival order onto the first device
	// with room: a blocked head blocks everything behind it.
	FIFO = Policy{Name: "fifo", Less: byArrival}

	// Priority admits in priority order and preempts: a blocked
	// high-priority head evicts the lowest-priority residents (at
	// their iteration boundary) until it fits.
	Priority = Policy{Name: "priority", Less: byPriority, Preemptive: true}

	// Packing is memory-aware: arrival order, but any pending job
	// that fits is admitted (backfill past a blocked head) onto the
	// device where it packs tightest.
	Packing = Policy{Name: "packing", Less: byArrival, Backfill: true, BestFit: true}
)

// Policies lists the built-in policies in comparison order.
func Policies() []Policy { return []Policy{FIFO, Priority, Packing} }

// PolicyByName resolves a built-in policy.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range Policies() {
		if p.Name == name {
			return p, true
		}
	}
	return Policy{}, false
}

func (p Policy) queued(js *jobState) Queued {
	return Queued{Job: js.Job, Index: js.seq, Estimate: js.est, Preemptions: js.preempts}
}

// less wraps the policy order with the trace-order tie-break so every
// sort is total and deterministic.
func (p Policy) less(a, b *jobState) bool {
	qa, qb := p.queued(a), p.queued(b)
	if p.Less(qa, qb) {
		return true
	}
	if p.Less(qb, qa) {
		return false
	}
	return a.seq < b.seq
}

// pickDevice returns the device to admit the job to, or -1.
func (p Policy) pickDevice(js *jobState, devs []*device, cap int64) int {
	need := js.est.PeakBytes
	best, bestLeft := -1, int64(0)
	for di, d := range devs {
		free := cap - d.used
		if free < need {
			continue
		}
		if !p.BestFit {
			return di
		}
		if left := free - need; best == -1 || left < bestLeft {
			best, bestLeft = di, left
		}
	}
	return best
}

// schedule is the admission pass: order the queue, admit what fits
// (honoring backfill), and let a preemptive policy evict for a
// blocked head. Invoked at every arrival and iteration boundary.
func (p Policy) schedule(pending *[]*jobState, devs []*device, cap int64, now sim.Time,
	admit func(*jobState, int, sim.Time), vacate func(*jobState, sim.Time)) {
	for {
		q := *pending
		sort.SliceStable(q, func(i, j int) bool { return p.less(q[i], q[j]) })
		i := 0
		for i < len(q) {
			js := q[i]
			di := p.pickDevice(js, devs, cap)
			if di >= 0 {
				q = append(q[:i], q[i+1:]...)
				admit(js, di, now)
				continue
			}
			if !p.Backfill {
				break
			}
			i++
		}
		*pending = q
		if !p.Preemptive || len(q) == 0 {
			return
		}
		if !p.preempt(q[0], pending, devs, cap, now, vacate) {
			return
		}
	}
}

// preempt tries to make room for the blocked head by evicting
// strictly lower-priority residents: on the first device where the
// head would fit after evictions, victims are chosen lowest priority
// first (latest arrival first within a priority). Running victims
// vacate at their iteration boundary; idle ones immediately. It
// reports whether any reservation was released right now (in which
// case the caller re-runs the admission pass).
func (p Policy) preempt(head *jobState, pending *[]*jobState, devs []*device, cap int64,
	now sim.Time, vacate func(*jobState, sim.Time)) bool {
	need := head.est.PeakBytes
	for _, d := range devs {
		var cands []*jobState
		for _, r := range d.resident {
			if r.Priority < head.Priority {
				cands = append(cands, r)
			}
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].Priority != cands[j].Priority {
				return cands[i].Priority < cands[j].Priority
			}
			return cands[i].seq > cands[j].seq
		})
		free := cap - d.used
		total := free
		for _, v := range cands {
			total += v.est.PeakBytes
		}
		if total < need {
			continue
		}
		freedNow := false
		for _, v := range cands {
			if free >= need {
				break
			}
			free += v.est.PeakBytes
			if v.marked {
				continue // already vacating
			}
			if v.running {
				v.marked = true
				continue
			}
			// Idle victim: vacate and re-queue immediately.
			v.preempts++
			vacate(v, now)
			v.device = -1
			*pending = append(*pending, v)
			freedNow = true
		}
		return freedNow
	}
	return false
}
