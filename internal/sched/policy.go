package sched

import (
	"sort"

	"repro/internal/memmgr"
	"repro/internal/sim"
)

// Queued is the scheduler-visible view of a pending job, handed to a
// policy's queue order.
type Queued struct {
	Job
	// Index is the job's position in the input trace — the
	// deterministic tie-breaker of last resort.
	Index int
	// Estimate is the admission prediction.
	Estimate memmgr.Estimate
	// Preemptions counts evictions suffered so far.
	Preemptions int
}

// Policy is a declarative scheduling policy: how the pending queue is
// ordered, whether jobs behind a blocked head may be admitted
// (backfill), how a device is chosen among those with room, and
// whether a blocked head may evict lower-priority residents.
type Policy struct {
	Name string
	// Less orders the pending queue (ties fall back to trace order).
	Less func(a, b Queued) bool
	// Backfill admits jobs past a blocked queue head.
	Backfill bool
	// BestFit places on the device with the least leftover memory;
	// otherwise the first device with room wins.
	BestFit bool
	// Preemptive lets a blocked head evict strictly lower-priority
	// residents at their next iteration boundary.
	Preemptive bool
	// TopoAware prefers gang placements whose members share an NVLink
	// island, then a node, before accepting a cross-node gang: the
	// slowest pairwise wire prices the gang's all-reduce, so locality
	// buys iteration time. Single-device jobs are unaffected.
	TopoAware bool
}

func byArrival(a, b Queued) bool { return a.Arrival < b.Arrival }

func byPriority(a, b Queued) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Arrival < b.Arrival
}

// The built-in policies compared in the evaluation.
var (
	// FIFO admits strictly in arrival order onto the first device
	// with room: a blocked head blocks everything behind it.
	FIFO = Policy{Name: "fifo", Less: byArrival}

	// Priority admits in priority order and preempts: a blocked
	// high-priority head evicts the lowest-priority residents (at
	// their iteration boundary) until it fits.
	Priority = Policy{Name: "priority", Less: byPriority, Preemptive: true}

	// Packing is memory-aware: arrival order, but any pending job
	// that fits is admitted (backfill past a blocked head) onto the
	// device where it packs tightest.
	Packing = Policy{Name: "packing", Less: byArrival, Backfill: true, BestFit: true}

	// TopoPacking is Packing plus topology awareness: a gang lands on
	// the tightest NVLink island that holds it whole, then the
	// tightest node, and only then spans nodes — trading placement
	// flexibility for the fast tier's all-reduce.
	TopoPacking = Policy{Name: "topo", Less: byArrival, Backfill: true, BestFit: true, TopoAware: true}
)

// Policies lists the built-in policies in comparison order.
func Policies() []Policy { return []Policy{FIFO, Priority, Packing, TopoPacking} }

// PolicyByName resolves a built-in policy.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range Policies() {
		if p.Name == name {
			return p, true
		}
	}
	return Policy{}, false
}

func (p Policy) queued(js *jobState) Queued {
	return Queued{Job: js.Job, Index: js.seq, Estimate: js.est, Preemptions: js.preempts}
}

// less wraps the policy order with the trace-order tie-break so every
// sort is total and deterministic.
func (p Policy) less(a, b *jobState) bool {
	qa, qb := p.queued(a), p.queued(b)
	if p.Less(qa, qb) {
		return true
	}
	if p.Less(qb, qa) {
		return false
	}
	return a.seq < b.seq
}

// pickDevice returns the device to admit the job to, or -1. All fit
// and leftover questions route through the exec's headroom context —
// isolated arithmetic or the CrossJob device planner, transparently.
func (p Policy) pickDevice(js *jobState, e *exec) int {
	best, bestLeft := -1, int64(0)
	for di := range e.devs {
		left, ok := e.headroom(js, di)
		if !ok {
			continue
		}
		if !p.BestFit {
			return di
		}
		if best == -1 || left < bestLeft {
			best, bestLeft = di, left
		}
	}
	return best
}

// pickGang returns the devices (ascending) to admit the job's gang
// to, or nil when no placement fits right now. A single-device job
// reduces exactly to pickDevice; a gang needs GPUs distinct devices
// that each fit the per-device demand — the all-or-nothing rule.
func (p Policy) pickGang(js *jobState, e *exec) []int {
	if js.GPUs <= 1 {
		if di := p.pickDevice(js, e); di >= 0 {
			return []int{di}
		}
		return nil
	}
	var cands []int
	for di := range e.devs {
		if _, ok := e.headroom(js, di); ok {
			cands = append(cands, di)
		}
	}
	if len(cands) < js.GPUs {
		return nil
	}
	if p.TopoAware {
		if e.topo.NVLinkIsland > 0 {
			if g := p.pickGrouped(cands, js, e, e.topo.Island); g != nil {
				return g
			}
		}
		if g := p.pickGrouped(cands, js, e, e.topo.Node); g != nil {
			return g
		}
	}
	if !p.BestFit {
		return append([]int(nil), cands[:js.GPUs]...) // first fit
	}
	return bestFitGang(cands, js, e)
}

// pickGrouped tries to place the whole gang inside one locality group
// (an NVLink island or a node, named by key). Among groups with room
// for the full gang, the one with the fewest candidate devices wins —
// the tightest group, keeping larger contiguous blocks free for wider
// gangs — with the lower group key breaking ties. Returns nil when no
// single group holds the gang.
func (p Policy) pickGrouped(cands []int, js *jobState, e *exec, key func(int) int) []int {
	n := js.GPUs
	type group struct {
		key     int
		members []int
	}
	var groups []group
	at := make(map[int]int, 8)
	for _, di := range cands {
		k := key(di)
		g, ok := at[k]
		if !ok {
			g = len(groups)
			at[k] = g
			groups = append(groups, group{key: k})
		}
		groups[g].members = append(groups[g].members, di)
	}
	best := -1
	for g := range groups {
		if len(groups[g].members) < n {
			continue
		}
		if best == -1 || len(groups[g].members) < len(groups[best].members) ||
			(len(groups[g].members) == len(groups[best].members) && groups[g].key < groups[best].key) {
			best = g
		}
	}
	if best == -1 {
		return nil
	}
	m := groups[best].members
	if !p.BestFit {
		return append([]int(nil), m[:n]...)
	}
	return bestFitGang(m, js, e)
}

// bestFitGang picks the GPUs candidates with the least leftover memory
// (ties to the lower device index) and returns them ascending. Every
// candidate already passed the headroom probe, so the leftover lookup
// cannot miss.
func bestFitGang(cands []int, js *jobState, e *exec) []int {
	left := make(map[int]int64, len(cands))
	for _, di := range cands {
		l, _ := e.headroom(js, di)
		left[di] = l
	}
	picked := append([]int(nil), cands...)
	sort.SliceStable(picked, func(i, j int) bool {
		if left[picked[i]] != left[picked[j]] {
			return left[picked[i]] < left[picked[j]]
		}
		return picked[i] < picked[j]
	})
	picked = picked[:js.GPUs]
	sort.Ints(picked)
	return picked
}

// schedule is the admission pass: order the queue, admit what fits
// (honoring backfill), and let a preemptive policy evict for a
// blocked head. Invoked at every arrival and iteration boundary.
func (p Policy) schedule(e *exec, now sim.Time) {
	for {
		q := e.pending
		sort.SliceStable(q, func(i, j int) bool { return p.less(q[i], q[j]) })
		i := 0
		for i < len(q) {
			js := q[i]
			gang := p.pickGang(js, e)
			if gang != nil {
				q = append(q[:i], q[i+1:]...)
				e.pending = q
				e.admit(js, gang, now)
				q = e.pending
				continue
			}
			if !p.Backfill {
				break
			}
			i++
		}
		e.pending = q
		if !p.Preemptive || len(q) == 0 {
			return
		}
		if !p.preempt(q[0], e, now) {
			return
		}
	}
}

// preempt tries to make room for the blocked head by evicting
// strictly lower-priority residents. It first finds, in index order,
// as many devices as the head's gang needs where the head would fit
// after evictions (topology preference does not apply under memory
// pressure — getting placed beats getting placed well); only when
// enough exist does it evict, so victims are never spent on a gang
// that cannot be placed anyway. Per device, victims are chosen lowest
// priority first (latest trace order first within a priority). A
// running victim vacates its whole gang at its next iteration
// boundary; an idle one immediately — and because a gang victim
// vacates every device it occupies at once, it disappears from later
// devices' resident lists before they are examined, so it is never
// evicted twice. Reports whether any reservation was released right
// now (in which case the caller re-runs the admission pass).
func (p Policy) preempt(head *jobState, e *exec, now sim.Time) bool {
	want := head.GPUs
	if want < 1 {
		want = 1
	}
	lower := func(r *jobState) bool { return r.Priority < head.Priority }
	var viable []int
	for di := range e.devs {
		if _, ok := e.headroomWithout(head, di, lower); ok {
			viable = append(viable, di)
			if len(viable) == want {
				break
			}
		}
	}
	if len(viable) < want {
		return false
	}
	freedNow := false
	for _, di := range viable {
		d := e.devs[di]
		var cands []*jobState
		for _, r := range d.resident {
			if lower(r) {
				cands = append(cands, r)
			}
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].Priority != cands[j].Priority {
				return cands[i].Priority < cands[j].Priority
			}
			return cands[i].seq > cands[j].seq
		})
		// counted marks victims whose reservation is already treated as
		// released for this device's fit question — either marked for
		// vacate at their iteration boundary or vacated right here. The
		// head fits once headroomWithout(counted) succeeds.
		counted := make(map[*jobState]bool, len(cands))
		for _, v := range cands {
			if _, ok := e.headroomWithout(head, di, func(r *jobState) bool { return counted[r] }); ok {
				break
			}
			counted[v] = true
			if v.marked {
				continue // already vacating
			}
			if v.running {
				v.marked = true
				if e.lgDbg {
					e.lg.Debug("preemption marked", "head", head.ID, "victim", v.ID,
						"device", di, "t", int64(now), "victim_priority", v.Priority,
						"head_priority", head.Priority)
				}
				continue
			}
			// Idle victim: vacate (the whole gang) and re-queue.
			v.preempts++
			e.vacate(v, now)
			v.device = -1
			e.pending = append(e.pending, v)
			freedNow = true
			e.lg.Info("job preempted", "head", head.ID, "victim", v.ID, "device", di,
				"gang", v.gang, "t", int64(now), "victim_priority", v.Priority,
				"head_priority", head.Priority, "cotenants", coResidents(d))
		}
	}
	return freedNow
}
