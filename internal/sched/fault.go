package sched

import (
	"fmt"
	"sort"

	"repro/internal/dataparallel"
	"repro/internal/sim"
)

// The deterministic fault layer: a cluster may carry a FaultPlan of
// scripted device failures and recoveries. Fault events travel through
// the same (time, class, sequence) event queue as arrivals and
// iteration completions, so a faulted replay is exactly as
// deterministic — and as resumable — as a fault-free one: two runs of
// the same trace with the same plan produce byte-identical results,
// and a snapshot taken mid-outage restores and drains to the same
// bytes as the uninterrupted run.
//
// Failure semantics are checkpoint/restore at iteration boundaries.
// Every completed iteration is an implicit checkpoint (the job's live
// state — iteration index, batch-schedule position, accumulated
// counters — is exactly what the scheduler already tracks and
// snapshots); when a device fails, each resident job aborts its
// in-flight iteration (the partial work is lost and counted) and
// resumes from that checkpoint. A multi-device gang first attempts an
// elastic shrink to its surviving members — re-pricing its all-reduce
// over the surviving topology subset and re-probing the survivors'
// memplan membership — and only falls back to a full re-queue through
// admission when no member survives (or it was already marked for
// preemption). Single-device victims always re-queue. Recovery simply
// returns the device to placement; shrunk gangs do not re-grow.

// FaultEvent is one scripted change of a device's availability.
type FaultEvent struct {
	// At is the virtual instant the event takes effect. At equal
	// times, arrivals and iteration completions order before fault
	// events — a job checkpoints at an iteration boundary that
	// coincides with the failure instant.
	At sim.Time
	// Device is the target device index.
	Device int
	// Recover returns a failed device to service; false is a failure.
	// A device that fails and never recovers is permanently lost.
	Recover bool
}

// FaultPlan scripts a cluster's device failures and recoveries. The
// zero value is the historical always-healthy cluster.
type FaultPlan struct {
	Events []FaultEvent
}

// Empty reports whether the plan scripts no events.
func (p FaultPlan) Empty() bool { return len(p.Events) == 0 }

// Validate checks the plan against a cluster size: every event must
// target a valid device at a non-negative time, and each device's
// events, in time order, must alternate fail, recover, fail, … —
// a device cannot fail while down, recover while up, or do both at
// the same instant (the order would be ambiguous).
func (p FaultPlan) Validate(devices int) error {
	perDev := make(map[int][]int)
	for i, fe := range p.Events {
		if fe.Device < 0 || fe.Device >= devices {
			return fmt.Errorf("sched: fault event %d targets device %d of %d", i, fe.Device, devices)
		}
		if fe.At < 0 {
			return fmt.Errorf("sched: fault event %d at negative time %d", i, int64(fe.At))
		}
		perDev[fe.Device] = append(perDev[fe.Device], i)
	}
	devs := make([]int, 0, len(perDev))
	for d := range perDev {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	for _, d := range devs {
		idx := perDev[d]
		sort.SliceStable(idx, func(a, b int) bool { return p.Events[idx[a]].At < p.Events[idx[b]].At })
		down := false
		for k, i := range idx {
			fe := p.Events[i]
			if k > 0 && fe.At == p.Events[idx[k-1]].At {
				return fmt.Errorf("sched: device %d has two fault events at time %d", d, int64(fe.At))
			}
			if fe.Recover && !down {
				return fmt.Errorf("sched: device %d recovers at %d without a preceding failure", d, int64(fe.At))
			}
			if !fe.Recover && down {
				return fmt.Errorf("sched: device %d fails at %d while already failed", d, int64(fe.At))
			}
			down = !fe.Recover
		}
	}
	return nil
}

// postFaults seeds the event queue with the cluster's fault plan: one
// classFault event per scripted fail/recover, sequenced by plan order
// (the event's job field carries the recover flag). Snapshot restore
// must not call this — a restored queue already holds the undelivered
// fault events.
func (e *exec) postFaults() {
	for i, fe := range e.cluster.Faults.Events {
		e.q.push(event{at: fe.At, class: classFault, seq: int64(i), job: b2i(fe.Recover), dev: fe.Device})
	}
}

// failDevice delivers a failure: the device leaves placement, every
// resident job restores from its last iteration-boundary checkpoint
// (gangs shrink elastically when they can, everything else re-enters
// admission), and under CrossJob the device planner's demand set is
// re-planned as the victims release it member by member.
func (e *exec) failDevice(di int, now sim.Time) {
	d := e.devs[di]
	if d.failed {
		// Unreachable for validated plans; tolerated for hand-crafted
		// snapshots, which may queue arbitrary fault events.
		return
	}
	d.failed = true
	d.fails++
	d.downSince = now
	victims := append([]*jobState(nil), d.resident...)
	e.lg.Info("device failed", "device", di, "t", int64(now), "victims", len(victims))
	for _, js := range victims {
		e.failVictim(js, di, now)
	}
	// Re-admit what the failure displaced, then sweep every engine:
	// aborted iterations freed surviving devices whose other residents
	// (or shrunk gangs) can start immediately.
	e.schedule(now)
	for gi, gd := range e.devs {
		e.dispatch(gd, gi, now)
	}
}

// failVictim restores one resident of a failing device from its last
// iteration-boundary checkpoint: the in-flight iteration (if any) is
// aborted and charged as lost, then the job either shrinks its gang
// onto the surviving members or re-enters admission with its
// completed iterations, schedule position and counters intact.
func (e *exec) failVictim(js *jobState, di int, now sim.Time) {
	if js.running {
		// Abort the in-flight iteration: rewind every member engine to
		// the failure instant (the dispatch charged it through the
		// iteration's end) and invalidate the queued completion — its
		// sequence no longer matches liveDone, so it is ignored when it
		// fires.
		for _, g := range js.gang {
			gd := e.devs[g]
			gd.inflight = false
			gd.busy -= sim.Duration(gd.freeAt - now)
			gd.freeAt = now
		}
		js.running = false
		js.liveDone = -1
		js.lostIters++
	}
	js.restores++
	survivors := withoutDev(js.gang, di)
	if len(js.gang) > 1 && len(survivors) > 0 && !js.marked && e.canShrink(js, survivors) {
		e.shrinkGang(js, di, survivors, now)
		return
	}
	// Full re-queue: release every member still held and re-enter
	// admission. A victim already marked for preemption takes this
	// path too — the failure evicts it before the boundary did.
	js.marked = false
	e.vacate(js, now)
	js.device = -1
	e.pending = append(e.pending, js)
	e.lg.Info("job requeued after device failure", "job", js.ID, "device", di,
		"t", int64(now), "completed", js.Iterations-js.remaining, "remaining", js.remaining)
}

// canShrink re-probes the surviving members before committing to the
// smaller gang. The survivors' reservations are already held, so
// isolated admission always passes; under CrossJob each survivor's
// planner must still carry the member (the memplan membership probe),
// keeping the shrink rule honest as planners evolve.
func (e *exec) canShrink(js *jobState, survivors []int) bool {
	if !e.crossjob {
		return true
	}
	for _, g := range survivors {
		if !e.planners[g].Member(js.demand.Job) {
			return false
		}
	}
	return true
}

// shrinkGang is the elastic path: the gang keeps its reservations on
// the surviving members, drops only the failed one, and re-prices its
// collective over the surviving topology subset — the same pricing
// rule admission used, applied to the smaller gang. A one-survivor
// gang becomes a plain single-device job (no collective at all).
func (e *exec) shrinkGang(js *jobState, failed int, survivors []int, now sim.Time) {
	e.vacateOne(js, failed, now)
	js.gang = survivors
	js.device = survivors[0]
	js.gangAR = dataparallel.PriceGang(e.topo, survivors, js.est.GradientBytes, dataparallel.DefaultBuckets)
	js.shrinks++
	e.lg.Info("gang shrunk", "job", js.ID, "failed_device", failed, "gang", survivors,
		"t", int64(now), "all_reduce", int64(js.gangAR))
}

// recoverDevice returns a failed device to service: it re-enters
// placement immediately (the admission pass runs at the recovery
// instant) and its downtime is charged to the device stats. Shrunk
// gangs do not re-grow onto it — elastic re-expansion is a documented
// non-goal (DESIGN.md §10).
func (e *exec) recoverDevice(di int, now sim.Time) {
	d := e.devs[di]
	if !d.failed {
		return // hand-crafted snapshots only; validated plans alternate
	}
	d.failed = false
	d.down += sim.Duration(now - d.downSince)
	d.downSince = 0
	e.lg.Info("device recovered", "device", di, "t", int64(now), "down", int64(d.down))
	e.schedule(now)
}

// withoutDev returns gang minus device di, preserving order.
func withoutDev(gang []int, di int) []int {
	out := make([]int, 0, len(gang))
	for _, g := range gang {
		if g != di {
			out = append(out, g)
		}
	}
	return out
}
