package sched

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// testJobs is a stream exercising every job fate: admitted, backfilled,
// preempted, dynamic-shape, type-2 rejected (fits nowhere).
func testJobs() []Job {
	ms := func(v int64) sim.Time { return sim.Time(v) * sim.Time(sim.Millisecond) }
	return []Job{
		{ID: "big-a", Network: "ResNet50", Batch: 32, Manager: "naive", Priority: 2, Arrival: ms(0), Iterations: 6},
		{ID: "big-b", Network: "VGG16", Batch: 32, Manager: "caffe", Priority: 2, Arrival: ms(0), Iterations: 3},
		{ID: "hot", Network: "AlexNet", Batch: 512, Manager: "naive", Priority: 9, Arrival: ms(40), Iterations: 4},
		{ID: "dyn", Network: "AlexNet", Batch: 512, BatchSchedule: []int{128, 512, 128}, Manager: "superneurons", Priority: 3, Arrival: ms(60), Iterations: 3},
		{ID: "small", Network: "AlexNet", Batch: 128, Manager: "naive", Priority: 1, Arrival: ms(80), Iterations: 5},
		{ID: "huge", Network: "AlexNet", Batch: 1024, Manager: "naive", Priority: 4, Arrival: ms(100), Iterations: 1},
		{ID: "late", Network: "AlexNet", Batch: 64, Manager: "naive", Priority: 5, Arrival: ms(900), Iterations: 4},
	}
}

// TestIncrementalMatchesBatch replays the stream through an
// Incremental with every split point and watermark choice and demands
// the exact batch-run Result each time: the core determinism claim
// behind log compaction.
func TestIncrementalMatchesBatch(t *testing.T) {
	jobs := testJobs()
	c := testCluster()
	est := NewEstimator()
	for _, p := range Policies() {
		s, err := NewSchedulerWithEstimator(c, p, est)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		for split := 0; split <= len(jobs); split++ {
			inc, err := NewIncremental(c, p, est)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobs[:split] {
				if _, err := inc.Append(j); err != nil {
					t.Fatalf("%s split %d: %v", p.Name, split, err)
				}
			}
			// Advance as far as the suffix allows: to the next
			// arrival, exclusive.
			if split < len(jobs) {
				inc.AdvanceTo(jobs[split].Arrival)
			} else {
				inc.AdvanceTo(1 << 50)
			}
			for _, j := range jobs[split:] {
				if _, err := inc.Append(j); err != nil {
					t.Fatalf("%s split %d: %v", p.Name, split, err)
				}
			}
			got, err := inc.Result()
			if err != nil {
				t.Fatalf("%s split %d: %v", p.Name, split, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s split %d: incremental result diverges from batch:\ngot  %+v\nwant %+v", p.Name, split, got, want)
			}
		}
	}
}

// TestIncrementalResultLeavesReplayPaused checks Result() works on a
// clone: calling it twice, interleaved with appends, never corrupts
// the paused state.
func TestIncrementalResultLeavesReplayPaused(t *testing.T) {
	jobs := testJobs()
	c := testCluster()
	inc, err := NewIncremental(c, Packing, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs[:4] {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	inc.AdvanceTo(jobs[4].Arrival)
	r1, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("repeated Result() diverged:\n%+v\n%+v", r1, r2)
	}
	for _, j := range jobs[4:] {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := NewScheduler(c, Packing)
	want, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result after intermediate Result() calls diverged from batch")
	}
}

// TestIncrementalFinalized checks the O(1) status fast path: finalized
// verdicts match the full result and never flip.
func TestIncrementalFinalized(t *testing.T) {
	jobs := testJobs()
	c := testCluster()
	inc, err := NewIncremental(c, FIFO, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := inc.Finalized(0); ok {
		t.Fatal("job finalized before any advance")
	}
	// "huge" is rejected up front: finalized immediately.
	if jr, ok := inc.Finalized(5); !ok || !jr.Rejected {
		t.Fatalf("rejected job not finalized immediately: %+v ok=%v", jr, ok)
	}
	want, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	inc.AdvanceTo(1 << 50)
	for i := range jobs {
		jr, ok := inc.Finalized(i)
		if !ok {
			t.Fatalf("job %d not finalized after full drain", i)
		}
		if !reflect.DeepEqual(jr, want.Jobs[i]) {
			t.Fatalf("job %d finalized status diverges:\ngot  %+v\nwant %+v", i, jr, want.Jobs[i])
		}
	}
	if inc.Finished()+inc.Rejected() != len(jobs) {
		t.Fatalf("aggregate counts %d+%d do not cover %d jobs", inc.Finished(), inc.Rejected(), len(jobs))
	}
}

// TestAppendBeforeWatermarkRejected: virtual time only moves forward.
func TestAppendBeforeWatermarkRejected(t *testing.T) {
	inc, err := NewIncremental(testCluster(), FIFO, nil)
	if err != nil {
		t.Fatal(err)
	}
	inc.AdvanceTo(sim.Time(100 * sim.Millisecond))
	if _, err := inc.Append(Job{ID: "past", Network: "AlexNet", Batch: 64, Arrival: sim.Time(50 * sim.Millisecond), Iterations: 1}); err == nil {
		t.Fatal("append below the watermark succeeded")
	}
}

// TestSnapshotRoundTrip pauses mid-stream, snapshots, restores, and
// demands the restored replay finish byte-identically to both the
// original and a batch run — including the snapshot bytes themselves
// being stable across encode/restore/encode.
func TestSnapshotRoundTrip(t *testing.T) {
	jobs := testJobs()
	c := testCluster()
	for _, p := range Policies() {
		t.Run(p.Name, func(t *testing.T) {
			s, err := NewScheduler(c, p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			for split := 1; split < len(jobs); split++ {
				inc, err := NewIncremental(c, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, j := range jobs[:split] {
					if _, err := inc.Append(j); err != nil {
						t.Fatal(err)
					}
				}
				inc.AdvanceTo(jobs[split].Arrival)
				snap := EncodeSnapshot(inc)
				restored, err := RestoreIncremental(snap, nil)
				if err != nil {
					t.Fatalf("split %d: restore: %v", split, err)
				}
				if again := EncodeSnapshot(restored); string(again) != string(snap) {
					t.Fatalf("split %d: snapshot not stable across restore:\n--- first\n%s\n--- second\n%s", split, snap, again)
				}
				for _, j := range jobs[split:] {
					if _, err := restored.Append(j); err != nil {
						t.Fatal(err)
					}
				}
				got, err := restored.Result()
				if err != nil {
					t.Fatalf("split %d: %v", split, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("split %d: snapshot-resumed result diverges from batch:\ngot  %+v\nwant %+v", split, got, want)
				}
				if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
					t.Fatalf("split %d: rendered results differ", split)
				}
			}
		})
	}
}

// TestSnapshotDecodeErrors feeds the decoder malformed snapshots; each
// must error cleanly.
func TestSnapshotDecodeErrors(t *testing.T) {
	inc, err := NewIncremental(testCluster(), Packing, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range testJobs()[:3] {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	inc.AdvanceTo(sim.Time(50 * sim.Millisecond))
	good := EncodeSnapshot(inc)

	cases := map[string][]byte{
		"empty":        nil,
		"bad magic":    []byte("snsnap 99\n"),
		"truncated":    good[:len(good)/2],
		"no end":       good[:len(good)-len("end\n")],
		"binary junk":  {0xff, 0xfe, 0x00, 0x01},
		"huge count":   []byte(snapMagic + "\npolicy fifo\ndevice d 1 1 0x0 0x0 0 0 0 0 0x3ff0000000000000 0x3ff0000000000000\ndevices 999999999\n"),
		"bad float":    []byte(snapMagic + "\npolicy fifo\ndevice d 1 1 zz 0x0 0 0 0 0 0x0 0x0\n"),
		"unknown pol":  []byte(snapMagic + "\npolicy lottery\n"),
		"neg devices":  []byte(snapMagic + "\npolicy fifo\ndevice d 1 1 0x0 0x0 0 0 0 0 0x0 0x0\ndevices -4\n"),
		"resident mix": mutate(good, "dev 0 ", "dev 1 "),
	}
	for name, data := range cases {
		if _, err := RestoreIncremental(data, nil); err == nil {
			t.Errorf("%s: decoder accepted malformed snapshot", name)
		}
	}
}

// mutate replaces the first occurrence of old with new in a copy.
func mutate(b []byte, old, new string) []byte {
	s := string(b)
	i := len(s)
	for j := 0; j+len(old) <= len(s); j++ {
		if s[j:j+len(old)] == old {
			i = j
			break
		}
	}
	if i == len(s) {
		return b
	}
	return []byte(s[:i] + new + s[i+len(old):])
}

// FuzzRestoreIncremental asserts the snapshot decoder never panics,
// and that anything it accepts re-encodes stably and can be drained
// without panicking — the framing half of the fuzz satellite.
func FuzzRestoreIncremental(f *testing.F) {
	inc, err := NewIncremental(testCluster(), Packing, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, j := range testJobs() {
		if _, err := inc.Append(j); err != nil {
			f.Fatal(err)
		}
	}
	inc.AdvanceTo(sim.Time(70 * sim.Millisecond))
	f.Add(EncodeSnapshot(inc))
	// A mid-outage seed: a failed device, a shrunk gang and a queued
	// recovery event exercise the fault extensions of the format.
	fcl, fjobs := faultCluster(f)
	finc, err := NewIncremental(fcl, TopoPacking, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, j := range fjobs {
		if _, err := finc.Append(j); err != nil {
			f.Fatal(err)
		}
	}
	finc.AdvanceTo(sim.Time(2500 * sim.Millisecond))
	f.Add(EncodeSnapshot(finc))
	f.Add([]byte(snapMagic + "\npolicy fifo\n"))
	f.Add([]byte("snsnap 1\npolicy packing\ndevice d 1 1 0x0 0x0 0 0 0 0 0x3ff0000000000000 0x3ff0000000000000\ndevices 1\nclock 0 0 0\nagg 0 0 0 0\njobs 0\ndev 0 0 0 0 0 0 0 0 0x0 0\npending 0\nevents 0\nend\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := RestoreIncremental(data, nil)
		if err != nil {
			return
		}
		// Accepted snapshots must re-encode stably and drain cleanly
		// (errors fine, panics not).
		again := EncodeSnapshot(restored)
		r2, err := RestoreIncremental(again, nil)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		r2.Result()
	})
}
