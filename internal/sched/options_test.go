package sched

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hw"
)

// TestNewClusterMatchesLiterals: the constructor path is sugar, not a
// new semantic — an option-built cluster compares equal to the
// matching struct literal, field for field.
func TestNewClusterMatchesLiterals(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{{At: ms(100), Device: 1}}}
	cases := map[string]struct {
		devices []hw.DeviceSpec
		opts    []Option
		want    Cluster
	}{
		"bare pool": {
			Uniform(hw.TeslaK40c, 4), nil,
			Cluster{Device: hw.TeslaK40c, Devices: 4},
		},
		"single device": {
			[]hw.DeviceSpec{hw.TeslaK40c}, nil,
			Cluster{Device: hw.TeslaK40c, Devices: 1},
		},
		"topology and overlap": {
			Uniform(hw.TeslaK40c, 8),
			[]Option{WithTopology(hw.DefaultTopology()), WithOverlap()},
			Cluster{Device: hw.TeslaK40c, Devices: 8, Topology: hw.DefaultTopology(), Overlap: true},
		},
		"cross-job": {
			Uniform(hw.TeslaK40c, 2),
			[]Option{WithCrossJob(8 * hw.GiB)},
			Cluster{Device: hw.TeslaK40c, Devices: 2, CrossJob: true, HostSpillBytes: 8 * hw.GiB},
		},
		"cross-job default pool": {
			Uniform(hw.TeslaK40c, 2),
			[]Option{WithCrossJob(0)},
			Cluster{Device: hw.TeslaK40c, Devices: 2, CrossJob: true},
		},
		"everything": {
			Uniform(hw.TeslaK40c, 8),
			[]Option{WithTopology(hw.DefaultTopology()), WithOverlap(),
				WithCrossJob(hw.GiB), WithFaultPlan(plan)},
			Cluster{Device: hw.TeslaK40c, Devices: 8, Topology: hw.DefaultTopology(),
				Overlap: true, CrossJob: true, HostSpillBytes: hw.GiB, Faults: plan},
		},
	}
	for name, tc := range cases {
		got, err := NewCluster(tc.devices, tc.opts...)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: NewCluster = %+v, want literal %+v", name, got, tc.want)
		}
		// The built cluster must be accepted by every constructor the
		// literal is.
		if _, err := NewScheduler(got, Packing); err != nil {
			t.Errorf("%s: NewScheduler rejected the built cluster: %v", name, err)
		}
	}
}

func TestNewClusterErrors(t *testing.T) {
	other := hw.TeslaK40c
	other.Name = "Tesla K40c (b)"
	cases := map[string]struct {
		devices []hw.DeviceSpec
		opts    []Option
		want    string
	}{
		"no devices":    {nil, nil, "at least one device"},
		"heterogeneous": {[]hw.DeviceSpec{hw.TeslaK40c, other}, nil, "heterogeneous"},
		"no memory":     {Uniform(hw.DeviceSpec{Name: "null"}, 2), nil, "no usable memory"},
		"bad fault plan": {Uniform(hw.TeslaK40c, 2),
			[]Option{WithFaultPlan(FaultPlan{Events: []FaultEvent{{At: ms(1), Device: 5}}})},
			"targets device 5"},
	}
	for name, tc := range cases {
		if _, err := NewCluster(tc.devices, tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", name, tc.want, err)
		}
	}
}

func TestUniform(t *testing.T) {
	if got := Uniform(hw.TeslaK40c, 3); len(got) != 3 || got[0] != hw.TeslaK40c || got[2] != hw.TeslaK40c {
		t.Errorf("Uniform(3) = %v", got)
	}
	if got := Uniform(hw.TeslaK40c, 0); len(got) != 0 {
		t.Errorf("Uniform(0) has %d specs", len(got))
	}
	if got := Uniform(hw.TeslaK40c, -2); len(got) != 0 {
		t.Errorf("Uniform(-2) has %d specs", len(got))
	}
}
