package sched

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

// gangCluster is the bundled gang evaluation cluster: 256 K40c devices
// in a DGX-style multi-node topology.
func gangCluster(overlap bool) Cluster {
	return Cluster{
		Device:   hw.TeslaK40c,
		Devices:  workload.GangClusterDevices,
		Topology: hw.DefaultTopology(),
		Overlap:  overlap,
	}
}

func runGangTrace(t *testing.T, c Cluster, p Policy, est *Estimator) *Result {
	t.Helper()
	s, err := NewSchedulerWithEstimator(c, p, est)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(JobsFromTrace(workload.GangTrace()))
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res
}

// Gang admission is all-or-nothing: a two-device gang on a cluster
// with only one free device waits for the second, rather than
// starting degraded or holding one device idle-but-reserved forever.
func TestGangAllOrNothing(t *testing.T) {
	// AlexNet b512 naive reserves ~62% of a K40c, so two cannot share
	// a device: while the single job holds device 0, the gang can
	// reserve device 1 only by waiting for atomically available room
	// on both.
	jobs := []Job{
		{ID: "single", Network: "AlexNet", Batch: 512, Manager: "naive", Arrival: 0, Iterations: 3},
		{ID: "gang", Network: "AlexNet", Batch: 512, Manager: "naive", GPUs: 2, Arrival: 0, Iterations: 2},
	}
	s, err := NewScheduler(Cluster{Device: hw.TeslaK40c, Devices: 2}, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	single, gang := res.Jobs[0], res.Jobs[1]
	if single.Rejected || gang.Rejected {
		t.Fatalf("unexpected rejection: %+v %+v", single, gang)
	}
	if gang.Start != single.Finish {
		t.Errorf("gang started at %d, want %d (when the single job vacated)", int64(gang.Start), int64(single.Finish))
	}
	if want := []int{0, 1}; !reflect.DeepEqual(gang.Gang, want) {
		t.Errorf("gang placed on %v, want %v", gang.Gang, want)
	}
	if gang.Device != 0 {
		t.Errorf("gang Device = %d, want its first member 0", gang.Device)
	}
	if single.Gang != nil {
		t.Errorf("single-device job reports gang %v, want nil", single.Gang)
	}
}

// A gang wider than the whole cluster is rejected up front, like a
// single job that cannot fit an idle device.
func TestGangWiderThanClusterRejected(t *testing.T) {
	s, err := NewScheduler(Cluster{Device: hw.TeslaK40c, Devices: 2}, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run([]Job{
		{ID: "wide", Network: "AlexNet", Batch: 64, Manager: "naive", GPUs: 3, Iterations: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if !j.Rejected {
		t.Fatal("3-device gang on a 2-device cluster was not rejected")
	}
	if !strings.Contains(j.Reason, "gang needs 3 devices") {
		t.Errorf("rejection reason %q does not name the gang width", j.Reason)
	}
}

// Two replays of the bundled 256-device gang trace must agree in
// every field, for every policy — the tentpole determinism criterion.
func TestGangTraceDeterministic(t *testing.T) {
	est := NewEstimator()
	for _, p := range Policies() {
		a := runGangTrace(t, gangCluster(true), p, est)
		b := runGangTrace(t, gangCluster(true), p, est)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two gang-trace replays differ", p.Name)
		}
	}
}

// The bundled gang trace also replays identically through the trace
// format: format → parse → run matches run on the in-memory trace.
func TestGangTraceFormatRoundTrip(t *testing.T) {
	text := workload.FormatTrace(workload.GangTrace())
	parsed, err := workload.ParseTraceLimit(bytes.NewReader([]byte(text)), workload.GangClusterDevices)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, workload.GangTrace()) {
		t.Fatal("gang trace does not round-trip through the trace format")
	}
}

// Topology-aware packing beats FIFO on the bundled gang trace: higher
// compute utilization and lower mean JCT — locality prices gangs onto
// faster tiers, and backfill keeps devices busy past blocked heads.
func TestTopoPackingBeatsFIFOOnGangTrace(t *testing.T) {
	est := NewEstimator()
	fifo := runGangTrace(t, gangCluster(true), FIFO, est)
	topo := runGangTrace(t, gangCluster(true), TopoPacking, est)
	if topo.ComputeUtilization <= fifo.ComputeUtilization {
		t.Errorf("topo compute utilization %.3f not above fifo %.3f",
			topo.ComputeUtilization, fifo.ComputeUtilization)
	}
	if topo.MeanJCT() >= fifo.MeanJCT() {
		t.Errorf("topo mean JCT %v not below fifo %v", topo.MeanJCT(), fifo.MeanJCT())
	}
	if topo.Makespan >= fifo.Makespan {
		t.Errorf("topo makespan %v not below fifo %v", topo.Makespan, fifo.Makespan)
	}
}

// Topology-aware placement keeps every gang that fits an NVLink
// island inside one: under an empty cluster, a 4-wide gang lands on
// devices {0,1,2,3}, never straddling islands or nodes.
func TestTopoPackingPrefersIsland(t *testing.T) {
	s, err := NewScheduler(gangCluster(false), TopoPacking)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run([]Job{
		{ID: "g4", Network: "AlexNet", Batch: 256, Manager: "naive", GPUs: 4, Iterations: 1},
		{ID: "g8", Network: "AlexNet", Batch: 256, Manager: "naive", GPUs: 8, Iterations: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := hw.DefaultTopology()
	g4 := res.Jobs[0].Gang
	if len(g4) != 4 {
		t.Fatalf("g4 placed on %v", g4)
	}
	for _, d := range g4[1:] {
		if topo.TierBetween(g4[0], d) != hw.TierNVLink {
			t.Errorf("4-wide gang %v straddles NVLink islands", g4)
			break
		}
	}
	g8 := res.Jobs[1].Gang
	if len(g8) != 8 {
		t.Fatalf("g8 placed on %v", g8)
	}
	for _, d := range g8[1:] {
		if !topo.SameNode(g8[0], d) {
			t.Errorf("8-wide gang %v straddles nodes", g8)
			break
		}
	}
}

// Overlapping the all-reduce with backward compute measurably lowers
// a gang job's completion time against the serialized exchange.
func TestOverlapLowersGangJCT(t *testing.T) {
	jobs := []Job{
		{ID: "gang", Network: "AlexNet", Batch: 256, Manager: "naive", GPUs: 2, Iterations: 4},
	}
	run := func(overlap bool) JobResult {
		s, err := NewScheduler(Cluster{Device: hw.TeslaK40c, Devices: 2, Overlap: overlap}, FIFO)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Jobs[0]
	}
	serial, overlapped := run(false), run(true)
	if overlapped.JCT >= serial.JCT {
		t.Errorf("overlap JCT %v not below serialized %v", overlapped.JCT, serial.JCT)
	}
}

// A slower interconnect tier must cost iteration time: the same gang
// across nodes finishes later than inside an NVLink island.
func TestCrossNodeGangSlower(t *testing.T) {
	// Fill node 0 so the second gang is forced across nodes: on a
	// 2-node cluster of 8 devices, the first two 4-wide gangs pack
	// node 0's islands, and the third must span nodes... simpler: two
	// clusters, one with a topology whose "nodes" are single devices
	// (every pair crosses the network) and one flat NVLink-free node.
	jobs := []Job{{ID: "g", Network: "AlexNet", Batch: 256, Manager: "naive", GPUs: 4, Iterations: 2}}
	run := func(topo hw.Topology) JobResult {
		s, err := NewScheduler(Cluster{Device: hw.TeslaK40c, Devices: 4, Topology: topo}, FIFO)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Jobs[0]
	}
	island := run(hw.Topology{DevicesPerNode: 4, NVLinkIsland: 4})
	crossNode := run(hw.Topology{DevicesPerNode: 1})
	if crossNode.JCT <= island.JCT {
		t.Errorf("cross-node gang JCT %v not above NVLink island %v", crossNode.JCT, island.JCT)
	}
}

// Preemption releases whole gangs atomically: evicting a 2-device
// gang for a high-priority arrival frees both devices, the victim
// re-queues, and everything still completes.
func TestGangPreemptionAtomic(t *testing.T) {
	jobs := []Job{
		{ID: "victim", Network: "AlexNet", Batch: 512, Manager: "naive", GPUs: 2, Priority: 1,
			Arrival: 0, Iterations: 6},
		{ID: "urgent", Network: "AlexNet", Batch: 512, Manager: "naive", Priority: 9,
			Arrival: sim.Time(sim.Millisecond), Iterations: 1},
	}
	s, err := NewScheduler(Cluster{Device: hw.TeslaK40c, Devices: 2}, Priority)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	victim, urgent := res.Jobs[0], res.Jobs[1]
	if victim.Rejected || urgent.Rejected {
		t.Fatalf("unexpected rejection: %+v %+v", victim, urgent)
	}
	if victim.Preemptions < 1 {
		t.Error("gang victim was never preempted")
	}
	if urgent.Start >= victim.Finish {
		t.Errorf("urgent job started at %d, after the victim finished at %d — preemption did not free the gang",
			int64(urgent.Start), int64(victim.Finish))
	}
	// The re-admitted gang still occupies two devices.
	if len(victim.Gang) != 2 {
		t.Errorf("victim's final placement %v, want a 2-device gang", victim.Gang)
	}
}

// An incremental replay with gangs — paused, snapshotted, restored —
// produces the exact batch-run result; the snapshot round-trips byte
// for byte through encode → restore → encode.
func TestGangSnapshotRoundTrip(t *testing.T) {
	cluster := Cluster{Device: hw.TeslaK40c, Devices: 8, Topology: hw.DefaultTopology(), Overlap: true}
	jobs := []Job{
		{ID: "g2", Network: "AlexNet", Batch: 256, Manager: "naive", GPUs: 2, Priority: 1, Arrival: 0, Iterations: 4},
		{ID: "g4", Network: "AlexNet", Batch: 512, Manager: "naive", GPUs: 4, Priority: 2,
			Arrival: sim.Time(sim.Millisecond), Iterations: 3},
		{ID: "s1", Network: "AlexNet", Batch: 128, Manager: "naive", Priority: 5,
			Arrival: 2 * sim.Time(sim.Millisecond), Iterations: 5},
		{ID: "hi", Network: "AlexNet", Batch: 512, Manager: "naive", Priority: 9,
			Arrival: 3 * sim.Time(sim.Millisecond), Iterations: 2},
	}
	est := NewEstimator()
	batch, err := func() (*Result, error) {
		s, err := NewSchedulerWithEstimator(cluster, Priority, est)
		if err != nil {
			return nil, err
		}
		return s.Run(jobs)
	}()
	if err != nil {
		t.Fatal(err)
	}

	inc, err := NewIncremental(cluster, Priority, est)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	// Pause mid-flight so gangs are resident (and possibly marked).
	inc.AdvanceTo(4 * sim.Time(sim.Millisecond))
	snap := EncodeSnapshot(inc)
	restored, err := RestoreIncremental(snap, est)
	if err != nil {
		t.Fatal(err)
	}
	if again := EncodeSnapshot(restored); !bytes.Equal(again, snap) {
		t.Error("snapshot does not round-trip byte for byte")
	}
	got, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Error("restored gang replay diverges from the batch run")
	}
}

// Pre-gang snapshots (no topo record, no gang fields) still restore:
// the decoder fills the zero topology and single-device placements.
func TestPreGangSnapshotRestores(t *testing.T) {
	legacy := "snsnap 1\npolicy packing\ndevice d 1 1024 0x0 0x0 0 0 0 0 0x3ff0000000000000 0x3ff0000000000000\ndevices 1\nclock 0 0 0\nagg 0 0 0 0\njobs 0\ndev 0 0 0 0 0 0 0 0 0x0 0 0\npending 0\nevents 0\nend\n"
	inc, err := RestoreIncremental([]byte(legacy), nil)
	if err != nil {
		t.Fatalf("legacy snapshot failed to restore: %v", err)
	}
	if _, err := inc.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestGangChaosConcurrentReplays hammers the shared estimator from
// concurrent gang replays under the preemptive policy — submit,
// preempt and re-admit gangs on every goroutine at once — and then
// asserts all goroutines computed the identical schedule. Run with
// -race in CI.
func TestGangChaosConcurrentReplays(t *testing.T) {
	trace := workload.GangTrace()[:120]
	cluster := Cluster{Device: hw.TeslaK40c, Devices: 16, Topology: hw.DefaultTopology(), Overlap: true}
	jobs := JobsFromTrace(trace)
	est := NewEstimator()

	const workers = 8
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := NewSchedulerWithEstimator(cluster, Priority, est)
			if err != nil {
				errs[w] = err
				return
			}
			// Interleave batch runs with an incremental replay that
			// pauses mid-trace, so paused gang state is exercised
			// concurrently too.
			if w%2 == 0 {
				results[w], errs[w] = s.Run(jobs)
				return
			}
			inc, err := NewIncremental(cluster, Priority, est)
			if err != nil {
				errs[w] = err
				return
			}
			for _, j := range jobs {
				if _, err := inc.Append(j); err != nil {
					errs[w] = err
					return
				}
			}
			inc.AdvanceTo(sim.Time(uint64(w) * uint64(sim.Millisecond)))
			results[w], errs[w] = inc.Result()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(results[w].Jobs, results[0].Jobs) {
			t.Errorf("worker %d computed a different schedule", w)
		}
	}
}
