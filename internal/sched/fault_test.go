package sched

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }

func TestFaultPlanValidate(t *testing.T) {
	cases := map[string]struct {
		plan FaultPlan
		want string // substring of the error, "" for valid
	}{
		"empty":        {FaultPlan{}, ""},
		"fail only":    {FaultPlan{[]FaultEvent{{At: ms(100), Device: 1}}}, ""},
		"fail recover": {FaultPlan{[]FaultEvent{{At: ms(100), Device: 1}, {At: ms(200), Device: 1, Recover: true}}}, ""},
		"two devices interleaved": {FaultPlan{[]FaultEvent{
			{At: ms(100), Device: 0}, {At: ms(150), Device: 1},
			{At: ms(200), Device: 0, Recover: true}, {At: ms(300), Device: 0}}}, ""},
		"out of order in plan, consistent per device": {FaultPlan{[]FaultEvent{
			{At: ms(200), Device: 1, Recover: true}, {At: ms(100), Device: 1}}}, ""},
		"device out of range": {FaultPlan{[]FaultEvent{{At: ms(100), Device: 2}}}, "targets device 2 of 2"},
		"negative device":     {FaultPlan{[]FaultEvent{{At: ms(100), Device: -1}}}, "targets device -1"},
		"negative time":       {FaultPlan{[]FaultEvent{{At: -1, Device: 0}}}, "negative time"},
		"recover while up":    {FaultPlan{[]FaultEvent{{At: ms(100), Device: 0, Recover: true}}}, "recovers at"},
		"double fail":         {FaultPlan{[]FaultEvent{{At: ms(100), Device: 0}, {At: ms(200), Device: 0}}}, "while already failed"},
		"same instant pair":   {FaultPlan{[]FaultEvent{{At: ms(100), Device: 0}, {At: ms(100), Device: 0, Recover: true}}}, "two fault events at time"},
		"recover after cycle": {FaultPlan{[]FaultEvent{{At: ms(1), Device: 0}, {At: ms(2), Device: 0, Recover: true}, {At: ms(3), Device: 0, Recover: true}}}, "recovers at"},
	}
	for name, tc := range cases {
		err := tc.plan.Validate(2)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", name, tc.want, err)
		}
	}
}

// faultCluster is the bundled failure-scenario cluster: the FaultTrace
// jobs on one DefaultTopology node with overlapped gangs.
func faultCluster(t testing.TB) (Cluster, []Job) {
	t.Helper()
	jobs, faults := workload.FaultTrace()
	c, err := NewCluster(Uniform(hw.TeslaK40c, workload.FaultClusterDevices),
		WithTopology(hw.DefaultTopology()), WithOverlap(),
		WithFaultPlan(FaultsFromTrace(faults)))
	if err != nil {
		t.Fatal(err)
	}
	return c, JobsFromTrace(jobs)
}

// TestFaultTraceZeroJobsLost is the headline acceptance check: the
// bundled fault trace kills devices mid-flight under every policy, yet
// no job is lost — every victim restores from its iteration-boundary
// checkpoint and finishes — and the gang demonstrably shrinks
// elastically instead of being evicted.
func TestFaultTraceZeroJobsLost(t *testing.T) {
	c, jobs := faultCluster(t)
	est := NewEstimator()
	for _, p := range []Policy{FIFO, Priority, Packing, TopoPacking} {
		s, err := NewSchedulerWithEstimator(c, p, est)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(jobs)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		var shrunk, restored, lost int
		for _, j := range r.Jobs {
			if j.Rejected {
				t.Errorf("%s: job %s rejected: %s", p.Name, j.ID, j.Reason)
			}
			if j.Finish == 0 {
				t.Errorf("%s: job %s never finished", p.Name, j.ID)
			}
			shrunk += j.Shrinks
			restored += j.Restores
			lost += j.LostIterations
		}
		if shrunk == 0 {
			t.Errorf("%s: no gang shrank elastically", p.Name)
		}
		if restored < 2 {
			t.Errorf("%s: want at least 2 checkpoint restores, got %d", p.Name, restored)
		}
		if lost == 0 {
			t.Errorf("%s: no iteration was killed mid-flight", p.Name)
		}
		// The gang must have shrunk, not been evicted: exactly one
		// shrink, its final placement one member short of its request.
		gang := r.Jobs[0]
		if gang.Shrinks != 1 || len(gang.Gang) != gang.GPUs-1 {
			t.Errorf("%s: gang shrinks=%d placement=%v (want 1 shrink, %d survivors)",
				p.Name, gang.Shrinks, gang.Gang, gang.GPUs-1)
		}
		for _, g := range gang.Gang {
			if g == 2 {
				t.Errorf("%s: gang still placed on failed device 2: %v", p.Name, gang.Gang)
			}
		}
		// Device stats carry the outage: device 4 fails permanently
		// (down through end of trace), device 2 fails and recovers.
		if r.Devices[4].Failures != 1 || r.Devices[4].Downtime != r.Makespan-sim.Duration(ms(1500)) {
			t.Errorf("%s: dev4 failures=%d downtime=%d (makespan %d)",
				p.Name, r.Devices[4].Failures, r.Devices[4].Downtime, r.Makespan)
		}
		if r.Devices[2].Failures != 1 || r.Devices[2].Downtime != sim.Duration(ms(2000)) {
			t.Errorf("%s: dev2 failures=%d downtime=%d", p.Name, r.Devices[2].Failures, r.Devices[2].Downtime)
		}
		// Recovery re-enters placement: the post-recovery arrival lands
		// on the recovered device.
		late := r.Jobs[len(r.Jobs)-1]
		if late.Device != 2 {
			t.Errorf("%s: post-recovery job on device %d, want recovered device 2", p.Name, late.Device)
		}
	}
}

// TestFaultReplayDeterministic: two from-scratch runs of the fault
// trace are deep-equal, and an incremental replay paused and resumed
// across the outage matches the batch run exactly.
func TestFaultReplayDeterministic(t *testing.T) {
	c, jobs := faultCluster(t)
	est := NewEstimator()
	run := func() *Result {
		s, err := NewSchedulerWithEstimator(c, TopoPacking, est)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two batch replays differ")
	}

	for _, pause := range []int64{0, 1500, 1700, 2000, 2100, 4000, 5000} {
		inc, err := NewIncremental(c, TopoPacking, est)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if _, err := inc.Append(j); err != nil {
				t.Fatal(err)
			}
		}
		inc.AdvanceTo(ms(pause))
		got, err := inc.Result()
		if err != nil {
			t.Fatalf("pause %d: %v", pause, err)
		}
		if !reflect.DeepEqual(a, got) {
			t.Fatalf("pause at %dms: incremental result diverges from batch", pause)
		}
	}
}

// TestFaultSnapshotMidOutage: a snapshot taken while a device is down
// (and a gang already shrunk) restores and drains to the exact batch
// result, and the snapshot itself round-trips byte-identically.
func TestFaultSnapshotMidOutage(t *testing.T) {
	c, jobs := faultCluster(t)
	est := NewEstimator()
	s, err := NewSchedulerWithEstimator(c, TopoPacking, est)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, pause := range []int64{1600, 2500, 3999, 4001} {
		inc, err := NewIncremental(c, TopoPacking, est)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if _, err := inc.Append(j); err != nil {
				t.Fatal(err)
			}
		}
		inc.AdvanceTo(ms(pause))
		snap := EncodeSnapshot(inc)
		restored, err := RestoreIncremental(snap, est)
		if err != nil {
			t.Fatalf("pause %dms: restore: %v", pause, err)
		}
		if again := EncodeSnapshot(restored); !bytes.Equal(snap, again) {
			t.Fatalf("pause %dms: snapshot not byte-stable through restore", pause)
		}
		got, err := restored.Result()
		if err != nil {
			t.Fatalf("pause %dms: %v", pause, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("pause %dms: restored result diverges from batch", pause)
		}
	}
}

// TestFaultCrossJob: under CrossJob admission the device planners
// re-plan on failure (victims release member by member) and the
// elastic shrink re-probes surviving planners; the run completes with
// no job lost and stays deterministic.
func TestFaultCrossJob(t *testing.T) {
	jobs, faults := workload.FaultTrace()
	c, err := NewCluster(Uniform(hw.TeslaK40c, workload.FaultClusterDevices),
		WithTopology(hw.DefaultTopology()), WithOverlap(), WithCrossJob(8*hw.GiB),
		WithFaultPlan(FaultsFromTrace(faults)))
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator()
	run := func() *Result {
		s, err := NewSchedulerWithEstimator(c, Packing, est)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(JobsFromTrace(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cross-job fault replays differ")
	}
	restores := 0
	for _, j := range a.Jobs {
		if j.Rejected {
			t.Errorf("job %s rejected: %s", j.ID, j.Reason)
		}
		if j.Finish == 0 {
			t.Errorf("job %s never finished", j.ID)
		}
		restores += j.Restores
	}
	if restores == 0 {
		t.Error("no checkpoint restores under cross-job admission")
	}
}

// TestFaultGangFullRequeue: when a whole gang's devices fail there are
// no survivors to shrink onto, so the gang re-queues through admission
// and finishes on other devices, keeping its completed iterations.
func TestFaultGangFullRequeue(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{
		{At: ms(1500), Device: 0},
		{At: ms(1600), Device: 1},
	}}
	c, err := NewCluster(Uniform(hw.TeslaK40c, 4),
		WithTopology(hw.Topology{DevicesPerNode: 4, NVLinkIsland: 2}),
		WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{ID: "g", Network: "ResNet50", Batch: 32, Manager: "naive",
		Priority: 5, Iterations: 6, GPUs: 2}}
	s, err := NewScheduler(c, TopoPacking)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Jobs[0]
	// First failure (device 0) shrinks the pair to {1}; the second
	// kills the survivor, so the job re-queues and finishes on the
	// remaining island.
	if g.Shrinks != 1 || g.Restores != 2 {
		t.Errorf("shrinks=%d restores=%d, want 1 and 2", g.Shrinks, g.Restores)
	}
	if g.Finish == 0 {
		t.Error("gang never finished")
	}
	for _, d := range g.Gang {
		if d == 0 || d == 1 {
			t.Errorf("final placement %v uses a failed device", g.Gang)
		}
	}
}

// TestFaultInvalidPlanRejected: every constructor path validates the
// fault plan against the pool size.
func TestFaultInvalidPlanRejected(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{{At: ms(100), Device: 9}}}
	if _, err := NewCluster(Uniform(hw.TeslaK40c, 2), WithFaultPlan(plan)); err == nil {
		t.Error("NewCluster accepted an out-of-range fault device")
	}
	c := Cluster{Device: hw.TeslaK40c, Devices: 2, Faults: plan}
	if _, err := NewScheduler(c, FIFO); err == nil {
		t.Error("NewScheduler accepted an out-of-range fault device")
	}
	if _, err := NewIncremental(c, FIFO, nil); err == nil {
		t.Error("NewIncremental accepted an out-of-range fault device")
	}
}

// TestFaultSingleDeviceRequeue: a single-device victim killed
// mid-iteration loses only the in-flight iteration; the completed
// count is preserved through the re-queue.
func TestFaultSingleDeviceRequeue(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{{At: ms(2000), Device: 0}}}
	c, err := NewCluster(Uniform(hw.TeslaK40c, 2), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{ID: "a", Network: "AlexNet", Batch: 512, Manager: "naive",
		Priority: 5, Iterations: 4}}
	s, err := NewScheduler(c, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := r.Jobs[0]
	if j.Restores != 1 || j.Shrinks != 0 || j.LostIterations != 1 {
		t.Errorf("restores=%d shrinks=%d lost=%d, want 1, 0, 1", j.Restores, j.Shrinks, j.LostIterations)
	}
	if j.Device != 1 || j.Finish == 0 {
		t.Errorf("victim finished on device %d at %d, want device 1", j.Device, int64(j.Finish))
	}
	// The finish pays for the aborted iteration: 4 completed + 1 lost
	// re-run from the checkpoint.
	if r.Devices[0].Iterations+r.Devices[1].Iterations != 4 {
		t.Errorf("completed iterations %d+%d, want 4 total",
			r.Devices[0].Iterations, r.Devices[1].Iterations)
	}
}

// mutateLine finds the first snapshot line with the prefix and
// replaces one whitespace-separated field (negative indexes count from
// the end of the line).
func mutateLine(b []byte, prefix string, field int, val string) []byte {
	lines := strings.Split(string(b), "\n")
	for i, ln := range lines {
		if strings.HasPrefix(ln, prefix) {
			f := strings.Fields(ln)
			if field < 0 {
				field += len(f)
			}
			f[field] = val
			lines[i] = strings.Join(f, " ")
			break
		}
	}
	return []byte(strings.Join(lines, "\n"))
}

// TestFaultSnapshotDecodeErrors corrupts the fault extensions of a
// mid-outage snapshot; each corruption must error cleanly, never panic
// or restore an inconsistent replay.
func TestFaultSnapshotDecodeErrors(t *testing.T) {
	c, jobs := faultCluster(t)
	inc, err := NewIncremental(c, TopoPacking, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := inc.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	// Pause mid-outage: device 4 is down, the gang has shrunk, and the
	// recovery event is still queued.
	inc.AdvanceTo(ms(2500))
	good := EncodeSnapshot(inc)
	if _, err := RestoreIncremental(good, nil); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	cases := map[string][]byte{
		// faults record: declared count vs fields present, and the plan
		// re-validation in newExec.
		"faults count mismatch":     mutateLine(good, "faults ", 1, "4"),
		"fault device out of range": mutateLine(good, "faults ", 3, "99"),
		// The queued recovery event's job field is the recover flag.
		"bad fault recover flag": mutateLine(good, "ev 4000000000 2", 4, "7"),
		// Per-job and per-device fault counters must be non-negative.
		"negative restores":  mutateLine(good, "state 0 ", -4, "-1"),
		"negative liveDone":  mutateLine(good, "state 0 ", -1, "-2"),
		"negative downtime":  mutateLine(good, "dev 4 ", -2, "-5"),
		"negative failcount": mutateLine(good, "dev 4 ", -1, "-1"),
		// A failed device cannot hold residents or in-flight work.
		"failed device with residents": mutateLine(good, "dev 0 ", -4, "1"),
	}
	for name, data := range cases {
		if _, err := RestoreIncremental(data, nil); err == nil {
			t.Errorf("%s: decoder accepted corrupted snapshot", name)
		}
	}
}

// TestFaultPermanentStrandedError: a trace whose permanent failures
// leave a pending gang nowhere to run errors out naming the failed
// devices instead of reporting a generic deadlock.
func TestFaultPermanentStrandedError(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{{At: ms(500), Device: 1}}}
	c, err := NewCluster(Uniform(hw.TeslaK40c, 2), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	// The gang needs both devices; after device 1 dies it can never be
	// placed again.
	jobs := []Job{{ID: "g", Network: "ResNet50", Batch: 32, Manager: "naive",
		Priority: 5, Arrival: ms(1000), Iterations: 2, GPUs: 2}}
	s, err := NewScheduler(c, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(jobs)
	if err == nil || !strings.Contains(err.Error(), "devices failed") {
		t.Errorf("want stranded error naming failed devices, got %v", err)
	}
}
