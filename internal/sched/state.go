package sched

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/hw"
	"repro/internal/memplan"
	"repro/internal/sim"
)

// Snapshot serialization for a paused Incremental replay: the serving
// layer's log-compaction checkpoint. The format is line-based text —
// one keyword-prefixed record per line — so checkpoints diff cleanly
// and corruption is locatable. Floats round-trip exactly through their
// IEEE-754 bit patterns (the estimator key embeds the device spec, so
// a restored spec must compare equal bit for bit), and strings through
// percent-encoding (device names contain spaces, and every field must
// survive a whitespace split). The decoder is
// defensive: every record is bounds-checked, every index validated,
// and malformed or truncated input returns an error — never a panic —
// which FuzzRestoreIncremental enforces.

// snapMagic identifies the format; the version suffix gates future
// layout changes.
const snapMagic = "snsnap 1"

// EncodeSnapshot serializes the paused replay. Restoring the bytes
// with RestoreIncremental yields an Incremental whose Result() is
// byte-identical to the original's.
func EncodeSnapshot(inc *Incremental) []byte {
	e := inc.ex
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", snapMagic)
	fmt.Fprintf(&b, "policy %s\n", e.policy.Name)
	d := e.cluster.Device
	fmt.Fprintf(&b, "device %s %d %d %s %s %d %d %d %d %s %s\n",
		qstr(d.Name), d.DRAMBytes, d.UsableBytes,
		fbits(d.PeakFLOPS), fbits(d.MemBWBytes),
		int64(d.KernelLaunch), int64(d.CudaMalloc), int64(d.CudaFree), int64(d.PoolOp),
		fbits(d.EffScale), fbits(d.MemEffScale))
	fmt.Fprintf(&b, "devices %d\n", e.cluster.Devices)
	// The topo record is newer than the magic: the decoder treats it as
	// optional so pre-gang snapshots (no record) still restore, to the
	// zero topology they were taken under.
	tp := e.cluster.Topology
	fmt.Fprintf(&b, "topo %d %d %d %s %s %d %s %s %d %s %s %d\n",
		tp.DevicesPerNode, tp.NVLinkIsland, b2i(e.cluster.Overlap),
		qstr(tp.NVLink.Name), fbits(tp.NVLink.BytesPerSec), int64(tp.NVLink.Latency),
		qstr(tp.PCIe.Name), fbits(tp.PCIe.BytesPerSec), int64(tp.PCIe.Latency),
		qstr(tp.Network.Name), fbits(tp.Network.BytesPerSec), int64(tp.Network.Latency))
	// The plan record marks a CrossJob snapshot and carries the spill
	// pool size; its absence restores the historical isolated admission,
	// which is exactly what legacy snapshots ran under. Planner state is
	// never serialized — restore re-admits each device's residents
	// (rebuildPlanners), and purity guarantees the identical plan.
	if e.crossjob {
		fmt.Fprintf(&b, "plan %d\n", e.spillCap)
	}
	// The faults record carries the cluster's scripted fault plan; its
	// absence restores the historical always-healthy cluster. The
	// undelivered fault events themselves travel in the event queue
	// like every other event — this record only preserves the plan for
	// reporting and re-validation.
	if n := len(e.cluster.Faults.Events); n > 0 {
		fmt.Fprintf(&b, "faults %d", n)
		for _, fe := range e.cluster.Faults.Events {
			fmt.Fprintf(&b, " %d %d %d", int64(fe.At), fe.Device, b2i(fe.Recover))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "clock %d %d %d\n", int64(inc.mark), int64(e.now), e.doneSeq)
	fmt.Fprintf(&b, "agg %d %d %d %d\n", e.finCount, e.rejCount, int64(e.sumJCT), int64(e.sumWait))

	fmt.Fprintf(&b, "jobs %d\n", len(e.states))
	for i, js := range e.states {
		fmt.Fprintf(&b, "job %d %s %s %s %d %d %d %d %s %d\n",
			i, qstr(js.ID), qstr(js.Network), qstr(js.Manager),
			js.Batch, js.Priority, int64(js.Arrival), js.Iterations, intList(js.BatchSchedule),
			js.GPUs)
		fmt.Fprintf(&b, "state %d %s %d %d %s %d %d %d %d %d %d %d %d",
			i, qstr(js.rejReason),
			js.est.PeakBytes, int64(js.est.IterTime), fbits(js.est.Throughput),
			js.remaining, js.device, b2i(js.started), int64(js.start), int64(js.finish),
			js.preempts, b2i(js.marked), b2i(js.running))
		fmt.Fprintf(&b, " %d", len(js.iterTimes))
		for _, t := range js.iterTimes {
			fmt.Fprintf(&b, " %d", int64(t))
		}
		// Gang placement and all-reduce price, appended after the
		// iteration times; the decoder accepts their absence (pre-gang
		// snapshots). GradientBytes rides along so a restored gang
		// re-prices identically after a preemption, and the estimate's
		// floor and spill traffic (newer still — the decoder accepts
		// their absence too) so a re-admitted job plans identically.
		// Newest of all, the fault-recovery counters and the live
		// completion sequence (the stale-completion guard).
		fmt.Fprintf(&b, " %s %d %d %d %d", intList(js.gang), int64(js.gangAR), js.est.GradientBytes,
			js.est.FloorBytes, js.est.SpillBytes)
		fmt.Fprintf(&b, " %d %d %d %d", js.restores, js.shrinks, js.lostIters, js.liveDone)
		b.WriteByte('\n')
		// The demand record serializes the job's tensor-granularity
		// planner demand directly rather than rebuilding it from the
		// program at restore — a restored replay must not depend on
		// model-zoo code (or pay its dry-run cost) to resume, and a
		// hostile snapshot must not be able to steer a program build.
		if e.crossjob && js.demand.Job != "" {
			fmt.Fprintf(&b, "demand %d %d %d %d", i, js.demand.FloorBytes, js.demand.SpillBytes, len(js.demand.Tensors))
			for _, td := range js.demand.Tensors {
				fmt.Fprintf(&b, " %s %d %d %d", strconv.FormatUint(td.Key, 10), td.Bytes, td.Width, td.NextUse)
			}
			b.WriteByte('\n')
		}
	}

	for i, d := range e.devs {
		fmt.Fprintf(&b, "dev %d %d %d %d %d %d %d %d %s %d",
			i, int64(d.freeAt), int64(d.busy), d.used, d.peak, d.rr, b2i(d.inflight),
			d.iters, fbits(d.memIntegral), int64(d.lastT))
		fmt.Fprintf(&b, " %d", len(d.resident))
		for _, r := range d.resident {
			fmt.Fprintf(&b, " %d", r.seq)
		}
		// Co-tenancy high-water marks, appended after the residents; the
		// decoder accepts their absence (older snapshots). Newer still,
		// the fault state (failed flag, outage stamps, failure count).
		fmt.Fprintf(&b, " %d %d", d.maxRes, d.spillPeak)
		fmt.Fprintf(&b, " %d %d %d %d", b2i(d.failed), int64(d.downSince), int64(d.down), d.fails)
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "pending %d", len(e.pending))
	for _, p := range e.pending {
		fmt.Fprintf(&b, " %d", p.seq)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "events %d\n", len(e.q))
	for _, ev := range e.q {
		fmt.Fprintf(&b, "ev %d %d %d %d %d\n", int64(ev.at), ev.class, ev.seq, ev.job, ev.dev)
	}
	fmt.Fprintf(&b, "end\n")
	return b.Bytes()
}

// RestoreIncremental reconstructs a paused replay from EncodeSnapshot
// bytes. The estimator est seeds dry-run estimates for jobs appended
// after the restore (nil allocates a fresh one); already-snapshotted
// jobs carry their estimates in the snapshot.
func RestoreIncremental(data []byte, est *Estimator) (*Incremental, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	r := &snapReader{sc: sc}

	if line := r.next(); line != snapMagic {
		return nil, fmt.Errorf("sched: snapshot: bad magic %q", line)
	}

	f := r.fields("policy", 2)
	if r.err != nil {
		return nil, r.err
	}
	policy, ok := PolicyByName(f[1])
	if !ok {
		return nil, fmt.Errorf("sched: snapshot: unknown policy %q", f[1])
	}

	f = r.fields("device", 12)
	if r.err != nil {
		return nil, r.err
	}
	var spec hw.DeviceSpec
	spec.Name = r.unquote(f[1])
	spec.DRAMBytes = r.i64(f[2])
	spec.UsableBytes = r.i64(f[3])
	spec.PeakFLOPS = r.f64(f[4])
	spec.MemBWBytes = r.f64(f[5])
	spec.KernelLaunch = sim.Duration(r.i64(f[6]))
	spec.CudaMalloc = sim.Duration(r.i64(f[7]))
	spec.CudaFree = sim.Duration(r.i64(f[8]))
	spec.PoolOp = sim.Duration(r.i64(f[9]))
	spec.EffScale = r.f64(f[10])
	spec.MemEffScale = r.f64(f[11])

	f = r.fields("devices", 2)
	ndev := r.count(f, 1, 1<<16)
	// Optional topo record: absent in pre-gang snapshots, which were
	// taken under the zero topology (one flat PCIe-peer node).
	var topo hw.Topology
	overlap := false
	if f := r.fieldsOpt("topo", 13); f != nil {
		topo.DevicesPerNode = int(r.i64(f[1]))
		topo.NVLinkIsland = int(r.i64(f[2]))
		overlap = r.i64(f[3]) != 0
		topo.NVLink = hw.LinkSpec{Name: r.unquote(f[4]), BytesPerSec: r.f64(f[5]), Latency: sim.Duration(r.i64(f[6]))}
		topo.PCIe = hw.LinkSpec{Name: r.unquote(f[7]), BytesPerSec: r.f64(f[8]), Latency: sim.Duration(r.i64(f[9]))}
		topo.Network = hw.LinkSpec{Name: r.unquote(f[10]), BytesPerSec: r.f64(f[11]), Latency: sim.Duration(r.i64(f[12]))}
	}
	// Optional plan record: present exactly when the snapshot was taken
	// under CrossJob. Legacy snapshots restore to isolated admission.
	crossjob := false
	var spillCap int64
	if f := r.fieldsOpt("plan", 2); f != nil {
		crossjob = true
		if len(f) != 2 {
			return nil, fmt.Errorf("sched: snapshot: plan record needs 2 fields, got %d", len(f))
		}
		spillCap = r.i64(f[1])
		if r.err == nil && spillCap <= 0 {
			return nil, fmt.Errorf("sched: snapshot: plan record with spill pool %d", spillCap)
		}
	}
	// Optional faults record: the scripted fault plan. Legacy snapshots
	// (no record) restore to the always-healthy cluster. The plan is
	// re-validated by newExec below, so a hand-crafted record cannot
	// smuggle in an inconsistent event sequence.
	var faults FaultPlan
	if f := r.fieldsOpt("faults", 2); f != nil {
		nfe := r.count(f, 1, 1<<16)
		rest := r.tail(2)
		if r.err == nil && len(rest) != 3*nfe {
			return nil, fmt.Errorf("sched: snapshot: %d fault events declared, %d fields present", nfe, len(rest))
		}
		for k := 0; k < nfe && r.err == nil; k++ {
			faults.Events = append(faults.Events, FaultEvent{
				At:      sim.Time(r.i64(rest[3*k])),
				Device:  int(r.i64(rest[3*k+1])),
				Recover: r.i64(rest[3*k+2]) != 0,
			})
		}
	}
	f = r.fields("clock", 4)
	if r.err != nil {
		return nil, r.err
	}
	mark := sim.Time(r.i64(f[1]))
	now := sim.Time(r.i64(f[2]))
	doneSeq := r.i64(f[3])
	f = r.fields("agg", 5)
	if r.err != nil {
		return nil, r.err
	}
	finCount := int(r.i64(f[1]))
	rejCount := int(r.i64(f[2]))
	sumJCT := sim.Duration(r.i64(f[3]))
	sumWait := sim.Duration(r.i64(f[4]))

	ex, err := newExec(Cluster{Device: spec, Devices: ndev, Topology: topo, Overlap: overlap,
		CrossJob: crossjob, HostSpillBytes: spillCap, Faults: faults}, policy, est)
	if err != nil {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("sched: snapshot: %w", err)
	}
	ex.now = now
	ex.doneSeq = doneSeq
	ex.finCount = finCount
	ex.rejCount = rejCount
	ex.sumJCT = sumJCT
	ex.sumWait = sumWait

	f = r.fields("jobs", 2)
	njobs := r.count(f, 1, 1<<24)
	if r.err != nil {
		return nil, r.err
	}
	for i := 0; i < njobs && r.err == nil; i++ {
		f = r.fields("job", 10)
		if r.err != nil {
			break
		}
		if int(r.i64(f[1])) != i {
			return nil, fmt.Errorf("sched: snapshot: job record %s out of order (want %d)", f[1], i)
		}
		js := &jobState{seq: i}
		js.ID = r.unquote(f[2])
		js.Network = r.unquote(f[3])
		js.Manager = r.unquote(f[4])
		js.Batch = int(r.i64(f[5]))
		js.Priority = int(r.i64(f[6]))
		js.Arrival = sim.Time(r.i64(f[7]))
		js.Iterations = int(r.i64(f[8]))
		js.BatchSchedule = r.ints(f[9])
		js.GPUs = 1
		if len(f) > 10 {
			js.GPUs = int(r.i64(f[10]))
		}

		f = r.fields("state", 15)
		if r.err != nil {
			break
		}
		if int(r.i64(f[1])) != i {
			return nil, fmt.Errorf("sched: snapshot: state record %s out of order (want %d)", f[1], i)
		}
		js.rejReason = r.unquote(f[2])
		js.est.PeakBytes = r.i64(f[3])
		js.est.IterTime = sim.Duration(r.i64(f[4]))
		js.est.Throughput = r.f64(f[5])
		js.remaining = int(r.i64(f[6]))
		js.device = int(r.i64(f[7]))
		js.started = r.i64(f[8]) != 0
		js.start = sim.Time(r.i64(f[9]))
		js.finish = sim.Time(r.i64(f[10]))
		js.preempts = int(r.i64(f[11]))
		js.marked = r.i64(f[12]) != 0
		js.running = r.i64(f[13]) != 0
		nit := r.count(f, 14, 1<<20)
		if r.err != nil {
			break
		}
		rest := r.tail(14 + 1)
		// Pre-gang snapshots end the record at the iteration times;
		// gang-era ones append the placement, its all-reduce price and
		// the gradient volume; later ones also append the estimate's
		// floor and spill traffic; current ones the fault-recovery
		// counters and live completion sequence. A legacy job's
		// liveDone is reconstructed from the event queue below.
		js.liveDone = -1
		if len(rest) != nit && len(rest) != nit+3 && len(rest) != nit+5 && len(rest) != nit+9 {
			return nil, fmt.Errorf("sched: snapshot: job %d: %d iteration times declared, %d fields present", i, nit, len(rest))
		}
		js.iterTimes = make([]sim.Duration, 0, nit)
		for _, s := range rest[:nit] {
			js.iterTimes = append(js.iterTimes, sim.Duration(r.i64(s)))
		}
		if len(rest) >= nit+3 {
			js.gang = r.ints(rest[nit])
			js.gangAR = sim.Duration(r.i64(rest[nit+1]))
			js.est.GradientBytes = r.i64(rest[nit+2])
		}
		if len(rest) >= nit+5 {
			js.est.FloorBytes = r.i64(rest[nit+3])
			js.est.SpillBytes = r.i64(rest[nit+4])
		}
		if len(rest) == nit+9 {
			js.restores = int(r.i64(rest[nit+5]))
			js.shrinks = int(r.i64(rest[nit+6]))
			js.lostIters = int(r.i64(rest[nit+7]))
			js.liveDone = r.i64(rest[nit+8])
		}
		// Optional demand record: the job's planner demand under
		// CrossJob, replayed verbatim so rebuildPlanners reproduces the
		// paused plan bit for bit.
		if f := r.fieldsOpt("demand", 5); f != nil {
			if !crossjob {
				return nil, fmt.Errorf("sched: snapshot: job %d has a demand record without a plan record", i)
			}
			if int(r.i64(f[1])) != i {
				return nil, fmt.Errorf("sched: snapshot: demand record %s out of order (want %d)", f[1], i)
			}
			js.demand = memplan.Demand{
				Job:        plannerID(js),
				PeakBytes:  js.est.PeakBytes,
				FloorBytes: r.i64(f[2]),
				SpillBytes: r.i64(f[3]),
				IterTime:   js.est.IterTime,
			}
			ntd := r.count(f, 4, 1<<16)
			td := r.tail(5)
			if r.err == nil && len(td) != 4*ntd {
				return nil, fmt.Errorf("sched: snapshot: job %d: %d demand tensors declared, %d fields present", i, ntd, len(td))
			}
			for k := 0; k < ntd && r.err == nil; k++ {
				js.demand.Tensors = append(js.demand.Tensors, memplan.TensorDemand{
					Key:     r.u64(td[4*k]),
					Bytes:   r.i64(td[4*k+1]),
					Width:   int(r.i64(td[4*k+2])),
					NextUse: int(r.i64(td[4*k+3])),
				})
			}
		}
		// Resume safety: these invariants are what the event loop
		// relies on to never index out of range, so a corrupted
		// snapshot must fail here, not panic later.
		if js.Iterations < 1 {
			return nil, fmt.Errorf("sched: snapshot: job %d has %d iterations", i, js.Iterations)
		}
		if js.GPUs < 1 {
			return nil, fmt.Errorf("sched: snapshot: job %d has gang size %d", i, js.GPUs)
		}
		if js.rejReason == "" {
			if len(js.iterTimes) == 0 {
				return nil, fmt.Errorf("sched: snapshot: job %d has no iteration times", i)
			}
			if js.remaining < 0 || js.remaining > js.Iterations {
				return nil, fmt.Errorf("sched: snapshot: job %d has %d of %d iterations remaining", i, js.remaining, js.Iterations)
			}
			if js.device < -1 || js.device >= ndev {
				return nil, fmt.Errorf("sched: snapshot: job %d on device %d of %d", i, js.device, ndev)
			}
			if js.gangAR < 0 {
				return nil, fmt.Errorf("sched: snapshot: job %d has negative all-reduce price", i)
			}
			if js.restores < 0 || js.shrinks < 0 || js.lostIters < 0 || js.liveDone < -1 {
				return nil, fmt.Errorf("sched: snapshot: job %d has negative fault counters", i)
			}
			// Gang members must be valid, strictly ascending device
			// indices — the event loop indexes devices through them.
			for k, g := range js.gang {
				if g < 0 || g >= ndev {
					return nil, fmt.Errorf("sched: snapshot: job %d gang member %d of %d devices", i, g, ndev)
				}
				if k > 0 && g <= js.gang[k-1] {
					return nil, fmt.Errorf("sched: snapshot: job %d gang not strictly ascending", i)
				}
			}
			// Pre-gang snapshots carry no gang list; a placed job's
			// placement is its single device.
			if len(js.gang) == 0 && js.device >= 0 {
				js.gang = []int{js.device}
			}
		}
		ex.states = append(ex.states, js)
	}
	if r.err != nil {
		return nil, r.err
	}

	jobAt := func(idx int64, what string) (*jobState, error) {
		if idx < 0 || idx >= int64(len(ex.states)) {
			return nil, fmt.Errorf("sched: snapshot: %s references job %d of %d", what, idx, len(ex.states))
		}
		return ex.states[idx], nil
	}

	for i := 0; i < ndev && r.err == nil; i++ {
		f = r.fields("dev", 12)
		if r.err != nil {
			break
		}
		if int(r.i64(f[1])) != i {
			return nil, fmt.Errorf("sched: snapshot: dev record %s out of order (want %d)", f[1], i)
		}
		d := ex.devs[i]
		d.freeAt = sim.Time(r.i64(f[2]))
		d.busy = sim.Duration(r.i64(f[3]))
		d.used = r.i64(f[4])
		d.peak = r.i64(f[5])
		d.rr = int(r.i64(f[6]))
		d.inflight = r.i64(f[7]) != 0
		d.iters = int(r.i64(f[8]))
		d.memIntegral = r.f64(f[9])
		d.lastT = sim.Time(r.i64(f[10]))
		nres := r.count(f, 11, 1<<24)
		if r.err != nil {
			break
		}
		rest := r.tail(12)
		// Older snapshots end at the residents; later ones append the
		// co-tenancy and spill high-water marks; current ones the fault
		// state too. Legacy devices restore healthy.
		if len(rest) != nres && len(rest) != nres+2 && len(rest) != nres+6 {
			return nil, fmt.Errorf("sched: snapshot: dev %d: %d residents declared, %d present", i, nres, len(rest))
		}
		if len(rest) >= nres+2 {
			d.maxRes = int(r.i64(rest[nres]))
			d.spillPeak = r.i64(rest[nres+1])
		}
		if len(rest) == nres+6 {
			d.failed = r.i64(rest[nres+2]) != 0
			d.downSince = sim.Time(r.i64(rest[nres+3]))
			d.down = sim.Duration(r.i64(rest[nres+4]))
			d.fails = int(r.i64(rest[nres+5]))
			if r.err == nil && (d.fails < 0 || d.down < 0) {
				return nil, fmt.Errorf("sched: snapshot: dev %d has negative fault counters", i)
			}
		}
		rest = rest[:nres]
		for _, s := range rest {
			js, err := jobAt(r.i64(s), "resident list")
			if err != nil {
				return nil, err
			}
			in := false
			for _, g := range js.gang {
				if g == i {
					in = true
					break
				}
			}
			if !in {
				return nil, fmt.Errorf("sched: snapshot: job %d resident on dev %d but placed on %v", js.seq, i, js.gang)
			}
			d.resident = append(d.resident, js)
		}
		if len(d.resident) > 0 {
			if d.rr < 0 || d.rr >= len(d.resident) {
				return nil, fmt.Errorf("sched: snapshot: dev %d: round-robin cursor %d out of range", i, d.rr)
			}
		} else if d.rr != 0 {
			return nil, fmt.Errorf("sched: snapshot: dev %d: round-robin cursor %d with no residents", i, d.rr)
		}
		// A high-water mark can never sit below the current residency
		// (and legacy snapshots carry no mark at all).
		if d.maxRes < len(d.resident) {
			d.maxRes = len(d.resident)
		}
		// A failed device holds no residents and runs nothing — its
		// victims were displaced when the failure fired.
		if d.failed && (len(d.resident) > 0 || d.inflight) {
			return nil, fmt.Errorf("sched: snapshot: dev %d failed but has residents or in-flight work", i)
		}
	}
	if r.err != nil {
		return nil, r.err
	}

	f = r.fields("pending", 2)
	npend := r.count(f, 1, 1<<24)
	if r.err != nil {
		return nil, r.err
	}
	rest := r.tail(2)
	if len(rest) != npend {
		return nil, fmt.Errorf("sched: snapshot: %d pending declared, %d present", npend, len(rest))
	}
	for _, s := range rest {
		js, err := jobAt(r.i64(s), "pending list")
		if err != nil {
			return nil, err
		}
		ex.pending = append(ex.pending, js)
	}

	f = r.fields("events", 2)
	nev := r.count(f, 1, 1<<24)
	if r.err != nil {
		return nil, r.err
	}
	for k := 0; k < nev && r.err == nil; k++ {
		f = r.fields("ev", 6)
		if r.err != nil {
			break
		}
		ev := event{
			at:    sim.Time(r.i64(f[1])),
			class: uint8(r.i64(f[2])),
			seq:   r.i64(f[3]),
			job:   int(r.i64(f[4])),
			dev:   int(r.i64(f[5])),
		}
		switch ev.class {
		case classArrival, classDone:
			if _, err := jobAt(int64(ev.job), "event"); err != nil {
				return nil, err
			}
		case classFault:
			// A fault event's job field is the recover flag, not a job
			// index.
			if ev.job != 0 && ev.job != 1 {
				return nil, fmt.Errorf("sched: snapshot: fault event %d has recover flag %d", k, ev.job)
			}
		default:
			return nil, fmt.Errorf("sched: snapshot: event %d has class %d", k, ev.class)
		}
		if ev.dev < 0 || ev.dev >= ndev {
			return nil, fmt.Errorf("sched: snapshot: event %d references device %d of %d", k, ev.dev, ndev)
		}
		ex.q.push(ev)
	}
	if r.err != nil {
		return nil, r.err
	}
	// Legacy snapshots predate the stale-completion guard and carry no
	// liveDone field; such a snapshot holds exactly one queued
	// completion per running job, so reconstruct the live sequence from
	// the queue.
	for _, ev := range ex.q {
		if ev.class == classDone {
			if js := ex.states[ev.job]; js.running && js.liveDone < 0 {
				js.liveDone = ev.seq
			}
		}
	}
	if line := r.next(); line != "end" {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("sched: snapshot: want end marker, got %q", line)
	}
	// Reconstruct the device planners from the restored residents and
	// their demand records; a resident without a usable demand (a
	// hand-crafted snapshot) surfaces here as an error, never a panic.
	if err := ex.rebuildPlanners(); err != nil {
		return nil, fmt.Errorf("sched: snapshot: %w", err)
	}
	return &Incremental{ex: ex, mark: mark}, nil
}

// fbits encodes a float exactly as its IEEE-754 bit pattern in hex.
func fbits(v float64) string {
	return "0x" + strconv.FormatUint(math.Float64bits(v), 16)
}

// qstr percent-encodes a string into a single whitespace-free field;
// the empty string becomes "-" (and a literal "-" is escaped so the
// two cannot collide).
func qstr(s string) string {
	if s == "" {
		return "-"
	}
	e := url.QueryEscape(s)
	if e == "-" {
		return "%2D"
	}
	return e
}

// intList renders ints comma-separated, "-" when empty.
func intList(v []int) string {
	if len(v) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// snapReader is a line scanner with sticky error handling: every
// accessor records the first failure and returns a zero value, so the
// decode path stays linear and cannot panic on malformed input.
type snapReader struct {
	sc   *bufio.Scanner
	err  error
	line int
	cur  []string
	// held is a one-line pushback buffer for optional records
	// (fieldsOpt); hasHeld gates it so an empty held line round-trips.
	held    string
	hasHeld bool
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("sched: snapshot line %d: %s", r.line, fmt.Sprintf(format, args...))
	}
}

// next returns the next line, "" at EOF (recorded as an error).
func (r *snapReader) next() string {
	if r.err != nil {
		return ""
	}
	if r.hasHeld {
		r.hasHeld = false
		r.line++
		return r.held
	}
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			r.err = fmt.Errorf("sched: snapshot: %w", err)
		} else {
			r.fail("unexpected end of snapshot")
		}
		return ""
	}
	r.line++
	return r.sc.Text()
}

// fields reads the next line, checks its keyword and that it has at
// least min fields, and returns them (also retained for tail).
func (r *snapReader) fields(keyword string, min int) []string {
	line := r.next()
	if r.err != nil {
		return nil
	}
	f := strings.Fields(line)
	if len(f) == 0 || f[0] != keyword {
		r.fail("want %q record, got %q", keyword, line)
		return nil
	}
	if len(f) < min {
		r.fail("%q record needs %d fields, got %d", keyword, min, len(f))
		return nil
	}
	r.cur = f
	return f
}

// fieldsOpt reads the next record if its keyword matches; otherwise
// the line is pushed back for the next reader and nil is returned. A
// matching record short of min fields is an error, like fields.
func (r *snapReader) fieldsOpt(keyword string, min int) []string {
	line := r.next()
	if r.err != nil {
		return nil
	}
	f := strings.Fields(line)
	if len(f) == 0 || f[0] != keyword {
		r.held = line
		r.hasHeld = true
		r.line--
		return nil
	}
	if len(f) < min {
		r.fail("%q record needs %d fields, got %d", keyword, min, len(f))
		return nil
	}
	r.cur = f
	return f
}

// tail returns the current record's fields from position from on.
func (r *snapReader) tail(from int) []string {
	if r.err != nil || from >= len(r.cur) {
		return nil
	}
	return r.cur[from:]
}

// count parses field i of f as a count in [0, max].
func (r *snapReader) count(f []string, i, max int) int {
	if r.err != nil || i >= len(f) {
		return 0
	}
	n := r.i64(f[i])
	if n < 0 || n > int64(max) {
		r.fail("count %d out of range [0,%d]", n, max)
		return 0
	}
	return int(n)
}

func (r *snapReader) i64(s string) int64 {
	if r.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		r.fail("bad integer %q", s)
		return 0
	}
	return v
}

func (r *snapReader) u64(s string) uint64 {
	if r.err != nil {
		return 0
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		r.fail("bad unsigned integer %q", s)
		return 0
	}
	return v
}

func (r *snapReader) f64(s string) float64 {
	if r.err != nil {
		return 0
	}
	if !strings.HasPrefix(s, "0x") {
		r.fail("bad float bits %q", s)
		return 0
	}
	v, err := strconv.ParseUint(s[2:], 16, 64)
	if err != nil {
		r.fail("bad float bits %q", s)
		return 0
	}
	return math.Float64frombits(v)
}

func (r *snapReader) unquote(s string) string {
	if r.err != nil {
		return ""
	}
	if s == "-" {
		return ""
	}
	v, err := url.QueryUnescape(s)
	if err != nil {
		r.fail("bad encoded string %q", s)
		return ""
	}
	return v
}

// ints parses a comma-separated int list; "-" is empty.
func (r *snapReader) ints(s string) []int {
	if r.err != nil || s == "-" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			r.fail("bad int list entry %q", p)
			return nil
		}
		out = append(out, v)
	}
	return out
}
