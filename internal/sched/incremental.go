package sched

import (
	"fmt"
	"log/slog"

	"repro/internal/sim"
)

// Incremental is a pausable replay of a growing job stream: the
// serving layer's snapshot/compaction substrate. Where Scheduler.Run
// replays a complete trace from scratch, an Incremental absorbs jobs
// as they are sequenced (Append), advances the discrete-event loop up
// to a watermark (AdvanceTo), answers O(1) status queries for jobs
// that are already finalized (Finalized), and produces the exact
// batch-run Result on demand by draining a clone (Result) — the paused
// state itself is never disturbed.
//
// Equivalence to Scheduler.Run is structural, not best-effort: both
// drive the same exec through the same (time, class, sequence) event
// order, and processing the event prefix below the watermark cannot
// observe jobs that arrive at or after it (a pending arrival is
// invisible to the admission pass until its event fires). So
//
//	Run(log) == Incremental{Append(log[:k]); AdvanceTo(W); Append(log[k:])}.Result()
//
// for every split k and every watermark W ≤ min arrival of log[k:].
// Append enforces that precondition by rejecting arrivals below the
// watermark.
type Incremental struct {
	ex   *exec
	mark sim.Time
}

// NewIncremental returns an empty paused replay over the cluster. The
// cluster's fault plan is posted up front — fault events fire as the
// watermark passes them, exactly as in a batch run (snapshot restore
// bypasses this constructor; a restored queue already carries the
// undelivered fault events).
func NewIncremental(c Cluster, p Policy, est *Estimator) (*Incremental, error) {
	ex, err := newExec(c, p, est)
	if err != nil {
		return nil, err
	}
	ex.postFaults()
	return &Incremental{ex: ex}, nil
}

// SetLogger routes structured scheduling events (admissions,
// preemptions, rejections, spill decisions) to lg; nil discards them.
// Logging is observation only — it never affects the replay.
func (inc *Incremental) SetLogger(lg *slog.Logger) { inc.ex.setLogger(lg) }

// Append adds the next job of the stream and returns its index. The
// job's arrival must be at or after the watermark — events below it
// have already been processed, and virtual time only moves forward.
// Appending never advances the replay.
func (inc *Incremental) Append(j Job) (int, error) {
	if j.Arrival < inc.mark {
		return -1, fmt.Errorf("sched: job %s arrives at %d, before the replay watermark %d", j.ID, int64(j.Arrival), int64(inc.mark))
	}
	i, err := inc.ex.addJob(j)
	if err != nil {
		return -1, err
	}
	inc.ex.postArrival(i)
	return i, nil
}

// AdvanceTo processes every event strictly before t and raises the
// watermark to t. Advancing backwards is a no-op.
func (inc *Incremental) AdvanceTo(t sim.Time) {
	if t <= inc.mark {
		return
	}
	inc.ex.processUntil(t)
	inc.mark = t
}

// Watermark returns the time below which every event has been
// processed.
func (inc *Incremental) Watermark() sim.Time { return inc.mark }

// Len returns the number of appended jobs.
func (inc *Incremental) Len() int { return len(inc.ex.states) }

// Finished and Rejected count finalized jobs, maintained as running
// aggregates (O(1), independent of history length).
func (inc *Incremental) Finished() int { return inc.ex.finCount }
func (inc *Incremental) Rejected() int { return inc.ex.rejCount }

// Finalized returns job i's outcome if it can no longer change —
// rejected up front, or every iteration completed below the
// watermark. It is O(1); the serving layer's status fast path.
func (inc *Incremental) Finalized(i int) (JobResult, bool) {
	if i < 0 || i >= len(inc.ex.states) {
		return JobResult{}, false
	}
	js := inc.ex.states[i]
	if js.rejReason == "" && (js.remaining > 0 || !js.started) {
		return JobResult{}, false
	}
	return inc.ex.jobResult(i), true
}

// Clone deep-copies the paused replay. Finalized job states are
// shared (the event loop never touches them again); everything still
// in motion is copied, so advancing one copy never disturbs the
// other.
func (inc *Incremental) Clone() *Incremental {
	return &Incremental{ex: inc.ex.clone(), mark: inc.mark}
}

// JobResult drains a clone to completion and returns job i's outcome
// alone. Unlike Result it never assembles the full per-job slice, so a
// single status query costs the active-suffix replay plus O(1)
// rendering — not an O(history) result construction.
func (inc *Incremental) JobResult(i int) (JobResult, error) {
	if i < 0 || i >= len(inc.ex.states) {
		return JobResult{}, fmt.Errorf("sched: job index %d out of range (have %d)", i, len(inc.ex.states))
	}
	if jr, ok := inc.Finalized(i); ok {
		return jr, nil
	}
	c := inc.ex.clone()
	c.processUntil(-1)
	if c.runErr != nil {
		return JobResult{}, c.runErr
	}
	if js := c.states[i]; js.rejReason == "" && js.remaining > 0 {
		return JobResult{}, fmt.Errorf("sched: job %s stranded with %d iterations left (scheduler deadlock)", js.ID, js.remaining)
	}
	return c.jobResult(i), nil
}

// Result drains a clone to completion and assembles the full
// batch-run Result; the paused replay is untouched. The cost is
// O(active suffix), not O(history): everything below the watermark
// was already processed.
func (inc *Incremental) Result() (*Result, error) {
	c := inc.ex.clone()
	c.processUntil(-1)
	return c.result()
}
