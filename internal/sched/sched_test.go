package sched

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testCluster() Cluster { return Cluster{Device: hw.TeslaK40c, Devices: 2} }

func runTrace(t *testing.T, p Policy) *Result {
	t.Helper()
	s, err := NewScheduler(testCluster(), p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(JobsFromTrace(workload.DefaultTrace()))
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res
}

// Two consecutive replays of the bundled trace must be identical in
// every field, for every policy — the determinism half of the
// acceptance criteria.
func TestDefaultTraceDeterministic(t *testing.T) {
	for _, p := range Policies() {
		a := runTrace(t, p)
		b := runTrace(t, p)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs of the same trace differ:\n%#v\n%#v", p.Name, a, b)
		}
	}
}

// No admitted job may ever exceed its device's capacity: the sum of
// reservations (tracked as the per-device high-water mark) stays
// within the device, and jobs that cannot fit an idle device are
// rejected rather than scheduled.
func TestCapacityInvariant(t *testing.T) {
	cap := testCluster().Capacity()
	for _, p := range Policies() {
		res := runTrace(t, p)
		for di, d := range res.Devices {
			if d.PeakReserved > cap {
				t.Errorf("%s: gpu%d peak reservation %d exceeds capacity %d", p.Name, di, d.PeakReserved, cap)
			}
			if d.PeakReserved <= 0 {
				t.Errorf("%s: gpu%d never used", p.Name, di)
			}
		}
		for _, j := range res.Jobs {
			if j.Rejected {
				continue
			}
			if j.Estimate.PeakBytes > cap {
				t.Errorf("%s: job %s admitted with peak %d > capacity %d", p.Name, j.ID, j.Estimate.PeakBytes, cap)
			}
			if j.Finish < j.Start || j.Start < j.Arrival {
				t.Errorf("%s: job %s has inconsistent times: arrival %d start %d finish %d",
					p.Name, j.ID, j.Arrival, j.Start, j.Finish)
			}
		}
	}
}

// The trace's too-big job must be rejected by admission control (its
// dry run cannot fit even an idle device), never scheduled.
func TestAdmissionControlRejects(t *testing.T) {
	for _, p := range Policies() {
		res := runTrace(t, p)
		found := false
		for _, j := range res.Jobs {
			if j.ID != "too-big" {
				if j.Rejected {
					t.Errorf("%s: job %s unexpectedly rejected: %s", p.Name, j.ID, j.Reason)
				}
				continue
			}
			found = true
			if !j.Rejected {
				t.Errorf("%s: too-big was admitted (peak %d)", p.Name, j.Estimate.PeakBytes)
			}
		}
		if !found {
			t.Fatalf("%s: too-big missing from results", p.Name)
		}
	}
}

// Memory-aware packing must achieve strictly higher cluster
// utilization than FIFO on the bundled trace: backfilling keeps the
// gaps beside the big residents provisioned while FIFO's blocked head
// leaves them idle.
func TestPackingBeatsFIFOUtilization(t *testing.T) {
	fifo := runTrace(t, FIFO)
	packing := runTrace(t, Packing)
	if packing.Utilization <= fifo.Utilization {
		t.Errorf("packing utilization %.4f not strictly above fifo %.4f",
			packing.Utilization, fifo.Utilization)
	}
	if packing.MeanWait() >= fifo.MeanWait() {
		t.Errorf("packing mean wait %v not below fifo %v", packing.MeanWait(), fifo.MeanWait())
	}
}

// The priority policy must serve the urgent job sooner than FIFO by
// preempting lower-priority residents at an iteration boundary.
func TestPriorityPreemption(t *testing.T) {
	fifo := runTrace(t, FIFO)
	prio := runTrace(t, Priority)
	jct := func(r *Result, id string) (jctv, wait int64) {
		for _, j := range r.Jobs {
			if j.ID == id {
				return int64(j.JCT), int64(j.Wait)
			}
		}
		t.Fatalf("%s: job %s missing", r.Policy, id)
		return 0, 0
	}
	fj, fw := jct(fifo, "urgent-alex")
	pj, pw := jct(prio, "urgent-alex")
	if pj >= fj || pw >= fw {
		t.Errorf("priority did not speed up urgent-alex: jct %d vs fifo %d, wait %d vs %d", pj, fj, pw, fw)
	}
	preempted := 0
	for _, j := range prio.Jobs {
		preempted += j.Preemptions
	}
	if preempted == 0 {
		t.Error("priority policy preempted nothing on the bundled trace")
	}
	for _, j := range fifo.Jobs {
		if j.Preemptions != 0 {
			t.Errorf("fifo preempted %s", j.ID)
		}
	}
}

// All admitted work completes: per-device iteration counts add up to
// the trace total, and the makespan covers every finish.
func TestWorkConservation(t *testing.T) {
	want := 0
	for _, tj := range workload.DefaultTrace() {
		if tj.ID == "too-big" {
			continue
		}
		want += tj.Iterations
	}
	for _, p := range Policies() {
		res := runTrace(t, p)
		got := 0
		for _, d := range res.Devices {
			got += d.Iterations
		}
		// Preemption re-queues at iteration boundaries without losing
		// completed work, so the executed-iteration total is exact.
		if got != want {
			t.Errorf("%s: executed %d iterations, trace specifies %d", p.Name, got, want)
		}
		for _, j := range res.Jobs {
			if !j.Rejected && int64(j.Finish) > int64(res.Makespan) {
				t.Errorf("%s: job %s finishes after makespan", p.Name, j.ID)
			}
		}
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(Cluster{Device: hw.TeslaK40c, Devices: 0}, FIFO); err == nil {
		t.Error("zero-device cluster accepted")
	}
	if _, err := NewScheduler(testCluster(), Policy{Name: "broken"}); err == nil {
		t.Error("order-less policy accepted")
	}
	s, err := NewScheduler(testCluster(), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]Job{{ID: "x", Network: "NoSuchNet", Batch: 1, Iterations: 1}}); err == nil ||
		!strings.Contains(err.Error(), "unknown network") {
		t.Errorf("unknown network not reported: %v", err)
	}
}

func TestEstimatorMemoizes(t *testing.T) {
	e := NewEstimator()
	a, err := e.Estimate("AlexNet", 64, "naive", hw.TeslaK40c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Estimate("AlexNet", 64, "naive", hw.TeslaK40c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cached estimate differs: %+v vs %+v", a, b)
	}
	if a.PeakBytes <= 0 || a.IterTime <= 0 {
		t.Errorf("degenerate estimate %+v", a)
	}
	if e.Len() != 1 {
		t.Errorf("estimator holds %d entries after one distinct shape, want 1", e.Len())
	}
}

// The estimate memo is owned per scheduler: running a trace through
// one cluster must not populate (or leak into) another's cache.
func TestEstimatorScopedPerScheduler(t *testing.T) {
	s1, err := NewScheduler(testCluster(), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewScheduler(Cluster{Device: hw.TitanXP, Devices: 2}, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(JobsFromTrace(workload.DefaultTrace())); err != nil {
		t.Fatal(err)
	}
	if s1.Estimator().Len() == 0 {
		t.Error("scheduler's own estimator not populated by its run")
	}
	if n := s2.Estimator().Len(); n != 0 {
		t.Errorf("second cluster's estimator holds %d entries without running anything", n)
	}
}

// A shared estimator is an explicit choice, not an ambient global.
func TestSharedEstimatorIsExplicit(t *testing.T) {
	est := NewEstimator()
	s1, err := NewSchedulerWithEstimator(testCluster(), FIFO, est)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSchedulerWithEstimator(testCluster(), Packing, est)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(JobsFromTrace(workload.DefaultTrace())); err != nil {
		t.Fatal(err)
	}
	n := est.Len()
	if n == 0 {
		t.Fatal("shared estimator not populated")
	}
	if _, err := s2.Run(JobsFromTrace(workload.DefaultTrace())); err != nil {
		t.Fatal(err)
	}
	if est.Len() != n {
		t.Errorf("replaying the same trace grew the shared memo from %d to %d distinct shapes", n, est.Len())
	}
}

func runDynamicTrace(t *testing.T, p Policy) *Result {
	t.Helper()
	s, err := NewScheduler(testCluster(), p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(JobsFromTrace(workload.DefaultDynamicTrace()))
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res
}

// Dynamic jobs replay deterministically under every policy.
func TestDynamicTraceDeterministic(t *testing.T) {
	for _, p := range Policies() {
		a := runDynamicTrace(t, p)
		b := runDynamicTrace(t, p)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs of the dynamic trace differ", p.Name)
		}
	}
}

// A dynamic job's admission estimate is the worst case over its
// schedule's distinct shapes: the reservation equals the max per-shape
// dry-run peak, so the job can never OOM its device mid-run.
func TestDynamicJobWorstCaseAdmission(t *testing.T) {
	s, err := NewScheduler(testCluster(), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run([]Job{
		{ID: "dyn", Network: "AlexNet", Batch: 512, BatchSchedule: []int{128, 512, 128}, Manager: "naive", Iterations: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Estimator().Estimate("AlexNet", 128, "naive", testCluster().Device)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Estimator().Estimate("AlexNet", 512, "naive", testCluster().Device)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Rejected {
		t.Fatalf("dynamic job rejected: %s", j.Reason)
	}
	if j.Estimate.PeakBytes != big.PeakBytes {
		t.Errorf("admitted with peak %d, want the worst-case shape's %d", j.Estimate.PeakBytes, big.PeakBytes)
	}
	if res.Devices[j.Device].PeakReserved != big.PeakBytes {
		t.Errorf("device reserved %d, want worst-case %d", res.Devices[j.Device].PeakReserved, big.PeakBytes)
	}
	// Per-iteration durations follow the schedule, not the worst case:
	// the job's span is the sum of its shapes' iteration times.
	want := 2*small.IterTime + big.IterTime
	if got := sim.Duration(j.Finish - j.Start); got != want {
		t.Errorf("dynamic job span %v, want per-shape sum %v", got, want)
	}
}

// A dynamic job whose worst-case shape cannot fit any device is
// rejected up front, even when its common shape would fit.
func TestDynamicJobWorstCaseRejected(t *testing.T) {
	s, err := NewScheduler(testCluster(), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run([]Job{
		{ID: "burst", Network: "AlexNet", Batch: 1024, BatchSchedule: []int{64, 1024}, Manager: "naive", Iterations: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Jobs[0].Rejected {
		t.Fatal("burst job admitted although its worst-case shape exceeds the device")
	}
	if !strings.Contains(res.Jobs[0].Reason, "1024") {
		t.Errorf("rejection reason %q does not name the offending shape", res.Jobs[0].Reason)
	}
}

// Bad schedules surface as errors, not silent admissions.
func TestDynamicJobScheduleValidation(t *testing.T) {
	s, err := NewScheduler(testCluster(), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]Job{
		{ID: "bad", Network: "AlexNet", Batch: 64, BatchSchedule: []int{64, 0}, Iterations: 2},
	}); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("non-positive schedule entry not rejected: %v", err)
	}
}
