package sched

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/workload"
)

func testCluster() Cluster { return Cluster{Device: hw.TeslaK40c, Devices: 2} }

func runTrace(t *testing.T, p Policy) *Result {
	t.Helper()
	s, err := NewScheduler(testCluster(), p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(JobsFromTrace(workload.DefaultTrace()))
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res
}

// Two consecutive replays of the bundled trace must be identical in
// every field, for every policy — the determinism half of the
// acceptance criteria.
func TestDefaultTraceDeterministic(t *testing.T) {
	for _, p := range Policies() {
		a := runTrace(t, p)
		b := runTrace(t, p)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs of the same trace differ:\n%#v\n%#v", p.Name, a, b)
		}
	}
}

// No admitted job may ever exceed its device's capacity: the sum of
// reservations (tracked as the per-device high-water mark) stays
// within the device, and jobs that cannot fit an idle device are
// rejected rather than scheduled.
func TestCapacityInvariant(t *testing.T) {
	cap := testCluster().Capacity()
	for _, p := range Policies() {
		res := runTrace(t, p)
		for di, d := range res.Devices {
			if d.PeakReserved > cap {
				t.Errorf("%s: gpu%d peak reservation %d exceeds capacity %d", p.Name, di, d.PeakReserved, cap)
			}
			if d.PeakReserved <= 0 {
				t.Errorf("%s: gpu%d never used", p.Name, di)
			}
		}
		for _, j := range res.Jobs {
			if j.Rejected {
				continue
			}
			if j.Estimate.PeakBytes > cap {
				t.Errorf("%s: job %s admitted with peak %d > capacity %d", p.Name, j.ID, j.Estimate.PeakBytes, cap)
			}
			if j.Finish < j.Start || j.Start < j.Arrival {
				t.Errorf("%s: job %s has inconsistent times: arrival %d start %d finish %d",
					p.Name, j.ID, j.Arrival, j.Start, j.Finish)
			}
		}
	}
}

// The trace's too-big job must be rejected by admission control (its
// dry run cannot fit even an idle device), never scheduled.
func TestAdmissionControlRejects(t *testing.T) {
	for _, p := range Policies() {
		res := runTrace(t, p)
		found := false
		for _, j := range res.Jobs {
			if j.ID != "too-big" {
				if j.Rejected {
					t.Errorf("%s: job %s unexpectedly rejected: %s", p.Name, j.ID, j.Reason)
				}
				continue
			}
			found = true
			if !j.Rejected {
				t.Errorf("%s: too-big was admitted (peak %d)", p.Name, j.Estimate.PeakBytes)
			}
		}
		if !found {
			t.Fatalf("%s: too-big missing from results", p.Name)
		}
	}
}

// Memory-aware packing must achieve strictly higher cluster
// utilization than FIFO on the bundled trace: backfilling keeps the
// gaps beside the big residents provisioned while FIFO's blocked head
// leaves them idle.
func TestPackingBeatsFIFOUtilization(t *testing.T) {
	fifo := runTrace(t, FIFO)
	packing := runTrace(t, Packing)
	if packing.Utilization <= fifo.Utilization {
		t.Errorf("packing utilization %.4f not strictly above fifo %.4f",
			packing.Utilization, fifo.Utilization)
	}
	if packing.MeanWait() >= fifo.MeanWait() {
		t.Errorf("packing mean wait %v not below fifo %v", packing.MeanWait(), fifo.MeanWait())
	}
}

// The priority policy must serve the urgent job sooner than FIFO by
// preempting lower-priority residents at an iteration boundary.
func TestPriorityPreemption(t *testing.T) {
	fifo := runTrace(t, FIFO)
	prio := runTrace(t, Priority)
	jct := func(r *Result, id string) (jctv, wait int64) {
		for _, j := range r.Jobs {
			if j.ID == id {
				return int64(j.JCT), int64(j.Wait)
			}
		}
		t.Fatalf("%s: job %s missing", r.Policy, id)
		return 0, 0
	}
	fj, fw := jct(fifo, "urgent-alex")
	pj, pw := jct(prio, "urgent-alex")
	if pj >= fj || pw >= fw {
		t.Errorf("priority did not speed up urgent-alex: jct %d vs fifo %d, wait %d vs %d", pj, fj, pw, fw)
	}
	preempted := 0
	for _, j := range prio.Jobs {
		preempted += j.Preemptions
	}
	if preempted == 0 {
		t.Error("priority policy preempted nothing on the bundled trace")
	}
	for _, j := range fifo.Jobs {
		if j.Preemptions != 0 {
			t.Errorf("fifo preempted %s", j.ID)
		}
	}
}

// All admitted work completes: per-device iteration counts add up to
// the trace total, and the makespan covers every finish.
func TestWorkConservation(t *testing.T) {
	want := 0
	for _, tj := range workload.DefaultTrace() {
		if tj.ID == "too-big" {
			continue
		}
		want += tj.Iterations
	}
	for _, p := range Policies() {
		res := runTrace(t, p)
		got := 0
		for _, d := range res.Devices {
			got += d.Iterations
		}
		// Preemption re-queues at iteration boundaries without losing
		// completed work, so the executed-iteration total is exact.
		if got != want {
			t.Errorf("%s: executed %d iterations, trace specifies %d", p.Name, got, want)
		}
		for _, j := range res.Jobs {
			if !j.Rejected && int64(j.Finish) > int64(res.Makespan) {
				t.Errorf("%s: job %s finishes after makespan", p.Name, j.ID)
			}
		}
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(Cluster{Device: hw.TeslaK40c, Devices: 0}, FIFO); err == nil {
		t.Error("zero-device cluster accepted")
	}
	if _, err := NewScheduler(testCluster(), Policy{Name: "broken"}); err == nil {
		t.Error("order-less policy accepted")
	}
	s, err := NewScheduler(testCluster(), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]Job{{ID: "x", Network: "NoSuchNet", Batch: 1, Iterations: 1}}); err == nil ||
		!strings.Contains(err.Error(), "unknown network") {
		t.Errorf("unknown network not reported: %v", err)
	}
}

func TestDryRunCache(t *testing.T) {
	a, err := DryRun("AlexNet", 64, "naive", hw.TeslaK40c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DryRun("AlexNet", 64, "naive", hw.TeslaK40c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cached estimate differs: %+v vs %+v", a, b)
	}
	if a.PeakBytes <= 0 || a.IterTime <= 0 {
		t.Errorf("degenerate estimate %+v", a)
	}
}
