package sched

import (
	"fmt"

	"repro/internal/hw"
)

// Option configures a Cluster assembled by NewCluster.
type Option func(*Cluster)

// NewCluster assembles a Cluster from per-device specs and functional
// options — the constructor path over bare struct-literal field
// poking, which keeps working (the zero value of every option field is
// the historical default, and NewCluster applies no option the caller
// does not pass, so an option-built cluster compares equal to the
// matching literal). The specs must be non-empty and homogeneous: the
// cluster model is a uniform pool, so heterogeneous specs are an
// error, never a silent first-spec-wins.
func NewCluster(devices []hw.DeviceSpec, opts ...Option) (Cluster, error) {
	if len(devices) == 0 {
		return Cluster{}, fmt.Errorf("sched: cluster needs at least one device spec")
	}
	for i, d := range devices[1:] {
		if d != devices[0] {
			return Cluster{}, fmt.Errorf("sched: heterogeneous cluster: device %d (%q) differs from device 0 (%q)",
				i+1, d.Name, devices[0].Name)
		}
	}
	c := Cluster{Device: devices[0], Devices: len(devices)}
	for _, opt := range opts {
		opt(&c)
	}
	if c.Device.UsableBytes <= 0 {
		return Cluster{}, fmt.Errorf("sched: device %q has no usable memory", c.Device.Name)
	}
	if err := c.Faults.Validate(c.Devices); err != nil {
		return Cluster{}, err
	}
	return c, nil
}

// Uniform expands one device spec into an n-device pool for
// NewCluster.
func Uniform(spec hw.DeviceSpec, n int) []hw.DeviceSpec {
	if n < 0 {
		n = 0
	}
	out := make([]hw.DeviceSpec, n)
	for i := range out {
		out[i] = spec
	}
	return out
}

// WithTopology classifies the pool's device pairs into interconnect
// tiers (NVLink island / same-node PCIe / cross-node network) for gang
// placement and all-reduce pricing.
func WithTopology(t hw.Topology) Option {
	return func(c *Cluster) { c.Topology = t }
}

// WithOverlap overlaps each gang's gradient all-reduce with the
// backward half of its iteration; without it gangs serialize compute
// then communicate.
func WithOverlap() Option {
	return func(c *Cluster) { c.Overlap = true }
}

// WithCrossJob enables interference-aware cross-job admission
// (internal/memplan) with a per-device host spill pool of spillBytes
// (0 selects the 64 GiB default).
func WithCrossJob(spillBytes int64) Option {
	return func(c *Cluster) {
		c.CrossJob = true
		c.HostSpillBytes = spillBytes
	}
}

// WithFaultPlan scripts the cluster's deterministic fault layer: the
// plan's device failures and recoveries fire through the event queue,
// victims restore from iteration-boundary checkpoints, and gangs
// shrink elastically to surviving members when they can (fault.go).
// NewCluster validates the plan against the pool size.
func WithFaultPlan(p FaultPlan) Option {
	return func(c *Cluster) { c.Faults = p }
}
