// Package sched is a deterministic multi-tenant job scheduler over a
// simulated GPU cluster. SuperNeurons manages memory for one training
// job on one device; sched opens the multi-workload scenario class on
// top of it: a stream of training-job requests (network, batch,
// memory manager, priority, arrival time) is admitted onto N devices
// using the peak-memory and iteration-time estimates a single
// deterministic dry run of the memmgr runtime produces
// (internal/memmgr.Estimate).
//
// The model:
//
//   - Admission control. A job is admitted to a device only when its
//     predicted pool peak fits the device's remaining capacity; a job
//     whose dry run cannot fit an idle device at all is rejected up
//     front. Because every manager's Result is bit-reproducible, the
//     prediction is exact — an admitted job can never OOM its device.
//   - Capacity sharing. Admitted jobs reserve their peak for their
//     whole residency; the sum of reservations never exceeds the
//     device capacity (asserted after every admission).
//   - Compute interleaving. Each device owns one serial sim.Engine;
//     resident jobs time-share it round-robin, one training iteration
//     at a time, so their virtual-time schedules interleave exactly
//     like streams multiplexed on one GPU.
//   - Preemption. Preemptive policies may evict strictly
//     lower-priority residents at an iteration boundary; the victim
//     keeps its completed iterations, releases its reservation, and
//     re-enters the pending queue.
//   - Gang scheduling. A Job with GPUs=N is a synchronous
//     data-parallel gang: admission reserves its per-device dry-run
//     peak on N devices at once or not at all, each iteration occupies
//     all N engines simultaneously, its duration is the replica
//     iteration plus the exposed part of a bucketed ring all-reduce
//     priced by the slowest interconnect tier inside the placed gang
//     (Cluster.Topology), and preemption releases the whole gang
//     atomically at an iteration boundary.
//
// The whole simulation is a discrete-event loop over a typed
// (time, class, sequence) event queue (see run.go), so two runs of the
// same trace produce byte-identical results — and a paused, resumed or
// snapshot-restored run (see Incremental) cannot diverge from a batch
// run, because both drive the same exec through the same total event
// order.
package sched

import (
	"fmt"
	"log/slog"

	"repro/internal/hw"
	"repro/internal/memmgr"
	"repro/internal/sim"
)

// Job is one training-job request in the workload stream.
type Job struct {
	// ID names the job in reports; it must be unique within a trace.
	ID string
	// Network and Batch select the model (see superneurons.Networks).
	Network string
	Batch   int
	// BatchSchedule, when non-empty, declares a dynamic per-iteration
	// batch schedule (iteration i runs at entry i mod len). Admission
	// then reserves the worst-case shape — the maximum dry-run peak
	// over the schedule's distinct batches — so a dynamic job can
	// never OOM its device mid-run, while each iteration is charged
	// its own shape's duration.
	BatchSchedule []int
	// GPUs is the gang size: the number of devices the job occupies
	// simultaneously as a synchronous data-parallel gang (0 and 1 both
	// mean a single device). Batch is the per-GPU batch; admission is
	// all-or-nothing — the job reserves its per-device dry-run peak on
	// every gang member or waits — and each iteration adds the exposed
	// part of a bucketed ring all-reduce priced by the slowest
	// interconnect tier inside the placed gang.
	GPUs int
	// Manager names the internal/memmgr policy the job trains under
	// ("superneurons", "vdnn", "naive", ...; empty runs the
	// flag-driven default, the naive baseline).
	Manager string
	// Priority orders jobs under the priority policy; higher is more
	// important.
	Priority int
	// Arrival is when the request enters the cluster.
	Arrival sim.Time
	// Iterations is the job's training length (defaults to 1).
	Iterations int
}

// Cluster describes a homogeneous pool of simulated devices.
type Cluster struct {
	// Device is the per-GPU profile; capacity per device is its
	// usable bytes.
	Device hw.DeviceSpec
	// Devices is the pool size.
	Devices int
	// Topology classifies device pairs into interconnect tiers
	// (NVLink island / same-node PCIe / cross-node network) for gang
	// placement and all-reduce pricing. The zero value is one flat
	// PCIe-peer node — the historical single-tier cluster.
	Topology hw.Topology
	// Overlap overlaps each gang's gradient all-reduce with the
	// backward half of its iteration (the bucketed exchange); when
	// false gangs serialize compute then communicate.
	Overlap bool

	// CrossJob replaces worst-case-in-isolation admission with the
	// interference-aware device planner (internal/memplan): co-resident
	// jobs on a device are planned together — the device reserves the
	// planner's requirement (shared slabs plus the worst case over the
	// running tenant, not the sum of solo peaks), parked jobs' floors
	// may spill to a per-device host pool, and each spilled tenant pays
	// a per-iteration swap penalty. Admission still never over-commits:
	// a placement is taken only when the combined plan fits, so the
	// never-OOM guarantee is preserved by construction.
	CrossJob bool
	// HostSpillBytes bounds each device's host-side spill pool under
	// CrossJob (0 selects the 64 GiB default). Ignored otherwise.
	HostSpillBytes int64

	// Faults scripts deterministic device failures and recoveries (see
	// fault.go); the zero value is the historical always-healthy
	// cluster. Victims of a failure restore from their last
	// iteration-boundary checkpoint, gangs shrinking elastically to
	// their surviving members when they can.
	Faults FaultPlan
}

// Capacity returns the per-device memory capacity.
func (c Cluster) Capacity() int64 { return c.Device.UsableBytes }

// JobResult is the per-job outcome of one scheduled trace.
type JobResult struct {
	Job
	// Estimate is the dry-run prediction used for admission.
	Estimate memmgr.Estimate
	// Rejected is set when the job cannot fit an idle device at all;
	// Reason says why. Rejected jobs have no timing fields.
	Rejected bool
	Reason   string

	// Device is where the job last ran (the gang's first device for a
	// multi-GPU job).
	Device int
	// Gang lists the devices of the job's last placement, ascending;
	// nil for single-device jobs.
	Gang []int
	// Start is the first admission; Finish the completion of the last
	// iteration.
	Start  sim.Time
	Finish sim.Time
	// Wait is Start-Arrival (queueing delay); JCT is Finish-Arrival.
	Wait sim.Duration
	JCT  sim.Duration
	// Preemptions counts how often the job was evicted and re-queued.
	Preemptions int
	// Restores counts device-failure checkpoint restores: each is one
	// resumption from the last completed iteration boundary, whether
	// by elastic gang shrink or full re-queue through admission.
	Restores int
	// Shrinks counts elastic gang shrinks — failures this job survived
	// by dropping the failed member and re-pricing its all-reduce over
	// the survivors, instead of being evicted.
	Shrinks int
	// LostIterations counts iterations aborted in flight by a device
	// failure; each was re-run from the checkpoint.
	LostIterations int
}

// DeviceStat aggregates one device over the schedule.
type DeviceStat struct {
	// Busy is the compute engine's busy time; BusyFrac is Busy over
	// the makespan.
	Busy     sim.Duration
	BusyFrac float64
	// PeakReserved is the high-water mark of memory reservations.
	PeakReserved int64
	// MemUtil is the time-weighted fraction of capacity reserved.
	MemUtil float64
	// Iterations counts training iterations executed on the device.
	Iterations int
	// PeakResidents is the maximum number of co-resident jobs the
	// device held at once — the co-tenancy interference-aware admission
	// buys (isolated admission caps it at what sum-of-peaks allows).
	PeakResidents int
	// SpillPeak is the high-water mark of the device's host-side spill
	// pool (always zero without Cluster.CrossJob).
	SpillPeak int64
	// Failures counts the device's scripted failure events; Downtime
	// is the total time spent failed (an outage still open at end of
	// trace is charged through the makespan).
	Failures int
	Downtime sim.Duration
}

// Result is the outcome of scheduling one trace on a cluster.
type Result struct {
	Policy  string
	Cluster Cluster

	// Jobs holds every job in input order (including rejected ones).
	Jobs []JobResult
	// Makespan is the completion time of the last job.
	Makespan sim.Duration
	// Devices holds per-device statistics.
	Devices []DeviceStat
	// Utilization is the cluster memory utilization: the
	// time-weighted fraction of total cluster capacity reserved by
	// admitted jobs over the makespan — the bin-packing objective a
	// memory-aware policy maximizes.
	Utilization float64
	// ComputeUtilization is the matching compute-busy fraction.
	ComputeUtilization float64
}

// Admitted returns the scheduled (non-rejected) jobs.
func (r *Result) Admitted() []JobResult {
	out := make([]JobResult, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if !j.Rejected {
			out = append(out, j)
		}
	}
	return out
}

// MeanJCT returns the mean job completion time over admitted jobs.
func (r *Result) MeanJCT() sim.Duration {
	adm := r.Admitted()
	if len(adm) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, j := range adm {
		sum += j.JCT
	}
	return sum / sim.Duration(len(adm))
}

// MeanWait returns the mean queueing delay over admitted jobs.
func (r *Result) MeanWait() sim.Duration {
	adm := r.Admitted()
	if len(adm) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, j := range adm {
		sum += j.Wait
	}
	return sum / sim.Duration(len(adm))
}

// Scheduler binds a cluster to a policy. It owns the dry-run estimate
// memo: repeated Run calls on one scheduler share estimates, while two
// schedulers (or clusters) never leak state into each other.
type Scheduler struct {
	cluster Cluster
	policy  Policy
	est     *Estimator
	lg      *slog.Logger
}

// SetLogger routes structured scheduling events (admissions,
// preemptions, rejections, spill decisions) to lg; nil discards them.
// Logging is observation only — it never affects the schedule.
func (s *Scheduler) SetLogger(lg *slog.Logger) { s.lg = lg }

// NewScheduler returns a scheduler placing jobs on the cluster under
// the policy.
func NewScheduler(c Cluster, p Policy) (*Scheduler, error) {
	if c.Devices <= 0 {
		return nil, fmt.Errorf("sched: cluster needs at least one device, got %d", c.Devices)
	}
	if c.Device.UsableBytes <= 0 {
		return nil, fmt.Errorf("sched: device %q has no usable memory", c.Device.Name)
	}
	if p.Less == nil {
		return nil, fmt.Errorf("sched: policy %q has no queue order", p.Name)
	}
	if err := c.Faults.Validate(c.Devices); err != nil {
		return nil, err
	}
	return &Scheduler{cluster: c, policy: p, est: NewEstimator()}, nil
}

// Estimator exposes the scheduler's dry-run memo, so callers replaying
// several policies over one cluster can share it (see
// NewSchedulerWithEstimator).
func (s *Scheduler) Estimator() *Estimator { return s.est }

// NewSchedulerWithEstimator is NewScheduler with a caller-provided
// estimate memo, letting policy comparisons over the same cluster pay
// for each distinct job shape's dry run once.
func NewSchedulerWithEstimator(c Cluster, p Policy, e *Estimator) (*Scheduler, error) {
	s, err := NewScheduler(c, p)
	if err != nil {
		return nil, err
	}
	if e != nil {
		s.est = e
	}
	return s, nil
}

// Run replays the job stream through the cluster and returns the
// schedule. The input slice is not mutated; jobs are identified by
// input order for every deterministic tie-break.
func (s *Scheduler) Run(jobs []Job) (*Result, error) {
	e, err := newExec(s.cluster, s.policy, s.est)
	if err != nil {
		return nil, err
	}
	e.setLogger(s.lg)
	// Dry-run every job's distinct shapes once for its admission
	// estimate; jobs whose worst-case shape cannot fit an idle device
	// are rejected up front. A dynamic job reserves its worst case for
	// its whole residency — the memory guarantee — while each
	// iteration is charged its own shape's measured duration.
	for _, j := range jobs {
		if _, err := e.addJob(j); err != nil {
			return nil, err
		}
	}
	// Arrivals, in input order for same-instant determinism; then the
	// scripted fault events (their class orders them after arrivals
	// and completions at equal instants).
	for i := range e.states {
		e.postArrival(i)
	}
	e.postFaults()
	e.processUntil(-1)
	return e.result()
}

// isOOM reports whether the dry run failed for capacity reasons.
func isOOM(err error) bool {
	return err != nil && errOOM(err)
}
