// Package sched is a deterministic multi-tenant job scheduler over a
// simulated GPU cluster. SuperNeurons manages memory for one training
// job on one device; sched opens the multi-workload scenario class on
// top of it: a stream of training-job requests (network, batch,
// memory manager, priority, arrival time) is admitted onto N devices
// using the peak-memory and iteration-time estimates a single
// deterministic dry run of the memmgr runtime produces
// (internal/memmgr.Estimate).
//
// The model:
//
//   - Admission control. A job is admitted to a device only when its
//     predicted pool peak fits the device's remaining capacity; a job
//     whose dry run cannot fit an idle device at all is rejected up
//     front. Because every manager's Result is bit-reproducible, the
//     prediction is exact — an admitted job can never OOM its device.
//   - Capacity sharing. Admitted jobs reserve their peak for their
//     whole residency; the sum of reservations never exceeds the
//     device capacity (asserted after every admission).
//   - Compute interleaving. Each device owns one serial sim.Engine;
//     resident jobs time-share it round-robin, one training iteration
//     at a time, so their virtual-time schedules interleave exactly
//     like streams multiplexed on one GPU.
//   - Preemption. Preemptive policies may evict strictly
//     lower-priority residents at an iteration boundary; the victim
//     keeps its completed iterations, releases its reservation, and
//     re-enters the pending queue.
//
// The whole simulation is a discrete-event loop over sim.Agenda, so
// two runs of the same trace produce byte-identical results.
package sched

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/memmgr"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Job is one training-job request in the workload stream.
type Job struct {
	// ID names the job in reports; it must be unique within a trace.
	ID string
	// Network and Batch select the model (see superneurons.Networks).
	Network string
	Batch   int
	// BatchSchedule, when non-empty, declares a dynamic per-iteration
	// batch schedule (iteration i runs at entry i mod len). Admission
	// then reserves the worst-case shape — the maximum dry-run peak
	// over the schedule's distinct batches — so a dynamic job can
	// never OOM its device mid-run, while each iteration is charged
	// its own shape's duration.
	BatchSchedule []int
	// Manager names the internal/memmgr policy the job trains under
	// ("superneurons", "vdnn", "naive", ...; empty runs the
	// flag-driven default, the naive baseline).
	Manager string
	// Priority orders jobs under the priority policy; higher is more
	// important.
	Priority int
	// Arrival is when the request enters the cluster.
	Arrival sim.Time
	// Iterations is the job's training length (defaults to 1).
	Iterations int
}

// Cluster describes a homogeneous pool of simulated devices.
type Cluster struct {
	// Device is the per-GPU profile; capacity per device is its
	// usable bytes.
	Device hw.DeviceSpec
	// Devices is the pool size.
	Devices int
}

// Capacity returns the per-device memory capacity.
func (c Cluster) Capacity() int64 { return c.Device.UsableBytes }

// JobResult is the per-job outcome of one scheduled trace.
type JobResult struct {
	Job
	// Estimate is the dry-run prediction used for admission.
	Estimate memmgr.Estimate
	// Rejected is set when the job cannot fit an idle device at all;
	// Reason says why. Rejected jobs have no timing fields.
	Rejected bool
	Reason   string

	// Device is where the job last ran.
	Device int
	// Start is the first admission; Finish the completion of the last
	// iteration.
	Start  sim.Time
	Finish sim.Time
	// Wait is Start-Arrival (queueing delay); JCT is Finish-Arrival.
	Wait sim.Duration
	JCT  sim.Duration
	// Preemptions counts how often the job was evicted and re-queued.
	Preemptions int
}

// DeviceStat aggregates one device over the schedule.
type DeviceStat struct {
	// Busy is the compute engine's busy time; BusyFrac is Busy over
	// the makespan.
	Busy     sim.Duration
	BusyFrac float64
	// PeakReserved is the high-water mark of memory reservations.
	PeakReserved int64
	// MemUtil is the time-weighted fraction of capacity reserved.
	MemUtil float64
	// Iterations counts training iterations executed on the device.
	Iterations int
}

// Result is the outcome of scheduling one trace on a cluster.
type Result struct {
	Policy  string
	Cluster Cluster

	// Jobs holds every job in input order (including rejected ones).
	Jobs []JobResult
	// Makespan is the completion time of the last job.
	Makespan sim.Duration
	// Devices holds per-device statistics.
	Devices []DeviceStat
	// Utilization is the cluster memory utilization: the
	// time-weighted fraction of total cluster capacity reserved by
	// admitted jobs over the makespan — the bin-packing objective a
	// memory-aware policy maximizes.
	Utilization float64
	// ComputeUtilization is the matching compute-busy fraction.
	ComputeUtilization float64
}

// Admitted returns the scheduled (non-rejected) jobs.
func (r *Result) Admitted() []JobResult {
	out := make([]JobResult, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if !j.Rejected {
			out = append(out, j)
		}
	}
	return out
}

// MeanJCT returns the mean job completion time over admitted jobs.
func (r *Result) MeanJCT() sim.Duration {
	adm := r.Admitted()
	if len(adm) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, j := range adm {
		sum += j.JCT
	}
	return sum / sim.Duration(len(adm))
}

// MeanWait returns the mean queueing delay over admitted jobs.
func (r *Result) MeanWait() sim.Duration {
	adm := r.Admitted()
	if len(adm) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, j := range adm {
		sum += j.Wait
	}
	return sum / sim.Duration(len(adm))
}

// jobState is the scheduler's mutable view of one job.
type jobState struct {
	Job
	seq int // input order, the deterministic tie-breaker
	// est is the admission estimate: for dynamic jobs, the worst case
	// over the schedule's distinct shapes.
	est memmgr.Estimate
	// iterTimes holds the per-schedule-position iteration durations
	// (one entry for static jobs).
	iterTimes []sim.Duration
	remaining int
	device    int
	started   bool
	start     sim.Time
	finish    sim.Time
	preempts  int
	// marked is set when a preemptive policy has chosen this job as a
	// victim; it vacates at its next iteration boundary.
	marked bool
	// running is set while an iteration is in flight on the engine.
	running bool
}

// device is the scheduler's mutable view of one GPU.
type device struct {
	engine   *sim.Engine
	used     int64
	peak     int64
	resident []*jobState
	rr       int // round-robin cursor into resident
	inflight bool
	iters    int

	// memIntegral accumulates used×dt for the memory-utilization
	// metric; lastT is the time of its last update.
	memIntegral float64
	lastT       sim.Time
}

func (d *device) setUsed(now sim.Time, delta int64) {
	d.memIntegral += float64(d.used) * float64(now-d.lastT)
	d.lastT = now
	d.used += delta
	if d.used > d.peak {
		d.peak = d.used
	}
}

// Scheduler binds a cluster to a policy. It owns the dry-run estimate
// memo: repeated Run calls on one scheduler share estimates, while two
// schedulers (or clusters) never leak state into each other.
type Scheduler struct {
	cluster Cluster
	policy  Policy
	est     *Estimator
}

// NewScheduler returns a scheduler placing jobs on the cluster under
// the policy.
func NewScheduler(c Cluster, p Policy) (*Scheduler, error) {
	if c.Devices <= 0 {
		return nil, fmt.Errorf("sched: cluster needs at least one device, got %d", c.Devices)
	}
	if c.Device.UsableBytes <= 0 {
		return nil, fmt.Errorf("sched: device %q has no usable memory", c.Device.Name)
	}
	if p.Less == nil {
		return nil, fmt.Errorf("sched: policy %q has no queue order", p.Name)
	}
	return &Scheduler{cluster: c, policy: p, est: NewEstimator()}, nil
}

// Estimator exposes the scheduler's dry-run memo, so callers replaying
// several policies over one cluster can share it (see
// NewSchedulerWithEstimator).
func (s *Scheduler) Estimator() *Estimator { return s.est }

// NewSchedulerWithEstimator is NewScheduler with a caller-provided
// estimate memo, letting policy comparisons over the same cluster pay
// for each distinct job shape's dry run once.
func NewSchedulerWithEstimator(c Cluster, p Policy, e *Estimator) (*Scheduler, error) {
	s, err := NewScheduler(c, p)
	if err != nil {
		return nil, err
	}
	if e != nil {
		s.est = e
	}
	return s, nil
}

// Run replays the job stream through the cluster and returns the
// schedule. The input slice is not mutated; jobs are identified by
// input order for every deterministic tie-break.
func (s *Scheduler) Run(jobs []Job) (*Result, error) {
	cap := s.cluster.Capacity()

	// Dry-run every job's distinct shapes once for its admission
	// estimate; jobs whose worst-case shape cannot fit an idle device
	// are rejected up front. A dynamic job reserves its worst case for
	// its whole residency — the memory guarantee — while each
	// iteration is charged its own shape's measured duration.
	states := make([]*jobState, len(jobs))
	rejected := make(map[int]string)
	for i, j := range jobs {
		if j.Iterations <= 0 {
			j.Iterations = 1
		}
		if j.ID == "" {
			j.ID = fmt.Sprintf("job%d", i)
		}
		batches := []int{j.Batch}
		if len(j.BatchSchedule) > 0 {
			sched := workload.Schedule(j.BatchSchedule)
			if err := sched.Validate(); err != nil {
				return nil, fmt.Errorf("sched: job %s: %w", j.ID, err)
			}
			batches = sched.Distinct()
		}
		perBatch := make(map[int]memmgr.Estimate, len(batches))
		var worst memmgr.Estimate
		rejReason := ""
		for _, b := range batches {
			est, err := s.est.Estimate(j.Network, b, j.Manager, s.cluster.Device)
			if err != nil {
				if isOOM(err) {
					rejReason = fmt.Sprintf("batch %d exceeds device memory even alone", b)
					break
				}
				return nil, fmt.Errorf("sched: job %s: %w", j.ID, err)
			}
			perBatch[b] = est
			if est.PeakBytes > worst.PeakBytes {
				worst = est
			}
		}
		if rejReason != "" {
			rejected[i] = rejReason
			states[i] = &jobState{Job: j, seq: i}
			continue
		}
		if worst.PeakBytes > cap {
			rejected[i] = fmt.Sprintf("predicted worst-case peak %d exceeds device capacity %d", worst.PeakBytes, cap)
		}
		iterTimes := []sim.Duration{worst.IterTime}
		if len(j.BatchSchedule) > 0 {
			iterTimes = make([]sim.Duration, len(j.BatchSchedule))
			for k, b := range j.BatchSchedule {
				iterTimes[k] = perBatch[b].IterTime
			}
		}
		states[i] = &jobState{Job: j, seq: i, est: worst, iterTimes: iterTimes, remaining: j.Iterations, device: -1}
	}

	tl := sim.NewTimeline()
	devs := make([]*device, s.cluster.Devices)
	for i := range devs {
		devs[i] = &device{engine: tl.NewEngine(fmt.Sprintf("gpu%d", i))}
	}

	var (
		agenda  sim.Agenda
		pending []*jobState
		runErr  error
	)

	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	// admit reserves the job's peak on the device and dispatches the
	// engine if idle.
	var dispatch func(d *device, now sim.Time)
	admit := func(js *jobState, di int, now sim.Time) {
		d := devs[di]
		d.setUsed(now, js.est.PeakBytes)
		if d.used > cap {
			fail(fmt.Errorf("sched: admission overflow on gpu%d: %d > capacity %d (job %s)", di, d.used, cap, js.ID))
		}
		d.resident = append(d.resident, js)
		js.device = di
		if !js.started {
			js.started = true
			js.start = now
		}
		dispatch(d, now)
	}

	// vacate releases the job's reservation and drops it from the
	// device's resident set.
	vacate := func(js *jobState, now sim.Time) {
		d := devs[js.device]
		for i, r := range d.resident {
			if r == js {
				d.resident = append(d.resident[:i], d.resident[i+1:]...)
				if d.rr > i {
					d.rr--
				}
				break
			}
		}
		if len(d.resident) > 0 {
			d.rr %= len(d.resident)
		} else {
			d.rr = 0
		}
		d.setUsed(now, -js.est.PeakBytes)
	}

	// dispatch submits the next resident iteration round-robin when
	// the engine is idle.
	dispatch = func(d *device, now sim.Time) {
		if d.inflight || len(d.resident) == 0 {
			return
		}
		n := len(d.resident)
		for k := 0; k < n; k++ {
			js := d.resident[(d.rr+k)%n]
			if js.marked || js.remaining <= 0 {
				continue
			}
			d.rr = (d.rr + k + 1) % n
			d.inflight = true
			js.running = true
			ev := d.engine.Submit(now, js.iterDur())
			agenda.Post(ev.At(), func(t sim.Time) { iterDone(&pending, js, d, t, admit, vacate, dispatch, s.policy, devs, cap) })
			return
		}
	}

	schedule := func(now sim.Time) {
		s.policy.schedule(&pending, devs, cap, now, admit, vacate)
	}

	// Arrivals, in input order for same-instant determinism.
	for i, js := range states {
		if _, ok := rejected[i]; ok {
			js.remaining = 0
			continue
		}
		j := js
		agenda.Post(j.Arrival, func(t sim.Time) {
			pending = append(pending, j)
			schedule(t)
		})
	}

	end := agenda.Drain()
	if runErr != nil {
		return nil, runErr
	}
	for _, js := range states {
		if _, rej := rejected[js.seq]; rej {
			continue
		}
		if js.remaining > 0 {
			return nil, fmt.Errorf("sched: job %s stranded with %d iterations left (scheduler deadlock)", js.ID, js.remaining)
		}
	}

	res := &Result{Policy: s.policy.Name, Cluster: s.cluster}
	for i, js := range states {
		jr := JobResult{Job: js.Job, Estimate: js.est}
		if reason, rej := rejected[i]; rej {
			jr.Rejected = true
			jr.Reason = reason
			jr.Device = -1
		} else {
			jr.Device = js.device
			jr.Start = js.start
			jr.Finish = js.finish
			jr.Wait = sim.Duration(js.start - js.Arrival)
			jr.JCT = sim.Duration(js.finish - js.Arrival)
			jr.Preemptions = js.preempts
		}
		res.Jobs = append(res.Jobs, jr)
	}
	res.Makespan = sim.Duration(end)
	res.Devices = make([]DeviceStat, len(devs))
	var busySum sim.Duration
	var memSum float64
	for i, d := range devs {
		d.setUsed(end, 0) // close the integral
		st := DeviceStat{Busy: d.engine.BusyTime(), PeakReserved: d.peak, Iterations: d.iters}
		if end > 0 {
			st.BusyFrac = float64(st.Busy) / float64(end)
			st.MemUtil = d.memIntegral / (float64(cap) * float64(end))
		}
		res.Devices[i] = st
		busySum += st.Busy
		memSum += d.memIntegral
	}
	if end > 0 {
		res.Utilization = memSum / (float64(cap) * float64(len(devs)) * float64(end))
		res.ComputeUtilization = float64(busySum) / (float64(len(devs)) * float64(end))
	}
	return res, nil
}

// iterDur returns the duration of the job's next iteration: completed
// iterations index the batch schedule, cycling past its end (static
// jobs have a single entry).
func (js *jobState) iterDur() sim.Duration {
	done := js.Iterations - js.remaining
	return js.iterTimes[done%len(js.iterTimes)]
}

// iterDone handles one iteration-completion event.
func iterDone(pending *[]*jobState, js *jobState, d *device, now sim.Time,
	admit func(*jobState, int, sim.Time), vacate func(*jobState, sim.Time),
	dispatch func(*device, sim.Time), p Policy, devs []*device, cap int64) {
	d.inflight = false
	d.iters++
	js.running = false
	js.remaining--
	switch {
	case js.remaining == 0:
		js.finish = now
		vacate(js, now)
	case js.marked:
		// Preempted at the iteration boundary: keep the completed
		// iterations, release the reservation, re-queue.
		js.marked = false
		js.preempts++
		vacate(js, now)
		js.device = -1
		*pending = append(*pending, js)
	}
	p.schedule(pending, devs, cap, now, admit, vacate)
	dispatch(d, now)
}

// isOOM reports whether the dry run failed for capacity reasons.
func isOOM(err error) bool {
	return err != nil && errOOM(err)
}
