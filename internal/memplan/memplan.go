// Package memplan is the device-level memory planner for co-resident
// training jobs: the lift of per-job adaptive planning (memmgr.Adaptive)
// to tensor-granularity planning ACROSS jobs, the scenario TENSILE
// targets. Where admission-by-isolation reserves every job's solo peak
// for its whole residency (sum-of-isolated-peaks), the planner exploits
// two structural facts of a shared device:
//
//  1. The compute engine is serial: co-tenant iterations interleave one
//     at a time, and a job's functional tensors (activations, gradients,
//     workspaces) are freed at its iteration epilogue. Between its
//     iterations a job only pins its persistent floor (parameters,
//     parameter gradients, auxiliary state). So the device never needs
//     Σ peaks — it needs the worst case over the running job of
//     (that job's peak + the parked co-tenants' floors).
//
//  2. Functional tensor slabs are content-free between uses: a shape
//     two co-tenants both declare (identical workspace or activation
//     shapes, keyed shape+dtype via tcache.ShapeKey) needs ONE shared
//     reservation, not one per job — the running job is the only one
//     with the shape materialized.
//
// Beyond that, each device owns one shared host-side spill pool: when
// even the floors do not fit, parked jobs' floors are spilled to the
// host in a single global order (largest floor first, ties by job ID),
// and each spilled job pays a per-iteration swap penalty of one
// round-trip of its floor over the host link — the AccUDNN economics:
// strictly more co-tenants admitted, each iteration possibly slower.
//
// Every planner decision is a pure function of the member demand SET
// (members are folded in job-ID order, not insertion order), so a
// snapshot-restored planner that re-admits the same members reproduces
// the same grants bit for bit, and two replays of the same trace make
// identical decisions at any co-tenancy level — determinism is
// load-bearing for the never-OOM admission guarantee.
package memplan

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/tcache"
)

// TensorDemand is one tensor-granularity demand entry: a shareable
// functional shape the job materializes every iteration.
type TensorDemand struct {
	// Key identifies shape+dtype (tcache.ShapeKey); equal keys mean
	// interchangeable reservations of equal Bytes.
	Key   uint64
	Bytes int64
	// Width is the element byte width (mixed-precision tensors with
	// distinct widths never share a slab; the key covers it).
	Width int
	// NextUse is the reuse distance in program steps — how soon after
	// materialization the shape is read again. Larger distances make
	// better lending candidates; the planner's escalation order
	// consults it.
	NextUse int
}

// Demand is one job's declared memory demand on a device, extracted
// from the deterministic dry run that also prices admission.
type Demand struct {
	// Job names the tenant; unique on a device.
	Job string
	// PeakBytes is the solo running peak (dry-run exact, includes the
	// floor); FloorBytes the incompressible between-iteration residue
	// (persistent state).
	PeakBytes  int64
	FloorBytes int64
	// SpillBytes is the job's own per-iteration offload+prefetch
	// traffic under its solo plan — its standing claim on the host
	// link.
	SpillBytes int64
	// IterTime is the solo iteration duration.
	IterTime sim.Duration
	// Tensors lists the job's largest shareable functional shapes.
	Tensors []TensorDemand
}

// Grant is the planner's answer to one member's demand under the
// current co-tenancy.
type Grant struct {
	// SpilledBytes is how much of the job's floor is parked in the
	// device's host-side spill pool while the job is between
	// iterations (0 = fully resident).
	SpilledBytes int64
	// SwapPenalty is the per-iteration cost of the spill: one
	// round-trip of the spilled bytes over the host link.
	SwapPenalty sim.Duration
	// SharedBytes is how much of the job's peak rides on reservations
	// shared with co-tenants (lifted into the device-wide slab charge).
	SharedBytes int64
}

// Ladder levels the planner may direct its clients toward; they mirror
// memmgr.Adaptive's plan-aggressiveness ladder.
const (
	// DirectiveNone leaves the client's own plan alone.
	DirectiveNone = 0
	// DirectiveOffload asks the client to run at least the
	// offload+prefetch level.
	DirectiveOffload = 2
	// DirectiveRecompute asks for the widest plan including
	// recomputation.
	DirectiveRecompute = 3
)

// Planner owns one device's co-tenancy plan: the member demands, the
// shared-slab accounting, the spill-pool allocation and the derived
// reservation requirement.
type Planner struct {
	cap      int64
	spillCap int64
	link     hw.LinkSpec

	members []Demand // maintained sorted by Job ascending
	state   planState
}

// planState is the derived plan for one member set.
type planState struct {
	requirement int64
	spillUsed   int64
	slabBytes   int64
	sharedSaved int64
	stats       tcache.SharedStats
	grants      map[string]Grant
	feasible    bool
}

// New returns a planner for a device with the given GPU capacity, host
// spill-pool capacity, and host link.
func New(capBytes, spillBytes int64, link hw.LinkSpec) (*Planner, error) {
	if capBytes <= 0 {
		return nil, fmt.Errorf("memplan: device capacity must be positive, got %d", capBytes)
	}
	if spillBytes < 0 {
		return nil, fmt.Errorf("memplan: spill pool capacity must be non-negative, got %d", spillBytes)
	}
	if link.BytesPerSec <= 0 {
		link = hw.PCIePinned
	}
	p := &Planner{cap: capBytes, spillCap: spillBytes, link: link}
	p.state = plan(nil, capBytes, spillBytes, link)
	return p, nil
}

// plan derives the co-tenancy plan for a member demand set. It is a
// pure function: members are folded in job-ID order regardless of how
// the slice is ordered, so the same set always yields the same plan.
func plan(members []Demand, capBytes, spillCap int64, link hw.LinkSpec) planState {
	st := planState{grants: make(map[string]Grant, len(members)), feasible: true}
	if len(members) == 0 {
		return st
	}
	ordered := append([]Demand(nil), members...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Job < ordered[j].Job })

	// Pass 1: cross-job shared reservations. Every member acquires its
	// shareable shapes in the registry; shapes held by ≥2 tenants are
	// lifted out of each holder's peak into one device-wide slab
	// charge.
	reg := tcache.NewShared()
	for _, m := range ordered {
		for _, td := range m.Tensors {
			// Acquire cannot fail here: keys come from ShapeKey so
			// bytes are consistent per key, and demands are validated
			// on entry.
			_, _ = reg.Acquire(td.Key, td.Bytes)
		}
	}
	effPeak := make([]int64, len(ordered))
	sharedOf := make([]int64, len(ordered))
	slabSeen := make(map[uint64]bool)
	for i, m := range ordered {
		var lifted int64
		for _, td := range m.Tensors {
			if reg.Refs(td.Key) >= 2 {
				lifted += td.Bytes
				if !slabSeen[td.Key] {
					slabSeen[td.Key] = true
					st.slabBytes += td.Bytes
				}
			}
		}
		ep := m.PeakBytes - lifted
		if ep < m.FloorBytes {
			ep = m.FloorBytes
		}
		effPeak[i] = ep
		sharedOf[i] = lifted
	}
	st.sharedSaved = reg.SavedBytes()
	st.stats = reg.Stats()

	// Pass 2: spill selection. Start with every floor resident;
	// requirement R = slab + max_j (effPeak_j + Σ floors of the OTHER
	// resident members). While R exceeds capacity, spill the resident
	// member with the largest floor (ties to the lower job ID) into
	// the host pool, which removes its floor from every other member's
	// term at the price of a per-iteration swap round-trip.
	spilled := make([]bool, len(ordered))
	requirement := func() int64 {
		var floors int64
		for i, m := range ordered {
			if !spilled[i] {
				floors += m.FloorBytes
			}
		}
		var worst int64
		for i, m := range ordered {
			term := effPeak[i] + floors
			if !spilled[i] {
				term -= m.FloorBytes
			}
			if term > worst {
				worst = term
			}
		}
		return st.slabBytes + worst
	}
	r := requirement()
	for r > capBytes {
		victim := -1
		for i, m := range ordered {
			if spilled[i] || m.FloorBytes <= 0 {
				continue
			}
			if st.spillUsed+m.FloorBytes > spillCap {
				continue
			}
			if victim == -1 || m.FloorBytes > ordered[victim].FloorBytes {
				victim = i
			}
		}
		if victim == -1 {
			break
		}
		spilled[victim] = true
		st.spillUsed += ordered[victim].FloorBytes
		r = requirement()
	}
	st.requirement = r
	st.feasible = r <= capBytes

	for i, m := range ordered {
		g := Grant{SharedBytes: sharedOf[i]}
		if spilled[i] {
			g.SpilledBytes = m.FloorBytes
			g.SwapPenalty = 2 * link.TransferTime(m.FloorBytes)
		}
		st.grants[m.Job] = g
	}
	return st
}

// validate rejects malformed demands before they can corrupt the plan.
func validate(d Demand) error {
	if d.Job == "" {
		return fmt.Errorf("memplan: demand without a job id")
	}
	if d.PeakBytes <= 0 {
		return fmt.Errorf("memplan: job %s: peak must be positive, got %d", d.Job, d.PeakBytes)
	}
	if d.FloorBytes < 0 || d.FloorBytes > d.PeakBytes {
		return fmt.Errorf("memplan: job %s: floor %d outside [0, peak %d]", d.Job, d.FloorBytes, d.PeakBytes)
	}
	if d.SpillBytes < 0 {
		return fmt.Errorf("memplan: job %s: negative spill traffic %d", d.Job, d.SpillBytes)
	}
	var tb int64
	for _, td := range d.Tensors {
		if td.Bytes <= 0 {
			return fmt.Errorf("memplan: job %s: tensor demand of %d bytes", d.Job, td.Bytes)
		}
		tb += td.Bytes
	}
	if tb > d.PeakBytes {
		return fmt.Errorf("memplan: job %s: shareable tensors (%d bytes) exceed the peak (%d)", d.Job, tb, d.PeakBytes)
	}
	return nil
}

// Member reports whether job is currently planned on this device —
// the membership probe an elastic gang shrink runs on every surviving
// member before committing to the smaller gang.
func (p *Planner) Member(job string) bool { return p.find(job) >= 0 }

// find returns the member index of job, or -1.
func (p *Planner) find(job string) int {
	for i := range p.members {
		if p.members[i].Job == job {
			return i
		}
	}
	return -1
}

// Headroom reports the device capacity left after hypothetically
// admitting d alongside the current members, and whether the combined
// plan is feasible at all. It never mutates the plan. A negative
// headroom is never returned: ok=false covers infeasibility.
func (p *Planner) Headroom(d Demand) (int64, bool) {
	if err := validate(d); err != nil {
		return 0, false
	}
	if p.find(d.Job) >= 0 {
		return 0, false
	}
	st := plan(append(append([]Demand(nil), p.members...), d), p.cap, p.spillCap, p.link)
	if !st.feasible {
		return 0, false
	}
	return p.cap - st.requirement, true
}

// HeadroomWithout is Headroom with some members hypothetically evicted
// — the preemption-viability probe: would d fit if every member the
// exclude predicate names were vacated?
func (p *Planner) HeadroomWithout(exclude func(job string) bool, d Demand) (int64, bool) {
	if err := validate(d); err != nil {
		return 0, false
	}
	kept := make([]Demand, 0, len(p.members)+1)
	for _, m := range p.members {
		if m.Job != d.Job && !exclude(m.Job) {
			kept = append(kept, m)
		}
	}
	st := plan(append(kept, d), p.cap, p.spillCap, p.link)
	if !st.feasible {
		return 0, false
	}
	return p.cap - st.requirement, true
}

// Admit adds d to the member set and replans. It fails — leaving the
// plan untouched — when the combined set cannot fit even with the
// spill pool: admission control must have probed Headroom first, so a
// failure here is a caller bug surfacing, not a scheduling outcome.
func (p *Planner) Admit(d Demand) (Grant, error) {
	if err := validate(d); err != nil {
		return Grant{}, err
	}
	if p.find(d.Job) >= 0 {
		return Grant{}, fmt.Errorf("memplan: job %s already admitted", d.Job)
	}
	next := append(append([]Demand(nil), p.members...), d)
	st := plan(next, p.cap, p.spillCap, p.link)
	if !st.feasible {
		return Grant{}, fmt.Errorf("memplan: job %s does not fit: requirement %d exceeds capacity %d (spill pool %d/%d)",
			d.Job, st.requirement, p.cap, st.spillUsed, p.spillCap)
	}
	p.members = next
	sort.Slice(p.members, func(i, j int) bool { return p.members[i].Job < p.members[j].Job })
	p.state = st
	return st.grants[d.Job], nil
}

// Release removes a member and replans.
func (p *Planner) Release(job string) error {
	i := p.find(job)
	if i < 0 {
		return fmt.Errorf("memplan: release of unknown job %s", job)
	}
	p.members = append(p.members[:i], p.members[i+1:]...)
	p.state = plan(p.members, p.cap, p.spillCap, p.link)
	return nil
}

// Observe updates a member's measured demand (peak and spill traffic
// from a completed iteration) and replans; it reports whether the
// member's grant changed. Measured peaks come from the deterministic
// virtual-time simulation, so observation never breaks replay
// identity. Unlike Admit, Observe tolerates an infeasible replan — a
// running co-tenancy cannot be un-admitted here; the pressure shows up
// in Directive instead.
func (p *Planner) Observe(job string, peakBytes, spillBytes int64) (bool, error) {
	i := p.find(job)
	if i < 0 {
		return false, fmt.Errorf("memplan: observe of unknown job %s", job)
	}
	m := p.members[i]
	if peakBytes > 0 {
		m.PeakBytes = peakBytes
		if m.FloorBytes > m.PeakBytes {
			m.PeakBytes = m.FloorBytes
		}
	}
	if spillBytes >= 0 {
		m.SpillBytes = spillBytes
	}
	if m.PeakBytes == p.members[i].PeakBytes && m.SpillBytes == p.members[i].SpillBytes {
		// No scalar change: the replan would be identical.
		return false, nil
	}
	before := p.state.grants[job]
	p.members[i] = m
	p.state = plan(p.members, p.cap, p.spillCap, p.link)
	return p.state.grants[job] != before, nil
}

// Requirement is the device-wide GPU reservation the current plan
// needs: the shared slabs plus the worst case over the running member.
func (p *Planner) Requirement() int64 { return p.state.requirement }

// SpillUsed is the host spill pool occupancy.
func (p *Planner) SpillUsed() int64 { return p.state.spillUsed }

// SpillCap is the host spill pool capacity.
func (p *Planner) SpillCap() int64 { return p.spillCap }

// SharedSavedBytes is the capacity cross-job slab sharing avoided
// reserving twice.
func (p *Planner) SharedSavedBytes() int64 { return p.state.sharedSaved }

// SharedStats exposes the slab registry counters of the current plan.
func (p *Planner) SharedStats() tcache.SharedStats { return p.state.stats }

// Tenants is the member count.
func (p *Planner) Tenants() int { return len(p.members) }

// Grant returns the current grant for a member.
func (p *Planner) Grant(job string) (Grant, bool) {
	g, ok := p.state.grants[job]
	return g, ok
}

// SwapPenalty is the per-iteration cost of the member's spilled floor
// (zero for resident members and unknown jobs).
func (p *Planner) SwapPenalty(job string) sim.Duration {
	return p.state.grants[job].SwapPenalty
}

// Directive is the planner's global offload/prefetch ordering applied
// to one client: the minimum plan-aggressiveness level the device's
// pressure demands of it. Spilled members escalate first (their floor
// already lives on the host; wider offload is nearly free for them),
// then — under high pressure — every member. The thresholds are
// deterministic functions of the plan state.
func (p *Planner) Directive(job string) int {
	g, ok := p.state.grants[job]
	if !ok {
		return DirectiveNone
	}
	var headroomFrac float64 = 1
	if p.cap > 0 {
		headroomFrac = 1 - float64(p.state.requirement)/float64(p.cap)
	}
	spillFrac := 0.0
	if p.spillCap > 0 {
		spillFrac = float64(p.state.spillUsed) / float64(p.spillCap)
	}
	high := !p.state.feasible || headroomFrac < 0.05 || spillFrac > 0.90
	mid := headroomFrac < 0.15 || spillFrac > 0.70
	switch {
	case high && g.SpilledBytes > 0:
		return DirectiveRecompute
	case high, mid && g.SpilledBytes > 0:
		return DirectiveOffload
	case mid && len(p.members) > 1:
		return DirectiveOffload
	}
	return DirectiveNone
}

// IsolatedRequirement is what admission-by-isolation would reserve for
// the same member set: the sum of solo peaks. The ablation metric.
func (p *Planner) IsolatedRequirement() int64 {
	var sum int64
	for _, m := range p.members {
		sum += m.PeakBytes
	}
	return sum
}
