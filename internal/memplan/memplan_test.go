package memplan

import (
	"fmt"
	"testing"

	"repro/internal/hw"
	"repro/internal/tcache"
)

const gib = int64(1) << 30

// demand builds a simple member: peak/floor in GiB, no shareable tensors.
func demand(job string, peakGiB, floorGiB int64) Demand {
	return Demand{Job: job, PeakBytes: peakGiB * gib, FloorBytes: floorGiB * gib}
}

func mustPlanner(t *testing.T, capGiB, spillGiB int64) *Planner {
	t.Helper()
	p, err := New(capGiB*gib, spillGiB*gib, hw.PCIePinned)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAdmitBeatsIsolatedReservation(t *testing.T) {
	// Two jobs: peak 7 GiB, floor 1 GiB each, on a 12 GiB device.
	// Sum-of-isolated-peaks (14 GiB) rejects the second; serial-engine
	// planning needs max(7+1, 7+1) = 8 GiB — both fit with no spill.
	p := mustPlanner(t, 12, 16)
	for _, j := range []string{"a", "b"} {
		if _, ok := p.Headroom(demand(j, 7, 1)); !ok {
			t.Fatalf("job %s should fit", j)
		}
		g, err := p.Admit(demand(j, 7, 1))
		if err != nil {
			t.Fatal(err)
		}
		if g.SpilledBytes != 0 || g.SwapPenalty != 0 {
			t.Fatalf("job %s spilled without memory pressure: %+v", j, g)
		}
	}
	if got, want := p.Requirement(), 8*gib; got != want {
		t.Fatalf("requirement %d, want %d", got, want)
	}
	if iso := p.IsolatedRequirement(); iso != 14*gib {
		t.Fatalf("isolated requirement %d, want %d", iso, 14*gib)
	}
	if p.Requirement() >= p.IsolatedRequirement() {
		t.Fatal("co-tenant plan should undercut sum-of-isolated-peaks")
	}
}

func TestSpillUnlocksAdmissionAndPricesSwap(t *testing.T) {
	// Three jobs of peak 6 / floor 3 on a 12 GiB device: resident floors
	// alone make R = 6 + 3 + 3 = 12... with a fourth (R = 6+9 = 15) the
	// planner must park floors in the host pool and price the swap.
	p := mustPlanner(t, 12, 16)
	for i := 0; i < 3; i++ {
		if _, err := p.Admit(demand(fmt.Sprintf("j%d", i), 6, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if p.SpillUsed() != 0 {
		t.Fatalf("no spill expected at 3 tenants, got %d", p.SpillUsed())
	}
	g, err := p.Admit(demand("j3", 6, 3))
	if err != nil {
		t.Fatalf("spill pool should unlock the fourth tenant: %v", err)
	}
	_ = g
	if p.Requirement() > 12*gib {
		t.Fatalf("requirement %d exceeds capacity after spill", p.Requirement())
	}
	if p.SpillUsed() == 0 {
		t.Fatal("fourth tenant should have forced a floor into the spill pool")
	}
	// Exactly the spilled members pay a swap penalty: 2 round-trips of
	// their floor over the link.
	var spilled int
	for i := 0; i < 4; i++ {
		j := fmt.Sprintf("j%d", i)
		gr, ok := p.Grant(j)
		if !ok {
			t.Fatalf("missing grant for %s", j)
		}
		if gr.SpilledBytes > 0 {
			spilled++
			want := 2 * hw.PCIePinned.TransferTime(gr.SpilledBytes)
			if gr.SwapPenalty != want {
				t.Fatalf("%s swap penalty %v, want %v", j, gr.SwapPenalty, want)
			}
		} else if gr.SwapPenalty != 0 {
			t.Fatalf("resident %s has a swap penalty", j)
		}
	}
	if spilled == 0 {
		t.Fatal("no member records a spilled floor")
	}
}

func TestSpillPoolExhaustionRejects(t *testing.T) {
	// Tiny spill pool: once it is full, further tenants must be refused
	// (never-OOM: Admit fails rather than over-committing).
	p := mustPlanner(t, 8, 2)
	if _, err := p.Admit(demand("a", 6, 3)); err != nil {
		t.Fatal(err)
	}
	// b needs a 3 GiB floor parked, but the pool holds only 2 GiB: the
	// resident plan (max(6+3, 6+3) = 9 GiB) exceeds the 8 GiB device and
	// no spill candidate fits, so admission must refuse.
	if _, ok := p.Headroom(demand("b", 6, 3)); ok {
		t.Fatal("headroom probe should refuse when the spill pool is too small")
	}
	if _, err := p.Admit(demand("b", 6, 3)); err == nil {
		t.Fatal("admit should refuse when the spill pool is too small")
	}
	if p.Tenants() != 1 || p.SpillUsed() != 0 {
		t.Fatalf("failed admit mutated the plan: tenants=%d spill=%d", p.Tenants(), p.SpillUsed())
	}
}

func TestCrossJobSharingLiftsCommonShapes(t *testing.T) {
	// Two tenants declaring the same 2 GiB workspace shape: the shape is
	// charged once as a device slab and lifted out of both peaks.
	k := tcache.ShapeKey(32, 64, 56, 56, 4)
	mk := func(job string) Demand {
		d := demand(job, 6, 1)
		d.Tensors = []TensorDemand{{Key: k, Bytes: 2 * gib, Width: 4, NextUse: 3}}
		return d
	}
	p := mustPlanner(t, 16, 0)
	if _, err := p.Admit(mk("a")); err != nil {
		t.Fatal(err)
	}
	if p.SharedSavedBytes() != 0 {
		t.Fatal("a single tenant cannot save anything")
	}
	g, err := p.Admit(mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	if g.SharedBytes != 2*gib {
		t.Fatalf("b shared bytes %d, want %d", g.SharedBytes, 2*gib)
	}
	if p.SharedSavedBytes() != 2*gib {
		t.Fatalf("saved %d, want %d", p.SharedSavedBytes(), 2*gib)
	}
	// R = slab(2) + max over j of (effPeak_j + other floors)
	//   = 2 + (6-2) + 1 = 7 GiB. Without sharing it would be 8 GiB.
	if got, want := p.Requirement(), 7*gib; got != want {
		t.Fatalf("requirement %d, want %d", got, want)
	}
}

func TestPlanIsPureFunctionOfMemberSet(t *testing.T) {
	// Admission order must not matter: the plan is derived from the set
	// sorted by job ID, which is what lets snapshot restore re-admit
	// residents in any recorded order and land on identical grants.
	mk := func(order []string) *Planner {
		p := mustPlanner(t, 12, 8)
		for _, j := range order {
			var d Demand
			switch j {
			case "a":
				d = demand("a", 7, 1)
			case "b":
				d = demand("b", 5, 3)
			case "c":
				d = demand("c", 4, 2)
			}
			if _, err := p.Admit(d); err != nil {
				t.Fatalf("admit %s: %v", j, err)
			}
		}
		return p
	}
	p1 := mk([]string{"a", "b", "c"})
	p2 := mk([]string{"c", "a", "b"})
	if p1.Requirement() != p2.Requirement() || p1.SpillUsed() != p2.SpillUsed() {
		t.Fatalf("order-dependent plan: R %d/%d spill %d/%d",
			p1.Requirement(), p2.Requirement(), p1.SpillUsed(), p2.SpillUsed())
	}
	for _, j := range []string{"a", "b", "c"} {
		g1, _ := p1.Grant(j)
		g2, _ := p2.Grant(j)
		if g1 != g2 {
			t.Fatalf("job %s grant differs by admission order: %+v vs %+v", j, g1, g2)
		}
	}
}

func TestSpillOrderLargestFloorFirst(t *testing.T) {
	// Force exactly one spill; the victim must be the largest floor.
	p := mustPlanner(t, 12, 16)
	if _, err := p.Admit(demand("small", 6, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(demand("big", 6, 4)); err != nil {
		t.Fatal(err)
	}
	// R = max(6+4, 6+1) = 10 ≤ 12: both resident so far.
	if p.SpillUsed() != 0 {
		t.Fatalf("unexpected spill at 2 tenants: %d", p.SpillUsed())
	}
	if _, err := p.Admit(demand("third", 7, 2)); err != nil {
		t.Fatal(err)
	}
	// Resident R would be max(6+6, 6+3, 7+5) = 12 ≤ 12 — still fine.
	if _, err := p.Admit(demand("fourth", 7, 2)); err != nil {
		t.Fatal(err)
	}
	gb, _ := p.Grant("big")
	if gb.SpilledBytes != 4*gib {
		t.Fatalf("largest floor should spill first; big got %+v (spill used %d)", gb, p.SpillUsed())
	}
	gs, _ := p.Grant("small")
	if gs.SpilledBytes != 0 && p.SpillUsed() == 4*gib {
		t.Fatalf("small spilled unnecessarily: %+v", gs)
	}
}

func TestReleaseRestoresHeadroom(t *testing.T) {
	p := mustPlanner(t, 12, 0)
	if _, err := p.Admit(demand("a", 7, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(demand("b", 7, 1)); err != nil {
		t.Fatal(err)
	}
	big := demand("huge", 11, 2)
	if _, ok := p.Headroom(big); ok {
		t.Fatal("huge job cannot fit alongside a and b")
	}
	if _, ok := p.HeadroomWithout(func(j string) bool { return true }, big); !ok {
		t.Fatal("huge job should fit on an emptied device (preemption probe)")
	}
	if err := p.Release("a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Release("b"); err != nil {
		t.Fatal(err)
	}
	if hr, ok := p.Headroom(big); !ok || hr != 1*gib {
		t.Fatalf("headroom %d ok=%v after releases, want %d", hr, ok, 1*gib)
	}
	if err := p.Release("a"); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestObserveReplans(t *testing.T) {
	p := mustPlanner(t, 12, 16)
	if _, err := p.Admit(demand("a", 5, 1)); err != nil {
		t.Fatal(err)
	}
	changed, err := p.Observe("a", 5*gib, 0)
	if err != nil || changed {
		t.Fatalf("no-op observe: changed=%v err=%v", changed, err)
	}
	// A measured peak above capacity must not panic or evict — the
	// pressure surfaces through Directive instead.
	if _, err := p.Observe("a", 13*gib, 0); err != nil {
		t.Fatal(err)
	}
	if p.Requirement() <= 12*gib {
		t.Fatalf("requirement %d should reflect the measured over-peak", p.Requirement())
	}
	if d := p.Directive("a"); d < DirectiveOffload {
		t.Fatalf("directive %d under infeasible pressure, want ≥ %d", d, DirectiveOffload)
	}
	if _, err := p.Observe("ghost", gib, 0); err == nil {
		t.Fatal("observing an unknown job should fail")
	}
}

func TestDirectiveEscalatesSpilledFirst(t *testing.T) {
	// Fill the device so one tenant spills and headroom is thin: the
	// spilled tenant must be directed at least as aggressively as the
	// residents.
	p := mustPlanner(t, 12, 16)
	for i := 0; i < 5; i++ {
		if _, err := p.Admit(demand(fmt.Sprintf("j%d", i), 6, 3)); err != nil {
			t.Fatal(err)
		}
	}
	var spilledDir, residentDir = -1, -1
	for i := 0; i < 5; i++ {
		j := fmt.Sprintf("j%d", i)
		g, _ := p.Grant(j)
		d := p.Directive(j)
		if g.SpilledBytes > 0 {
			if spilledDir == -1 || d < spilledDir {
				spilledDir = d
			}
		} else if residentDir == -1 || d > residentDir {
			residentDir = d
		}
	}
	if spilledDir == -1 {
		t.Fatal("expected at least one spilled tenant")
	}
	if residentDir >= 0 && spilledDir < residentDir {
		t.Fatalf("spilled tenants directed at %d, residents at %d", spilledDir, residentDir)
	}
	if p.Directive("ghost") != DirectiveNone {
		t.Fatal("unknown jobs get no directive")
	}
}

func TestValidation(t *testing.T) {
	p := mustPlanner(t, 12, 0)
	cases := []Demand{
		{},                         // no job
		{Job: "a"},                 // zero peak
		{Job: "a", PeakBytes: -1},  // negative peak
		demandWithFloor("a", 4, 5), // floor > peak
		{Job: "a", PeakBytes: gib, SpillBytes: -1},
		{Job: "a", PeakBytes: gib, Tensors: []TensorDemand{{Key: 1, Bytes: 0}}},
		{Job: "a", PeakBytes: gib, Tensors: []TensorDemand{{Key: 1, Bytes: 2 * gib}}},
	}
	for i, d := range cases {
		if _, err := p.Admit(d); err == nil {
			t.Fatalf("case %d: invalid demand admitted: %+v", i, d)
		}
		if _, ok := p.Headroom(d); ok {
			t.Fatalf("case %d: invalid demand has headroom", i)
		}
	}
	if _, err := p.Admit(demand("a", 4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(demand("a", 4, 1)); err == nil {
		t.Fatal("double admission should fail")
	}
	if _, ok := p.Headroom(demand("a", 4, 1)); ok {
		t.Fatal("headroom probe for an admitted job should fail")
	}
	if _, err := New(0, 0, hw.PCIePinned); err == nil {
		t.Fatal("zero-capacity planner should be rejected")
	}
	if _, err := New(gib, -1, hw.PCIePinned); err == nil {
		t.Fatal("negative spill pool should be rejected")
	}
}

func demandWithFloor(job string, peakGiB, floorGiB int64) Demand {
	return Demand{Job: job, PeakBytes: peakGiB * gib, FloorBytes: floorGiB * gib}
}

// Member is the elastic-shrink membership probe: true exactly for jobs
// currently planned on the device, through admission and release.
func TestMember(t *testing.T) {
	p := mustPlanner(t, 12, 16)
	if p.Member("a") {
		t.Error("empty planner claims a member")
	}
	if _, err := p.Admit(demand("a", 7, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(demand("b", 3, 1)); err != nil {
		t.Fatal(err)
	}
	if !p.Member("a") || !p.Member("b") {
		t.Error("admitted jobs not reported as members")
	}
	if p.Member("c") {
		t.Error("never-admitted job reported as member")
	}
	if err := p.Release("a"); err != nil {
		t.Fatal(err)
	}
	if p.Member("a") {
		t.Error("released job still a member")
	}
	if !p.Member("b") {
		t.Error("release of a evicted b's membership")
	}
}
