// Package layers models the cuDNN layer zoo the SuperNeurons runtime
// schedules: geometry, parameter/auxiliary footprints, roofline work
// estimates, and the per-layer facts the memory planners depend on
// (which layers are checkpoints, which gradients are computed in place,
// which forward tensors a backward pass consumes).
//
// The paper's scheduling decisions rest on two empirical observations
// (its Fig. 8): CONV/FC dominate *time* while POOL/ACT/LRN/BN dominate
// *memory*. Both fall out of this package's cost model — convolutions
// are compute-roof bound, the wide cheap layers are bandwidth-roof
// bound — so the runtime faces the same trade-offs as on real hardware.
package layers

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Type enumerates the basic building layers of §2.1.
type Type uint8

// Layer types.
const (
	Data Type = iota
	Conv
	Pool
	Act // ReLU
	LRN
	BN
	FC
	Dropout
	Softmax
	Concat  // fan-join by channel concatenation (Inception, DenseNet)
	Eltwise // element-wise sum join (ResNet)
)

var typeNames = [...]string{
	"DATA", "CONV", "POOL", "ACT", "LRN", "BN", "FC",
	"DROPOUT", "SOFTMAX", "CONCAT", "ELTWISE",
}

// String returns the canonical upper-case layer-type name used in the
// paper's figures.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("TYPE(%d)", uint8(t))
}

// Spec is a fully-resolved layer instance: type, geometry, and derived
// output shape. Specs are immutable after construction.
type Spec struct {
	Type Type
	Name string

	// In holds the input shapes (several for Concat/Eltwise).
	In []tensor.Shape
	// Out is the output shape.
	Out tensor.Shape

	// Convolution / pooling geometry. K and Pad govern the height
	// axis; KW and PadW the width axis (rectangular kernels such as
	// Inception's 1×7 / 7×1 factorizations). Square constructors set
	// KW = K and PadW = Pad.
	K      int // kernel height
	KW     int // kernel width
	Stride int
	Pad    int // height padding
	PadW   int // width padding
	OutC   int // conv output channels or FC output features
	// Groups partitions a convolution's channels (AlexNet's two-GPU
	// heritage); 0 means 1. Grouping divides parameters and FLOPs,
	// not activation footprints.
	Groups int
	Avg    bool // average (vs max) pooling
}

func (s *Spec) groups() int64 {
	if s.Groups > 1 {
		return int64(s.Groups)
	}
	return 1
}

func outDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// NewData returns the input layer producing one batch of the given
// shape.
func NewData(name string, s tensor.Shape) Spec {
	return Spec{Type: Data, Name: name, Out: s}
}

// NewConv returns a convolution layer: outC filters of size k×k with
// the given stride and padding.
func NewConv(name string, in tensor.Shape, outC, k, stride, pad int) Spec {
	return NewConvRect(name, in, outC, k, k, stride, pad, pad)
}

// NewConvGrouped returns a grouped convolution (AlexNet's conv2/4/5).
func NewConvGrouped(name string, in tensor.Shape, outC, k, stride, pad, groups int) Spec {
	s := NewConv(name, in, outC, k, stride, pad)
	if groups < 1 || in.C%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("layers: conv %q: invalid group count %d", name, groups))
	}
	s.Groups = groups
	return s
}

// NewConvRect returns a convolution with a rectangular kh×kw kernel
// (Inception's 1×7 / 7×1 factorizations).
func NewConvRect(name string, in tensor.Shape, outC, kh, kw, stride, padH, padW int) Spec {
	oh := outDim(in.H, kh, stride, padH)
	ow := outDim(in.W, kw, stride, padW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("layers: conv %q collapses %v to %dx%d", name, in, oh, ow))
	}
	return Spec{
		Type: Conv, Name: name, In: []tensor.Shape{in},
		Out: tensor.Shape{N: in.N, C: outC, H: oh, W: ow},
		K:   kh, KW: kw, Stride: stride, Pad: padH, PadW: padW, OutC: outC,
	}
}

// NewPool returns a pooling layer (max by default, average when avg).
func NewPool(name string, in tensor.Shape, k, stride, pad int, avg bool) Spec {
	oh := outDim(in.H, k, stride, pad)
	ow := outDim(in.W, k, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("layers: pool %q collapses %v", name, in))
	}
	return Spec{
		Type: Pool, Name: name, In: []tensor.Shape{in},
		Out: tensor.Shape{N: in.N, C: in.C, H: oh, W: ow},
		K:   k, KW: k, Stride: stride, Pad: pad, PadW: pad, Avg: avg,
	}
}

// NewGlobalPool returns an average pool that collapses the spatial
// dimensions to 1×1.
func NewGlobalPool(name string, in tensor.Shape) Spec {
	s := NewPool(name, in, in.H, 1, 0, true)
	s.KW = in.W
	s.Out.W = 1
	return s
}

// NewAct returns a ReLU activation.
func NewAct(name string, in tensor.Shape) Spec {
	return Spec{Type: Act, Name: name, In: []tensor.Shape{in}, Out: in}
}

// NewLRN returns a local response normalization layer.
func NewLRN(name string, in tensor.Shape) Spec {
	return Spec{Type: LRN, Name: name, In: []tensor.Shape{in}, Out: in, K: 5}
}

// NewBN returns a batch normalization layer.
func NewBN(name string, in tensor.Shape) Spec {
	return Spec{Type: BN, Name: name, In: []tensor.Shape{in}, Out: in}
}

// NewFC returns a fully-connected layer with outC output features; the
// input is flattened.
func NewFC(name string, in tensor.Shape, outC int) Spec {
	return Spec{
		Type: FC, Name: name, In: []tensor.Shape{in},
		Out:  tensor.Vec(in.N, outC),
		OutC: outC,
	}
}

// NewDropout returns a dropout layer.
func NewDropout(name string, in tensor.Shape) Spec {
	return Spec{Type: Dropout, Name: name, In: []tensor.Shape{in}, Out: in}
}

// NewSoftmax returns a softmax-with-loss layer.
func NewSoftmax(name string, in tensor.Shape) Spec {
	return Spec{Type: Softmax, Name: name, In: []tensor.Shape{in}, Out: in}
}

// NewConcat returns a channel-concatenation join of the inputs, which
// must agree on N, H and W.
func NewConcat(name string, ins ...tensor.Shape) Spec {
	if len(ins) < 2 {
		panic("layers: concat needs at least two inputs")
	}
	out := ins[0]
	for _, s := range ins[1:] {
		if s.N != out.N || s.H != out.H || s.W != out.W {
			panic(fmt.Sprintf("layers: concat %q shape mismatch: %v vs %v", name, out, s))
		}
		out.C += s.C
	}
	return Spec{Type: Concat, Name: name, In: ins, Out: out}
}

// NewEltwise returns an element-wise sum join of identically-shaped
// inputs (the ResNet shortcut).
func NewEltwise(name string, ins ...tensor.Shape) Spec {
	if len(ins) < 2 {
		panic("layers: eltwise needs at least two inputs")
	}
	for _, s := range ins[1:] {
		if s != ins[0] {
			panic(fmt.Sprintf("layers: eltwise %q shape mismatch: %v vs %v", name, ins[0], s))
		}
	}
	return Spec{Type: Eltwise, Name: name, In: ins, Out: ins[0]}
}

// InBytes sums the input tensor footprints.
func (s *Spec) InBytes() int64 {
	var n int64
	for _, in := range s.In {
		n += in.Bytes()
	}
	return n
}

// OutBytes is the forward output footprint — the l_i^f of the paper's
// cost model.
func (s *Spec) OutBytes() int64 { return s.Out.Bytes() }

// ParamBytes returns the persistent parameter footprint (weights +
// biases, or BN scale/shift plus running statistics).
func (s *Spec) ParamBytes() int64 {
	switch s.Type {
	case Conv:
		cin := s.In[0].C
		return (int64(s.OutC)*int64(cin)*int64(s.K)*int64(s.KW)/s.groups() + int64(s.OutC)) * tensor.ElemSize
	case FC:
		cin := s.In[0].Elems() / int64(s.In[0].N)
		return (cin*int64(s.OutC) + int64(s.OutC)) * tensor.ElemSize
	case BN:
		// scale, shift, running mean, running variance.
		return 4 * int64(s.In[0].C) * tensor.ElemSize
	default:
		return 0
	}
}

// AuxBytes returns persistent per-layer auxiliary state: the cuDNN
// dropout reserve space and BN saved statistics. These live for the
// whole training run (like parameters), not per-iteration.
func (s *Spec) AuxBytes() int64 {
	switch s.Type {
	case Dropout:
		return s.Out.Bytes() // reserve space holding the mask
	case BN:
		return 2 * int64(s.In[0].C) * tensor.ElemSize // saved mean/invvar
	default:
		return 0
	}
}

// AllocatesDX reports whether the backward pass allocates a distinct
// input-gradient tensor. ReLU and Dropout compute gradients in place
// over dY; Concat/Eltwise backward hand out views/aliases of dY; the
// Data layer has no gradient.
func (s *Spec) AllocatesDX() bool {
	switch s.Type {
	case Data, Act, Dropout, Concat, Eltwise:
		return false
	default:
		return true
	}
}

// BwdNeeds reports which forward tensors the backward computation
// consumes, mirroring the cuDNN backward-kernel signatures: e.g.
// cudnnPoolingBackward takes (x, y, dy) while ReLU only needs (y, dy).
func (s *Spec) BwdNeeds() (needX, needY bool) {
	switch s.Type {
	case Conv:
		return true, false // x for wgrad; dx from w and dy
	case Pool:
		return true, true
	case Act:
		return true, true // cudnnActivationBackward(y, dy, x, dx)
	case LRN:
		return true, true
	case BN:
		return true, false // saved statistics replace y
	case FC:
		return true, false
	case Dropout:
		return false, false // mask lives in persistent reserve space
	case Softmax:
		return false, true
	default: // Data, Concat, Eltwise
		return false, false
	}
}

// IsCheckpoint reports whether the layer is a recomputation checkpoint:
// a compute-intensive layer whose output is kept (or offloaded) rather
// than recomputed (§3.3–3.4: CONV and FC; Data is a natural checkpoint
// since the input batch can always be re-read).
func (s *Spec) IsCheckpoint() bool {
	switch s.Type {
	case Conv, FC, Data:
		return true
	default:
		return false
	}
}

// IsOffloadable reports whether the Unified Tensor Pool offloads this
// layer's forward output to host memory (§3.3.1: only CONV outputs —
// POOL/ACT/BN/LRN have too little compute to hide the transfer behind,
// and Dropout/Softmax/FC tensors are too small to bother).
func (s *Spec) IsOffloadable() bool { return s.Type == Conv }

// rooflineEff holds the per-type fraction of peak a layer's kernels
// sustain before device scaling.
type rooflineEff struct{ compute, mem float64 }

var effTable = map[Type]rooflineEff{
	Data:    {0.9, 0.9},
	Conv:    {0.52, 0.70},
	Pool:    {0.08, 0.85},
	Act:     {0.10, 0.95},
	LRN:     {0.10, 0.45},
	BN:      {0.10, 0.60},
	FC:      {0.62, 0.85},
	Dropout: {0.10, 0.85},
	Softmax: {0.10, 0.60},
	Concat:  {0.10, 0.90},
	Eltwise: {0.10, 0.90},
}

// FwdFLOPs estimates forward floating-point work.
func (s *Spec) FwdFLOPs() float64 {
	switch s.Type {
	case Conv:
		cin := float64(s.In[0].C)
		return 2 * float64(s.Out.Elems()) * cin * float64(s.K) * float64(s.KW) / float64(s.groups())
	case FC:
		cin := float64(s.In[0].Elems() / int64(s.In[0].N))
		return 2 * float64(s.Out.Elems()) * cin
	case Pool:
		return float64(s.Out.Elems()) * float64(s.K) * float64(s.KW)
	case LRN:
		return float64(s.Out.Elems()) * float64(2*s.K+4)
	case BN:
		return float64(s.Out.Elems()) * 10
	case Softmax:
		return float64(s.Out.Elems()) * 6
	case Data:
		return 0
	default: // Act, Dropout, Concat, Eltwise
		return float64(s.Out.Elems()) * 2
	}
}

// BwdFLOPs estimates backward floating-point work. Convolutions and FC
// run both a data-gradient and a weight-gradient pass (≈2× forward);
// the cheap layers run a single elementwise pass.
func (s *Spec) BwdFLOPs() float64 {
	switch s.Type {
	case Conv, FC:
		return 2 * s.FwdFLOPs()
	case Data:
		return 0
	default:
		return s.FwdFLOPs()
	}
}

// FwdBytes estimates forward memory traffic: read inputs and
// parameters, write the output.
func (s *Spec) FwdBytes() int64 {
	return s.InBytes() + s.ParamBytes() + s.Out.Bytes()
}

// BwdBytes estimates backward memory traffic: read dY plus whatever
// forward tensors the kernel needs, write dX and parameter gradients.
func (s *Spec) BwdBytes() int64 {
	needX, needY := s.BwdNeeds()
	n := s.Out.Bytes() // read dY
	if needX {
		n += s.InBytes()
	}
	if needY {
		n += s.Out.Bytes()
	}
	n += s.InBytes()        // write dX (aliased or not, the bytes move)
	n += 2 * s.ParamBytes() // read params, write param gradients
	return n
}

// FwdTime returns the modeled forward duration on the device, given a
// convolution algorithm speed factor (1.0 for non-conv layers; see
// Algo.Speedup).
func (s *Spec) FwdTime(d hw.DeviceSpec, speedup float64) sim.Duration {
	return s.kernelTime(d, s.FwdFLOPs(), s.FwdBytes(), speedup)
}

// BwdTime returns the modeled backward duration on the device.
func (s *Spec) BwdTime(d hw.DeviceSpec, speedup float64) sim.Duration {
	if s.Type == Data {
		return 0
	}
	return s.kernelTime(d, s.BwdFLOPs(), s.BwdBytes(), speedup)
}

func (s *Spec) kernelTime(d hw.DeviceSpec, flops float64, bytes int64, speedup float64) sim.Duration {
	if speedup <= 0 {
		panic("layers: non-positive algorithm speedup")
	}
	eff := effTable[s.Type]
	ec := eff.compute * d.EffScale * speedup
	em := eff.mem * d.MemEffScale
	return d.KernelTime(flops, bytes, ec, em)
}

// String renders the spec compactly, e.g. "CONV conv1 3x227x227 -> 96x55x55 k11s4p0".
func (s *Spec) String() string {
	geo := ""
	switch s.Type {
	case Conv, Pool:
		if s.K == s.KW {
			geo = fmt.Sprintf(" k%ds%dp%d", s.K, s.Stride, s.Pad)
		} else {
			geo = fmt.Sprintf(" k%dx%ds%dp%dx%d", s.K, s.KW, s.Stride, s.Pad, s.PadW)
		}
	}
	if len(s.In) == 0 {
		return fmt.Sprintf("%s %s -> %v%s", s.Type, s.Name, s.Out, geo)
	}
	return fmt.Sprintf("%s %s %v -> %v%s", s.Type, s.Name, s.In[0], s.Out, geo)
}
