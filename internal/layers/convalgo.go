package layers

import (
	"fmt"

	"repro/internal/tensor"
)

// AlgoKind enumerates the cuDNN convolution algorithm families the
// runtime chooses between (§3.5 of the paper).
type AlgoKind uint8

// Convolution algorithm kinds.
const (
	// AlgoImplicitGEMM performs the convolution without materializing
	// the lowered matrix: zero workspace, baseline speed.
	AlgoImplicitGEMM AlgoKind = iota
	// AlgoGEMM lowers the input with im2col into a workspace and runs
	// one large matrix multiply; faster, workspace ≈ the whole lowered
	// batch.
	AlgoGEMM
	// AlgoFFT convolves in the frequency domain; fastest for large
	// kernels at stride 1, with large padded-spectrum workspaces.
	AlgoFFT
	// AlgoWinograd uses Winograd minimal filtering for 3×3 stride-1
	// kernels; large speedup with a moderate tile-transform workspace.
	AlgoWinograd
)

var algoNames = [...]string{"implicit-gemm", "gemm", "fft", "winograd"}

// String returns the algorithm name.
func (k AlgoKind) String() string {
	if int(k) < len(algoNames) {
		return algoNames[k]
	}
	return fmt.Sprintf("algo(%d)", uint8(k))
}

// Algo describes one executable choice for a convolution layer: its
// workspace requirement and its speed relative to implicit GEMM. The
// runtime picks the fastest algorithm whose workspace fits the free
// bytes remaining at that step (§3.5).
type Algo struct {
	Kind      AlgoKind
	Workspace int64   // scratch bytes needed in GPU DRAM
	Speedup   float64 // compute-efficiency multiplier vs implicit GEMM
}

// ConvAlgos returns the algorithms available for this convolution,
// ordered from slowest to fastest. It panics on non-conv layers.
//
// Availability mirrors cuDNN:
//   - implicit GEMM: always, zero workspace;
//   - GEMM: always, workspace = lowered im2col batch
//     (N·C·K²·outH·outW floats);
//   - Winograd: 3×3 stride-1 kernels, workspace ≈ 2.25× the layer's
//     activation footprint (input+output tile transforms);
//   - FFT: stride-1 kernels of size ≥5, workspace = padded complex
//     spectra of input, output and filters.
func (s *Spec) ConvAlgos() []Algo {
	set, n := s.convAlgoSet()
	return append([]Algo(nil), set[:n]...)
}

// convAlgoSet fills a fixed-size array with the available algorithms —
// at most one per AlgoKind — so per-step algorithm selection in the
// executor's hot loop allocates nothing.
func (s *Spec) convAlgoSet() (set [4]Algo, n int) {
	if s.Type != Conv {
		panic("layers: ConvAlgos on non-conv layer")
	}
	in := s.In[0]
	set[0] = Algo{Kind: AlgoImplicitGEMM, Workspace: 0, Speedup: 1.0}
	n = 1

	im2col := int64(in.N) * int64(in.C) * int64(s.K) * int64(s.KW) *
		int64(s.Out.H) * int64(s.Out.W) * tensor.ElemSize
	set[n] = Algo{Kind: AlgoGEMM, Workspace: im2col, Speedup: 1.25}
	n++

	if s.K >= 5 && s.KW >= 5 && s.Stride == 1 {
		// Complex spectra (8 bytes/coeff) for input maps, output maps
		// and filters over the padded spatial extent.
		hp, wp := int64(in.H+2*s.Pad), int64(in.W+2*s.PadW)
		spec := 8 * hp * wp * (int64(in.N)*int64(in.C) +
			int64(in.N)*int64(s.OutC) + int64(in.C)*int64(s.OutC))
		set[n] = Algo{Kind: AlgoFFT, Workspace: spec, Speedup: 1.6}
		n++
	}
	if s.K == 3 && s.KW == 3 && s.Stride == 1 {
		ws := int64(2.25 * float64(in.Bytes()+s.Out.Bytes()))
		set[n] = Algo{Kind: AlgoWinograd, Workspace: ws, Speedup: 2.0}
		n++
	}
	return set, n
}

// BestAlgoWithin returns the fastest algorithm whose workspace fits
// within budget bytes. The zero-workspace implicit GEMM always fits, so
// an algorithm is always returned (the paper: "the runtime skips
// convolution algorithms that require more memory than it can
// provide").
func (s *Spec) BestAlgoWithin(budget int64) Algo {
	best := Algo{Kind: AlgoImplicitGEMM, Speedup: 1.0}
	set, n := s.convAlgoSet()
	for _, a := range set[:n] {
		if a.Workspace <= budget && a.Speedup > best.Speedup {
			best = a
		}
	}
	return best
}

// MaxSpeedAlgo returns the fastest algorithm regardless of workspace —
// the "MAX Speed WS" series of the paper's Fig. 12.
func (s *Spec) MaxSpeedAlgo() Algo {
	return s.BestAlgoWithin(1 << 62)
}
