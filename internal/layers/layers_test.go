package layers

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/tensor"
)

func alexConv1(n int) Spec {
	return NewConv("conv1", tensor.Shape{N: n, C: 3, H: 227, W: 227}, 96, 11, 4, 0)
}

func TestConvGeometry(t *testing.T) {
	c := alexConv1(200)
	want := tensor.Shape{N: 200, C: 96, H: 55, W: 55}
	if c.Out != want {
		t.Fatalf("conv1 out = %v, want %v", c.Out, want)
	}
	// Paper anchor: 221.56 MiB at batch 200.
	mib := float64(c.OutBytes()) / (1 << 20)
	if mib < 221.5 || mib > 221.6 {
		t.Errorf("conv1 out = %.2f MiB, want 221.56", mib)
	}
}

func TestPoolGeometry(t *testing.T) {
	p := NewPool("pool1", tensor.Shape{N: 1, C: 96, H: 55, W: 55}, 3, 2, 0, false)
	if p.Out.H != 27 || p.Out.W != 27 || p.Out.C != 96 {
		t.Fatalf("pool out = %v", p.Out)
	}
}

func TestShapePreservingLayers(t *testing.T) {
	in := tensor.Shape{N: 4, C: 16, H: 8, W: 8}
	for _, s := range []Spec{NewAct("a", in), NewLRN("l", in), NewBN("b", in), NewDropout("d", in), NewSoftmax("s", in)} {
		if s.Out != in {
			t.Errorf("%s: out %v != in %v", s.Type, s.Out, in)
		}
	}
}

func TestFCGeometry(t *testing.T) {
	fc := NewFC("fc1", tensor.Shape{N: 32, C: 256, H: 6, W: 6}, 4096)
	if fc.Out != tensor.Vec(32, 4096) {
		t.Fatalf("fc out = %v", fc.Out)
	}
	// params = 256*6*6*4096 weights + 4096 biases, 4 bytes each.
	want := int64(256*6*6*4096+4096) * 4
	if fc.ParamBytes() != want {
		t.Errorf("fc params = %d, want %d", fc.ParamBytes(), want)
	}
}

func TestConcatGeometry(t *testing.T) {
	a := tensor.Shape{N: 2, C: 32, H: 7, W: 7}
	b := tensor.Shape{N: 2, C: 64, H: 7, W: 7}
	c := NewConcat("cat", a, b)
	if c.Out.C != 96 || c.Out.H != 7 {
		t.Fatalf("concat out = %v", c.Out)
	}
}

func TestConcatMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("concat with mismatched spatial dims must panic")
		}
	}()
	NewConcat("bad", tensor.Shape{N: 1, C: 1, H: 7, W: 7}, tensor.Shape{N: 1, C: 1, H: 8, W: 8})
}

func TestEltwiseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("eltwise with mismatched shapes must panic")
		}
	}()
	NewEltwise("bad", tensor.Shape{N: 1, C: 1, H: 7, W: 7}, tensor.Shape{N: 1, C: 2, H: 7, W: 7})
}

func TestCheckpointClassification(t *testing.T) {
	in := tensor.Shape{N: 1, C: 3, H: 32, W: 32}
	conv := NewConv("c", in, 8, 3, 1, 1)
	fc := NewFC("f", in, 10)
	data := NewData("d", in)
	pool := NewPool("p", in, 2, 2, 0, false)
	act := NewAct("a", in)
	for _, s := range []Spec{conv, fc, data} {
		if !s.IsCheckpoint() {
			t.Errorf("%s must be a checkpoint", s.Type)
		}
	}
	for _, s := range []Spec{pool, act, NewLRN("l", in), NewBN("b", in)} {
		if s.IsCheckpoint() {
			t.Errorf("%s must not be a checkpoint", s.Type)
		}
	}
	if !conv.IsOffloadable() || fc.IsOffloadable() || pool.IsOffloadable() {
		t.Error("only CONV outputs are offloaded (§3.3.1)")
	}
}

func TestInPlaceBackward(t *testing.T) {
	in := tensor.Shape{N: 1, C: 3, H: 8, W: 8}
	for _, s := range []Spec{NewAct("a", in), NewDropout("d", in),
		NewConcat("c", in, in), NewEltwise("e", in, in), NewData("x", in)} {
		if s.AllocatesDX() {
			t.Errorf("%s must not allocate a dX tensor", s.Type)
		}
	}
	for _, s := range []Spec{NewConv("c", in, 4, 3, 1, 1), NewPool("p", in, 2, 2, 0, false),
		NewLRN("l", in), NewBN("b", in), NewFC("f", in, 10), NewSoftmax("s", in)} {
		if !s.AllocatesDX() {
			t.Errorf("%s must allocate a dX tensor", s.Type)
		}
	}
}

func TestBwdNeeds(t *testing.T) {
	in := tensor.Shape{N: 1, C: 3, H: 8, W: 8}
	cases := []struct {
		s            Spec
		wantX, wantY bool
	}{
		{NewConv("c", in, 4, 3, 1, 1), true, false},
		{NewPool("p", in, 2, 2, 0, false), true, true},
		{NewAct("a", in), true, true},
		{NewLRN("l", in), true, true},
		{NewBN("b", in), true, false},
		{NewFC("f", in, 10), true, false},
		{NewDropout("d", in), false, false},
		{NewSoftmax("s", in), false, true},
	}
	for _, c := range cases {
		x, y := c.s.BwdNeeds()
		if x != c.wantX || y != c.wantY {
			t.Errorf("%s BwdNeeds = (%v,%v), want (%v,%v)", c.s.Type, x, y, c.wantX, c.wantY)
		}
	}
}

func TestConvFLOPs(t *testing.T) {
	c := alexConv1(1)
	// 2 * outElems * Cin * K^2 = 2 * 96*55*55 * 3 * 121.
	want := 2.0 * 96 * 55 * 55 * 3 * 121
	if got := c.FwdFLOPs(); got != want {
		t.Errorf("conv1 FwdFLOPs = %g, want %g", got, want)
	}
	if c.BwdFLOPs() != 2*want {
		t.Error("conv backward must be 2x forward FLOPs")
	}
}

func TestComputeVsMemoryBound(t *testing.T) {
	// The paper's Fig. 8 premise: CONV dominates time, POOL/ACT/LRN/BN
	// dominate memory. Check time ratios on a same-size layer pair.
	in := tensor.Shape{N: 32, C: 256, H: 27, W: 27}
	conv := NewConv("c", in, 256, 3, 1, 1)
	pool := NewPool("p", in, 3, 2, 0, false)
	d := hw.TitanXP
	if conv.FwdTime(d, 1) <= 4*pool.FwdTime(d, 1) {
		t.Errorf("conv (%v) should cost >>4x pool (%v)", conv.FwdTime(d, 1), pool.FwdTime(d, 1))
	}
}

func TestConvAlgosAvailability(t *testing.T) {
	in := tensor.Shape{N: 8, C: 64, H: 28, W: 28}
	k3 := NewConv("k3", in, 64, 3, 1, 1)
	k5 := NewConv("k5", in, 64, 5, 1, 2)
	k11s4 := NewConv("k11", tensor.Shape{N: 8, C: 3, H: 227, W: 227}, 96, 11, 4, 0)

	kinds := func(s Spec) map[AlgoKind]Algo {
		m := make(map[AlgoKind]Algo)
		for _, a := range s.ConvAlgos() {
			m[a.Kind] = a
		}
		return m
	}
	m3 := kinds(k3)
	if _, ok := m3[AlgoWinograd]; !ok {
		t.Error("3x3 s1 must offer Winograd")
	}
	if _, ok := m3[AlgoFFT]; ok {
		t.Error("3x3 must not offer FFT (cuDNN restricts to k>=5 here)")
	}
	m5 := kinds(k5)
	if _, ok := m5[AlgoFFT]; !ok {
		t.Error("5x5 s1 must offer FFT")
	}
	m11 := kinds(k11s4)
	if _, ok := m11[AlgoFFT]; ok {
		t.Error("strided conv must not offer FFT")
	}
	if _, ok := m11[AlgoWinograd]; ok {
		t.Error("11x11 must not offer Winograd")
	}
	if m11[AlgoImplicitGEMM].Workspace != 0 {
		t.Error("implicit GEMM needs zero workspace")
	}
}

func TestBestAlgoWithin(t *testing.T) {
	in := tensor.Shape{N: 8, C: 64, H: 28, W: 28}
	c := NewConv("c", in, 64, 3, 1, 1)
	// Unlimited budget picks the fastest (Winograd, speedup 2.0).
	if a := c.MaxSpeedAlgo(); a.Kind != AlgoWinograd {
		t.Errorf("max-speed algo = %v, want winograd", a.Kind)
	}
	// Zero budget always finds implicit GEMM.
	if a := c.BestAlgoWithin(0); a.Kind != AlgoImplicitGEMM {
		t.Errorf("zero-budget algo = %v, want implicit-gemm", a.Kind)
	}
	// Budget just under Winograd's workspace falls back to the best
	// fitting alternative.
	wg := c.MaxSpeedAlgo().Workspace
	a := c.BestAlgoWithin(wg - 1)
	if a.Kind == AlgoWinograd {
		t.Error("algo must respect the workspace budget")
	}
	if a.Speedup < 1.0 {
		t.Error("fallback must never be slower than implicit GEMM")
	}
}

func TestWorkspaceSpeedsUpConv(t *testing.T) {
	// Fig. 2 premise: conv with workspace is 1.2-2.5x faster.
	in := tensor.Shape{N: 32, C: 96, H: 27, W: 27}
	c := NewConv("c", in, 256, 5, 1, 2)
	d := hw.TitanXP
	slow := c.FwdTime(d, 1.0)
	fast := c.FwdTime(d, c.MaxSpeedAlgo().Speedup)
	ratio := float64(slow) / float64(fast)
	if ratio < 1.2 || ratio > 2.6 {
		t.Errorf("workspace speedup = %.2fx, want within [1.2,2.6]", ratio)
	}
}

func TestConvAlgosOnNonConvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ConvAlgos on non-conv must panic")
		}
	}()
	p := NewPool("p", tensor.Shape{N: 1, C: 1, H: 4, W: 4}, 2, 2, 0, false)
	p.ConvAlgos()
}

func TestTypeString(t *testing.T) {
	if Conv.String() != "CONV" || Softmax.String() != "SOFTMAX" {
		t.Error("type names wrong")
	}
	if Type(99).String() == "" {
		t.Error("unknown type must still print")
	}
	if AlgoWinograd.String() != "winograd" || AlgoKind(99).String() == "" {
		t.Error("algo names wrong")
	}
}

// Property: BestAlgoWithin is monotone — more budget never picks a
// slower algorithm, and the workspace always fits the budget.
func TestBestAlgoMonotoneProperty(t *testing.T) {
	in := tensor.Shape{N: 16, C: 64, H: 28, W: 28}
	c := NewConv("c", in, 128, 3, 1, 1)
	f := func(b1, b2 uint32) bool {
		lo, hi := int64(b1)*1024, int64(b1)*1024+int64(b2)*1024
		a1, a2 := c.BestAlgoWithin(lo), c.BestAlgoWithin(hi)
		return a1.Speedup <= a2.Speedup && a1.Workspace <= lo && a2.Workspace <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: forward time scales monotonically with batch size.
func TestTimeMonotoneInBatchProperty(t *testing.T) {
	f := func(n1, n2 uint8) bool {
		a := int(n1%32) + 1
		b := a + int(n2%32)
		ca := NewConv("c", tensor.Shape{N: a, C: 16, H: 14, W: 14}, 32, 3, 1, 1)
		cb := NewConv("c", tensor.Shape{N: b, C: 16, H: 14, W: 14}, 32, 3, 1, 1)
		return ca.FwdTime(hw.TitanXP, 1) <= cb.FwdTime(hw.TitanXP, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
