package layers

import (
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/tensor"
)

// everyType returns one instance of every layer type over a common
// shape.
func everyType() []Spec {
	in := tensor.Shape{N: 4, C: 16, H: 16, W: 16}
	return []Spec{
		NewData("d", in),
		NewConv("c", in, 32, 3, 1, 1),
		NewPool("p", in, 2, 2, 0, false),
		NewAct("a", in),
		NewLRN("l", in),
		NewBN("b", in),
		NewFC("f", in, 64),
		NewDropout("dr", in),
		NewSoftmax("s", in),
		NewConcat("cat", in, in),
		NewEltwise("e", in, in),
	}
}

func TestCostModelCoversEveryType(t *testing.T) {
	for _, s := range everyType() {
		s := s
		if s.Type != Data {
			if s.FwdFLOPs() <= 0 {
				t.Errorf("%s: non-positive forward FLOPs", s.Type)
			}
			if s.BwdFLOPs() < s.FwdFLOPs() {
				t.Errorf("%s: backward FLOPs below forward", s.Type)
			}
			if s.BwdTime(hw.TitanXP, 1) <= 0 {
				t.Errorf("%s: non-positive backward time", s.Type)
			}
		} else {
			if s.FwdFLOPs() != 0 || s.BwdFLOPs() != 0 || s.BwdTime(hw.TitanXP, 1) != 0 {
				t.Error("data layer must be free")
			}
		}
		if s.FwdBytes() <= 0 || s.FwdTime(hw.TitanXP, 1) <= 0 {
			t.Errorf("%s: non-positive forward traffic/time", s.Type)
		}
		if s.BwdBytes() < 0 {
			t.Errorf("%s: negative backward traffic", s.Type)
		}
	}
}

func TestGroupedConvHalvesWorkNotActivations(t *testing.T) {
	in := tensor.Shape{N: 8, C: 96, H: 27, W: 27}
	plain := NewConv("c", in, 256, 5, 1, 2)
	grouped := NewConvGrouped("g", in, 256, 5, 1, 2, 2)
	if grouped.Out != plain.Out {
		t.Fatal("grouping must not change the output shape")
	}
	if grouped.FwdFLOPs() != plain.FwdFLOPs()/2 {
		t.Errorf("grouped FLOPs = %g, want half of %g", grouped.FwdFLOPs(), plain.FwdFLOPs())
	}
	// Params: weights halve, biases do not.
	wantW := (int64(256)*96*25/2 + 256) * 4
	if grouped.ParamBytes() != wantW {
		t.Errorf("grouped params = %d, want %d", grouped.ParamBytes(), wantW)
	}
}

func TestGroupedConvValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible group count must panic")
		}
	}()
	NewConvGrouped("bad", tensor.Shape{N: 1, C: 3, H: 8, W: 8}, 8, 3, 1, 1, 2)
}

func TestRectConvGeometryAndCost(t *testing.T) {
	in := tensor.Shape{N: 2, C: 64, H: 17, W: 17}
	r := NewConvRect("r", in, 96, 1, 7, 1, 0, 3)
	if r.Out.H != 17 || r.Out.W != 17 {
		t.Fatalf("1x7 conv out = %v", r.Out)
	}
	// FLOPs proportional to kh*kw = 7, not 49.
	sq := NewConv("s", in, 96, 7, 1, 3)
	if r.FwdFLOPs() >= sq.FwdFLOPs() {
		t.Error("1x7 must cost less than 7x7")
	}
	if !strings.Contains(r.String(), "k1x7") {
		t.Errorf("rect conv String = %q", r.String())
	}
}

func TestGlobalPoolCollapsesBothAxes(t *testing.T) {
	in := tensor.Shape{N: 2, C: 32, H: 8, W: 12} // non-square
	g := NewGlobalPool("g", in)
	if g.Out.H != 1 || g.Out.W != 1 || g.Out.C != 32 {
		t.Fatalf("global pool out = %v", g.Out)
	}
	if !g.Avg {
		t.Error("global pool must average")
	}
}

func TestAuxAndParamFootprints(t *testing.T) {
	in := tensor.Shape{N: 4, C: 16, H: 8, W: 8}
	bn := NewBN("b", in)
	if bn.ParamBytes() != 4*16*4 {
		t.Errorf("BN params = %d", bn.ParamBytes())
	}
	if bn.AuxBytes() != 2*16*4 {
		t.Errorf("BN aux = %d", bn.AuxBytes())
	}
	dr := NewDropout("d", in)
	if dr.AuxBytes() != in.Bytes() {
		t.Errorf("dropout reserve = %d, want %d", dr.AuxBytes(), in.Bytes())
	}
	for _, s := range []Spec{NewAct("a", in), NewPool("p", in, 2, 2, 0, false), NewConcat("c", in, in)} {
		if s.ParamBytes() != 0 || s.AuxBytes() != 0 {
			t.Errorf("%s must have no persistent state", s.Type)
		}
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewConv("c", tensor.Shape{N: 1, C: 1, H: 2, W: 2}, 1, 5, 1, 0) },
		func() { NewPool("p", tensor.Shape{N: 1, C: 1, H: 1, W: 1}, 3, 2, 0, false) },
		func() { NewConcat("one", tensor.Shape{N: 1, C: 1, H: 1, W: 1}) },
		func() { NewEltwise("one", tensor.Shape{N: 1, C: 1, H: 1, W: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction must panic")
				}
			}()
			fn()
		}()
	}
}

func TestKernelTimeSpeedupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive speedup must panic")
		}
	}()
	c := NewConv("c", tensor.Shape{N: 1, C: 3, H: 8, W: 8}, 4, 3, 1, 1)
	c.FwdTime(hw.TitanXP, 0)
}

func TestSpecString(t *testing.T) {
	c := NewConv("conv1", tensor.Shape{N: 1, C: 3, H: 227, W: 227}, 96, 11, 4, 0)
	s := c.String()
	for _, want := range []string{"CONV", "conv1", "k11s4p0", "96x55x55"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	d := NewData("data", tensor.Shape{N: 1, C: 3, H: 4, W: 4})
	if !strings.Contains(d.String(), "DATA") {
		t.Errorf("data String = %q", d.String())
	}
}
