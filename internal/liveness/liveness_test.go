package liveness

import (
	"testing"

	"repro/internal/nnet"
	"repro/internal/program"
)

const mib = float64(1 << 20)

func TestAnalyzeMatchesReference(t *testing.T) {
	// The fast single-sweep analysis must agree with the paper's O(N²)
	// subsequent-layer scan on every architecture.
	for _, e := range nnet.Registry {
		if e.Name == "InceptionV4" || e.Name == "DenseNet121" {
			continue // Reference is quadratic; keep the test fast
		}
		p := program.Build(e.Build(2))
		fast, ref := Analyze(p), Reference(p)
		for id := range fast.LastUse {
			if fast.LastUse[id] != ref.LastUse[id] {
				t.Errorf("%s: tensor %d last use %d vs reference %d",
					e.Name, id, fast.LastUse[id], ref.LastUse[id])
			}
			if fast.FirstUse[id] != ref.FirstUse[id] {
				t.Errorf("%s: tensor %d first use %d vs reference %d",
					e.Name, id, fast.FirstUse[id], ref.FirstUse[id])
			}
		}
	}
}

func TestEveryTensorFreedExactlyOnce(t *testing.T) {
	p := program.Build(nnet.ResNet(50, 2))
	r := Analyze(p)
	freed := make(map[int]int)
	for _, ids := range r.FreeAfter {
		for _, id := range ids {
			freed[id]++
		}
	}
	for id := 0; id < p.Reg.Len(); id++ {
		if freed[id] != 1 {
			t.Errorf("tensor %d freed %d times", id, freed[id])
		}
	}
}

func TestLiveSetMonotonicity(t *testing.T) {
	// A tensor is live exactly on the contiguous interval
	// [FirstUse, LastUse]: LiveAt must reflect that.
	p := program.Build(nnet.AlexNet(2))
	r := Analyze(p)
	for id := 0; id < p.Reg.Len(); id++ {
		for si := 0; si < p.NumSteps(); si++ {
			live := false
			for _, l := range r.LiveAt(si) {
				if l == id {
					live = true
				}
			}
			want := si >= r.FirstUse[id] && si <= r.LastUse[id]
			if live != want {
				t.Fatalf("tensor %d at step %d: live=%v want %v", id, si, live, want)
			}
		}
	}
}

func TestPaperLivenessPeak(t *testing.T) {
	// Fig. 10a: Liveness Analysis reduces AlexNet b=200 to a peak of
	// 1489.355 MB at step 32 (backward POOL5; our program adds one
	// leading data step, so indices match because the data layer is
	// counted in both). The analytical live-bytes peak equals what the
	// executor later measures.
	p := program.Build(nnet.AlexNet(200))
	r := Analyze(p)
	// Exclude the data tensor: the runtime releases the host-backed
	// input after its forward reads, which the paper's accounting also
	// omits (its 23-layer AlexNet has no data layer).
	dataID := p.Out[p.Net.Input.ID].ID
	var peak int64
	var peakStep int
	for si := range p.Steps {
		var sum int64
		for _, id := range r.LiveAt(si) {
			if id == dataID && si > p.FwdStep[p.Net.Nodes[1].ID] {
				continue
			}
			sum += p.Reg.Get(id).Bytes()
		}
		if sum > peak {
			peak, peakStep = sum, si
		}
	}
	got := float64(peak) / mib
	if got < 1489.3 || got > 1489.4 {
		t.Errorf("liveness peak = %.3f MiB, paper says 1489.355", got)
	}
	if p.Steps[peakStep].Node.Name() != "pool5" {
		t.Errorf("peak at %s, paper says backward POOL5", p.Steps[peakStep].Label())
	}
}

func TestLivenessSavesAboutHalf(t *testing.T) {
	// §3.2: Liveness Analysis saves up to 50% from the baseline
	// Σ l_i^f + Σ l_i^b; on AlexNet the paper measured 31.9%.
	p := program.Build(nnet.AlexNet(200))
	r := Analyze(p)
	peak, _ := r.PeakLive(p)
	saving := 1 - float64(peak)/float64(p.BaselineBytes())
	if saving < 0.25 || saving > 0.55 {
		t.Errorf("liveness saving = %.1f%%, expected 25-55%%", 100*saving)
	}
}

func TestFreeAfterNeverPrecedesUse(t *testing.T) {
	p := program.Build(nnet.VGG16(2))
	r := Analyze(p)
	for si, ids := range r.FreeAfter {
		for _, id := range ids {
			if r.FirstUse[id] > si {
				t.Errorf("tensor %d freed at %d before first use %d", id, si, r.FirstUse[id])
			}
		}
	}
}
