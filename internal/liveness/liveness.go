// Package liveness implements the data-flow analysis of §3.2: it
// tracks, for every tensor, the in/out live sets across the execution
// steps of one training iteration, so the runtime can recycle a
// tensor's memory the moment no subsequent step depends on it.
//
// Analyze runs in O(total accesses) with a single reverse sweep; the
// paper describes the equivalent O(N²) subsequent-layer scan, which is
// kept as Reference for cross-validation in tests.
package liveness

import (
	"repro/internal/program"
	"repro/internal/tensor"
)

// Result holds the per-tensor lifetime facts and the per-step free
// lists derived from them.
type Result struct {
	// FirstUse[id] is the first step that touches tensor id (its
	// creation point); -1 if the tensor never appears.
	FirstUse []int
	// LastUse[id] is the last step that touches tensor id; -1 if never.
	LastUse []int
	// FreeAfter[step] lists tensor IDs whose final use is that step —
	// the tensors Liveness Analysis recycles right after it.
	FreeAfter [][]int
}

// Analyze computes tensor lifetimes for the program.
func Analyze(p *program.Program) *Result {
	n := p.Reg.Len()
	r := &Result{
		FirstUse:  make([]int, n),
		LastUse:   make([]int, n),
		FreeAfter: make([][]int, len(p.Steps)),
	}
	for i := range r.FirstUse {
		r.FirstUse[i] = -1
		r.LastUse[i] = -1
	}
	var scratch []*tensor.Tensor
	for si := range p.Steps {
		scratch = program.AppendStepTensors(scratch[:0], &p.Steps[si])
		for _, t := range scratch {
			if r.FirstUse[t.ID] < 0 {
				r.FirstUse[t.ID] = si
			}
			r.LastUse[t.ID] = si
		}
	}
	for id, last := range r.LastUse {
		if last >= 0 {
			r.FreeAfter[last] = append(r.FreeAfter[last], id)
		}
	}
	return r
}

// LiveAt returns the IDs of tensors live during step si (created at or
// before si, last used at or after si), in ID order. This materializes
// the paper's in-set for the step.
func (r *Result) LiveAt(si int) []int {
	var ids []int
	for id := range r.FirstUse {
		if r.FirstUse[id] >= 0 && r.FirstUse[id] <= si && r.LastUse[id] >= si {
			ids = append(ids, id)
		}
	}
	return ids
}

// LiveBytesAt sums the footprint of tensors live during step si.
func (r *Result) LiveBytesAt(p *program.Program, si int) int64 {
	var sum int64
	for _, id := range r.LiveAt(si) {
		sum += p.Reg.Get(id).Bytes()
	}
	return sum
}

// PeakLive returns the maximum live bytes over all steps and the step
// where it occurs — the Σ_{i≤k} l_i^f + l_k^b peak the paper derives
// for Liveness Analysis alone.
func (r *Result) PeakLive(p *program.Program) (bytes int64, step int) {
	for si := range p.Steps {
		if b := r.LiveBytesAt(p, si); b > bytes {
			bytes, step = b, si
		}
	}
	return bytes, step
}

// Reference recomputes last-use with the paper's O(N²) construction:
// for each step, scan all subsequent steps for another use of each
// tensor; if none exists the tensor dies here. Used by tests to verify
// Analyze.
func Reference(p *program.Program) *Result {
	n := p.Reg.Len()
	r := &Result{
		FirstUse:  make([]int, n),
		LastUse:   make([]int, n),
		FreeAfter: make([][]int, len(p.Steps)),
	}
	for i := range r.FirstUse {
		r.FirstUse[i] = -1
		r.LastUse[i] = -1
	}
	uses := func(si int, id int) bool {
		for _, t := range program.StepTensors(&p.Steps[si]) {
			if t.ID == id {
				return true
			}
		}
		return false
	}
	for si := range p.Steps {
		for _, t := range program.StepTensors(&p.Steps[si]) {
			if r.FirstUse[t.ID] < 0 {
				r.FirstUse[t.ID] = si
			}
			needed := false
			for sj := si + 1; sj < len(p.Steps); sj++ {
				if uses(sj, t.ID) {
					needed = true
					break
				}
			}
			if !needed && r.LastUse[t.ID] < 0 {
				r.LastUse[t.ID] = si
				r.FreeAfter[si] = append(r.FreeAfter[si], t.ID)
			}
		}
	}
	return r
}
