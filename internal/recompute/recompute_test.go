package recompute

import (
	"testing"

	"repro/internal/nnet"
	"repro/internal/program"
)

func segLengths(pl *Plan) []int {
	var out []int
	for _, s := range pl.Segments {
		out = append(out, len(s.Members))
	}
	return out
}

func TestAlexNetSegments(t *testing.T) {
	p := program.Build(nnet.AlexNet(200))
	pl := BuildPlan(p, SpeedCentric)
	want := []int{3, 3, 1, 1, 2, 2, 2}
	got := segLengths(pl)
	if len(got) != len(want) {
		t.Fatalf("segments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segments = %v, want %v", got, want)
		}
	}
	// Softmax (the loss layer) is never dropped.
	last := p.Net.Nodes[len(p.Net.Nodes)-1]
	if pl.Drop[last.ID] {
		t.Error("loss layer output must not be dropped")
	}
}

func TestTable1AnalyticCounts(t *testing.T) {
	// The closed-form recompute counts of the paper's Table 1.
	cases := []struct {
		name                       string
		net                        *nnet.Net
		wantSpeed, wantMem, wantCA int
	}{
		{"AlexNet", nnet.AlexNet(200), 14, 23, 17},
		{"ResNet50", nnet.ResNet(50, 16), 84, 118, 85},
		{"ResNet101", nnet.ResNet(101, 16), 169, 237, 170},
	}
	for _, c := range cases {
		p := program.Build(c.net)
		pl := BuildPlan(p, CostAware)
		speed, mem := pl.AnalyticExtras()
		ca := pl.AnalyticCostAware()
		if speed != c.wantSpeed {
			t.Errorf("%s speed-centric = %d, paper says %d", c.name, speed, c.wantSpeed)
		}
		if mem != c.wantMem {
			t.Errorf("%s memory-centric = %d, paper says %d", c.name, mem, c.wantMem)
		}
		if ca != c.wantCA {
			t.Errorf("%s cost-aware = %d, paper says %d", c.name, ca, c.wantCA)
		}
	}
}

func TestCostAwareSwitchesOnlyOversizedSegments(t *testing.T) {
	p := program.Build(nnet.AlexNet(200))
	pl := BuildPlan(p, CostAware)
	// Only the first segment (relu1/lrn1/pool1, the 221.56 MiB
	// tensors) exceeds l_peak and must switch to memory-centric.
	if pl.MemoryCentricSegments() != 1 {
		t.Errorf("%d segments switched, want 1", pl.MemoryCentricSegments())
	}
	if !pl.Segments[0].UseMemoryCentric {
		t.Error("the stem segment must be the one switched")
	}
	for _, seg := range pl.Segments {
		if seg.UseMemoryCentric && seg.SpeedCost <= pl.LPeak {
			t.Errorf("segment %d switched although speed cost %d <= lpeak %d",
				seg.ID, seg.SpeedCost, pl.LPeak)
		}
		if !seg.UseMemoryCentric && seg.SpeedCost > pl.LPeak {
			t.Errorf("segment %d kept speed although cost %d > lpeak %d",
				seg.ID, seg.SpeedCost, pl.LPeak)
		}
	}
}

func TestStrategyEndpoints(t *testing.T) {
	p := program.Build(nnet.AlexNet(32))
	if n := BuildPlan(p, SpeedCentric).MemoryCentricSegments(); n != 0 {
		t.Errorf("speed-centric switched %d segments", n)
	}
	plM := BuildPlan(p, MemoryCentric)
	if plM.MemoryCentricSegments() != len(plM.Segments) {
		t.Error("memory-centric must switch every segment")
	}
	plN := BuildPlan(p, None)
	if len(plN.Segments) != 0 {
		t.Error("strategy None must not create segments")
	}
	for _, d := range plN.Drop {
		if d {
			t.Fatal("strategy None must not drop tensors")
		}
	}
}

func TestDroppableRules(t *testing.T) {
	net := nnet.ResNet(50, 4)
	p := program.Build(net)
	pl := BuildPlan(p, SpeedCentric)
	for _, nd := range net.Nodes {
		drop := pl.Drop[nd.ID]
		if nd.L.IsCheckpoint() && drop {
			t.Errorf("checkpoint %s dropped", nd.Name())
		}
		if len(nd.Next) > 1 && drop {
			t.Errorf("fan-out tensor %s dropped", nd.Name())
		}
	}
	// Join outputs stay: dropping them would recurse across segments.
	for _, nd := range net.Nodes {
		if nd.Name() == "s1b1_join" && pl.Drop[nd.ID] {
			t.Error("eltwise join output must not be dropped")
		}
	}
}

func TestSegmentsAreRouteContiguous(t *testing.T) {
	for _, e := range nnet.Registry {
		net := e.Build(2)
		p := program.Build(net)
		pl := BuildPlan(p, SpeedCentric)
		pos := make(map[int]int)
		for i, nd := range net.Route() {
			pos[nd.ID] = i
		}
		for _, seg := range pl.Segments {
			for i := 1; i < len(seg.Members); i++ {
				if pos[seg.Members[i].ID] != pos[seg.Members[i-1].ID]+1 {
					t.Errorf("%s: segment %d not contiguous in route order", e.Name, seg.ID)
				}
			}
			if seg.Checkpoint == nil {
				t.Errorf("%s: segment %d has no checkpoint", e.Name, seg.ID)
				continue
			}
			if pos[seg.Checkpoint.ID] >= pos[seg.Members[0].ID] {
				t.Errorf("%s: segment %d checkpoint does not precede members", e.Name, seg.ID)
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if SpeedCentric.String() != "speed-centric" || CostAware.String() != "cost-aware" {
		t.Error("strategy names wrong")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy must still print")
	}
}
