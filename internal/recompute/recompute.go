// Package recompute implements §3.4 of the paper: trading computation
// for memory by dropping the forward outputs of cheap-to-compute
// layers and reconstructing them during back-propagation, with three
// strategies:
//
//   - SpeedCentric (MXNet-style): replay a whole recomputation segment
//     once and keep the results for all backward steps inside it —
//     O(N) extra forwards, but the segment's tensors coexist.
//   - MemoryCentric: replay the prefix a backward step needs and free
//     it immediately — O(N²) extra forwards, minimal footprint.
//   - CostAware (the paper's contribution): profile each segment; use
//     the speed-centric replay when its memory cost stays within
//     l_peak = max(l_i), and the memory-centric replay otherwise, so
//     the network-wide peak never exceeds l_peak while the extra
//     forwards stay close to the speed-centric minimum.
package recompute

import (
	"repro/internal/layers"
	"repro/internal/nnet"
	"repro/internal/program"
)

// Strategy selects how dropped forward tensors are reconstructed.
type Strategy uint8

// Strategies. None disables recomputation entirely (tensors are kept).
const (
	None Strategy = iota
	SpeedCentric
	MemoryCentric
	CostAware
)

var strategyNames = [...]string{"none", "speed-centric", "memory-centric", "cost-aware"}

// String returns the strategy name.
func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "strategy(?)"
}

// Segment is a maximal run of droppable layers between two checkpoints
// in route order. Checkpoint is the node whose output seeds the
// replay.
type Segment struct {
	ID         int
	Checkpoint *nnet.Node
	Members    []*nnet.Node // in route (replay) order

	// UseMemoryCentric is resolved per segment by the planner: false
	// means speed-centric replay.
	UseMemoryCentric bool
	// SpeedCost is the modeled peak bytes of a speed-centric replay:
	// Σ member outputs + the working set of the last member's backward
	// step (the paper's Σ l_i^f + l_seg^b).
	SpeedCost int64
}

// Plan is the resolved recomputation schedule for one program.
type Plan struct {
	Strategy Strategy
	// Drop[nodeID] marks forward outputs that are freed after their
	// last forward use and reconstructed on demand.
	Drop []bool
	// SegmentOf[nodeID] points to the segment containing the node
	// (nil for checkpoints and kept layers).
	SegmentOf []*Segment
	Segments  []*Segment
	// LPeak is max(l_i), the bound Cost-Aware honors.
	LPeak int64
}

// Droppable reports whether a node's forward output may be dropped and
// recomputed. Checkpoints (CONV/FC/Data) are never dropped — they are
// kept or offloaded. Join outputs (Eltwise/Concat) and fan-out tensors
// with several consumers carry long-range dependencies across segment
// boundaries, so dropping them would make replays recurse across
// segments; they are kept, which is also what yields the paper's
// segment structure (e.g. ResNet-50's 84 speed-centric replays). The
// final layer's output backs the loss gradient one step later and is
// never dropped.
func Droppable(nd *nnet.Node) bool {
	if nd.L.IsCheckpoint() {
		return false
	}
	switch nd.L.Type {
	case layers.Eltwise, layers.Concat:
		return false
	}
	if len(nd.Next) != 1 {
		return false // fan-out or loss layer
	}
	return true
}

// BuildPlan resolves the drop set, the segments and — for CostAware —
// the per-segment strategy for the given program.
func BuildPlan(p *program.Program, s Strategy) *Plan {
	n := len(p.Net.Nodes)
	pl := &Plan{
		Strategy:  s,
		Drop:      make([]bool, n),
		SegmentOf: make([]*Segment, n),
	}
	if s == None {
		return pl
	}
	lpeak, _ := p.LPeak()
	pl.LPeak = lpeak

	route := p.Net.Route()
	var cur *Segment
	var lastCheckpoint *nnet.Node
	flush := func() {
		if cur != nil && len(cur.Members) > 0 {
			cur.ID = len(pl.Segments)
			pl.Segments = append(pl.Segments, cur)
			for _, m := range cur.Members {
				pl.SegmentOf[m.ID] = cur
			}
		}
		cur = nil
	}
	for _, nd := range route {
		if Droppable(nd) {
			if cur == nil {
				cur = &Segment{Checkpoint: lastCheckpoint}
			}
			cur.Members = append(cur.Members, nd)
			pl.Drop[nd.ID] = true
			continue
		}
		flush()
		// Any kept layer acts as a replay seed for what follows: its
		// output stays resident (or is prefetched back for
		// checkpoints), so segments never span it.
		lastCheckpoint = nd
	}
	flush()

	for _, seg := range pl.Segments {
		seg.SpeedCost = speedCost(p, seg)
		switch s {
		case MemoryCentric:
			seg.UseMemoryCentric = true
		case SpeedCentric:
			seg.UseMemoryCentric = false
		case CostAware:
			seg.UseMemoryCentric = seg.SpeedCost > lpeak
		}
	}
	return pl
}

// speedCost models the paper's Σ_{i∈seg} l_i^f + l_seg^b: all member
// outputs held simultaneously plus the working set of the last
// member's backward step.
func speedCost(p *program.Program, seg *Segment) int64 {
	var sum int64
	for _, m := range seg.Members {
		sum += p.Out[m.ID].Bytes()
	}
	last := seg.Members[len(seg.Members)-1]
	if bs := p.BwdStep[last.ID]; bs >= 0 {
		sum += p.WorkingSet(bs)
	}
	return sum
}

// AnalyticExtras returns the closed-form recomputation counts the
// paper's Table 1 reports: Σ s per segment for speed-centric and
// Σ s(s+1)/2 for memory-centric, where s is the segment length. The
// executor measures the actual counts; both are reported side by side.
func (pl *Plan) AnalyticExtras() (speed, memory int) {
	for _, seg := range pl.Segments {
		s := len(seg.Members)
		speed += s
		memory += s * (s + 1) / 2
	}
	return speed, memory
}

// AnalyticCostAware returns the closed-form count for the resolved
// plan: s per speed-centric segment, s(s+1)/2 per memory-centric one —
// the accounting behind the paper's cost-aware column in Table 1.
func (pl *Plan) AnalyticCostAware() int {
	total := 0
	for _, seg := range pl.Segments {
		s := len(seg.Members)
		if seg.UseMemoryCentric {
			total += s * (s + 1) / 2
		} else {
			total += s
		}
	}
	return total
}

// MemoryCentricSegments returns how many segments resolved to the
// memory-centric replay (0 for SpeedCentric plans, all for
// MemoryCentric plans).
func (pl *Plan) MemoryCentricSegments() int {
	c := 0
	for _, seg := range pl.Segments {
		if seg.UseMemoryCentric {
			c++
		}
	}
	return c
}
