// Package tensor defines the fundamental scheduling unit of the
// SuperNeurons runtime: the 4-dimensional NCHW tensor (§3.1 of the
// paper). Tensors here carry geometry and placement state only — the
// simulator schedules byte extents, never touches element values,
// because the paper's contribution is a memory scheduler and every
// decision it makes depends only on tensor sizes and dependencies.
package tensor

import "fmt"

// ElemSize is the byte width of a single element. Training in the paper
// is single-precision.
const ElemSize = 4

// Shape is an NCHW tensor geometry: batches, channels, height, width.
// Fully-connected activations use H = W = 1.
type Shape struct {
	N, C, H, W int
}

// Elems returns the number of elements in the shape.
func (s Shape) Elems() int64 {
	return int64(s.N) * int64(s.C) * int64(s.H) * int64(s.W)
}

// Bytes returns the storage footprint of the shape in bytes.
func (s Shape) Bytes() int64 { return s.Elems() * ElemSize }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

// String renders the shape as NxCxHxW.
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// Vec returns a shape for a flat per-sample vector (FC activations).
func Vec(n, c int) Shape { return Shape{N: n, C: c, H: 1, W: 1} }

// Kind classifies what a tensor holds. The runtime prioritizes
// functional tensors (data, gradients, parameters) over convolution
// workspaces (§3.5).
type Kind uint8

// Tensor kinds.
const (
	Data      Kind = iota // forward activations
	Grad                  // backward data gradients
	Param                 // layer weights/biases (persistent)
	ParamGrad             // parameter gradients (persistent)
	Workspace             // convolution scratch space
	Aux                   // per-layer auxiliary state (BN statistics, dropout masks)
)

var kindNames = [...]string{"data", "grad", "param", "param-grad", "workspace", "aux"}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Placement is where a tensor's bytes currently live.
type Placement uint8

// Tensor placements. Dropped means the tensor was freed for
// recomputation and must be reconstructed by a forward pass before use.
const (
	Unallocated Placement = iota
	OnGPU
	OnHost
	Dropped
)

var placementNames = [...]string{"unallocated", "gpu", "host", "dropped"}

// String returns the placement name.
func (p Placement) String() string {
	if int(p) < len(placementNames) {
		return placementNames[p]
	}
	return fmt.Sprintf("placement(%d)", uint8(p))
}

// Tensor is a schedulable memory extent. Its mutable placement state is
// owned by the executing runtime; the graph structure (who produces and
// consumes it) lives in internal/nnet.
type Tensor struct {
	ID    int
	Name  string
	Shape Shape
	Kind  Kind

	// Place is the current physical location of the bytes.
	Place Placement
	// GPUAlloc / HostAlloc identify the live allocation in the
	// respective pool while Place is OnGPU / OnHost. Zero when invalid.
	GPUAlloc  int64
	HostAlloc int64

	// Locked marks the tensor as pinned by an in-flight computation so
	// the LRU tensor cache may not evict it (Alg. 2 of the paper).
	Locked bool
}

// Bytes returns the tensor's storage footprint.
func (t *Tensor) Bytes() int64 { return t.Shape.Bytes() }

// String renders a compact description.
func (t *Tensor) String() string {
	return fmt.Sprintf("t%d[%s %s %s]", t.ID, t.Name, t.Kind, t.Shape)
}

// Registry creates tensors with unique IDs. The zero value is ready to
// use.
type Registry struct {
	tensors []*Tensor
}

// New registers a tensor of the given kind and shape.
func (r *Registry) New(name string, k Kind, s Shape) *Tensor {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v for %q", s, name))
	}
	t := &Tensor{ID: len(r.tensors), Name: name, Shape: s, Kind: k}
	r.tensors = append(r.tensors, t)
	return t
}

// All returns every registered tensor in creation (ID) order.
func (r *Registry) All() []*Tensor { return r.tensors }

// Len returns the number of registered tensors.
func (r *Registry) Len() int { return len(r.tensors) }

// Get returns the tensor with the given ID.
func (r *Registry) Get(id int) *Tensor { return r.tensors[id] }

// TotalBytes sums the footprint of all registered tensors of the given
// kinds (or all tensors when kinds is empty).
func (r *Registry) TotalBytes(kinds ...Kind) int64 {
	var want map[Kind]bool
	if len(kinds) > 0 {
		want = make(map[Kind]bool, len(kinds))
		for _, k := range kinds {
			want[k] = true
		}
	}
	var sum int64
	for _, t := range r.tensors {
		if want == nil || want[t.Kind] {
			sum += t.Bytes()
		}
	}
	return sum
}
