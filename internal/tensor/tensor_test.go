package tensor

import (
	"testing"
	"testing/quick"
)

func TestShapeBytes(t *testing.T) {
	// AlexNet CONV1 output at batch 200: 200x96x55x55 floats. The paper
	// reports 221.56 MB for this tensor, which matches bytes/2^20 —
	// this anchors our byte accounting to the paper's units.
	s := Shape{N: 200, C: 96, H: 55, W: 55}
	if got := s.Bytes(); got != 232320000 {
		t.Fatalf("CONV1 output bytes = %d, want 232320000", got)
	}
	mib := float64(s.Bytes()) / (1 << 20)
	if mib < 221.55 || mib > 221.57 {
		t.Errorf("CONV1 output = %.2f MiB, paper says 221.56", mib)
	}
}

func TestPaperAlexNetTensorAnchors(t *testing.T) {
	// §4.1.1: CONV2 = 142.38 MB, CONV3 = CONV4 = 49.51 MB at batch 200.
	anchors := []struct {
		s    Shape
		want float64
	}{
		{Shape{200, 256, 27, 27}, 142.38},
		{Shape{200, 384, 13, 13}, 49.51},
	}
	for _, a := range anchors {
		mib := float64(a.s.Bytes()) / (1 << 20)
		if mib < a.want-0.01 || mib > a.want+0.01 {
			t.Errorf("%v = %.2f MiB, want %.2f", a.s, mib, a.want)
		}
	}
}

func TestVec(t *testing.T) {
	s := Vec(32, 4096)
	if s != (Shape{32, 4096, 1, 1}) {
		t.Errorf("Vec = %v", s)
	}
	if !s.Valid() {
		t.Error("Vec shape should be valid")
	}
}

func TestShapeValid(t *testing.T) {
	if (Shape{0, 1, 1, 1}).Valid() {
		t.Error("zero batch must be invalid")
	}
	if (Shape{1, 1, -1, 1}).Valid() {
		t.Error("negative dim must be invalid")
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{1, 2, 3, 4}).String(); got != "1x2x3x4" {
		t.Errorf("String = %q", got)
	}
}

func TestKindAndPlacementStrings(t *testing.T) {
	if Data.String() != "data" || Workspace.String() != "workspace" {
		t.Error("kind names wrong")
	}
	if OnGPU.String() != "gpu" || Dropped.String() != "dropped" {
		t.Error("placement names wrong")
	}
	if Kind(250).String() == "" || Placement(250).String() == "" {
		t.Error("out-of-range enums must still print")
	}
}

func TestRegistryIDs(t *testing.T) {
	var r Registry
	a := r.New("a", Data, Shape{1, 1, 1, 1})
	b := r.New("b", Grad, Shape{1, 2, 3, 4})
	if a.ID != 0 || b.ID != 1 {
		t.Errorf("IDs = %d,%d, want 0,1", a.ID, b.ID)
	}
	if r.Len() != 2 || r.Get(1) != b {
		t.Error("registry lookup broken")
	}
	if r.All()[0] != a {
		t.Error("All order broken")
	}
}

func TestRegistryInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid shape must panic")
		}
	}()
	var r Registry
	r.New("bad", Data, Shape{})
}

func TestTotalBytes(t *testing.T) {
	var r Registry
	r.New("d", Data, Shape{1, 1, 1, 256})  // 1 KiB
	r.New("g", Grad, Shape{1, 1, 1, 512})  // 2 KiB
	r.New("p", Param, Shape{1, 1, 1, 256}) // 1 KiB
	if got := r.TotalBytes(); got != 4096 {
		t.Errorf("TotalBytes() = %d, want 4096", got)
	}
	if got := r.TotalBytes(Data, Grad); got != 3072 {
		t.Errorf("TotalBytes(Data,Grad) = %d, want 3072", got)
	}
	if got := r.TotalBytes(Workspace); got != 0 {
		t.Errorf("TotalBytes(Workspace) = %d, want 0", got)
	}
}

// Property: Bytes is always ElemSize * product of dims for positive
// shapes, and tensors report the same footprint as their shape.
func TestBytesProperty(t *testing.T) {
	f := func(n, c, h, w uint8) bool {
		s := Shape{int(n%16) + 1, int(c%64) + 1, int(h%32) + 1, int(w%32) + 1}
		want := int64(s.N) * int64(s.C) * int64(s.H) * int64(s.W) * ElemSize
		var r Registry
		tt := r.New("x", Data, s)
		return s.Bytes() == want && tt.Bytes() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
