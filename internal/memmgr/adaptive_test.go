package memmgr

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/recompute"
	"repro/internal/sim"
	"repro/internal/utp"
)

func calmSignals(batch int) Signals {
	return Signals{
		Batch: batch, NextBatch: batch,
		IterTime: 100 * sim.Millisecond, StallTime: 0,
		PoolPeak: 30, PoolBytes: 100,
	}
}

func TestAdaptiveStartsAtBaseLevel(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{}, 0},
		{Config{Offload: utp.OffloadConv}, 1},
		{Config{Offload: utp.OffloadConvAndKept}, 2},
		{Config{Offload: utp.OffloadSwapAll}, 2},
		{Config{Offload: utp.OffloadConvAndKept, Recompute: recompute.CostAware}, 3},
	}
	for _, c := range cases {
		if got := NewAdaptive(c.cfg).Level(); got != c.want {
			t.Errorf("start level for offload=%v recompute=%v: got %d, want %d",
				c.cfg.Offload, c.cfg.Recompute, got, c.want)
		}
	}
}

func TestAdaptiveEscalatesOnOOM(t *testing.T) {
	a := NewAdaptive(Config{Device: hw.TeslaK40c, Liveness: true})
	s := calmSignals(32)
	s.OOM = true
	if !a.Observe(s) {
		t.Fatal("OOM did not change the plan")
	}
	cfg := a.Config()
	if cfg.Offload != utp.OffloadConv || !cfg.Prefetch {
		t.Errorf("after OOM: offload=%v prefetch=%v, want conv offload with prefetch", cfg.Offload, cfg.Prefetch)
	}
	if a.Replans() != 1 {
		t.Errorf("replans = %d, want 1", a.Replans())
	}
}

func TestAdaptiveEscalatesOnNearMiss(t *testing.T) {
	a := NewAdaptive(Config{})
	s := calmSignals(32)
	s.PoolPeak, s.PoolBytes = 95, 100 // headroom 5%
	if !a.Observe(s) || a.Level() != 1 {
		t.Errorf("near-miss headroom did not widen the plan (level %d)", a.Level())
	}
}

func TestAdaptiveEscalatesOnStallSpike(t *testing.T) {
	a := NewAdaptive(Config{})
	s := calmSignals(32)
	s.IterTime, s.StallTime = 100*sim.Millisecond, 40*sim.Millisecond
	if !a.Observe(s) || a.Level() != 1 {
		t.Errorf("stall spike did not widen the plan (level %d)", a.Level())
	}
}

func TestAdaptiveEscalatesOnFailedPrefetches(t *testing.T) {
	a := NewAdaptive(Config{Offload: utp.OffloadConv})
	s := calmSignals(32)
	s.FailedPrefetches = 3
	if !a.Observe(s) || a.Level() != 2 {
		t.Errorf("failed prefetches did not widen the plan (level %d)", a.Level())
	}
}

// The planner anticipates a declared ramp: when the next iteration's
// batch scales the measured peak past the pool, it widens before the
// bigger shape arrives, not after losing it to OOM.
func TestAdaptiveAnticipatesIncomingShape(t *testing.T) {
	a := NewAdaptive(Config{})
	s := calmSignals(16)
	s.NextBatch = 32
	s.PoolPeak, s.PoolBytes = 70, 100 // headroom fine now, 2x shape will not fit
	if !a.Observe(s) || a.Level() != 1 {
		t.Errorf("incoming-shape prediction did not widen the plan (level %d)", a.Level())
	}
}

// De-escalation needs sustained calm plus the post-change cooldown —
// the plan must not oscillate around a boundary shape.
func TestAdaptiveDeescalationHysteresis(t *testing.T) {
	a := NewAdaptive(Config{Offload: utp.OffloadConvAndKept, Recompute: recompute.CostAware})
	if a.Level() != 3 {
		t.Fatalf("start level %d, want 3", a.Level())
	}
	var changeAt []int
	levels := []int{a.Level()}
	for i := 0; i < 6; i++ {
		if a.Observe(calmSignals(32)) {
			changeAt = append(changeAt, i)
		}
		levels = append(levels, a.Level())
	}
	if len(changeAt) == 0 {
		t.Fatal("sustained calm never narrowed the plan")
	}
	// Each narrowing needs adaptCalmRun calm iterations behind it, so
	// changes are spaced at least that far apart.
	if changeAt[0] < adaptCalmRun-1 {
		t.Errorf("first narrowing after %d calm iterations, want at least %d", changeAt[0]+1, adaptCalmRun)
	}
	for i := 1; i < len(changeAt); i++ {
		if changeAt[i]-changeAt[i-1] < adaptCalmRun {
			t.Errorf("narrowings at iterations %v closer than the %d-iteration hysteresis", changeAt, adaptCalmRun)
		}
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] > levels[i-1] {
			t.Errorf("levels %v not monotone under sustained calm", levels)
		}
	}
	// The base already recomputes, so levels 2 and 3 share knobs: the
	// first narrowing must skip to the genuinely narrower conv-only
	// set, never burning a replan on identical knobs.
	if got := levels[changeAt[0]+1]; got != 1 {
		t.Errorf("first narrowing landed on level %d, want 1 (levels 2 and 3 share knobs here)", got)
	}
	if cfg := a.Config(); cfg.Recompute != recompute.CostAware {
		t.Errorf("narrowing must not drop the base recompute strategy, got %v", cfg.Recompute)
	}
}

// After an escalation, calm iterations inside the cooldown window must
// not immediately narrow the plan back.
func TestAdaptiveCooldownAfterEscalation(t *testing.T) {
	a := NewAdaptive(Config{})
	s := calmSignals(32)
	s.OOM = true
	if !a.Observe(s) {
		t.Fatal("no escalation")
	}
	for i := 0; i < adaptCalmRun; i++ {
		if a.Observe(calmSignals(32)) {
			t.Fatalf("plan narrowed on calm iteration %d, inside the cooldown window", i)
		}
	}
	if a.Level() != 1 {
		t.Errorf("level = %d during cooldown, want 1", a.Level())
	}
}

// At the top of the ladder an escalation signal changes nothing — and
// is not counted as a replan.
func TestAdaptiveSaturatesAtMaxLevel(t *testing.T) {
	a := NewAdaptive(Config{Offload: utp.OffloadConvAndKept, Recompute: recompute.CostAware})
	s := calmSignals(32)
	s.OOM = true
	if a.Observe(s) {
		t.Error("plan changed at the top of the ladder")
	}
	if a.Replans() != 0 {
		t.Errorf("replans = %d at saturation, want 0", a.Replans())
	}
}

// Until the first revision the planner hands back the base
// configuration verbatim: enabling AdaptivePlan must not silently
// rewrite a manager's own plan (vdnn's swap-all offload set is not a
// ladder rung) before any signal has been observed.
func TestAdaptivePreservesBasePlanUntilFirstRevision(t *testing.T) {
	base := Config{Offload: utp.OffloadSwapAll, Prefetch: true}
	a := NewAdaptive(base)
	if got := a.Config(); got.Offload != utp.OffloadSwapAll || !got.Prefetch {
		t.Errorf("initial Config rewrote the base plan: offload=%v prefetch=%v", got.Offload, got.Prefetch)
	}
	s := calmSignals(32)
	s.OOM = true
	if !a.Observe(s) {
		t.Fatal("no escalation")
	}
	if got := a.Config(); got.Offload == utp.OffloadSwapAll {
		t.Error("post-revision Config still the base; the ladder should own the knobs now")
	}
}
