package memmgr

import (
	"errors"
	"fmt"

	"repro/internal/gpumem"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// StdResidency is the standard placement manager: GPU allocation with
// reclaim-then-evict pressure handling (Alg. 2), Tensor Cache
// bookkeeping on reads and writes, and the liveness frees. It relies on
// the wired OffloadEngine for on-demand fetches and offload harvests.
type StdResidency struct {
	rt *Runtime
	// off is set by the manager wiring (the reference is mutual:
	// fetches allocate through residency, reclaims harvest through
	// the offload engine).
	off OffloadEngine
	// deps is the scratch buffer PinReads returns; the caller consumes
	// it before the next step (Engine.Submit copies the values out), so
	// reusing it keeps the hot loop allocation-free.
	deps []sim.Event
}

// PinReads makes the step's reads resident, collecting the transfer
// events the kernel must wait for. The returned slice is only valid
// until the next PinReads call.
func (r *StdResidency) PinReads(st *program.Step) ([]sim.Event, error) {
	rt := r.rt
	deps := r.deps[:0]
	for _, t := range st.Reads {
		s := &rt.TS[t.ID]
		if !s.OnGPU {
			if !s.OnHost {
				return nil, fmt.Errorf("step %d (%s): read %s is neither on GPU nor host", st.Index, st.Label(), t)
			}
			if rt.Cache != nil {
				rt.Cache.Check(t) // records the miss
			}
			if err := r.off.Fetch(t); err != nil {
				return nil, err
			}
		} else if rt.Cache != nil {
			rt.Cache.Check(t) // hit: move to MRU
		}
		if s.InflightValid {
			deps = append(deps, s.Inflight)
			if s.Inflight.DoneBy(rt.TL.Now()) {
				s.InflightValid = false
			}
		}
		t.Locked = true
	}
	r.deps = deps
	return deps, nil
}

// MaterializeWrites allocates and locks the step's outputs.
func (r *StdResidency) MaterializeWrites(st *program.Step) error {
	rt := r.rt
	for _, t := range st.Writes {
		s := &rt.TS[t.ID]
		if !s.OnGPU {
			if err := r.Alloc(t); err != nil {
				return err
			}
			if rt.Cache != nil {
				rt.Cache.In(t)
			}
		}
		t.Locked = true
	}
	return nil
}

// Unpin unlocks the step's reads and writes.
func (r *StdResidency) Unpin(st *program.Step) {
	for _, t := range st.Reads {
		t.Locked = false
	}
	for _, t := range st.Writes {
		t.Locked = false
	}
}

// Alloc places a tensor on the GPU, evicting cached tensors or waiting
// on pending offloads under memory pressure.
func (r *StdResidency) Alloc(t *tensor.Tensor) error {
	rt := r.rt
	for {
		a, err := rt.GPU.Alloc(t.Bytes())
		if err == nil {
			rt.ChargeAlloc()
			s := &rt.TS[t.ID]
			s.GPU = a
			s.OnGPU = true
			t.Place = tensor.OnGPU
			rt.ResBytes += t.Bytes()
			rt.ResCount++
			if rt.ResBytes > rt.Res.PeakResident {
				rt.Res.PeakResident = rt.ResBytes
				rt.Res.PeakStep = rt.CurStep
			}
			return nil
		}
		if !errors.Is(err, gpumem.ErrOutOfMemory) {
			return err
		}
		if r.Reclaim(t.Bytes()) {
			continue
		}
		return fmt.Errorf("allocating %s (%d bytes): %w", t, t.Bytes(), err)
	}
}

// Reclaim tries to make room: first harvest pending offload frees,
// then evict LRU cache victims (Alg. 2's LRU.out).
func (r *StdResidency) Reclaim(need int64) bool {
	if r.off.Harvest(true) {
		return true
	}
	if r.rt.Cache != nil {
		victims, ok := r.rt.Cache.Victims(need)
		if !ok {
			return false
		}
		for _, v := range victims {
			r.evict(v)
		}
		return true
	}
	return false
}

// evict synchronously offloads an unlocked LRU victim and frees its
// GPU copy.
func (r *StdResidency) evict(t *tensor.Tensor) {
	rt := r.rt
	s := &rt.TS[t.ID]
	if !s.OnGPU {
		return
	}
	if !s.OnHost {
		ha, pool, ok := rt.HostAlloc(t.Bytes())
		if !ok {
			return // every external pool exhausted: leave resident
		}
		s.Host = ha
		s.HostPool = pool
		s.OnHost = true
		dur := rt.HostLinks[pool].TransferTime(t.Bytes())
		ev := rt.D2H.Submit(rt.TL.Now(), dur)
		rt.Span("d2h", "evict "+t.Name, ev, dur)
		// The reused memory must not be overwritten before the copy
		// drains; the synchronous wait is the eviction's cost.
		if ev.At() > rt.TL.Now() {
			rt.Res.StallTime += sim.Duration(ev.At() - rt.TL.Now())
		}
		rt.TL.Wait(ev)
		rt.Res.OffloadBytes += t.Bytes()
	}
	rt.Cache.Evicted(t)
	r.FreeGPU(t)
}

// FreeGPU releases the GPU copy only (any host copy survives).
func (r *StdResidency) FreeGPU(t *tensor.Tensor) {
	rt := r.rt
	s := &rt.TS[t.ID]
	if !s.OnGPU {
		return
	}
	if s.InflightValid {
		// An in-flight H2D copy targets this memory; it must drain
		// before the bytes can be reused.
		rt.TL.Wait(s.Inflight)
		s.InflightValid = false
	}
	rt.ChargeFree()
	if err := rt.GPU.Free(s.GPU.ID); err != nil {
		panic(err) // accounting bug, not a runtime condition
	}
	s.OnGPU = false
	rt.ResBytes -= t.Bytes()
	rt.ResCount--
	if rt.Cache != nil {
		rt.Cache.Remove(t)
	}
	if s.OnHost {
		t.Place = tensor.OnHost
	} else if rt.Owner[t.ID] >= 0 && rt.RPlan.Drop[rt.Owner[t.ID]] {
		t.Place = tensor.Dropped
	} else {
		t.Place = tensor.Unallocated
	}
}

// FreeAll releases both copies (liveness last-use free).
func (r *StdResidency) FreeAll(t *tensor.Tensor) {
	rt := r.rt
	s := &rt.TS[t.ID]
	if s.OffPending {
		rt.TL.Wait(s.OffEv)
		s.OffPending = false
	}
	if s.OnGPU {
		r.FreeGPU(t)
	}
	if s.OnHost {
		if err := rt.Hosts[s.HostPool].Free(s.Host.ID); err != nil {
			panic(err)
		}
		s.OnHost = false
	}
	t.Place = tensor.Unallocated
}
