package memmgr

import "repro/internal/sim"

// Estimate is the admission-control summary of one dry run: what a
// manager predicts a job will cost on an otherwise-idle device. Every
// manager's Result is deterministic (the conformance suite asserts
// bit-reproducibility), so an Estimate extracted from a single
// dry-run iteration is a sound capacity bound for a multi-tenant
// scheduler — the run *is* the prediction.
type Estimate struct {
	// PeakBytes is the pool high-water mark including persistent
	// state: what must be free on a device to admit the job.
	PeakBytes int64
	// IterTime is the duration of one steady-state iteration when the
	// job runs alone on the device.
	IterTime sim.Duration
	// Throughput is the matching images/second.
	Throughput float64
	// GradientBytes is the per-replica gradient volume a data-parallel
	// gang exchanges every iteration (the network's parameter bytes).
	// Zero for estimates taken before the field existed; single-device
	// jobs never read it.
	GradientBytes int64

	// FloorBytes is the persistent residue (parameters, parameter
	// gradients, auxiliary state) a job pins even between iterations —
	// what a parked co-tenant costs on a shared device. Zero for
	// estimates taken before the field existed, which the device
	// planner treats as floor == peak (worst-case-in-isolation).
	FloorBytes int64
	// SpillBytes is the job's own per-iteration offload+prefetch
	// traffic under its solo plan: its standing claim on the host link
	// that co-tenant spill planning must budget around.
	SpillBytes int64
}

// ForGang scales a per-device estimate to an N-device gang: the gang
// reserves PeakBytes on each of its devices (every replica holds a
// full copy of the working set), so the cluster-wide footprint is
// N x PeakBytes while the per-device admission test is unchanged.
func (e Estimate) ForGang(n int) Estimate {
	if n < 1 {
		n = 1
	}
	g := e
	g.PeakBytes = e.PeakBytes // per-device, by design
	g.Throughput = e.Throughput * float64(n)
	return g
}

// EstimateOf extracts the scheduling estimate from a dry run's Result.
func EstimateOf(r *Result) Estimate {
	floor := r.PersistentBytes
	if floor > r.PoolPeak {
		floor = r.PoolPeak
	}
	return Estimate{
		PeakBytes:  r.PoolPeak,
		IterTime:   r.IterTime,
		Throughput: r.Throughput,
		FloorBytes: floor,
		SpillBytes: r.TotalTraffic(),
	}
}
