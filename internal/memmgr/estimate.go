package memmgr

import "repro/internal/sim"

// Estimate is the admission-control summary of one dry run: what a
// manager predicts a job will cost on an otherwise-idle device. Every
// manager's Result is deterministic (the conformance suite asserts
// bit-reproducibility), so an Estimate extracted from a single
// dry-run iteration is a sound capacity bound for a multi-tenant
// scheduler — the run *is* the prediction.
type Estimate struct {
	// PeakBytes is the pool high-water mark including persistent
	// state: what must be free on a device to admit the job.
	PeakBytes int64
	// IterTime is the duration of one steady-state iteration when the
	// job runs alone on the device.
	IterTime sim.Duration
	// Throughput is the matching images/second.
	Throughput float64
}

// EstimateOf extracts the scheduling estimate from a dry run's Result.
func EstimateOf(r *Result) Estimate {
	return Estimate{PeakBytes: r.PoolPeak, IterTime: r.IterTime, Throughput: r.Throughput}
}
