package memmgr

// Demand extraction: the bridge from a job's program to the device
// planner's tensor-granularity protocol. A per-job Adaptive used to
// tune knobs blindly; under co-tenancy it becomes a CLIENT of
// internal/memplan, and this file builds what it submits — the job's
// largest shareable functional shapes with byte width and next-use
// distance, plus the scalar demand (peak, floor, spill traffic) from
// the dry-run estimate.

import (
	"sort"

	"repro/internal/memplan"
	"repro/internal/program"
	"repro/internal/tcache"
	"repro/internal/tensor"
)

// shareableKind reports whether a tensor's slab is content-free between
// iterations and therefore a cross-job sharing candidate: functional
// tensors only. Persistent state (parameters, parameter gradients,
// auxiliary buffers) carries values across iterations and is exactly
// the floor — never shareable.
func shareableKind(k tensor.Kind) bool {
	switch k {
	case tensor.Data, tensor.Grad, tensor.Workspace:
		return true
	}
	return false
}

// TensorDemands extracts a program's topK largest shareable functional
// shapes as device-planner demand entries. Each distinct shape is
// declared once — within one job, same-shape tensors can be live
// concurrently and are NOT interchangeable, so only a single instance
// per shape is offered for cross-job lifting (the conservative side of
// the sharing model). NextUse is the shape's widest producer-to-last-
// reader step distance: shapes idle for longer stretches are the better
// lending candidates, and the planner's escalation order consults it.
// The result is sorted largest-first (ties by key) so truncation and
// replay are deterministic.
func TensorDemands(p *program.Program, topK int) []memplan.TensorDemand {
	if p == nil || topK <= 0 {
		return nil
	}
	firstStep := make(map[int]int)
	lastStep := make(map[int]int)
	touch := func(t *tensor.Tensor, si int) {
		if !shareableKind(t.Kind) {
			return
		}
		if _, ok := firstStep[t.ID]; !ok {
			firstStep[t.ID] = si
		}
		lastStep[t.ID] = si
	}
	for si := range p.Steps {
		for _, t := range p.Steps[si].Reads {
			touch(t, si)
		}
		for _, t := range p.Steps[si].Writes {
			touch(t, si)
		}
	}

	type agg struct {
		bytes   int64
		width   int
		nextUse int
	}
	byKey := make(map[uint64]agg)
	for _, t := range p.Reg.All() {
		if !shareableKind(t.Kind) {
			continue
		}
		if _, ok := firstStep[t.ID]; !ok {
			continue // never touched by a step (e.g. recompute-dropped)
		}
		key := tcache.ShapeKey(t.Shape.N, t.Shape.C, t.Shape.H, t.Shape.W, tensor.ElemSize)
		span := lastStep[t.ID] - firstStep[t.ID]
		a, ok := byKey[key]
		if !ok {
			a = agg{bytes: t.Bytes(), width: tensor.ElemSize}
		}
		if span > a.nextUse {
			a.nextUse = span
		}
		byKey[key] = a
	}

	out := make([]memplan.TensorDemand, 0, len(byKey))
	for key, a := range byKey {
		out = append(out, memplan.TensorDemand{Key: key, Bytes: a.bytes, Width: a.width, NextUse: a.nextUse})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

// DemandFor assembles the full device-planner demand for one job from
// its dry-run estimate and program. The shareable tensor list is
// clamped to the estimate's functional budget (peak minus floor): shape
// sizes come from the program while the peak is a measured pool
// high-water mark, and the planner refuses demands whose declared
// shareable bytes exceed what the job can actually have resident.
func DemandFor(job string, est Estimate, p *program.Program, topK int) memplan.Demand {
	d := memplan.Demand{
		Job:        job,
		PeakBytes:  est.PeakBytes,
		FloorBytes: est.FloorBytes,
		SpillBytes: est.SpillBytes,
		IterTime:   est.IterTime,
	}
	if d.FloorBytes > d.PeakBytes {
		d.FloorBytes = d.PeakBytes
	}
	budget := d.PeakBytes - d.FloorBytes
	for _, td := range TensorDemands(p, topK) {
		if td.Bytes > budget {
			continue
		}
		d.Tensors = append(d.Tensors, td)
		budget -= td.Bytes
	}
	return d
}
