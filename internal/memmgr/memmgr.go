// Package memmgr decomposes the SuperNeurons executor into pluggable
// memory-management subsystems. The paper's contribution is a policy —
// Liveness Analysis + Unified Tensor Pool + Cost-Aware Recomputation —
// and this package turns that policy into an implementation of a
// first-class MemoryManager interface, so alternative schemes (vDNN's
// offload-everything strategy, the naive keep-everything baseline, or
// any future policy) plug into the same step loop instead of forking
// the core.
//
// A MemoryManager is a named bundle of four subsystems operating over
// the shared Runtime state:
//
//   - Residency: tensor placement — pinning reads, materializing
//     writes, allocation under pressure (evict/reclaim) and frees.
//   - OffloadEngine: the Unified Tensor Pool's D2H/H2D machinery —
//     eager offloads, harvest of completed transfers, prefetch and
//     on-demand fetch, and the host-pool spill order.
//   - Replayer: recomputation — reconstructing dropped forward
//     tensors segment by segment during back-propagation.
//   - WorkspaceTuner: convolution-workspace policy — picking the
//     fastest algorithm that fits the remaining budget, optionally
//     with cudnnFind-style autotuning.
//
// The step loop in internal/core is pure orchestration over these
// interfaces; it owns no policy. Managers are selected by name through
// Config.Manager ("" runs the flag-driven manager that interprets the
// Config technique flags literally, which is also how the paper's
// ablation studies toggle individual mechanisms).
package memmgr

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/layers"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Residency manages tensor placement on the GPU: it pins a step's
// reads (collecting the transfer events the kernel must gate on),
// materializes its writes, and owns allocation, eviction, reclaim and
// the two flavors of free.
type Residency interface {
	// PinReads makes every read tensor GPU-resident (fetching from
	// host on demand), locks it for the step, and returns the pending
	// transfer events the consuming kernel must wait for.
	PinReads(st *program.Step) ([]sim.Event, error)
	// MaterializeWrites allocates the step's output tensors and locks
	// them.
	MaterializeWrites(st *program.Step) error
	// Unpin unlocks the step's reads and writes after the kernel.
	Unpin(st *program.Step)
	// Alloc places one tensor on the GPU, reclaiming or evicting under
	// memory pressure.
	Alloc(t *tensor.Tensor) error
	// FreeGPU releases the GPU copy only (any host copy survives).
	FreeGPU(t *tensor.Tensor)
	// FreeAll releases both copies (liveness last-use free).
	FreeAll(t *tensor.Tensor)
	// Reclaim tries to make room for need bytes; it reports whether
	// any memory was freed.
	Reclaim(need int64) bool
}

// OffloadEngine is the Unified Tensor Pool's transfer machinery.
type OffloadEngine interface {
	// Prefetch triggers the planned prefetches for the step so the H2D
	// copies overlap its computation (§3.3.1). Allocation-pressure
	// failures are tolerated (the tensor is fetched on demand at its
	// use) and counted in Result.FailedPrefetches; any other fetch
	// failure is a host-state inconsistency and is returned.
	Prefetch(si int) error
	// Harvest frees GPU copies whose D2H transfer completed and whose
	// forward reads are done. With force it waits for one pending
	// transfer if none has completed yet.
	Harvest(force bool) bool
	// Fetch brings an offloaded tensor back to the GPU.
	Fetch(t *tensor.Tensor) error
	// AfterKernel runs the post-kernel offload protocol: eager D2H of
	// freshly produced checkpoints and the zero-cost reclaim of the
	// host-backed input batch.
	AfterKernel(st *program.Step)
	// DropAfterFwd frees forward outputs scheduled for recomputation
	// once their forward read horizon passes.
	DropAfterFwd(si int)
}

// Replayer reconstructs dropped forward tensors during backward.
type Replayer interface {
	// ReplayFor replays the recomputation segments the backward step
	// needs and returns the tensors to free right after it
	// (memory-centric replays).
	ReplayFor(st *program.Step) ([]*tensor.Tensor, error)
}

// WorkspaceTuner picks the convolution algorithm for a step under a
// workspace budget (§3.5).
type WorkspaceTuner interface {
	SelectAlgo(st *program.Step, budget int64) layers.Algo
}

// Components bundles the four subsystems a MemoryManager wires over a
// Runtime.
type Components struct {
	Residency Residency
	Offload   OffloadEngine
	Replay    Replayer
	Tuner     WorkspaceTuner
}

// MemoryManager is a named memory-management policy.
type MemoryManager interface {
	// Name is the registry key (Config.Manager).
	Name() string
	// Normalize resolves the effective configuration the policy
	// imposes: named managers own the technique flags and override
	// them, while capacity and instrumentation fields (device, pool
	// sizes, iterations, tracing) pass through.
	Normalize(cfg Config) Config
	// Components wires the policy's subsystems over the shared state.
	Components(rt *Runtime) Components
}

var (
	regMu    sync.RWMutex
	registry = map[string]MemoryManager{}
)

// Register adds a manager to the registry; duplicate names panic.
func Register(m MemoryManager) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[m.Name()]; dup {
		panic(fmt.Sprintf("memmgr: duplicate manager %q", m.Name()))
	}
	registry[m.Name()] = m
}

// Lookup resolves a manager by name. The empty name resolves to the
// flag-driven Custom manager.
func Lookup(name string) (MemoryManager, bool) {
	if name == "" {
		return Custom, true
	}
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// Names returns the registered manager names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
